package corona

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"corona/internal/clock"
	"corona/internal/core"
	"corona/internal/im"
	"corona/internal/netwire"
	"corona/internal/pastry"
	"corona/internal/store"
)

// TestLiveStatsSpecCompleteness reflects over LiveStats and asserts that
// every numeric field (embedded structs included) is exposed: either
// through the liveStatsSpec scalar table or through the explicit
// histogram coverage list. Adding a counter to core.Stats or LiveStats
// without wiring it into the admin registry fails here, not on a
// dashboard later.
func TestLiveStatsSpecCompleteness(t *testing.T) {
	// Fields exposed as histogram components rather than spec scalars.
	histogramCovered := map[string]string{
		"Store.CommitLatency":    "corona_store_commit_latency_seconds buckets",
		"Store.CommitLatencySum": "corona_store_commit_latency_seconds sum",
	}
	// Fields mirrored by the web gateway's self-registered labeled
	// families (webgateway.RegisterMetrics) rather than spec scalars —
	// the vec form keeps transports and causes as labels instead of a
	// metric name per combination.
	webCovered := map[string]string{
		"Web.SessionsWS":             `corona_web_sessions{transport="ws"}`,
		"Web.SessionsSSE":            `corona_web_sessions{transport="sse"}`,
		"Web.DroppedSlowClient":      `corona_web_notify_dropped_total{cause="slow_client"}`,
		"Web.DroppedOversize":        `corona_web_notify_dropped_total{cause="oversize"}`,
		"Web.DisconnectsSlowClient":  `corona_web_disconnects_total{cause="slow_client"}`,
		"Web.DisconnectsDisplaced":   `corona_web_disconnects_total{cause="displaced"}`,
		"Web.ReplayHits":             "corona_web_replay_hits_total",
		"Web.ReplayMissesBufferWrap": "corona_web_replay_misses_total",
		"Web.ReplayWraps":            "corona_web_replay_wraps_total",
		"Web.Notifies":               "corona_web_notifies_total",
	}
	for path, name := range webCovered {
		if _, dup := histogramCovered[path]; dup {
			t.Errorf("web coverage entry %s duplicates a histogram entry", path)
		}
		histogramCovered[path] = name
	}

	specFields := make(map[string]liveStatSpec, len(liveStatsSpec))
	names := make(map[string]string, len(liveStatsSpec))
	for _, spec := range liveStatsSpec {
		if _, dup := specFields[spec.field]; dup {
			t.Errorf("duplicate spec entry for field %s", spec.field)
		}
		specFields[spec.field] = spec
		if prev, dup := names[spec.name]; dup {
			t.Errorf("metric name %s used by both %s and %s", spec.name, prev, spec.field)
		}
		names[spec.name] = spec.field
		if _, ok := liveStatValue(LiveStats{}, spec.field); !ok {
			t.Errorf("spec field %s does not resolve to a numeric LiveStats field", spec.field)
		}
	}

	var exposed []string
	var walk func(rt reflect.Type, prefix string)
	walk = func(rt reflect.Type, prefix string) {
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			path := prefix + f.Name
			switch f.Type.Kind() {
			case reflect.Struct:
				walk(f.Type, path+".")
			case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
				reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
				reflect.Float32, reflect.Float64:
				exposed = append(exposed, path)
			case reflect.Slice:
				switch f.Type.Elem().Kind() {
				case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
					reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
					reflect.Float32, reflect.Float64:
					exposed = append(exposed, path)
				}
			}
		}
	}
	walk(reflect.TypeOf(LiveStats{}), "")

	for _, path := range exposed {
		_, inSpec := specFields[path]
		_, inHist := histogramCovered[path]
		if !inSpec && !inHist {
			t.Errorf("LiveStats field %s has no registered metric: add it to liveStatsSpec (or the histogram coverage list)", path)
		}
		if inSpec && inHist {
			t.Errorf("LiveStats field %s is double-covered", path)
		}
	}
	for path := range histogramCovered {
		found := false
		for _, p := range exposed {
			if p == path {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("histogram coverage entry %s no longer exists in LiveStats", path)
		}
	}
}

// startUnjoinedNode hand-assembles a LiveNode that has bound its
// transport and opened its store but NOT joined the ring — the state
// StartLiveNode passes through between ServeAdmin and the join, which
// /readyz must report as 503.
func startUnjoinedNode(t *testing.T) *LiveNode {
	t.Helper()
	transport, err := netwire.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	self := pastry.Addr{ID: idFromEndpoint(transport.Addr()), Endpoint: transport.Addr()}
	overlay := pastry.NewNode(pastry.DefaultConfig(), self, transport, clock.Real{})
	transport.OnDeliver(overlay.Deliver)
	ccfg := core.DefaultConfig()
	ccfg.PollInterval = time.Hour
	ccfg.MaintenanceInterval = time.Hour
	service := im.NewService(clock.Real{})
	node := core.NewNode(ccfg, overlay, clock.Real{}, &core.HTTPFetcher{}, nil, nil)
	gateway := im.NewGateway(service, clock.Real{}, "corona", node)
	node.SetNotifier(gateway)
	st, _, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		transport.Close()
		t.Fatal(err)
	}
	node.SetStateSink(st)
	return &LiveNode{
		transport: transport,
		overlay:   overlay,
		node:      node,
		notifier:  gateway,
		service:   service,
		store:     st,
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminReadiness walks /readyz through its full lifecycle: 503
// while the ring join is pending, 200 once joined with a healthy store,
// and back to 503 when the store latches an IO error — with /healthz
// reporting plain process liveness (200) throughout.
func TestAdminReadiness(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	ln := startUnjoinedNode(t)
	defer ln.Close()
	addr, err := ln.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before join: got %d, want 200", code)
	}
	code, body := httpGet(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before join: got %d, want 503 (body %q)", code, body)
	}
	if !strings.Contains(body, "join") {
		t.Fatalf("/readyz 503 body should name the join: %q", body)
	}

	ln.overlay.Bootstrap()
	ln.node.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body = httpGet(t, base+"/readyz")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never turned 200 after bootstrap: last %d %q", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	ln.store.InjectIOError(errors.New("injected disk fault"))
	code, body = httpGet(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with latched store error: got %d, want 503 (body %q)", code, body)
	}
	if !strings.Contains(body, "injected disk fault") {
		t.Fatalf("/readyz 503 body should carry the store error: %q", body)
	}
	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz with latched store error: got %d, want 200", code)
	}

	_, metricsBody := httpGet(t, base+"/metrics")
	if !strings.Contains(metricsBody, "corona_store_io_error 1") {
		t.Fatalf("/metrics should report corona_store_io_error 1 after injection")
	}
	if !strings.Contains(metricsBody, "corona_overlay_joined 1") {
		t.Fatalf("/metrics should report corona_overlay_joined 1 after bootstrap")
	}

	if _, err := ln.ServeAdmin("127.0.0.1:0"); err == nil {
		t.Fatal("second ServeAdmin should fail")
	}
}

// TestAdminMetricsRegistryBuilds asserts the registry renders every
// spec-declared family even on a fresh in-memory node (no store, no
// clients): a scrape must never 500 or panic because a subsystem is
// absent.
func TestAdminMetricsRegistryBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	n, err := StartLiveNode(LiveConfig{
		Bind:         "127.0.0.1:0",
		AdminBind:    "127.0.0.1:0",
		PollInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	_, body := httpGet(t, "http://"+n.AdminAddr()+"/metrics")
	for _, spec := range liveStatsSpec {
		if !strings.Contains(body, fmt.Sprintf("# TYPE %s", spec.name)) {
			t.Errorf("/metrics missing family %s", spec.name)
		}
	}
	if !strings.Contains(body, "corona_store_enabled 0") {
		t.Error("/metrics should report corona_store_enabled 0 on an in-memory node")
	}
	if !strings.Contains(body, "# TYPE corona_notify_stage_latency_seconds histogram") {
		t.Error("/metrics missing the notify-stage latency histogram family")
	}
}

package corona

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"corona/internal/clientproto"
	"corona/internal/clock"
	"corona/internal/codec"
	"corona/internal/core"
	"corona/internal/ids"
	"corona/internal/im"
	"corona/internal/metrics"
	"corona/internal/netwire"
	"corona/internal/pastry"
	"corona/internal/store"
	"corona/internal/webgateway"
)

// LiveConfig configures one deployed Corona node.
type LiveConfig struct {
	// Bind is the TCP listen address, for example "0.0.0.0:9001".
	Bind string
	// Advertise is the address peers dial; defaults to the bound
	// address (set it when behind NAT).
	Advertise string
	// Seeds are existing cluster members to join through; empty
	// bootstraps a new ring.
	Seeds []string
	// Scheme, FastTarget, PollInterval, MaintenanceInterval as in
	// Options.
	Scheme              Scheme
	FastTarget          time.Duration
	PollInterval        time.Duration
	MaintenanceInterval time.Duration
	// Replicas is the owner replication factor f.
	Replicas int
	// NodeCountHint fixes N for the optimizer; zero estimates it from
	// the leaf set at runtime.
	NodeCountHint int
	// Seed drives poll-phase randomness; zero derives it from the bind
	// address.
	Seed int64
	// DataDir, when set, makes the node's channel state durable: owner
	// and replica state is written through a group-committed WAL with
	// snapshot compaction, and a node restarted from the same directory
	// recovers its subscriptions, rejoins the ring, and keeps delivering
	// without clients re-subscribing. Empty keeps everything in memory.
	DataDir string
	// CommitWindow is the store's group-commit window (how much recent
	// state a hard kill may lose). Zero uses the store default; negative
	// fsyncs every record.
	CommitWindow time.Duration
	// ClientBind, when set, serves the binary client protocol
	// (internal/clientproto; the corona/client SDK's wire format) on this
	// TCP address alongside the overlay port. Empty starts no client
	// listener; ServeClients can start one later.
	ClientBind string
	// LeaseTTL is the entry-node lease window: a client-protocol
	// subscriber whose entry node has not heartbeat for it within the TTL
	// (or was detected dead) has its notifications re-routed to a
	// surviving node by the owner's maintain pass. Zero uses the 2-minute
	// default (comfortably above the SDK's 30s ping interval); negative
	// disables the expiry sweep.
	LeaseTTL time.Duration
	// DelegateThreshold is the per-channel subscriber count at which an
	// owner recruits leaf-set delegates and shards notification fan-out
	// across them, keeping the owner's per-update sends O(delegates)
	// instead of O(entry nodes). Zero or negative disables sharding.
	DelegateThreshold int
	// AdminBind, when set, serves the HTTP admin plane on this TCP
	// address: /metrics (Prometheus text exposition), /healthz, /readyz,
	// /channels, and /debug/pprof. It starts before the ring join so the
	// readiness transition is observable. Empty starts no admin listener;
	// ServeAdmin can start one later.
	AdminBind string
	// WebBind, when set, serves the web edge gateway on this TCP address:
	// /ws (WebSocket) and /sse (Server-Sent Events) speaking the JSON
	// projection of the client-protocol session model, backed by
	// per-channel replay ring buffers (internal/webgateway). Empty starts
	// no web listener; ServeWeb can start one later.
	WebBind string
	// WebReplayCap is the web gateway's per-channel replay ring capacity;
	// zero uses the package default.
	WebReplayCap int
	// WebDisconnectSlow switches the web gateway's slow-client policy
	// from drop-oldest (default: shed the oldest queued notification and
	// let the client replay the gap) to disconnect (close the session and
	// let the client reconnect with its resume cursor).
	WebDisconnectSlow bool
}

// LiveNode is one Corona overlay member speaking TCP, polling real HTTP
// origins, and running the full maintenance protocol.
type LiveNode struct {
	transport *netwire.Transport
	overlay   *pastry.Node
	node      *core.Node
	notifier  *im.Gateway
	service   *im.Service
	store     *store.Store        // nil when DataDir is unset
	clients   *clientproto.Server // nil until ServeClients
	web       *webgateway.Server  // nil until ServeWeb
	admin     *http.Server        // nil until ServeAdmin
	adminL    net.Listener
	adminReg  *metrics.Registry
	// sessions is the node-wide resume-token session table, shared by the
	// binary client-protocol server and the web gateway so a handle has
	// one live session per node however it connects, and displacement
	// works across transports.
	sessions *clientproto.SessionTable
	// Web-gateway tuning captured from LiveConfig for a ServeWeb that
	// runs after StartLiveNode.
	webReplayCap      int
	webDisconnectSlow bool
	// obsClientEnqueue and obsWebEnqueue are the admin plane's
	// client_enqueue / web_enqueue stage observers, held so a listener
	// started after ServeAdmin still gets wired into the latency
	// histogram.
	obsClientEnqueue func(time.Duration)
	obsWebEnqueue    func(time.Duration)
}

func init() {
	// Wire payload codecs once for every live node in the process.
	pastry.RegisterPayloadTypes(codec.RegisterPayload)
	core.RegisterPayloadTypes(codec.RegisterPayload)
}

// StartLiveNode binds the transport, joins (or bootstraps) the ring, and
// starts the protocol. The returned node's IM service accepts local
// client registrations; production deployments front it with
// cmd/corona-node's line-protocol listener.
func StartLiveNode(cfg LiveConfig) (*LiveNode, error) {
	if cfg.Bind == "" {
		return nil, fmt.Errorf("corona: Bind address required")
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 30 * time.Minute
	}
	if cfg.MaintenanceInterval == 0 {
		cfg.MaintenanceInterval = cfg.PollInterval
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 2 * time.Minute
	}
	transport, err := netwire.Listen(cfg.Bind, nil)
	if err != nil {
		return nil, err
	}
	advertise := cfg.Advertise
	if advertise == "" {
		advertise = transport.Addr()
	}
	self := pastry.Addr{ID: idFromEndpoint(advertise), Endpoint: advertise}
	overlay := pastry.NewNode(pastry.DefaultConfig(), self, transport, clock.Real{})
	transport.OnDeliver(overlay.Deliver)

	ccfg := core.DefaultConfig()
	ccfg.Policy = core.PolicyConfig{Scheme: cfg.Scheme.coreScheme(), FastTarget: cfg.FastTarget}
	ccfg.PollInterval = cfg.PollInterval
	ccfg.MaintenanceInterval = cfg.MaintenanceInterval
	ccfg.OwnerReplicas = cfg.Replicas
	ccfg.NodeCount = cfg.NodeCountHint
	ccfg.CountSubscribersOnly = false
	ccfg.ContentMode = true
	if cfg.LeaseTTL > 0 {
		ccfg.LeaseTTL = cfg.LeaseTTL
	}
	ccfg.DelegateThreshold = cfg.DelegateThreshold
	ccfg.Seed = cfg.Seed
	if ccfg.Seed == 0 {
		ccfg.Seed = int64(beUint(idFromEndpoint(advertise)))
	}

	service := im.NewService(clock.Real{})
	node := core.NewNode(ccfg, overlay, clock.Real{}, &core.HTTPFetcher{}, nil, nil)
	gateway := im.NewGateway(service, clock.Real{}, "corona", node)
	// Rebind the node's notifier to the gateway (constructed after the
	// node because the gateway needs the node as its Subscriber).
	node.SetNotifier(gateway)

	// Durable state: recover the previous incarnation's channel image
	// before joining, so the ring sees a member that already holds its
	// subscriptions. Ownership is reconciled after the join lands.
	var st *store.Store
	if cfg.DataDir != "" {
		var recovered []store.Channel
		var err error
		st, recovered, err = store.Open(store.Options{Dir: cfg.DataDir, CommitWindow: cfg.CommitWindow})
		if err != nil {
			transport.Close()
			return nil, fmt.Errorf("corona: opening data dir: %w", err)
		}
		node.SetStateSink(st)
		node.RestoreChannels(recovered)
	}

	ln := &LiveNode{
		transport:         transport,
		overlay:           overlay,
		node:              node,
		notifier:          gateway,
		service:           service,
		store:             st,
		sessions:          clientproto.NewSessionTable(),
		webReplayCap:      cfg.WebReplayCap,
		webDisconnectSlow: cfg.WebDisconnectSlow,
	}
	// The admin plane comes up before the join so /healthz answers and
	// /readyz reports the 503→200 transition instead of appearing only
	// after the node is already ready.
	if cfg.AdminBind != "" {
		if _, err := ln.ServeAdmin(cfg.AdminBind); err != nil {
			transport.Close()
			if st != nil {
				st.Close()
			}
			return nil, err
		}
	}
	if len(cfg.Seeds) == 0 {
		overlay.Bootstrap()
	} else {
		// Join is asynchronous under netwire: Send enqueues and dial
		// failures surface through the transport's fault callback. Wait
		// for the join handshake to land before falling back to the next
		// seed.
		joined := false
		for _, seed := range cfg.Seeds {
			seedAddr := pastry.Addr{ID: idFromEndpoint(seed), Endpoint: seed}
			if err := overlay.Join(seedAddr); err != nil {
				continue
			}
			if waitJoined(overlay, seedAddr, transport.DialBudget()+2*time.Second) {
				joined = true
				break
			}
		}
		if !joined {
			ln.closeAdmin()
			transport.Close()
			if st != nil {
				st.Close()
			}
			return nil, fmt.Errorf("corona: no seed reachable among %v", cfg.Seeds)
		}
	}
	node.Start()
	if st != nil {
		// Resume ownership of recovered channels this node still roots;
		// hand the rest to their current owners via the replicate path.
		node.ReconcileRecovered()
	}
	if cfg.ClientBind != "" {
		if _, err := ln.ServeClients(cfg.ClientBind); err != nil {
			ln.Close()
			return nil, err
		}
	}
	if cfg.WebBind != "" {
		if _, err := ln.ServeWeb(cfg.WebBind); err != nil {
			ln.Close()
			return nil, err
		}
	}
	return ln, nil
}

// Addr returns the node's advertised overlay address.
func (ln *LiveNode) Addr() string { return ln.overlay.Self().Endpoint }

// IM returns the node-local instant-messaging service clients register
// and log in through.
func (ln *LiveNode) IM() *im.Service { return ln.service }

// Gateway returns the node's IM gateway (the "corona" buddy).
func (ln *LiveNode) Gateway() *im.Gateway { return ln.notifier }

// Subscribe registers a client directly (bypassing the client protocol
// and IM front ends), with this node as the client's entry point.
func (ln *LiveNode) Subscribe(client, url string) error {
	return ln.node.Subscribe(client, url)
}

// Unsubscribe removes a client's subscription.
func (ln *LiveNode) Unsubscribe(client, url string) error {
	return ln.node.Unsubscribe(client, url)
}

// RefreshLeases implements clientproto.Backend: it heartbeats entry-node
// liveness for an attached client's channels, with this node as the
// client's entry point. Each channel's owner refreshes the subscriber's
// lease and re-points its entry record here.
func (ln *LiveNode) RefreshLeases(client string, urls []string) error {
	return ln.node.RefreshLeases(client, urls)
}

// ServeClients starts serving the binary client protocol on bind and
// returns the bound address. A node serves at most one client listener,
// which closes with the node; call it once, before the node is shared
// across goroutines (StartLiveNode does, when ClientBind is set).
func (ln *LiveNode) ServeClients(bind string) (addr string, err error) {
	if ln.clients != nil {
		return "", fmt.Errorf("corona: client listener already running at %s", ln.clients.Addr())
	}
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return "", fmt.Errorf("corona: client listener: %w", err)
	}
	ln.clients = clientproto.ServeSessions(l, ln, ln.sessions)
	if ln.obsClientEnqueue != nil {
		ln.clients.SetNotifyLatencyObserver(ln.obsClientEnqueue)
	}
	return ln.clients.Addr(), nil
}

// ServeWeb starts the web edge gateway (internal/webgateway: /ws and
// /sse with per-channel replay rings) on bind and returns the bound
// address. The gateway shares the node's session table with the binary
// client listener, installs its update tap on the gateway seam, and —
// when the admin plane is running — registers its instruments on the
// node's metric registry. A node serves at most one web listener, which
// closes with the node; StartLiveNode calls it when WebBind is set.
func (ln *LiveNode) ServeWeb(bind string) (addr string, err error) {
	if ln.web != nil {
		return "", fmt.Errorf("corona: web listener already running at %s", ln.web.Addr())
	}
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return "", fmt.Errorf("corona: web listener: %w", err)
	}
	policy := webgateway.PolicyDropOldest
	if ln.webDisconnectSlow {
		policy = webgateway.PolicyDisconnect
	}
	web := webgateway.New(webgateway.Config{
		Backend:    ln,
		Sessions:   ln.sessions,
		ReplayCap:  ln.webReplayCap,
		SlowPolicy: policy,
	})
	// The tap feeds every local-delivery update into the replay rings
	// before any deliverer runs — the ordering the resume path's
	// exactly-once merge depends on.
	ln.notifier.SetTap(web.Tap())
	web.Serve(l)
	ln.web = web
	if ln.adminReg != nil {
		web.RegisterMetrics(ln.adminReg)
	}
	if ln.obsWebEnqueue != nil {
		web.SetNotifyLatencyObserver(ln.obsWebEnqueue)
	}
	return web.Addr(), nil
}

// WebAddr returns the web gateway's listen address, empty when no web
// listener is running.
func (ln *LiveNode) WebAddr() string {
	if ln.web == nil {
		return ""
	}
	return ln.web.Addr()
}

// ClientAddr returns the client-protocol listen address, empty when no
// client listener is running.
func (ln *LiveNode) ClientAddr() string {
	if ln.clients == nil {
		return ""
	}
	return ln.clients.Addr()
}

// Attach implements clientproto.Backend: it registers a structured
// notification deliverer for client on the node's gateway.
func (ln *LiveNode) Attach(client string, deliver func(im.Notification)) (detach func()) {
	return ln.notifier.Attach(client, deliver)
}

// Info implements clientproto.Backend: the node's advertisement to
// connected clients — its overlay endpoint, its leaf-set siblings, and
// the durable store's health.
func (ln *LiveNode) Info() clientproto.ServerInfo {
	si := clientproto.ServerInfo{Node: ln.Addr()}
	for _, leaf := range ln.overlay.Leaves() {
		si.Peers = append(si.Peers, leaf.Endpoint)
	}
	if ln.store != nil {
		st := ln.store.Stats()
		si.Store = clientproto.StoreInfo{
			Enabled:              true,
			Generation:           st.Generation,
			WALBytes:             uint64(st.WALBytes),
			RecordsSinceSnapshot: uint64(st.RecordsSinceSnapshot),
		}
		if st.Err != nil {
			si.Store.Err = st.Err.Error()
		}
		si.HasCommitLatency = true
		si.CommitLatency = st.CommitLatency[:]
	}
	ns := ln.node.Stats()
	gc := ln.notifier.CounterSnapshot()
	si.HasFanout = true
	si.Fanout = clientproto.FanoutInfo{
		NotifyBatches:   ns.NotifyBatchesSent,
		DelegateUpdates: ns.DelegateUpdates,
		DelegatesActive: uint64(ns.DelegatesActive),
		DelegatesHeld:   uint64(ns.DelegatesHeld),
		Undeliverable:   gc.Undeliverable,
	}
	if ln.clients != nil {
		si.Fanout.NotifyDropped = ln.clients.NotifyDropped()
	}
	return si
}

// StoreStats is the durable store's health as seen through LiveStats:
// zero-valued with Enabled false for in-memory nodes.
type StoreStats struct {
	// Enabled reports whether the node persists state (DataDir set).
	Enabled bool
	// Generation is the current snapshot/WAL generation.
	Generation uint64
	// WALBytes is the current write-ahead log's on-disk size.
	WALBytes int64
	// RecordsSinceSnapshot is the replay debt a restart would pay.
	RecordsSinceSnapshot int
	// CommitLatency is the store's fixed-bucket group-commit (write+
	// fsync) latency histogram; bucket i counts commits within
	// store.CommitLatencyBounds[i], the last element the overflow.
	CommitLatency []uint64
	// CommitLatencySum is total time spent in group commits, giving the
	// histogram an honest sum alongside the bucket counts.
	CommitLatencySum time.Duration
	// Err is the store's latched first IO error, empty while durability
	// is intact. A non-empty value means committed-window guarantees are
	// gone until the node is restarted on healthy storage.
	Err string
}

// WebStats is the web edge gateway's session and delivery accounting,
// zero-valued when no web listener runs. Disconnect and shed outcomes
// are split by cause: slow-client (the drop policy fired), buffer-wrap
// (a resume cursor fell out of the replay window and was answered
// snapshot-required), and displaced (a newer login took the handle).
// These fields mirror the gateway's self-registered labeled metric
// families (corona_web_*) rather than the liveStatsSpec scalars.
type WebStats struct {
	// SessionsWS and SessionsSSE count currently attached sessions by
	// transport.
	SessionsWS  int
	SessionsSSE int
	// DroppedSlowClient counts notify events shed on full outbound
	// queues under the drop-oldest policy (or refused at the bound).
	DroppedSlowClient uint64
	// DroppedOversize counts notify events beyond the message bound.
	DroppedOversize uint64
	// DisconnectsSlowClient counts sessions closed by the disconnect
	// slow-client policy.
	DisconnectsSlowClient uint64
	// DisconnectsDisplaced counts sessions evicted by a displacing login.
	DisconnectsDisplaced uint64
	// ReplayHits counts resume cursors served completely from the ring;
	// ReplayMissesBufferWrap counts cursors past the window (the
	// buffer-wrap outcome, answered snapshot-required); ReplayWraps
	// counts ring entries overwritten by wrap-around.
	ReplayHits             uint64
	ReplayMissesBufferWrap uint64
	ReplayWraps            uint64
	// Notifies counts notify events enqueued to web sessions.
	Notifies uint64
}

// LiveStats extends the node's protocol counters with deployment-only
// state: the durable store's health and the client and web edges'
// delivery counters.
type LiveStats struct {
	core.Stats
	Store StoreStats
	Web   WebStats
	// Undeliverable counts notifications that found neither an attached
	// deliverer nor an IM account for their client at this node's gateway.
	Undeliverable uint64
	// NotifyDropped counts notification frames the client-protocol server
	// discarded because a client's outbound queue was full (zero when no
	// client listener runs).
	NotifyDropped uint64
	// NotifyBatchesRecv and BatchClients count batched notification calls
	// the gateway received and the client deliveries they covered.
	NotifyBatchesRecv uint64
	BatchClients      uint64
}

// Stats exposes the node's activity counters and, for durable nodes, the
// store's WAL size, records-since-snapshot, and latched IO error.
func (ln *LiveNode) Stats() LiveStats {
	ls := LiveStats{Stats: ln.node.Stats()}
	// One gateway lock acquisition for the whole counter group, so the
	// batch totals and undeliverable count come from the same instant.
	gc := ln.notifier.CounterSnapshot()
	ls.Undeliverable = gc.Undeliverable
	ls.NotifyBatchesRecv, ls.BatchClients = gc.NotifyBatches, gc.BatchClients
	if ln.clients != nil {
		ls.NotifyDropped = ln.clients.NotifyDropped()
	}
	if ln.web != nil {
		wc := ln.web.Counters()
		ls.Web = WebStats{
			SessionsWS:             wc.SessionsWS,
			SessionsSSE:            wc.SessionsSSE,
			DroppedSlowClient:      wc.NotifyDroppedSlow,
			DroppedOversize:        wc.NotifyDroppedOversize,
			DisconnectsSlowClient:  wc.DisconnectsSlow,
			DisconnectsDisplaced:   wc.DisconnectsDisplaced,
			ReplayHits:             wc.Replay.Hits,
			ReplayMissesBufferWrap: wc.Replay.Misses,
			ReplayWraps:            wc.Replay.Wraps,
			Notifies:               wc.Notifies,
		}
	}
	if ln.store != nil {
		st := ln.store.Stats()
		ls.Store = StoreStats{
			Enabled:              true,
			Generation:           st.Generation,
			WALBytes:             st.WALBytes,
			RecordsSinceSnapshot: st.RecordsSinceSnapshot,
			CommitLatency:        st.CommitLatency[:],
			CommitLatencySum:     st.CommitLatencySum,
		}
		if st.Err != nil {
			ls.Store.Err = st.Err.Error()
		}
	}
	return ls
}

// PeerQueueStat describes one peer's outbound send queue on this node's
// transport: instantaneous depth against capacity, plus messages to that
// peer dropped locally (backpressure, encode failure, retry exhaustion).
type PeerQueueStat struct {
	Endpoint string
	Depth    int
	Capacity int
	Drops    uint64
}

// PeerQueues snapshots the transport's per-peer send queues, making
// backpressure toward slow or dead peers observable. The transport-wide
// drop total is in WireDropped.
func (ln *LiveNode) PeerQueues() []PeerQueueStat {
	qs := ln.overlay.PeerQueues()
	out := make([]PeerQueueStat, len(qs))
	for i, q := range qs {
		out[i] = PeerQueueStat{Endpoint: q.Endpoint, Depth: q.Depth, Capacity: q.Capacity, Drops: q.Drops}
	}
	return out
}

// WireDropped returns how many outbound messages this node's transport
// discarded locally before they reached the wire.
func (ln *LiveNode) WireDropped() uint64 {
	return ln.transport.Dropped()
}

// closeAdmin tears down the admin listener and in-flight admin
// requests; a no-op when none is running.
func (ln *LiveNode) closeAdmin() {
	if ln.admin != nil {
		ln.admin.Close()
	}
}

// closeWeb tears down the web gateway listener and every live WS/SSE
// session; a no-op when none is running.
func (ln *LiveNode) closeWeb() {
	if ln.web != nil {
		ln.web.Close()
	}
}

// CloseClients gracefully stops the client-facing listeners — the
// binary client protocol (draining every connection's writer goroutine
// so no client sees a torn frame) and the web gateway's WS/SSE sessions.
// Safe to call before Close (which is idempotent about it); a no-op when
// neither is running. cmd/corona-node's signal handler uses it to stop
// client traffic alongside the IM listener before the node's WAL flush.
func (ln *LiveNode) CloseClients() {
	if ln.clients != nil {
		ln.clients.Close()
	}
	ln.closeWeb()
}

// Close stops the client listener (draining per-connection writers), the
// protocol and the transport, then flushes and closes the durable store
// so no committed-window state is lost on a graceful shutdown.
func (ln *LiveNode) Close() error {
	ln.closeAdmin()
	if ln.clients != nil {
		ln.clients.Close()
	}
	ln.closeWeb()
	ln.node.Stop()
	err := ln.transport.Close()
	if ln.store != nil {
		if serr := ln.store.Close(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// Kill simulates a crash, for recovery and failover testing: client
// connections and the transport die abruptly and the store is abandoned
// without a flush, losing whatever sat inside the current group-commit
// window. Production shutdown is Close.
func (ln *LiveNode) Kill() {
	ln.closeAdmin()
	if ln.clients != nil {
		ln.clients.Close() // connected clients see an abrupt EOF, as in a crash
	}
	ln.closeWeb() // WS/SSE clients see an abrupt EOF too
	ln.node.Stop()
	ln.transport.Close()
	if ln.store != nil {
		ln.store.Abort()
	}
}

// Channel reports this node's view of a channel (ownership, level,
// subscriber count), if it tracks one.
func (ln *LiveNode) Channel(url string) (core.ChannelInfo, bool) {
	return ln.node.Channel(url)
}

// waitJoined polls for join-handshake completion up to the deadline,
// re-sending the join once a second: a reply can vanish into a stale
// one-directional connection at the seed (a restarted node rejoining on
// its old address is exactly that case), and the join protocol itself is
// fire-and-forget, so the retry has to live here.
func waitJoined(overlay *pastry.Node, seed pastry.Addr, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	resend := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if overlay.Joined() {
			return true
		}
		if now := time.Now(); now.After(resend) {
			overlay.Join(seed)
			resend = now.Add(time.Second)
		}
		time.Sleep(25 * time.Millisecond)
	}
	return overlay.Joined()
}

// idFromEndpoint derives the node identifier from its advertised address,
// as the prototype hashes the node's IP (§4).
func idFromEndpoint(endpoint string) ids.ID {
	return ids.HashString(endpoint)
}

// beUint folds an identifier's top bytes into a uint64 seed.
func beUint(id ids.ID) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(id[i])
	}
	return v
}

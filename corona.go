// Package corona is the public API of the Corona publish-subscribe system
// (Ramasubramanian, Peterson & Sirer, NSDI 2006).
//
// Corona delivers asynchronous update notifications for ordinary web
// content: clients subscribe to URLs, a cloud of cooperating nodes polls
// the content servers, and detected changes are delta-encoded and pushed
// to subscribers. The polling effort per channel is set by a decentralized
// optimizer that resolves the bandwidth/latency tradeoff globally — the
// paper's central contribution.
//
// Three entry points cover the common uses:
//
//   - Cluster: an in-process, real-time cluster — the quickest way to
//     embed Corona or experiment with the API.
//   - Simulation: the same cluster under a virtual clock, for running
//     hours of protocol time in milliseconds (how the paper's figures are
//     regenerated; see internal/experiments).
//   - LiveNode: one overlay node speaking TCP, for actual deployments.
//
// Subscribers of a deployed cloud use the corona/client package: a Go
// SDK over the versioned binary client protocol (internal/clientproto)
// with acknowledged subscriptions, structured notifications, and
// automatic failover across nodes.
package corona

import (
	"fmt"
	"time"

	"corona/internal/core"
	"corona/internal/im"
)

// Scheme selects the optimization policy (paper Table 1).
type Scheme int

// The five schemes the paper evaluates.
const (
	// Lite minimizes average update detection time holding total
	// content-server load to what uncoordinated clients would impose.
	Lite Scheme = iota
	// Fast meets a target average detection time with minimal load.
	Fast
	// Fair weighs detection time by each channel's update rate.
	Fair
	// FairSqrt dampens Fair's bias against rarely-updating channels
	// with a square-root weight.
	FairSqrt
	// FairLog uses a logarithmic weight instead.
	FairLog
)

// String names the scheme as the paper does.
func (s Scheme) String() string { return s.coreScheme().String() }

func (s Scheme) coreScheme() core.Scheme {
	switch s {
	case Fast:
		return core.SchemeFast
	case Fair:
		return core.SchemeFair
	case FairSqrt:
		return core.SchemeFairSqrt
	case FairLog:
		return core.SchemeFairLog
	default:
		return core.SchemeLite
	}
}

// Notification is one update delivered to a subscriber: Client (the
// handle it was addressed to), Channel (the subscribed URL), Version,
// Diff (the delta-encoded change, see internal/diffengine; empty in
// version-only mode) and At (the delivery time). It is the same value
// the gateway produces and the client protocol carries, aliased so the
// structure cannot drift between the public API and the delivery path.
type Notification = im.Notification

// Options configures a Cluster or Simulation.
type Options struct {
	// Nodes is the cloud size (default 16).
	Nodes int
	// Scheme is the optimization policy (default Lite).
	Scheme Scheme
	// FastTarget is the detection target for the Fast scheme (default
	// 30 s, the paper's example).
	FastTarget time.Duration
	// PollInterval is τ (default 30 min; set seconds for demos).
	PollInterval time.Duration
	// MaintenanceInterval is the protocol period (default 2·τ).
	MaintenanceInterval time.Duration
	// ContentMode fetches real documents and runs the difference engine
	// (default true for Cluster, where feeds are generator-backed).
	ContentMode bool
	// Replicas is f, the owner replication factor (default 2).
	Replicas int
	// DelegateThreshold is the per-channel subscriber count at which a
	// channel owner recruits leaf-set delegates and shards notification
	// fan-out across them, keeping the owner's per-update message count
	// O(delegates) instead of O(entry nodes). Zero or negative disables
	// sharding (the default).
	DelegateThreshold int
	// Seed drives deterministic randomness (default 1).
	Seed int64
}

func (o Options) withDefaults() (Options, error) {
	if o.Nodes == 0 {
		o.Nodes = 16
	}
	if o.Nodes < 1 {
		return o, fmt.Errorf("corona: Nodes must be positive, got %d", o.Nodes)
	}
	if o.PollInterval == 0 {
		o.PollInterval = 30 * time.Minute
	}
	if o.PollInterval < 0 {
		return o, fmt.Errorf("corona: PollInterval must be positive")
	}
	if o.MaintenanceInterval == 0 {
		o.MaintenanceInterval = 2 * o.PollInterval
	}
	if o.FastTarget == 0 {
		o.FastTarget = 30 * time.Second
	}
	if o.Replicas == 0 {
		o.Replicas = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}

// ChannelStatus reports the cloud's view of one channel.
type ChannelStatus struct {
	// URL is the channel identity.
	URL string
	// Subscribers is the owner's subscriber count.
	Subscribers int
	// Level is the current polling level (lower = more pollers).
	Level int
	// Pollers is the number of nodes currently polling the channel.
	Pollers int
	// Orphan marks channels pinned at owner-only polling (paper §4).
	Orphan bool
	// Delegates is the number of fan-out delegates the owner has
	// recruited for the channel (zero below DelegateThreshold).
	Delegates int
}

// NodeActivity is one node's cumulative fan-out work, labeled with its
// role for a channel of interest (see ChannelActivity).
type NodeActivity struct {
	// Node is the node's overlay identifier prefix.
	Node string
	// Owner marks the channel's current owner.
	Owner bool
	// Delegate marks a node carrying a fan-out partition for the channel.
	Delegate bool
	// Notifications counts client notifications the node delivered.
	Notifications uint64
	// NotifyBatches counts entry-node notification batches it emitted.
	NotifyBatches uint64
	// DelegatePushes counts delegate disseminations it sent (owner only).
	DelegatePushes uint64
}

// Stats summarizes cloud activity.
type Stats struct {
	// Nodes is the cloud size.
	Nodes int
	// Polls is the total polls issued to content servers.
	Polls uint64
	// BytesServed is the total origin bytes transferred.
	BytesServed uint64
	// UpdatesDetected counts first-hand update detections.
	UpdatesDetected uint64
	// Notifications counts client notifications delivered.
	Notifications uint64
	// WireBytes is the codec-measured overlay traffic volume: what the
	// cloud's message flow would have cost on a real wire.
	WireBytes uint64
	// MessagesDropped counts overlay messages lost in transit — crashed
	// or partitioned hosts, injected loss — or to transport backpressure.
	MessagesDropped uint64
}

package corona

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"reflect"
	"strings"
	"time"

	"corona/internal/core"
	"corona/internal/metrics"
	"corona/internal/store"
)

// liveStatKind says how a LiveStats field is exposed.
type liveStatKind int

const (
	statCounter liveStatKind = iota
	statGauge
)

// liveStatSpec maps one numeric LiveStats field (by dot path, embedded
// structs included) to its exposed metric. The table is the single
// source of truth for the snapshot-fed scalar metrics: the admin
// registry iterates it to register and refresh them, and the
// completeness test reflects over LiveStats to assert no numeric field
// is missing from it — adding a counter to core.Stats without wiring it
// here fails the build's tests, not a dashboard six weeks later.
type liveStatSpec struct {
	field string
	name  string
	help  string
	kind  liveStatKind
}

var liveStatsSpec = []liveStatSpec{
	{"Stats.PollsIssued", "corona_polls_issued_total", "HTTP polls issued against channel origins.", statCounter},
	{"Stats.UpdatesDetected", "corona_updates_detected_total", "Channel updates detected first-hand by this node's polls.", statCounter},
	{"Stats.UpdatesReceived", "corona_updates_received_total", "Channel updates learned via cooperative dissemination.", statCounter},
	{"Stats.NotificationsSent", "corona_notifications_sent_total", "Per-client notifications sent toward entry nodes.", statCounter},
	{"Stats.NotifyBatchesSent", "corona_notify_batches_sent_total", "Entry-node notify batches emitted (local and overlay).", statCounter},
	{"Stats.DelegateUpdates", "corona_delegate_updates_total", "Per-delegate update disseminations sent by owned channels.", statCounter},
	{"Stats.MaintenanceRounds", "corona_maintenance_rounds_total", "Maintenance protocol rounds completed.", statCounter},
	{"Stats.LevelChanges", "corona_level_changes_total", "Polling level transitions applied by maintenance.", statCounter},
	{"Stats.LeaseRefreshes", "corona_lease_refreshes_total", "Entry-node lease heartbeats applied at owned channels.", statCounter},
	{"Stats.LeaseReroutes", "corona_lease_reroutes_total", "Dead entry records re-pointed by the lease sweep.", statCounter},
	{"Stats.OwnerClaimsRouted", "corona_owner_claims_routed_total", "Anti-entropy ownership claims routed by displaced owners.", statCounter},
	{"Stats.SubscriptionsHeld", "corona_subscriptions_held", "Client subscriptions entering the overlay through this node.", statGauge},
	{"Stats.ChannelsOwned", "corona_channels_owned", "Channels this node currently owns.", statGauge},
	{"Stats.ChannelsPolled", "corona_channels_polled", "Channels this node currently polls at some level.", statGauge},
	{"Stats.DelegatesHeld", "corona_delegates_held", "Fan-out partitions this node carries for other owners.", statGauge},
	{"Stats.DelegatesActive", "corona_delegates_active", "Delegates recruited across this node's owned channels.", statGauge},
	{"Store.Generation", "corona_store_generation", "Durable store snapshot/WAL generation.", statGauge},
	{"Store.WALBytes", "corona_store_wal_bytes", "Current write-ahead log size on disk.", statGauge},
	{"Store.RecordsSinceSnapshot", "corona_store_records_since_snapshot", "WAL records a restart would replay.", statGauge},
	{"Undeliverable", "corona_gateway_undeliverable_total", "Notifications with neither an attached deliverer nor an IM account.", statCounter},
	{"NotifyDropped", "corona_client_notify_dropped_total", "Notification frames dropped on full client outbound queues.", statCounter},
	{"NotifyBatchesRecv", "corona_gateway_notify_batches_total", "Batched notification calls received by the gateway.", statCounter},
	{"BatchClients", "corona_gateway_batch_clients_total", "Client deliveries covered by gateway notification batches.", statCounter},
}

// liveStatValue resolves a liveStatsSpec dot path against a LiveStats
// snapshot and returns the field as a float64. The second result is
// false when the path does not name a numeric field — a spec/struct
// mismatch the completeness test turns into a failure.
func liveStatValue(ls LiveStats, path string) (float64, bool) {
	v := reflect.ValueOf(ls)
	for _, part := range strings.Split(path, ".") {
		if v.Kind() != reflect.Struct {
			return 0, false
		}
		v = v.FieldByName(part)
		if !v.IsValid() {
			return 0, false
		}
	}
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return float64(v.Uint()), true
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return float64(v.Int()), true
	case reflect.Float32, reflect.Float64:
		return v.Float(), true
	}
	return 0, false
}

// newAdminRegistry builds the node's metric registry: the liveStatsSpec
// scalars, the overlay/transport counters, the store's commit-latency
// histogram re-exposed in its native buckets, per-peer queue gauges,
// and the per-stage notification latency histograms (which it wires
// into the core node and — when running — the client-protocol server).
// Snapshot-fed families refresh in one OnGather pass per scrape, each
// source read through a single coherent snapshot.
func (ln *LiveNode) newAdminRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()

	counters := make(map[string]*metrics.Counter, len(liveStatsSpec))
	gauges := make(map[string]*metrics.Gauge, len(liveStatsSpec))
	for _, spec := range liveStatsSpec {
		switch spec.kind {
		case statCounter:
			counters[spec.field] = reg.Counter(spec.name, spec.help)
		case statGauge:
			gauges[spec.field] = reg.Gauge(spec.name, spec.help)
		}
	}
	storeEnabled := reg.Gauge("corona_store_enabled", "1 when the node persists channel state (DataDir set).")
	storeIOError := reg.Gauge("corona_store_io_error", "1 when the store has latched an IO error and durability is degraded.")
	commitBounds := make([]float64, len(store.CommitLatencyBounds))
	for i, b := range store.CommitLatencyBounds {
		commitBounds[i] = b.Seconds()
	}
	commitLat := reg.Histogram("corona_store_commit_latency_seconds",
		"Group-commit (write+fsync) latency, re-exposed from the store's native buckets.", commitBounds)

	overlaySent := reg.Counter("corona_overlay_messages_sent_total", "Overlay messages originated by this node.")
	overlayRouted := reg.Counter("corona_overlay_messages_routed_total", "Overlay messages forwarded through this node.")
	overlayDelivered := reg.Counter("corona_overlay_messages_delivered_total", "Overlay messages delivered to this node.")
	overlayBroadcasts := reg.Counter("corona_overlay_broadcasts_sent_total", "Leaf-set broadcasts originated by this node.")
	overlayHops := reg.Counter("corona_overlay_route_hops_total", "Accumulated hop counts of delivered overlay messages.")
	overlayRepairs := reg.Counter("corona_overlay_repairs_total", "Leaf-set and routing-table repairs performed.")
	overlayJoined := reg.Gauge("corona_overlay_joined", "1 once the node's ring join handshake has completed.")
	wireSent := reg.Counter("corona_wire_bytes_sent_total", "Bytes written to overlay peer connections.")
	wireRecv := reg.Counter("corona_wire_bytes_received_total", "Bytes read from overlay peer connections.")
	wireDropped := reg.Counter("corona_wire_dropped_total", "Outbound overlay messages discarded locally before the wire.")

	peerDepth := reg.GaugeVec("corona_peer_queue_depth", "Outbound send-queue depth toward one overlay peer.", "peer")
	peerCapacity := reg.GaugeVec("corona_peer_queue_capacity", "Outbound send-queue capacity toward one overlay peer.", "peer")
	peerDrops := reg.CounterVec("corona_peer_queue_dropped_total", "Messages toward one overlay peer dropped locally.", "peer")

	clientSessions := reg.Gauge("corona_client_sessions", "Client-protocol sessions currently attached.")

	stage := reg.HistogramVec("corona_notify_stage_latency_seconds",
		"Wall-clock latency from update detection to each notification pipeline stage.",
		metrics.DurationBuckets, "stage")
	ownerSend := stage.With("owner_send")
	entryRecv := stage.With("entry_recv")
	clientEnqueue := stage.With("client_enqueue")
	webEnqueue := stage.With("web_enqueue")
	ln.node.SetNotifyLatencyObservers(
		func(d time.Duration) { ownerSend.Observe(d.Seconds()) },
		func(d time.Duration) { entryRecv.Observe(d.Seconds()) },
	)
	ln.obsClientEnqueue = func(d time.Duration) { clientEnqueue.Observe(d.Seconds()) }
	if ln.clients != nil {
		ln.clients.SetNotifyLatencyObserver(ln.obsClientEnqueue)
	}
	// The web gateway registers its own labeled families (sessions by
	// transport, replay hits/misses/wraps, drops and disconnects by
	// cause) and observes the web_enqueue stage. Each wiring happens in
	// whichever of ServeAdmin/ServeWeb runs second, so both orders work
	// and each instrument registers exactly once.
	ln.obsWebEnqueue = func(d time.Duration) { webEnqueue.Observe(d.Seconds()) }
	if ln.web != nil {
		ln.web.RegisterMetrics(reg)
		ln.web.SetNotifyLatencyObserver(ln.obsWebEnqueue)
	}

	reg.OnGather(func() {
		ls := ln.Stats()
		for _, spec := range liveStatsSpec {
			v, ok := liveStatValue(ls, spec.field)
			if !ok {
				continue // spec/struct mismatch; the completeness test catches it
			}
			switch spec.kind {
			case statCounter:
				counters[spec.field].Set(uint64(v))
			case statGauge:
				gauges[spec.field].Set(v)
			}
		}
		if ls.Store.Enabled {
			storeEnabled.Set(1)
			commitLat.SetSnapshot(ls.Store.CommitLatency, ls.Store.CommitLatencySum.Seconds())
		}
		if ls.Store.Err != "" {
			storeIOError.Set(1)
		} else {
			storeIOError.Set(0)
		}

		os := ln.overlay.Stats()
		overlaySent.Set(os.MessagesSent)
		overlayRouted.Set(os.MessagesRouted)
		overlayDelivered.Set(os.MessagesDelivered)
		overlayBroadcasts.Set(os.BroadcastsSent)
		overlayHops.Set(os.RouteHopsTotal)
		overlayRepairs.Set(os.Repairs)
		if ln.overlay.Joined() {
			overlayJoined.Set(1)
		} else {
			overlayJoined.Set(0)
		}
		sent, recv := ln.transport.WireBytes()
		wireSent.Set(sent)
		wireRecv.Set(recv)
		wireDropped.Set(ln.transport.Dropped())

		// Peer queues churn with the leaf set; rebuild the label sets
		// from scratch so departed peers' series disappear.
		peerDepth.Reset()
		peerCapacity.Reset()
		peerDrops.Reset()
		for _, q := range ln.PeerQueues() {
			peerDepth.With(q.Endpoint).Set(float64(q.Depth))
			peerCapacity.With(q.Endpoint).Set(float64(q.Capacity))
			peerDrops.With(q.Endpoint).Set(q.Drops)
		}

		if ln.clients != nil {
			clientSessions.Set(float64(ln.clients.Sessions()))
		}
	})
	return reg
}

// adminChannel is the JSON projection of one core.ChannelRecords entry
// served by /channels: routing state flattened to counts and endpoint
// strings, stable enough for operators and scripts to depend on.
type adminChannel struct {
	URL             string   `json:"url"`
	Owner           bool     `json:"owner"`
	Replica         bool     `json:"replica"`
	OwnerEpoch      uint64   `json:"owner_epoch"`
	LastVersion     uint64   `json:"last_version"`
	Polling         bool     `json:"polling"`
	SubscriberCount int      `json:"subscriber_count"`
	Leases          int      `json:"leases"`
	Delegates       []string `json:"delegates,omitempty"`
	DelegateFrom    string   `json:"delegate_from,omitempty"`
	PartitionSize   int      `json:"partition_size,omitempty"`
}

func adminChannelFrom(rec core.ChannelRecords) adminChannel {
	ch := adminChannel{
		URL:             rec.URL,
		Owner:           rec.Owner,
		Replica:         rec.Replica,
		OwnerEpoch:      rec.OwnerEpoch,
		LastVersion:     rec.LastVersion,
		Polling:         rec.Polling,
		SubscriberCount: rec.SubscriberCount,
		Leases:          len(rec.Leases),
		DelegateFrom:    rec.DelegateFrom.Endpoint,
		PartitionSize:   len(rec.DelegatePartition),
	}
	for _, d := range rec.Delegates {
		ch.Delegates = append(ch.Delegates, d.Endpoint)
	}
	return ch
}

// ServeAdmin starts the HTTP admin plane on bind and returns the bound
// address. It serves /metrics (Prometheus text exposition), /healthz
// (process liveness, always 200), /readyz (200 once the node has joined
// the ring and the durable store has no latched IO error, 503
// otherwise), /channels (JSON snapshot of per-channel routing state),
// and /debug/pprof. A node serves at most one admin listener, which
// closes with the node; StartLiveNode calls it when AdminBind is set,
// before the ring join, so readiness is observable from the start.
func (ln *LiveNode) ServeAdmin(bind string) (addr string, err error) {
	if ln.admin != nil {
		return "", fmt.Errorf("corona: admin listener already running at %s", ln.adminL.Addr())
	}
	reg := ln.newAdminRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", metrics.ContentType)
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !ln.overlay.Joined() {
			http.Error(w, "not ready: overlay join pending", http.StatusServiceUnavailable)
			return
		}
		if ln.store != nil {
			if serr := ln.store.Err(); serr != nil {
				http.Error(w, "not ready: store: "+serr.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		if ln.web != nil && ln.web.Closed() {
			http.Error(w, "not ready: web gateway stopped", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/channels", func(w http.ResponseWriter, r *http.Request) {
		channels := []adminChannel{}
		ln.node.EachChannel(func(rec core.ChannelRecords) {
			channels = append(channels, adminChannelFrom(rec))
		})
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(channels)
	})
	// The admin mux is private, so pprof is registered explicitly rather
	// than through net/http/pprof's DefaultServeMux side effects.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	l, err := net.Listen("tcp", bind)
	if err != nil {
		return "", fmt.Errorf("corona: admin listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(l)
	ln.admin = srv
	ln.adminL = l
	ln.adminReg = reg
	return l.Addr().String(), nil
}

// AdminAddr returns the admin-plane listen address, empty when no admin
// listener is running.
func (ln *LiveNode) AdminAddr() string {
	if ln.adminL == nil {
		return ""
	}
	return ln.adminL.Addr().String()
}

// Metrics returns the admin plane's registry, nil before ServeAdmin.
// Embedders can add their own instruments to it; they appear on
// /metrics alongside the node's.
func (ln *LiveNode) Metrics() *metrics.Registry { return ln.adminReg }

module corona

go 1.24

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (§5), plus micro and ablation benches for the design choices
// called out in DESIGN.md.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Figure benches execute the full experiment at bench scale (see
// internal/experiments.BenchSimulation) and print the paper-shaped series
// once; set CORONA_SCALE=paper for the full 1024-node, 20,000-channel,
// 1,000,000-subscription configuration.
package corona

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corona/internal/codec"
	"corona/internal/core"
	"corona/internal/diffengine"
	"corona/internal/eventsim"
	"corona/internal/experiments"
	"corona/internal/honeycomb"
	"corona/internal/ids"
	"corona/internal/netwire"
	"corona/internal/pastry"
	"corona/internal/simnet"
	"corona/internal/wirebin"
)

// printOnce gates series output so repeated bench iterations stay quiet.
var printOnce sync.Map

func emit(b *testing.B, key, output string) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		fmt.Printf("\n===== %s =====\n%s\n", key, output)
	}
}

// Experiment runs are deterministic for a given scale, so figure pairs
// that derive from the same runs (3/4, 5/6, 7/8, 9/10) share one
// execution through this memo.
var (
	memoMu  sync.Mutex
	memo34  = map[experiments.Scale]*experiments.Figure34Result{}
	memo56  = map[experiments.Scale]*experiments.Figure56Result{}
	memo78  = map[experiments.Scale]*experiments.Figure78Result{}
	memo910 = map[experiments.Scale]*experiments.Figure910Result{}
)

func figure34(scale experiments.Scale) *experiments.Figure34Result {
	memoMu.Lock()
	defer memoMu.Unlock()
	if r, ok := memo34[scale]; ok {
		return r
	}
	r := experiments.RunFigure34(scale)
	memo34[scale] = r
	return r
}

func figure56(scale experiments.Scale) *experiments.Figure56Result {
	memoMu.Lock()
	defer memoMu.Unlock()
	if r, ok := memo56[scale]; ok {
		return r
	}
	r := experiments.RunFigure56(scale)
	memo56[scale] = r
	return r
}

func figure78(scale experiments.Scale) *experiments.Figure78Result {
	memoMu.Lock()
	defer memoMu.Unlock()
	if r, ok := memo78[scale]; ok {
		return r
	}
	r := experiments.RunFigure78(scale)
	memo78[scale] = r
	return r
}

func figure910(scale experiments.Scale) *experiments.Figure910Result {
	memoMu.Lock()
	defer memoMu.Unlock()
	if r, ok := memo910[scale]; ok {
		return r
	}
	r := experiments.RunFigure910(scale)
	memo910[scale] = r
	return r
}

// BenchmarkFigure3NetworkLoad regenerates Figure 3: network load per
// channel (kbps) over time for Legacy RSS, Corona-Lite, and Corona-Fast.
// Corona-Lite settles to the legacy load; the paper's headline claim.
func BenchmarkFigure3NetworkLoad(b *testing.B) {
	scale := experiments.SimScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res := figure34(scale)
		var sb []byte
		for _, s := range res.Load {
			sb = append(sb, s.Render()...)
		}
		emit(b, "Figure 3: network load per channel (kbps) vs time", string(sb))
		reportTail(b, "legacy_kbps", res.Load[0].Values, scale)
		reportTail(b, "lite_kbps", res.Load[1].Values, scale)
		reportTail(b, "fast_kbps", res.Load[2].Values, scale)
	}
}

// BenchmarkFigure4UpdateDetection regenerates Figure 4: average update
// detection time over time. Paper: legacy ≈15 min, Corona-Lite ≈1 min,
// Corona-Fast holds its 30 s target.
func BenchmarkFigure4UpdateDetection(b *testing.B) {
	scale := experiments.SimScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res := figure34(scale)
		var sb []byte
		for _, s := range res.Detect {
			sb = append(sb, s.Render()...)
		}
		emit(b, "Figure 4: average update detection time (min) vs time", string(sb))
		reportTail(b, "legacy_min", res.Detect[0].Values, scale)
		reportTail(b, "lite_min", res.Detect[1].Values, scale)
		reportTail(b, "fast_min", res.Detect[2].Values, scale)
	}
}

// BenchmarkFigure5PollersPerChannel regenerates Figure 5: polling nodes
// per channel by popularity rank — legacy's straight Zipf line against
// Corona's level plateaus.
func BenchmarkFigure5PollersPerChannel(b *testing.B) {
	scale := experiments.SimScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res := figure56(scale)
		emit(b, "Figure 5: pollers per channel vs popularity rank", res.Render())
		if n := len(res.CoronaPollers); n > 0 {
			b.ReportMetric(res.CoronaPollers[0].Value, "pollers_rank1")
			b.ReportMetric(res.CoronaPollers[n-1].Value, "pollers_rankN")
		}
	}
}

// BenchmarkFigure6DetectionByPopularity regenerates Figure 6: per-channel
// update detection time by popularity rank — popular channels gain an
// order of magnitude more.
func BenchmarkFigure6DetectionByPopularity(b *testing.B) {
	scale := experiments.SimScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res := figure56(scale)
		emit(b, "Figure 6: detection time per channel vs popularity rank", res.Render())
		if n := len(res.CoronaDetect); n > 0 {
			b.ReportMetric(res.CoronaDetect[0].Value, "top_rank_sec")
			b.ReportMetric(res.CoronaDetect[n-1].Value, "bottom_rank_sec")
		}
	}
}

// BenchmarkFigure7FairVsLite regenerates Figure 7: detection time ranked
// by channel update interval, Corona-Lite vs Corona-Fair — Fair aligns
// detection speed with update rate.
func BenchmarkFigure7FairVsLite(b *testing.B) {
	scale := experiments.SimScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res := figure78(scale)
		emit(b, "Figures 7/8: detection by update-interval rank", res.Render())
	}
}

// BenchmarkFigure8FairVariants regenerates Figure 8: the Sqrt and Log
// fairness metrics repair Fair's bias against rarely-changing channels.
func BenchmarkFigure8FairVariants(b *testing.B) {
	scale := experiments.SimScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res := figure78(scale)
		// Report the mean detection of the slowest-updating decile under
		// each variant: the bias Figure 8 is about.
		for _, scheme := range []string{"Corona-Fair", "Corona-Fair-Sqrt", "Corona-Fair-Log"} {
			pts := res.ByScheme[scheme]
			if len(pts) < 10 {
				continue
			}
			tail := pts[len(pts)*9/10:]
			sum := 0.0
			for _, p := range tail {
				sum += p.Value
			}
			b.ReportMetric(sum/float64(len(tail)), scheme+"_slow_decile_sec")
		}
		emit(b, "Figure 8 (slow-decile bias, see Figures 7/8 print above)", "")
	}
}

// BenchmarkTable2Summary regenerates Table 2: average detection time and
// load for Legacy-RSS and all five Corona schemes. Paper row order and
// units are preserved.
func BenchmarkTable2Summary(b *testing.B) {
	scale := experiments.SimScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable2(scale)
		emit(b, "Table 2: performance summary", res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.DetectionSec, row.Scheme+"_sec")
		}
	}
}

// BenchmarkFigure9DeploymentDetection regenerates Figure 9: the
// deployment experiment's average update detection time over time,
// Corona vs legacy RSS, under wide-area latencies and ramped
// subscriptions.
func BenchmarkFigure9DeploymentDetection(b *testing.B) {
	scale := experiments.DeployScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res := figure910(scale)
		var sb []byte
		for _, s := range res.Detect {
			sb = append(sb, s.Render()...)
		}
		emit(b, "Figure 9: deployment detection time (s) vs time", string(sb))
		reportTail(b, "legacy_sec", res.Detect[0].Values, scale)
		reportTail(b, "corona_sec", res.Detect[1].Values, scale)
	}
}

// BenchmarkFigure10DeploymentLoad regenerates Figure 10: total polls per
// minute over time in the deployment — Corona stays below legacy.
func BenchmarkFigure10DeploymentLoad(b *testing.B) {
	scale := experiments.DeployScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res := figure910(scale)
		var sb []byte
		for _, s := range res.Polls {
			sb = append(sb, s.Render()...)
		}
		emit(b, "Figure 10: deployment polls per minute vs time", string(sb))
		reportTail(b, "legacy_ppm", res.Polls[0].Values, scale)
		reportTail(b, "corona_ppm", res.Polls[1].Values, scale)
	}
}

// reportTail reports the post-warm-up mean of a series as a bench metric.
func reportTail(b *testing.B, name string, vals []float64, scale experiments.Scale) {
	skip := int(scale.WarmUp / scale.Bucket)
	sum, n := 0.0, 0
	for i := skip; i < len(vals); i++ {
		if !math.IsNaN(vals[i]) {
			sum += vals[i]
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), name)
	}
}

// --- Micro benches -------------------------------------------------------

// liteEntries builds a Corona-Lite-shaped honeycomb instance of size m.
func liteEntries(m int, seed int64) []honeycomb.Entry {
	rng := rand.New(rand.NewSource(seed))
	env := core.TradeoffEnv{Nodes: 1024, Radix: 16, PollInterval: 30 * time.Minute, MaxLevel: 3}
	entries := make([]honeycomb.Entry, m)
	for i := range entries {
		tr := core.ChannelTradeoff{
			Q:     math.Exp(rng.Float64() * 8),
			SNorm: 0.5 + rng.Float64(),
			U:     time.Duration(math.Exp(rng.Float64()*12)) * time.Second,
		}
		entries[i] = core.BuildEntry(core.PolicyConfig{Scheme: core.SchemeLite}, env, tr, i)
	}
	return entries
}

// BenchmarkHoneycombSolver measures the optimizer at the paper's channel
// count — the O(M log M log N) claim of §3.2.
func BenchmarkHoneycombSolver(b *testing.B) {
	for _, m := range []int{1000, 20000} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			entries := liteEntries(m, 1)
			budget := float64(m) * 50
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol := honeycomb.Solve(entries, budget)
				if !sol.Feasible {
					b.Fatal("infeasible")
				}
			}
		})
	}
}

// BenchmarkAblationSolverVsBruteForce verifies and times the solver
// against the exponential exact optimum on small instances — the "within
// one channel of optimal" accuracy claim.
func BenchmarkAblationSolverVsBruteForce(b *testing.B) {
	entries := liteEntries(8, 2)
	budget := 8.0 * 70
	exact := honeycomb.BruteForce(entries, budget)
	approx := honeycomb.Solve(entries, budget)
	if approx.Feasible && exact.Feasible {
		b.ReportMetric(approx.TotalF/exact.TotalF, "objective_ratio")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		honeycomb.Solve(entries, budget)
	}
}

// BenchmarkAblationProportionalHeuristic compares the Honeycomb optimum
// against the "pollers proportional to subscribers" heuristic the paper
// argues suffers diminishing returns (§3.1): same budget, worse objective.
func BenchmarkAblationProportionalHeuristic(b *testing.B) {
	entries := liteEntries(2000, 3)
	budget := 2000.0 * 50
	opt := honeycomb.Solve(entries, budget)

	// Heuristic: spend the same budget assigning levels by popularity
	// quantile (top gets level 0, next level 1, ...).
	heuristicF := func() float64 {
		type qe struct {
			idx int
			q   float64
		}
		qs := make([]qe, len(entries))
		for i, e := range entries {
			qs[i] = qe{i, e.F[e.MaxLevel]} // F at max level ∝ q
		}
		// Simple proportional allocation: level by popularity rank.
		totalF, totalG := 0.0, 0.0
		for _, e := range qs {
			ent := entries[e.idx]
			level := ent.MaxLevel
			for l := ent.MaxLevel; l >= 0; l-- {
				if totalG+ent.G[l] <= budget*float64(e.idx+1)/float64(len(entries)) {
					level = l
					break
				}
			}
			totalF += ent.F[level]
			totalG += ent.G[level]
		}
		return totalF
	}
	b.ReportMetric(heuristicF()/opt.TotalF, "heuristic_vs_optimal")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		honeycomb.Solve(entries, budget)
	}
}

// BenchmarkAblationTradeoffBins sweeps the cluster-bin count: solution
// quality of optimizing over binned clusters versus fine-grained truth.
func BenchmarkAblationTradeoffBins(b *testing.B) {
	entries := liteEntries(4000, 4)
	budget := 4000.0 * 50
	exactSol := honeycomb.Solve(entries, budget)
	for _, bins := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			// Re-derive each entry's factors into a cluster set, then
			// solve over the cluster representatives.
			cs := honeycomb.NewClusterSet(bins, 3)
			rng := rand.New(rand.NewSource(4))
			for range entries {
				cs.Add(honeycomb.ChannelFactors{
					Q: math.Exp(rng.Float64() * 8),
					S: 0.5 + rng.Float64(),
					U: math.Exp(rng.Float64() * 12),
				})
			}
			env := core.TradeoffEnv{Nodes: 1024, Radix: 16, PollInterval: 30 * time.Minute, MaxLevel: 3}
			var clustered []honeycomb.Entry
			for _, c := range cs.NonEmpty() {
				tr := core.ChannelTradeoff{Q: c.MeanQ(), SNorm: c.MeanS(), U: time.Duration(c.MeanU()) * time.Second}
				e := core.BuildEntry(core.PolicyConfig{Scheme: core.SchemeLite}, env, tr, nil)
				e.Weight = c.Count
				clustered = append(clustered, e)
			}
			sol := honeycomb.Solve(clustered, budget)
			if exactSol.Feasible && sol.Feasible && exactSol.TotalF > 0 {
				b.ReportMetric(sol.TotalF/exactSol.TotalF, "clustered_vs_exact")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				honeycomb.Solve(clustered, budget)
			}
		})
	}
}

// BenchmarkDiffEngine measures extraction plus Myers diff on feed-sized
// documents — the per-update cost of the difference engine (§3.4).
func BenchmarkDiffEngine(b *testing.B) {
	e := diffengine.RSSProfile()
	old := makeFeedDoc(100, 0)
	new := makeFeedDoc(100, 2) // two new items
	b.SetBytes(int64(len(new)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := e.DiffDocuments(old, new, 1, 2)
		if d.Empty() {
			b.Fatal("expected a diff")
		}
	}
}

func makeFeedDoc(items, shift int) string {
	doc := "<rss version=\"2.0\"><channel><title>bench</title>\n"
	for i := 0; i < items; i++ {
		doc += fmt.Sprintf("<item><title>story %d</title><guid>g%d</guid><description>body of story %d with some words</description></item>\n", i+shift, i+shift, i+shift)
	}
	return doc + "</channel></rss>\n"
}

// BenchmarkPastryRouting measures prefix-routing next-hop computation —
// the per-message overlay cost, expected O(log_b N) hops.
func BenchmarkPastryRouting(b *testing.B) {
	sim := eventsim.New(1)
	net := simnet.New(sim, simnet.FixedLatency(0))
	rng := sim.RNG("bench-route")
	const n = 256
	nodes := make([]*pastry.Node, n)
	for i := range nodes {
		ep := fmt.Sprintf("sim://%d", i)
		var node *pastry.Node
		endpoint := net.Attach(ep, func(m pastry.Message) {
			if node != nil {
				node.Deliver(m)
			}
		})
		node = pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.Random(rng), Endpoint: ep}, endpoint, sim)
		nodes[i] = node
	}
	pastry.BuildStaticOverlay(nodes)
	delivered := 0
	for _, nd := range nodes {
		nd.Handle("bench.route", func(pastry.Message) { delivered++ })
	}
	keys := make([]ids.ID, 1024)
	for i := range keys {
		keys[i] = ids.Random(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%n].Route(keys[i%len(keys)], "bench.route", nil)
		sim.RunFor(time.Second)
	}
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// BenchmarkWedgeMulticast measures the DAG broadcast that disseminates
// diffs to a level-1 wedge (§3.4).
func BenchmarkWedgeMulticast(b *testing.B) {
	sim := eventsim.New(2)
	net := simnet.New(sim, simnet.FixedLatency(0))
	rng := sim.RNG("bench-bcast")
	const n = 256
	nodes := make([]*pastry.Node, n)
	for i := range nodes {
		ep := fmt.Sprintf("sim://%d", i)
		var node *pastry.Node
		endpoint := net.Attach(ep, func(m pastry.Message) {
			if node != nil {
				node.Deliver(m)
			}
		})
		node = pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.Random(rng), Endpoint: ep}, endpoint, sim)
		nodes[i] = node
	}
	pastry.BuildStaticOverlay(nodes)
	received := 0
	for _, nd := range nodes {
		nd.Handle("bench.bcast", func(pastry.Message) { received++ })
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%n].Broadcast(1, "bench.bcast", nil)
		sim.RunFor(time.Second)
	}
	b.ReportMetric(float64(received)/float64(b.N), "nodes_reached")
}

// --- Wire-layer benches --------------------------------------------------

// wireBenchPayload mimics an update dissemination message: a URL, version
// metadata, and a diff body of realistic size.
type wireBenchPayload struct {
	URL     string `json:"url"`
	Version uint64 `json:"version"`
	Diff    string `json:"diff"`
	Bytes   int    `json:"bytes"`
}

func init() {
	codec.RegisterPayload("bench.wire", func() any { return &wireBenchPayload{} })
}

func wireBenchMessage() pastry.Message {
	diff := make([]byte, 256)
	for i := range diff {
		diff[i] = byte('a' + i%26)
	}
	return pastry.Message{
		Type:    "bench.wire",
		Key:     ids.HashString("bench-channel"),
		From:    pastry.Addr{ID: ids.HashString("bench-node"), Endpoint: "10.0.0.1:9001"},
		Hops:    2,
		Payload: &wireBenchPayload{URL: "http://example.com/feed.rss", Version: 17, Diff: string(diff), Bytes: 256},
	}
}

// BenchmarkWireEncode measures per-message serialization cost for both
// codecs — the CPU side of the wire path.
func BenchmarkWireEncode(b *testing.B) {
	msg := wireBenchMessage()
	for _, c := range []codec.Codec{codec.JSON, codec.Binary} {
		b.Run(c.Name(), func(b *testing.B) {
			body, err := c.Encode(msg)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(body)))
			b.ReportMetric(float64(len(body)), "bytes/msg")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireRoundTrip measures delivered-message throughput over real
// loopback TCP. "sync-json" reproduces the seed's wire behavior — one JSON
// envelope per frame, one write per message — while "batched-binary" is
// the default path: binary codec, up to 64 messages coalesced per frame.
func BenchmarkWireRoundTrip(b *testing.B) {
	cases := []struct {
		name  string
		c     codec.Codec
		batch int
	}{
		{"sync-json", codec.JSON, 1},
		{"batched-binary", codec.Binary, 0}, // 0 = default MaxBatch
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var got atomic.Int64
			rx, err := netwire.Listen("127.0.0.1:0", func(pastry.Message) { got.Add(1) })
			if err != nil {
				b.Fatal(err)
			}
			defer rx.Close()
			tx, err := netwire.Listen("127.0.0.1:0", nil)
			if err != nil {
				b.Fatal(err)
			}
			defer tx.Close()
			tx.Codec = tc.c
			tx.MaxBatch = tc.batch
			tx.Backpressure = netwire.Block // lossless: every send must arrive
			to := pastry.Addr{ID: ids.HashString("rx"), Endpoint: rx.Addr()}
			msg := wireBenchMessage()
			// Warm the connection so dialing stays out of the measurement.
			if err := tx.Send(to, msg); err != nil {
				b.Fatal(err)
			}
			for got.Load() < 1 {
				runtime.Gosched()
			}
			got.Store(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tx.Send(to, msg); err != nil {
					b.Fatal(err)
				}
			}
			for got.Load() < int64(b.N) {
				runtime.Gosched()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}

// binWireBenchPayload is wireBenchPayload with the native binary payload
// contract, for measuring the zero-copy path against the JSON fallback.
type binWireBenchPayload struct {
	URL     string `json:"url"`
	Version uint64 `json:"version"`
	Diff    string `json:"diff"`
	Bytes   int    `json:"bytes"`
}

// AppendBinary implements codec.BinaryMarshaler.
func (p *binWireBenchPayload) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, p.URL)
	dst = wirebin.AppendUvarint(dst, p.Version)
	dst = wirebin.AppendString(dst, p.Diff)
	return wirebin.AppendSint(dst, p.Bytes), nil
}

// DecodeBinary implements codec.BinaryUnmarshaler.
func (p *binWireBenchPayload) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	p.URL = r.String()
	p.Version = r.Uvarint()
	p.Diff = r.String()
	p.Bytes = r.Sint()
	return r.Err()
}

func init() {
	codec.RegisterPayload("bench.wire.bin", func() any { return &binWireBenchPayload{} })
}

// BenchmarkUpdateDissemination runs the end-to-end hot path of §3.4 under
// simnet with codec-measured byte accounting: a level-1 wedge broadcast of
// an update diff floods the DAG across 256 nodes, every hop paying the
// measured encode cost of its fan-out exactly as a live deployment pays
// the wire encode. The two payload variants compare the JSON-fallback
// path against the native binary zero-copy path.
func BenchmarkUpdateDissemination(b *testing.B) {
	diff := make([]byte, 1024)
	for i := range diff {
		diff[i] = byte('a' + i%26)
	}
	cases := []struct {
		name    string
		msgType string
		payload any
	}{
		{"json-payload", "bench.wire", &wireBenchPayload{URL: "http://example.com/feed.rss", Version: 17, Diff: string(diff), Bytes: len(diff)}},
		{"binary-payload", "bench.wire.bin", &binWireBenchPayload{URL: "http://example.com/feed.rss", Version: 17, Diff: string(diff), Bytes: len(diff)}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			sim := eventsim.New(5)
			net := simnet.New(sim, simnet.FixedLatency(0))
			rng := sim.RNG("bench-dissem")
			const n = 256
			nodes := make([]*pastry.Node, n)
			for i := range nodes {
				ep := fmt.Sprintf("sim://%d", i)
				var node *pastry.Node
				endpoint := net.Attach(ep, func(m pastry.Message) {
					if node != nil {
						node.Deliver(m)
					}
				})
				node = pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.Random(rng), Endpoint: ep}, endpoint, sim)
				nodes[i] = node
			}
			pastry.BuildStaticOverlay(nodes)
			received := 0
			for _, nd := range nodes {
				nd.Handle(tc.msgType, func(pastry.Message) { received++ })
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodes[i%n].Broadcast(1, tc.msgType, tc.payload)
				sim.RunFor(time.Second)
			}
			b.StopTimer()
			b.ReportMetric(float64(received)/float64(b.N), "nodes_reached")
			b.ReportMetric(float64(net.Bytes())/float64(b.N), "wire_bytes")
		})
	}
}

// BenchmarkAblationTransportOverhead compares message delivery through the
// in-memory simnet against real TCP loopback frames — the cost the
// simulator abstracts away.
func BenchmarkAblationTransportOverhead(b *testing.B) {
	b.Run("simnet", func(b *testing.B) {
		sim := eventsim.New(3)
		net := simnet.New(sim, simnet.FixedLatency(0))
		got := 0
		dst := net.Attach("sim://dst", func(pastry.Message) { got++ })
		_ = dst
		src := net.Attach("sim://src", nil)
		to := pastry.Addr{ID: ids.HashString("dst"), Endpoint: "sim://dst"}
		msg := pastry.Message{Type: "bench.msg", Payload: map[string]any{"k": "v"}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Send(to, msg)
			sim.RunFor(time.Millisecond)
		}
	})
	b.Run("tcp", func(b *testing.B) {
		done := make(chan struct{}, 1024)
		rx, err := netwire.Listen("127.0.0.1:0", func(pastry.Message) {
			select {
			case done <- struct{}{}:
			default:
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		defer rx.Close()
		tx, err := netwire.Listen("127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer tx.Close()
		to := pastry.Addr{ID: ids.HashString("dst"), Endpoint: rx.Addr()}
		msg := pastry.Message{Type: "bench.msg", Payload: map[string]any{"k": "v"}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tx.Send(to, msg); err != nil {
				b.Fatal(err)
			}
			<-done
		}
	})
}

// BenchmarkSimulationThroughput measures raw event throughput of the
// discrete-event engine, the figure-of-merit for paper-scale runs.
func BenchmarkSimulationThroughput(b *testing.B) {
	sim := eventsim.New(4)
	var tick func()
	count := 0
	tick = func() {
		count++
		sim.AfterFunc(time.Second, tick)
	}
	for i := 0; i < 64; i++ {
		sim.AfterFunc(time.Duration(i)*time.Millisecond, tick)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunFor(time.Second)
	}
	if count == 0 {
		b.Fatal("no events ran")
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

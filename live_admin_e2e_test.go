package corona_test

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"corona"
	"corona/client"
)

// scrape GETs an admin-plane path and returns status and body.
func scrape(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// metricValue finds one exposition sample by its exact name (labels
// included) and parses its value.
func metricValue(body, sample string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, sample+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// TestAdminPlaneEndToEnd is the observability acceptance scenario: a
// durable node with the admin plane up serves a real subscribe → poll →
// update → notify round trip to an SDK client, after which /metrics
// reports the protocol counters and a count in every notification
// pipeline stage histogram (owner_send, entry_recv, client_enqueue),
// /channels lists the channel with its subscriber, and /readyz is 200.
func TestAdminPlaneEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	feedURL, stopOrigin := startFailoverOrigin(t, 300*time.Millisecond)
	defer stopOrigin()

	node, err := corona.StartLiveNode(corona.LiveConfig{
		Bind:         "127.0.0.1:0",
		ClientBind:   "127.0.0.1:0",
		AdminBind:    "127.0.0.1:0",
		DataDir:      t.TempDir(),
		PollInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	base := "http://" + node.AdminAddr()

	if code, body := scrape(t, base, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after bootstrap: got %d (body %q)", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	conn, err := client.Dial(ctx, []string{node.ClientAddr()},
		client.Options{Handle: "alice", RetryWait: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Subscribe(ctx, feedURL); err != nil {
		t.Fatal(err)
	}

	select {
	case n, ok := <-conn.Notifications():
		if !ok {
			t.Fatal("notification stream closed before first update")
		}
		if n.Channel != feedURL {
			t.Fatalf("notification for %s, want %s", n.Channel, feedURL)
		}
	case <-ctx.Done():
		t.Fatal("timed out waiting for first update notification")
	}

	_, metricsBody := scrape(t, base, "/metrics")
	mustAtLeast := func(sample string, min float64) {
		t.Helper()
		v, ok := metricValue(metricsBody, sample)
		if !ok {
			t.Fatalf("/metrics missing sample %s", sample)
		}
		if v < min {
			t.Fatalf("%s = %v, want >= %v", sample, v, min)
		}
	}
	mustAtLeast("corona_polls_issued_total", 1)
	mustAtLeast("corona_updates_detected_total", 1)
	mustAtLeast("corona_subscriptions_held", 1)
	mustAtLeast("corona_channels_owned", 1)
	mustAtLeast("corona_client_sessions", 1)
	mustAtLeast("corona_store_enabled", 1)
	mustAtLeast("corona_overlay_joined", 1)
	for _, stage := range []string{"owner_send", "entry_recv", "client_enqueue"} {
		mustAtLeast(`corona_notify_stage_latency_seconds_count{stage="`+stage+`"}`, 1)
	}
	// The store has committed at least the subscription record, so the
	// native-bucket commit histogram must carry observations.
	mustAtLeast("corona_store_commit_latency_seconds_count", 1)

	code, channelsBody := scrape(t, base, "/channels")
	if code != http.StatusOK {
		t.Fatalf("/channels: got %d", code)
	}
	if !strings.Contains(channelsBody, feedURL) {
		t.Fatalf("/channels does not list %s: %s", feedURL, channelsBody)
	}
	if !strings.Contains(channelsBody, `"subscriber_count": 1`) {
		t.Fatalf("/channels does not report the subscriber: %s", channelsBody)
	}

	if code, body := scrape(t, base, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: got %d (body %.80q)", code, body)
	}
}

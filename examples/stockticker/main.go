// Stockticker: Corona-Fast with an explicit latency target.
//
// The paper motivates Corona-Fast with "a stock-tracker application may
// pick a target of 30 seconds to quickly detect changes to stock prices"
// (§3.1). This example subscribes to fast-changing quote feeds under
// Corona-Fast (target 30 s) and under Corona-Lite, runs three virtual
// hours of protocol time in a moment, and compares the measured
// notification latency: Fast holds its target; Lite spends only the
// legacy-equivalent load budget.
//
//	go run ./examples/stockticker
package main

import (
	"fmt"
	"log"
	"time"

	"corona"
)

// run builds a simulation under the given scheme and returns the mean
// notification delay behind the content change.
func run(scheme corona.Scheme) (mean time.Duration, notifications int) {
	sim, err := corona.NewSimulation(corona.Options{
		Nodes:        64,
		Scheme:       scheme,
		FastTarget:   30 * time.Second,
		PollInterval: 10 * time.Minute,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	// Ten tickers updating every 2 minutes, one subscriber each, plus
	// background channels competing for the polling budget.
	var tickers []string
	for i := 0; i < 10; i++ {
		url := fmt.Sprintf("http://quotes.example.com/%c.xml", 'A'+i)
		tickers = append(tickers, url)
		if err := sim.HostFeed(url, 2*time.Minute); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		url := fmt.Sprintf("http://blogs.example.com/%02d.xml", i)
		if err := sim.HostFeed(url, 6*time.Hour); err != nil {
			log.Fatal(err)
		}
		sim.Subscribe(fmt.Sprintf("blogreader%d", i), url, func(corona.Notification) {})
	}

	type sample struct {
		version uint64
		at      time.Time
	}
	arrivals := make(map[string][]sample)
	for i, url := range tickers {
		url := url
		trader := fmt.Sprintf("trader%d", i)
		sim.Subscribe(trader, url, func(n corona.Notification) {
			arrivals[n.Channel] = append(arrivals[n.Channel], sample{n.Version, n.At})
		})
	}

	start := sim.Now()
	sim.RunFor(3 * time.Hour)

	// Updates occur every 2 minutes from the host time; notification
	// latency is arrival minus publication.
	var total time.Duration
	for _, url := range tickers {
		for _, s := range arrivals[url] {
			published := start.Add(time.Duration(s.version-1) * 2 * time.Minute)
			if d := s.at.Sub(published); d >= 0 {
				total += d
				notifications++
			}
		}
	}
	if notifications == 0 {
		log.Fatal("no notifications received")
	}
	return total / time.Duration(notifications), notifications
}

func main() {
	fastMean, fastN := run(corona.Fast)
	liteMean, liteN := run(corona.Lite)

	fmt.Println("stock ticker under two policies (10 tickers updating every 2m, 3h horizon):")
	fmt.Printf("  %-12s mean notification delay %8v over %4d updates (target 30s)\n",
		corona.Fast, fastMean.Round(time.Second), fastN)
	fmt.Printf("  %-12s mean notification delay %8v over %4d updates (load-bounded)\n",
		corona.Lite, liteMean.Round(time.Second), liteN)
	if fastMean < liteMean {
		fmt.Println("\nCorona-Fast buys the 30s target with extra polling load —")
		fmt.Println("the knob the paper's §3.1 describes.")
	}
}

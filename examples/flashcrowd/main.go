// Flashcrowd: Corona as a buffer between clients and servers.
//
// The paper argues Corona "shields legacy web servers from sudden
// increases in load": when a channel's popularity spikes (a flash crowd),
// legacy polling multiplies the origin's load by the subscriber count,
// and the load persists as users forget to unsubscribe ("sticky"
// traffic, §1, §3.1). Under Corona, the origin sees at most the polling
// of the assigned wedge — diminishing returns cap it — no matter how many
// clients pile on.
//
// This example subscribes 20 clients to a feed, then 2000 more (the flash
// crowd), and compares the origin's measured polls against what the same
// population of legacy readers would have generated. The notification
// side of the spike is absorbed the same way: once the subscriber count
// crosses DelegateThreshold, the owner recruits leaf-set delegates and
// shards the fan-out across them, so no single node pays for the crowd.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"
	"time"

	"corona"
)

func main() {
	sim, err := corona.NewSimulation(corona.Options{
		Nodes:        64,
		Scheme:       corona.Fast, // stable target; immune to popularity spikes (§3.1)
		FastTarget:   time.Minute,
		PollInterval: 30 * time.Minute,
		// The crowd below reaches 2020 subscribers; at this threshold the
		// owner recruits ~4 delegates to shard notification fan-out.
		DelegateThreshold: 500,
		Seed:              7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	const url = "http://viral.example.com/story.xml"
	if err := sim.HostFeed(url, 20*time.Minute); err != nil {
		log.Fatal(err)
	}

	subscribe := func(from, to int) {
		for i := from; i < to; i++ {
			sim.Subscribe(fmt.Sprintf("user%04d", i), url, func(corona.Notification) {})
		}
	}

	const tau = 30 * time.Minute
	measure := func(label string, d time.Duration, clients int) uint64 {
		before := sim.Stats().Polls
		sim.RunFor(d)
		polls := sim.Stats().Polls - before
		intervals := float64(d) / float64(tau)
		legacyPolls := uint64(float64(clients) * intervals)
		fmt.Printf("%-28s %6d clients | origin polls: corona %5d vs legacy-equivalent %6d\n",
			label, clients, polls, legacyPolls)
		return polls
	}

	subscribe(0, 20)
	sim.RunFor(2 * time.Hour) // let levels settle
	quiet := measure("steady state", 3*time.Hour, 20)

	// The story goes viral: 2000 new subscribers in minutes.
	subscribe(20, 2020)
	sim.RunFor(2 * time.Hour) // re-optimization absorbs the spike
	crowd := measure("after flash crowd", 3*time.Hour, 2020)

	ratioCorona := float64(crowd) / float64(quiet)
	fmt.Printf("\npopularity grew 101x; Corona's origin load grew %.1fx (legacy: 101x)\n", ratioCorona)
	fmt.Println("the wedge stops growing once cooperative polling hits diminishing")
	fmt.Println("returns, so the origin never meets the crowd — and when the crowd")
	fmt.Println("forgets to unsubscribe, the sticky traffic costs the origin nothing.")

	// The notification side: the owner sharded the crowd across delegates.
	st := sim.ChannelStatus(url)
	fmt.Printf("\nfan-out: %d subscribers over the %d-subscriber threshold recruited %d delegates\n",
		st.Subscribers, 500, st.Delegates)
	fmt.Printf("%-10s %-8s %13s %13s %15s\n", "node", "role", "notifications", "notify-batches", "delegate-pushes")
	for _, a := range sim.ChannelActivity(url) {
		role := "-"
		switch {
		case a.Owner:
			role = "owner"
		case a.Delegate:
			role = "delegate"
		}
		fmt.Printf("%-10s %-8s %13d %13d %15d\n", a.Node, role, a.Notifications, a.NotifyBatches, a.DelegatePushes)
	}
}

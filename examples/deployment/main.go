// Deployment: a real multi-process-shaped Corona ring over TCP loopback.
//
// Five live nodes join a ring over real sockets, poll a real HTTP feed
// server (conditional GET, ETags), run the difference engine on real RSS
// bytes, and deliver a diff to a subscriber through the IM gateway — the
// full §5.2 deployment pipeline at laptop scale. Everything here also
// works across machines: swap the loopback addresses for real ones
// (see cmd/corona-node and cmd/corona-feedserver).
//
//	go run ./examples/deployment
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"corona"
	"corona/internal/feed"
	"corona/internal/im"
	"corona/internal/webserver"
)

func main() {
	// 1. A real HTTP origin with one fast-updating feed.
	origin := webserver.NewOrigin()
	const path = "/feed/0.xml"
	origin.Host(webserver.ChannelConfig{
		URL:       path,
		Process:   webserver.PeriodicProcess{Origin: time.Now(), Interval: 2 * time.Second},
		Generator: feed.NewGenerator(path, 1),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, webserver.NewHTTPOrigin(origin, time.Now))
	feedURL := "http://" + ln.Addr().String() + path
	fmt.Println("feed server:", feedURL)

	// 2. Five live overlay nodes over TCP loopback.
	var nodes []*corona.LiveNode
	var seeds []string
	for i := 0; i < 5; i++ {
		cfg := corona.LiveConfig{
			Bind:          "127.0.0.1:0",
			Seeds:         seeds,
			PollInterval:  time.Second, // demo cadence
			NodeCountHint: 5,
		}
		n, err := corona.StartLiveNode(cfg)
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		seeds = []string{n.Addr()}
		time.Sleep(150 * time.Millisecond) // let the join settle
	}
	fmt.Printf("ring of %d nodes up; first node at %s\n", len(nodes), nodes[0].Addr())

	// 3. A client subscribes through the IM front end of node 0.
	service := nodes[0].IM()
	gateway := nodes[0].Gateway()
	service.Register("alice")
	got := make(chan im.Message, 16)
	if err := service.Login("alice", func(m im.Message) { got <- m }); err != nil {
		log.Fatal(err)
	}
	service.Send("alice", gateway.Handle(), "subscribe "+feedURL)

	// 4. Wait for the subscription ack and the first real update diff.
	deadline := time.After(30 * time.Second)
	updates := 0
	for updates < 2 {
		select {
		case m := <-got:
			if len(m.Body) > 300 {
				fmt.Printf("\n[IM from %s]\n%.300s\n...\n", m.From, m.Body)
			} else {
				fmt.Printf("\n[IM from %s] %s\n", m.From, m.Body)
			}
			if len(m.Body) > 6 && m.Body[:6] == "UPDATE" {
				updates++
			}
		case <-deadline:
			log.Fatal("timed out waiting for updates over the live ring")
		}
	}
	st := nodes[0].Stats()
	fmt.Printf("\nnode0 stats: polls=%d detected=%d received=%d notifications=%d\n",
		st.PollsIssued, st.UpdatesDetected, st.UpdatesReceived, st.NotificationsSent)
	fmt.Println("live pipeline verified: TCP overlay -> HTTP polling -> diff engine -> IM delivery")
}

// Deployment: a real multi-process-shaped Corona ring over TCP loopback,
// consumed through the client SDK.
//
// Five live nodes join a ring over real sockets, poll a real HTTP feed
// server (conditional GET, ETags), run the difference engine on real RSS
// bytes, and deliver structured notifications to a subscriber speaking
// the versioned binary client protocol — the full §5.2 deployment
// pipeline at laptop scale, plus the part the paper's IM buddy could not
// do: the subscriber is given two node addresses, its entry node is
// hard-killed mid-stream, and the SDK fails over to the second node and
// keeps receiving without re-subscribing. Everything here also works
// across machines: swap the loopback addresses for real ones (see
// cmd/corona-node and cmd/corona-feedserver).
//
//	go run ./examples/deployment
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"corona"
	"corona/client"
	"corona/internal/feed"
	"corona/internal/webserver"
)

func main() {
	// 1. A real HTTP origin with one fast-updating feed.
	origin := webserver.NewOrigin()
	const path = "/feed/0.xml"
	origin.Host(webserver.ChannelConfig{
		URL:       path,
		Process:   webserver.PeriodicProcess{Origin: time.Now(), Interval: 2 * time.Second},
		Generator: feed.NewGenerator(path, 1),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, webserver.NewHTTPOrigin(origin, time.Now))
	feedURL := "http://" + ln.Addr().String() + path
	fmt.Println("feed server:", feedURL)

	// 2. Five live overlay nodes over TCP loopback, each serving the
	// binary client protocol.
	var nodes []*corona.LiveNode
	var seeds []string
	for i := 0; i < 5; i++ {
		cfg := corona.LiveConfig{
			Bind:          "127.0.0.1:0",
			ClientBind:    "127.0.0.1:0",
			Seeds:         seeds,
			PollInterval:  time.Second, // demo cadence
			NodeCountHint: 5,
		}
		n, err := corona.StartLiveNode(cfg)
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		seeds = []string{n.Addr()}
		time.Sleep(150 * time.Millisecond) // let the join settle
	}
	fmt.Printf("ring of %d nodes up; first node at %s\n", len(nodes), nodes[0].Addr())

	// 3. A client with two node addresses: entry node first, a sibling as
	// the failover target.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	conn, err := client.Dial(ctx,
		[]string{nodes[1].ClientAddr(), nodes[2].ClientAddr()},
		client.Options{Handle: "alice", RetryWait: 200 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Subscribe(ctx, feedURL); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice subscribed via %s\n", conn.Addr())

	// 4. Stream updates; after the second one, hard-kill the entry node
	// and watch delivery continue through the failover target.
	deadline := time.After(60 * time.Second)
	updates, killed := 0, false
	for updates < 4 {
		select {
		case n, ok := <-conn.Notifications():
			if !ok {
				log.Fatal("notification stream closed")
			}
			updates++
			diff := n.Diff
			if len(diff) > 200 {
				diff = diff[:200] + "\n..."
			}
			fmt.Printf("\n[update %d] %s v%d via %s\n%s\n", updates, n.Channel, n.Version, conn.Addr(), diff)
			if updates == 2 && !killed {
				killed = true
				fmt.Println("\n>>> hard-killing alice's entry node; SDK fails over <<<")
				nodes[1].Kill()
			}
		case <-deadline:
			log.Fatal("timed out waiting for updates over the live ring")
		}
	}

	var polls, detected, received, notifications uint64
	for i, n := range nodes {
		if i == 1 {
			continue // killed
		}
		st := n.Stats()
		polls += st.PollsIssued
		detected += st.UpdatesDetected
		received += st.UpdatesReceived
		notifications += st.NotificationsSent
	}
	fmt.Printf("\nring stats (survivors): polls=%d detected=%d received=%d notifications=%d\n",
		polls, detected, received, notifications)
	fmt.Printf("live pipeline verified: TCP overlay -> HTTP polling -> diff engine -> client protocol, with node failover (now served by %s)\n", conn.Addr())
}

// Quickstart: an in-process, real-time Corona cluster.
//
// Eight nodes cooperatively poll one synthetic RSS feed; a subscriber
// receives delta-encoded notifications within a fraction of the polling
// interval — the cooperative-polling speedup of the paper, live on your
// machine in a few seconds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"corona"
)

func main() {
	cluster, err := corona.NewCluster(corona.Options{
		Nodes:               8,
		Scheme:              corona.Lite,
		PollInterval:        500 * time.Millisecond, // demo cadence; deployments use 30m
		MaintenanceInterval: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	const feedURL = "http://news.example.com/headlines.xml"
	if err := cluster.HostFeed(feedURL, time.Second); err != nil {
		log.Fatal(err)
	}

	notifications := make(chan corona.Notification, 16)
	err = cluster.Subscribe("alice", feedURL, func(n corona.Notification) {
		notifications <- n
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("subscribed alice to", feedURL)

	deadline := time.After(10 * time.Second)
	received := 0
	for received < 5 {
		select {
		case n := <-notifications:
			received++
			fmt.Printf("\n[%s] update v%d on %s\n", n.At.Format("15:04:05.000"), n.Version, n.Channel)
			// The diff is Corona's POSIX-style delta encoding: only the
			// changed lines travel (paper §3.4).
			preview := n.Diff
			if len(preview) > 400 {
				preview = preview[:400] + "\n..."
			}
			fmt.Println(preview)
		case <-deadline:
			log.Fatalf("timed out after %d notifications", received)
		}
	}

	st := cluster.Stats()
	fmt.Printf("\ncluster stats: %d nodes, %d polls to the origin, %d updates detected, %d notifications\n",
		st.Nodes, st.Polls, st.UpdatesDetected, st.Notifications)
	status := cluster.ChannelStatus(feedURL)
	fmt.Printf("channel status: %d subscriber(s), %d cooperative poller(s)\n",
		status.Subscribers, status.Pollers)
}

package corona_test

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"corona"
	"corona/client"
	"corona/internal/feed"
	"corona/internal/webserver"
)

// startFailoverOrigin serves one generator-backed feed over real HTTP
// (an external-test copy of live_test.go's helper).
func startFailoverOrigin(t *testing.T, updateEvery time.Duration) (feedURL string, stop func()) {
	t.Helper()
	origin := webserver.NewOrigin()
	const path = "/feed/failover.xml"
	origin.Host(webserver.ChannelConfig{
		URL:       path,
		Process:   webserver.PeriodicProcess{Origin: time.Now(), Interval: updateEvery},
		Generator: feed.NewGenerator(path, 23),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: webserver.NewHTTPOrigin(origin, time.Now)}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String() + path, func() { srv.Close() }
}

// TestClientFailover is the client-side acceptance scenario for the SDK:
// a client holding two node addresses subscribes through its entry node,
// the entry node is hard-killed, and the client keeps receiving update
// notifications by resuming against the second node — the application
// never re-calls Subscribe; the SDK's reconnect-time lease refresh
// re-points the channel owner at the surviving node (no Subscribe
// replay on a version-2 server).
func TestClientFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	feedURL, stopOrigin := startFailoverOrigin(t, 500*time.Millisecond)
	defer stopOrigin()

	// A three-node ring, every node serving the client protocol.
	var nodes []*corona.LiveNode
	var seeds []string
	for i := 0; i < 3; i++ {
		n, err := corona.StartLiveNode(corona.LiveConfig{
			Bind:          "127.0.0.1:0",
			ClientBind:    "127.0.0.1:0",
			Seeds:         seeds,
			PollInterval:  300 * time.Millisecond,
			NodeCountHint: 3,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		seeds = []string{n.Addr()}
		time.Sleep(100 * time.Millisecond)
	}

	// Find the channel's owner with a probe subscription, then pick the
	// two NON-owner nodes as the client's entry and failover targets, so
	// the kill exercises client failover in isolation (owner failover is
	// TestLiveNodeRestartRecovery's job).
	if err := nodes[0].Subscribe("probe", feedURL); err != nil {
		t.Fatal(err)
	}
	ownerIdx := -1
	deadline := time.Now().Add(10 * time.Second)
	for ownerIdx < 0 && time.Now().Before(deadline) {
		for i, n := range nodes {
			if info, ok := n.Channel(feedURL); ok && info.Owner {
				ownerIdx = i
				break
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	if ownerIdx < 0 {
		t.Fatal("no node claimed ownership of the channel")
	}
	entryIdx := (ownerIdx + 1) % 3
	failIdx := (ownerIdx + 2) % 3

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	conn, err := client.Dial(ctx,
		[]string{nodes[entryIdx].ClientAddr(), nodes[failIdx].ClientAddr()},
		client.Options{Handle: "alice", RetryWait: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Subscribe(ctx, feedURL); err != nil {
		t.Fatal(err)
	}

	// First notifications arrive through the entry node.
	var lastVersion uint64
	waitNotify := func(why string, timeout time.Duration) {
		t.Helper()
		deadline := time.After(timeout)
		for {
			select {
			case n, ok := <-conn.Notifications():
				if !ok {
					t.Fatalf("%s: notification stream closed", why)
				}
				if n.Channel != feedURL {
					t.Fatalf("%s: notification for %q", why, n.Channel)
				}
				if n.Version > lastVersion {
					lastVersion = n.Version
					return
				}
			case <-deadline:
				t.Fatalf("%s: no notification within %v", why, timeout)
			}
		}
	}
	waitNotify("before kill", 20*time.Second)
	if got := conn.Addr(); got != nodes[entryIdx].ClientAddr() {
		t.Fatalf("serving addr = %s, want entry node %s", got, nodes[entryIdx].ClientAddr())
	}

	// Hard-kill the entry node. No Subscribe call from here on.
	nodes[entryIdx].Kill()

	// The client must resume against the failover node and keep
	// receiving fresh versions.
	preFailover := lastVersion
	waitNotify("after kill", 30*time.Second)
	if lastVersion <= preFailover {
		t.Fatalf("no fresh version after failover: %d -> %d", preFailover, lastVersion)
	}
	if got := conn.Addr(); got != nodes[failIdx].ClientAddr() {
		t.Fatalf("after failover serving addr = %s, want %s", got, nodes[failIdx].ClientAddr())
	}
	// And the subscription set was re-asserted by the lease refresh, not
	// re-requested: the desired set is unchanged.
	if subs := conn.Subscriptions(); len(subs) != 1 || subs[0] != feedURL {
		t.Fatalf("desired subscriptions after failover = %v", subs)
	}
}

// TestLiveStatsSurfaceStoreHealth checks the observability satellite: a
// durable node's WAL size and records-since-snapshot are visible through
// LiveNode.Stats(), and an in-memory node reports the store disabled.
func TestLiveStatsSurfaceStoreHealth(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	durable, err := corona.StartLiveNode(corona.LiveConfig{
		Bind:         "127.0.0.1:0",
		PollInterval: time.Minute,
		DataDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer durable.Close()
	if err := durable.Subscribe("alice", "http://x/feed.xml"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := durable.Stats()
		if !st.Store.Enabled {
			t.Fatal("durable node reports store disabled")
		}
		if st.Store.Err != "" {
			t.Fatalf("store error: %s", st.Store.Err)
		}
		if st.Store.RecordsSinceSnapshot > 0 && st.Store.WALBytes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("store stats never reflected the subscription: %+v", st.Store)
		}
		time.Sleep(10 * time.Millisecond)
	}

	mem, err := corona.StartLiveNode(corona.LiveConfig{
		Bind:         "127.0.0.1:0",
		PollInterval: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if st := mem.Stats(); st.Store.Enabled || st.Store.WALBytes != 0 {
		t.Fatalf("in-memory node store stats = %+v", st.Store)
	}
}

package corona_test

import (
	"context"
	"testing"
	"time"

	"corona"
	"corona/client"
)

// TestEntryNodeLeaseReroute is the lease acceptance scenario: two clients
// subscribe to one channel through different entry nodes, the first
// client's entry node is hard-killed, and both keep receiving — the
// second without any involvement (its entry is alive; the owner's lease
// bookkeeping routes around the dead gateway instead of black-holing),
// the first by failing over to the surviving node, whose lease-refresh
// frame re-points the owner's entry record. Neither client calls
// Subscribe again and the SDK performs no Subscribe replay: on a
// version-2 server the reconnect path sends a single LeaseRefresh.
func TestEntryNodeLeaseReroute(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	feedURL, stopOrigin := startFailoverOrigin(t, 500*time.Millisecond)
	defer stopOrigin()

	// A three-node ring with short entry-node leases, every node serving
	// the client protocol.
	var nodes []*corona.LiveNode
	var seeds []string
	for i := 0; i < 3; i++ {
		n, err := corona.StartLiveNode(corona.LiveConfig{
			Bind:          "127.0.0.1:0",
			ClientBind:    "127.0.0.1:0",
			Seeds:         seeds,
			PollInterval:  300 * time.Millisecond,
			NodeCountHint: 3,
			LeaseTTL:      time.Second,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		seeds = []string{n.Addr()}
		time.Sleep(100 * time.Millisecond)
	}

	// Find the owner with a probe subscription; the clients enter through
	// the two non-owner nodes so the kill hits only an entry node.
	if err := nodes[0].Subscribe("probe", feedURL); err != nil {
		t.Fatal(err)
	}
	ownerIdx := -1
	deadline := time.Now().Add(10 * time.Second)
	for ownerIdx < 0 && time.Now().Before(deadline) {
		for i, n := range nodes {
			if info, ok := n.Channel(feedURL); ok && info.Owner {
				ownerIdx = i
				break
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	if ownerIdx < 0 {
		t.Fatal("no node claimed ownership of the channel")
	}
	entryIdx := (ownerIdx + 1) % 3
	altIdx := (ownerIdx + 2) % 3

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Alice enters through the doomed node, with the surviving node as
	// her failover target; a fast ping loop doubles as her entry node's
	// lease heartbeat.
	alice, err := client.Dial(ctx,
		[]string{nodes[entryIdx].ClientAddr(), nodes[altIdx].ClientAddr()},
		client.Options{Handle: "alice", RetryWait: 100 * time.Millisecond, PingInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	// Bob's entry node survives throughout.
	bob, err := client.Dial(ctx,
		[]string{nodes[altIdx].ClientAddr()},
		client.Options{Handle: "bob", RetryWait: 100 * time.Millisecond, PingInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	if err := alice.Subscribe(ctx, feedURL); err != nil {
		t.Fatal(err)
	}
	if err := bob.Subscribe(ctx, feedURL); err != nil {
		t.Fatal(err)
	}

	lastSeen := map[string]uint64{}
	waitNotify := func(c *client.Conn, who, why string, timeout time.Duration) {
		t.Helper()
		deadline := time.After(timeout)
		for {
			select {
			case n, ok := <-c.Notifications():
				if !ok {
					t.Fatalf("%s %s: notification stream closed", who, why)
				}
				if n.Version > lastSeen[who] {
					lastSeen[who] = n.Version
					return
				}
			case <-deadline:
				t.Fatalf("%s %s: no notification within %v", who, why, timeout)
			}
		}
	}
	waitNotify(alice, "alice", "before kill", 20*time.Second)
	waitNotify(bob, "bob", "before kill", 20*time.Second)

	// Hard-kill alice's entry node. Nobody calls Subscribe from here on.
	nodes[entryIdx].Kill()

	// Bob, attached to a live node, receives the next update without any
	// subscription replay — the dead entry node must not stall delivery.
	waitNotify(bob, "bob", "after kill", 20*time.Second)

	// Alice fails over to the surviving node; its lease refresh re-points
	// the owner's entry record — no Subscribe replay — and fresh versions
	// flow again.
	waitNotify(alice, "alice", "after kill", 30*time.Second)
	if got := alice.Addr(); got != nodes[altIdx].ClientAddr() {
		t.Fatalf("alice serving addr = %s, want failover node %s", got, nodes[altIdx].ClientAddr())
	}
	// The owner applied lease heartbeats (the re-point path), and the
	// desired sets were never re-requested.
	if got := nodes[ownerIdx].Stats().LeaseRefreshes; got == 0 {
		t.Fatal("owner applied no lease refreshes")
	}
	if subs := alice.Subscriptions(); len(subs) != 1 || subs[0] != feedURL {
		t.Fatalf("alice desired subscriptions = %v", subs)
	}
}

package corona_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"corona"
	"corona/internal/webgateway"
)

// webMsg mirrors the gateway's JSON message surface (doc.go of
// internal/webgateway) for both directions.
type webMsg struct {
	Type    string   `json:"type"`
	Req     uint64   `json:"req,omitempty"`
	Handle  string   `json:"handle,omitempty"`
	Token   string   `json:"token,omitempty"`
	URL     string   `json:"url,omitempty"`
	Since   *uint64  `json:"since,omitempty"`
	Reason  string   `json:"reason,omitempty"`
	Node    string   `json:"node,omitempty"`
	Peers   []string `json:"peers,omitempty"`
	Channel string   `json:"channel,omitempty"`
	Version uint64   `json:"version,omitempty"`
	Diff    string   `json:"diff,omitempty"`
	At      int64    `json:"at,omitempty"`
}

func readWebMsg(t *testing.T, c *webgateway.WSClient) webMsg {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	data, err := c.ReadMessage()
	if err != nil {
		t.Fatalf("reading ws message: %v", err)
	}
	var m webMsg
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("bad ws JSON %q: %v", data, err)
	}
	return m
}

func expectWebMsg(t *testing.T, c *webgateway.WSClient, want string) webMsg {
	t.Helper()
	for {
		m := readWebMsg(t, c)
		if m.Type == want {
			return m
		}
		if m.Type == "nak" {
			t.Fatalf("nak while waiting for %q: %s", want, m.Reason)
		}
	}
}

// collectNotifies reads WS notify messages until n collected.
func collectNotifies(t *testing.T, c *webgateway.WSClient, n int) []uint64 {
	t.Helper()
	var versions []uint64
	for len(versions) < n {
		m := readWebMsg(t, c)
		if m.Type == "notify" {
			versions = append(versions, m.Version)
		}
	}
	return versions
}

// collectNotifiesUntil reads WS notify messages until one reaches
// target.
func collectNotifiesUntil(t *testing.T, c *webgateway.WSClient, target uint64) []uint64 {
	t.Helper()
	var versions []uint64
	for len(versions) == 0 || versions[len(versions)-1] < target {
		m := readWebMsg(t, c)
		if m.Type == "notify" {
			versions = append(versions, m.Version)
		}
	}
	return versions
}

// sseStream opens an SSE stream and returns the response body reader.
func sseStream(t *testing.T, webAddr, query, lastEventID string) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+webAddr+"/sse?"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("SSE status %d: %s", resp.StatusCode, body)
	}
	return resp, bufio.NewReader(resp.Body)
}

type liveSSEEvent struct {
	id, name, data string
}

func readLiveSSEEvent(t *testing.T, br *bufio.Reader) liveSSEEvent {
	t.Helper()
	var ev liveSSEEvent
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			ev.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			ev.name = line[7:]
		case strings.HasPrefix(line, "data: "):
			ev.data = line[6:]
		case line == "" && ev.name != "":
			return ev
		}
	}
}

// assertResumed fails unless versions are strictly increasing and all
// newer than the resume cursor — the zero-duplicates, monotonic-versions
// acceptance property for a resumed stream. (Versions may legitimately
// skip: a poll that observes two origin updates notifies once with the
// newest version, so contiguity is not guaranteed.)
func assertResumed(t *testing.T, label string, since uint64, versions []uint64) {
	t.Helper()
	prev := since
	for i, v := range versions {
		if v <= prev {
			t.Fatalf("%s: resumed stream %v has duplicate or regressing version at index %d (%d after %d, cursor %d)",
				label, versions, i, v, prev, since)
		}
		prev = v
	}
	if len(versions) == 0 {
		t.Fatalf("%s: resumed stream replayed nothing past cursor %d", label, since)
	}
}

// TestWebGatewayResumeEndToEnd is the web edge's acceptance scenario: a
// WebSocket client and an SSE client subscribe to a live feed through a
// real node, receive updates, hard-disconnect, miss updates, and
// reconnect with their resume cursors — the gap replays from the ring
// buffers in order with zero duplicates, live delivery takes over
// seamlessly, and the gateway's sessions and replay hits appear on
// /metrics.
func TestWebGatewayResumeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	feedURL, stopOrigin := startFailoverOrigin(t, 250*time.Millisecond)
	defer stopOrigin()

	node, err := corona.StartLiveNode(corona.LiveConfig{
		Bind:          "127.0.0.1:0",
		WebBind:       "127.0.0.1:0",
		AdminBind:     "127.0.0.1:0",
		PollInterval:  200 * time.Millisecond,
		NodeCountHint: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	webAddr := node.WebAddr()
	if webAddr == "" {
		t.Fatal("WebAddr empty after StartLiveNode with WebBind")
	}

	// --- WebSocket client: login, subscribe, see live updates.
	ws, err := webgateway.DialWS("ws://" + webAddr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.WriteJSON(webMsg{Type: "login", Req: 1, Handle: "web-ws"}); err != nil {
		t.Fatal(err)
	}
	ack := expectWebMsg(t, ws, "ack")
	if ack.Token == "" {
		t.Fatal("login ack carried no resume token")
	}
	wsToken := ack.Token
	expectWebMsg(t, ws, "hello")
	if err := ws.WriteJSON(webMsg{Type: "subscribe", Req: 2, URL: feedURL}); err != nil {
		t.Fatal(err)
	}
	expectWebMsg(t, ws, "ack")
	wsSeen := collectNotifies(t, ws, 2)
	wsCursor := wsSeen[len(wsSeen)-1]

	// --- SSE client: connect with the channel on the request line.
	sseQuery := url.Values{"handle": {"web-sse"}, "ch": {feedURL}}
	resp, br := sseStream(t, webAddr, sseQuery.Encode(), "")
	hello := readLiveSSEEvent(t, br)
	if hello.name != "hello" {
		t.Fatalf("first SSE event %q, want hello", hello.name)
	}
	var hm webMsg
	json.Unmarshal([]byte(hello.data), &hm)
	if hm.Token == "" {
		t.Fatal("SSE hello carried no resume token")
	}
	var sseCursorID string
	var sseCursor uint64
	for n := 0; n < 2; {
		ev := readLiveSSEEvent(t, br)
		if ev.name != "notify" {
			continue
		}
		var nm webMsg
		json.Unmarshal([]byte(ev.data), &nm)
		sseCursorID, sseCursor = ev.id, nm.Version
		n++
	}

	// --- Hard-disconnect both mid-stream and let updates pass by.
	ws.Kill()
	resp.Body.Close()
	missTarget := maxU64(wsCursor, sseCursor) + 2
	deadline := time.Now().Add(20 * time.Second)
	for {
		if info, ok := node.Channel(feedURL); ok && info.LastVersion >= missTarget {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("feed never advanced past the disconnect window")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// --- WS reconnect with token + since: the gap replays in order.
	ws2, err := webgateway.DialWS("ws://" + webAddr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	if err := ws2.WriteJSON(webMsg{Type: "login", Req: 1, Handle: "web-ws", Token: wsToken}); err != nil {
		t.Fatal(err)
	}
	expectWebMsg(t, ws2, "ack")
	expectWebMsg(t, ws2, "hello")
	if err := ws2.WriteJSON(webMsg{Type: "subscribe", Req: 2, URL: feedURL, Since: &wsCursor}); err != nil {
		t.Fatal(err)
	}
	expectWebMsg(t, ws2, "ack")
	wsResumed := collectNotifiesUntil(t, ws2, missTarget)
	assertResumed(t, "ws", wsCursor, wsResumed)

	// --- SSE reconnect with Last-Event-ID: same property.
	sseQuery.Set("token", hm.Token)
	resp2, br2 := sseStream(t, webAddr, sseQuery.Encode(), sseCursorID)
	defer resp2.Body.Close()
	var sseResumed []uint64
	for len(sseResumed) == 0 || sseResumed[len(sseResumed)-1] < missTarget {
		ev := readLiveSSEEvent(t, br2)
		if ev.name == "snapshot_required" {
			t.Fatalf("SSE resume fell out of the replay window unexpectedly: %s", ev.data)
		}
		if ev.name != "notify" {
			continue
		}
		var nm webMsg
		json.Unmarshal([]byte(ev.data), &nm)
		sseResumed = append(sseResumed, nm.Version)
	}
	assertResumed(t, "sse", sseCursor, sseResumed)

	// --- Stats and /metrics surface the web edge.
	stats := node.Stats()
	if stats.Web.ReplayHits == 0 {
		t.Fatalf("Web stats %+v, want replay hits", stats.Web)
	}
	if stats.Web.SessionsWS < 1 {
		t.Fatalf("Web stats %+v, want a live WS session", stats.Web)
	}
	metricsResp, err := http.Get("http://" + node.AdminAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metricsResp.Body.Close()
	body, err := io.ReadAll(metricsResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	for _, want := range []string{
		`corona_web_sessions{transport="ws"}`,
		`corona_web_sessions{transport="sse"}`,
		"corona_web_replay_hits_total",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// The replay-hit counter must be live, not just registered.
	if !replayHitsPositive(exposition) {
		t.Errorf("/metrics corona_web_replay_hits_total not positive:\n%s", grepLines(exposition, "corona_web_"))
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func replayHitsPositive(exposition string) bool {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "corona_web_replay_hits_total ") {
			var v float64
			fmt.Sscanf(line, "corona_web_replay_hits_total %g", &v)
			return v > 0
		}
	}
	return false
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

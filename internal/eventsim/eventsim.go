// Package eventsim provides the discrete-event simulation engine that
// drives Corona's large-scale experiments (paper §5.1).
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which,
// together with seeded random streams, makes every simulation run fully
// deterministic and therefore reproducible in tests and benchmarks.
package eventsim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"corona/internal/clock"
)

// Epoch is the instant at which simulations begin. The absolute value is
// arbitrary; experiments report time relative to it.
var Epoch = time.Date(2006, 5, 1, 0, 0, 0, 0, time.UTC)

type event struct {
	at      time.Time
	seq     uint64 // FIFO tiebreaker for simultaneous events
	fn      func()
	stopped bool
	index   int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulator. It implements
// clock.Clock, so protocol code written against that interface runs under
// virtual time. Sim is not safe for concurrent use; all callbacks run on
// the caller's goroutine inside Run.
type Sim struct {
	now       time.Time
	events    eventHeap
	seq       uint64
	seed      int64
	processed uint64
	running   bool
}

// New returns a simulator whose clock starts at Epoch. The seed
// parameterizes every random stream derived via RNG.
func New(seed int64) *Sim {
	return &Sim{now: Epoch, seed: seed}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Elapsed returns the virtual time elapsed since Epoch.
func (s *Sim) Elapsed() time.Duration { return s.now.Sub(Epoch) }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled.
func (s *Sim) Pending() int { return len(s.events) }

// timer adapts *event to clock.Timer.
type timer struct {
	s *Sim
	e *event
}

// Stop cancels the pending event. It reports whether the event had not yet
// fired.
func (t timer) Stop() bool {
	if t.e.stopped || t.e.index == -1 {
		return false
	}
	t.e.stopped = true
	return true
}

// AfterFunc schedules f to run after virtual duration d. Negative durations
// are treated as zero.
func (s *Sim) AfterFunc(d time.Duration, f func()) clock.Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), f)
}

// At schedules f to run at virtual time t. Times in the past fire at the
// current instant, after already-queued events for that instant.
func (s *Sim) At(t time.Time, f func()) clock.Timer {
	if t.Before(s.now) {
		t = s.now
	}
	e := &event{at: t, seq: s.seq, fn: f}
	s.seq++
	heap.Push(&s.events, e)
	return timer{s: s, e: e}
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Sim) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.stopped {
			continue
		}
		s.now = e.at
		s.processed++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event is after deadline. The clock finishes at deadline if it
// was reached, otherwise at the last event executed.
func (s *Sim) RunUntil(deadline time.Time) {
	if s.running {
		panic("eventsim: RunUntil re-entered from within an event")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.events) > 0 {
		next := s.events[0]
		if next.stopped {
			heap.Pop(&s.events)
			continue
		}
		if next.at.After(deadline) {
			break
		}
		heap.Pop(&s.events)
		s.now = next.at
		s.processed++
		next.fn()
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
}

// RunFor executes events for a virtual duration d from the current time.
func (s *Sim) RunFor(d time.Duration) {
	s.RunUntil(s.now.Add(d))
}

// Drain executes events until none remain or limit events have run.
// It panics if limit is exceeded, which catches runaway event loops in
// tests.
func (s *Sim) Drain(limit uint64) {
	start := s.processed
	for s.Step() {
		if s.processed-start > limit {
			panic(fmt.Sprintf("eventsim: Drain exceeded %d events", limit))
		}
	}
}

// RNG returns a deterministic random stream identified by name. Distinct
// names yield independent streams; the same (seed, name) pair always yields
// the same sequence, keeping experiments reproducible while letting
// subsystems draw randomness independently of one another.
func (s *Sim) RNG(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", s.seed, name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

package eventsim

import (
	"testing"
	"time"
)

func TestEventsFireInOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	s.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	s.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	s.RunFor(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	s.RunFor(2 * time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	s := New(1)
	var at time.Time
	s.AfterFunc(90*time.Second, func() { at = s.Now() })
	s.RunFor(time.Hour)
	if want := Epoch.Add(90 * time.Second); !at.Equal(want) {
		t.Fatalf("callback saw time %v, want %v", at, want)
	}
	if want := Epoch.Add(time.Hour); !s.Now().Equal(want) {
		t.Fatalf("clock finished at %v, want deadline %v", s.Now(), want)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New(1)
	fired := 0
	s.AfterFunc(time.Minute, func() { fired++ })
	s.AfterFunc(time.Hour, func() { fired++ })
	s.RunFor(10 * time.Minute)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.RunFor(time.Hour)
	if fired != 2 {
		t.Fatalf("fired = %d after second run, want 2", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.RunFor(time.Minute)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.AfterFunc(time.Second, func() {})
	s.RunFor(time.Minute)
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestEventsScheduledFromEvents(t *testing.T) {
	s := New(1)
	var times []time.Duration
	var tick func()
	tick = func() {
		times = append(times, s.Elapsed())
		if len(times) < 5 {
			s.AfterFunc(time.Minute, tick)
		}
	}
	s.AfterFunc(time.Minute, tick)
	s.RunFor(time.Hour)
	if len(times) != 5 {
		t.Fatalf("got %d ticks, want 5", len(times))
	}
	for i, at := range times {
		if want := time.Duration(i+1) * time.Minute; at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestPastEventsFireNow(t *testing.T) {
	s := New(1)
	s.RunFor(time.Hour)
	var at time.Time
	s.At(Epoch, func() { at = s.Now() }) // in the past
	s.RunFor(time.Second)
	if !at.Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("past event fired at %v, want current instant", at)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := New(42).RNG("polling")
	b := New(42).RNG("polling")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed,name) produced different streams")
		}
	}
	c := New(42).RNG("workload")
	d := New(43).RNG("polling")
	matchC, matchD := 0, 0
	e := New(42).RNG("polling")
	for i := 0; i < 100; i++ {
		v := e.Uint64()
		if v == c.Uint64() {
			matchC++
		}
		if v == d.Uint64() {
			matchD++
		}
	}
	if matchC > 2 || matchD > 2 {
		t.Fatalf("streams not independent: matchC=%d matchD=%d", matchC, matchD)
	}
}

func TestDrainPanicsOnRunaway(t *testing.T) {
	s := New(1)
	var loop func()
	loop = func() { s.AfterFunc(time.Second, loop) }
	s.AfterFunc(time.Second, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("Drain did not panic on unbounded event loop")
		}
	}()
	s.Drain(1000)
}

func TestProcessedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.AfterFunc(time.Duration(i)*time.Second, func() {})
	}
	s.RunFor(time.Minute)
	if s.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", s.Processed())
	}
}

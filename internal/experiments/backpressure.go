package experiments

import (
	"fmt"

	"corona/internal/pastry"
	"corona/internal/stats"
)

// BackpressureSampler makes transport-level backpressure visible in the
// harness: it periodically snapshots the per-peer send queues of a set of
// overlay nodes (any whose transport implements pastry.QueueReporter —
// netwire in live/deployment runs) into a stats.BackpressureMonitor.
// Schedule Sample at the figure bucket cadence, next to LoadSampler.
type BackpressureSampler struct {
	nodes   []*pastry.Node
	monitor *stats.BackpressureMonitor
}

// NewBackpressureSampler creates a sampler over the given overlay nodes.
func NewBackpressureSampler(nodes []*pastry.Node) *BackpressureSampler {
	return &BackpressureSampler{nodes: nodes, monitor: stats.NewBackpressureMonitor()}
}

// Sample snapshots every node's per-peer queues once.
func (s *BackpressureSampler) Sample() {
	for _, n := range s.nodes {
		self := n.Self()
		for _, q := range n.PeerQueues() {
			s.monitor.Observe(stats.QueueSample{
				Name:     fmt.Sprintf("%s→%s", self.Endpoint, q.Endpoint),
				Depth:    q.Depth,
				Capacity: q.Capacity,
				Drops:    q.Drops,
			})
		}
	}
}

// Monitor exposes the accumulated per-queue state.
func (s *BackpressureSampler) Monitor() *stats.BackpressureMonitor {
	return s.monitor
}

// Report renders the worst queues (all when limit <= 0), for the
// paper-shaped text output next to the figure tables.
func (s *BackpressureSampler) Report(limit int) string {
	return s.monitor.Render(limit)
}

package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"corona/internal/core"
	"corona/internal/stats"
)

// Series is one plotted line: a name and bucketed values over time.
type Series struct {
	Name   string
	Bucket time.Duration
	Values []float64
}

// Render prints the series as "t value" rows.
func (s Series) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", s.Name)
	for i, v := range s.Values {
		if math.IsNaN(v) {
			continue
		}
		fmt.Fprintf(&sb, "%-8s %.3f\n", stats.FormatDuration(time.Duration(i)*s.Bucket), v)
	}
	return sb.String()
}

// schemeRun executes one Corona run under a scheme, with the legacy
// baseline alongside when wantLegacy is set.
func schemeRun(scale Scale, scheme core.Scheme, fastTarget time.Duration, wantLegacy bool) *Harness {
	opts := Options{Scheme: scheme, FastTarget: fastTarget, LegacyOn: wantLegacy}
	h := NewHarness(scale, opts)
	h.Run(opts)
	return h
}

// legacyRun executes a pure legacy-RSS run.
func legacyRun(scale Scale) *Harness {
	opts := Options{CoronaOff: true}
	h := NewHarness(scale, opts)
	h.Run(opts)
	return h
}

// Figure34Result carries both Figure 3 (network load per channel, kbps)
// and Figure 4 (average update detection time) — the paper derives them
// from the same three runs: Legacy, Corona-Lite, Corona-Fast.
type Figure34Result struct {
	Scale Scale
	// Load maps series name to kbps-per-channel buckets (Figure 3).
	Load []Series
	// Detect maps series name to mean detection minutes (Figure 4).
	Detect []Series
}

// RunFigure34 reproduces Figures 3 and 4.
func RunFigure34(scale Scale) *Figure34Result {
	res := &Figure34Result{Scale: scale}

	leg := legacyRun(scale)
	lite := schemeRun(scale, core.SchemeLite, 0, false)
	fast := schemeRun(scale, core.SchemeFast, 30*time.Second, false)

	res.Load = []Series{
		{Name: "Legacy RSS", Bucket: scale.Bucket, Values: leg.Loads.KbpsPerChannel(scale.Channels)},
		{Name: "Corona Lite", Bucket: scale.Bucket, Values: lite.Loads.KbpsPerChannel(scale.Channels)},
		{Name: "Corona Fast", Bucket: scale.Bucket, Values: fast.Loads.KbpsPerChannel(scale.Channels)},
	}
	toMinutes := func(points []stats.Point) []float64 {
		out := make([]float64, len(points))
		for i, p := range points {
			out[i] = p.Value / 60
		}
		return out
	}
	res.Detect = []Series{
		{Name: "Legacy RSS", Bucket: scale.Bucket, Values: toMinutes(leg.Recorder.LegacySeries.Means())},
		{Name: "Corona Lite", Bucket: scale.Bucket, Values: toMinutes(lite.Recorder.Series.Means())},
		{Name: "Corona Fast", Bucket: scale.Bucket, Values: toMinutes(fast.Recorder.Series.Means())},
	}
	return res
}

// Render prints both figures' series.
func (r *Figure34Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: network load per channel (kbps) vs time\n")
	for _, s := range r.Load {
		sb.WriteString(s.Render())
	}
	sb.WriteString("\nFigure 4: average update detection time (min) vs time\n")
	for _, s := range r.Detect {
		sb.WriteString(s.Render())
	}
	return sb.String()
}

// RankPoint is one channel in a rank-ordered scatter.
type RankPoint struct {
	Rank  int
	Value float64
}

// Figure56Result carries Figure 5 (pollers per channel by popularity rank)
// and Figure 6 (detection time per channel by popularity rank) from one
// Corona-Lite run plus the legacy comparison.
type Figure56Result struct {
	Scale Scale
	// LegacyPollers is qᵢ (every subscriber polls independently).
	LegacyPollers []RankPoint
	// CoronaPollers counts wedge members polling each channel.
	CoronaPollers []RankPoint
	// LegacyDetect and CoronaDetect are per-channel mean detection
	// seconds by popularity rank.
	LegacyDetect []RankPoint
	CoronaDetect []RankPoint
}

// RunFigure56 reproduces Figures 5 and 6.
func RunFigure56(scale Scale) *Figure56Result {
	res := &Figure56Result{Scale: scale}
	leg := legacyRun(scale)
	lite := schemeRun(scale, core.SchemeLite, 0, false)

	pollers := lite.PollersPerChannel()
	for i, ch := range lite.Work.Channels {
		res.LegacyPollers = append(res.LegacyPollers, RankPoint{Rank: i + 1, Value: float64(ch.Subscribers)})
		res.CoronaPollers = append(res.CoronaPollers, RankPoint{Rank: i + 1, Value: float64(pollers[i])})
		if d := lite.Recorder.PerChannel[i]; d.Count > 0 {
			res.CoronaDetect = append(res.CoronaDetect, RankPoint{Rank: i + 1, Value: d.Mean().Seconds()})
		}
		if d := leg.Recorder.LegacyPerChannel[i]; d.Count > 0 {
			res.LegacyDetect = append(res.LegacyDetect, RankPoint{Rank: i + 1, Value: d.Mean().Seconds()})
		}
	}
	return res
}

// Render prints a decimated rank scatter (full data is available on the
// struct).
func (r *Figure56Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: number of polling nodes vs channel rank by popularity\n")
	sb.WriteString(renderRanks("Legacy RSS (=subscribers)", r.LegacyPollers))
	sb.WriteString(renderRanks("Corona Lite", r.CoronaPollers))
	sb.WriteString("\nFigure 6: update detection time (s) vs channel rank by popularity\n")
	sb.WriteString(renderRanks("Legacy RSS", r.LegacyDetect))
	sb.WriteString(renderRanks("Corona Lite", r.CoronaDetect))
	return sb.String()
}

// renderRanks prints up to ~20 logarithmically spaced rank points.
func renderRanks(name string, pts []RankPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", name)
	if len(pts) == 0 {
		return sb.String()
	}
	step := 1.0
	if len(pts) > 20 {
		step = math.Pow(float64(len(pts)), 1.0/20)
	}
	for f := 1.0; int(f) <= len(pts); f = math.Max(f*step, f+1) {
		p := pts[int(f)-1]
		fmt.Fprintf(&sb, "rank %-7d %.2f\n", p.Rank, p.Value)
	}
	return sb.String()
}

// Figure78Result carries the fairness figures: per-channel detection time
// ranked by update interval, for Lite vs Fair (Figure 7) and the Sqrt/Log
// variants (Figure 8).
type Figure78Result struct {
	Scale Scale
	// ByScheme maps scheme name to per-channel detection seconds, with
	// channels ordered by increasing update interval (ties by
	// popularity), the paper's x-axis.
	ByScheme map[string][]RankPoint
	// Intervals records the update interval (seconds) per rank position.
	Intervals []float64
}

// RunFigure78 reproduces Figures 7 and 8.
func RunFigure78(scale Scale) *Figure78Result {
	res := &Figure78Result{Scale: scale, ByScheme: make(map[string][]RankPoint)}

	runs := map[string]*Harness{
		core.SchemeLite.String():     schemeRun(scale, core.SchemeLite, 0, false),
		core.SchemeFair.String():     schemeRun(scale, core.SchemeFair, 0, false),
		core.SchemeFairSqrt.String(): schemeRun(scale, core.SchemeFairSqrt, 0, false),
		core.SchemeFairLog.String():  schemeRun(scale, core.SchemeFairLog, 0, false),
	}

	// Rank channels by update interval, ties by popularity (§5.1).
	any := runs[core.SchemeLite.String()]
	order := make([]int, len(any.Work.Channels))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := any.Work.Channels[order[a]], any.Work.Channels[order[b]]
		if ca.UpdateInterval != cb.UpdateInterval {
			return ca.UpdateInterval < cb.UpdateInterval
		}
		return ca.Subscribers > cb.Subscribers
	})
	for rank, idx := range order {
		res.Intervals = append(res.Intervals, any.Work.Channels[idx].UpdateInterval.Seconds())
		for name, h := range runs {
			if d := h.Recorder.PerChannel[idx]; d.Count > 0 {
				res.ByScheme[name] = append(res.ByScheme[name], RankPoint{Rank: rank + 1, Value: d.Mean().Seconds()})
			}
		}
	}
	return res
}

// Render prints the four schemes' rank scatters.
func (r *Figure78Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figures 7/8: update detection time (s) vs channel rank by update interval\n")
	for _, name := range []string{"Corona-Lite", "Corona-Fair", "Corona-Fair-Sqrt", "Corona-Fair-Log"} {
		sb.WriteString(renderRanks(name, r.ByScheme[name]))
	}
	return sb.String()
}

// Table2Row is one scheme's summary line.
type Table2Row struct {
	Scheme string
	// DetectionSec is the subscription-weighted mean of measured
	// detection latencies, over channels that updated during the
	// measurement window.
	DetectionSec float64
	// ModelDetectionSec is the subscription-weighted mean of the
	// assigned-level detection estimate τ/2·bˡ/N over ALL channels,
	// including ones that never updated in the window. The paper's
	// Figure 7/8 values (up to 10⁴ s, above the 1.8·10³ s ceiling that
	// 30-minute polling can produce in measurement) indicate its
	// per-channel detection numbers are of this kind, so this column is
	// the one to compare against the paper's Table 2 (see
	// EXPERIMENTS.md).
	ModelDetectionSec float64
	// LoadPollsPerIntervalPerChannel is the paper's "polls per 30 min
	// per channel".
	LoadPollsPerIntervalPerChannel float64
}

// Table2Result is the full performance summary (Table 2).
type Table2Result struct {
	Scale Scale
	Rows  []Table2Row
}

// RunTable2 reproduces Table 2: all five Corona schemes plus legacy RSS.
func RunTable2(scale Scale) *Table2Result {
	res := &Table2Result{Scale: scale}

	leg := legacyRun(scale)
	res.Rows = append(res.Rows, Table2Row{
		Scheme:                         "Legacy-RSS",
		DetectionSec:                   leg.Recorder.LegacyWeightedChannelMean(),
		ModelDetectionSec:              scale.PollInterval.Seconds() / 2, // every client alone: τ/2
		LoadPollsPerIntervalPerChannel: leg.Loads.PollsPerIntervalPerChannel(scale.Channels, scale.PollInterval, scale.WarmUp),
	})
	type schemeSpec struct {
		scheme core.Scheme
		target time.Duration
	}
	for _, s := range []schemeSpec{
		{core.SchemeLite, 0},
		{core.SchemeFair, 0},
		{core.SchemeFairSqrt, 0},
		{core.SchemeFairLog, 0},
		{core.SchemeFast, 30 * time.Second},
	} {
		h := schemeRun(scale, s.scheme, s.target, false)
		res.Rows = append(res.Rows, Table2Row{
			Scheme:                         s.scheme.String(),
			DetectionSec:                   h.Recorder.WeightedChannelMean(),
			ModelDetectionSec:              h.ModelDetectionMean(),
			LoadPollsPerIntervalPerChannel: h.Loads.PollsPerIntervalPerChannel(scale.Channels, scale.PollInterval, scale.WarmUp),
		})
	}
	return res
}

// Render prints the table in the paper's layout, with both detection
// methodologies side by side.
func (r *Table2Result) Render() string {
	tbl := stats.NewTable("Scheme", "Detection measured (s)", "Detection model (s)", "Load (polls/interval/channel)")
	for _, row := range r.Rows {
		tbl.AddRow(row.Scheme, row.DetectionSec, row.ModelDetectionSec, row.LoadPollsPerIntervalPerChannel)
	}
	return "Table 2: performance summary\n" + tbl.Render()
}

// Figure910Result carries the deployment experiment: detection time
// (Figure 9) and total polls per minute (Figure 10), Corona vs legacy.
type Figure910Result struct {
	Scale Scale
	// Detect is mean detection seconds over time per series.
	Detect []Series
	// Polls is total polls per minute over time per series.
	Polls []Series
}

// RunFigure910 reproduces Figures 9 and 10: the deployment setup with
// wide-area latencies, ramped subscriptions, equal poll and maintenance
// intervals, and Corona-Lite (§5.2).
func RunFigure910(scale Scale) *Figure910Result {
	res := &Figure910Result{Scale: scale}

	leg := legacyRun(scale)
	opts := Options{
		Scheme:            core.SchemeLite,
		WANLatency:        true,
		RampSubscriptions: true,
	}
	cor := NewHarness(scale, opts)
	cor.Run(opts)

	toSeconds := func(points []stats.Point) []float64 {
		out := make([]float64, len(points))
		for i, p := range points {
			out[i] = p.Value
		}
		return out
	}
	res.Detect = []Series{
		{Name: "Legacy RSS", Bucket: scale.Bucket, Values: toSeconds(leg.Recorder.LegacySeries.Means())},
		{Name: "Corona", Bucket: scale.Bucket, Values: toSeconds(cor.Recorder.Series.Means())},
	}
	res.Polls = []Series{
		{Name: "Legacy RSS", Bucket: scale.Bucket, Values: leg.Loads.PollsPerMinute()},
		{Name: "Corona", Bucket: scale.Bucket, Values: cor.Loads.PollsPerMinute()},
	}
	return res
}

// Render prints both deployment figures.
func (r *Figure910Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 9: average update detection time (s) vs time [deployment]\n")
	for _, s := range r.Detect {
		sb.WriteString(s.Render())
	}
	sb.WriteString("\nFigure 10: total network polls per min vs time [deployment]\n")
	for _, s := range r.Polls {
		sb.WriteString(s.Render())
	}
	return sb.String()
}

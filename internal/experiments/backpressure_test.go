package experiments

import (
	"strings"
	"testing"

	"corona/internal/clock"
	"corona/internal/ids"
	"corona/internal/pastry"
)

// queueStubTransport reports canned per-peer queue stats, standing in for
// netwire in the sampler wiring test.
type queueStubTransport struct {
	stats []pastry.PeerQueueStat
}

func (t *queueStubTransport) Send(pastry.Addr, pastry.Message) error { return nil }

func (t *queueStubTransport) PeerQueues() []pastry.PeerQueueStat { return t.stats }

func TestBackpressureSampler(t *testing.T) {
	transport := &queueStubTransport{stats: []pastry.PeerQueueStat{
		{Endpoint: "10.0.0.2:9001", Depth: 5, Capacity: 8, Drops: 3},
	}}
	node := pastry.NewNode(pastry.DefaultConfig(),
		pastry.Addr{ID: ids.HashString("n1"), Endpoint: "10.0.0.1:9001"},
		transport, clock.Real{})

	s := NewBackpressureSampler([]*pastry.Node{node})
	s.Sample()
	transport.stats[0].Depth = 7
	transport.stats[0].Drops = 4
	s.Sample()

	reports := s.Monitor().Queues()
	if len(reports) != 1 {
		t.Fatalf("reports = %+v", reports)
	}
	r := reports[0]
	if r.Name != "10.0.0.1:9001→10.0.0.2:9001" || r.PeakDepth != 7 || r.Capacity != 8 || r.Drops != 4 || r.Samples != 2 {
		t.Fatalf("report = %+v", r)
	}
	if !strings.Contains(s.Report(0), "10.0.0.2:9001") {
		t.Fatalf("rendered report missing queue:\n%s", s.Report(0))
	}
}

package experiments

import (
	"fmt"
	"testing"
	"time"

	"corona/internal/core"
)

// TestSurvivesNodeCrashes injects failures mid-experiment: a tenth of the
// cloud crashes after convergence. The system must keep detecting updates
// (self-healing overlay, §3.3) without exceeding the load budget.
func TestSurvivesNodeCrashes(t *testing.T) {
	scale := tinyScale()
	opts := Options{Scheme: core.SchemeLite}
	h := NewHarness(scale, opts)

	// Crash 10% of nodes two hours in (after convergence).
	h.Sim.AfterFunc(2*time.Hour, func() {
		for i := 0; i < scale.Nodes/10; i++ {
			victim := h.Nodes[i*7%len(h.Nodes)]
			h.Net.Crash(victim.Self().Endpoint)
			victim.Stop()
		}
	})
	h.Run(opts)

	// Detections must continue well past the crash point.
	pts := h.Recorder.Series.Means()
	crashBucket := int(2 * time.Hour / scale.Bucket)
	post := 0
	for i := crashBucket + 2; i < len(pts); i++ {
		if pts[i].N > 0 {
			post++
		}
	}
	if post < 3 {
		t.Fatalf("only %d post-crash buckets saw detections", post)
	}
	// Load stays bounded (no runaway re-polling).
	perInterval := h.Loads.PollsPerIntervalPerChannel(scale.Channels, scale.PollInterval, scale.WarmUp)
	budget := float64(scale.Subscriptions) / float64(scale.Channels)
	if perInterval > 2*budget {
		t.Fatalf("post-crash load %.1f polls/interval/channel exceeds 2x budget %.1f", perInterval, budget)
	}
}

// TestSurvivesMessageLoss runs Corona-Lite under 5% random message loss:
// the periodic protocol must still converge and detect updates (lost
// poll-control messages are repaired by later maintenance rounds).
func TestSurvivesMessageLoss(t *testing.T) {
	scale := tinyScale()
	scale.Channels = 200
	scale.Subscriptions = 10000
	opts := Options{Scheme: core.SchemeLite}
	h := NewHarness(scale, opts)
	h.Net.SetDropRate(0.05)
	h.Run(opts)

	if h.Recorder.Overall.Weight() == 0 {
		t.Fatal("no detections under 5% message loss")
	}
	mean := h.Recorder.Overall.Mean()
	// Cooperation must still clearly beat solo polling (τ/2 = 900 s).
	if mean > 600 {
		t.Fatalf("detection mean %.0f s under loss; cooperation collapsed", mean)
	}
	if dropped := h.Net.Dropped(); dropped == 0 {
		t.Fatal("loss injection did not engage")
	}
}

// TestPartitionHeals splits the cloud in two for an hour, heals it, and
// verifies detection latency recovers.
func TestPartitionHeals(t *testing.T) {
	scale := tinyScale()
	scale.Channels = 150
	scale.Subscriptions = 7500
	opts := Options{Scheme: core.SchemeLite}
	h := NewHarness(scale, opts)

	h.Sim.AfterFunc(2*time.Hour, func() {
		for i, n := range h.Nodes {
			if i%2 == 1 {
				h.Net.Partition(n.Self().Endpoint, 1)
			}
		}
	})
	h.Sim.AfterFunc(3*time.Hour, func() { h.Net.Heal() })
	h.Run(opts)

	pts := h.Recorder.Series.Means()
	healBucket := int(3*time.Hour/scale.Bucket) + 1
	post := 0
	for i := healBucket; i < len(pts); i++ {
		if pts[i].N > 0 {
			post++
		}
	}
	if post < 3 {
		t.Fatalf("only %d post-heal buckets saw detections", post)
	}
}

// TestAllSchemesRunCleanly smoke-tests every policy at small scale so a
// regression in any scheme's entry construction is caught quickly.
func TestAllSchemesRunCleanly(t *testing.T) {
	scale := tinyScale()
	scale.Channels = 100
	scale.Subscriptions = 5000
	scale.Duration = 3 * time.Hour
	scale.WarmUp = time.Hour
	for _, s := range []core.Scheme{core.SchemeLite, core.SchemeFast, core.SchemeFair, core.SchemeFairSqrt, core.SchemeFairLog} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			opts := Options{Scheme: s, FastTarget: 30 * time.Second}
			h := NewHarness(scale, opts)
			h.Run(opts)
			if h.Recorder.Overall.Weight() == 0 {
				t.Fatalf("%v: no detections", s)
			}
			if got := h.Origin.TotalLoad().Polls; got == 0 {
				t.Fatalf("%v: no polls", s)
			}
			_ = fmt.Sprintf("%v", s)
		})
	}
}

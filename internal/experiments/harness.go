package experiments

import (
	"fmt"
	"time"

	"corona/internal/core"
	"corona/internal/eventsim"
	"corona/internal/ids"
	"corona/internal/legacy"
	"corona/internal/pastry"
	"corona/internal/simnet"
	"corona/internal/webserver"
	"corona/internal/workload"
)

// Harness assembles the full simulated stack for one experiment run.
type Harness struct {
	Scale    Scale
	Sim      *eventsim.Sim
	Net      *simnet.Network
	Origin   *webserver.Origin
	Work     *workload.Workload
	Nodes    []*core.Node
	Recorder *Recorder
	Loads    *LoadSampler
	Baseline *legacy.Baseline

	// Endpoints[i] is the simnet endpoint name of Nodes[i]; Down[i] marks
	// nodes the harness crashed (CrashNode) or that failed to join.
	Endpoints []string
	Down      map[int]bool

	// Subs records every issued subscription when Options.Identity is set,
	// so invariant checkers can audit the durable subscription set against
	// owner-side records.
	Subs []IssuedSub

	opts     Options
	fetcher  core.Fetcher
	notifier core.Notifier
}

// IssuedSub is one recorded subscription: which client subscribed to which
// channel through which node (an index into Harness.Nodes).
type IssuedSub struct {
	Client string
	URL    string
	Entry  int
}

// Options tunes harness construction beyond the scale parameters.
type Options struct {
	// Scheme selects the Corona policy; ignored when CoronaOff.
	Scheme core.Scheme
	// FastTarget sets Corona-Fast's detection target.
	FastTarget time.Duration
	// CoronaOff builds only the origin + legacy baseline (pure-legacy
	// runs for the comparison series).
	CoronaOff bool
	// LegacyOn additionally runs the legacy baseline alongside Corona on
	// a second, identical origin so both see the same update processes
	// without sharing load accounting.
	LegacyOn bool
	// WANLatency uses the wide-area latency model (deployment
	// experiments); default is a LAN-like fixed latency.
	WANLatency bool
	// RampSubscriptions spreads subscription issue times uniformly over
	// the first hour (deployment, §5.2) instead of issuing all at once
	// (simulation, §5.1).
	RampSubscriptions bool
	// ContentMode turns on real document fetching and the difference
	// engine inside Corona nodes.
	ContentMode bool
	// Notifier receives client notifications; nil counts them silently.
	Notifier core.Notifier
	// Identity tracks full per-client subscriber identity (entry records,
	// leases, delegation) instead of counting-mode aggregation, and
	// records issued subscriptions in Harness.Subs so invariant checkers
	// can audit them. Figure runs keep counting mode for memory.
	Identity bool
	// OwnerReplicas sets the additional owner replica count (identity
	// chaos runs want the PR-5 replication machinery active; figure runs
	// keep 0).
	OwnerReplicas int
	// LeaseTTL and DelegateThreshold override the corresponding
	// core.Config fields when nonzero.
	LeaseTTL          time.Duration
	DelegateThreshold int
	// UpdateEvery, when positive, pins every channel's update interval
	// instead of sampling the survey distribution (where half the
	// channels never change). Chaos runs use it so delivery liveness is
	// checkable on every channel.
	UpdateEvery time.Duration
}

// countingNotifier is the default sink for notifications.
type countingNotifier struct{ count uint64 }

func (c *countingNotifier) Notify(client, url string, version uint64, diff string, at time.Time) {
	c.count++
}
func (c *countingNotifier) NotifyBatch(clients []string, url string, version uint64, diff string, at time.Time) {
	c.count += uint64(len(clients))
}
func (c *countingNotifier) NotifyCount(url string, version uint64, n int, at time.Time) {
	c.count += uint64(n)
}

// legacyOrigin mirrors a workload onto a second origin with identical
// update processes, so Corona and legacy load accounting stay separate
// while updates coincide.
func buildOrigin(w *workload.Workload, start time.Time, seed int64) *webserver.Origin {
	origin := webserver.NewOrigin()
	for i, ch := range w.Channels {
		origin.Host(webserver.ChannelConfig{
			URL:       ch.URL,
			SizeBytes: ch.SizeBytes,
			Process: webserver.PeriodicProcess{
				// Deterministic per-channel phase decorrelates updates
				// across channels without coupling them to the seed of
				// any other component.
				Origin:   start.Add(time.Duration(uint64(seed*1000003+int64(i)*6700417) % uint64(ch.UpdateInterval))),
				Interval: ch.UpdateInterval,
			},
		})
	}
	return origin
}

// NewHarness builds a run. Call Run to execute it.
func NewHarness(scale Scale, opts Options) *Harness {
	h := &Harness{Scale: scale}
	h.Sim = eventsim.New(scale.Seed)
	var latency simnet.LatencyModel = simnet.FixedLatency(10 * time.Millisecond)
	if opts.WANLatency {
		latency = simnet.DefaultWAN()
	}
	h.Net = simnet.New(h.Sim, latency)
	// Figure runs measure network load at the origin, not on the overlay
	// fabric; skip per-message codec measurement to keep paper-scale
	// simulations fast.
	h.Net.SetByteAccounting(false)

	h.Work = workload.Generate(workload.Config{
		Channels:      scale.Channels,
		Subscriptions: scale.Subscriptions,
		ZipfExponent:  0.5,
		Seed:          scale.Seed,
	})
	if opts.UpdateEvery > 0 {
		for i := range h.Work.Channels {
			h.Work.Channels[i].UpdateInterval = opts.UpdateEvery
		}
	}
	h.Origin = buildOrigin(h.Work, h.Sim.Now(), scale.Seed)
	h.Recorder = NewRecorder(h.Work, h.Origin, h.Sim.Now(), scale.WarmUp, scale.Bucket)
	h.Loads = NewLoadSampler(h.Origin, h.Sim.Now(), scale.Bucket)

	if opts.CoronaOff {
		h.Baseline = legacy.New(h.Sim, h.Origin, h.Work, h.Recorder, legacy.Config{
			PollInterval: scale.PollInterval,
			Seed:         scale.Seed + 17,
		})
		return h
	}

	h.opts = opts
	h.Down = make(map[int]bool)
	h.notifier = opts.Notifier
	if h.notifier == nil {
		h.notifier = &countingNotifier{}
	}
	h.fetcher = &core.OriginFetcher{Origin: h.Origin, Clock: h.Sim}
	rng := h.Sim.RNG("harness-node-ids")
	overlays := make([]*pastry.Node, scale.Nodes)
	for i := range overlays {
		ep := fmt.Sprintf("sim://%d", i)
		var node *pastry.Node
		endpoint := h.Net.Attach(ep, func(m pastry.Message) {
			if node != nil {
				node.Deliver(m)
			}
		})
		node = pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.Random(rng), Endpoint: ep}, endpoint, h.Sim)
		overlays[i] = node
	}
	pastry.BuildStaticOverlay(overlays)
	for i, overlay := range overlays {
		n := core.NewNode(h.nodeConfig(i), overlay, h.Sim, h.fetcher, h.notifier, h.Recorder)
		h.Nodes = append(h.Nodes, n)
		h.Endpoints = append(h.Endpoints, overlay.Self().Endpoint)
	}

	if opts.LegacyOn {
		legacyOrigin := buildOrigin(h.Work, h.Sim.Now(), scale.Seed)
		h.Baseline = legacy.New(h.Sim, legacyOrigin, h.Work, h.Recorder, legacy.Config{
			PollInterval: scale.PollInterval,
			Seed:         scale.Seed + 17,
		})
	}
	return h
}

// nodeConfig builds the core configuration for the i-th node (initial or
// churn-joined) from the harness scale and options.
func (h *Harness) nodeConfig(i int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Policy = core.PolicyConfig{Scheme: h.opts.Scheme, FastTarget: h.opts.FastTarget}
	cfg.PollInterval = h.Scale.PollInterval
	cfg.MaintenanceInterval = h.Scale.MaintenanceInterval
	cfg.NodeCount = h.Scale.Nodes
	cfg.CountSubscribersOnly = !h.opts.Identity
	cfg.OwnerReplicas = h.opts.OwnerReplicas
	cfg.ContentMode = h.opts.ContentMode
	cfg.Seed = h.Scale.Seed + int64(i)
	if h.opts.LeaseTTL != 0 {
		cfg.LeaseTTL = h.opts.LeaseTTL
	}
	if h.opts.DelegateThreshold != 0 {
		cfg.DelegateThreshold = h.opts.DelegateThreshold
	}
	return cfg
}

// Run executes the experiment: subscriptions are issued (at once or
// ramped), nodes start, the load sampler ticks every bucket, and the
// simulator runs for the configured duration.
func (h *Harness) Run(opts Options) {
	// Arm the periodic load sampler.
	var tick func()
	tick = func() {
		h.Loads.Sample(h.Sim.Now())
		h.Sim.AfterFunc(h.Scale.Bucket, tick)
	}
	h.Sim.AfterFunc(h.Scale.Bucket, tick)

	if h.Baseline != nil {
		h.Baseline.Start()
	}
	for _, n := range h.Nodes {
		n.Start()
	}
	if len(h.Nodes) > 0 {
		h.issueSubscriptions(opts)
	}
	h.Sim.RunFor(h.Scale.Duration)
}

// issueSubscriptions feeds the workload's subscriptions into the cloud.
// Simulation runs issue everything at the start (§5.1: "issue all
// subscriptions at once before collecting performance data"); deployment
// runs ramp them over the first hour (§5.2).
func (h *Harness) issueSubscriptions(opts Options) {
	rng := h.Sim.RNG("subscription-entry")
	ramp := time.Duration(0)
	if opts.RampSubscriptions {
		ramp = time.Hour
	}
	// In counting mode, per-client identity is irrelevant; issue one
	// Subscribe per subscription with a synthetic handle. Entry node is
	// random per subscription, as clients connect to arbitrary nodes.
	subIdx := 0
	for i, ch := range h.Work.Channels {
		for s := 0; s < ch.Subscribers; s++ {
			entryIdx := rng.Intn(len(h.Nodes))
			entry := h.Nodes[entryIdx]
			url := ch.URL
			client := fmt.Sprintf("u%d", subIdx)
			subIdx++
			if opts.Identity {
				h.Subs = append(h.Subs, IssuedSub{Client: client, URL: url, Entry: entryIdx})
			}
			if ramp == 0 {
				entry.Subscribe(client, url)
				continue
			}
			at := time.Duration(float64(ramp) * float64(subIdx) / float64(h.Work.TotalSubscriptions+1))
			h.Sim.AfterFunc(at, func() { entry.Subscribe(client, url) })
		}
		_ = i
	}
}

// InjectAt schedules a fault-injection (or any other) callback at the
// given offset from the current simulator time. Chaos scenarios use it to
// build their event timelines; it may be called before Run or from inside
// an earlier injection.
func (h *Harness) InjectAt(d time.Duration, fn func()) {
	h.Sim.AfterFunc(d, fn)
}

// EveryCheckpoint arms a recurring callback every interval of virtual
// time, for mid-run invariant checkpoints. The callback re-arms itself
// forever; runs bounded by Sim.RunFor simply stop observing it.
func (h *Harness) EveryCheckpoint(every time.Duration, fn func(now time.Time)) {
	var tick func()
	tick = func() {
		fn(h.Sim.Now())
		h.Sim.AfterFunc(every, tick)
	}
	h.Sim.AfterFunc(every, tick)
}

// CrashNode fail-stops Nodes[i]: its host drops off the network and its
// timers stop. The slot is recorded in Down; crashed nodes never restart
// (recovery from durable state is the live stack's job, not the sim's).
func (h *Harness) CrashNode(i int) {
	if h.Down[i] {
		return
	}
	h.Down[i] = true
	h.Net.Crash(h.Endpoints[i])
	h.Nodes[i].Stop()
}

// LiveNodes returns the indexes of nodes not crashed by CrashNode.
func (h *Harness) LiveNodes() []int {
	live := make([]int, 0, len(h.Nodes))
	for i := range h.Nodes {
		if !h.Down[i] {
			live = append(live, i)
		}
	}
	return live
}

// JoinNode grows the cloud through the message-driven join protocol: a
// fresh node with the given name joins via a live node, and once the join
// completes (polled each virtual second, bounded by joinDeadline) it
// starts and is appended to Nodes/Endpoints; onStarted, if non-nil, then
// receives its index. A node whose join never completes is marked Down.
// Callable from inside the simulation (churn injectors), so it never
// blocks on virtual time.
func (h *Harness) JoinNode(name string, via int, onStarted func(idx int)) error {
	ep := "sim://" + name
	holder := &struct{ n *pastry.Node }{}
	endpoint := h.Net.Attach(ep, func(m pastry.Message) {
		if holder.n != nil {
			holder.n.Deliver(m)
		}
	})
	overlay := pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.HashString(name), Endpoint: ep}, endpoint, h.Sim)
	holder.n = overlay
	idx := len(h.Nodes)
	n := core.NewNode(h.nodeConfig(idx), overlay, h.Sim, h.fetcher, h.notifier, h.Recorder)
	h.Nodes = append(h.Nodes, n)
	h.Endpoints = append(h.Endpoints, ep)
	// abort kills a node whose join never completed. Marking it Down is
	// not enough: the endpoint is already attached to the network and the
	// half-joined overlay keeps answering routed messages — a "dead" node
	// that is actually alive adopts channel state, wins ownership claims,
	// and attracts lease re-points, all invisible to any audit that trusts
	// Down. Down must imply genuinely unreachable.
	abort := func() {
		h.Down[idx] = true
		h.Net.Crash(ep)
		n.Stop()
	}
	if err := overlay.Join(h.Nodes[via].Self()); err != nil {
		abort()
		return err
	}
	const joinDeadline = 5 * time.Minute
	deadline := h.Sim.Now().Add(joinDeadline)
	var wait func()
	wait = func() {
		if overlay.Joined() {
			n.Start()
			if onStarted != nil {
				onStarted(idx)
			}
			return
		}
		if h.Sim.Now().After(deadline) {
			abort()
			return
		}
		h.Sim.AfterFunc(time.Second, wait)
	}
	h.Sim.AfterFunc(time.Second, wait)
	return nil
}

// PollersPerChannel counts, for each channel index, the nodes currently
// polling it (Figure 5's y-axis).
func (h *Harness) PollersPerChannel() []int {
	counts := make([]int, len(h.Work.Channels))
	for _, n := range h.Nodes {
		n.EachPolled(func(url string, level int) {
			if idx, ok := h.Recorder.urlIndex[url]; ok {
				counts[idx]++
			}
		})
	}
	return counts
}

// ModelDetectionMean computes the subscription-weighted mean of the
// assigned-level detection estimate τ/(2·pollers) over all channels,
// counting channels that never updated during the window at their
// would-be detection time — the analytical metric the paper's per-channel
// detection figures reflect (see Table2Row.ModelDetectionSec).
func (h *Harness) ModelDetectionMean() float64 {
	pollers := h.PollersPerChannel()
	var sum, weight float64
	tau := h.Scale.PollInterval.Seconds()
	for i, ch := range h.Work.Channels {
		n := float64(pollers[i])
		if n < 1 {
			n = 1
		}
		q := float64(ch.Subscribers)
		sum += q * tau / 2 / n
		weight += q
	}
	if weight == 0 {
		return 0
	}
	return sum / weight
}

package experiments

import (
	"fmt"
	"time"

	"corona/internal/core"
	"corona/internal/eventsim"
	"corona/internal/ids"
	"corona/internal/legacy"
	"corona/internal/pastry"
	"corona/internal/simnet"
	"corona/internal/webserver"
	"corona/internal/workload"
)

// Harness assembles the full simulated stack for one experiment run.
type Harness struct {
	Scale    Scale
	Sim      *eventsim.Sim
	Net      *simnet.Network
	Origin   *webserver.Origin
	Work     *workload.Workload
	Nodes    []*core.Node
	Recorder *Recorder
	Loads    *LoadSampler
	Baseline *legacy.Baseline
}

// Options tunes harness construction beyond the scale parameters.
type Options struct {
	// Scheme selects the Corona policy; ignored when CoronaOff.
	Scheme core.Scheme
	// FastTarget sets Corona-Fast's detection target.
	FastTarget time.Duration
	// CoronaOff builds only the origin + legacy baseline (pure-legacy
	// runs for the comparison series).
	CoronaOff bool
	// LegacyOn additionally runs the legacy baseline alongside Corona on
	// a second, identical origin so both see the same update processes
	// without sharing load accounting.
	LegacyOn bool
	// WANLatency uses the wide-area latency model (deployment
	// experiments); default is a LAN-like fixed latency.
	WANLatency bool
	// RampSubscriptions spreads subscription issue times uniformly over
	// the first hour (deployment, §5.2) instead of issuing all at once
	// (simulation, §5.1).
	RampSubscriptions bool
	// ContentMode turns on real document fetching and the difference
	// engine inside Corona nodes.
	ContentMode bool
	// Notifier receives client notifications; nil counts them silently.
	Notifier core.Notifier
}

// countingNotifier is the default sink for notifications.
type countingNotifier struct{ count uint64 }

func (c *countingNotifier) Notify(client, url string, version uint64, diff string) { c.count++ }
func (c *countingNotifier) NotifyBatch(clients []string, url string, version uint64, diff string) {
	c.count += uint64(len(clients))
}
func (c *countingNotifier) NotifyCount(url string, version uint64, n int) { c.count += uint64(n) }

// legacyOrigin mirrors a workload onto a second origin with identical
// update processes, so Corona and legacy load accounting stay separate
// while updates coincide.
func buildOrigin(w *workload.Workload, start time.Time, seed int64) *webserver.Origin {
	origin := webserver.NewOrigin()
	for i, ch := range w.Channels {
		origin.Host(webserver.ChannelConfig{
			URL:       ch.URL,
			SizeBytes: ch.SizeBytes,
			Process: webserver.PeriodicProcess{
				// Deterministic per-channel phase decorrelates updates
				// across channels without coupling them to the seed of
				// any other component.
				Origin:   start.Add(time.Duration(uint64(seed*1000003+int64(i)*6700417) % uint64(ch.UpdateInterval))),
				Interval: ch.UpdateInterval,
			},
		})
	}
	return origin
}

// NewHarness builds a run. Call Run to execute it.
func NewHarness(scale Scale, opts Options) *Harness {
	h := &Harness{Scale: scale}
	h.Sim = eventsim.New(scale.Seed)
	var latency simnet.LatencyModel = simnet.FixedLatency(10 * time.Millisecond)
	if opts.WANLatency {
		latency = simnet.DefaultWAN()
	}
	h.Net = simnet.New(h.Sim, latency)
	// Figure runs measure network load at the origin, not on the overlay
	// fabric; skip per-message codec measurement to keep paper-scale
	// simulations fast.
	h.Net.SetByteAccounting(false)

	h.Work = workload.Generate(workload.Config{
		Channels:      scale.Channels,
		Subscriptions: scale.Subscriptions,
		ZipfExponent:  0.5,
		Seed:          scale.Seed,
	})
	h.Origin = buildOrigin(h.Work, h.Sim.Now(), scale.Seed)
	h.Recorder = NewRecorder(h.Work, h.Origin, h.Sim.Now(), scale.WarmUp, scale.Bucket)
	h.Loads = NewLoadSampler(h.Origin, h.Sim.Now(), scale.Bucket)

	if opts.CoronaOff {
		h.Baseline = legacy.New(h.Sim, h.Origin, h.Work, h.Recorder, legacy.Config{
			PollInterval: scale.PollInterval,
			Seed:         scale.Seed + 17,
		})
		return h
	}

	notifier := opts.Notifier
	if notifier == nil {
		notifier = &countingNotifier{}
	}
	fetcher := &core.OriginFetcher{Origin: h.Origin, Clock: h.Sim}
	rng := h.Sim.RNG("harness-node-ids")
	overlays := make([]*pastry.Node, scale.Nodes)
	for i := range overlays {
		ep := fmt.Sprintf("sim://%d", i)
		var node *pastry.Node
		endpoint := h.Net.Attach(ep, func(m pastry.Message) {
			if node != nil {
				node.Deliver(m)
			}
		})
		node = pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.Random(rng), Endpoint: ep}, endpoint, h.Sim)
		overlays[i] = node
	}
	pastry.BuildStaticOverlay(overlays)
	for i, overlay := range overlays {
		cfg := core.DefaultConfig()
		cfg.Policy = core.PolicyConfig{Scheme: opts.Scheme, FastTarget: opts.FastTarget}
		cfg.PollInterval = scale.PollInterval
		cfg.MaintenanceInterval = scale.MaintenanceInterval
		cfg.NodeCount = scale.Nodes
		cfg.CountSubscribersOnly = true
		cfg.OwnerReplicas = 0
		cfg.ContentMode = opts.ContentMode
		cfg.Seed = scale.Seed + int64(i)
		n := core.NewNode(cfg, overlay, h.Sim, fetcher, notifier, h.Recorder)
		h.Nodes = append(h.Nodes, n)
	}

	if opts.LegacyOn {
		legacyOrigin := buildOrigin(h.Work, h.Sim.Now(), scale.Seed)
		h.Baseline = legacy.New(h.Sim, legacyOrigin, h.Work, h.Recorder, legacy.Config{
			PollInterval: scale.PollInterval,
			Seed:         scale.Seed + 17,
		})
	}
	return h
}

// Run executes the experiment: subscriptions are issued (at once or
// ramped), nodes start, the load sampler ticks every bucket, and the
// simulator runs for the configured duration.
func (h *Harness) Run(opts Options) {
	// Arm the periodic load sampler.
	var tick func()
	tick = func() {
		h.Loads.Sample(h.Sim.Now())
		h.Sim.AfterFunc(h.Scale.Bucket, tick)
	}
	h.Sim.AfterFunc(h.Scale.Bucket, tick)

	if h.Baseline != nil {
		h.Baseline.Start()
	}
	for _, n := range h.Nodes {
		n.Start()
	}
	if len(h.Nodes) > 0 {
		h.issueSubscriptions(opts)
	}
	h.Sim.RunFor(h.Scale.Duration)
}

// issueSubscriptions feeds the workload's subscriptions into the cloud.
// Simulation runs issue everything at the start (§5.1: "issue all
// subscriptions at once before collecting performance data"); deployment
// runs ramp them over the first hour (§5.2).
func (h *Harness) issueSubscriptions(opts Options) {
	rng := h.Sim.RNG("subscription-entry")
	ramp := time.Duration(0)
	if opts.RampSubscriptions {
		ramp = time.Hour
	}
	// In counting mode, per-client identity is irrelevant; issue one
	// Subscribe per subscription with a synthetic handle. Entry node is
	// random per subscription, as clients connect to arbitrary nodes.
	subIdx := 0
	for i, ch := range h.Work.Channels {
		for s := 0; s < ch.Subscribers; s++ {
			entry := h.Nodes[rng.Intn(len(h.Nodes))]
			url := ch.URL
			client := fmt.Sprintf("u%d", subIdx)
			subIdx++
			if ramp == 0 {
				entry.Subscribe(client, url)
				continue
			}
			at := time.Duration(float64(ramp) * float64(subIdx) / float64(h.Work.TotalSubscriptions+1))
			h.Sim.AfterFunc(at, func() { entry.Subscribe(client, url) })
		}
		_ = i
	}
}

// PollersPerChannel counts, for each channel index, the nodes currently
// polling it (Figure 5's y-axis).
func (h *Harness) PollersPerChannel() []int {
	counts := make([]int, len(h.Work.Channels))
	for _, n := range h.Nodes {
		n.EachPolled(func(url string, level int) {
			if idx, ok := h.Recorder.urlIndex[url]; ok {
				counts[idx]++
			}
		})
	}
	return counts
}

// ModelDetectionMean computes the subscription-weighted mean of the
// assigned-level detection estimate τ/(2·pollers) over all channels,
// counting channels that never updated during the window at their
// would-be detection time — the analytical metric the paper's per-channel
// detection figures reflect (see Table2Row.ModelDetectionSec).
func (h *Harness) ModelDetectionMean() float64 {
	pollers := h.PollersPerChannel()
	var sum, weight float64
	tau := h.Scale.PollInterval.Seconds()
	for i, ch := range h.Work.Channels {
		n := float64(pollers[i])
		if n < 1 {
			n = 1
		}
		q := float64(ch.Subscribers)
		sum += q * tau / 2 / n
		weight += q
	}
	if weight == 0 {
		return 0
	}
	return sum / weight
}

// Package experiments encodes every experiment in the paper's evaluation
// (§5): one declarative configuration and runner per figure and table,
// shared by the corona-sim command and the benchmark harness. Each runner
// assembles the full stack — overlay, Corona nodes, synthetic origins,
// workload, legacy baseline — inside the discrete-event simulator and
// returns the series or table rows the paper plots.
package experiments

import (
	"os"
	"time"
)

// Scale groups the population and timing parameters of a run.
type Scale struct {
	// Nodes is N, the overlay size.
	Nodes int
	// Channels is M.
	Channels int
	// Subscriptions is the total subscription count.
	Subscriptions int
	// PollInterval is τ.
	PollInterval time.Duration
	// MaintenanceInterval is the protocol period.
	MaintenanceInterval time.Duration
	// Duration is the measured virtual horizon.
	Duration time.Duration
	// WarmUp excludes the initial transient from summary statistics
	// (time series still include it — the paper's Figures 3/4/9/10 show
	// the convergence transient deliberately).
	WarmUp time.Duration
	// Bucket is the reporting granularity of time series.
	Bucket time.Duration
	// Seed drives all randomness.
	Seed int64
}

// PaperSimulation returns the paper's simulation scale (§5.1): 1024 nodes,
// 20,000 channels, 1,000,000 subscriptions, τ=30 min, maintenance 1 h,
// six hours.
func PaperSimulation() Scale {
	return Scale{
		Nodes:               1024,
		Channels:            20000,
		Subscriptions:       1000000,
		PollInterval:        30 * time.Minute,
		MaintenanceInterval: time.Hour,
		Duration:            6 * time.Hour,
		WarmUp:              2 * time.Hour,
		Bucket:              15 * time.Minute,
		Seed:                1,
	}
}

// BenchSimulation returns a laptop-friendly scale that preserves the
// paper's *budget scarcity*: the optimizer's decision structure depends
// on the ratio of the per-channel poll budget (q̄ = subscriptions/channels)
// to the wedge costs (N/bˡ), so q̄ scales with N (q̄/N = 50/1024, the
// paper's ratio). That keeps the level plateaus, the popular/niche
// crossover, and the Fair-family inversions at the same relative
// positions; absolute detection times shift by the N ratio.
func BenchSimulation() Scale {
	return Scale{
		Nodes:               256,
		Channels:            4000,
		Subscriptions:       50000, // q̄ = 12.5 = 50·(256/1024)
		PollInterval:        30 * time.Minute,
		MaintenanceInterval: time.Hour,
		Duration:            6 * time.Hour,
		WarmUp:              2 * time.Hour,
		Bucket:              15 * time.Minute,
		Seed:                1,
	}
}

// TinySimulation is the golden-shape test scale: small enough for unit
// tests, large enough that cooperation is visible.
func TinySimulation() Scale {
	return Scale{
		Nodes:               64,
		Channels:            400,
		Subscriptions:       20000,
		PollInterval:        30 * time.Minute,
		MaintenanceInterval: time.Hour,
		Duration:            6 * time.Hour,
		WarmUp:              2 * time.Hour,
		Bucket:              15 * time.Minute,
		Seed:                1,
	}
}

// PaperDeployment returns the deployment scale (§5.2): 80 nodes, 3,000
// channels, 30,000 subscriptions issued over the first hour, with polling
// and maintenance both at 30 min.
func PaperDeployment() Scale {
	return Scale{
		Nodes:               80,
		Channels:            3000,
		Subscriptions:       30000,
		PollInterval:        30 * time.Minute,
		MaintenanceInterval: 30 * time.Minute,
		Duration:            6 * time.Hour,
		WarmUp:              2 * time.Hour,
		Bucket:              15 * time.Minute,
		Seed:                1,
	}
}

// BenchDeployment is the laptop-scale deployment variant. The node count
// stays at the paper's 80 — wedge sizes, and therefore the achievable
// detection speed-up, depend directly on N — while channels and
// subscriptions shrink proportionally.
func BenchDeployment() Scale {
	return Scale{
		Nodes:               80,
		Channels:            600,
		Subscriptions:       6000,
		PollInterval:        30 * time.Minute,
		MaintenanceInterval: 30 * time.Minute,
		Duration:            6 * time.Hour,
		WarmUp:              2 * time.Hour,
		Bucket:              15 * time.Minute,
		Seed:                1,
	}
}

// SimScaleFromEnv picks the simulation scale: CORONA_SCALE=paper selects
// the full paper scale, anything else (or unset) the bench scale.
func SimScaleFromEnv() Scale {
	if os.Getenv("CORONA_SCALE") == "paper" {
		return PaperSimulation()
	}
	return BenchSimulation()
}

// DeployScaleFromEnv picks the deployment scale analogously.
func DeployScaleFromEnv() Scale {
	if os.Getenv("CORONA_SCALE") == "paper" {
		return PaperDeployment()
	}
	return BenchDeployment()
}

package experiments

import (
	"time"

	"corona/internal/stats"
	"corona/internal/webserver"
	"corona/internal/workload"
)

// ChannelDetection accumulates per-channel detection statistics for the
// per-channel figures (5, 6, 7, 8).
type ChannelDetection struct {
	// Sum and Count aggregate detection latencies of this channel's
	// updates.
	Sum   time.Duration
	Count int
}

// Mean returns the channel's mean detection latency, or 0 when no update
// was measured.
func (c ChannelDetection) Mean() time.Duration {
	if c.Count == 0 {
		return 0
	}
	return c.Sum / time.Duration(c.Count)
}

// Recorder implements core.DetectionSink and legacy.Recorder: it converts
// detection events into the measurements the figures need. Detection
// latencies for Corona are deduplicated per (channel, version), keeping
// the earliest report — cooperative detection counts once for the whole
// cloud, exactly as the paper measures it.
type Recorder struct {
	work     *workload.Workload
	procs    []webserver.UpdateProcess
	urlIndex map[string]int
	start    time.Time
	warmUp   time.Duration

	// lastVersion[i] is the highest version of channel i already
	// recorded (Corona side).
	lastVersion []uint64

	// Series is the bucketed subscription-weighted detection latency
	// (seconds) over time — Figures 4 and 9.
	Series *stats.TimeSeries
	// LegacySeries is the same for the legacy baseline when sharing a
	// recorder.
	LegacySeries *stats.TimeSeries

	// PerChannel aggregates post-warm-up latencies per channel (Corona).
	PerChannel []ChannelDetection
	// LegacyPerChannel is the baseline analogue.
	LegacyPerChannel []ChannelDetection

	// Overall and LegacyOverall are post-warm-up subscription-weighted
	// means in seconds (Table 2).
	Overall       stats.WeightedMean
	LegacyOverall stats.WeightedMean
}

// NewRecorder builds a recorder for a workload hosted on origin.
func NewRecorder(work *workload.Workload, origin *webserver.Origin, start time.Time, warmUp, bucket time.Duration) *Recorder {
	r := &Recorder{
		work:             work,
		procs:            make([]webserver.UpdateProcess, len(work.Channels)),
		urlIndex:         make(map[string]int, len(work.Channels)),
		start:            start,
		warmUp:           warmUp,
		lastVersion:      make([]uint64, len(work.Channels)),
		Series:           stats.NewTimeSeries(start, bucket),
		LegacySeries:     stats.NewTimeSeries(start, bucket),
		PerChannel:       make([]ChannelDetection, len(work.Channels)),
		LegacyPerChannel: make([]ChannelDetection, len(work.Channels)),
	}
	for i, ch := range work.Channels {
		r.urlIndex[ch.URL] = i
		if p, ok := origin.Process(ch.URL); ok {
			r.procs[i] = p
		}
	}
	return r
}

// UpdateDetected implements core.DetectionSink. The first report of a
// version wins (simulation events arrive in time order); versions skipped
// between polls are credited at the same detection instant, matching the
// legacy baseline's accounting.
func (r *Recorder) UpdateDetected(url string, version uint64, at time.Time) {
	idx, ok := r.urlIndex[url]
	if !ok || r.procs[idx] == nil {
		return
	}
	last := r.lastVersion[idx]
	if version <= last {
		return
	}
	r.lastVersion[idx] = version
	q := float64(r.work.Channels[idx].Subscribers)
	for v := last + 1; v <= version; v++ {
		ut := r.procs[idx].UpdateTime(v)
		if ut.IsZero() || ut.Before(r.start) {
			continue
		}
		latency := at.Sub(ut)
		if latency < 0 {
			continue
		}
		r.Series.AddWeighted(at, latency.Seconds(), q)
		if at.Sub(r.start) >= r.warmUp {
			r.PerChannel[idx].Sum += latency
			r.PerChannel[idx].Count++
			r.Overall.Add(latency.Seconds(), q)
		}
	}
}

// WeightedChannelMean computes the paper's headline metric (§3.1, Table
// 2): each channel's mean detection latency, averaged across channels
// weighted by subscriber count. Channels with no measured update are
// excluded. The distinction from a per-update mean matters: a per-update
// mean over-rewards schemes that favor hot channels (which generate most
// update events), whereas the paper weighs every subscription equally
// regardless of its channel's update rate.
func (r *Recorder) WeightedChannelMean() float64 {
	return weightedChannelMean(r.PerChannel, r.work)
}

// LegacyWeightedChannelMean is the baseline analogue.
func (r *Recorder) LegacyWeightedChannelMean() float64 {
	return weightedChannelMean(r.LegacyPerChannel, r.work)
}

func weightedChannelMean(per []ChannelDetection, work *workload.Workload) float64 {
	var m stats.WeightedMean
	for i, d := range per {
		if d.Count == 0 {
			continue
		}
		m.Add(d.Mean().Seconds(), float64(work.Channels[i].Subscribers))
	}
	return m.Mean()
}

// LegacyDetection implements legacy.Recorder: every client's detection of
// every update counts with weight one (each client is one subscription).
func (r *Recorder) LegacyDetection(channelIndex int, latency time.Duration, at time.Time) {
	r.LegacySeries.AddWeighted(at, latency.Seconds(), 1)
	if at.Sub(r.start) >= r.warmUp {
		r.LegacyPerChannel[channelIndex].Sum += latency
		r.LegacyPerChannel[channelIndex].Count++
		r.LegacyOverall.Add(latency.Seconds(), 1)
	}
}

// LoadSampler snapshots origin accounting each bucket, producing the
// network-load time series of Figures 3 and 10.
type LoadSampler struct {
	origin *webserver.Origin
	start  time.Time
	bucket time.Duration

	// Polls[i] and Bytes[i] are the deltas accumulated in bucket i.
	Polls []float64
	Bytes []float64

	lastPolls uint64
	lastBytes uint64
}

// NewLoadSampler creates a sampler; arm it with Schedule.
func NewLoadSampler(origin *webserver.Origin, start time.Time, bucket time.Duration) *LoadSampler {
	return &LoadSampler{origin: origin, start: start, bucket: bucket}
}

// Sample records the delta since the previous call into the bucket for t.
func (ls *LoadSampler) Sample(t time.Time) {
	load := ls.origin.TotalLoad()
	dPolls := float64(load.Polls - ls.lastPolls)
	dBytes := float64(load.BytesServed - ls.lastBytes)
	ls.lastPolls, ls.lastBytes = load.Polls, load.BytesServed
	idx := int(t.Sub(ls.start) / ls.bucket)
	if idx < 0 {
		return
	}
	for idx >= len(ls.Polls) {
		ls.Polls = append(ls.Polls, 0)
		ls.Bytes = append(ls.Bytes, 0)
	}
	// Attribute the delta to the bucket that just ended.
	if idx > 0 {
		ls.Polls[idx-1] += dPolls
		ls.Bytes[idx-1] += dBytes
	} else {
		ls.Polls[0] += dPolls
		ls.Bytes[0] += dBytes
	}
}

// KbpsPerChannel converts bucketed bytes into the paper's Figure 3 unit:
// kilobits per second of server bandwidth per channel.
func (ls *LoadSampler) KbpsPerChannel(channels int) []float64 {
	out := make([]float64, len(ls.Bytes))
	secs := ls.bucket.Seconds()
	for i, b := range ls.Bytes {
		out[i] = b * 8 / 1000 / secs / float64(channels)
	}
	return out
}

// PollsPerMinute converts bucketed polls into Figure 10's unit.
func (ls *LoadSampler) PollsPerMinute() []float64 {
	out := make([]float64, len(ls.Polls))
	mins := ls.bucket.Minutes()
	for i, p := range ls.Polls {
		out[i] = p / mins
	}
	return out
}

// PollsPerIntervalPerChannel converts post-warm-up polls into Table 2's
// unit: polls per polling interval per channel.
func (ls *LoadSampler) PollsPerIntervalPerChannel(channels int, pollInterval, warmUp time.Duration) float64 {
	var total float64
	var buckets int
	skip := int(warmUp / ls.bucket)
	for i := skip; i < len(ls.Polls); i++ {
		total += ls.Polls[i]
		buckets++
	}
	if buckets == 0 || channels == 0 {
		return 0
	}
	perBucket := total / float64(buckets)
	intervalsPerBucket := float64(ls.bucket) / float64(pollInterval)
	return perBucket / intervalsPerBucket / float64(channels)
}

package experiments

import (
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/ids"
	"corona/internal/pastry"
)

// TestAbortedJoinIsUnreachable pins the zombie-join bug: a node whose
// join protocol never completes within the deadline must end up both
// marked Down AND genuinely unreachable. Marking it Down while leaving
// its endpoint attached produces a zombie — a half-joined overlay that
// keeps answering routed messages, wins ownership claims, and attracts
// lease re-points, all invisible to every audit that trusts Down (the
// chaos invariant checker found channels owned by exactly such a node).
func TestAbortedJoinIsUnreachable(t *testing.T) {
	scale := tinyScale()
	scale.Nodes = 16
	scale.Channels = 4
	scale.Subscriptions = 40
	h := NewHarness(scale, Options{Scheme: core.SchemeLite})
	for _, n := range h.Nodes {
		n.Start()
	}
	h.Sim.RunFor(time.Minute)

	// Wedge the join: partition the joiner away the instant it attaches.
	// The join request already left, but every reply is cut off, so the
	// protocol stalls past JoinNode's deadline and the harness aborts it.
	started := false
	if err := h.JoinNode("zombie", 0, func(int) { started = true }); err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	h.Net.Partition("sim://zombie", 1)
	h.Sim.RunFor(10 * time.Minute)
	h.Net.Heal()
	h.Sim.RunFor(time.Minute)

	if started {
		t.Fatalf("join completed despite the partition; test premise broken")
	}
	idx := len(h.Nodes) - 1
	if !h.Down[idx] {
		t.Fatalf("aborted join is not marked Down")
	}
	probe := h.Net.Attach("sim://probe", func(pastry.Message) {})
	err := probe.Send(pastry.Addr{ID: ids.HashString("zombie"), Endpoint: "sim://zombie"}, pastry.Message{})
	if err == nil {
		t.Fatalf("aborted joiner still reachable after heal: Down node left attached (zombie)")
	}
}

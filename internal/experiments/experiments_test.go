package experiments

import (
	"math"
	"testing"
	"time"

	"corona/internal/core"
)

// tinyScale shrinks the tiny preset further for fast unit runs.
func tinyScale() Scale {
	s := TinySimulation()
	s.Channels = 300
	s.Subscriptions = 15000
	return s
}

func lastValid(vals []float64) float64 {
	for i := len(vals) - 1; i >= 0; i-- {
		if !math.IsNaN(vals[i]) && vals[i] > 0 {
			return vals[i]
		}
	}
	return math.NaN()
}

func meanTail(vals []float64, skip int) float64 {
	total, n := 0.0, 0
	for i := skip; i < len(vals); i++ {
		if !math.IsNaN(vals[i]) {
			total += vals[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return total / float64(n)
}

func TestFigure34Shapes(t *testing.T) {
	res := RunFigure34(tinyScale())
	if len(res.Load) != 3 || len(res.Detect) != 3 {
		t.Fatalf("series missing: %d load, %d detect", len(res.Load), len(res.Detect))
	}
	byName := func(series []Series, name string) Series {
		for _, s := range series {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("series %q missing", name)
		return Series{}
	}
	skip := int(res.Scale.WarmUp / res.Scale.Bucket)

	// Figure 3 shape: Corona-Lite load settles close to the legacy load;
	// Corona-Fast is allowed to differ (it trades load for its target).
	legacyLoad := meanTail(byName(res.Load, "Legacy RSS").Values, skip)
	liteLoad := meanTail(byName(res.Load, "Corona Lite").Values, skip)
	if legacyLoad <= 0 {
		t.Fatalf("legacy load %v", legacyLoad)
	}
	if ratio := liteLoad / legacyLoad; ratio > 1.6 || ratio < 0.25 {
		t.Fatalf("Corona-Lite load %.3f kbps/channel vs legacy %.3f: ratio %.2f outside [0.25,1.6]",
			liteLoad, legacyLoad, ratio)
	}

	// Figure 4 shape: legacy detection ≈ τ/2 = 15 min; Corona-Lite an
	// order of magnitude better; Corona-Fast near its 30 s target.
	legacyDetect := meanTail(byName(res.Detect, "Legacy RSS").Values, skip)
	liteDetect := meanTail(byName(res.Detect, "Corona Lite").Values, skip)
	fastDetect := meanTail(byName(res.Detect, "Corona Fast").Values, skip)
	if legacyDetect < 12 || legacyDetect > 18 {
		t.Fatalf("legacy detection %.1f min, want ≈15", legacyDetect)
	}
	if liteDetect > legacyDetect/4 {
		t.Fatalf("Corona-Lite detection %.1f min not clearly better than legacy %.1f", liteDetect, legacyDetect)
	}
	if fastDetect*60 > 120 {
		t.Fatalf("Corona-Fast detection %.1f min, want near its 30s target", fastDetect)
	}
}

func TestFigure56Shapes(t *testing.T) {
	res := RunFigure56(tinyScale())
	if len(res.CoronaPollers) == 0 || len(res.CoronaDetect) == 0 {
		t.Fatal("no per-channel data")
	}
	// Popularity-ordered: poller counts must trend downward — compare
	// the top decile's mean against the bottom decile's.
	n := len(res.CoronaPollers)
	top, bottom := 0.0, 0.0
	k := n / 10
	if k == 0 {
		k = 1
	}
	for i := 0; i < k; i++ {
		top += res.CoronaPollers[i].Value
		bottom += res.CoronaPollers[n-1-i].Value
	}
	if top <= bottom {
		t.Fatalf("pollers not decreasing with rank: top %.1f bottom %.1f", top/float64(k), bottom/float64(k))
	}
	// Every subscribed channel keeps at least its owner polling.
	for _, p := range res.CoronaPollers {
		if p.Value < 1 {
			t.Fatalf("channel rank %d has no poller", p.Rank)
		}
	}
	// Figure 6: popular channels detect faster than unpopular ones.
	dn := len(res.CoronaDetect)
	if dn > 10 {
		topD, botD := 0.0, 0.0
		dk := dn / 5
		for i := 0; i < dk; i++ {
			topD += res.CoronaDetect[i].Value
			botD += res.CoronaDetect[dn-1-i].Value
		}
		if topD >= botD {
			t.Fatalf("popular channels not faster: top %.0f s vs bottom %.0f s", topD/float64(dk), botD/float64(dk))
		}
	}
}

func TestFigure78Shapes(t *testing.T) {
	res := RunFigure78(tinyScale())
	for _, scheme := range []string{"Corona-Lite", "Corona-Fair", "Corona-Fair-Sqrt", "Corona-Fair-Log"} {
		if len(res.ByScheme[scheme]) == 0 {
			t.Fatalf("no data for %s", scheme)
		}
	}
	// Fair must align detection with update interval better than Lite:
	// rank correlation between update-interval rank and detection time
	// should be higher under Fair.
	corr := func(pts []RankPoint) float64 {
		// Spearman-ish: correlation of rank vs value.
		n := float64(len(pts))
		var sumR, sumV, sumRV, sumR2, sumV2 float64
		for _, p := range pts {
			r, v := float64(p.Rank), p.Value
			sumR += r
			sumV += v
			sumRV += r * v
			sumR2 += r * r
			sumV2 += v * v
		}
		num := n*sumRV - sumR*sumV
		den := math.Sqrt(n*sumR2-sumR*sumR) * math.Sqrt(n*sumV2-sumV*sumV)
		if den == 0 {
			return 0
		}
		return num / den
	}
	liteCorr := corr(res.ByScheme["Corona-Lite"])
	fairCorr := corr(res.ByScheme["Corona-Fair"])
	if fairCorr <= liteCorr {
		t.Fatalf("Fair does not align detection with update interval: corr fair=%.2f lite=%.2f", fairCorr, liteCorr)
	}
}

func TestTable2Shapes(t *testing.T) {
	res := RunTable2(tinyScale())
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range res.Rows {
		byName[r.Scheme] = r
	}
	legacy := byName["Legacy-RSS"]
	lite := byName["Corona-Lite"]
	fast := byName["Corona-Fast"]
	fair := byName["Corona-Fair"]

	// Paper shape: legacy ≈ 900 s; Lite an order of magnitude better at
	// similar load; Fast fastest with more load; Fair between.
	if legacy.DetectionSec < 800 || legacy.DetectionSec > 1000 {
		t.Fatalf("legacy detection %.0f s, want ≈900", legacy.DetectionSec)
	}
	if lite.DetectionSec > legacy.DetectionSec/4 {
		t.Fatalf("Lite detection %.0f s not ≪ legacy %.0f", lite.DetectionSec, legacy.DetectionSec)
	}
	if fast.DetectionSec >= lite.DetectionSec*2 {
		t.Fatalf("Fast detection %.0f s should be at or below Lite-ish levels (lite %.0f)", fast.DetectionSec, lite.DetectionSec)
	}
	if lite.LoadPollsPerIntervalPerChannel > 1.6*legacy.LoadPollsPerIntervalPerChannel {
		t.Fatalf("Lite load %.1f exceeds legacy %.1f", lite.LoadPollsPerIntervalPerChannel, legacy.LoadPollsPerIntervalPerChannel)
	}
	if fair.DetectionSec < lite.DetectionSec {
		t.Logf("note: Fair %.0f s faster than Lite %.0f s (paper has Fair slower)", fair.DetectionSec, lite.DetectionSec)
	}
}

func TestTable2FairInversionUnderScarcity(t *testing.T) {
	// The paper's Table 2 ordering — Fair slower than Lite overall, the
	// Sqrt/Log variants repairing most of the gap — emerges when the
	// poll budget is scarce relative to wedge costs (q̄/N at the paper's
	// ratio). This scale preserves that scarcity at unit-test size.
	scale := Scale{
		Nodes:               128,
		Channels:            1000,
		Subscriptions:       6250, // q̄ = 6.25 = 50·(128/1024)
		PollInterval:        30 * time.Minute,
		MaintenanceInterval: time.Hour,
		Duration:            6 * time.Hour,
		WarmUp:              2 * time.Hour,
		Bucket:              15 * time.Minute,
		Seed:                1,
	}
	res := RunTable2(scale)
	byName := map[string]Table2Row{}
	for _, r := range res.Rows {
		byName[r.Scheme] = r
	}
	legacy := byName["Legacy-RSS"]
	lite := byName["Corona-Lite"]
	fair := byName["Corona-Fair"]
	sqrt := byName["Corona-Fair-Sqrt"]
	logv := byName["Corona-Fair-Log"]

	if !(lite.ModelDetectionSec < legacy.ModelDetectionSec/2) {
		t.Fatalf("Lite model detection %.0f not ≪ legacy %.0f", lite.ModelDetectionSec, legacy.ModelDetectionSec)
	}
	if !(fair.ModelDetectionSec > lite.ModelDetectionSec) {
		t.Fatalf("Fair (%.0f) should be slower than Lite (%.0f) overall — the paper's Table 2 inversion",
			fair.ModelDetectionSec, lite.ModelDetectionSec)
	}
	if !(sqrt.ModelDetectionSec < fair.ModelDetectionSec && logv.ModelDetectionSec < fair.ModelDetectionSec) {
		t.Fatalf("Sqrt (%.0f) / Log (%.0f) variants should repair Fair's penalty (%.0f)",
			sqrt.ModelDetectionSec, logv.ModelDetectionSec, fair.ModelDetectionSec)
	}
	if lite.LoadPollsPerIntervalPerChannel > 1.5*legacy.LoadPollsPerIntervalPerChannel {
		t.Fatalf("Lite load %.1f exceeds legacy budget %.1f",
			lite.LoadPollsPerIntervalPerChannel, legacy.LoadPollsPerIntervalPerChannel)
	}
}

func TestFigure910Shapes(t *testing.T) {
	scale := BenchDeployment()
	scale.Channels = 300
	scale.Subscriptions = 3000
	res := RunFigure910(scale)
	skip := int(scale.WarmUp / scale.Bucket)
	legacyDetect := meanTail(res.Detect[0].Values, skip)
	coronaDetect := meanTail(res.Detect[1].Values, skip)
	// Shape check: Corona clearly beats legacy. The paper reports a 14x
	// gap at this node count; the paper's own analytical model
	// (τ/2·bˡ/N ≈ 170 s at level 1 with N=80) bounds what cooperative
	// polling can deliver here, so we assert the defensible 2.5x (see
	// EXPERIMENTS.md fig9 notes).
	if coronaDetect >= legacyDetect/2.5 {
		t.Fatalf("deployment Corona detection %.0f s not ≪ legacy %.0f s", coronaDetect, legacyDetect)
	}
	legacyPolls := meanTail(res.Polls[0].Values, skip)
	coronaPolls := meanTail(res.Polls[1].Values, skip)
	if coronaPolls > legacyPolls*1.6 {
		t.Fatalf("deployment Corona polls/min %.1f exceed legacy %.1f", coronaPolls, legacyPolls)
	}
	_ = lastValid
}

func TestRendersProduceOutput(t *testing.T) {
	scale := tinyScale()
	scale.Duration = 3 * time.Hour
	scale.WarmUp = time.Hour
	res := RunFigure34(scale)
	if out := res.Render(); len(out) < 100 {
		t.Fatalf("Figure34 render too small:\n%s", out)
	}
	_ = core.SchemeLite
}

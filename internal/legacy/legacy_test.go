package legacy

import (
	"testing"
	"time"

	"corona/internal/eventsim"
	"corona/internal/webserver"
	"corona/internal/workload"
)

type captureRecorder struct {
	latencies []time.Duration
	perChan   map[int]int
}

func (c *captureRecorder) LegacyDetection(idx int, latency time.Duration, at time.Time) {
	c.latencies = append(c.latencies, latency)
	if c.perChan == nil {
		c.perChan = make(map[int]int)
	}
	c.perChan[idx]++
}

// buildFixture hosts a small workload on an origin.
func buildFixture(t *testing.T, subsPerChannel []int, interval time.Duration) (*eventsim.Sim, *webserver.Origin, *workload.Workload) {
	t.Helper()
	sim := eventsim.New(3)
	origin := webserver.NewOrigin()
	w := &workload.Workload{}
	for i, q := range subsPerChannel {
		url := urlFor(i)
		w.Channels = append(w.Channels, workload.ChannelSpec{
			URL: url, Subscribers: q, UpdateInterval: interval, SizeBytes: 2048,
		})
		w.TotalSubscriptions += q
		origin.Host(webserver.ChannelConfig{
			URL:       url,
			SizeBytes: 2048,
			Process:   webserver.PeriodicProcess{Origin: eventsim.Epoch.Add(time.Minute), Interval: interval},
		})
	}
	return sim, origin, w
}

func urlFor(i int) string {
	return "http://legacy.example.net/" + string(rune('a'+i)) + ".xml"
}

func TestLoadMatchesSubscriptions(t *testing.T) {
	sim, origin, w := buildFixture(t, []int{10, 5, 1}, time.Hour)
	rec := &captureRecorder{}
	b := New(sim, origin, w, rec, Config{PollInterval: 30 * time.Minute, Seed: 1})
	if got := b.ExpectedLoadPerInterval(); got != 16 {
		t.Fatalf("ExpectedLoadPerInterval = %d, want 16", got)
	}
	b.Start()
	sim.RunFor(3 * time.Hour)
	load := origin.TotalLoad()
	// 16 clients x 6 polling intervals = 96 polls (within one interval of
	// boundary effects).
	if load.Polls < 80 || load.Polls > 112 {
		t.Fatalf("polls = %d, want ≈96", load.Polls)
	}
	// Each poll transfers full content.
	if load.BytesServed != load.Polls*2048 {
		t.Fatalf("bytes = %d, want polls x size", load.BytesServed)
	}
}

func TestPerChannelLoadProportionalToPopularity(t *testing.T) {
	sim, origin, w := buildFixture(t, []int{40, 4}, time.Hour)
	b := New(sim, origin, w, nil, Config{PollInterval: 30 * time.Minute, Seed: 2})
	b.Start()
	sim.RunFor(4 * time.Hour)
	l0, _ := origin.Load(urlFor(0))
	l1, _ := origin.Load(urlFor(1))
	ratio := float64(l0.Polls) / float64(l1.Polls)
	if ratio < 8 || ratio > 12 {
		t.Fatalf("load ratio %.1f, want ≈10 (popularity ratio)", ratio)
	}
}

func TestDetectionLatencyAveragesHalfInterval(t *testing.T) {
	// With many clients and periodic updates, mean detection latency must
	// approach τ/2 (the paper's 15 min for τ=30 min).
	sim, origin, w := buildFixture(t, []int{200}, 47*time.Minute)
	rec := &captureRecorder{}
	b := New(sim, origin, w, rec, Config{PollInterval: 30 * time.Minute, Seed: 3})
	b.Start()
	sim.RunFor(12 * time.Hour)
	if len(rec.latencies) < 1000 {
		t.Fatalf("too few detections: %d", len(rec.latencies))
	}
	var total time.Duration
	for _, l := range rec.latencies {
		total += l
	}
	mean := total / time.Duration(len(rec.latencies))
	if mean < 13*time.Minute || mean > 17*time.Minute {
		t.Fatalf("mean legacy detection %v, want ≈15m", mean)
	}
}

func TestEveryClientDetectsEveryUpdate(t *testing.T) {
	sim, origin, w := buildFixture(t, []int{7}, time.Hour)
	rec := &captureRecorder{}
	b := New(sim, origin, w, rec, Config{PollInterval: 20 * time.Minute, Seed: 4})
	b.Start()
	sim.RunFor(6*time.Hour + time.Minute)
	// Updates at +1m, +61m, ..., i.e. 6 updates within the horizon eligible
	// for detection by all 7 clients (the last may straddle the boundary).
	got := rec.perChan[0]
	if got < 5*7 || got > 7*7 {
		t.Fatalf("detections = %d, want ≈42 (6 updates x 7 clients)", got)
	}
}

func TestZeroSubscriberChannelsSkipped(t *testing.T) {
	sim, origin, w := buildFixture(t, []int{0, 3}, time.Hour)
	b := New(sim, origin, w, nil, Config{PollInterval: 30 * time.Minute, Seed: 5})
	b.Start()
	sim.RunFor(2 * time.Hour)
	l0, _ := origin.Load(urlFor(0))
	if l0.Polls != 0 {
		t.Fatalf("unsubscribed channel was polled %d times", l0.Polls)
	}
}

func TestStopHaltsPolling(t *testing.T) {
	sim, origin, w := buildFixture(t, []int{5}, time.Hour)
	b := New(sim, origin, w, nil, Config{PollInterval: 10 * time.Minute, Seed: 6})
	b.Start()
	sim.RunFor(time.Hour)
	b.Stop()
	before := origin.TotalLoad().Polls
	sim.RunFor(2 * time.Hour)
	if after := origin.TotalLoad().Polls; after != before {
		t.Fatalf("polls continued after Stop: %d -> %d", before, after)
	}
}

// Package legacy implements the comparison baseline in every experiment:
// legacy RSS readers that poll independently and without coordination
// (paper §5: "we compare the performance of Corona with the performance of
// legacy RSS, a widely-used micronews syndication system").
//
// Each subscription is an independent client polling its channel every τ
// with a uniformly random phase. A client detects an update at its first
// poll after the update is published, so per-client detection latency
// averages τ/2 regardless of channel popularity, while the origin absorbs
// qᵢ polls per τ per channel — the uncoordinated-polling pathology Corona
// removes.
//
// The implementation keeps one pending simulator event per channel rather
// than per client: client phases are pre-sorted and a cursor walks them,
// so memory stays proportional to channels while every poll is still
// simulated and accounted.
package legacy

import (
	"math/rand"
	"sort"
	"time"

	"corona/internal/eventsim"
	"corona/internal/webserver"
	"corona/internal/workload"
)

// Recorder receives per-client detection events.
type Recorder interface {
	// LegacyDetection reports that one legacy client detected an update
	// with the given latency at virtual time at.
	LegacyDetection(channelIndex int, latency time.Duration, at time.Time)
}

// Config parameterizes the baseline.
type Config struct {
	// PollInterval is each client's polling period (τ).
	PollInterval time.Duration
	// Seed drives phase randomization.
	Seed int64
}

// Baseline simulates the legacy client population.
type Baseline struct {
	sim      *eventsim.Sim
	origin   *webserver.Origin
	work     *workload.Workload
	cfg      Config
	recorder Recorder

	channels []*channelPollState
	running  bool
}

// channelPollState walks one channel's client phases in order.
type channelPollState struct {
	index   int
	url     string
	phases  []time.Duration // sorted, one per client, in [0, τ)
	cursor  int
	cycle   time.Time // start of the current polling period
	process webserver.UpdateProcess
}

// New builds the baseline for a workload served by origin. Channels with
// zero subscribers are skipped (nobody polls them).
func New(sim *eventsim.Sim, origin *webserver.Origin, work *workload.Workload, recorder Recorder, cfg Config) *Baseline {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 30 * time.Minute
	}
	b := &Baseline{sim: sim, origin: origin, work: work, cfg: cfg, recorder: recorder}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i, ch := range work.Channels {
		if ch.Subscribers == 0 {
			continue
		}
		proc, ok := origin.Process(ch.URL)
		if !ok {
			continue
		}
		st := &channelPollState{
			index:   i,
			url:     ch.URL,
			phases:  make([]time.Duration, ch.Subscribers),
			process: proc,
		}
		for j := range st.phases {
			st.phases[j] = time.Duration(rng.Int63n(int64(cfg.PollInterval)))
		}
		sort.Slice(st.phases, func(a, c int) bool { return st.phases[a] < st.phases[c] })
		b.channels = append(b.channels, st)
	}
	return b
}

// Start schedules the first poll of every channel's earliest-phase client.
func (b *Baseline) Start() {
	if b.running {
		return
	}
	b.running = true
	now := b.sim.Now()
	for _, st := range b.channels {
		st.cycle = now
		st.cursor = 0
		b.scheduleNext(st)
	}
}

// Stop halts the baseline; pending events become no-ops.
func (b *Baseline) Stop() { b.running = false }

func (b *Baseline) scheduleNext(st *channelPollState) {
	if st.cursor >= len(st.phases) {
		st.cursor = 0
		st.cycle = st.cycle.Add(b.cfg.PollInterval)
	}
	at := st.cycle.Add(st.phases[st.cursor])
	b.sim.At(at, func() { b.poll(st) })
}

// poll performs one client's poll: full-content fetch (legacy readers of
// the era polled unconditionally) plus detection accounting for the
// updates published since this client's previous poll.
func (b *Baseline) poll(st *channelPollState) {
	if !b.running {
		return
	}
	now := b.sim.Now()
	if _, err := b.origin.Fetch(st.url, now); err == nil && b.recorder != nil {
		// This client last polled exactly τ ago (or never, at startup).
		prev := now.Add(-b.cfg.PollInterval)
		vPrev := st.process.VersionAt(prev)
		vNow := st.process.VersionAt(now)
		for v := vPrev + 1; v <= vNow; v++ {
			latency := now.Sub(st.process.UpdateTime(v))
			if latency >= 0 && latency <= b.cfg.PollInterval {
				b.recorder.LegacyDetection(st.index, latency, now)
			}
		}
	}
	st.cursor++
	b.scheduleNext(st)
}

// ExpectedLoadPerInterval returns Σqᵢ, the total polls the baseline issues
// per polling interval — the budget Corona-Lite inherits (Table 1).
func (b *Baseline) ExpectedLoadPerInterval() int {
	total := 0
	for _, st := range b.channels {
		total += len(st.phases)
	}
	return total
}

// Package workload regenerates the RSS workload family the paper's
// experiments are parameterized by (paper §5, [19]).
//
// The Cornell survey found: channel popularity follows a Zipf distribution
// with exponent 0.5; update intervals spread over orders of magnitude,
// with roughly 10% of channels changing within an hour and roughly half
// not changing at all over five days (the simulations cap these at one
// week); contents average a few kilobytes, with a typical update touching
// ≈6.8% of the bytes. This package synthesizes channel populations and
// subscription traces with those marginals, deterministically from a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// ChannelSpec describes one synthesized channel.
type ChannelSpec struct {
	// URL is the channel identity (the Corona topic).
	URL string
	// Subscribers is qᵢ, the number of clients subscribed.
	Subscribers int
	// UpdateInterval is uᵢ, the mean time between content updates.
	UpdateInterval time.Duration
	// SizeBytes is sᵢ, the full content transfer size.
	SizeBytes int
}

// Workload is a complete synthesized experiment population.
type Workload struct {
	// Channels is ordered by decreasing popularity (rank 1 first), as the
	// per-channel figures plot them.
	Channels []ChannelSpec
	// TotalSubscriptions is Σ qᵢ.
	TotalSubscriptions int
}

// Config parameterizes synthesis.
type Config struct {
	// Channels is M, the number of distinct channels.
	Channels int
	// Subscriptions is the total number of client subscriptions to
	// apportion across channels.
	Subscriptions int
	// ZipfExponent is the popularity skew (0.5 in the survey).
	ZipfExponent float64
	// Seed drives all sampling.
	Seed int64
	// URLPrefix prefixes channel URLs (default "http://feeds.example.net/ch").
	URLPrefix string
}

// DefaultSimulation returns the paper's simulation-scale workload
// (§5.1: 20,000 channels, 1,000,000 subscriptions, Zipf 0.5).
func DefaultSimulation() Config {
	return Config{Channels: 20000, Subscriptions: 1000000, ZipfExponent: 0.5, Seed: 1}
}

// DefaultDeployment returns the deployment-scale workload (§5.2: 3,000
// channels, 30,000 subscriptions).
func DefaultDeployment() Config {
	return Config{Channels: 3000, Subscriptions: 30000, ZipfExponent: 0.5, Seed: 1}
}

// Generate synthesizes the workload.
func Generate(cfg Config) *Workload {
	if cfg.Channels <= 0 {
		panic("workload: Channels must be positive")
	}
	if cfg.ZipfExponent <= 0 {
		cfg.ZipfExponent = 0.5
	}
	if cfg.URLPrefix == "" {
		cfg.URLPrefix = "http://feeds.example.net/ch"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	w := &Workload{Channels: make([]ChannelSpec, cfg.Channels)}
	// Zipf popularity: weight of rank r is r^-e; apportion subscriptions
	// proportionally with largest-remainder rounding so totals are exact.
	weights := make([]float64, cfg.Channels)
	var wsum float64
	for r := 0; r < cfg.Channels; r++ {
		weights[r] = math.Pow(float64(r+1), -cfg.ZipfExponent)
		wsum += weights[r]
	}
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, cfg.Channels)
	assigned := 0
	for r := 0; r < cfg.Channels; r++ {
		exact := float64(cfg.Subscriptions) * weights[r] / wsum
		base := int(math.Floor(exact))
		w.Channels[r].Subscribers = base
		assigned += base
		fracs[r] = frac{idx: r, rem: exact - float64(base)}
	}
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].rem != fracs[j].rem {
			return fracs[i].rem > fracs[j].rem
		}
		return fracs[i].idx < fracs[j].idx
	})
	for i := 0; assigned < cfg.Subscriptions && i < len(fracs); i++ {
		w.Channels[fracs[i].idx].Subscribers++
		assigned++
	}
	w.TotalSubscriptions = cfg.Subscriptions

	for r := 0; r < cfg.Channels; r++ {
		w.Channels[r].URL = fmt.Sprintf("%s/%06d.xml", cfg.URLPrefix, r)
		w.Channels[r].UpdateInterval = SampleUpdateInterval(rng)
		w.Channels[r].SizeBytes = SampleContentSize(rng)
	}
	return w
}

// Survey shape constants (paper §5: "about 10% of channels change within
// an hour, while 50% of channels did not change at all during 5 days of
// polling"; unchanged channels are capped at one week, §5.1).
const (
	fracSubHour   = 0.10
	fracUnchanged = 0.50
	minInterval   = 10 * time.Minute
	hourInterval  = time.Hour
	fiveDays      = 5 * 24 * time.Hour
	weekInterval  = 7 * 24 * time.Hour
)

// SampleUpdateInterval draws a channel update interval from the
// survey-shaped distribution: 10% log-uniform in [10 min, 1 h), 40%
// log-uniform in [1 h, 5 d), and 50% pinned at the one-week cap.
func SampleUpdateInterval(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	switch {
	case u < fracSubHour:
		return logUniformDuration(rng, minInterval, hourInterval)
	case u < 1-fracUnchanged:
		return logUniformDuration(rng, hourInterval, fiveDays)
	default:
		return weekInterval
	}
}

// logUniformDuration draws log-uniformly from [lo, hi).
func logUniformDuration(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	l, h := math.Log(float64(lo)), math.Log(float64(hi))
	return time.Duration(math.Exp(l + rng.Float64()*(h-l)))
}

// SampleContentSize draws a content size in bytes: lognormal with median
// ≈4 KB clamped to [512 B, 64 KB], matching feed-sized documents.
func SampleContentSize(rng *rand.Rand) int {
	const median = 4096.0
	const sigma = 0.7
	size := int(median * math.Exp(sigma*rng.NormFloat64()))
	if size < 512 {
		size = 512
	}
	if size > 64*1024 {
		size = 64 * 1024
	}
	return size
}

// MeanSize returns the average content size across channels, used to
// normalize sᵢ so load units agree with the paper's polls-based reporting
// (DESIGN.md §2.5).
func (w *Workload) MeanSize() float64 {
	if len(w.Channels) == 0 {
		return 0
	}
	total := 0.0
	for _, c := range w.Channels {
		total += float64(c.SizeBytes)
	}
	return total / float64(len(w.Channels))
}

// Subscription is one client subscription event for trace-driven runs.
type Subscription struct {
	// Client identifies the subscriber (IM handle).
	Client string
	// ChannelIndex indexes Workload.Channels.
	ChannelIndex int
	// Offset is when the subscription is issued, relative to experiment
	// start (§5.2: issued at a uniform rate during the first hour).
	Offset time.Duration
}

// SubscriptionTrace expands the workload into per-client subscription
// events, issued uniformly over rampUp. Client identities are synthetic IM
// handles; each subscription gets a distinct client, matching the paper's
// accounting where every subscription is a separate end-user unit (§3.1).
func (w *Workload) SubscriptionTrace(rampUp time.Duration, seed int64) []Subscription {
	rng := rand.New(rand.NewSource(seed))
	subs := make([]Subscription, 0, w.TotalSubscriptions)
	for idx, ch := range w.Channels {
		for s := 0; s < ch.Subscribers; s++ {
			subs = append(subs, Subscription{
				Client:       fmt.Sprintf("user-%d-%d", idx, s),
				ChannelIndex: idx,
			})
		}
	}
	// Shuffle then spread offsets uniformly so channel order and issue
	// order are independent.
	rng.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })
	if rampUp > 0 && len(subs) > 0 {
		step := float64(rampUp) / float64(len(subs))
		for i := range subs {
			subs[i].Offset = time.Duration(float64(i) * step)
		}
	}
	return subs
}

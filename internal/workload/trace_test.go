package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	w := Generate(Config{Channels: 200, Subscriptions: 10000, Seed: 11})
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalSubscriptions != w.TotalSubscriptions {
		t.Fatalf("total subscriptions %d, want %d", back.TotalSubscriptions, w.TotalSubscriptions)
	}
	if len(back.Channels) != len(w.Channels) {
		t.Fatalf("channels %d, want %d", len(back.Channels), len(w.Channels))
	}
	for i := range w.Channels {
		a, b := w.Channels[i], back.Channels[i]
		if a.URL != b.URL || a.Subscribers != b.Subscribers || a.SizeBytes != b.SizeBytes {
			t.Fatalf("channel %d differs: %+v vs %+v", i, a, b)
		}
		// Durations round-trip at millisecond precision.
		if d := a.UpdateInterval - b.UpdateInterval; d > 1e6 || d < -1e6 {
			t.Fatalf("channel %d interval drift %v", i, d)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"not,a,workload,header\nx,1,60,100\n",
		"url,subscribers,update_interval_sec,size_bytes\nx,notanumber,60,100\n",
		"url,subscribers,update_interval_sec,size_bytes\nx,1,-5,100\n",
		"url,subscribers,update_interval_sec,size_bytes\nx,1,60,0\n",
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%.40q) succeeded, want error", c)
		}
	}
}

package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteCSV serializes the workload's channel population so an experiment
// can be re-run elsewhere or inspected. Columns: url, subscribers,
// update_interval_sec, size_bytes.
func (w *Workload) WriteCSV(out io.Writer) error {
	cw := csv.NewWriter(out)
	if err := cw.Write([]string{"url", "subscribers", "update_interval_sec", "size_bytes"}); err != nil {
		return fmt.Errorf("workload: writing header: %w", err)
	}
	for _, ch := range w.Channels {
		rec := []string{
			ch.URL,
			strconv.Itoa(ch.Subscribers),
			strconv.FormatFloat(ch.UpdateInterval.Seconds(), 'f', 3, 64),
			strconv.Itoa(ch.SizeBytes),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing %s: %w", ch.URL, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a workload previously serialized with WriteCSV.
func ReadCSV(in io.Reader) (*Workload, error) {
	cr := csv.NewReader(in)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading header: %w", err)
	}
	if len(header) != 4 || header[0] != "url" {
		return nil, fmt.Errorf("workload: unexpected header %v", header)
	}
	w := &Workload{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		subs, err1 := strconv.Atoi(rec[1])
		secs, err2 := strconv.ParseFloat(rec[2], 64)
		size, err3 := strconv.Atoi(rec[3])
		if err1 != nil || err2 != nil || err3 != nil || subs < 0 || secs <= 0 || size <= 0 {
			return nil, fmt.Errorf("workload: line %d: invalid record %v", line, rec)
		}
		w.Channels = append(w.Channels, ChannelSpec{
			URL:            rec[0],
			Subscribers:    subs,
			UpdateInterval: time.Duration(secs * float64(time.Second)),
			SizeBytes:      size,
		})
		w.TotalSubscriptions += subs
	}
	return w, nil
}

package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestGenerateTotalsExact(t *testing.T) {
	w := Generate(Config{Channels: 1000, Subscriptions: 50000, ZipfExponent: 0.5, Seed: 1})
	total := 0
	for _, c := range w.Channels {
		total += c.Subscribers
	}
	if total != 50000 {
		t.Fatalf("apportioned %d subscriptions, want exactly 50000", total)
	}
	if w.TotalSubscriptions != 50000 {
		t.Fatalf("TotalSubscriptions = %d", w.TotalSubscriptions)
	}
}

func TestGenerateZipfShape(t *testing.T) {
	w := Generate(Config{Channels: 10000, Subscriptions: 500000, ZipfExponent: 0.5, Seed: 2})
	// Popularity must be non-increasing in rank.
	for i := 1; i < len(w.Channels); i++ {
		if w.Channels[i].Subscribers > w.Channels[i-1].Subscribers {
			t.Fatalf("popularity not monotone at rank %d", i)
		}
	}
	// Zipf 0.5: q(rank) ∝ rank^-0.5, so q(1)/q(100) ≈ 10.
	q1 := float64(w.Channels[0].Subscribers)
	q100 := float64(w.Channels[99].Subscribers)
	if ratio := q1 / q100; ratio < 7 || ratio > 14 {
		t.Fatalf("q(1)/q(100) = %.1f, want ≈10 for Zipf 0.5", ratio)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Channels: 100, Subscriptions: 5000, Seed: 7})
	b := Generate(Config{Channels: 100, Subscriptions: 5000, Seed: 7})
	for i := range a.Channels {
		if a.Channels[i] != b.Channels[i] {
			t.Fatalf("channel %d differs between identical configs", i)
		}
	}
	c := Generate(Config{Channels: 100, Subscriptions: 5000, Seed: 8})
	same := 0
	for i := range a.Channels {
		if a.Channels[i].UpdateInterval == c.Channels[i].UpdateInterval {
			same++
		}
	}
	if same == len(a.Channels) {
		t.Fatal("different seeds produced identical update intervals")
	}
}

func TestUpdateIntervalSurveyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 50000
	subHour, unchanged := 0, 0
	for i := 0; i < n; i++ {
		u := SampleUpdateInterval(rng)
		if u < time.Hour {
			subHour++
		}
		if u >= 7*24*time.Hour {
			unchanged++
		}
		if u < 10*time.Minute || u > 7*24*time.Hour {
			t.Fatalf("interval %v outside [10m, 1w]", u)
		}
	}
	if frac := float64(subHour) / n; math.Abs(frac-0.10) > 0.01 {
		t.Fatalf("sub-hour fraction = %.3f, want ≈0.10", frac)
	}
	if frac := float64(unchanged) / n; math.Abs(frac-0.50) > 0.01 {
		t.Fatalf("week-capped fraction = %.3f, want ≈0.50", frac)
	}
}

func TestContentSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var total float64
	const n = 20000
	for i := 0; i < n; i++ {
		s := SampleContentSize(rng)
		if s < 512 || s > 64*1024 {
			t.Fatalf("size %d outside clamp", s)
		}
		total += float64(s)
	}
	mean := total / n
	if mean < 3000 || mean > 9000 {
		t.Fatalf("mean size %.0f outside feed-like range", mean)
	}
}

func TestMeanSize(t *testing.T) {
	w := &Workload{Channels: []ChannelSpec{{SizeBytes: 1000}, {SizeBytes: 3000}}}
	if got := w.MeanSize(); got != 2000 {
		t.Fatalf("MeanSize = %v", got)
	}
	empty := &Workload{}
	if got := empty.MeanSize(); got != 0 {
		t.Fatalf("MeanSize of empty = %v", got)
	}
}

func TestSubscriptionTrace(t *testing.T) {
	w := Generate(Config{Channels: 50, Subscriptions: 2000, Seed: 5})
	trace := w.SubscriptionTrace(time.Hour, 9)
	if len(trace) != 2000 {
		t.Fatalf("trace has %d events, want 2000", len(trace))
	}
	perChannel := make(map[int]int)
	clients := make(map[string]bool)
	var prev time.Duration = -1
	for _, s := range trace {
		perChannel[s.ChannelIndex]++
		if clients[s.Client] {
			t.Fatalf("client %q subscribed twice", s.Client)
		}
		clients[s.Client] = true
		if s.Offset < prev {
			t.Fatal("offsets not monotone")
		}
		prev = s.Offset
		if s.Offset < 0 || s.Offset >= time.Hour {
			t.Fatalf("offset %v outside ramp-up window", s.Offset)
		}
	}
	for i, ch := range w.Channels {
		if perChannel[i] != ch.Subscribers {
			t.Fatalf("channel %d got %d trace events, want %d", i, perChannel[i], ch.Subscribers)
		}
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with zero channels did not panic")
		}
	}()
	Generate(Config{Channels: 0})
}

func TestURLsDistinct(t *testing.T) {
	w := Generate(Config{Channels: 500, Subscriptions: 1000, Seed: 6})
	seen := map[string]bool{}
	for _, c := range w.Channels {
		if seen[c.URL] {
			t.Fatalf("duplicate URL %q", c.URL)
		}
		seen[c.URL] = true
	}
}

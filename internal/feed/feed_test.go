package feed

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2006, 5, 1, 12, 0, 0, 0, time.UTC)

func TestRSSEncodeParseRoundTrip(t *testing.T) {
	r := &RSS{
		Version: "2.0",
		Channel: RSSChannel{
			Title:       "Test Feed",
			Link:        "http://example.com/feed.xml",
			Description: "d",
			TTL:         30,
			Cloud:       &RSSCloud{Domain: "cloud.example.com", Port: 80, Path: "/rpc", RegisterProcedure: "notify", Protocol: "xml-rpc"},
			SkipHours:   &SkipList{Hours: []int{0, 1, 2}},
			SkipDays:    &SkipList{Days: []string{"Saturday", "Sunday"}},
			Items: []RSSItem{
				{Title: "story", Link: "http://example.com/1", GUID: "g1", Description: "body"},
			},
		},
	}
	r.SetBuildTime(t0)
	doc, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRSS(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Channel.Title != "Test Feed" || len(back.Channel.Items) != 1 {
		t.Fatalf("round trip lost data: %+v", back.Channel)
	}
	if back.Channel.Cloud == nil || back.Channel.Cloud.Port != 80 {
		t.Fatalf("cloud tag lost: %+v", back.Channel.Cloud)
	}
	if back.Channel.SkipHours == nil || len(back.Channel.SkipHours.Hours) != 3 {
		t.Fatalf("skipHours lost: %+v", back.Channel.SkipHours)
	}
	if back.Channel.Items[0].GUID != "g1" {
		t.Fatalf("item GUID lost")
	}
}

func TestParseRSSRejectsGarbage(t *testing.T) {
	if _, err := ParseRSS([]byte("not xml at all <<<")); err == nil {
		t.Fatal("garbage parsed as RSS")
	}
}

func TestAtomEncodeParseRoundTrip(t *testing.T) {
	a := &Atom{
		Title:   "Atom Feed",
		ID:      "urn:feed:1",
		Updated: t0.Format(time.RFC3339),
		Entries: []AtomEntry{{Title: "e1", ID: "urn:e:1", Updated: t0.Format(time.RFC3339)}},
	}
	doc, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseAtom(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Title != "Atom Feed" || len(back.Entries) != 1 {
		t.Fatalf("atom round trip lost data: %+v", back)
	}
}

func TestDetectKind(t *testing.T) {
	cases := []struct {
		doc  string
		want Kind
	}{
		{`<?xml version="1.0"?><rss version="2.0"><channel/></rss>`, KindRSS},
		{`<?xml version="1.0"?><feed xmlns="http://www.w3.org/2005/Atom"/>`, KindAtom},
		{`<!DOCTYPE html><html><body/></html>`, KindHTML},
		{`plain text`, KindUnknown},
		{``, KindUnknown},
	}
	for _, c := range cases {
		if got := DetectKind([]byte(c.doc)); got != c.want {
			t.Errorf("DetectKind(%.30q) = %v, want %v", c.doc, got, c.want)
		}
	}
}

func TestGeneratorBootstrapAndUpdate(t *testing.T) {
	g := NewGenerator("http://example.com/feed.xml", 1)
	r := g.Bootstrap(t0)
	if len(r.Channel.Items) != g.TargetItems {
		t.Fatalf("bootstrap has %d items, want %d", len(r.Channel.Items), g.TargetItems)
	}
	before := r.GUIDs()
	r2 := g.Update(t0.Add(time.Hour))
	if len(r2.Channel.Items) != g.TargetItems {
		t.Fatalf("update grew feed to %d items", len(r2.Channel.Items))
	}
	fresh := NewItems(r, r2)
	if len(fresh) != g.ItemsPerUpdate {
		t.Fatalf("update published %d fresh items, want %d", len(fresh), g.ItemsPerUpdate)
	}
	after := r2.GUIDs()
	if after[0] == before[0] {
		t.Fatal("newest item unchanged after update")
	}
}

func TestGeneratorGUIDsUnique(t *testing.T) {
	g := NewGenerator("http://example.com/f", 2)
	g.Bootstrap(t0)
	seen := map[string]bool{}
	now := t0
	for i := 0; i < 50; i++ {
		now = now.Add(10 * time.Minute)
		r := g.Update(now)
		for _, guid := range r.GUIDs() {
			_ = guid
		}
		for _, it := range r.Channel.Items {
			if it.GUID == "" {
				t.Fatal("empty GUID")
			}
		}
		newest := r.Channel.Items[0].GUID
		if seen[newest] {
			t.Fatalf("GUID %q reused", newest)
		}
		seen[newest] = true
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator("http://example.com/f", 7)
	g2 := NewGenerator("http://example.com/f", 7)
	d1, _ := g1.Snapshot(t0)
	d2, _ := g2.Snapshot(t0)
	if string(d1) != string(d2) {
		t.Fatal("same seed produced different feeds")
	}
	g3 := NewGenerator("http://example.com/f", 8)
	d3, _ := g3.Snapshot(t0)
	if string(d1) == string(d3) {
		t.Fatal("different seeds produced identical feeds")
	}
}

func TestGeneratorTimestampChurn(t *testing.T) {
	g := NewGenerator("http://example.com/f", 3)
	g.Bootstrap(t0)
	a, _ := g.Snapshot(t0.Add(time.Minute))
	b, _ := g.Snapshot(t0.Add(2 * time.Minute))
	if string(a) == string(b) {
		t.Fatal("expected lastBuildDate churn between snapshots")
	}
	// But the item content must be identical.
	ra, _ := ParseRSS(a)
	rb, _ := ParseRSS(b)
	if strings.Join(ra.GUIDs(), ",") != strings.Join(rb.GUIDs(), ",") {
		t.Fatal("snapshot without update changed items")
	}
}

func TestGeneratorUpdateChangesSmallFraction(t *testing.T) {
	// The survey's headline statistic: a typical update touches a few
	// percent of the content. With a 15-item window and 2 fresh items,
	// the byte overlap must be large.
	g := NewGenerator("http://example.com/f", 4)
	g.TargetItems = 30
	g.Bootstrap(t0)
	a, _ := g.Snapshot(t0)
	g.Update(t0.Add(time.Hour))
	b, _ := g.Snapshot(t0.Add(time.Hour))
	aLines := strings.Split(string(a), "\n")
	bLines := make(map[string]bool)
	for _, l := range strings.Split(string(b), "\n") {
		bLines[l] = true
	}
	shared := 0
	for _, l := range aLines {
		if bLines[l] {
			shared++
		}
	}
	if frac := float64(shared) / float64(len(aLines)); frac < 0.80 {
		t.Fatalf("only %.0f%% of lines shared across one update; want ≥80%%", frac*100)
	}
}

func TestNewItemsEmptyWhenUnchanged(t *testing.T) {
	g := NewGenerator("http://example.com/f", 5)
	r := g.Bootstrap(t0)
	if got := NewItems(r, r); len(got) != 0 {
		t.Fatalf("NewItems(self, self) = %d items", len(got))
	}
}

package feed

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Generator produces and evolves one synthetic micronews feed. Each call
// to Update publishes fresh items and retires old ones, keeping the
// document size near the configured target so that, as in the Cornell
// survey, a typical update changes a small fraction of the content
// (≈17 lines, ≈6.8% of bytes, [19]).
type Generator struct {
	// URL names the channel.
	URL string
	// Title is the channel's headline.
	Title string
	// TargetItems is the number of items retained in the window.
	TargetItems int
	// ItemsPerUpdate is how many fresh items each update publishes.
	ItemsPerUpdate int
	// IncludeTimestampChurn, when set, refreshes lastBuildDate on every
	// snapshot (even unchanged ones), the superficial churn the
	// difference engine must ignore.
	IncludeTimestampChurn bool

	rng     *rand.Rand
	nextID  int
	current *RSS
}

// NewGenerator creates a feed generator with deterministic content
// derived from seed.
func NewGenerator(url string, seed int64) *Generator {
	g := &Generator{
		URL:                   url,
		Title:                 "Feed " + shortName(url),
		TargetItems:           15,
		ItemsPerUpdate:        2,
		IncludeTimestampChurn: true,
		rng:                   rand.New(rand.NewSource(seed)),
	}
	return g
}

var headlineNouns = []string{
	"overlay", "protocol", "router", "campus", "kernel", "election",
	"market", "telescope", "senate", "storm", "pipeline", "reactor",
	"festival", "league", "expedition", "archive",
}

var headlineVerbs = []string{
	"announces", "releases", "postpones", "confirms", "disputes",
	"measures", "deploys", "repairs", "adopts", "retires", "expands",
	"audits",
}

var bodyWords = []string{
	"the", "update", "reports", "that", "users", "observed", "steady",
	"progress", "across", "several", "regions", "while", "engineers",
	"continue", "to", "monitor", "performance", "and", "latency",
	"numbers", "published", "this", "week", "show", "improvement",
}

// makeItem fabricates one item with a unique GUID.
func (g *Generator) makeItem(now time.Time) RSSItem {
	g.nextID++
	title := fmt.Sprintf("%s %s %s",
		strings.Title(headlineNouns[g.rng.Intn(len(headlineNouns))]),
		headlineVerbs[g.rng.Intn(len(headlineVerbs))],
		headlineNouns[g.rng.Intn(len(headlineNouns))])
	var body []string
	for n := 8 + g.rng.Intn(16); n > 0; n-- {
		body = append(body, bodyWords[g.rng.Intn(len(bodyWords))])
	}
	return RSSItem{
		Title:       title,
		Link:        fmt.Sprintf("%s/story/%d", g.URL, g.nextID),
		GUID:        fmt.Sprintf("%s#%d", g.URL, g.nextID),
		PubDate:     now.UTC().Format(time.RFC1123),
		Description: strings.Join(body, " "),
	}
}

// Bootstrap fills the feed with its initial window of items.
func (g *Generator) Bootstrap(now time.Time) *RSS {
	r := &RSS{
		Version: "2.0",
		Channel: RSSChannel{
			Title:       g.Title,
			Link:        g.URL,
			Description: "synthetic micronews feed for the Corona evaluation",
			TTL:         30,
			Generator:   "corona-feedgen",
		},
	}
	for i := 0; i < g.TargetItems; i++ {
		r.Channel.Items = append([]RSSItem{g.makeItem(now)}, r.Channel.Items...)
	}
	r.SetBuildTime(now)
	g.current = r
	return r
}

// Update publishes ItemsPerUpdate fresh items at the head of the feed,
// trims the tail to TargetItems, and returns the new document.
func (g *Generator) Update(now time.Time) *RSS {
	if g.current == nil {
		return g.Bootstrap(now)
	}
	items := g.current.Channel.Items
	for i := 0; i < g.ItemsPerUpdate; i++ {
		items = append([]RSSItem{g.makeItem(now)}, items...)
	}
	if len(items) > g.TargetItems {
		items = items[:g.TargetItems]
	}
	next := *g.current
	next.Channel.Items = items
	next.SetBuildTime(now)
	g.current = &next
	return &next
}

// Snapshot returns the current document rendered as XML. When
// IncludeTimestampChurn is set, lastBuildDate reflects the snapshot time,
// so two snapshots of unchanged content still differ superficially.
func (g *Generator) Snapshot(now time.Time) ([]byte, error) {
	if g.current == nil {
		g.Bootstrap(now)
	}
	doc := *g.current
	if g.IncludeTimestampChurn {
		doc.SetBuildTime(now)
	}
	return doc.Encode()
}

// Current returns the current parsed document.
func (g *Generator) Current() *RSS { return g.current }

func shortName(url string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// Package feed implements the micronews substrate: RSS 2.0 and Atom
// document generation and parsing, plus a synthetic feed generator whose
// update behavior follows the Cornell RSS survey the paper's experiments
// are parameterized by (paper §2, §5, [19]).
package feed

import (
	"encoding/xml"
	"fmt"
	"strings"
	"time"
)

// RSS is an RSS 2.0 document ([26]).
type RSS struct {
	XMLName xml.Name   `xml:"rss"`
	Version string     `xml:"version,attr"`
	Channel RSSChannel `xml:"channel"`
}

// RSSChannel is the single channel of an RSS 2.0 document, including the
// publish-subscribe hint tags the standards define (cloud, ttl, skipHours,
// skipDays) that the paper notes are discretionary and rarely honored
// (§2).
type RSSChannel struct {
	Title         string    `xml:"title"`
	Link          string    `xml:"link"`
	Description   string    `xml:"description"`
	Language      string    `xml:"language,omitempty"`
	LastBuildDate string    `xml:"lastBuildDate,omitempty"`
	TTL           int       `xml:"ttl,omitempty"`
	Cloud         *RSSCloud `xml:"cloud,omitempty"`
	SkipHours     *SkipList `xml:"skipHours,omitempty"`
	SkipDays      *SkipList `xml:"skipDays,omitempty"`
	Generator     string    `xml:"generator,omitempty"`
	Items         []RSSItem `xml:"item"`
}

// RSSCloud is the rssCloud element for asynchronous update registration.
type RSSCloud struct {
	Domain            string `xml:"domain,attr"`
	Port              int    `xml:"port,attr"`
	Path              string `xml:"path,attr"`
	RegisterProcedure string `xml:"registerProcedure,attr"`
	Protocol          string `xml:"protocol,attr"`
}

// SkipList holds skipHours/skipDays entries. Note: no omitempty on the
// element lists — hour 0 (midnight) is a legitimate entry.
type SkipList struct {
	Hours []int    `xml:"hour"`
	Days  []string `xml:"day"`
}

// RSSItem is one micronews entry.
type RSSItem struct {
	Title       string `xml:"title"`
	Link        string `xml:"link,omitempty"`
	GUID        string `xml:"guid,omitempty"`
	PubDate     string `xml:"pubDate,omitempty"`
	Description string `xml:"description,omitempty"`
}

// ParseRSS decodes an RSS 2.0 document.
func ParseRSS(doc []byte) (*RSS, error) {
	var r RSS
	if err := xml.Unmarshal(doc, &r); err != nil {
		return nil, fmt.Errorf("feed: parsing RSS: %w", err)
	}
	return &r, nil
}

// Encode renders the document as indented XML with the standard header.
func (r *RSS) Encode() ([]byte, error) {
	body, err := xml.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("feed: encoding RSS: %w", err)
	}
	return append([]byte(xml.Header), append(body, '\n')...), nil
}

// SetBuildTime stamps lastBuildDate in RFC1123 form, the churn the
// difference engine must see through.
func (r *RSS) SetBuildTime(t time.Time) {
	r.Channel.LastBuildDate = t.UTC().Format(time.RFC1123)
}

// GUIDs returns the item GUIDs in order, the identity key for update
// comparison.
func (r *RSS) GUIDs() []string {
	out := make([]string, len(r.Channel.Items))
	for i, it := range r.Channel.Items {
		out[i] = it.GUID
	}
	return out
}

// NewItems returns the items of new whose GUIDs do not appear in old —
// the germane content of an update.
func NewItems(old, new *RSS) []RSSItem {
	seen := make(map[string]bool, len(old.Channel.Items))
	for _, it := range old.Channel.Items {
		seen[it.GUID] = true
	}
	var fresh []RSSItem
	for _, it := range new.Channel.Items {
		if !seen[it.GUID] {
			fresh = append(fresh, it)
		}
	}
	return fresh
}

// Atom is a minimal Atom 1.0 document ([1]).
type Atom struct {
	XMLName xml.Name    `xml:"feed"`
	NS      string      `xml:"xmlns,attr"`
	Title   string      `xml:"title"`
	ID      string      `xml:"id"`
	Updated string      `xml:"updated"`
	Entries []AtomEntry `xml:"entry"`
}

// AtomEntry is one Atom entry.
type AtomEntry struct {
	Title   string `xml:"title"`
	ID      string `xml:"id"`
	Updated string `xml:"updated"`
	Summary string `xml:"summary,omitempty"`
}

// ParseAtom decodes an Atom document.
func ParseAtom(doc []byte) (*Atom, error) {
	var a Atom
	if err := xml.Unmarshal(doc, &a); err != nil {
		return nil, fmt.Errorf("feed: parsing Atom: %w", err)
	}
	return &a, nil
}

// Encode renders the Atom document.
func (a *Atom) Encode() ([]byte, error) {
	if a.NS == "" {
		a.NS = "http://www.w3.org/2005/Atom"
	}
	body, err := xml.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("feed: encoding Atom: %w", err)
	}
	return append([]byte(xml.Header), append(body, '\n')...), nil
}

// DetectKind sniffs whether a document is RSS, Atom, or something else
// (generic web page), so the difference engine can pick a profile.
type Kind int

// Document kinds.
const (
	KindUnknown Kind = iota
	KindRSS
	KindAtom
	KindHTML
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRSS:
		return "rss"
	case KindAtom:
		return "atom"
	case KindHTML:
		return "html"
	default:
		return "unknown"
	}
}

// DetectKind classifies a document by its root element.
func DetectKind(doc []byte) Kind {
	head := strings.ToLower(string(doc[:min(len(doc), 512)]))
	switch {
	case strings.Contains(head, "<rss"):
		return KindRSS
	case strings.Contains(head, "<feed"):
		return KindAtom
	case strings.Contains(head, "<html") || strings.Contains(head, "<!doctype html"):
		return KindHTML
	default:
		return KindUnknown
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Package codec serializes overlay messages for the wire.
//
// A Codec turns a pastry.Message into a self-contained byte body and back.
// Two codecs ship with the repo: a JSON codec (the seed's envelope shape,
// kept for debuggability) and a compact length-delimited binary codec
// that is the default for node-to-node traffic. Transports declare the
// codec per connection with a one-byte hello (the codec's ID byte), so
// nodes preferring different codecs interoperate and new codecs can roll
// out without cluster-wide coordination. Note the hello and the batch
// framing around these bodies are new in this wire protocol: nodes
// running the seed's helloless single-message framing cannot talk to it.
//
// Message payloads are application structs, resolved through a
// process-wide registry mapping message types to payload constructors.
// Hot payload types additionally implement the BinaryMarshaler /
// BinaryUnmarshaler contract and travel in a native binary form; every
// other payload falls back to a JSON blob. Which form a payload region is
// in travels as an envelope flag, so the fallback needs no out-of-band
// agreement.
//
// Decoding is lazy and forwarding is zero-copy: Decode retains the raw
// payload bytes on the message (pastry.Message.SetRawPayload) instead of
// materializing the struct, and Encode re-sends a retained blob verbatim.
// A node forwarding a message — a routed next hop, or a broadcast pushed
// deeper into the dissemination DAG — therefore never unmarshals or
// re-marshals the payload; only a message delivered to a local handler
// pays for a decode (pastry materializes it just before the handler runs).
package codec

import (
	"encoding/json"
	"fmt"
	"sync"

	"corona/internal/pastry"
)

// Codec encodes and decodes one overlay message body. Implementations must
// be safe for concurrent use; the transports share one instance across all
// connections.
type Codec interface {
	// Name identifies the codec in logs and stats.
	Name() string
	// ID is the one-byte wire identifier sent in the connection hello.
	ID() byte
	// Encode renders the message as a self-contained body. A payload blob
	// retained from a previous Decode is re-encoded verbatim.
	Encode(msg pastry.Message) ([]byte, error)
	// Decode parses a body produced by Encode. The payload is not
	// materialized: its raw bytes are retained on the message for
	// zero-copy forwarding, and resolve through the type registry when
	// pastry.Message.MaterializePayload runs.
	Decode(body []byte) (pastry.Message, error)
}

// BinaryMarshaler is implemented by payload structs that have a native
// binary wire form. AppendBinary appends the encoding to dst and returns
// the extended slice; encodings must be deterministic (byte-stable for
// equal values) so forwarded copies and re-encodes are identical.
type BinaryMarshaler interface {
	AppendBinary(dst []byte) ([]byte, error)
}

// BinaryUnmarshaler is the decode side of the native binary payload
// contract. DecodeBinary parses an encoding produced by AppendBinary into
// the receiver; src aliases the receive buffer and must not be retained
// or mutated.
type BinaryUnmarshaler interface {
	DecodeBinary(src []byte) error
}

// Registered codec singletons.
var (
	// JSON is the seed wire format: a JSON envelope with a JSON payload.
	JSON Codec = jsonCodec{}
	// Binary is the compact default format: fixed-width envelope fields
	// with varint lengths, native binary payloads for registered hot
	// types, and a varint Hops/Cover trailer so broadcast fan-out shares
	// one encoded prefix across contacts.
	Binary Codec = binaryCodec{}
	// Default is the codec transports prefer for outbound connections.
	Default = Binary
)

// ByID resolves a hello byte to its codec, or nil when unknown.
func ByID(id byte) Codec {
	switch id {
	case JSON.ID():
		return JSON
	case Binary.ID():
		return Binary
	}
	return nil
}

func init() {
	// Retained raw payloads resolve through this registry when the
	// overlay materializes them for a local handler.
	pastry.SetPayloadDecoder(decodePayload)
}

// payloadEntry is one registered payload type: its constructor, plus
// whether the constructed struct speaks the native binary contract (probed
// once at registration).
type payloadEntry struct {
	factory func() any
	binary  bool
}

// payloadFactories maps message types to their registrations, letting
// decoders produce typed payloads.
var (
	registryMu       sync.RWMutex
	payloadFactories = map[string]payloadEntry{}
)

// RegisterPayload associates a message type with a payload constructor.
// Types without a registration decode their payload as map[string]any.
// When the constructed payload implements BinaryUnmarshaler (and values
// sent under this type implement BinaryMarshaler), the type travels in
// its native binary form; otherwise it falls back to JSON payload bytes.
// Registering the same type twice replaces the factory (packages register
// their types from init-like hooks that may run more than once per
// process).
func RegisterPayload(msgType string, factory func() any) {
	_, binary := factory().(BinaryUnmarshaler)
	registryMu.Lock()
	defer registryMu.Unlock()
	payloadFactories[msgType] = payloadEntry{factory: factory, binary: binary}
}

// lookupPayload returns the registration for msgType, if any.
func lookupPayload(msgType string) (payloadEntry, bool) {
	registryMu.RLock()
	e, ok := payloadFactories[msgType]
	registryMu.RUnlock()
	return e, ok
}

// decodePayload resolves raw payload bytes — native binary or JSON,
// per the binary flag — into the registered typed struct for msgType.
// Unregistered JSON payloads fall back to a generic map; unregistered
// binary payloads (version skew) drop the payload but keep the envelope,
// mirroring the JSON unknown-shape behavior.
func decodePayload(msgType string, raw []byte, binary bool) (any, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	e, registered := lookupPayload(msgType)
	if binary {
		if !registered || !e.binary {
			return nil, nil
		}
		p := e.factory()
		if err := p.(BinaryUnmarshaler).DecodeBinary(raw); err != nil {
			return nil, fmt.Errorf("codec: decoding %s binary payload: %w", msgType, err)
		}
		return p, nil
	}
	if registered {
		p := e.factory()
		if err := json.Unmarshal(raw, p); err != nil {
			return nil, fmt.Errorf("codec: decoding %s payload: %w", msgType, err)
		}
		return p, nil
	}
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		return nil, nil // unknown shape; drop the payload, keep the envelope
	}
	return generic, nil
}

// payloadWire renders a message's payload region: the encoded bytes plus
// which form they are in. A blob retained from a previous Decode is reused
// verbatim; otherwise the typed payload encodes natively when its type is
// registered for binary, and as JSON when not.
func payloadWire(msg pastry.Message) (raw []byte, binary bool, err error) {
	if raw, binary, ok := msg.RawPayload(); ok {
		return raw, binary, nil
	}
	if msg.Payload == nil {
		return nil, false, nil
	}
	if bm, ok := msg.Payload.(BinaryMarshaler); ok {
		if e, registered := lookupPayload(msg.Type); registered && e.binary {
			b, err := bm.AppendBinary(nil)
			if err != nil {
				return nil, false, fmt.Errorf("codec: encoding %s binary payload: %w", msg.Type, err)
			}
			return b, true, nil
		}
	}
	b, err := json.Marshal(msg.Payload)
	if err != nil {
		return nil, false, fmt.Errorf("codec: encoding payload of %s: %w", msg.Type, err)
	}
	return b, false, nil
}

// payloadJSON renders a message's payload region as JSON bytes
// specifically, for the JSON codec: a retained binary blob is materialized
// through the registry and re-marshaled.
func payloadJSON(msg pastry.Message) ([]byte, error) {
	if raw, binary, ok := msg.RawPayload(); ok {
		if !binary {
			return raw, nil
		}
		p, err := decodePayload(msg.Type, raw, true)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, nil
		}
		b, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("codec: encoding payload of %s: %w", msg.Type, err)
		}
		return b, nil
	}
	if msg.Payload == nil {
		return nil, nil
	}
	b, err := json.Marshal(msg.Payload)
	if err != nil {
		return nil, fmt.Errorf("codec: encoding payload of %s: %w", msg.Type, err)
	}
	return b, nil
}

// Measure returns the encoded size of msg under the default codec, for
// transports that account bytes without materializing frames (simnet). A
// message that fails to encode measures zero. Fan-out copies carrying a
// shared-encoding cell amortize the measurement the way real frames do —
// the prefix encodes once — and because only a size is needed, later
// copies cost O(trailer): cached prefix length plus two varint widths,
// no body built at all.
func Measure(msg pastry.Message) int {
	if Default.ID() == Binary.ID() {
		if prefix, ok := msg.CachedEncodePrefix(Binary.ID()); ok {
			return len(prefix) + uvarintLen(uint64(msg.Hops)) + uvarintLen(uint64(msg.Cover))
		}
	}
	body, err := Default.Encode(msg)
	if err != nil {
		return 0
	}
	return len(body)
}

// uvarintLen returns the encoded width of v as an unsigned LEB128 varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Package codec serializes overlay messages for the wire.
//
// A Codec turns a pastry.Message into a self-contained byte body and back.
// Two codecs ship with the repo: a JSON codec (the seed's envelope shape,
// kept for debuggability) and a compact length-delimited binary codec
// that is the default for node-to-node traffic. Transports declare the
// codec per connection with a one-byte hello (the codec's ID byte), so
// nodes preferring different codecs interoperate and new codecs can roll
// out without cluster-wide coordination. Note the hello and the batch
// framing around these bodies are new in this wire protocol: nodes
// running the seed's helloless single-message framing cannot talk to it.
//
// Message payloads are application structs. Both codecs carry the payload
// as a JSON blob and decode it through a process-wide registry mapping
// message types to payload constructors — the registry that used to live
// in netwire. The binary codec's savings come from the envelope: fixed-
// width identifiers and varint counters instead of hex strings and JSON
// field names, which dominate the size of Corona's small control messages.
package codec

import (
	"encoding/json"
	"fmt"
	"sync"

	"corona/internal/pastry"
)

// Codec encodes and decodes one overlay message body. Implementations must
// be safe for concurrent use; the transports share one instance across all
// connections.
type Codec interface {
	// Name identifies the codec in logs and stats.
	Name() string
	// ID is the one-byte wire identifier sent in the connection hello.
	ID() byte
	// Encode renders the message as a self-contained body.
	Encode(msg pastry.Message) ([]byte, error)
	// Decode parses a body produced by Encode, resolving the payload
	// through the type registry.
	Decode(body []byte) (pastry.Message, error)
}

// Registered codec singletons.
var (
	// JSON is the seed wire format: a JSON envelope with a JSON payload.
	JSON Codec = jsonCodec{}
	// Binary is the compact default format: fixed-width envelope fields
	// with varint lengths and a JSON payload blob.
	Binary Codec = binaryCodec{}
	// Default is the codec transports prefer for outbound connections.
	Default = Binary
)

// ByID resolves a hello byte to its codec, or nil when unknown.
func ByID(id byte) Codec {
	switch id {
	case JSON.ID():
		return JSON
	case Binary.ID():
		return Binary
	}
	return nil
}

// payloadFactories maps message types to constructors for their payload
// structs, letting decoders produce typed payloads.
var (
	registryMu       sync.RWMutex
	payloadFactories = map[string]func() any{}
)

// RegisterPayload associates a message type with a payload constructor.
// Types without a registration decode their payload as map[string]any.
// Registering the same type twice replaces the factory (packages register
// their types from init-like hooks that may run more than once per
// process).
func RegisterPayload(msgType string, factory func() any) {
	registryMu.Lock()
	defer registryMu.Unlock()
	payloadFactories[msgType] = factory
}

// decodePayload resolves raw JSON payload bytes into the registered typed
// struct for msgType, falling back to a generic map.
func decodePayload(msgType string, raw []byte) (any, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	registryMu.RLock()
	factory := payloadFactories[msgType]
	registryMu.RUnlock()
	if factory != nil {
		p := factory()
		if err := json.Unmarshal(raw, p); err != nil {
			return nil, fmt.Errorf("codec: decoding %s payload: %w", msgType, err)
		}
		return p, nil
	}
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		return nil, nil // unknown shape; drop the payload, keep the envelope
	}
	return generic, nil
}

// marshalPayload renders a message payload as JSON bytes (nil for a nil
// payload).
func marshalPayload(msg pastry.Message) ([]byte, error) {
	if msg.Payload == nil {
		return nil, nil
	}
	b, err := json.Marshal(msg.Payload)
	if err != nil {
		return nil, fmt.Errorf("codec: encoding payload of %s: %w", msg.Type, err)
	}
	return b, nil
}

// Measure returns the encoded size of msg under the default codec, for
// transports that account bytes without materializing frames (simnet). A
// message that fails to encode measures zero.
func Measure(msg pastry.Message) int {
	body, err := Default.Encode(msg)
	if err != nil {
		return 0
	}
	return len(body)
}

package codec

import (
	"encoding/json"
	"fmt"

	"corona/internal/ids"
	"corona/internal/pastry"
)

// jsonCodec is the seed's envelope shape: one JSON envelope per message
// with the payload embedded as raw JSON. It stays available for
// debugging — frames are greppable on the wire — though the surrounding
// hello/batch framing differs from the seed's, so this is not a
// compatibility bridge to pre-hello nodes.
type jsonCodec struct{}

func (jsonCodec) Name() string { return "json" }

// ID is 'j'. JSON bodies start with '{', so the hello byte is unambiguous.
func (jsonCodec) ID() byte { return 'j' }

// envelope is the wire form of pastry.Message with the payload kept raw
// until the type is known.
type envelope struct {
	Type    string          `json:"type"`
	Key     string          `json:"key,omitempty"`
	From    pastry.Addr     `json:"from"`
	Hops    int             `json:"hops,omitempty"`
	Cover   int             `json:"cover,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

func (jsonCodec) Encode(msg pastry.Message) ([]byte, error) {
	// A retained JSON blob is reused verbatim; a retained binary blob is
	// materialized through the registry and re-marshaled (crossing codecs
	// mid-path is the rare case — both ends of one connection share one).
	rawPayload, err := payloadJSON(msg)
	if err != nil {
		return nil, err
	}
	env := envelope{
		Type:    msg.Type,
		From:    msg.From,
		Hops:    msg.Hops,
		Cover:   msg.Cover,
		Payload: rawPayload,
	}
	if !msg.Key.IsZero() {
		env.Key = msg.Key.String()
	}
	body, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("codec: encoding envelope: %w", err)
	}
	return body, nil
}

func (jsonCodec) Decode(body []byte) (pastry.Message, error) {
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return pastry.Message{}, fmt.Errorf("codec: decoding envelope: %w", err)
	}
	msg := pastry.Message{
		Type:  env.Type,
		From:  env.From,
		Hops:  env.Hops,
		Cover: env.Cover,
	}
	if env.Key != "" {
		key, err := ids.FromHex(env.Key)
		if err != nil {
			return pastry.Message{}, err
		}
		msg.Key = key
	}
	if len(env.Payload) > 0 {
		// Retained raw for zero-copy forwarding; materialized only on
		// local delivery.
		msg.SetRawPayload(env.Payload, false)
	}
	return msg, nil
}

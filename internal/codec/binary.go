package codec

import (
	"encoding/binary"
	"fmt"

	"corona/internal/ids"
	"corona/internal/pastry"
)

// binaryCodec is the compact default format. The envelope layout is:
//
//	flags    byte     bit 0: key present; bit 1: payload present
//	type     uvarint length + bytes
//	key      20 bytes (only when bit 0 set)
//	from.id  20 bytes
//	from.ep  uvarint length + bytes
//	hops     uvarint
//	cover    uvarint
//	payload  uvarint length + JSON bytes (only when bit 1 set)
//
// All varints are unsigned LEB128 (encoding/binary). Identifiers travel as
// raw 20-byte values instead of 40-char hex strings, and no field names
// appear on the wire, which roughly halves Corona's control messages
// relative to the JSON envelope.
type binaryCodec struct{}

func (binaryCodec) Name() string { return "binary" }

// ID is 'b'.
func (binaryCodec) ID() byte { return 'b' }

const (
	flagKey     = 1 << 0
	flagPayload = 1 << 1
)

func (binaryCodec) Encode(msg pastry.Message) ([]byte, error) {
	payload, err := marshalPayload(msg)
	if err != nil {
		return nil, err
	}
	var flags byte
	if !msg.Key.IsZero() {
		flags |= flagKey
	}
	if payload != nil {
		flags |= flagPayload
	}
	// Envelope overhead is bounded by ~2*20 bytes of IDs plus short
	// strings; size the buffer to avoid regrowth on the common path.
	body := make([]byte, 0, 64+len(msg.Type)+len(msg.From.Endpoint)+len(payload))
	body = append(body, flags)
	body = appendBytes(body, []byte(msg.Type))
	if flags&flagKey != 0 {
		body = append(body, msg.Key[:]...)
	}
	body = append(body, msg.From.ID[:]...)
	body = appendBytes(body, []byte(msg.From.Endpoint))
	body = binary.AppendUvarint(body, uint64(msg.Hops))
	body = binary.AppendUvarint(body, uint64(msg.Cover))
	if flags&flagPayload != 0 {
		body = appendBytes(body, payload)
	}
	return body, nil
}

func (binaryCodec) Decode(body []byte) (pastry.Message, error) {
	r := reader{buf: body}
	flags := r.byte()
	msgType := string(r.bytes())
	var msg pastry.Message
	msg.Type = msgType
	if flags&flagKey != 0 {
		copy(msg.Key[:], r.take(ids.Bytes))
	}
	copy(msg.From.ID[:], r.take(ids.Bytes))
	msg.From.Endpoint = string(r.bytes())
	msg.Hops = int(r.uvarint())
	msg.Cover = int(r.uvarint())
	var rawPayload []byte
	if flags&flagPayload != 0 {
		rawPayload = r.bytes()
	}
	if r.err != nil {
		return pastry.Message{}, fmt.Errorf("codec: truncated binary envelope: %w", r.err)
	}
	payload, err := decodePayload(msgType, rawPayload)
	if err != nil {
		return pastry.Message{}, err
	}
	msg.Payload = payload
	return msg, nil
}

// appendBytes writes a uvarint length prefix followed by the bytes.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// reader is a cursor over an envelope body that latches the first error,
// so decode logic reads fields straight through and checks once.
type reader struct {
	buf []byte
	err error
}

var errShort = fmt.Errorf("short buffer")

func (r *reader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) take(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		if r.err == nil {
			r.err = errShort
		}
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = errShort
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.err = errShort
		return nil
	}
	return r.take(int(n))
}

package codec

import (
	"fmt"

	"corona/internal/ids"
	"corona/internal/pastry"
	"corona/internal/wirebin"
)

// binaryCodec is the compact default format. The envelope layout is:
//
//	-- hop-invariant prefix ------------------------------------------
//	flags    byte     bit 0: key present; bit 1: payload present;
//	                  bit 2: payload is native binary (else JSON)
//	type     uvarint length + bytes
//	key      20 bytes (only when bit 0 set)
//	from.id  20 bytes
//	from.ep  uvarint length + bytes
//	payload  uvarint length + bytes (only when bit 1 set)
//	-- per-hop trailer -----------------------------------------------
//	hops     uvarint
//	cover    uvarint
//
// All varints are unsigned LEB128 (encoding/binary). Identifiers travel as
// raw 20-byte values instead of 40-char hex strings, and no field names
// appear on the wire, which roughly halves Corona's control messages
// relative to the JSON envelope.
//
// The field order is deliberate: everything that is identical across the
// copies of a broadcast fanned out to N routing contacts — which is
// everything except Hops and Cover — forms a contiguous prefix. Encode
// caches that prefix in the message's shared-encoding cell (attached by
// pastry's fanOut), so the payload region is encoded once per hop and each
// additional contact costs only the two-varint trailer plus a copy.
type binaryCodec struct{}

func (binaryCodec) Name() string { return "binary" }

// ID is 'B'. PR 1's binary envelope (ID 'b') carried Hops/Cover before
// the payload; moving them to the trailer is incompatible, and reusing
// 'b' would let a skewed peer negotiate successfully and silently
// misparse every envelope. A fresh ID makes mixed-version connections
// fail closed instead: the old node's hello is unknown here and the
// connection is dropped.
func (binaryCodec) ID() byte { return 'B' }

const (
	flagKey           = 1 << 0
	flagPayload       = 1 << 1
	flagBinaryPayload = 1 << 2
)

// maxTrailer bounds the encoded size of the Hops/Cover trailer: two
// varints, each at most 10 bytes.
const maxTrailer = 20

func (c binaryCodec) Encode(msg pastry.Message) ([]byte, error) {
	if prefix, ok := msg.CachedEncodePrefix(c.ID()); ok {
		body := make([]byte, 0, len(prefix)+maxTrailer)
		body = append(body, prefix...)
		return appendTrailer(body, msg), nil
	}
	if msg.SharesEncoding() {
		// First encode of a fanned-out broadcast: render the prefix into
		// its own buffer so the cell can hand it to the other contacts.
		prefix, err := c.appendPrefix(nil, msg)
		if err != nil {
			return nil, err
		}
		msg.StoreEncodePrefix(c.ID(), prefix)
		body := make([]byte, 0, len(prefix)+maxTrailer)
		body = append(body, prefix...)
		return appendTrailer(body, msg), nil
	}
	// Unicast: render straight into the final body — no separate prefix
	// buffer, no second copy.
	body, err := c.appendPrefix(nil, msg)
	if err != nil {
		return nil, err
	}
	return appendTrailer(body, msg), nil
}

// appendTrailer writes the per-hop varint trailer.
func appendTrailer(body []byte, msg pastry.Message) []byte {
	body = wirebin.AppendUvarint(body, uint64(msg.Hops))
	body = wirebin.AppendUvarint(body, uint64(msg.Cover))
	return body
}

// appendPrefix renders the hop-invariant region — flags, type, key,
// origin, and the payload blob — onto dst (allocating when dst is nil).
func (binaryCodec) appendPrefix(dst []byte, msg pastry.Message) ([]byte, error) {
	payload, payloadBinary, err := payloadWire(msg)
	if err != nil {
		return nil, err
	}
	var flags byte
	if !msg.Key.IsZero() {
		flags |= flagKey
	}
	if payload != nil {
		flags |= flagPayload
		if payloadBinary {
			flags |= flagBinaryPayload
		}
	}
	if dst == nil {
		// Envelope overhead is bounded by ~2*20 bytes of IDs plus short
		// strings; size the buffer to fit the trailer too, so the unicast
		// path never regrows.
		dst = make([]byte, 0, 64+maxTrailer+len(msg.Type)+len(msg.From.Endpoint)+len(payload))
	}
	dst = append(dst, flags)
	dst = wirebin.AppendString(dst, msg.Type)
	if flags&flagKey != 0 {
		dst = append(dst, msg.Key[:]...)
	}
	dst = append(dst, msg.From.ID[:]...)
	dst = wirebin.AppendString(dst, msg.From.Endpoint)
	if flags&flagPayload != 0 {
		dst = wirebin.AppendBytes(dst, payload)
	}
	return dst, nil
}

func (binaryCodec) Decode(body []byte) (pastry.Message, error) {
	r := wirebin.NewReader(body)
	flags := r.Byte()
	var msg pastry.Message
	msg.Type = r.String()
	if flags&flagKey != 0 {
		copy(msg.Key[:], r.Take(ids.Bytes))
	}
	copy(msg.From.ID[:], r.Take(ids.Bytes))
	msg.From.Endpoint = r.String()
	var rawPayload []byte
	if flags&flagPayload != 0 {
		rawPayload = r.Bytes()
	}
	msg.Hops = r.Int()
	msg.Cover = r.Int()
	if err := r.Err(); err != nil {
		return pastry.Message{}, fmt.Errorf("codec: truncated binary envelope: %w", err)
	}
	if len(rawPayload) > 0 {
		// Retained, not decoded: forwarding re-sends these bytes verbatim
		// and only a local delivery materializes the struct.
		msg.SetRawPayload(rawPayload, flags&flagBinaryPayload != 0)
	}
	return msg, nil
}

package codec_test

import (
	"testing"

	"corona/internal/codec"
	"corona/internal/ids"
	"corona/internal/pastry"
)

type testPayload struct {
	Text  string `json:"text"`
	Count int    `json:"count"`
}

func init() {
	codec.RegisterPayload("codec.typed", func() any { return &testPayload{} })
}

func sampleMessage() pastry.Message {
	return pastry.Message{
		Type:    "codec.typed",
		Key:     ids.HashString("key"),
		From:    pastry.Addr{ID: ids.HashString("from"), Endpoint: "10.0.0.1:9001"},
		Hops:    3,
		Cover:   2,
		Payload: &testPayload{Text: "hello", Count: 42},
	}
}

func TestRoundTripBothCodecs(t *testing.T) {
	for _, c := range []codec.Codec{codec.JSON, codec.Binary} {
		t.Run(c.Name(), func(t *testing.T) {
			want := sampleMessage()
			body, err := c.Encode(want)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Decode(body)
			if err != nil {
				t.Fatal(err)
			}
			if got.Type != want.Type || got.Key != want.Key || got.From != want.From ||
				got.Hops != want.Hops || got.Cover != want.Cover {
				t.Fatalf("envelope mismatch: got %+v want %+v", got, want)
			}
			p, ok := got.Payload.(*testPayload)
			if !ok {
				t.Fatalf("payload type = %T", got.Payload)
			}
			if *p != *want.Payload.(*testPayload) {
				t.Fatalf("payload = %+v", p)
			}
		})
	}
}

func TestRoundTripZeroKeyNilPayload(t *testing.T) {
	for _, c := range []codec.Codec{codec.JSON, codec.Binary} {
		t.Run(c.Name(), func(t *testing.T) {
			want := pastry.Message{Type: "codec.bare", From: pastry.Addr{ID: ids.HashString("n"), Endpoint: "e"}}
			body, err := c.Encode(want)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Decode(body)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Key.IsZero() {
				t.Fatalf("key should stay zero, got %v", got.Key)
			}
			if got.Payload != nil {
				t.Fatalf("payload should stay nil, got %#v", got.Payload)
			}
		})
	}
}

func TestUnregisteredPayloadDecodesGeneric(t *testing.T) {
	for _, c := range []codec.Codec{codec.JSON, codec.Binary} {
		t.Run(c.Name(), func(t *testing.T) {
			body, err := c.Encode(pastry.Message{
				Type:    "codec.unregistered",
				Payload: map[string]any{"k": "v"},
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Decode(body)
			if err != nil {
				t.Fatal(err)
			}
			m, ok := got.Payload.(map[string]any)
			if !ok || m["k"] != "v" {
				t.Fatalf("generic payload = %#v", got.Payload)
			}
		})
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	msg := sampleMessage()
	jb, err := codec.JSON.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := codec.Binary.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb) >= len(jb) {
		t.Fatalf("binary (%d bytes) not smaller than JSON (%d bytes)", len(bb), len(jb))
	}
}

func TestBinaryDecodeTruncated(t *testing.T) {
	body, err := codec.Binary.Encode(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := codec.Binary.Decode(body[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(body))
		}
	}
}

func TestByID(t *testing.T) {
	if codec.ByID(codec.JSON.ID()) != codec.JSON {
		t.Fatal("ByID(json)")
	}
	if codec.ByID(codec.Binary.ID()) != codec.Binary {
		t.Fatal("ByID(binary)")
	}
	if codec.ByID(0xff) != nil {
		t.Fatal("unknown ID should resolve to nil")
	}
}

func TestMeasureMatchesEncode(t *testing.T) {
	msg := sampleMessage()
	body, err := codec.Default.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got := codec.Measure(msg); got != len(body) {
		t.Fatalf("Measure = %d, want %d", got, len(body))
	}
}

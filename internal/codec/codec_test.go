package codec_test

import (
	"testing"

	"corona/internal/codec"
	"corona/internal/ids"
	"corona/internal/pastry"
)

type testPayload struct {
	Text  string `json:"text"`
	Count int    `json:"count"`
}

func init() {
	codec.RegisterPayload("codec.typed", func() any { return &testPayload{} })
}

func sampleMessage() pastry.Message {
	return pastry.Message{
		Type:    "codec.typed",
		Key:     ids.HashString("key"),
		From:    pastry.Addr{ID: ids.HashString("from"), Endpoint: "10.0.0.1:9001"},
		Hops:    3,
		Cover:   2,
		Payload: &testPayload{Text: "hello", Count: 42},
	}
}

func TestRoundTripBothCodecs(t *testing.T) {
	for _, c := range []codec.Codec{codec.JSON, codec.Binary} {
		t.Run(c.Name(), func(t *testing.T) {
			want := sampleMessage()
			body, err := c.Encode(want)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Decode(body)
			if err != nil {
				t.Fatal(err)
			}
			if got.Type != want.Type || got.Key != want.Key || got.From != want.From ||
				got.Hops != want.Hops || got.Cover != want.Cover {
				t.Fatalf("envelope mismatch: got %+v want %+v", got, want)
			}
			if got.Payload != nil {
				t.Fatalf("payload should stay lazy until materialized, got %#v", got.Payload)
			}
			if err := got.MaterializePayload(); err != nil {
				t.Fatal(err)
			}
			p, ok := got.Payload.(*testPayload)
			if !ok {
				t.Fatalf("payload type = %T", got.Payload)
			}
			if *p != *want.Payload.(*testPayload) {
				t.Fatalf("payload = %+v", p)
			}
		})
	}
}

func TestRoundTripZeroKeyNilPayload(t *testing.T) {
	for _, c := range []codec.Codec{codec.JSON, codec.Binary} {
		t.Run(c.Name(), func(t *testing.T) {
			want := pastry.Message{Type: "codec.bare", From: pastry.Addr{ID: ids.HashString("n"), Endpoint: "e"}}
			body, err := c.Encode(want)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Decode(body)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Key.IsZero() {
				t.Fatalf("key should stay zero, got %v", got.Key)
			}
			if err := got.MaterializePayload(); err != nil {
				t.Fatal(err)
			}
			if got.Payload != nil {
				t.Fatalf("payload should stay nil, got %#v", got.Payload)
			}
		})
	}
}

// TestRegisteredJSONFallbackRoundTrip pins the fallback rule for
// registered types without the native binary contract: inside the binary
// envelope the payload region travels as JSON bytes, flagged as such,
// and round-trips byte-stably. Every production Corona type now encodes
// natively, so this dedicated test is what keeps the fallback path — the
// road new message types roll out on — exercised.
func TestRegisteredJSONFallbackRoundTrip(t *testing.T) {
	want := sampleMessage() // codec.typed has no AppendBinary/DecodeBinary
	body, err := codec.Binary.Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Binary.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	raw, binary, ok := got.RawPayload()
	if !ok || binary {
		t.Fatalf("registered non-binary type should ride the JSON fallback: ok=%v binary=%v", ok, binary)
	}
	if len(raw) == 0 || raw[0] != '{' {
		t.Fatalf("fallback blob does not look like JSON: %q", raw)
	}
	// Forward re-encode consumes the retained blob verbatim.
	reBody, err := codec.Binary.Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(reBody) != string(body) {
		t.Fatal("fallback forward re-encode not byte-identical")
	}
	if err := got.MaterializePayload(); err != nil {
		t.Fatal(err)
	}
	p, ok := got.Payload.(*testPayload)
	if !ok || *p != *want.Payload.(*testPayload) {
		t.Fatalf("fallback payload = %#v", got.Payload)
	}
}

func TestUnregisteredPayloadDecodesGeneric(t *testing.T) {
	for _, c := range []codec.Codec{codec.JSON, codec.Binary} {
		t.Run(c.Name(), func(t *testing.T) {
			body, err := c.Encode(pastry.Message{
				Type:    "codec.unregistered",
				Payload: map[string]any{"k": "v"},
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Decode(body)
			if err != nil {
				t.Fatal(err)
			}
			if err := got.MaterializePayload(); err != nil {
				t.Fatal(err)
			}
			m, ok := got.Payload.(map[string]any)
			if !ok || m["k"] != "v" {
				t.Fatalf("generic payload = %#v", got.Payload)
			}
		})
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	msg := sampleMessage()
	jb, err := codec.JSON.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := codec.Binary.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb) >= len(jb) {
		t.Fatalf("binary (%d bytes) not smaller than JSON (%d bytes)", len(bb), len(jb))
	}
}

func TestBinaryDecodeTruncated(t *testing.T) {
	body, err := codec.Binary.Encode(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := codec.Binary.Decode(body[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(body))
		}
	}
}

func TestByID(t *testing.T) {
	if codec.ByID(codec.JSON.ID()) != codec.JSON {
		t.Fatal("ByID(json)")
	}
	if codec.ByID(codec.Binary.ID()) != codec.Binary {
		t.Fatal("ByID(binary)")
	}
	if codec.ByID(0xff) != nil {
		t.Fatal("unknown ID should resolve to nil")
	}
}

// TestSharedPrefixFanOut pins the encode-once contract: copies of a
// broadcast sharing an encoding cell must produce exactly the bytes a
// fresh encode produces, with only the Hops/Cover trailer differing
// between contacts.
func TestSharedPrefixFanOut(t *testing.T) {
	base := sampleMessage()
	base.Hops++
	base.ShareEncoding()
	var bodies [][]byte
	for cover := 1; cover <= 4; cover++ {
		out := base
		out.Cover = cover
		body, err := codec.Binary.Encode(out)
		if err != nil {
			t.Fatal(err)
		}
		// The size-only fast path must agree with the materialized body.
		if got := codec.Measure(out); got != len(body) {
			t.Fatalf("Measure = %d, want %d", got, len(body))
		}
		// Identical to an unshared encode of the same message.
		plain := sampleMessage()
		plain.Hops = base.Hops
		plain.Cover = cover
		want, err := codec.Binary.Encode(plain)
		if err != nil {
			t.Fatal(err)
		}
		if string(body) != string(want) {
			t.Fatalf("shared encode diverges at cover=%d", cover)
		}
		bodies = append(bodies, body)
	}
	// All copies share the hop-invariant prefix byte-for-byte.
	prefixLen := len(bodies[0]) - 2 // trailer here: two one-byte varints
	for _, b := range bodies[1:] {
		if string(b[:prefixLen]) != string(bodies[0][:prefixLen]) {
			t.Fatal("hop-invariant prefix differs between contacts")
		}
	}
	// And each decodes back with its own trailer.
	for i, b := range bodies {
		got, err := codec.Binary.Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cover != i+1 || got.Hops != base.Hops {
			t.Fatalf("trailer mangled: hops=%d cover=%d", got.Hops, got.Cover)
		}
	}
}

func TestMeasureMatchesEncode(t *testing.T) {
	msg := sampleMessage()
	body, err := codec.Default.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got := codec.Measure(msg); got != len(body) {
		t.Fatalf("Measure = %d, want %d", got, len(body))
	}
}

package webgateway

import (
	"encoding/hex"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"corona/internal/clientproto"
	"corona/internal/im"
	"corona/internal/metrics"
)

// Backend is the node surface the gateway drives — identical to the
// binary protocol's, because the web edge is a projection of the same
// session model. corona.LiveNode implements it.
type Backend = clientproto.Backend

// Session-table transport names for the two web frontends.
const (
	TransportWS  = "ws"
	TransportSSE = "sse"
)

// Policy is the slow-client policy: what happens when a session's
// outbound queue is full and another notification arrives.
type Policy int

const (
	// PolicyDropOldest evicts the oldest queued notification to make
	// room (the client sees a version gap and can re-subscribe with
	// since to fetch it from the replay buffer). The default.
	PolicyDropOldest Policy = iota
	// PolicyDisconnect closes the session instead; the client reconnects
	// with its cursor and replays the backlog at its own pace.
	PolicyDisconnect
)

// Server tunables.
const (
	defaultQueueLen   = 256
	defaultLeaseEvery = 30 * time.Second
	defaultHeartbeat  = 25 * time.Second
	wsWriteTimeout    = 10 * time.Second
)

// sharedKeyJSON keys this package's slot in a batch's im.Shared cell:
// the marshaled notify JSON, encoded once per batch and reused by every
// web session's deliverer (the binary protocol's frame lives in its own
// slot of the same cell).
var sharedKeyJSON = new(byte)

// Config configures a web gateway server.
type Config struct {
	// Backend is the node; required.
	Backend Backend
	// Sessions is the resume-token session table, shared with the binary
	// protocol server so displacement spans transports. Nil gets a
	// private table.
	Sessions *clientproto.SessionTable
	// ReplayCap is the per-channel replay ring capacity
	// (DefaultReplayCap when zero).
	ReplayCap int
	// QueueLen is the per-session outbound event queue depth (default
	// 256, matching the binary edge).
	QueueLen int
	// SlowPolicy picks what a full queue does to a slow client.
	SlowPolicy Policy
	// LeaseEvery is the session lease-refresh cadence (default 30s,
	// matching the SDK's ping loop); the refresh is what keeps a web
	// subscriber's entry-node lease alive at channel owners.
	LeaseEvery time.Duration
	// HeartbeatEvery is the WS ping / SSE comment cadence (default 25s).
	HeartbeatEvery time.Duration
}

// Server is the web edge: an http.Handler exposing /ws (RFC 6455) and
// /sse (Server-Sent Events), both speaking a JSON projection of the
// client-protocol session model, backed by per-channel replay rings.
type Server struct {
	backend Backend
	table   *clientproto.SessionTable
	replay  *Replay

	queueLen   int
	slowPolicy Policy
	leaseEvery time.Duration
	heartbeat  time.Duration

	mu       sync.Mutex
	sessions map[*webSession]struct{}
	closed   bool
	http     *http.Server
	listener net.Listener

	sessionsWS    atomic.Int64
	sessionsSSE   atomic.Int64
	dropsSlow     atomic.Uint64 // notify events evicted or refused, full queue
	dropsOversize atomic.Uint64 // notify events beyond the message bound
	discSlow      atomic.Uint64 // sessions closed by PolicyDisconnect
	discDisplaced atomic.Uint64 // sessions closed by a displacing login
	notifies      atomic.Uint64 // notify events enqueued across sessions

	// notifyLatency, when set, observes detection-to-web-enqueue latency
	// per delivered notification; the admin plane wires it into the
	// web_enqueue stage of the notification latency histogram.
	notifyLatency atomic.Pointer[func(time.Duration)]
}

// disconnect causes, recorded once per closed session.
type closeCause int

const (
	causeNone      closeCause = iota
	causeGone                 // client went away or server shut down
	causeSlow                 // PolicyDisconnect on a full queue
	causeDisplaced            // a newer login took the handle
)

// New builds a Server. Call Handler to mount it, or Serve to run it on
// a listener.
func New(cfg Config) *Server {
	s := &Server{
		backend:    cfg.Backend,
		table:      cfg.Sessions,
		replay:     NewReplay(cfg.ReplayCap),
		queueLen:   cfg.QueueLen,
		slowPolicy: cfg.SlowPolicy,
		leaseEvery: cfg.LeaseEvery,
		heartbeat:  cfg.HeartbeatEvery,
		sessions:   make(map[*webSession]struct{}),
	}
	if s.table == nil {
		s.table = clientproto.NewSessionTable()
	}
	if s.queueLen <= 0 {
		s.queueLen = defaultQueueLen
	}
	if s.leaseEvery <= 0 {
		s.leaseEvery = defaultLeaseEvery
	}
	if s.heartbeat <= 0 {
		s.heartbeat = defaultHeartbeat
	}
	return s
}

// Handler returns the gateway's mux: /ws and /sse.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ws", s.handleWS)
	mux.HandleFunc("/sse", s.handleSSE)
	return mux
}

// Serve runs the gateway's HTTP server on l until Close.
func (s *Server) Serve(l net.Listener) {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.http = srv
	s.listener = l
	s.mu.Unlock()
	go srv.Serve(l)
}

// Addr returns the serving address, empty before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the HTTP server and every live session. Hijacked WS
// connections are outside the http.Server's reach, so sessions are
// closed explicitly.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	srv := s.http
	live := make([]*webSession, 0, len(s.sessions))
	for ws := range s.sessions {
		live = append(live, ws)
	}
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Close()
	}
	for _, ws := range live {
		ws.close(causeGone)
	}
	return err
}

// Closed reports whether Close has run.
func (s *Server) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Tap returns the im.Gateway update tap feeding the replay rings;
// install it with Gateway.SetTap.
func (s *Server) Tap() im.Tap {
	return func(channel string, version uint64, diff string, at time.Time) {
		s.replay.Append(channel, version, diff, at)
	}
}

// Replay exposes the replay memory (tests and benchmarks).
func (s *Server) Replay() *Replay { return s.replay }

// SetNotifyLatencyObserver installs a callback observing, per delivered
// notification, the elapsed time between the update's detection
// timestamp and the event entering a web session's outbound queue.
func (s *Server) SetNotifyLatencyObserver(obs func(time.Duration)) {
	s.notifyLatency.Store(&obs)
}

func (s *Server) observeEnqueue(at time.Time) {
	p := s.notifyLatency.Load()
	if p == nil || *p == nil || at.IsZero() {
		return
	}
	(*p)(time.Since(at))
}

// Counters is one snapshot of the gateway's delivery accounting.
type Counters struct {
	SessionsWS  int
	SessionsSSE int
	// NotifyDroppedSlow counts notify events shed on full queues
	// (evicted under PolicyDropOldest, or refused when the queue held
	// only control events).
	NotifyDroppedSlow uint64
	// NotifyDroppedOversize counts notify events beyond the 1 MiB
	// message bound, dropped before any queue.
	NotifyDroppedOversize uint64
	// DisconnectsSlow counts sessions closed by PolicyDisconnect.
	DisconnectsSlow uint64
	// DisconnectsDisplaced counts sessions closed by a displacing login.
	DisconnectsDisplaced uint64
	// Notifies counts notify events enqueued across all sessions.
	Notifies uint64
	Replay   ReplayStats
}

// Counters snapshots the gateway's counters.
func (s *Server) Counters() Counters {
	return Counters{
		SessionsWS:            int(s.sessionsWS.Load()),
		SessionsSSE:           int(s.sessionsSSE.Load()),
		NotifyDroppedSlow:     s.dropsSlow.Load(),
		NotifyDroppedOversize: s.dropsOversize.Load(),
		DisconnectsSlow:       s.discSlow.Load(),
		DisconnectsDisplaced:  s.discDisplaced.Load(),
		Notifies:              s.notifies.Load(),
		Replay:                s.replay.Stats(),
	}
}

// RegisterMetrics registers the gateway's instruments on a node metric
// registry (LiveNode.Metrics()): session gauges by transport, replay
// hit/miss/wrap counters, and drop/disconnect counters by cause, all
// refreshed from one Counters snapshot per scrape.
func (s *Server) RegisterMetrics(reg *metrics.Registry) {
	sessions := reg.GaugeVec("corona_web_sessions",
		"Web-gateway sessions currently attached, by transport.", "transport")
	sessWS, sessSSE := sessions.With(TransportWS), sessions.With(TransportSSE)
	hits := reg.Counter("corona_web_replay_hits_total",
		"Resume cursors served completely from the replay ring.")
	misses := reg.Counter("corona_web_replay_misses_total",
		"Resume cursors past the replay window, answered snapshot-required.")
	wraps := reg.Counter("corona_web_replay_wraps_total",
		"Replay ring entries overwritten by wrap-around.")
	drops := reg.CounterVec("corona_web_notify_dropped_total",
		"Web notify events shed before delivery, by cause.", "cause")
	dropSlow, dropOversize := drops.With("slow_client"), drops.With("oversize")
	disc := reg.CounterVec("corona_web_disconnects_total",
		"Web sessions closed by the gateway, by cause.", "cause")
	discSlow, discDisplaced := disc.With("slow_client"), disc.With("displaced")
	notifies := reg.Counter("corona_web_notifies_total",
		"Notify events enqueued to web sessions.")
	reg.OnGather(func() {
		c := s.Counters()
		sessWS.Set(float64(c.SessionsWS))
		sessSSE.Set(float64(c.SessionsSSE))
		hits.Set(c.Replay.Hits)
		misses.Set(c.Replay.Misses)
		wraps.Set(c.Replay.Wraps)
		dropSlow.Set(c.NotifyDroppedSlow)
		dropOversize.Set(c.NotifyDroppedOversize)
		discSlow.Set(c.DisconnectsSlow)
		discDisplaced.Set(c.DisconnectsDisplaced)
		notifies.Set(c.Notifies)
	})
}

// clientMsg is one client-to-server JSON message (WS only; SSE carries
// the same fields in query parameters).
type clientMsg struct {
	Type   string  `json:"type"` // login | subscribe | unsubscribe | ping
	Req    uint64  `json:"req"`
	Handle string  `json:"handle,omitempty"`
	Token  string  `json:"token,omitempty"` // hex resume token
	URL    string  `json:"url,omitempty"`
	Since  *uint64 `json:"since,omitempty"` // resume cursor: replay versions > since
}

// serverMsg is one server-to-client JSON message; Type doubles as the
// SSE event name.
type serverMsg struct {
	Type    string   `json:"type"` // ack | nak | hello | notify | snapshot_required
	Req     uint64   `json:"req,omitempty"`
	Token   string   `json:"token,omitempty"`
	Reason  string   `json:"reason,omitempty"`
	Node    string   `json:"node,omitempty"`
	Peers   []string `json:"peers,omitempty"`
	Channel string   `json:"channel,omitempty"`
	Version uint64   `json:"version,omitempty"`
	Diff    string   `json:"diff,omitempty"`
	At      int64    `json:"at,omitempty"` // detection time, Unix nanoseconds
}

// outEvent is one queued server-to-client event. Only notify events are
// droppable; control events (acks, hello, snapshot-required, WS pings)
// always queue.
type outEvent struct {
	name    string // SSE event name; "notify" marks droppable events
	opcode  byte   // WS frame opcode (opText for JSON; opPing for heartbeats)
	json    []byte
	channel string
	version uint64
}

func (e outEvent) notify() bool { return e.name == "notify" }

func marshalMsg(m serverMsg) []byte {
	b, _ := json.Marshal(m)
	return b
}

func notifyJSON(channel string, version uint64, diff string, at time.Time) []byte {
	var nanos int64
	if !at.IsZero() {
		nanos = at.UnixNano()
	}
	return marshalMsg(serverMsg{Type: "notify", Channel: channel, Version: version, Diff: diff, At: nanos})
}

// webSession is one live WS or SSE session's server-side state. The
// single mutex orders three things that must not interleave: live
// delivery (the gateway deliverer), replay (the subscribe path), and
// the per-channel version watermark that makes their union duplicate-
// free and monotonic. Events enter the queue already filtered, so the
// writer emits them in queue order with no further checks.
type webSession struct {
	s         *Server
	transport string
	handle    string
	conn      net.Conn // WS only; SSE writes through the handler

	mu     sync.Mutex
	queue  []outEvent
	kick   chan struct{} // cap 1: the writer drains the whole queue per kick
	done   chan struct{} // closed once, by close()
	closed bool
	// last is the per-channel delivered-version watermark: an event is
	// enqueued only with a version strictly above it, so replayed and
	// live notifications merge without duplicates. Its key set doubles
	// as the session's channel set for lease refreshes.
	last map[string]uint64
	// gated marks channels mid-subscribe: live deliveries are suppressed
	// (the replay ring holds them — the gateway tap runs before any
	// deliverer) until the subscribe path replays and ungates.
	gated map[string]struct{}
}

func (s *Server) newSession(transport string, conn net.Conn) *webSession {
	ws := &webSession{
		s:         s,
		transport: transport,
		conn:      conn,
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		last:      make(map[string]uint64),
		gated:     make(map[string]struct{}),
	}
	s.mu.Lock()
	closed := s.closed
	if !closed {
		s.sessions[ws] = struct{}{}
	}
	s.mu.Unlock()
	if closed {
		ws.close(causeGone)
		return ws
	}
	if transport == TransportWS {
		s.sessionsWS.Add(1)
	} else {
		s.sessionsSSE.Add(1)
	}
	return ws
}

// close tears the session down once, recording why. Safe from any
// goroutine, including under the session table's lock (it never
// re-enters the table).
func (ws *webSession) close(cause closeCause) {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return
	}
	ws.closed = true
	close(ws.done)
	ws.mu.Unlock()
	switch cause {
	case causeSlow:
		ws.s.discSlow.Add(1)
	case causeDisplaced:
		ws.s.discDisplaced.Add(1)
	}
	if ws.conn != nil {
		ws.conn.Close()
	}
	ws.s.mu.Lock()
	delete(ws.s.sessions, ws)
	ws.s.mu.Unlock()
	if ws.transport == TransportWS {
		ws.s.sessionsWS.Add(-1)
	} else {
		ws.s.sessionsSSE.Add(-1)
	}
}

// enqueueLocked appends one event, applying the slow-client policy to
// notify events when the queue is full; callers hold ws.mu.
func (ws *webSession) enqueueLocked(ev outEvent) {
	if ev.notify() && len(ws.queue) >= ws.s.queueLen {
		if ws.s.slowPolicy == PolicyDisconnect {
			ws.s.dropsSlow.Add(1)
			// Unlock around close: it re-takes ws.mu.
			ws.mu.Unlock()
			ws.close(causeSlow)
			ws.mu.Lock()
			return
		}
		// Drop-oldest: evict the oldest queued notify. With none to
		// evict (a queue full of control events — not a real shape, but
		// possible), shed the new one instead.
		ws.s.dropsSlow.Add(1)
		evicted := false
		for i := range ws.queue {
			if ws.queue[i].notify() {
				copy(ws.queue[i:], ws.queue[i+1:])
				ws.queue = ws.queue[:len(ws.queue)-1]
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
	ws.queue = append(ws.queue, ev)
	select {
	case ws.kick <- struct{}{}:
	default:
	}
}

// control enqueues a control event.
func (ws *webSession) control(ev outEvent) {
	ws.mu.Lock()
	if !ws.closed {
		ws.enqueueLocked(ev)
	}
	ws.mu.Unlock()
}

// deliver is the session's gateway deliverer: it encodes the notify
// JSON once per batch through the Shared cell (synchronously — the cell
// contract) and enqueues it under the watermark/gate filters.
func (ws *webSession) deliver(n im.Notification) {
	var data []byte
	if n.Shared != nil {
		data, _ = n.Shared.Load(sharedKeyJSON).([]byte)
	}
	if data == nil {
		data = notifyJSON(n.Channel, n.Version, n.Diff, n.At)
		if n.Shared != nil {
			n.Shared.Store(sharedKeyJSON, data)
		}
	}
	if len(data) > maxWSMessage {
		ws.s.dropsOversize.Add(1)
		return
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return
	}
	if _, gated := ws.gated[n.Channel]; gated {
		return // mid-subscribe; the replay scan picks it out of the ring
	}
	if n.Version <= ws.last[n.Channel] {
		return // duplicate (replayed already, or a re-observed batch)
	}
	ws.last[n.Channel] = n.Version
	ws.enqueueLocked(outEvent{name: "notify", opcode: opText, json: data, channel: n.Channel, version: n.Version})
	ws.s.notifies.Add(1)
	ws.s.observeEnqueue(n.At)
}

// gate suppresses live delivery for a channel while its subscribe is in
// flight.
func (ws *webSession) gate(url string) {
	ws.mu.Lock()
	ws.gated[url] = struct{}{}
	ws.mu.Unlock()
}

// replayAndUngate finishes a subscribe: with a cursor, it replays the
// buffered gap (or signals snapshot-required) and advances the
// watermark; without one, delivery simply starts live. The scan, the
// watermark update, and the ungate form one critical section with the
// deliverer's filter, which is what makes the replayed and live streams
// merge exactly-once: any live update suppressed by the gate was
// appended to the ring before its deliverer ran (the tap ordering
// guarantee), so the scan below either sees it or a newer one.
func (ws *webSession) replayAndUngate(url string, since *uint64) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	defer delete(ws.gated, url)
	if _, tracked := ws.last[url]; !tracked {
		ws.last[url] = 0
	}
	if ws.closed || since == nil {
		return
	}
	entries, complete := ws.s.replay.From(url, *since)
	if !complete {
		newest := ws.s.replay.Newest(url)
		if newest > ws.last[url] {
			ws.last[url] = newest
		}
		ws.enqueueLocked(outEvent{name: "snapshot_required", opcode: opText,
			json: marshalMsg(serverMsg{Type: "snapshot_required", Channel: url, Version: newest})})
		return
	}
	for _, e := range entries {
		if e.Version <= ws.last[url] {
			continue
		}
		ws.last[url] = e.Version
		data := notifyJSON(url, e.Version, e.Diff, e.At)
		if len(data) > maxWSMessage {
			ws.s.dropsOversize.Add(1)
			continue
		}
		ws.enqueueLocked(outEvent{name: "notify", opcode: opText, json: data, channel: url, version: e.Version})
		ws.s.notifies.Add(1)
	}
}

// drain returns every queued event, or nil; the writer calls it per
// kick.
func (ws *webSession) drain() []outEvent {
	ws.mu.Lock()
	batch := ws.queue
	ws.queue = nil
	ws.mu.Unlock()
	return batch
}

// refreshLeases heartbeats the session's channels at their owners; what
// keeps web subscribers inside the entry-node lease-failover machinery.
// Runs on the ticker goroutine, so the handle (written at login) and the
// channel set are both read under the session lock.
func (ws *webSession) refreshLeases() {
	ws.mu.Lock()
	handle := ws.handle
	urls := make([]string, 0, len(ws.last))
	for url := range ws.last {
		urls = append(urls, url)
	}
	ws.mu.Unlock()
	if handle == "" || len(urls) == 0 {
		return
	}
	ws.s.backend.RefreshLeases(handle, urls)
}

// handleWS serves one WebSocket connection: hijack, then a read loop
// dispatching JSON messages, a writer goroutine draining the event
// queue, and a heartbeat/lease ticker loop.
func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	conn, br, err := upgradeWS(w, r)
	if err != nil {
		return
	}
	ws := s.newSession(TransportWS, conn)
	// Teardown order matters: the writer and ticker goroutines exit on
	// ws.done, so the session must close BEFORE waiting for them.
	var writerWG, tickerWG sync.WaitGroup
	defer func() {
		ws.close(causeGone)
		writerWG.Wait()
		tickerWG.Wait()
	}()

	// Writer: one goroutine owns the socket's write side.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		var buf []byte
		for {
			select {
			case <-ws.kick:
			case <-ws.done:
				return
			}
			for _, ev := range ws.drain() {
				payload := ev.json
				if ev.opcode == opPing {
					payload = nil
				}
				buf = appendWSFrame(buf[:0], ev.opcode, payload)
				conn.SetWriteDeadline(time.Now().Add(wsWriteTimeout))
				if _, err := conn.Write(buf); err != nil {
					ws.close(causeGone)
					return
				}
			}
		}
	}()

	// Heartbeats and lease refreshes.
	tickerWG.Add(1)
	go func() {
		defer tickerWG.Done()
		hb := time.NewTicker(s.heartbeat)
		lease := time.NewTicker(s.leaseEvery)
		defer hb.Stop()
		defer lease.Stop()
		for {
			select {
			case <-ws.done:
				return
			case <-hb.C:
				ws.control(outEvent{opcode: opPing})
			case <-lease.C:
				ws.refreshLeases()
			}
		}
	}()

	var detach func()
	var sess *clientproto.TableSession
	defer func() {
		if detach != nil {
			detach()
		}
		if ws.handle != "" {
			s.table.End(ws.handle, sess)
		}
	}()

	onControl := func(opcode byte, payload []byte) error {
		// Any control traffic (a pong answering our heartbeat, a client
		// ping) proves liveness; extend the deadline so a quiet-but-
		// responsive client is not presumed dead mid-readWSMessage.
		conn.SetReadDeadline(time.Now().Add(3 * s.heartbeat))
		if opcode == opPing {
			ws.control(outEvent{opcode: opPong, json: payload})
		}
		return nil
	}
	for {
		// The heartbeat keeps healthy connections inside the deadline;
		// three missed rounds reads as a dead peer.
		conn.SetReadDeadline(time.Now().Add(3 * s.heartbeat))
		_, data, err := readWSMessage(br, true, onControl)
		if err != nil {
			return // EOF, deadline, close frame, or malformed framing
		}
		var req clientMsg
		if err := json.Unmarshal(data, &req); err != nil {
			ws.control(outEvent{name: "nak", opcode: opText,
				json: marshalMsg(serverMsg{Type: "nak", Reason: "malformed message: " + err.Error()})})
			continue
		}
		nak := func(reason string) {
			ws.control(outEvent{name: "nak", opcode: opText,
				json: marshalMsg(serverMsg{Type: "nak", Req: req.Req, Reason: reason})})
		}
		switch req.Type {
		case "login":
			if ws.handle != "" {
				nak("already logged in as " + ws.handle)
				continue
			}
			if req.Handle == "" {
				nak("empty handle")
				continue
			}
			token, err := hex.DecodeString(req.Token)
			if err != nil {
				nak("malformed token: not hex")
				continue
			}
			tok, ts, det, ok := s.table.Begin(req.Handle, token, TransportWS,
				func() { ws.close(causeDisplaced) },
				func() func() { return s.backend.Attach(req.Handle, ws.deliver) })
			if !ok {
				nak("handle in use (resume token mismatch)")
				continue
			}
			ws.mu.Lock()
			ws.handle = req.Handle // under mu: the lease ticker reads it
			ws.mu.Unlock()
			sess, detach = ts, det
			ws.control(outEvent{name: "ack", opcode: opText,
				json: marshalMsg(serverMsg{Type: "ack", Req: req.Req, Token: hex.EncodeToString(tok)})})
			info := s.backend.Info()
			ws.control(outEvent{name: "hello", opcode: opText,
				json: marshalMsg(serverMsg{Type: "hello", Node: info.Node, Peers: info.Peers})})
		case "subscribe":
			if ws.handle == "" {
				nak("not logged in")
				continue
			}
			if req.URL == "" {
				nak("empty url")
				continue
			}
			ws.gate(req.URL)
			if err := s.backend.Subscribe(ws.handle, req.URL); err != nil {
				ws.mu.Lock()
				delete(ws.gated, req.URL)
				ws.mu.Unlock()
				nak(err.Error())
				continue
			}
			ws.control(outEvent{name: "ack", opcode: opText,
				json: marshalMsg(serverMsg{Type: "ack", Req: req.Req})})
			ws.replayAndUngate(req.URL, req.Since)
		case "unsubscribe":
			if ws.handle == "" {
				nak("not logged in")
				continue
			}
			if err := s.backend.Unsubscribe(ws.handle, req.URL); err != nil {
				nak(err.Error())
				continue
			}
			ws.mu.Lock()
			delete(ws.last, req.URL)
			delete(ws.gated, req.URL)
			ws.mu.Unlock()
			ws.control(outEvent{name: "ack", opcode: opText,
				json: marshalMsg(serverMsg{Type: "ack", Req: req.Req})})
		case "ping":
			ws.control(outEvent{name: "ack", opcode: opText,
				json: marshalMsg(serverMsg{Type: "ack", Req: req.Req})})
		default:
			nak("unknown message type " + req.Type)
		}
	}
}

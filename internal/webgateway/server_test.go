package webgateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"corona/internal/clientproto"
	"corona/internal/im"
	"corona/internal/metrics"
)

// fakeBackend implements Backend in-memory and exposes the attached
// deliverers so tests can push notifications through the real delivery
// path (tap first, then deliverer — the order the gateway guarantees).
type fakeBackend struct {
	mu        sync.Mutex
	deliverer map[string]func(im.Notification)
	subs      map[string]map[string]bool
	refreshes map[string]int
	subErr    error
	// subscribeGate, when non-nil, is received from inside Subscribe —
	// tests use it to hold a subscribe in flight deterministically.
	subscribeGate chan struct{}
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		deliverer: make(map[string]func(im.Notification)),
		subs:      make(map[string]map[string]bool),
		refreshes: make(map[string]int),
	}
}

func (b *fakeBackend) Subscribe(client, url string) error {
	b.mu.Lock()
	gate, err := b.subscribeGate, b.subErr
	b.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.subs[client] == nil {
		b.subs[client] = make(map[string]bool)
	}
	b.subs[client][url] = true
	return nil
}

func (b *fakeBackend) Unsubscribe(client, url string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs[client], url)
	return nil
}

func (b *fakeBackend) RefreshLeases(client string, urls []string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refreshes[client] += len(urls)
	return nil
}

func (b *fakeBackend) Attach(client string, deliver func(im.Notification)) func() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deliverer[client] = deliver
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.deliverer, client)
	}
}

func (b *fakeBackend) Info() clientproto.ServerInfo {
	return clientproto.ServerInfo{Node: "overlay:1", Peers: []string{"overlay:2"}}
}

// notify pushes one update through the tap-then-deliver path, exactly
// as im.Gateway orders it, sharing one cell across all deliverers.
func (b *fakeBackend) notify(s *Server, channel string, version uint64, diff string) {
	at := time.Now()
	s.Tap()(channel, version, diff, at)
	b.mu.Lock()
	deliverers := make([]func(im.Notification), 0, len(b.deliverer))
	for _, d := range b.deliverer {
		deliverers = append(deliverers, d)
	}
	b.mu.Unlock()
	shared := &im.Shared{}
	for _, d := range deliverers {
		d(im.Notification{Channel: channel, Version: version, Diff: diff, At: at, Shared: shared})
	}
}

// startServer runs a gateway on a loopback listener.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l.Addr().String()
}

// wsExpect reads messages until one of type want arrives, failing on
// anything unexpected in between except notifies (returned via onNotify
// when set).
func wsExpect(t *testing.T, c *WSClient, want string) serverMsg {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		data, err := c.ReadMessage()
		if err != nil {
			t.Fatalf("waiting for %q: %v", want, err)
		}
		var m serverMsg
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("bad JSON %q: %v", data, err)
		}
		if m.Type == want {
			return m
		}
		if m.Type == "nak" {
			t.Fatalf("nak while waiting for %q: %s", want, m.Reason)
		}
	}
}

func wsLogin(t *testing.T, c *WSClient, handle, token string) string {
	t.Helper()
	if err := c.WriteJSON(clientMsg{Type: "login", Req: 1, Handle: handle, Token: token}); err != nil {
		t.Fatal(err)
	}
	ack := wsExpect(t, c, "ack")
	if ack.Token == "" {
		t.Fatal("login ack carried no resume token")
	}
	wsExpect(t, c, "hello")
	return ack.Token
}

func TestWSLoginSubscribeNotify(t *testing.T) {
	b := newFakeBackend()
	s, addr := startServer(t, Config{Backend: b})
	c, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wsLogin(t, c, "alice", "")

	if err := c.WriteJSON(clientMsg{Type: "subscribe", Req: 2, URL: "http://feed/1"}); err != nil {
		t.Fatal(err)
	}
	wsExpect(t, c, "ack")
	b.notify(s, "http://feed/1", 7, "diff-7")
	n := wsExpect(t, c, "notify")
	if n.Channel != "http://feed/1" || n.Version != 7 || n.Diff != "diff-7" || n.At == 0 {
		t.Fatalf("notify = %+v", n)
	}
	// Duplicate delivery (re-observed batch) is filtered.
	b.notify(s, "http://feed/1", 7, "diff-7")
	b.notify(s, "http://feed/1", 8, "diff-8")
	if n = wsExpect(t, c, "notify"); n.Version != 8 {
		t.Fatalf("after duplicate: version %d, want 8", n.Version)
	}
	if got := s.Counters(); got.SessionsWS != 1 || got.Notifies != 2 {
		t.Fatalf("counters = %+v", got)
	}
}

func TestWSResumeReplaysGap(t *testing.T) {
	b := newFakeBackend()
	s, addr := startServer(t, Config{Backend: b})
	c, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	token := wsLogin(t, c, "alice", "")
	c.WriteJSON(clientMsg{Type: "subscribe", Req: 2, URL: "u"})
	wsExpect(t, c, "ack")
	b.notify(s, "u", 1, "d1")
	if n := wsExpect(t, c, "notify"); n.Version != 1 {
		t.Fatalf("version %d, want 1", n.Version)
	}

	// Hard disconnect; miss versions 2..4.
	c.Kill()
	for v := uint64(2); v <= 4; v++ {
		b.notify(s, "u", v, fmt.Sprintf("d%d", v))
	}

	c2, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	wsLogin(t, c2, "alice", token)
	since := uint64(1)
	c2.WriteJSON(clientMsg{Type: "subscribe", Req: 2, URL: "u", Since: &since})
	wsExpect(t, c2, "ack")
	b.notify(s, "u", 5, "d5") // live update racing the replay
	var got []uint64
	for len(got) < 4 {
		n := wsExpect(t, c2, "notify")
		got = append(got, n.Version)
	}
	if fmt.Sprint(got) != "[2 3 4 5]" {
		t.Fatalf("replayed versions %v, want [2 3 4 5]", got)
	}
	if r := s.Counters().Replay; r.Hits == 0 {
		t.Fatalf("replay stats %+v, want a hit", r)
	}
}

func TestWSResumePastWindowSignalsSnapshot(t *testing.T) {
	b := newFakeBackend()
	s, addr := startServer(t, Config{Backend: b, ReplayCap: 4})
	for v := uint64(1); v <= 10; v++ {
		s.Tap()("u", v, "d", time.Now())
	}
	c, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wsLogin(t, c, "alice", "")
	since := uint64(2) // versions 3..6 wrapped away
	c.WriteJSON(clientMsg{Type: "subscribe", Req: 2, URL: "u", Since: &since})
	wsExpect(t, c, "ack")
	sr := wsExpect(t, c, "snapshot_required")
	if sr.Channel != "u" || sr.Version != 10 {
		t.Fatalf("snapshot_required = %+v, want channel u version 10", sr)
	}
	// The watermark advanced to newest: stale re-deliveries are dropped,
	// newer ones flow.
	b.notify(s, "u", 10, "d")
	b.notify(s, "u", 11, "d11")
	if n := wsExpect(t, c, "notify"); n.Version != 11 {
		t.Fatalf("post-snapshot notify version %d, want 11", n.Version)
	}
	if m := s.Counters().Replay.Misses; m != 1 {
		t.Fatalf("replay misses = %d, want 1", m)
	}
}

// TestWSExactlyOnceAcrossGate holds a subscribe in flight while live
// updates arrive, then releases it: the session must see every version
// exactly once, in order — the gate sends them through the replay ring
// instead of dropping or duplicating them.
func TestWSExactlyOnceAcrossGate(t *testing.T) {
	b := newFakeBackend()
	s, addr := startServer(t, Config{Backend: b})
	c, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wsLogin(t, c, "alice", "")

	gate := make(chan struct{})
	b.mu.Lock()
	b.subscribeGate = gate
	b.mu.Unlock()
	since := uint64(0)
	c.WriteJSON(clientMsg{Type: "subscribe", Req: 2, URL: "u", Since: &since})
	// The subscribe is now blocked inside the backend. Updates arriving
	// meanwhile reach the tap (and, because the deliverer attached at
	// login, the gate filter).
	time.Sleep(20 * time.Millisecond)
	for v := uint64(1); v <= 3; v++ {
		b.notify(s, "u", v, "d")
	}
	b.mu.Lock()
	b.subscribeGate = nil
	b.mu.Unlock()
	close(gate)
	wsExpect(t, c, "ack")
	b.notify(s, "u", 4, "d")
	var got []uint64
	for len(got) < 4 {
		got = append(got, wsExpect(t, c, "notify").Version)
	}
	if fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("versions %v, want [1 2 3 4] exactly once each", got)
	}
}

func TestWSDisplacementAcrossConnections(t *testing.T) {
	b := newFakeBackend()
	s, addr := startServer(t, Config{Backend: b})
	c1, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	token := wsLogin(t, c1, "alice", "")

	// Wrong token: refused.
	c2, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	c2.WriteJSON(clientMsg{Type: "login", Req: 1, Handle: "alice", Token: "00ff"})
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	data, err := c2.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	var m serverMsg
	json.Unmarshal(data, &m)
	if m.Type != "nak" {
		t.Fatalf("wrong-token login got %q, want nak", m.Type)
	}
	c2.Close()

	// Right token: displaces c1.
	c3, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	wsLogin(t, c3, "alice", token)
	c1.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := c1.ReadMessage(); err != nil {
			break // displaced connection torn down
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Counters().DisconnectsDisplaced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("displacement never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The refused connection's handler tears down asynchronously; only
	// the survivor should remain once it does.
	for s.Counters().SessionsWS != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("ws sessions = %d, want 1 (survivor only)", s.Counters().SessionsWS)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSlowClientDropOldest(t *testing.T) {
	b := newFakeBackend()
	s := New(Config{Backend: b, QueueLen: 4, SlowPolicy: PolicyDropOldest})
	ws := s.newSession(TransportWS, nil)
	ws.handle = "h"
	ws.mu.Lock()
	ws.last["u"] = 0
	ws.mu.Unlock()
	// No writer drains the queue: fill it past capacity.
	for v := uint64(1); v <= 10; v++ {
		ws.deliver(im.Notification{Channel: "u", Version: v, Diff: "d", At: time.Now()})
	}
	ws.mu.Lock()
	queued := entryVersionsOut(ws.queue)
	ws.mu.Unlock()
	if fmt.Sprint(queued) != "[7 8 9 10]" {
		t.Fatalf("queue = %v, want the newest 4", queued)
	}
	c := s.Counters()
	if c.NotifyDroppedSlow != 6 || c.DisconnectsSlow != 0 {
		t.Fatalf("counters = %+v, want 6 slow drops, no disconnects", c)
	}
	// Control events still get through a full queue.
	ws.control(outEvent{name: "ack", opcode: opText, json: []byte("{}")})
	ws.mu.Lock()
	n := len(ws.queue)
	ws.mu.Unlock()
	if n != 5 {
		t.Fatalf("control event did not enqueue past a full queue: %d", n)
	}
}

func entryVersionsOut(evs []outEvent) []uint64 {
	var vs []uint64
	for _, e := range evs {
		if e.notify() {
			vs = append(vs, e.version)
		}
	}
	return vs
}

func TestSlowClientDisconnectPolicy(t *testing.T) {
	b := newFakeBackend()
	s := New(Config{Backend: b, QueueLen: 2, SlowPolicy: PolicyDisconnect})
	ws := s.newSession(TransportSSE, nil)
	ws.handle = "h"
	for v := uint64(1); v <= 3; v++ {
		ws.deliver(im.Notification{Channel: "u", Version: v, Diff: "d", At: time.Now()})
	}
	select {
	case <-ws.done:
	default:
		t.Fatal("session not closed by PolicyDisconnect")
	}
	c := s.Counters()
	if c.DisconnectsSlow != 1 || c.NotifyDroppedSlow != 1 {
		t.Fatalf("counters = %+v, want 1 slow disconnect, 1 drop", c)
	}
	if c.SessionsSSE != 0 {
		t.Fatalf("sse sessions = %d, want 0 after close", c.SessionsSSE)
	}
}

func sseConnect(t *testing.T, addr, query, lastEventID string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	req := "GET /sse?" + query + " HTTP/1.1\r\nHost: x\r\nAccept: text/event-stream\r\n"
	if lastEventID != "" {
		req += "Last-Event-ID: " + lastEventID + "\r\n"
	}
	req += "\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("SSE status: %s", strings.TrimSpace(status))
	}
	for { // skip response headers
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
	}
	return conn, br
}

type sseEvent struct {
	id, name, data string
}

// readSSEEvent reads one event (skipping comments), handling
// chunked-encoding framing loosely by ignoring pure-hex lines.
func readSSEEvent(t *testing.T, br *bufio.Reader) sseEvent {
	t.Helper()
	var ev sseEvent
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			ev.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			ev.name = line[7:]
		case strings.HasPrefix(line, "data: "):
			ev.data = line[6:]
		case line == "" && ev.name != "":
			return ev
		}
	}
}

func TestSSEHelloNotifyAndResume(t *testing.T) {
	b := newFakeBackend()
	s, addr := startServer(t, Config{Backend: b})
	conn, br := sseConnect(t, addr, "handle=bob&ch=u", "")
	defer conn.Close()

	hello := readSSEEvent(t, br)
	if hello.name != "hello" {
		t.Fatalf("first event %q, want hello", hello.name)
	}
	var hm serverMsg
	json.Unmarshal([]byte(hello.data), &hm)
	if hm.Token == "" || hm.Node != "overlay:1" {
		t.Fatalf("hello = %+v", hm)
	}

	b.notify(s, "u", 1, "d1")
	b.notify(s, "u", 2, "d2")
	ev := readSSEEvent(t, br)
	if ev.name != "notify" {
		t.Fatalf("event %q, want notify", ev.name)
	}
	var lastID string
	for _, ev := range []sseEvent{ev, readSSEEvent(t, br)} {
		if ev.id == "" {
			t.Fatal("notify event missing id")
		}
		lastID = ev.id
	}
	if want := "u:2"; lastID != want {
		t.Fatalf("cursor id = %q, want %q", lastID, want)
	}

	// Hard-disconnect, miss 3..4, reconnect with Last-Event-ID.
	conn.Close()
	b.notify(s, "u", 3, "d3")
	b.notify(s, "u", 4, "d4")
	conn2, br2 := sseConnect(t, addr, "handle=bob&token="+hm.Token+"&ch=u", lastID)
	defer conn2.Close()
	var versions []uint64
	for len(versions) < 2 {
		ev := readSSEEvent(t, br2)
		if ev.name != "notify" {
			continue
		}
		var nm serverMsg
		json.Unmarshal([]byte(ev.data), &nm)
		versions = append(versions, nm.Version)
	}
	if fmt.Sprint(versions) != "[3 4]" {
		t.Fatalf("resumed versions %v, want [3 4]", versions)
	}
	if c := s.Counters(); c.Replay.Hits == 0 {
		t.Fatalf("counters %+v, want a replay hit", c)
	}
}

func TestSSEWrongTokenConflicts(t *testing.T) {
	b := newFakeBackend()
	_, addr := startServer(t, Config{Backend: b})
	conn, _ := sseConnect(t, addr, "handle=carol&ch=u", "")
	defer conn.Close()
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "GET /sse?handle=carol&token=00ff HTTP/1.1\r\nHost: x\r\n\r\n")
	br := bufio.NewReader(conn2)
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "409") {
		t.Fatalf("second login status %q, want 409", strings.TrimSpace(status))
	}
}

func TestCursorRoundTrip(t *testing.T) {
	cursor := map[string]uint64{
		"http://feeds.example/a?x=1": 42,
		"plain":                      7,
		"with,comma":                 9,
		"with:colon":                 1,
	}
	got := parseCursor(cursorString(cursor))
	if len(got) != len(cursor) {
		t.Fatalf("round trip lost channels: %v", got)
	}
	for ch, v := range cursor {
		if got[ch] != v {
			t.Fatalf("channel %q: %d, want %d", ch, got[ch], v)
		}
	}
	// Garbage degrades to empty, never errors.
	if m := parseCursor("not a cursor"); len(m) != 0 {
		t.Fatalf("garbage cursor parsed to %v", m)
	}
	if m := parseCursor(""); len(m) != 0 {
		t.Fatalf("empty cursor parsed to %v", m)
	}
}

func TestLeaseRefreshLoop(t *testing.T) {
	b := newFakeBackend()
	_, addr := startServer(t, Config{Backend: b, LeaseEvery: 20 * time.Millisecond})
	c, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wsLogin(t, c, "dora", "")
	c.WriteJSON(clientMsg{Type: "subscribe", Req: 2, URL: "u"})
	wsExpect(t, c, "ack")
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		n := b.refreshes["dora"]
		b.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease refresh observed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := newFakeBackend()
	s, addr := startServer(t, Config{Backend: b})
	c, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wsLogin(t, c, "eve", "")
	c.WriteJSON(clientMsg{Type: "subscribe", Req: 2, URL: "u"})
	wsExpect(t, c, "ack")
	c.WriteJSON(clientMsg{Type: "unsubscribe", Req: 3, URL: "u"})
	wsExpect(t, c, "ack")
	b.mu.Lock()
	subscribed := b.subs["eve"]["u"]
	b.mu.Unlock()
	if subscribed {
		t.Fatal("backend still subscribed after unsubscribe")
	}
	_ = s
}

// TestWSHeartbeatPing checks the server pings and the read deadline
// extends — a quiet but ping-answering client stays connected.
func TestWSHeartbeatPing(t *testing.T) {
	b := newFakeBackend()
	s, addr := startServer(t, Config{Backend: b, HeartbeatEvery: 30 * time.Millisecond})
	c, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wsLogin(t, c, "ann", "")
	c.WriteJSON(clientMsg{Type: "subscribe", Req: 2, URL: "u"})
	wsExpect(t, c, "ack")
	// Sit through several heartbeat intervals; ReadMessage answers the
	// pings under the covers. A notify afterwards proves the session
	// survived.
	done := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		b.notify(s, "u", 1, "d")
		close(done)
	}()
	if n := wsExpect(t, c, "notify"); n.Version != 1 {
		t.Fatalf("notify version %d", n.Version)
	}
	<-done
}

// TestServerCloseTearsDownSessions: Close must reach hijacked WS
// connections the http.Server no longer tracks.
func TestServerCloseTearsDownSessions(t *testing.T) {
	b := newFakeBackend()
	s, addr := startServer(t, Config{Backend: b})
	c, err := DialWS("ws://" + addr + "/ws")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wsLogin(t, c, "fin", "")
	s.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := c.ReadMessage(); err != nil {
			if _, ok := err.(net.Error); ok && err.(net.Error).Timeout() {
				t.Fatal("connection still alive after Close")
			}
			if err == io.EOF || !strings.Contains(err.Error(), "timeout") {
				return // torn down
			}
		}
	}
}

func TestMetricsRegistration(t *testing.T) {
	b := newFakeBackend()
	s, _ := startServer(t, Config{Backend: b})
	reg := metrics.NewRegistry()
	s.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`corona_web_sessions{transport="ws"}`,
		`corona_web_sessions{transport="sse"}`,
		"corona_web_replay_hits_total",
		"corona_web_replay_misses_total",
		"corona_web_replay_wraps_total",
		`corona_web_notify_dropped_total{cause="slow_client"}`,
		`corona_web_disconnects_total{cause="displaced"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
	_ = http.StatusOK
}

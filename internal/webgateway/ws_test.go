package webgateway

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWSAccept(t *testing.T) {
	// The worked example from RFC 6455 §1.3.
	if got, want := wsAccept("dGhlIHNhbXBsZSBub25jZQ=="), "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="; got != want {
		t.Fatalf("wsAccept = %q, want %q", got, want)
	}
}

func TestUpgradeRejectsPlainGET(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/ws", nil)
	if _, _, err := upgradeWS(rec, req); !errors.Is(err, errNotWebSocket) {
		t.Fatalf("plain GET upgraded: %v", err)
	}
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
}

func TestUpgradeRejectsWrongVersion(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/ws", nil)
	req.Header.Set("Connection", "keep-alive, Upgrade")
	req.Header.Set("Upgrade", "websocket")
	req.Header.Set("Sec-WebSocket-Version", "8")
	req.Header.Set("Sec-WebSocket-Key", "x")
	if _, _, err := upgradeWS(rec, req); !errors.Is(err, errNotWebSocket) {
		t.Fatalf("version 8 upgraded: %v", err)
	}
	if rec.Code != http.StatusUpgradeRequired || rec.Header().Get("Sec-WebSocket-Version") != "13" {
		t.Fatalf("status=%d version-header=%q, want 426 with version 13 advertised",
			rec.Code, rec.Header().Get("Sec-WebSocket-Version"))
	}
}

// roundTrip pushes payload through the client-side frame writer and the
// server-side reader.
func roundTrip(t *testing.T, opcode byte, payload []byte) []byte {
	t.Helper()
	wire := appendMaskedFrame(nil, opcode, payload)
	fin, op, got, err := readWSFrame(bufio.NewReader(bytes.NewReader(wire)), maxWSMessage, true)
	if err != nil {
		t.Fatalf("readWSFrame: %v", err)
	}
	if !fin || op != opcode {
		t.Fatalf("fin=%v op=%d, want final op %d", fin, op, opcode)
	}
	return got
}

func TestFrameRoundTripLengths(t *testing.T) {
	// Each of the three length encodings, at their boundaries.
	for _, n := range []int{0, 1, 125, 126, 127, 1<<16 - 1, 1 << 16, maxWSMessage} {
		payload := bytes.Repeat([]byte{0xAB}, n)
		if got := roundTrip(t, opBinary, payload); !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: payload mangled", n)
		}
	}
}

func TestServerFramesUnmaskedAndClientFramesMasked(t *testing.T) {
	server := appendWSFrame(nil, opText, []byte("hi"))
	if server[1]&0x80 != 0 {
		t.Fatal("server frame has mask bit set")
	}
	// A server reading an unmasked frame must refuse it...
	if _, _, _, err := readWSFrame(bufio.NewReader(bytes.NewReader(server)), maxWSMessage, true); !errors.Is(err, errBadFrame) {
		t.Fatalf("unmasked client frame accepted: %v", err)
	}
	// ...while a client reading the same bytes accepts them.
	_, _, payload, err := readWSFrame(bufio.NewReader(bytes.NewReader(server)), maxWSMessage, false)
	if err != nil || string(payload) != "hi" {
		t.Fatalf("client read: %q, %v", payload, err)
	}
}

func TestReadWSMessageFragmented(t *testing.T) {
	// "hello world" as text + 2 continuations, with a ping interleaved.
	var wire []byte
	frag := func(fin bool, opcode byte, part string) {
		f := appendMaskedFrame(nil, opcode, []byte(part))
		if !fin {
			f[0] &^= 0x80
		}
		wire = append(wire, f...)
	}
	frag(false, opText, "hel")
	frag(false, opContinuation, "lo ")
	wire = append(wire, appendMaskedFrame(nil, opPing, []byte("k"))...)
	frag(true, opContinuation, "world")

	var pings int
	op, msg, err := readWSMessage(bufio.NewReader(bytes.NewReader(wire)), true,
		func(opcode byte, payload []byte) error {
			if opcode == opPing && string(payload) == "k" {
				pings++
			}
			return nil
		})
	if err != nil || op != opText || string(msg) != "hello world" {
		t.Fatalf("got op=%d msg=%q err=%v", op, msg, err)
	}
	if pings != 1 {
		t.Fatalf("pings seen = %d, want 1", pings)
	}
}

func TestReadWSMessageProtocolErrors(t *testing.T) {
	unfinal := func(opcode byte, part string) []byte {
		f := appendMaskedFrame(nil, opcode, []byte(part))
		f[0] &^= 0x80
		return f
	}
	cases := []struct {
		name string
		wire []byte
		want error
	}{
		{"continuation of nothing", appendMaskedFrame(nil, opContinuation, []byte("x")), errBadFrame},
		{"new message mid-assembly", append(unfinal(opText, "a"), appendMaskedFrame(nil, opText, []byte("b"))...), errBadFrame},
		{"fragmented control", unfinal(opPing, "x"), errBadFrame},
		{"reserved opcode", appendMaskedFrame(nil, 0x3, nil), errBadFrame},
		{"close frame", appendMaskedFrame(nil, opClose, nil), errClosed},
		{"rsv bits", func() []byte { f := appendMaskedFrame(nil, opText, []byte("x")); f[0] |= 0x40; return f }(), errBadFrame},
	}
	for _, tc := range cases {
		_, _, err := readWSMessage(bufio.NewReader(bytes.NewReader(tc.wire)), true, nil)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReadWSFrameHostileLengths(t *testing.T) {
	// 64-bit length with the sign bit set.
	wire := []byte{0x82, 0x80 | 127}
	var ext [8]byte
	binary.BigEndian.PutUint64(ext[:], 1<<63|16)
	wire = append(wire, ext[:]...)
	wire = append(wire, make([]byte, 20)...)
	if _, _, _, err := readWSFrame(bufio.NewReader(bytes.NewReader(wire)), maxWSMessage, true); !errors.Is(err, errBadFrame) {
		t.Fatalf("sign-bit length: %v, want errBadFrame", err)
	}
	// Length beyond the bound must fail BEFORE allocating the payload.
	wire = []byte{0x82, 0x80 | 127}
	binary.BigEndian.PutUint64(ext[:], 1<<40)
	wire = append(wire, ext[:]...)
	if _, _, _, err := readWSFrame(bufio.NewReader(bytes.NewReader(wire)), maxWSMessage, true); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("huge length: %v, want errFrameTooLarge", err)
	}
	// Control frame with a >125 payload length.
	wire = []byte{0x89, 0x80 | 126, 0x01, 0x00}
	if _, _, _, err := readWSFrame(bufio.NewReader(bytes.NewReader(wire)), maxWSMessage, true); !errors.Is(err, errBadFrame) {
		t.Fatalf("fat control frame: %v, want errBadFrame", err)
	}
	// Assembled fragments beyond the bound.
	big := strings.Repeat("x", maxWSMessage/2+1)
	var frag []byte
	f1 := appendMaskedFrame(nil, opText, []byte(big))
	f1[0] &^= 0x80
	frag = append(frag, f1...)
	frag = append(frag, appendMaskedFrame(nil, opContinuation, []byte(big))...)
	if _, _, err := readWSMessage(bufio.NewReader(bytes.NewReader(frag)), true, nil); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversize assembly: %v, want errFrameTooLarge", err)
	}
}

// TestReadWSFrameTruncatedAtEveryByte feeds every strict prefix of a
// valid two-message stream: whole messages before the cut still parse,
// the cut itself must surface as an I/O error — never a hang, panic, or
// phantom message.
func TestReadWSFrameTruncatedAtEveryByte(t *testing.T) {
	first := appendMaskedFrame(nil, opText, []byte("truncate me at every byte"))
	wire := append(append([]byte{}, first...), appendMaskedFrame(nil, opText, []byte("second"))...)
	for cut := 0; cut < len(wire); cut++ {
		br := bufio.NewReader(bytes.NewReader(wire[:cut]))
		var parsed int
		var err error
		for {
			var payload []byte
			_, payload, err = readWSMessage(br, true, nil)
			if err != nil {
				break
			}
			parsed++
			switch parsed {
			case 1:
				if string(payload) != "truncate me at every byte" {
					t.Fatalf("cut=%d: first message mangled: %q", cut, payload)
				}
			default:
				t.Fatalf("cut=%d: phantom message %q from a truncated stream", cut, payload)
			}
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: err = %v, want EOF-ish", cut, err)
		}
		if wantFirst := cut >= len(first); (parsed == 1) != wantFirst {
			t.Fatalf("cut=%d: parsed %d messages, first complete=%v", cut, parsed, wantFirst)
		}
	}
}

// FuzzWSFrame throws arbitrary bytes at the server-side message reader.
// The property is total safety: a result or an error, never a panic,
// never a payload above the bound. Seeds cover masked frames,
// fragmentation, control interleave, and hostile lengths.
func FuzzWSFrame(f *testing.F) {
	f.Add(appendMaskedFrame(nil, opText, []byte(`{"type":"ping","req":1}`)))
	f.Add(appendMaskedFrame(nil, opBinary, bytes.Repeat([]byte{7}, 300)))
	f.Add(appendWSFrame(nil, opText, []byte("unmasked")))
	frag := appendMaskedFrame(nil, opText, []byte("he"))
	frag[0] &^= 0x80
	frag = append(frag, appendMaskedFrame(nil, opPing, nil)...)
	frag = append(frag, appendMaskedFrame(nil, opContinuation, []byte("llo"))...)
	f.Add(frag)
	f.Add([]byte{0x81, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x89, 0xFE, 0x7F, 0xFF})
	f.Add([]byte{0x41, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			_, payload, err := readWSMessage(br, true, func(byte, []byte) error { return nil })
			if err != nil {
				return
			}
			if len(payload) > maxWSMessage {
				t.Fatalf("payload of %d bytes escaped the bound", len(payload))
			}
		}
	})
}

// Package webgateway is Corona's web edge: an HTTP server beside the
// binary client-protocol listener that lets browsers — and anything
// else speaking WebSocket or Server-Sent Events — join the pub-sub
// system with no SDK, while keeping the node's session semantics:
// resume tokens, handle displacement, entry-node lease refreshes, and
// the encode-once fan-out path.
//
// # Endpoints
//
// GET /ws — RFC 6455 WebSocket (server side implemented here on the
// standard library via http.Hijacker; subprotocol "corona.v1.json" is
// echoed when offered). Both directions carry JSON text messages.
//
// GET /sse — Server-Sent Events (text/event-stream). Server-to-client
// only; the request line carries the session: query parameters handle,
// token (hex), and one ch per channel URL. Resume arrives in the
// Last-Event-ID header (browser EventSource reconnect) or a since query
// parameter (curl), both in the composite-cursor format below.
//
// # WebSocket messages
//
// Client to server (type, then fields by message):
//
//	{"type":"login","req":1,"handle":"h","token":"<hex, may be empty>"}
//	{"type":"subscribe","req":2,"url":"http://...","since":41}   // since optional
//	{"type":"unsubscribe","req":3,"url":"http://..."}
//	{"type":"ping","req":4}
//
// Server to client:
//
//	{"type":"ack","req":1,"token":"<hex>"}      // token on login acks only
//	{"type":"nak","req":2,"reason":"..."}
//	{"type":"hello","node":"...","peers":["..."]}
//	{"type":"notify","channel":"...","version":42,"diff":"...","at":<unix nanos>}
//	{"type":"snapshot_required","channel":"...","version":57}
//
// req is an opaque client-chosen correlation number echoed in the ack
// or nak. Login must come first; a handle already live under a
// different resume token is refused (nak), while presenting the live
// session's token displaces it — exactly the binary protocol's rules,
// and enforced by the same node-wide session table, so displacement
// works across transports.
//
// # Resume and replay
//
// Every update the node would deliver locally is also appended — before
// any deliverer runs — to a per-channel, fixed-capacity, version-indexed
// replay ring. A subscribe carrying since replays, in order and
// exactly once, every buffered version strictly greater than since,
// merged gap-free with live deliveries (a gate suppresses live events
// for the channel while the subscribe is in flight; the ring holds
// them). When the ring has wrapped past the cursor — the buffer cannot
// prove it covers the gap — the server sends snapshot_required with the
// newest version it knows, and the client must refetch the document
// before resuming the diff stream from there.
//
// The SSE cursor is composite: each event's id line is
// "escape(channel):version[,escape(channel):version...]" — the full
// session position, because EventSource resends only the last id it
// saw. On reconnect each ch channel resumes from its cursor entry, or
// live-only when absent.
//
// Within one session each channel's delivered versions are strictly
// increasing: duplicates (re-observed delegate batches, replay/live
// overlap) are filtered at the queue boundary by a per-channel
// watermark.
//
// # Slow clients
//
// Each session has a bounded outbound queue. When it fills,
// PolicyDropOldest (default) evicts the oldest queued notification —
// the client sees a version gap it can replay later — while
// PolicyDisconnect closes the session and lets the client reconnect at
// its own pace. Control events (acks, hello, snapshot_required) are
// never dropped. Both outcomes, and displacement evictions, are
// counted by cause in the node's stats and /metrics.
//
// # Liveness
//
// The server pings (WS) or writes comment heartbeats (SSE) every
// HeartbeatEvery, and refreshes the session's entry-node leases at
// channel owners every LeaseEvery — web subscribers ride the same
// lease-failover machinery as SDK clients. A WS peer silent for three
// heartbeat intervals is presumed dead.
package webgateway

package webgateway

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"corona/internal/im"
)

// BenchmarkWebFanoutDeliver measures the hot path a channel update takes
// through the web edge: one shared JSON encode per batch, then a
// watermark check and queue append per session. Sessions are drained by
// writer stand-ins so the queues stay below the slow-client bound.
func BenchmarkWebFanoutDeliver(b *testing.B) {
	diff := strings.Repeat("x", 512)
	for _, clients := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			s := New(Config{Backend: newFakeBackend(), QueueLen: 1 << 16})
			sessions := make([]*webSession, clients)
			for i := range sessions {
				ws := s.newSession(TransportWS, nil)
				go func() {
					for {
						select {
						case <-ws.kick:
							ws.drain()
						case <-ws.done:
							return
						}
					}
				}()
				sessions[i] = ws
			}
			at := time.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shared := &im.Shared{}
				n := im.Notification{Channel: "u", Version: uint64(i + 1), Diff: diff, At: at, Shared: shared}
				for _, ws := range sessions {
					ws.deliver(n)
				}
			}
			b.StopTimer()
			for _, ws := range sessions {
				ws.close(causeGone)
			}
		})
	}
}

// BenchmarkWebReplayAppend measures the tap's cost per update: what
// every notification pays whether or not a web client is connected.
func BenchmarkWebReplayAppend(b *testing.B) {
	r := NewReplay(DefaultReplayCap)
	diff := strings.Repeat("x", 512)
	at := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Append("u", uint64(i+1), diff, at)
	}
}

// BenchmarkWebReplayFrom measures a resume scan over a full ring.
func BenchmarkWebReplayFrom(b *testing.B) {
	r := NewReplay(DefaultReplayCap)
	for v := uint64(1); v <= DefaultReplayCap; v++ {
		r.Append("u", v, "diff", time.Time{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, complete := r.From("u", DefaultReplayCap/2); !complete {
			b.Fatal("expected complete replay")
		}
	}
}

// BenchmarkWebWSFrameEncode measures server-frame encoding alone.
func BenchmarkWebWSFrameEncode(b *testing.B) {
	payload := []byte(strings.Repeat("x", 512))
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendWSFrame(buf[:0], opText, payload)
	}
	_ = buf
}

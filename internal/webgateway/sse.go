package webgateway

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SSE cursor: every event's id line carries the session's full position
// as "escape(channel):version[,escape(channel):version...]" — a
// composite cursor rather than a per-event one, because the browser's
// EventSource resends only the LAST id it saw as Last-Event-ID, and the
// reconnect must resume every channel, not just the one that happened to
// update last.

// parseCursor parses a composite cursor; unparseable elements are
// skipped (a bad cursor degrades to live-only on those channels, it
// never errors the stream).
func parseCursor(s string) map[string]uint64 {
	cursor := make(map[string]uint64)
	for _, part := range strings.Split(s, ",") {
		colon := strings.LastIndexByte(part, ':')
		if colon < 0 {
			continue
		}
		channel, err := url.QueryUnescape(part[:colon])
		if err != nil || channel == "" {
			continue
		}
		version, err := strconv.ParseUint(part[colon+1:], 10, 64)
		if err != nil {
			continue
		}
		cursor[channel] = version
	}
	return cursor
}

// cursorString renders a composite cursor in sorted channel order (the
// id must be byte-stable for identical positions).
func cursorString(cursor map[string]uint64) string {
	channels := make([]string, 0, len(cursor))
	for ch := range cursor {
		channels = append(channels, ch)
	}
	sort.Strings(channels)
	var b strings.Builder
	for i, ch := range channels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(url.QueryEscape(ch))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(cursor[ch], 10))
	}
	return b.String()
}

// handleSSE serves one Server-Sent Events stream. The request line
// carries what WS messages carry: handle and token as query parameters,
// channels as repeated ch parameters; the resume cursor arrives in
// Last-Event-ID (browser reconnect) or a since parameter (curl). The
// handler goroutine is the writer: it subscribes, replays, then drains
// the session queue into the response until the client goes away or the
// session is closed (displacement, slow-client policy, shutdown).
func (s *Server) handleSSE(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	q := r.URL.Query()
	handle := q.Get("handle")
	if handle == "" {
		http.Error(w, "handle parameter required", http.StatusBadRequest)
		return
	}
	token, err := hex.DecodeString(q.Get("token"))
	if err != nil {
		http.Error(w, "malformed token: not hex", http.StatusBadRequest)
		return
	}
	channels := q["ch"]
	cursor := make(map[string]uint64)
	if id := r.Header.Get("Last-Event-ID"); id != "" {
		cursor = parseCursor(id)
	} else if since := q.Get("since"); since != "" {
		cursor = parseCursor(since)
	}

	ws := s.newSession(TransportSSE, nil)
	defer ws.close(causeGone)

	tok, sess, detach, ok := s.table.Begin(handle, token, TransportSSE,
		func() { ws.close(causeDisplaced) },
		func() func() { return s.backend.Attach(handle, ws.deliver) })
	if !ok {
		http.Error(w, "handle in use (resume token mismatch)", http.StatusConflict)
		return
	}
	ws.mu.Lock()
	ws.handle = handle
	ws.mu.Unlock()
	defer func() {
		detach()
		s.table.End(handle, sess)
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	// EventSource is CORS-governed (unlike WebSocket); the gateway
	// carries no ambient credentials, so any origin may stream.
	h.Set("Access-Control-Allow-Origin", "*")
	w.WriteHeader(http.StatusOK)

	// The writer's own cursor copy advances as events go out, so each
	// event's id is exactly the stream position after that event.
	written := make(map[string]uint64, len(cursor))

	info := s.backend.Info()
	ws.control(outEvent{name: "hello", opcode: opText,
		json: marshalMsg(serverMsg{Type: "hello", Token: hex.EncodeToString(tok), Node: info.Node, Peers: info.Peers})})

	// Subscribe each channel; per-channel failures become nak events on
	// the stream rather than killing it (the client may hold a mix of
	// valid and stale URLs after a failover).
	for _, ch := range channels {
		ws.gate(ch)
		if err := s.backend.Subscribe(handle, ch); err != nil {
			ws.mu.Lock()
			delete(ws.gated, ch)
			ws.mu.Unlock()
			ws.control(outEvent{name: "nak", opcode: opText,
				json: marshalMsg(serverMsg{Type: "nak", Channel: ch, Reason: err.Error()})})
			continue
		}
		var since *uint64
		if v, resumed := cursor[ch]; resumed {
			since = &v
			written[ch] = v
		}
		ws.replayAndUngate(ch, since)
	}

	rc := http.NewResponseController(w)
	hb := time.NewTicker(s.heartbeat)
	lease := time.NewTicker(s.leaseEvery)
	defer hb.Stop()
	defer lease.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ws.kick:
			rc.SetWriteDeadline(time.Now().Add(wsWriteTimeout))
			for _, ev := range ws.drain() {
				if err := writeSSEEvent(w, ev, written); err != nil {
					return
				}
			}
			flusher.Flush()
		case <-hb.C:
			rc.SetWriteDeadline(time.Now().Add(wsWriteTimeout))
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-lease.C:
			ws.refreshLeases()
		case <-ctx.Done():
			return
		case <-ws.done:
			// Flush whatever was queued before the close, then end the
			// stream; the client reconnects with its cursor.
			for _, ev := range ws.drain() {
				writeSSEEvent(w, ev, written)
			}
			flusher.Flush()
			return
		}
	}
}

// writeSSEEvent renders one queued event as an SSE frame, advancing the
// writer's cursor on notify events. WS heartbeat pings queued before a
// transport switch would be meaningless here and are skipped.
func writeSSEEvent(w http.ResponseWriter, ev outEvent, written map[string]uint64) error {
	if ev.opcode != opText {
		return nil
	}
	if ev.name == "notify" {
		written[ev.channel] = ev.version
	}
	if ev.name == "notify" || ev.name == "snapshot_required" {
		if _, err := fmt.Fprintf(w, "id: %s\n", cursorString(written)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.json)
	return err
}

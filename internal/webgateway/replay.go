package webgateway

import (
	"sync"
	"time"
)

// DefaultReplayCap is the per-channel ring capacity when Config leaves
// it zero: enough to ride out a browser reconnect (seconds to a minute)
// on an active channel without holding feed history forever.
const DefaultReplayCap = 256

// Entry is one buffered notification: what a reconnecting client fetches
// for the versions it missed.
type Entry struct {
	Version uint64
	Diff    string
	At      time.Time
}

// Replay is the gateway's per-channel replay memory: a fixed-capacity,
// version-indexed ring per channel, fed from the im.Gateway update tap
// (every update the node would deliver to any local client, whether or
// not one is attached) and read by reconnecting WebSocket/SSE sessions
// resuming from a version cursor. Versions in a ring are strictly
// increasing — the tap can observe one update several times (one batch
// per delegate shard reaching this entry node), so Append drops
// anything at or below the newest buffered version.
type Replay struct {
	mu       sync.Mutex
	capacity int
	channels map[string]*ring

	hits   uint64 // From calls served entirely out of the buffer
	misses uint64 // From calls that had to signal snapshot-required
	wraps  uint64 // buffered entries overwritten before anyone read them
}

// ring is one channel's buffer: a circular slice with start pointing at
// the oldest live entry.
type ring struct {
	buf   []Entry
	start int
	n     int
}

// NewReplay returns a replay memory with the given per-channel capacity
// (DefaultReplayCap when <= 0).
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = DefaultReplayCap
	}
	return &Replay{capacity: capacity, channels: make(map[string]*ring)}
}

// Append records one update. Out-of-order and duplicate versions (a
// re-observed delegate batch, a replayed owner handoff) are dropped; a
// full ring overwrites its oldest entry, counting the wrap.
func (r *Replay) Append(channel string, version uint64, diff string, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg := r.channels[channel]
	if rg == nil {
		rg = &ring{buf: make([]Entry, r.capacity)}
		r.channels[channel] = rg
	}
	if rg.n > 0 && version <= rg.at(rg.n-1).Version {
		return
	}
	e := Entry{Version: version, Diff: diff, At: at}
	if rg.n < len(rg.buf) {
		rg.buf[(rg.start+rg.n)%len(rg.buf)] = e
		rg.n++
		return
	}
	rg.buf[rg.start] = e
	rg.start = (rg.start + 1) % len(rg.buf)
	r.wraps++
}

// at returns the i-th oldest live entry; callers hold r.mu.
func (rg *ring) at(i int) *Entry {
	return &rg.buf[(rg.start+i)%len(rg.buf)]
}

// From returns, in version order, every buffered entry of channel with a
// version strictly greater than since, and whether that is the complete
// set of updates the channel saw after since. complete is false — the
// caller must signal snapshot-required instead of replaying — when the
// buffer cannot prove it covers the gap: the ring has wrapped past since
// (its oldest entry is beyond since+1's position in the version stream),
// or the channel has no buffered history at all to judge by. A since at
// or ahead of the newest buffered version is complete with no entries.
//
// The returned slice is freshly allocated; appends racing the copy never
// mutate it.
func (r *Replay) From(channel string, since uint64) (entries []Entry, complete bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg := r.channels[channel]
	if rg == nil || rg.n == 0 {
		r.misses++
		return nil, false
	}
	newest := rg.at(rg.n - 1).Version
	if since >= newest {
		r.hits++
		return nil, true
	}
	oldest := rg.at(0).Version
	// The buffer proves completeness only when it still holds the first
	// version after since: version streams are strictly increasing but
	// not dense (an owner can assign gaps across restarts), so the
	// conservative test is "the oldest buffered version is <= since+1 OR
	// <= since" — i.e. nothing between since and the buffer head can
	// have been evicted. oldest > since+1 means versions in (since,
	// oldest) may have existed and wrapped away.
	if oldest > since+1 {
		r.misses++
		return nil, false
	}
	for i := 0; i < rg.n; i++ {
		if e := rg.at(i); e.Version > since {
			entries = append(entries, *e)
		}
	}
	r.hits++
	return entries, true
}

// Newest returns the newest buffered version of channel, zero when none.
func (r *Replay) Newest(channel string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg := r.channels[channel]
	if rg == nil || rg.n == 0 {
		return 0
	}
	return rg.at(rg.n - 1).Version
}

// ReplayStats is one coherent snapshot of the replay counters.
type ReplayStats struct {
	Hits   uint64
	Misses uint64
	Wraps  uint64
}

// Stats snapshots the replay counters under one lock acquisition.
func (r *Replay) Stats() ReplayStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplayStats{Hits: r.hits, Misses: r.misses, Wraps: r.wraps}
}

package webgateway

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
)

// Server-side RFC 6455, on nothing but the standard library: the
// handshake is an HTTP GET hijacked off the mux, frames are parsed and
// emitted by hand. Matching the dependency-free internal/metrics
// precedent, no websocket package is imported.

// WS frame opcodes.
const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// maxWSMessage bounds one assembled application message, fragments
// included — the same 1 MiB bound as clientproto.MaxFrame (bodies carry
// diffs, not feeds). Hostile lengths beyond it kill the connection
// before any allocation of that size.
const maxWSMessage = 1 << 20

// wsAcceptGUID is the key-digest constant of RFC 6455 §4.2.2.
const wsAcceptGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Subprotocol is the WS subprotocol name for the gateway's JSON message
// surface; offered by a client, it is echoed in the handshake.
const Subprotocol = "corona.v1.json"

var (
	errNotWebSocket  = errors.New("webgateway: not a websocket handshake")
	errFrameTooLarge = errors.New("webgateway: frame exceeds message bound")
	errBadFrame      = errors.New("webgateway: malformed frame")
	errClosed        = errors.New("webgateway: close frame received")
)

// wsAccept computes the Sec-WebSocket-Accept digest for a handshake key.
func wsAccept(key string) string {
	h := sha1.New()
	io.WriteString(h, key)
	io.WriteString(h, wsAcceptGUID)
	return base64.StdEncoding.EncodeToString(h.Sum(nil))
}

// headerHasToken reports whether a comma-separated header value contains
// token, case-insensitively ("Connection: keep-alive, Upgrade").
func headerHasToken(value, token string) bool {
	for _, part := range strings.Split(value, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// upgradeWS validates a WS handshake request and hijacks the connection,
// replying 101. On failure it writes the HTTP error itself and returns
// errNotWebSocket. The returned bufio.Reader may hold bytes already read
// from the socket; all further reads must go through it.
func upgradeWS(w http.ResponseWriter, r *http.Request) (net.Conn, *bufio.Reader, error) {
	if r.Method != http.MethodGet ||
		!headerHasToken(r.Header.Get("Connection"), "Upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket handshake required", http.StatusBadRequest)
		return nil, nil, errNotWebSocket
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "unsupported websocket version", http.StatusUpgradeRequired)
		return nil, nil, errNotWebSocket
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, nil, errNotWebSocket
	}
	subprotocol := ""
	for _, offered := range r.Header.Values("Sec-WebSocket-Protocol") {
		if headerHasToken(offered, Subprotocol) {
			subprotocol = Subprotocol
			break
		}
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "connection cannot be hijacked", http.StatusInternalServerError)
		return nil, nil, errNotWebSocket
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, nil, err
	}
	var resp strings.Builder
	resp.WriteString("HTTP/1.1 101 Switching Protocols\r\n")
	resp.WriteString("Upgrade: websocket\r\n")
	resp.WriteString("Connection: Upgrade\r\n")
	fmt.Fprintf(&resp, "Sec-WebSocket-Accept: %s\r\n", wsAccept(key))
	if subprotocol != "" {
		fmt.Fprintf(&resp, "Sec-WebSocket-Protocol: %s\r\n", subprotocol)
	}
	resp.WriteString("\r\n")
	if _, err := conn.Write([]byte(resp.String())); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, rw.Reader, nil
}

// readWSFrame reads one raw frame header+payload. With requireMask set
// (a server reading client frames) an unmasked frame is an error (RFC
// 6455 §5.1); a mask, when present, is removed. RSV bits must be zero
// (no extension is negotiated), control frames must be final and
// <= 125 bytes, and the payload must fit the message bound. It is the
// fuzz surface: any byte stream either yields well-formed frames or an
// error, never a panic or an oversized allocation.
func readWSFrame(br *bufio.Reader, bound int, requireMask bool) (fin bool, opcode byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return false, 0, nil, err
	}
	fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return false, 0, nil, errBadFrame // RSV bits without an extension
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	if requireMask && !masked {
		return false, 0, nil, errBadFrame // client frames must be masked
	}
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
		if length&(1<<63) != 0 {
			return false, 0, nil, errBadFrame // most significant bit must be 0
		}
	}
	if opcode >= opClose {
		// Control frames: never fragmented, payload <= 125.
		if !fin || length > 125 {
			return false, 0, nil, errBadFrame
		}
	}
	if length > uint64(bound) {
		return false, 0, nil, errFrameTooLarge
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(br, mask[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, int(length))
	if _, err = io.ReadFull(br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return fin, opcode, payload, nil
}

// readWSMessage assembles one application message, transparently
// handling fragmentation and interleaved control frames: pings are
// answered through onControl, pongs are dropped, a close frame returns
// errClosed. The total assembled length is bounded. requireMask is
// passed through to the frame reader: true on the server side, false on
// the client side.
func readWSMessage(br *bufio.Reader, requireMask bool, onControl func(opcode byte, payload []byte) error) (opcode byte, payload []byte, err error) {
	var message []byte
	assembling := false
	for {
		fin, op, part, err := readWSFrame(br, maxWSMessage, requireMask)
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case opClose:
			return 0, nil, errClosed
		case opPing, opPong:
			if onControl != nil {
				if err := onControl(op, part); err != nil {
					return 0, nil, err
				}
			}
			continue
		case opText, opBinary:
			if assembling {
				return 0, nil, errBadFrame // new message before the last finished
			}
			opcode, message, assembling = op, part, true
		case opContinuation:
			if !assembling {
				return 0, nil, errBadFrame // continuation of nothing
			}
			if len(message)+len(part) > maxWSMessage {
				return 0, nil, errFrameTooLarge
			}
			message = append(message, part...)
		default:
			return 0, nil, errBadFrame // reserved opcode
		}
		if fin {
			return opcode, message, nil
		}
	}
}

// appendWSFrame appends one final, unmasked server frame (RFC 6455
// §5.1: a server must not mask) to dst and returns it.
func appendWSFrame(dst []byte, opcode byte, payload []byte) []byte {
	dst = append(dst, 0x80|opcode)
	switch n := len(payload); {
	case n <= 125:
		dst = append(dst, byte(n))
	case n <= 1<<16-1:
		dst = append(dst, 126, byte(n>>8), byte(n))
	default:
		dst = append(dst, 127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(n))
		dst = append(dst, ext[:]...)
	}
	return append(dst, payload...)
}

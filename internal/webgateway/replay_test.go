package webgateway

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func entryVersions(entries []Entry) []uint64 {
	vs := make([]uint64, len(entries))
	for i, e := range entries {
		vs[i] = e.Version
	}
	return vs
}

// TestReplayFromBasic covers the plain paths: empty channel, cursor at
// newest, cursor mid-buffer, cursor just below oldest.
func TestReplayFromBasic(t *testing.T) {
	r := NewReplay(8)
	if _, complete := r.From("ch", 0); complete {
		t.Fatal("empty channel should be incomplete (no history to judge by)")
	}
	for v := uint64(1); v <= 5; v++ {
		r.Append("ch", v, fmt.Sprintf("d%d", v), time.Now())
	}
	entries, complete := r.From("ch", 2)
	if !complete {
		t.Fatal("cursor inside buffer should be complete")
	}
	if got, want := fmt.Sprint(entryVersions(entries)), "[3 4 5]"; got != want {
		t.Fatalf("From(2) = %s, want %s", got, want)
	}
	// since == newest: complete, nothing to replay.
	entries, complete = r.From("ch", 5)
	if !complete || len(entries) != 0 {
		t.Fatalf("From(newest) = %v complete=%v, want empty complete", entries, complete)
	}
	// since ahead of newest (client saw more than we buffered — a
	// cross-node resume): still complete, live delivery takes over.
	if _, complete = r.From("ch", 9); !complete {
		t.Fatal("From(ahead of newest) should be complete")
	}
	// since = 0 with oldest = 1 buffered: complete from the start.
	entries, complete = r.From("ch", 0)
	if !complete || len(entries) != 5 {
		t.Fatalf("From(0) = %d entries complete=%v, want 5 complete", len(entries), complete)
	}
}

// TestReplayWrapAtEveryOffset wraps a small ring by every possible
// amount and checks, for every since value, that From either returns
// exactly the surviving suffix or correctly declares the gap
// unprovable.
func TestReplayWrapAtEveryOffset(t *testing.T) {
	const capacity = 4
	for extra := 0; extra <= 2*capacity+1; extra++ {
		r := NewReplay(capacity)
		total := capacity + extra
		for v := 1; v <= total; v++ {
			r.Append("ch", uint64(v), "d", time.Time{})
		}
		oldest, newest := uint64(total-capacity+1), uint64(total)
		if w := r.Stats().Wraps; w != uint64(extra) {
			t.Fatalf("extra=%d: wraps=%d, want %d", extra, w, extra)
		}
		for since := uint64(0); since <= newest+1; since++ {
			entries, complete := r.From("ch", since)
			switch {
			case since >= newest:
				if !complete || len(entries) != 0 {
					t.Fatalf("extra=%d since=%d: got %v/%v, want empty complete", extra, since, entries, complete)
				}
			case since+1 < oldest:
				// Versions in (since, oldest) wrapped away: must miss.
				if complete {
					t.Fatalf("extra=%d since=%d oldest=%d: wrapped gap reported complete", extra, since, oldest)
				}
			default:
				if !complete {
					t.Fatalf("extra=%d since=%d oldest=%d: provable gap reported incomplete", extra, since, oldest)
				}
				want := int(newest - since)
				if len(entries) != want {
					t.Fatalf("extra=%d since=%d: %d entries, want %d", extra, since, len(entries), want)
				}
				for i, e := range entries {
					if e.Version != since+uint64(i)+1 {
						t.Fatalf("extra=%d since=%d: entry %d has version %d", extra, since, i, e.Version)
					}
				}
			}
		}
	}
}

// TestReplaySparseVersions checks the completeness rule on a version
// stream with gaps (owners may skip versions across restarts): a cursor
// landing inside a published gap is only provable when the buffer still
// reaches back far enough.
func TestReplaySparseVersions(t *testing.T) {
	r := NewReplay(8)
	for _, v := range []uint64{10, 20, 30} {
		r.Append("ch", v, "d", time.Time{})
	}
	// since=10 == oldest: provable (nothing between 10 and 20 was
	// evicted — the buffer holds everything after 10).
	entries, complete := r.From("ch", 10)
	if !complete || fmt.Sprint(entryVersions(entries)) != "[20 30]" {
		t.Fatalf("From(10) = %v complete=%v", entryVersions(entries), complete)
	}
	// since=15: oldest buffered is 10 <= since, so every version > 15
	// the channel ever had is still buffered. Provable.
	entries, complete = r.From("ch", 15)
	if !complete || fmt.Sprint(entryVersions(entries)) != "[20 30]" {
		t.Fatalf("From(15) = %v complete=%v", entryVersions(entries), complete)
	}
	// since=5: versions in (5,10) may have existed before the buffer's
	// history began. Unprovable.
	if _, complete = r.From("ch", 5); complete {
		t.Fatal("From(5) before buffered history should be incomplete")
	}
}

// TestReplayAppendDedup drops duplicate and stale versions — the tap
// observes one update once per delegate batch that reaches this node.
func TestReplayAppendDedup(t *testing.T) {
	r := NewReplay(8)
	r.Append("ch", 3, "v3", time.Time{})
	r.Append("ch", 3, "v3-again", time.Time{})
	r.Append("ch", 2, "v2-late", time.Time{})
	r.Append("ch", 4, "v4", time.Time{})
	entries, complete := r.From("ch", 2)
	if !complete {
		t.Fatal("expected complete")
	}
	if got := fmt.Sprint(entryVersions(entries)); got != "[3 4]" {
		t.Fatalf("entries = %s, want [3 4]", got)
	}
	if entries[0].Diff != "v3" {
		t.Fatalf("duplicate overwrote the original diff: %q", entries[0].Diff)
	}
}

// TestReplayHitMissCounters pins which outcomes count where.
func TestReplayHitMissCounters(t *testing.T) {
	r := NewReplay(2)
	r.From("ch", 0) // empty: miss
	r.Append("ch", 1, "d", time.Time{})
	r.Append("ch", 2, "d", time.Time{})
	r.Append("ch", 3, "d", time.Time{}) // wraps v1 away
	r.From("ch", 2)                     // hit
	r.From("ch", 3)                     // since==newest: hit
	r.From("ch", 0)                     // wrapped gap: miss
	s := r.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Wraps != 1 {
		t.Fatalf("stats = %+v, want hits=2 misses=2 wraps=1", s)
	}
}

// TestReplayConcurrentAppendWhileReplay hammers Append and From on the
// same channels from many goroutines; run under -race, correctness is
// "returned slices are version-ordered and internally consistent".
func TestReplayConcurrentAppendWhileReplay(t *testing.T) {
	r := NewReplay(16)
	channels := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, ch := range channels {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := uint64(1); v <= 2000; v++ {
				r.Append(ch, v, "diff", time.Time{})
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				ch := channels[n%len(channels)]
				since := r.Newest(ch) / 2
				entries, complete := r.From(ch, since)
				if !complete {
					continue
				}
				for j := 1; j < len(entries); j++ {
					if entries[j].Version <= entries[j-1].Version {
						t.Errorf("unordered replay: %d after %d", entries[j].Version, entries[j-1].Version)
						return
					}
				}
				if len(entries) > 0 && entries[0].Version <= since {
					t.Errorf("replayed version %d <= since %d", entries[0].Version, since)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

package webgateway

import (
	"bufio"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"net/textproto"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Client side of the gateway's WebSocket surface, for Go callers (the
// e2e tests, load tools). Browsers use the native WebSocket API; this
// mirrors what they do on the wire: a masked-frame client speaking the
// JSON messages of doc.go.

// WSClient is one client-side WebSocket connection to a /ws endpoint.
type WSClient struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex // serializes writes (control replies vs. messages)
}

// DialWS connects and performs the client half of the RFC 6455
// handshake. rawURL is ws://host:port/ws (or http://, treated the same).
func DialWS(rawURL string) (*WSClient, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Host, "80")
	}
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	conn, err := net.DialTimeout("tcp", host, 5*time.Second)
	if err != nil {
		return nil, err
	}
	keyBytes := make([]byte, 16)
	rand.Read(keyBytes)
	key := base64.StdEncoding.EncodeToString(keyBytes)
	var req strings.Builder
	fmt.Fprintf(&req, "GET %s HTTP/1.1\r\n", path)
	fmt.Fprintf(&req, "Host: %s\r\n", u.Host)
	req.WriteString("Upgrade: websocket\r\n")
	req.WriteString("Connection: Upgrade\r\n")
	fmt.Fprintf(&req, "Sec-WebSocket-Key: %s\r\n", key)
	req.WriteString("Sec-WebSocket-Version: 13\r\n")
	fmt.Fprintf(&req, "Sec-WebSocket-Protocol: %s\r\n", Subprotocol)
	req.WriteString("\r\n")
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte(req.String())); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	tp := textproto.NewReader(br)
	status, err := tp.ReadLine()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !strings.Contains(status, "101") {
		conn.Close()
		return nil, fmt.Errorf("webgateway: handshake refused: %s", status)
	}
	hdr, err := tp.ReadMIMEHeader()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if got, want := hdr.Get("Sec-Websocket-Accept"), wsAccept(key); got != want {
		conn.Close()
		return nil, fmt.Errorf("webgateway: bad Sec-WebSocket-Accept %q", got)
	}
	conn.SetDeadline(time.Time{})
	return &WSClient{conn: conn, br: br}, nil
}

// appendMaskedFrame appends one final, masked client frame to dst.
func appendMaskedFrame(dst []byte, opcode byte, payload []byte) []byte {
	dst = append(dst, 0x80|opcode)
	switch n := len(payload); {
	case n <= 125:
		dst = append(dst, 0x80|byte(n))
	case n <= 1<<16-1:
		dst = append(dst, 0x80|126, byte(n>>8), byte(n))
	default:
		dst = append(dst, 0x80|127, byte(uint64(n)>>56), byte(uint64(n)>>48),
			byte(uint64(n)>>40), byte(uint64(n)>>32), byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
	var mask [4]byte
	rand.Read(mask[:])
	dst = append(dst, mask[:]...)
	for i, b := range payload {
		dst = append(dst, b^mask[i%4])
	}
	return dst
}

func (c *WSClient) write(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	//lint:allow lockblock wmu exists solely to serialize frame writes on this conn; it guards no other state
	_, err := c.conn.Write(appendMaskedFrame(nil, opcode, payload))
	return err
}

// WriteJSON sends v as one masked text message.
func (c *WSClient) WriteJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return c.write(opText, b)
}

// ReadMessage returns the next application message's payload, answering
// server pings along the way. Set a deadline first (SetReadDeadline)
// when a bounded wait is wanted.
func (c *WSClient) ReadMessage() ([]byte, error) {
	_, payload, err := readWSMessage(c.br, false, func(opcode byte, p []byte) error {
		if opcode == opPing {
			return c.write(opPong, p)
		}
		return nil
	})
	return payload, err
}

// SetReadDeadline bounds subsequent ReadMessage calls.
func (c *WSClient) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// Close sends a close frame (best-effort) and closes the connection.
func (c *WSClient) Close() error {
	c.write(opClose, nil)
	return c.conn.Close()
}

// Kill closes the TCP connection with no close handshake — a browser
// losing its network, for resume tests.
func (c *WSClient) Kill() error { return c.conn.Close() }

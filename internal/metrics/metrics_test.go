package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "operations")
	g := r.Gauge("test_depth", "queue depth")
	c.Add(41)
	c.Inc()
	g.Set(2.5)

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total operations\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 42\n",
		"# TYPE test_depth gauge\n",
		"test_depth 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_drops_total", "drops by peer", "peer")
	v.With("10.0.0.1:9001").Add(3)
	v.With(`weird"peer\n`).Inc()

	out := render(t, r)
	if !strings.Contains(out, `test_drops_total{peer="10.0.0.1:9001"} 3`) {
		t.Errorf("labeled sample missing:\n%s", out)
	}
	if !strings.Contains(out, `test_drops_total{peer="weird\"peer\\n"} 1`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}

	// Same label values return the same child.
	if v.With("10.0.0.1:9001").Value() != 3 {
		t.Error("With did not return the existing child")
	}
	v.Reset()
	if v.With("10.0.0.1:9001").Value() != 0 {
		t.Error("Reset did not clear children")
	}
}

func TestHistogramObserveAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}

	counts, sum, total := h.Snapshot()
	if want := []uint64{2, 1, 1, 1}; len(counts) != 4 || counts[0] != want[0] || counts[1] != want[1] || counts[2] != want[2] || counts[3] != want[3] {
		t.Fatalf("bucket counts = %v, want %v", counts, want)
	}
	if total != 5 || math.Abs(sum-102.6) > 1e-9 {
		t.Fatalf("total=%d sum=%g", total, sum)
	}

	out := render(t, r)
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_sum 102.6`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryValueIsInclusive(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	counts, _, _ := h.Snapshot()
	if counts[0] != 1 {
		t.Fatalf("boundary observation landed in bucket %v", counts)
	}
}

func TestHistogramSetSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_commit_seconds", "commit latency", []float64{0.001, 0.01})
	h.SetSnapshot([]uint64{5, 2, 1}, 0.25)
	counts, sum, total := h.Snapshot()
	if counts[0] != 5 || counts[2] != 1 || total != 8 || sum != 0.25 {
		t.Fatalf("snapshot = %v sum=%g total=%d", counts, sum, total)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	// 100 observations uniform in (0,10], 100 in (10,20].
	for i := 0; i < 100; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 10 {
		t.Errorf("p50 = %g, want within first bucket", q)
	}
	if q := h.Quantile(0.99); q <= 10 || q > 20 {
		t.Errorf("p99 = %g, want within second bucket", q)
	}
	empty := newHistogram([]float64{1})
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
}

func TestOnGatherRunsBeforeEncoding(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_fresh", "refreshed at scrape")
	r.OnGather(func() { g.Set(7) })
	if out := render(t, r); !strings.Contains(out, "test_fresh 7\n") {
		t.Errorf("OnGather hook did not run before encoding:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("test_dup", "x")
	expectPanic("duplicate", func() { r.Gauge("test_dup", "y") })
	expectPanic("bad name", func() { r.Counter("bad-name", "x") })
	expectPanic("bad label", func() { r.CounterVec("test_l", "x", "bad-label") })
	expectPanic("empty bounds", func() { r.Histogram("test_h", "x", nil) })
	expectPanic("unsorted bounds", func() { r.Histogram("test_h2", "x", []float64{2, 1}) })
	expectPanic("label arity", func() {
		v := r.CounterVec("test_arity", "x", "a", "b")
		v.With("only-one")
	})
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "x")
	h := r.Histogram("test_conc_seconds", "x", []float64{0.5})
	v := r.CounterVec("test_conc_labeled", "x", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.25)
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if v.With("a").Value() != 8000 {
		t.Errorf("vec counter = %d, want 8000", v.With("a").Value())
	}
}

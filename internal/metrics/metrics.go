package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type as exposed in the # TYPE line.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration happens at startup (duplicate or
// malformed registrations panic — they are wiring bugs, not runtime
// conditions); instruments are then safe for concurrent use and cost an
// atomic op or two on the hot path.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	onGather []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnGather registers a hook run at the start of every WriteText call,
// before any family is encoded. Snapshot-fed sources (a node's Stats()
// seam) use it to refresh their gauges and counters so a scrape always
// reads one coherent snapshot per source.
func (r *Registry) OnGather(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onGather = append(r.onGather, f)
}

// family is one named metric with zero or more label dimensions. The
// unlabeled case is a single child keyed by the empty string.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram families only

	mu       sync.Mutex
	order    []string // child insertion order, for stable exposition
	children map[string]child
}

type child struct {
	labelValues []string
	metric      any // *Counter, *Gauge, or *Histogram
}

func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	if kind == KindHistogram {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("metrics: histogram %s needs at least one bucket bound", name))
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("metrics: histogram %s bucket bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %s", name))
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]child),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// childKey joins label values with an unprintable separator; label
// values themselves may contain anything.
func childKey(values []string) string {
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x00"
		}
		key += v
	}
	return key
}

func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = child{labelValues: append([]string(nil), values...), metric: make()}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c.metric
}

// reset drops every child (a Vec whose members come and go — per-peer
// gauges — clears and repopulates each scrape).
func (f *family) reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.children = make(map[string]child)
	f.order = nil
}

// snapshotChildren copies the child list for encoding without holding
// the family lock across writes.
func (f *family) snapshotChildren() []child {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]child, 0, len(f.order))
	for _, key := range f.order {
		out = append(out, f.children[key])
	}
	return out
}

// --- Counter ---------------------------------------------------------------

// Counter is a monotonically non-decreasing integer metric. Snapshot-fed
// counters (values copied from another subsystem's cumulative totals)
// use Set; direct instrumentation uses Inc/Add.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Set overwrites the value. The caller owns monotonicity: it is meant
// for mirroring an already-cumulative total from another subsystem's
// snapshot, not for general use.
func (c *Counter) Set(v uint64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers (and returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// With returns the child counter for the given label values, creating
// it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// Reset drops every child; the next With recreates them. Use for label
// sets whose members churn (per-peer metrics).
func (v *CounterVec) Reset() { v.f.reset() }

// --- Gauge -----------------------------------------------------------------

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (atomic, CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (and returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// Reset drops every child; the next With recreates them.
func (v *GaugeVec) Reset() { v.f.reset() }

// --- Histogram -------------------------------------------------------------

// Histogram is a fixed-bucket distribution: bounds are the inclusive
// upper limits of each bucket, with an implicit +Inf overflow bucket.
// Observe is lock-free (one binary search, two atomic ops).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	sum    atomic.Uint64   // float64 bits, CAS-added
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// SetSnapshot overwrites the per-bucket counts (and sum) wholesale,
// for re-exposing a histogram another subsystem already maintains in
// native bucket form (the store's commit-latency array). counts must
// have len(bounds)+1 entries, the last the overflow bucket.
func (h *Histogram) SetSnapshot(counts []uint64, sum float64) {
	if len(counts) != len(h.counts) {
		panic(fmt.Sprintf("metrics: SetSnapshot with %d buckets, histogram has %d", len(counts), len(h.counts)))
	}
	for i, c := range counts {
		h.counts[i].Store(c)
	}
	h.sum.Store(math.Float64bits(sum))
}

// Snapshot returns per-bucket counts (overflow last), the value sum,
// and the total observation count.
func (h *Histogram) Snapshot() (counts []uint64, sum float64, total uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, math.Float64frombits(h.sum.Load()), total
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket the rank falls in; the overflow
// bucket reports its lower bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, total := h.Snapshot()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // overflow: report the last bound
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - seen) / float64(c)
			return lo + frac*(h.bounds[i]-lo)
		}
		seen += float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// Histogram registers (and returns) an unlabeled histogram with the
// given ascending bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, bounds)
	return f.child(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// HistogramVec is a histogram family with label dimensions; every child
// shares the family's bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labels, bounds)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// DurationBuckets are default latency bucket bounds in seconds, 1ms to
// 60s — wide enough for the notification hot path from in-process
// dissemination to multi-minute polling tails (the +Inf overflow
// catches the rest).
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

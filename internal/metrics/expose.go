package metrics

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type for the text exposition format
// WriteText produces.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, then one sample line per child (per bucket, for histograms).
// OnGather hooks run first, so snapshot-fed metrics are fresh.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.onGather...)
	families := append([]*family{}, r.families...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
	var b strings.Builder
	for _, f := range families {
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, c := range f.snapshotChildren() {
			switch m := c.metric.(type) {
			case *Counter:
				writeSample(&b, f.name, "", f.labels, c.labelValues, "", "", formatUint(m.Value()))
			case *Gauge:
				writeSample(&b, f.name, "", f.labels, c.labelValues, "", "", formatFloat(m.Value()))
			case *Histogram:
				counts, sum, total := m.Snapshot()
				var cum uint64
				for i, bound := range f.bounds {
					cum += counts[i]
					writeSample(&b, f.name, "_bucket", f.labels, c.labelValues, "le", formatFloat(bound), formatUint(cum))
				}
				writeSample(&b, f.name, "_bucket", f.labels, c.labelValues, "le", "+Inf", formatUint(total))
				writeSample(&b, f.name, "_sum", f.labels, c.labelValues, "", "", formatFloat(sum))
				writeSample(&b, f.name, "_count", f.labels, c.labelValues, "", "", formatUint(total))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSample appends one sample line: name[suffix]{labels...} value.
func writeSample(b *strings.Builder, name, suffix string, labels, values []string, extraLabel, extraValue, sample string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || extraLabel != "" {
		b.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraLabel != "" {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(extraLabel)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extraValue))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(sample)
	b.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders like Prometheus clients: shortest round-trip
// representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in # HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double quote, and newline in label
// values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

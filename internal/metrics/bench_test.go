// Registry hot-path and scrape-cost benchmarks, recorded in
// BENCH_obs.json (make bench). The numbers to watch: counter increment
// and histogram observe must stay single-digit nanoseconds — negligible
// next to the ~30ns client-edge notify encode — and a full /metrics
// render at 1k series must stay far below any sane scrape interval.
package metrics

import (
	"fmt"
	"io"
	"testing"
	"time"
)

func BenchmarkObsCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_ops_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_labeled_total", "x", "peer")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("10.0.0.1:9001").Inc()
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_latency_seconds", "x", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

// BenchmarkObsRender1kSeries renders a registry holding ~1000 series
// (mixed counters, gauges, and histogram buckets) to io.Discard — the
// marginal cost a scrape adds to a serving node.
func BenchmarkObsRender1kSeries(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 300; i++ {
		c := r.Counter(fmt.Sprintf("bench_c%d_total", i), "series")
		c.Add(uint64(i) * 17)
	}
	for i := 0; i < 300; i++ {
		g := r.Gauge(fmt.Sprintf("bench_g%d", i), "series")
		g.Set(float64(i) * 1.5)
	}
	// 20 histograms x 16 buckets + sum + count + 40 labeled gauges ≈ 400 series.
	for i := 0; i < 20; i++ {
		h := r.Histogram(fmt.Sprintf("bench_h%d_seconds", i), "series", DurationBuckets)
		for j := 0; j < 64; j++ {
			h.Observe(time.Duration(j * int(time.Millisecond)).Seconds())
		}
	}
	v := r.GaugeVec("bench_peer_depth", "series", "peer")
	for i := 0; i < 40; i++ {
		v.With(fmt.Sprintf("10.0.0.%d:9001", i)).Set(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Package metrics is Corona's dependency-free metrics registry and
// Prometheus exposition encoder — the admin plane's /metrics endpoint is
// a Registry rendered through WriteText.
//
// # Instruments
//
// Three instrument types, each available unlabeled or as a labeled
// family (Vec) whose children are created on first With call:
//
//   - Counter: monotonically non-decreasing uint64. Inc/Add for direct
//     instrumentation; Set for mirroring an already-cumulative total
//     from another subsystem's snapshot (the caller owns monotonicity).
//   - Gauge: float64 that moves both ways (Set/Add).
//   - Histogram: fixed ascending bucket upper bounds plus an implicit
//     +Inf overflow bucket. Observe is lock-free: one binary search and
//     two atomic ops (~tens of ns — see BENCH_obs.json). SetSnapshot
//     re-exposes a histogram another subsystem maintains in native
//     bucket form (the store's commit-latency array); Quantile gives a
//     linear-interpolation percentile estimate for reports.
//
// Registration panics on duplicate or malformed names: metric wiring is
// startup code and a bad name is a bug, not a runtime condition. After
// registration every instrument is safe for concurrent use.
//
// Snapshot-fed sources register an OnGather hook, run at the start of
// every WriteText call, to refresh their instruments from one coherent
// Stats() snapshot — a scrape never observes half-updated families from
// a single source.
//
// # Exposition subset
//
// WriteText emits text format version 0.0.4, restricted to the subset
// Prometheus-compatible scrapers require:
//
//   - one "# HELP name text" and "# TYPE name counter|gauge|histogram"
//     pair per family, immediately followed by its samples;
//   - counter and gauge samples as "name{label="value",...} value";
//   - histograms as cumulative "name_bucket{...,le="bound"}" lines
//     (ending in le="+Inf"), plus "name_sum" and "name_count";
//   - label values escaped per the spec (backslash, double quote,
//     newline), HELP text escaped (backslash, newline);
//   - floats in shortest round-trip form, +Inf/-Inf/NaN spelled out.
//
// Deliberately unsupported: timestamps on samples, untyped metrics,
// summaries (quantile sketches — histograms cover the need), the
// OpenMetrics superset (exemplars, _created lines), and protobuf
// exposition. Content-Type for HTTP responses is
// "text/plain; version=0.0.4; charset=utf-8".
//
// Families render in registration order and children in creation order,
// so consecutive scrapes diff cleanly; Prometheus itself imposes no
// ordering requirement beyond HELP/TYPE adjacency.
package metrics

package core_test

import (
	"fmt"
	"testing"
	"time"

	"corona/internal/core"
)

// TestDelegateShardingKeepsOwnerFanOutSmall is the hot-channel scale-out
// regression: one channel with 10,000 subscribers and delegation enabled.
// Once the owner has recruited delegates, an update must leave the owner
// in O(delegates + entry nodes) messages — not O(subscribers) — while
// every subscriber is still notified exactly once per version, in order,
// and exactly one node owns the channel.
func TestDelegateShardingKeepsOwnerFanOutSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-subscriber simulation")
	}
	const (
		nodeCount   = 24
		subscribers = 10000
		threshold   = 1000
	)
	tc := newTestCloud(t, nodeCount, func(i int, cfg *core.Config) {
		// Replication re-pushes the full subscriber set on every add; at
		// this scale that is O(n²) message volume the test does not need.
		cfg.OwnerReplicas = 0
		cfg.DelegateThreshold = threshold
	})
	url := "http://feeds.example.net/flashcrowd.xml"
	for i := 0; i < subscribers; i++ {
		tc.nodes[i%nodeCount].Subscribe(fmt.Sprintf("u%05d", i), url)
		if i%500 == 499 {
			tc.sim.RunFor(time.Second) // drain routed subscribes as we go
		}
	}
	// Land the tail, then run past a maintenance round (20 min in this
	// cloud) so the owner recruits its delegates.
	tc.sim.RunFor(30 * time.Minute)

	owner := tc.ownerOf(url)
	if owner == nil {
		t.Fatal("no owner")
	}
	info, ok := owner.Channel(url)
	if !ok || !info.Owner || info.Subscribers != subscribers {
		t.Fatalf("owner state: %+v", info)
	}
	d := info.Delegates
	if d < 2 {
		t.Fatalf("owner recruited %d delegates, want ≥2 (threshold %d, %d subscribers)", d, threshold, subscribers)
	}
	owned := 0
	for _, n := range tc.nodes {
		owned += n.Stats().ChannelsOwned
	}
	if owned != 1 {
		t.Fatalf("%d channels owned cloud-wide, want exactly 1", owned)
	}

	// Host the feed only now, so every detection below happens with
	// sharding already in place and the stats window measures sharded
	// fan-out alone.
	base := owner.Stats()
	tc.host(url, time.Hour)
	tc.sim.RunFor(2*time.Hour + 30*time.Minute)

	// Every subscriber saw the same number of versions, strictly
	// increasing — exactly once per version, no loss, no reorder.
	tc.notify.mu.Lock()
	versions := -1
	for i := 0; i < subscribers; i++ {
		got := tc.notify.perUser[fmt.Sprintf("u%05d", i)]
		if versions == -1 {
			versions = len(got)
		} else if len(got) != versions {
			tc.notify.mu.Unlock()
			t.Fatalf("client u%05d saw %d versions, others saw %d", i, len(got), versions)
		}
		for j := 1; j < len(got); j++ {
			if got[j] <= got[j-1] {
				tc.notify.mu.Unlock()
				t.Fatalf("client u%05d versions not strictly increasing: %v", i, got)
			}
		}
	}
	total := tc.notify.counts[url]
	tc.notify.mu.Unlock()
	if versions < 2 {
		t.Fatalf("only %d versions delivered, want ≥2", versions)
	}
	if total != versions*subscribers {
		t.Fatalf("%d notifications delivered, want exactly %d×%d", total, versions, subscribers)
	}

	// The owner's message economy: per update it sends one delegateNotify
	// per delegate plus at most one notifyBatch per entry node of its own
	// slot — never anything per subscriber.
	st := owner.Stats()
	ownerMsgs := (st.NotifyBatchesSent - base.NotifyBatchesSent) + (st.DelegateUpdates - base.DelegateUpdates)
	if limit := uint64(versions) * uint64(d+nodeCount); ownerMsgs > limit {
		t.Fatalf("owner emitted %d fan-out messages for %d updates, want ≤ %d (delegates+entry nodes per update)",
			ownerMsgs, versions, limit)
	}
	if st.DelegateUpdates-base.DelegateUpdates == 0 {
		t.Fatal("owner never disseminated through its delegates")
	}
	// The owner notified only its own shard's subscribers directly.
	ownerNotified := st.NotificationsSent - base.NotificationsSent
	if limit := uint64(versions) * uint64(subscribers) / 2; ownerNotified >= limit {
		t.Fatalf("owner notified %d subscribers itself across %d updates — fan-out not sharded (limit %d)",
			ownerNotified, versions, limit)
	}
	// Cloud-wide accounting still covers every delivery exactly once.
	var cloudNotified uint64
	for _, n := range tc.nodes {
		cloudNotified += n.Stats().NotificationsSent
	}
	cloudNotified -= base.NotificationsSent // owner's pre-window fan-outs (none: feed hosted after)
	if cloudNotified != uint64(versions*subscribers) {
		t.Fatalf("cloud-wide NotificationsSent %d, want %d", cloudNotified, versions*subscribers)
	}
}

// TestDelegateFaultFallsBackToOwner pins the fault path: when a recruited
// delegate dies, the owner re-partitions across the survivors and updates
// keep reaching every subscriber.
func TestDelegateFaultFallsBackToOwner(t *testing.T) {
	const clients = 60
	tc := newTestCloud(t, 16, func(i int, cfg *core.Config) {
		cfg.OwnerReplicas = 0
		cfg.DelegateThreshold = 10
	})
	url := "http://feeds.example.net/fragile.xml"
	// One shared entry node keeps the delivery path independent of the
	// crash below (a dead entry node is the lease sweep's job, not the
	// delegation machinery's).
	entry := tc.nodes[0]
	for i := 0; i < clients; i++ {
		entry.Subscribe(fmt.Sprintf("c%02d", i), url)
	}
	tc.sim.RunFor(25 * time.Minute) // one maintenance round: recruit

	owner := tc.ownerOf(url)
	if owner == nil {
		t.Fatal("no owner")
	}
	info, _ := owner.Channel(url)
	if info.Delegates < 2 {
		t.Fatalf("owner recruited %d delegates, want ≥2", info.Delegates)
	}

	// Find a delegate (a non-owner, non-entry node carrying a partition)
	// and crash it.
	var delegate *core.Node
	for _, n := range tc.nodes {
		if n == owner || n == entry {
			continue
		}
		if ci, ok := n.Channel(url); ok && ci.DelegateFor > 0 {
			delegate = n
			break
		}
	}
	if delegate == nil {
		t.Fatal("no delegate holds a partition")
	}
	tc.net.Crash(delegate.Self().Endpoint)
	delegate.Stop()

	// Run well past fault detection and several update cycles; updates
	// detected after the repair must reach every client.
	tc.host(url, 30*time.Minute)
	tc.sim.RunFor(3 * time.Hour)

	tc.notify.mu.Lock()
	var maxVersion uint64
	for i := 0; i < clients; i++ {
		vs := tc.notify.perUser[fmt.Sprintf("c%02d", i)]
		if len(vs) > 0 && vs[len(vs)-1] > maxVersion {
			maxVersion = vs[len(vs)-1]
		}
	}
	for i := 0; i < clients; i++ {
		who := fmt.Sprintf("c%02d", i)
		vs := tc.notify.perUser[who]
		if len(vs) == 0 || vs[len(vs)-1] != maxVersion {
			tc.notify.mu.Unlock()
			t.Fatalf("client %s stalled at %v after delegate crash (cloud reached v%d)", who, vs, maxVersion)
		}
		for j := 1; j < len(vs); j++ {
			if vs[j] <= vs[j-1] {
				tc.notify.mu.Unlock()
				t.Fatalf("client %s versions not strictly increasing: %v", who, vs)
			}
		}
	}
	tc.notify.mu.Unlock()
	if maxVersion < 2 {
		t.Fatalf("cloud only reached version %d", maxVersion)
	}
}

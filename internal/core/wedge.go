package core

import (
	"corona/internal/ids"
	"corona/internal/pastry"
)

// sendToWedge delivers a wedge-scoped operation (poll control or update
// dissemination) to every member of the channel's level-l wedge. When
// this node belongs to the wedge it runs the DAG broadcast directly;
// otherwise it forwards the operation along prefix contacts toward the
// wedge (§3.3's owner-rooted control path generalized across digit
// boundaries). It reports false when no path into the wedge exists — the
// wedge is empty and the channel is effectively an orphan (§4).
func (n *Node) sendToWedge(channelID ids.ID, url string, level int, innerType string, pollCtl *pollCtlMsg, update *updateMsg) bool {
	base := n.overlay.Base()
	self := n.Self().ID
	if base.InWedge(self, channelID, level) {
		switch innerType {
		case msgPollCtl:
			n.overlay.Broadcast(level, msgPollCtl, pollCtl)
		case msgUpdate:
			n.overlay.Broadcast(level, msgUpdate, update)
		}
		return true
	}
	// Hop one digit closer to the channel's prefix region. True means
	// "handed to the transport", not "delivered": under async transports
	// a dead contact surfaces through the fault callback and the next
	// maintenance round retries with a repaired table.
	p := base.CommonPrefix(self, channelID)
	contact := n.overlay.RoutingEntry(p, base.Digit(channelID, p))
	if contact.IsZero() {
		return false
	}
	n.overlay.SendDirect(contact, msgWedgeFwd, &wedgeFwdMsg{
		URL:       url,
		Level:     level,
		InnerType: innerType,
		PollCtl:   pollCtl,
		Update:    update,
	})
	return true
}

// handleWedgeFwd continues a delegated wedge delivery: wedge members
// perform the broadcast, closer non-members forward again, dead ends drop
// the message (next maintenance round retries).
func (n *Node) handleWedgeFwd(msg pastry.Message) {
	p, ok := msg.Payload.(*wedgeFwdMsg)
	if !ok {
		return
	}
	id := ids.HashString(p.URL)
	n.sendToWedge(id, p.URL, p.Level, p.InnerType, p.PollCtl, p.Update)
}

// wedgeReachable reports whether this node can deliver into the channel's
// level wedge: it is a member, or it knows a prefix contact one digit
// closer. Owners use it to classify orphans (§4: "there are no nodes with
// enough matching prefix digits in the system").
func (n *Node) wedgeReachable(channelID ids.ID, level int) bool {
	base := n.overlay.Base()
	self := n.Self().ID
	if base.InWedge(self, channelID, level) {
		return true
	}
	p := base.CommonPrefix(self, channelID)
	return !n.overlay.RoutingEntry(p, base.Digit(channelID, p)).IsZero()
}

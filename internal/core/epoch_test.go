package core_test

import (
	"fmt"
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/pastry"
	"corona/internal/store"
)

// TestOwnerEpochHandshakeAfterRestart is the split-brain regression the
// owner-epoch handshake exists for. An owner journaling through a real
// store is hard-killed; during the outage an interim owner is promoted
// (and registers a brand-new subscriber); the old owner then restarts
// from its data directory while the interim still answers polls — the
// documented dual-owner window. The handshake must leave exactly one
// owner within a maintain pass, the restarted root must hold the union
// of the subscriber sets (the interim's new client survives the merge),
// and every client's notification versions must stay monotonic across
// the whole episode.
//
// Before the epoch handshake this test fails its exactly-one-owner
// assertion: the interim's handleReplicate discarded pushes from the
// restarted owner ("we are primary") and kept its isOwner flag until an
// IsRoot self-check that never ran.
func TestOwnerEpochHandshakeAfterRestart(t *testing.T) {
	url := "http://feeds.example.net/epoch.xml"
	tc := newTestCloud(t, 16, nil)
	tc.host(url, 10*time.Minute)

	owner := tc.ownerOf(url)
	if owner == nil {
		t.Fatal("no owner")
	}
	dir := t.TempDir()
	st, _, err := store.Open(store.Options{Dir: dir, CommitWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	owner.SetStateSink(st)

	// Alice enters through a node that survives the outage, so her
	// notifications flow throughout.
	var entry *core.Node
	for _, n := range tc.nodes {
		if n != owner {
			entry = n
			break
		}
	}
	entry.Subscribe("alice", url)
	tc.sim.RunFor(time.Hour)
	if live, _ := owner.Channel(url); !live.Owner || live.Subscribers != 1 {
		t.Fatalf("pre-crash owner state: %+v", live)
	}

	// Hard-kill the owner: protocol stops, store is abandoned unflushed,
	// the network drops it.
	owner.Stop()
	st.Abort()
	tc.net.Crash(owner.Self().Endpoint)

	// Ordinary protocol traffic (wedge updates, replication) hits the
	// dead owner, the replica detects the fault, evicts it, and promotes
	// itself — the interim owner.
	var interim *core.Node
	for attempt := 0; attempt < 30 && interim == nil; attempt++ {
		tc.sim.RunFor(10 * time.Minute)
		for _, n := range tc.nodes {
			if n == owner {
				continue
			}
			if info, ok := n.Channel(url); ok && info.Owner {
				interim = n
			}
		}
	}
	if interim == nil {
		t.Fatal("no interim owner promoted during the outage")
	}
	// A brand-new subscriber registers at the interim during the outage;
	// the merge must not lose it. (Retry past synchronous routing errors
	// toward the dead owner, which the ring still gossips.)
	for try := 0; try < 5; try++ {
		if interim.Subscribe("bob", url) == nil {
			break
		}
		// Synchronous routing error: the first hop was the dead owner
		// (leaf-set repair gossip keeps resurrecting it); the failed send
		// evicted it, so the immediate retry routes to the live root.
	}
	tc.sim.RunFor(time.Minute)
	if info, ok := interim.Channel(url); !ok || info.Subscribers != 2 {
		t.Fatalf("bob never registered at the interim owner: %+v", info)
	}
	// The interim answers polls: alice keeps receiving fresh versions.
	tc.sim.RunFor(time.Hour)
	tc.notify.mu.Lock()
	aliceDuringOutage := len(tc.notify.perUser["alice"])
	tc.notify.mu.Unlock()
	if aliceDuringOutage == 0 {
		t.Fatal("interim owner never notified the recovered subscriber")
	}

	// Restart the owner from its data directory: a fresh node incarnation
	// with the same overlay identity rejoins the ring through a live
	// seed, recovers the durable image, and reconciles — while the
	// interim still flies its isOwner flag.
	st2, recovered, err := store.Open(store.Options{Dir: dir, CommitWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	tc.net.Restart(owner.Self().Endpoint)
	var overlay2 *pastry.Node
	endpoint := tc.net.Attach(owner.Self().Endpoint, func(m pastry.Message) {
		if overlay2 != nil {
			overlay2.Deliver(m)
		}
	})
	overlay2 = pastry.NewNode(pastry.DefaultConfig(), owner.Self(), endpoint, tc.sim)
	cfg := core.DefaultConfig()
	cfg.NodeCount = 16
	cfg.PollInterval = 10 * time.Minute
	cfg.MaintenanceInterval = 20 * time.Minute
	cfg.CountSubscribersOnly = false
	cfg.OwnerReplicas = 2
	cfg.Seed = 4242
	fetcher := &core.OriginFetcher{Origin: tc.origin, Clock: tc.sim}
	restarted := core.NewNode(cfg, overlay2, tc.sim, fetcher, tc.notify, tc.sink)
	restarted.SetStateSink(st2)
	restarted.RestoreChannels(recovered)
	if err := overlay2.Join(entry.Self()); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	tc.sim.RunFor(time.Minute)
	if !overlay2.Joined() {
		t.Fatal("restarted node never completed the rejoin")
	}
	restarted.Start()
	restarted.ReconcileRecovered()

	// One maintain pass (which spans two poll rounds) must resolve the
	// handshake: exactly one owner across the live cloud.
	tc.sim.RunFor(20 * time.Minute)
	live := []*core.Node{restarted}
	for _, n := range tc.nodes {
		if n != owner {
			live = append(live, n)
		}
	}
	var owners []*core.Node
	for _, n := range live {
		if info, ok := n.Channel(url); ok && info.Owner {
			owners = append(owners, n)
		}
	}
	if len(owners) != 1 {
		for _, n := range owners {
			info, _ := n.Channel(url)
			t.Logf("owner claim: node %v epoch=%d subs=%d", n.Self(), info.OwnerEpoch, info.Subscribers)
		}
		t.Fatalf("%d owners survive the epoch handshake, want exactly 1", len(owners))
	}
	if owners[0] != restarted {
		t.Fatalf("surviving owner is %v, want the restarted root %v", owners[0].Self(), restarted.Self())
	}
	info, _ := restarted.Channel(url)
	if info.Subscribers != 2 {
		t.Fatalf("merged owner holds %d subscribers, want 2 (alice recovered + bob handed off)", info.Subscribers)
	}
	iinfo, _ := interim.Channel(url)
	if iinfo.Owner {
		t.Fatalf("interim owner still flies isOwner after the handshake: %+v", iinfo)
	}
	if info.OwnerEpoch < iinfo.OwnerEpoch {
		t.Fatalf("surviving owner epoch %d below demoted claim %d", info.OwnerEpoch, iinfo.OwnerEpoch)
	}

	// The merged owner keeps answering polls, and nobody's version stream
	// ever went backwards — across crash, interim, and merge.
	tc.sim.RunFor(time.Hour)
	tc.notify.mu.Lock()
	defer tc.notify.mu.Unlock()
	if got := len(tc.notify.perUser["alice"]); got <= aliceDuringOutage {
		t.Fatalf("no notifications after the merge (%d then, %d now)", aliceDuringOutage, got)
	}
	for client, versions := range tc.notify.perUser {
		for i := 1; i < len(versions); i++ {
			if versions[i] < versions[i-1] {
				t.Fatalf("%s saw version %d after %d (index %d of %v)", client, versions[i], versions[i-1], i, versions)
			}
		}
	}
}

// TestStaleOwnerDemotesOnCounterPush covers the other arm of the
// handshake: a node restored from a durable image claiming ownership at
// a LOWER epoch than the live owner's must be demoted by the live
// owner's counter-push when its stale claim arrives — stale-epoch
// replication is rejected on receipt, answered, and the claimant
// surrenders, instead of two owners coexisting until a self-check.
func TestStaleOwnerDemotesOnCounterPush(t *testing.T) {
	url := "http://feeds.example.net/stale.xml"
	tc := newTestCloud(t, 16, nil)
	tc.host(url, time.Hour)
	owner := tc.ownerOf(url)
	owner.Subscribe("alice", url)
	tc.sim.RunFor(time.Minute)
	before, _ := owner.Channel(url)
	if !before.Owner {
		t.Fatalf("owner state: %+v", before)
	}

	// A non-root node restores an image that claims ownership at epoch 0
	// (strictly below the live owner's) and pushes its claim on
	// reconcile... except reconcile hands off non-root claims. Force the
	// dual-claim shape the ROADMAP describes instead: restore an image
	// claiming ownership into a node, make it believe it owns, and let
	// its replication push meet the live owner.
	var stale *core.Node
	for _, n := range tc.nodes {
		if n != owner {
			stale = n
			break
		}
	}
	entry := stale.Self()
	stale.RestoreChannels([]store.Channel{{
		URL: url, Owner: true, Level: 1, OwnerEpoch: 0, SizeBytes: 4096,
		Subs: []store.Sub{{Client: "mallory", EntryID: entry.ID, EntryEndpoint: entry.Endpoint}},
	}})
	stale.ReconcileRecovered()
	tc.sim.RunFor(30 * time.Minute)

	if info, ok := stale.Channel(url); ok && info.Owner {
		t.Fatalf("stale claimant still owns after reconcile: %+v", info)
	}
	after, _ := owner.Channel(url)
	if !after.Owner {
		t.Fatalf("live owner lost ownership to a stale claim: %+v", after)
	}
	// The stale node's subscriber was handed off, not dropped.
	if after.Subscribers != 2 {
		t.Fatalf("live owner holds %d subscribers, want 2 (alice + handed-off mallory)", after.Subscribers)
	}
}

// TestLeaseRefreshRepointsEntry pins the failover half of entry-node
// leases: a lease refresh arriving through a different node re-points
// the subscriber's entry record at the owner — durably and on the
// replicas — with no Subscribe call.
func TestLeaseRefreshRepointsEntry(t *testing.T) {
	url := "http://feeds.example.net/lease.xml"
	tc := newTestCloud(t, 8, func(i int, cfg *core.Config) {
		cfg.LeaseTTL = 2 * time.Hour
	})
	tc.host(url, 48*time.Hour)
	owner := tc.ownerOf(url)
	dir := t.TempDir()
	st, _, err := store.Open(store.Options{Dir: dir, CommitWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	owner.SetStateSink(st)

	var first, second *core.Node
	for _, n := range tc.nodes {
		if n == owner {
			continue
		}
		if first == nil {
			first = n
		} else if second == nil {
			second = n
			break
		}
	}
	first.Subscribe("alice", url)
	tc.sim.RunFor(time.Second)

	// The client fails over to `second`, which heartbeats for it — no
	// Subscribe replay anywhere.
	second.RefreshLeases("alice", []string{url})
	tc.sim.RunFor(time.Second)

	var image *store.Channel
	for _, ch := range st.Channels() {
		if ch.URL == url {
			c := ch
			image = &c
		}
	}
	if image == nil || len(image.Subs) != 1 {
		t.Fatalf("durable image = %+v", image)
	}
	if got, want := image.Subs[0].EntryEndpoint, second.Self().Endpoint; got != want {
		t.Fatalf("durable entry = %s, want lease-refreshed entry %s", got, want)
	}
	if len(image.Leases) != 1 || image.Leases[0].Client != "alice" {
		t.Fatalf("durable leases = %+v, want alice marked", image.Leases)
	}
	if got := owner.Stats().LeaseRefreshes; got == 0 {
		t.Fatal("owner counted no lease refreshes")
	}
}

// TestLeaseSweepReroutesDeadEntry pins the proactive half: when a
// subscriber's entry node dies and nobody heartbeats for it, the owner's
// maintain pass re-points the entry record at a surviving node, and
// notifications resume without the client doing anything at all.
func TestLeaseSweepReroutesDeadEntry(t *testing.T) {
	url := "http://feeds.example.net/sweep.xml"
	tc := newTestCloud(t, 8, func(i int, cfg *core.Config) {
		cfg.LeaseTTL = 30 * time.Minute
	})
	tc.host(url, 10*time.Minute)
	owner := tc.ownerOf(url)
	dir := t.TempDir()
	st, _, err := store.Open(store.Options{Dir: dir, CommitWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	owner.SetStateSink(st)

	var entryNode *core.Node
	for _, n := range tc.nodes {
		if n != owner {
			entryNode = n
			break
		}
	}
	entryNode.Subscribe("alice", url)
	tc.sim.RunFor(30 * time.Minute)
	tc.notify.mu.Lock()
	beforeKill := len(tc.notify.perUser["alice"])
	tc.notify.mu.Unlock()
	if beforeKill == 0 {
		t.Fatal("no notifications before the entry-node kill")
	}

	// Hard-kill alice's entry node. Her client never re-subscribes and
	// nothing heartbeats for her: only the owner-side lease machinery can
	// save her notifications.
	entryNode.Stop()
	tc.net.Crash(entryNode.Self().Endpoint)
	tc.sim.RunFor(2 * time.Hour) // fault marks the lease; the sweep re-routes

	var image *store.Channel
	for _, ch := range st.Channels() {
		if ch.URL == url {
			c := ch
			image = &c
		}
	}
	if image == nil || len(image.Subs) != 1 {
		t.Fatalf("durable image = %+v", image)
	}
	if image.Subs[0].EntryEndpoint == entryNode.Self().Endpoint {
		t.Fatalf("entry record still points at the dead node %s", entryNode.Self().Endpoint)
	}
	if got := owner.Stats().LeaseReroutes; got == 0 {
		t.Fatal("owner counted no lease re-routes")
	}

	// Notifications resumed through the re-routed entry.
	tc.notify.mu.Lock()
	afterSweep := len(tc.notify.perUser["alice"])
	tc.notify.mu.Unlock()
	tc.sim.RunFor(time.Hour)
	tc.notify.mu.Lock()
	final := len(tc.notify.perUser["alice"])
	tc.notify.mu.Unlock()
	if final <= afterSweep {
		t.Fatalf("notifications did not resume after the re-route (%d then %d)", afterSweep, final)
	}
}

// TestLeaseTTLDisabledSkipsSweep pins the Config.LeaseTTL ≤ 0 contract:
// the maintain pass does no lease work at all — the dead node's entry
// record is never re-routed and LeaseReroutes stays zero — while
// handlePeerFault still force-expires entries at dead peers with a
// zero-time mark. The mark matters even with the sweep off: an operator
// restart with leases enabled repairs those entries on the first pass
// instead of waiting a full TTL.
func TestLeaseTTLDisabledSkipsSweep(t *testing.T) {
	for _, ttl := range []time.Duration{0, -time.Hour} {
		t.Run(fmt.Sprintf("ttl=%v", ttl), func(t *testing.T) {
			url := "http://feeds.example.net/nosweep.xml"
			tc := newTestCloud(t, 8, func(i int, cfg *core.Config) {
				cfg.LeaseTTL = ttl
			})
			tc.host(url, 10*time.Minute)
			owner := tc.ownerOf(url)
			var entryNode *core.Node
			for _, n := range tc.nodes {
				if n != owner {
					entryNode = n
					break
				}
			}
			entryNode.Subscribe("alice", url)
			tc.sim.RunFor(30 * time.Minute)

			entryNode.Stop()
			tc.net.Crash(entryNode.Self().Endpoint)
			tc.sim.RunFor(2 * time.Hour)

			rec, ok := owner.Records(url)
			if !ok || !rec.Owner {
				t.Fatalf("owner lost the channel: %+v", rec)
			}
			// The peer fault still planted the force-expiry mark...
			if mark, marked := rec.Leases["alice"]; !marked || !mark.IsZero() {
				t.Fatalf("dead entry not force-expired: leases = %+v", rec.Leases)
			}
			// ...but the disabled sweep never acted on it: the entry record
			// still names the dead node and no re-route was counted.
			if got := rec.Subscribers["alice"]; got.Endpoint != entryNode.Self().Endpoint {
				t.Fatalf("entry record moved to %s with the sweep disabled", got.Endpoint)
			}
			if st := owner.Stats(); st.LeaseReroutes != 0 {
				t.Fatalf("sweep re-routed %d entries with LeaseTTL = %v", st.LeaseReroutes, ttl)
			}
		})
	}
}

package core

import (
	"fmt"
	"math"
	"time"

	"corona/internal/honeycomb"
)

// Scheme identifies one of the optimization problems of Table 1.
type Scheme int

// The five schemes evaluated in the paper.
const (
	// SchemeLite minimizes average update detection time while bounding
	// total content-server load to what legacy clients would impose.
	SchemeLite Scheme = iota
	// SchemeFast minimizes content-server load while achieving a target
	// average update detection time.
	SchemeFast
	// SchemeFair minimizes detection time relative to each channel's
	// update interval (ratio metric), bounding load.
	SchemeFair
	// SchemeFairSqrt is SchemeFair with a square-root weight on the
	// latency ratio, damping the bias against rarely-changing channels.
	SchemeFairSqrt
	// SchemeFairLog is SchemeFair with a logarithmic weight.
	SchemeFairLog
)

// String names the scheme the way the paper does.
func (s Scheme) String() string {
	switch s {
	case SchemeLite:
		return "Corona-Lite"
	case SchemeFast:
		return "Corona-Fast"
	case SchemeFair:
		return "Corona-Fair"
	case SchemeFairSqrt:
		return "Corona-Fair-Sqrt"
	case SchemeFairLog:
		return "Corona-Fair-Log"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// PolicyConfig selects a scheme and its parameters.
type PolicyConfig struct {
	// Scheme is the optimization problem to solve.
	Scheme Scheme
	// FastTarget is T, the target average update detection time for
	// SchemeFast (30 s in the paper's simulations).
	FastTarget time.Duration
}

// TradeoffEnv captures the system-wide quantities the tradeoff formulas
// need: N, b, τ, and the base level K.
type TradeoffEnv struct {
	// Nodes is N, the (estimated) overlay size.
	Nodes int
	// Radix is b.
	Radix int
	// PollInterval is τ.
	PollInterval time.Duration
	// MaxLevel is K = ceil(log_b N), the owner-only level.
	MaxLevel int
}

// Pollers returns the expected wedge size N/bˡ at a level, floored at one
// (the owner always polls).
func (env TradeoffEnv) Pollers(level int) float64 {
	p := float64(env.Nodes)
	for i := 0; i < level; i++ {
		p /= float64(env.Radix)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// DetectionTime returns the expected update detection latency at a level:
// τ/2 divided by the number of cooperating pollers (paper §3.1).
func (env TradeoffEnv) DetectionTime(level int) time.Duration {
	return time.Duration(float64(env.PollInterval) / 2 / env.Pollers(level))
}

// ChannelTradeoff is the per-channel input to entry construction.
type ChannelTradeoff struct {
	// Q is the subscriber count qᵢ.
	Q float64
	// SNorm is the content size sᵢ normalized to a mean of 1, keeping
	// the load constraint in poll units (DESIGN.md §2.5).
	SNorm float64
	// U is the estimated update interval uᵢ.
	U time.Duration
	// MinLevel/MaxLevel clamp the feasible range. Orphan channels —
	// those whose owner shares fewer than MaxLevel-1 prefix digits with
	// the channel identifier, so the owner cannot start the one-level-
	// at-a-time wedge recruitment ladder (§3.3) — pin both to the base
	// level and are folded into the slack cluster (§4).
	MinLevel, MaxLevel int
}

// fairWeight computes the per-channel weight the Fair family places on
// detection time: τ/u for Fair, sublinear transforms for the Sqrt and Log
// variants (§3.1: "a non-linear metric dampens the tendency ... to punish
// slow-changing yet popular feeds").
func fairWeight(s Scheme, tau, u float64) float64 {
	if u <= 0 {
		u = 1
	}
	switch s {
	case SchemeFair:
		return tau / u
	case SchemeFairSqrt:
		return math.Sqrt(tau / u)
	case SchemeFairLog:
		lu := math.Log(u)
		if lu < 1 {
			lu = 1
		}
		lt := math.Log(tau)
		if lt < 1 {
			lt = 1
		}
		return lt / lu
	default:
		return 1
	}
}

// BuildEntry constructs the Honeycomb entry for one channel under the
// given policy. For load-bounded schemes (Lite, Fair*) F is the weighted
// detection metric and G the per-τ poll load; Fast swaps the roles
// (minimize load subject to a performance bound).
func BuildEntry(p PolicyConfig, env TradeoffEnv, ch ChannelTradeoff, key any) honeycomb.Entry {
	maxLevel := ch.MaxLevel
	if maxLevel <= 0 || maxLevel > env.MaxLevel {
		maxLevel = env.MaxLevel
	}
	minLevel := ch.MinLevel
	if minLevel < 0 {
		minLevel = 0
	}
	if minLevel > maxLevel {
		minLevel = maxLevel
	}
	perf := make([]float64, maxLevel+1)
	load := make([]float64, maxLevel+1)
	tau := env.PollInterval.Seconds()
	w := 1.0
	if p.Scheme == SchemeFair || p.Scheme == SchemeFairSqrt || p.Scheme == SchemeFairLog {
		w = fairWeight(p.Scheme, tau, ch.U.Seconds())
	}
	s := ch.SNorm
	if s <= 0 {
		s = 1
	}
	q := ch.Q
	if q < 0 {
		q = 0
	}
	for l := 0; l <= maxLevel; l++ {
		det := env.DetectionTime(l).Seconds()
		perf[l] = q * w * det
		load[l] = s * env.Pollers(l)
	}
	e := honeycomb.Entry{Key: key, Weight: 1, MinLevel: minLevel, MaxLevel: maxLevel}
	if p.Scheme == SchemeFast {
		e.F, e.G = load, perf
	} else {
		e.F, e.G = perf, load
	}
	return e
}

// Budget computes the constraint bound T for the policy given the global
// totals (from fine-grained local knowledge plus aggregated clusters).
//
//   - Load-bounded schemes: T = Σqᵢ, the poll budget legacy clients would
//     impose per τ (Table 1). slackLoad — the load already pinned by
//     orphan channels — is subtracted, the correction the prototype
//     applies before optimization (§4).
//   - Fast: T = target·Σqᵢ, the aggregate detection-time budget.
func Budget(p PolicyConfig, totalQ, slackLoad float64) float64 {
	switch p.Scheme {
	case SchemeFast:
		target := p.FastTarget.Seconds()
		if target <= 0 {
			target = 30 // the paper's example target
		}
		return target * totalQ
	default:
		b := totalQ - slackLoad
		if b < 0 {
			b = 0
		}
		return b
	}
}

package core

import (
	"sort"
	"time"

	"corona/internal/ids"
	"corona/internal/pastry"
	"corona/internal/store"
)

// This file is the node's durability seam: mutation handlers in
// subscribe.go, maintain.go, and polling.go call the emit helpers below,
// which are no-ops until a store.Sink is attached (simulations and most
// tests never pay for persistence), and the restore/reconcile pair
// rebuilds node state from a recovered image after a restart.

// SetStateSink attaches the durable state sink. Call before Start; live
// deployments pass the node's *store.Store, everything else leaves the
// sink nil.
func (n *Node) SetStateSink(sink store.Sink) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.durable = sink
}

// emitMetaLocked persists a channel's current metadata — ownership,
// level, epoch, version, tradeoff factors — and, when replaceSubs is set,
// the whole subscriber set. Callers hold n.mu.
func (n *Node) emitMetaLocked(ch *channelState, replaceSubs bool) {
	if n.durable == nil {
		return
	}
	rec := store.Record{
		Op:          store.OpMeta,
		URL:         ch.url,
		Owner:       ch.isOwner,
		Replica:     ch.isReplica,
		Level:       ch.level,
		Epoch:       ch.epoch,
		Version:     ch.lastVersion,
		Count:       ch.subs.count,
		SizeBytes:   ch.sizeBytes,
		IntervalSec: ch.est.ewma,
		ReplaceSubs: replaceSubs,
	}
	if replaceSubs {
		rec.Subs = make([]store.Sub, 0, len(ch.subs.ids))
		for client, entry := range ch.subs.ids {
			rec.Subs = append(rec.Subs, store.Sub{Client: client, EntryID: entry.ID, EntryEndpoint: entry.Endpoint})
		}
		// The record lands in the WAL; sort so identical state writes
		// identical bytes (and byte-compares across seeded runs).
		sort.Slice(rec.Subs, func(i, j int) bool { return rec.Subs[i].Client < rec.Subs[j].Client })
	}
	n.durable.StateChanged(rec)
}

// emitSubLocked persists one subscription add or remove. Callers hold n.mu.
func (n *Node) emitSubLocked(ch *channelState, client string, entry pastry.Addr, removed bool) {
	if n.durable == nil {
		return
	}
	op := store.OpSubscribe
	if removed {
		op = store.OpUnsubscribe
	}
	n.durable.StateChanged(store.Record{
		Op:  op,
		URL: ch.url,
		Sub: store.Sub{Client: client, EntryID: entry.ID, EntryEndpoint: entry.Endpoint},
	})
}

// emitOwnerEpochLocked persists the channel's ownership fencing epoch
// for a channel this node is answerable for. Callers hold n.mu.
func (n *Node) emitOwnerEpochLocked(ch *channelState) {
	if n.durable == nil || !(ch.isOwner || ch.isReplica) {
		return
	}
	n.durable.StateChanged(store.Record{Op: store.OpOwnerEpoch, URL: ch.url, OwnerEpoch: ch.ownerEpoch})
}

// emitLeaseLocked persists one subscriber's lease mark; a zero time
// journals a lease CLEAR (UnixNano 0), which the store applies as
// removal. Callers hold n.mu.
func (n *Node) emitLeaseLocked(ch *channelState, client string, at time.Time) {
	if n.durable == nil {
		return
	}
	var nanos int64
	if !at.IsZero() {
		nanos = at.UnixNano()
	}
	n.durable.StateChanged(store.Record{
		Op:    store.OpLease,
		URL:   ch.url,
		Lease: store.Lease{Client: client, UnixNano: nanos},
	})
}

// emitDelegatesLocked persists a channel's fan-out delegate roster
// wholesale (an empty roster clears the record). Partitions are not
// journaled: they are a pure function of the subscriber set and the
// roster, rebuilt by the recovery refresh. Callers hold n.mu.
func (n *Node) emitDelegatesLocked(ch *channelState) {
	if n.durable == nil {
		return
	}
	rec := store.Record{Op: store.OpDelegates, URL: ch.url}
	if len(ch.delegates) > 0 {
		rec.Delegates = make([]store.Delegate, 0, len(ch.delegates))
		for _, d := range ch.delegates {
			rec.Delegates = append(rec.Delegates, store.Delegate{ID: d.ID, Endpoint: d.Endpoint})
		}
	}
	n.durable.StateChanged(rec)
}

// emitVersionLocked persists version progress for a channel this node is
// answerable for (owner or replica). Callers hold n.mu.
func (n *Node) emitVersionLocked(ch *channelState) {
	if n.durable == nil || !(ch.isOwner || ch.isReplica) {
		return
	}
	n.durable.StateChanged(store.Record{Op: store.OpVersion, URL: ch.url, Version: ch.lastVersion})
}

// RestoreChannels seeds the node's channel table from a recovered durable
// image, before the node joins the overlay. Ownership is not assumed:
// ReconcileRecovered re-derives it against the live ring once the join
// completes.
func (n *Node) RestoreChannels(channels []store.Channel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, c := range channels {
		if c.URL == "" {
			continue
		}
		ch := n.getChannel(c.URL)
		ch.level = c.Level
		ch.epoch = c.Epoch
		ch.ownerEpoch = c.OwnerEpoch
		ch.lastVersion = c.Version
		ch.sizeBytes = c.SizeBytes
		if c.IntervalSec > 0 {
			ch.est.ewma = c.IntervalSec
		}
		if len(c.Subs) > 0 && !n.cfg.CountSubscribersOnly {
			ch.subs.ids = make(map[string]pastry.Addr, len(c.Subs))
			for _, s := range c.Subs {
				ch.subs.ids[s.Client] = pastry.Addr{ID: s.EntryID, Endpoint: s.EntryEndpoint}
			}
			ch.subs.count = len(ch.subs.ids)
		} else {
			ch.subs.count = c.Count
		}
		// Recovered lease marks say which subscribers live under lease
		// discipline; their timestamps predate the outage, so each gets a
		// fresh grace window instead — an entry node that really died
		// simply fails to refresh and expires one TTL from now.
		if len(c.Leases) > 0 && !n.cfg.CountSubscribersOnly {
			now := n.now()
			ch.leases = make(map[string]time.Time, len(c.Leases))
			for _, l := range c.Leases {
				if _, ok := ch.subs.ids[l.Client]; ok {
					ch.leases[l.Client] = now
				}
			}
		}
		// The recovered delegate roster marks the channel as sharded so a
		// resumed owner's first update already fans out O(delegates); the
		// partitions themselves are soft state — the post-reconcile
		// delegate refresh recomputes and re-pushes them, and it will also
		// shrink or clear a roster whose nodes died during the outage.
		if len(c.Delegates) > 0 && !n.cfg.CountSubscribersOnly {
			ch.delegates = make([]pastry.Addr, 0, len(c.Delegates))
			for _, d := range c.Delegates {
				ch.delegates = append(ch.delegates, pastry.Addr{ID: d.ID, Endpoint: d.Endpoint})
			}
			slots := len(ch.delegates) + 1
			ch.ownEntries = make(map[string]pastry.Addr)
			for client, entry := range ch.subs.ids {
				if delegateSlot(client, slots) == 0 {
					ch.ownEntries[client] = entry
				}
			}
		}
		ch.recoveredOwner = c.Owner || c.Replica
	}
}

// ReconcileRecovered runs once the node has rejoined the ring: recovered
// channels this node still roots resume ownership — becomeOwnerLocked
// proposes recoveredEpoch+1, and the replication push carrying that
// claim demotes any interim owner promoted during the outage on receipt
// (the owner-epoch handshake; losers of the epoch comparison surrender
// immediately instead of waiting for an IsRoot self-check). Channels
// whose root moved while the node was down hand their durable
// subscriptions to the current owner through the ordinary subscribe
// path, so no client has to re-subscribe either way.
func (n *Node) ReconcileRecovered() {
	type handoff struct {
		id   ids.ID
		url  string
		subs []replicatedSub
	}
	n.mu.Lock()
	var resumed []*channelState
	var handoffs []handoff
	var pushes []delegatePush
	// Reconcile channels in URL order: resumption pushes, handoff
	// re-injections, and the WAL records emitted below must not follow
	// map iteration order, or recovery would desynchronize seeded runs.
	chans := make([]*channelState, 0, len(n.channels))
	for _, ch := range n.channels {
		chans = append(chans, ch)
	}
	sort.Slice(chans, func(i, j int) bool { return chans[i].url < chans[j].url })
	for _, ch := range chans {
		if !ch.recoveredOwner {
			continue
		}
		ch.recoveredOwner = false
		if n.overlay.IsRoot(ch.id) {
			n.becomeOwnerLocked(ch)
			if ch.isOwner && len(ch.delegates) > 0 {
				// Re-shard now rather than a maintenance round from now:
				// the recovered roster may name dead nodes, and surviving
				// delegates expired their partitions during the outage.
				pushes = n.refreshDelegatesLocked(ch, pushes, ids.ID{})
			}
			resumed = append(resumed, ch)
			continue
		}
		// The root moved. Surrender the recovered claim (demote clears
		// the identity map so a later promotion cannot resurrect these
		// clients from a stale copy) and re-inject the subscriptions at
		// the current owner.
		h := handoff{id: ch.id, url: ch.url}
		for client, entry := range ch.subs.ids {
			h.subs = append(h.subs, replicatedSub{Client: client, Entry: entry})
		}
		sort.Slice(h.subs, func(i, j int) bool { return h.subs[i].Client < h.subs[j].Client })
		if len(h.subs) > 0 {
			handoffs = append(handoffs, h)
		}
		n.demoteLocked(ch, false)
		n.emitMetaLocked(ch, true)
	}
	n.mu.Unlock()
	n.sendDelegatePushes(pushes)
	for _, ch := range resumed {
		n.replicateChannel(ch)
	}
	for _, h := range handoffs {
		for _, s := range h.subs {
			n.overlay.Route(h.id, msgSubscribe, &subscribeMsg{URL: h.url, Client: s.Client, Entry: s.Entry})
		}
	}
}

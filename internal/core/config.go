// Package core implements Corona itself: the cooperative-polling
// publish-subscribe system layered on the Pastry overlay (paper §3).
//
// Each Node participates in the overlay, owns the channels whose
// identifiers it is numerically closest to, manages their subscriptions
// and tradeoff factors, polls the channels assigned to wedges it belongs
// to, detects updates, disseminates delta-encoded diffs along the overlay
// DAG, and notifies subscribers through an instant-messaging gateway.
// Polling levels are set by the Honeycomb optimizer running over
// fine-grained local factors and coarse-grained aggregated clusters
// (paper §3.2-§3.3).
//
// The same Node runs under the discrete-event simulator and over real TCP:
// time comes from a clock.Clock, messages from a pastry.Transport, and
// content from a Fetcher.
package core

import (
	"time"

	"corona/internal/pastry"
)

// Config parameterizes a Corona node.
type Config struct {
	// Pastry configures the underlying overlay.
	Pastry pastry.Config

	// Policy selects the optimization scheme (Table 1) and its target.
	Policy PolicyConfig

	// PollInterval is τ, the per-node polling period (30 min in the
	// paper's simulations, §5.1).
	PollInterval time.Duration

	// MaintenanceInterval is the period of the optimize/maintain/
	// aggregate protocol (1 h in the simulations, 30 min in the
	// deployment).
	MaintenanceInterval time.Duration

	// OwnerReplicas is f, the number of additional owners (closest ring
	// neighbors of the primary owner) holding subscription state for
	// failure tolerance (§3.3).
	OwnerReplicas int

	// TradeoffBins is the number of aggregation clusters per polling
	// level (16 in the prototype, §4).
	TradeoffBins int

	// NodeCount, when positive, fixes N for the tradeoff formulas.
	// When zero, nodes estimate N from leaf-set density, the way a
	// deployment must (§5.3 "dynamically learns the parameters").
	NodeCount int

	// CountSubscribersOnly, when set, keeps only subscriber counts
	// instead of per-client identities, and reports notifications to the
	// sink without delivering IM payloads. Paper-scale simulations
	// (1,000,000 subscriptions) use this; deployment-scale runs track
	// full identities.
	CountSubscribersOnly bool

	// ContentMode, when set, fetches real documents and runs the
	// difference engine on every detected change. Version-only mode
	// trusts the Fetcher's version counter (the simulator's fast path).
	ContentMode bool

	// LeaseTTL enables entry-node leases at owned channels: a subscriber
	// whose entry node has not proved liveness for it within the TTL (or
	// whose entry node was detected dead) has its entry record re-pointed
	// at a surviving node by the maintain pass, once per expiry. Zero or
	// negative disables the sweep (lease refreshes still re-point entries
	// on arrival). Heartbeat-driven expiry applies only to subscribers
	// whose entry nodes heartbeat — client-protocol sessions; IM and
	// simulation subscribers are touched only by the one-shot re-route
	// when their entry node is detected dead.
	LeaseTTL time.Duration

	// DelegateThreshold enables hot-channel fan-out sharding: when an
	// owned channel's subscriber count reaches the threshold, the owner
	// recruits leaf-set nodes as delegates (one per threshold's worth of
	// subscribers, bounded by the leaf set), partitions the entry records
	// across them, and disseminates one update per delegate instead of
	// one batch per entry node. Zero or negative disables sharding.
	// Ignored in counting mode, which holds no entry records to shard.
	DelegateThreshold int

	// Seed drives the node's local randomness (poll phases).
	Seed int64
}

// DefaultConfig returns the simulation defaults from §5.1.
func DefaultConfig() Config {
	return Config{
		Pastry:               pastry.DefaultConfig(),
		Policy:               PolicyConfig{Scheme: SchemeLite},
		PollInterval:         30 * time.Minute,
		MaintenanceInterval:  time.Hour,
		OwnerReplicas:        2,
		TradeoffBins:         16,
		CountSubscribersOnly: true,
	}
}

func (c Config) withDefaults() Config {
	if c.PollInterval <= 0 {
		c.PollInterval = 30 * time.Minute
	}
	if c.MaintenanceInterval <= 0 {
		c.MaintenanceInterval = time.Hour
	}
	if c.TradeoffBins <= 0 {
		c.TradeoffBins = 16
	}
	if c.OwnerReplicas < 0 {
		c.OwnerReplicas = 0
	}
	return c
}

package core

// Property tests for the native binary payload path: for every registered
// Corona message type, the binary encoding must round-trip byte-stably
// and produce exactly the struct the JSON path produces. All
// registrations travel natively (replicateMsg joined when restart
// reconciliation made replication hot; the batch fan-out trio —
// notifybatch, delegate, delegatenotify — when delegate sharding landed);
// the registered-type JSON fallback itself is pinned by a dedicated test
// in the codec package.
// Messages are exercised through the codec envelope, the way they
// actually reach the wire, including lazy materialization and verbatim
// re-encoding of forwarded payloads.

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"corona/internal/codec"
	"corona/internal/honeycomb"
	"corona/internal/ids"
	"corona/internal/pastry"
)

func init() {
	RegisterPayloadTypes(codec.RegisterPayload)
}

// randString draws a printable string, sometimes empty, occasionally long
// (diff-sized).
func randString(rng *rand.Rand) string {
	n := rng.Intn(24)
	if rng.Intn(10) == 0 {
		n = 0
	} else if rng.Intn(10) == 0 {
		n = 2000 + rng.Intn(2000)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(' ' + rng.Intn(95))
	}
	return string(b)
}

func randAddr(rng *rand.Rand) pastry.Addr {
	return pastry.Addr{ID: ids.Random(rng), Endpoint: randString(rng)}
}

// randFloat draws finite floats across magnitudes (JSON cannot carry NaN
// or Inf, and Corona's estimators never produce them).
func randFloat(rng *rand.Rand) float64 {
	f := math.Exp(rng.Float64()*40-20) * float64(rng.Intn(3)-1)
	return f
}

func randClusterSet(rng *rand.Rand) *honeycomb.ClusterSet {
	cs := honeycomb.NewClusterSet(16, 3)
	for i, n := 0, rng.Intn(30); i < n; i++ {
		cs.Add(honeycomb.ChannelFactors{
			Q:      rng.Float64() * 500,
			S:      rng.Float64() + 0.01,
			U:      rng.Float64() * 1e5,
			Level:  rng.Intn(4),
			Orphan: rng.Intn(6) == 0,
		})
	}
	return cs
}

func randPollCtl(rng *rand.Rand) *pollCtlMsg {
	return &pollCtlMsg{
		URL:         randString(rng),
		Level:       rng.Intn(6) - 1,
		Epoch:       rng.Uint64() >> uint(rng.Intn(64)),
		Q:           rng.Intn(100000),
		SizeBytes:   rng.Intn(1 << 20),
		IntervalSec: randFloat(rng),
	}
}

func randUpdate(rng *rand.Rand) *updateMsg {
	return &updateMsg{
		URL:        randString(rng),
		Version:    rng.Uint64() >> uint(rng.Intn(64)),
		Diff:       randString(rng),
		Bytes:      rng.Intn(1 << 20),
		OwnerEpoch: rng.Uint64() >> uint(rng.Intn(64)),
		Owner:      randAddr(rng),
	}
}

// payloadGenerators builds one random payload per registered message
// type, including the wedgeFwd wrapper in each of its shapes.
var payloadGenerators = map[string]func(rng *rand.Rand) any{
	msgSubscribe: func(rng *rand.Rand) any {
		return &subscribeMsg{URL: randString(rng), Client: randString(rng), Entry: randAddr(rng)}
	},
	msgUnsubscribe: func(rng *rand.Rand) any {
		return &subscribeMsg{URL: randString(rng), Client: randString(rng), Entry: randAddr(rng), Remove: true}
	},
	msgReplicate: func(rng *rand.Rand) any {
		m := &replicateMsg{
			URL:         randString(rng),
			Count:       rng.Intn(1000),
			SizeBytes:   rng.Intn(1 << 20),
			IntervalSec: randFloat(rng),
			LastVersion: rng.Uint64() >> uint(rng.Intn(64)),
			Level:       rng.Intn(5),
			Epoch:       rng.Uint64() >> uint(rng.Intn(64)),
			OwnerEpoch:  rng.Uint64() >> uint(rng.Intn(64)),
			FromOwner:   rng.Intn(2) == 1,
		}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			m.Subscribers = append(m.Subscribers, replicatedSub{Client: randString(rng), Entry: randAddr(rng)})
		}
		return m
	},
	msgPollCtl: func(rng *rand.Rand) any { return randPollCtl(rng) },
	msgUpdate:  func(rng *rand.Rand) any { return randUpdate(rng) },
	msgReport: func(rng *rand.Rand) any {
		return &reportMsg{URL: randString(rng), ObservedVersion: rng.Uint64(), Diff: randString(rng), Bytes: rng.Intn(1 << 20)}
	},
	msgMaintain: func(rng *rand.Rand) any {
		m := &maintainMsg{Row: rng.Intn(10)}
		if rng.Intn(8) != 0 {
			m.Clusters = randClusterSet(rng)
		}
		return m
	},
	msgWedgeFwd: func(rng *rand.Rand) any {
		m := &wedgeFwdMsg{URL: randString(rng), Level: rng.Intn(5)}
		switch rng.Intn(3) {
		case 0:
			m.InnerType = msgPollCtl
			m.PollCtl = randPollCtl(rng)
		case 1:
			m.InnerType = msgUpdate
			m.Update = randUpdate(rng)
		default:
			m.InnerType = msgUpdate // dead-end shape: no wrapped payload
		}
		return m
	},
	msgNotify: func(rng *rand.Rand) any {
		return &notifyMsg{Client: randString(rng), URL: randString(rng), Version: rng.Uint64(), Diff: randString(rng), At: rng.Int63() >> uint(rng.Intn(63))}
	},
	msgLease: func(rng *rand.Rand) any {
		return &leaseMsg{URL: randString(rng), Client: randString(rng), Entry: randAddr(rng)}
	},
	msgNotifyBatch: func(rng *rand.Rand) any {
		m := &notifyBatchMsg{URL: randString(rng), Version: rng.Uint64() >> uint(rng.Intn(64)), Diff: randString(rng), At: rng.Int63() >> uint(rng.Intn(63))}
		for i, n := 0, rng.Intn(6); i < n; i++ {
			m.Clients = append(m.Clients, randString(rng))
		}
		return m
	},
	msgDelegate: func(rng *rand.Rand) any {
		m := &delegateMsg{
			URL:        randString(rng),
			OwnerEpoch: rng.Uint64() >> uint(rng.Intn(64)),
			Owner:      randAddr(rng),
			Seq:        rng.Uint64() >> uint(rng.Intn(64)),
			Replace:    rng.Intn(2) == 0,
			Revoke:     rng.Intn(4) == 0,
		}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			m.Subs = append(m.Subs, replicatedSub{Client: randString(rng), Entry: randAddr(rng)})
		}
		for i, n := 0, rng.Intn(3); i < n; i++ {
			m.Removed = append(m.Removed, randString(rng))
		}
		return m
	},
	msgDelegateNotify: func(rng *rand.Rand) any {
		return &delegateNotifyMsg{
			URL:        randString(rng),
			Version:    rng.Uint64() >> uint(rng.Intn(64)),
			Diff:       randString(rng),
			OwnerEpoch: rng.Uint64() >> uint(rng.Intn(64)),
			At:         rng.Int63() >> uint(rng.Intn(63)),
		}
	},
	msgLeaseExpire: func(rng *rand.Rand) any {
		m := &leaseExpireMsg{URL: randString(rng), Entry: randAddr(rng)}
		for i, n := 0, rng.Intn(6); i < n; i++ {
			m.Clients = append(m.Clients, randString(rng))
		}
		return m
	},
}

func wireMessage(msgType string, payload any, rng *rand.Rand) pastry.Message {
	return pastry.Message{
		Type:    msgType,
		Key:     ids.Random(rng),
		From:    randAddr(rng),
		Hops:    rng.Intn(10),
		Cover:   rng.Intn(5),
		Payload: payload,
	}
}

// decodeAndMaterialize runs a body back through a codec the way the
// overlay does on local delivery.
func decodeAndMaterialize(t *testing.T, c codec.Codec, body []byte) pastry.Message {
	t.Helper()
	msg, err := c.Decode(body)
	if err != nil {
		t.Fatalf("%s decode: %v", c.Name(), err)
	}
	if err := msg.MaterializePayload(); err != nil {
		t.Fatalf("%s materialize: %v", c.Name(), err)
	}
	return msg
}

// TestBinaryPayloadEquivalentToJSONPath is the core equivalence property:
// for every registered message type, sending through the binary codec
// yields exactly the payload that sending through the JSON codec yields.
func TestBinaryPayloadEquivalentToJSONPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for msgType, gen := range payloadGenerators {
		t.Run(msgType, func(t *testing.T) {
			for i := 0; i < 40; i++ {
				msg := wireMessage(msgType, gen(rng), rng)
				jsonBody, err := codec.JSON.Encode(msg)
				if err != nil {
					t.Fatal(err)
				}
				binBody, err := codec.Binary.Encode(msg)
				if err != nil {
					t.Fatal(err)
				}
				viaJSON := decodeAndMaterialize(t, codec.JSON, jsonBody)
				viaBinary := decodeAndMaterialize(t, codec.Binary, binBody)
				if viaBinary.Type != viaJSON.Type || viaBinary.Key != viaJSON.Key ||
					viaBinary.From != viaJSON.From || viaBinary.Hops != viaJSON.Hops ||
					viaBinary.Cover != viaJSON.Cover {
					t.Fatalf("envelope diverges:\n bin  %+v\n json %+v", viaBinary, viaJSON)
				}
				if !reflect.DeepEqual(viaBinary.Payload, viaJSON.Payload) {
					t.Fatalf("payload diverges:\n bin  %#v\n json %#v", viaBinary.Payload, viaJSON.Payload)
				}
				if !reflect.DeepEqual(viaBinary.Payload, msg.Payload) {
					t.Fatalf("payload changed by round trip:\n got  %#v\n want %#v", viaBinary.Payload, msg.Payload)
				}
			}
		})
	}
}

// TestBinaryPayloadByteStable pins the two re-encode paths to the exact
// original bytes: a forwarded message (raw blob retained, never decoded)
// and a materialized-then-re-sent message must both reproduce the
// encoding, so any hop's output is indistinguishable from the origin's.
func TestBinaryPayloadByteStable(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for msgType, gen := range payloadGenerators {
		t.Run(msgType, func(t *testing.T) {
			for i := 0; i < 40; i++ {
				msg := wireMessage(msgType, gen(rng), rng)
				body, err := codec.Binary.Encode(msg)
				if err != nil {
					t.Fatal(err)
				}
				// Zero-copy forward: decode, re-encode without materializing.
				fwd, err := codec.Binary.Decode(body)
				if err != nil {
					t.Fatal(err)
				}
				fwdBody, err := codec.Binary.Encode(fwd)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fwdBody, body) {
					t.Fatal("verbatim forward re-encode not byte-identical")
				}
				// Materialized re-send: decode, materialize, re-encode.
				mat := decodeAndMaterialize(t, codec.Binary, body)
				matBody, err := codec.Binary.Encode(mat)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(matBody, body) {
					t.Fatal("materialized re-encode not byte-identical")
				}
			}
		})
	}
}

// TestForwardedPayloadStaysLazy pins the zero-copy property itself: a
// decoded message exposes its raw payload blob, and re-encoding consumed
// it verbatim rather than materializing a struct.
func TestForwardedPayloadStaysLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	msg := wireMessage(msgUpdate, randUpdate(rng), rng)
	body, err := codec.Binary.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Binary.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload != nil {
		t.Fatalf("payload decoded eagerly: %#v", got.Payload)
	}
	raw, binary, ok := got.RawPayload()
	if !ok || !binary || len(raw) == 0 {
		t.Fatalf("raw payload not retained: ok=%v binary=%v len=%d", ok, binary, len(raw))
	}
	want, err := msg.Payload.(*updateMsg).AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatal("retained blob differs from the native payload encoding")
	}
	// Materializing clears the blob, so a mutated struct cannot be
	// shadowed by stale bytes.
	if err := got.MaterializePayload(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := got.RawPayload(); ok {
		t.Fatal("raw blob survived materialization")
	}
}

// TestReplicateTravelsNatively pins replicateMsg to the native binary
// path: restart reconciliation re-pushes whole owner states through it,
// so it must not ride the JSON fallback anymore.
func TestReplicateTravelsNatively(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	msg := wireMessage(msgReplicate, payloadGenerators[msgReplicate](rng), rng)
	body, err := codec.Binary.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Binary.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	raw, binary, ok := got.RawPayload()
	if !ok || !binary || len(raw) == 0 {
		t.Fatalf("replicate should travel natively: ok=%v binary=%v len=%d", ok, binary, len(raw))
	}
	want, err := msg.Payload.(*replicateMsg).AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatal("retained blob differs from the native replicate encoding")
	}
}

// binaryPayload is both halves of the native contract, for table-driven
// fuzzing.
type binaryPayload interface {
	codec.BinaryMarshaler
	codec.BinaryUnmarshaler
}

// fuzzTargets constructs one empty payload of each natively-encoded type.
var fuzzTargets = []func() binaryPayload{
	func() binaryPayload { return &subscribeMsg{} },
	func() binaryPayload { return &notifyMsg{} },
	func() binaryPayload { return &pollCtlMsg{} },
	func() binaryPayload { return &updateMsg{} },
	func() binaryPayload { return &reportMsg{} },
	func() binaryPayload { return &maintainMsg{} },
	func() binaryPayload { return &wedgeFwdMsg{} },
	func() binaryPayload { return &replicateMsg{} },
	func() binaryPayload { return &leaseMsg{} },
	func() binaryPayload { return &notifyBatchMsg{} },
	func() binaryPayload { return &delegateMsg{} },
	func() binaryPayload { return &delegateNotifyMsg{} },
}

// FuzzBinaryPayloadDecode throws arbitrary bytes at every native decoder:
// none may panic, and anything accepted must re-encode byte-stably.
func FuzzBinaryPayloadDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(46))
	seedFor := func(m codec.BinaryMarshaler) []byte {
		b, _ := m.AppendBinary(nil)
		return b
	}
	f.Add(uint8(0), seedFor(&subscribeMsg{URL: "u", Client: "c", Entry: randAddr(rng)}))
	f.Add(uint8(1), seedFor(&notifyMsg{Client: "c", URL: "u", Version: 3, Diff: "d", At: 12345}))
	f.Add(uint8(2), seedFor(randPollCtl(rng)))
	f.Add(uint8(3), seedFor(randUpdate(rng)))
	f.Add(uint8(4), seedFor(&reportMsg{URL: "u", ObservedVersion: 9}))
	f.Add(uint8(5), seedFor(&maintainMsg{Row: 2, Clusters: randClusterSet(rng)}))
	f.Add(uint8(6), seedFor(&wedgeFwdMsg{URL: "u", InnerType: msgUpdate, Update: randUpdate(rng)}))
	f.Add(uint8(7), seedFor(payloadGenerators[msgReplicate](rng).(*replicateMsg)))
	f.Add(uint8(9), seedFor(payloadGenerators[msgNotifyBatch](rng).(*notifyBatchMsg)))
	f.Add(uint8(10), seedFor(payloadGenerators[msgDelegate](rng).(*delegateMsg)))
	f.Add(uint8(11), seedFor(&delegateNotifyMsg{URL: "u", Version: 7, Diff: "d", OwnerEpoch: 2, At: 12345}))
	f.Add(uint8(6), []byte{})
	f.Fuzz(func(t *testing.T, which uint8, data []byte) {
		target := fuzzTargets[int(which)%len(fuzzTargets)]
		m := target()
		if err := m.DecodeBinary(data); err != nil {
			return
		}
		b1, err := m.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		m2 := target()
		if err := m2.DecodeBinary(b1); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		b2, err := m2.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("encoding not byte-stable")
		}
	})
}

// FuzzBinaryEnvelopeDecode drives the whole codec with arbitrary bodies:
// Decode plus MaterializePayload must never panic.
func FuzzBinaryEnvelopeDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(47))
	for msgType, gen := range payloadGenerators {
		if body, err := codec.Binary.Encode(wireMessage(msgType, gen(rng), rng)); err == nil {
			f.Add(body)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := codec.Binary.Decode(data)
		if err != nil {
			return
		}
		_ = msg.MaterializePayload()
	})
}

package core

import (
	"testing"
	"time"

	"corona/internal/ids"
	"corona/internal/pastry"
)

var testEnv = TradeoffEnv{
	Nodes:        1024,
	Radix:        16,
	PollInterval: 30 * time.Minute,
	MaxLevel:     3,
}

func TestEnvPollers(t *testing.T) {
	cases := []struct {
		level int
		want  float64
	}{{0, 1024}, {1, 64}, {2, 4}, {3, 1}}
	for _, c := range cases {
		if got := testEnv.Pollers(c.level); got != c.want {
			t.Errorf("Pollers(%d) = %v, want %v", c.level, got, c.want)
		}
	}
}

func TestEnvDetectionTime(t *testing.T) {
	// τ/2 at owner-only (level where a single node polls), τ/2/64 at
	// level 1 (paper §3.1: τ/2 · bˡ/N).
	if got := testEnv.DetectionTime(3); got != 15*time.Minute {
		t.Errorf("DetectionTime(3) = %v, want 15m", got)
	}
	if got := testEnv.DetectionTime(1); got != 15*time.Minute/64 {
		t.Errorf("DetectionTime(1) = %v, want %v", got, 15*time.Minute/64)
	}
}

func TestBuildEntryLiteShape(t *testing.T) {
	ch := ChannelTradeoff{Q: 100, SNorm: 1, U: time.Hour}
	e := BuildEntry(PolicyConfig{Scheme: SchemeLite}, testEnv, ch, "x")
	if e.MaxLevel != 3 || len(e.F) != 4 || len(e.G) != 4 {
		t.Fatalf("entry shape wrong: %+v", e)
	}
	// F (detection) increases with level; G (load) decreases.
	for l := 1; l <= 3; l++ {
		if e.F[l] <= e.F[l-1] {
			t.Fatalf("Lite F not increasing at level %d: %v", l, e.F)
		}
		if e.G[l] >= e.G[l-1] {
			t.Fatalf("Lite G not decreasing at level %d: %v", l, e.G)
		}
	}
	// F is linear in q, G in s.
	e2 := BuildEntry(PolicyConfig{Scheme: SchemeLite}, testEnv, ChannelTradeoff{Q: 200, SNorm: 2, U: time.Hour}, "y")
	for l := 0; l <= 3; l++ {
		if e2.F[l] != 2*e.F[l] || e2.G[l] != 2*e.G[l] {
			t.Fatalf("scaling wrong at level %d", l)
		}
	}
}

func TestBuildEntryFastSwapsRoles(t *testing.T) {
	ch := ChannelTradeoff{Q: 100, SNorm: 1, U: time.Hour}
	lite := BuildEntry(PolicyConfig{Scheme: SchemeLite}, testEnv, ch, "x")
	fast := BuildEntry(PolicyConfig{Scheme: SchemeFast, FastTarget: 30 * time.Second}, testEnv, ch, "x")
	for l := 0; l <= 3; l++ {
		if fast.F[l] != lite.G[l] || fast.G[l] != lite.F[l] {
			t.Fatalf("Fast must swap F and G at level %d", l)
		}
	}
}

func TestFairWeightOrdersByUpdateRate(t *testing.T) {
	// A rapidly updating channel must get a strictly larger weight than a
	// slow one under all Fair variants.
	for _, s := range []Scheme{SchemeFair, SchemeFairSqrt, SchemeFairLog} {
		hot := BuildEntry(PolicyConfig{Scheme: s}, testEnv, ChannelTradeoff{Q: 10, SNorm: 1, U: 10 * time.Minute}, "hot")
		cold := BuildEntry(PolicyConfig{Scheme: s}, testEnv, ChannelTradeoff{Q: 10, SNorm: 1, U: 7 * 24 * time.Hour}, "cold")
		if hot.F[3] <= cold.F[3] {
			t.Errorf("%v: hot channel weight not larger (hot %v, cold %v)", s, hot.F[3], cold.F[3])
		}
	}
}

func TestFairSublinearVariantsDampBias(t *testing.T) {
	// The ratio between hot and cold weights must shrink from Fair to
	// FairSqrt to FairLog (§3.1: sublinear metrics dampen the punishment
	// of slow channels).
	ratio := func(s Scheme) float64 {
		hot := BuildEntry(PolicyConfig{Scheme: s}, testEnv, ChannelTradeoff{Q: 1, SNorm: 1, U: 10 * time.Minute}, nil)
		cold := BuildEntry(PolicyConfig{Scheme: s}, testEnv, ChannelTradeoff{Q: 1, SNorm: 1, U: 7 * 24 * time.Hour}, nil)
		return hot.F[3] / cold.F[3]
	}
	rF, rS, rL := ratio(SchemeFair), ratio(SchemeFairSqrt), ratio(SchemeFairLog)
	if !(rF > rS && rS > rL && rL > 1) {
		t.Fatalf("bias ratios not ordered: fair=%v sqrt=%v log=%v", rF, rS, rL)
	}
}

func TestBuildEntryOrphanPinned(t *testing.T) {
	ch := ChannelTradeoff{Q: 5, SNorm: 1, U: time.Hour, MinLevel: 3, MaxLevel: 3}
	e := BuildEntry(PolicyConfig{Scheme: SchemeLite}, testEnv, ch, "orphan")
	if e.MinLevel != 3 || e.MaxLevel != 3 {
		t.Fatalf("orphan not pinned: [%d,%d]", e.MinLevel, e.MaxLevel)
	}
}

func TestBuildEntryDefensiveInputs(t *testing.T) {
	// Zero/negative inputs must produce valid, finite entries.
	e := BuildEntry(PolicyConfig{Scheme: SchemeFair}, testEnv, ChannelTradeoff{Q: -1, SNorm: 0, U: 0}, nil)
	for l := 0; l <= e.MaxLevel; l++ {
		if e.F[l] < 0 || e.G[l] <= 0 {
			t.Fatalf("invalid entry values at level %d: F=%v G=%v", l, e.F[l], e.G[l])
		}
	}
}

func TestBudget(t *testing.T) {
	if got := Budget(PolicyConfig{Scheme: SchemeLite}, 1000, 50); got != 950 {
		t.Errorf("Lite budget = %v, want ΣQ - slack = 950", got)
	}
	if got := Budget(PolicyConfig{Scheme: SchemeLite}, 10, 50); got != 0 {
		t.Errorf("Lite budget clamps at zero, got %v", got)
	}
	if got := Budget(PolicyConfig{Scheme: SchemeFast, FastTarget: 30 * time.Second}, 1000, 0); got != 30000 {
		t.Errorf("Fast budget = %v, want target x ΣQ = 30000", got)
	}
	// Unset Fast target falls back to the paper's 30 s example.
	if got := Budget(PolicyConfig{Scheme: SchemeFast}, 100, 0); got != 3000 {
		t.Errorf("Fast default budget = %v, want 3000", got)
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		SchemeLite:     "Corona-Lite",
		SchemeFast:     "Corona-Fast",
		SchemeFair:     "Corona-Fair",
		SchemeFairSqrt: "Corona-Fair-Sqrt",
		SchemeFairLog:  "Corona-Fair-Log",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("String(%d) = %q, want %q", int(s), s.String(), name)
		}
	}
}

func TestIntervalEstimator(t *testing.T) {
	var e intervalEstimator
	if got := e.interval(); got != defaultInterval {
		t.Fatalf("prior = %v, want one week", got)
	}
	base := time.Date(2006, 5, 1, 0, 0, 0, 0, time.UTC)
	e.observe(base)
	if got := e.interval(); got != defaultInterval {
		t.Fatalf("single observation should not move the prior, got %v", got)
	}
	for i := 1; i <= 20; i++ {
		e.observe(base.Add(time.Duration(i) * 10 * time.Minute))
	}
	got := e.interval()
	if got < 9*time.Minute || got > 11*time.Minute {
		t.Fatalf("estimate after steady 10m gaps = %v", got)
	}
	// Out-of-order observation is ignored.
	e.observe(base)
	if e.interval() != got {
		t.Fatal("out-of-order observation changed the estimate")
	}
}

// idAt builds an ID at the given fraction of the ring.
func idAt(frac float64) ids.ID {
	var id ids.ID
	v := uint64(frac * float64(^uint64(0)))
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (56 - 8*i))
	}
	return id
}

func TestEstimateNodeCountAccuracy(t *testing.T) {
	// Build a synthetic leaf set as if the ring had n uniformly spaced
	// nodes; the estimator must land within a small factor of n.
	for _, n := range []int{64, 1024, 16384} {
		self := idAt(0.5)
		var leaves []pastry.Addr
		k := 8
		for i := 1; i <= k/2; i++ {
			leaves = append(leaves,
				pastry.Addr{ID: idAt(0.5 + float64(i)/float64(n))},
				pastry.Addr{ID: idAt(0.5 - float64(i)/float64(n))})
		}
		got := estimateNodeCount(self, leaves)
		if got < n/3 || got > n*3 {
			t.Errorf("estimate for n=%d: got %d", n, got)
		}
	}
}

func TestEstimateNodeCountDegenerate(t *testing.T) {
	if got := estimateNodeCount(idAt(0.3), nil); got != 1 {
		t.Errorf("empty leaf set estimate = %d, want 1", got)
	}
	// A leaf at the same ID (degenerate) must not panic or return zero.
	got := estimateNodeCount(idAt(0.3), []pastry.Addr{{ID: idAt(0.3)}})
	if got < 1 {
		t.Errorf("degenerate estimate = %d", got)
	}
}

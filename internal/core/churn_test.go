package core_test

import (
	"fmt"
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/ids"
	"corona/internal/pastry"
)

// TestNodeJoinsMidRun verifies the dynamic-membership path: a node joins
// through the message-driven join protocol while the cloud is operating,
// converges into the ring, and can serve as a subscription entry point.
func TestNodeJoinsMidRun(t *testing.T) {
	tc := newTestCloud(t, 12, nil)
	url := "http://feeds.example.net/churn.xml"
	tc.host(url, 20*time.Minute)
	tc.nodes[0].Subscribe("alice", url)
	tc.sim.RunFor(30 * time.Minute)

	// A thirteenth node joins through node 0.
	ep := "sim://joiner"
	holder := &struct{ n *pastry.Node }{}
	endpoint := tc.net.Attach(ep, func(m pastry.Message) {
		if holder.n != nil {
			holder.n.Deliver(m)
		}
	})
	overlay := pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.HashString("joiner"), Endpoint: ep}, endpoint, tc.sim)
	holder.n = overlay
	cfg := core.DefaultConfig()
	cfg.NodeCount = 13
	cfg.PollInterval = 10 * time.Minute
	cfg.MaintenanceInterval = 20 * time.Minute
	cfg.CountSubscribersOnly = false
	cfg.Seed = 99
	fetcher := &core.OriginFetcher{Origin: tc.origin, Clock: tc.sim}
	joiner := core.NewNode(cfg, overlay, tc.sim, fetcher, tc.notify, tc.sink)
	if err := overlay.Join(tc.nodes[0].Self()); err != nil {
		t.Fatalf("join: %v", err)
	}
	tc.sim.RunFor(time.Minute)
	if !overlay.Joined() {
		t.Fatal("joiner did not complete the join protocol")
	}
	joiner.Start()

	// The joiner can act as an entry point: subscriptions routed through
	// it reach the (possibly unchanged) owner.
	if err := joiner.Subscribe("bob", url); err != nil {
		t.Fatalf("subscribe via joiner: %v", err)
	}
	tc.sim.RunFor(time.Minute)
	total := 0
	for _, n := range append(tc.nodes, joiner) {
		total += n.Stats().SubscriptionsHeld
	}
	if total != 2 {
		t.Fatalf("subscriptions held across cloud = %d, want 2", total)
	}

	// Updates keep flowing after the join.
	before := len(tc.sink.earliest)
	tc.sim.RunFor(2 * time.Hour)
	if len(tc.sink.earliest) <= before {
		t.Fatal("no updates detected after join")
	}
}

// TestManyJoinsConvergeOwnership verifies that after a batch of protocol
// joins, exactly one node considers itself the owner of each channel.
func TestManyJoinsConvergeOwnership(t *testing.T) {
	tc := newTestCloud(t, 8, nil)
	urls := make([]string, 10)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://feeds.example.net/own%d.xml", i)
		tc.host(urls[i], time.Hour)
		tc.nodes[i%len(tc.nodes)].Subscribe(fmt.Sprintf("c%d", i), urls[i])
	}
	tc.sim.RunFor(10 * time.Minute)
	for _, url := range urls {
		id := ids.HashString(url)
		owners := 0
		for _, n := range tc.nodes {
			if n.Overlay().IsRoot(id) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("channel %s has %d overlay roots", url, owners)
		}
	}
}

package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/eventsim"
	"corona/internal/ids"
	"corona/internal/pastry"
	"corona/internal/simnet"
	"corona/internal/webserver"
)

var t0 = eventsim.Epoch

// testCloud is a small in-simulation Corona deployment for unit tests.
type testCloud struct {
	sim    *eventsim.Sim
	net    *simnet.Network
	origin *webserver.Origin
	nodes  []*core.Node
	sink   *recordingSink
	notify *recordingNotifier
}

// recordingSink deduplicates detection events per (channel, version),
// keeping the earliest, exactly as the evaluation harness does.
type recordingSink struct {
	mu       sync.Mutex
	earliest map[string]time.Time // "url#version" -> time
}

func newRecordingSink() *recordingSink {
	return &recordingSink{earliest: make(map[string]time.Time)}
}

func (s *recordingSink) UpdateDetected(url string, version uint64, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := fmt.Sprintf("%s#%d", url, version)
	if prev, ok := s.earliest[key]; !ok || at.Before(prev) {
		s.earliest[key] = at
	}
}

func (s *recordingSink) detectionOf(url string, version uint64) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	at, ok := s.earliest[fmt.Sprintf("%s#%d", url, version)]
	return at, ok
}

// recordingNotifier captures IM notifications.
type recordingNotifier struct {
	mu      sync.Mutex
	perUser map[string][]uint64 // client -> versions
	counts  map[string]int      // url -> total notified
}

func newRecordingNotifier() *recordingNotifier {
	return &recordingNotifier{perUser: make(map[string][]uint64), counts: make(map[string]int)}
}

func (r *recordingNotifier) Notify(client, url string, version uint64, diff string, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.perUser[client] = append(r.perUser[client], version)
	r.counts[url]++
}

func (r *recordingNotifier) NotifyBatch(clients []string, url string, version uint64, diff string, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range clients {
		r.perUser[c] = append(r.perUser[c], version)
		r.counts[url]++
	}
}

func (r *recordingNotifier) NotifyCount(url string, version uint64, count int, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[url] += count
}

// total reports how many notifications the channel has delivered.
func (r *recordingNotifier) total(url string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[url]
}

// newTestCloud builds n nodes with a converged overlay over simnet.
func newTestCloud(t testing.TB, n int, mutate func(i int, cfg *core.Config)) *testCloud {
	t.Helper()
	tc := &testCloud{
		sim:    eventsim.New(7),
		sink:   newRecordingSink(),
		notify: newRecordingNotifier(),
	}
	tc.net = simnet.New(tc.sim, simnet.FixedLatency(10*time.Millisecond))
	tc.origin = webserver.NewOrigin()
	rng := tc.sim.RNG("cloud-ids")
	overlays := make([]*pastry.Node, n)
	for i := 0; i < n; i++ {
		ep := fmt.Sprintf("sim://%d", i)
		var overlay *pastry.Node
		endpoint := tc.net.Attach(ep, func(m pastry.Message) {
			if overlay != nil {
				overlay.Deliver(m)
			}
		})
		overlay = pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.Random(rng), Endpoint: ep}, endpoint, tc.sim)
		overlays[i] = overlay
	}
	pastry.BuildStaticOverlay(overlays)
	fetcher := &core.OriginFetcher{Origin: tc.origin, Clock: tc.sim}
	for i, overlay := range overlays {
		cfg := core.DefaultConfig()
		cfg.NodeCount = n
		cfg.PollInterval = 10 * time.Minute
		cfg.MaintenanceInterval = 20 * time.Minute
		cfg.CountSubscribersOnly = false
		cfg.OwnerReplicas = 2
		cfg.Seed = int64(i)
		if mutate != nil {
			mutate(i, &cfg)
		}
		node := core.NewNode(cfg, overlay, tc.sim, fetcher, tc.notify, tc.sink)
		tc.nodes = append(tc.nodes, node)
		node.Start()
	}
	return tc
}

// host adds a channel with a periodic update process.
func (tc *testCloud) host(url string, interval time.Duration) {
	tc.origin.Host(webserver.ChannelConfig{
		URL:       url,
		SizeBytes: 4096,
		Process:   webserver.PeriodicProcess{Origin: t0.Add(time.Minute), Interval: interval},
	})
}

// ownerOf finds the node currently owning the channel.
func (tc *testCloud) ownerOf(url string) *core.Node {
	id := ids.HashString(url)
	for _, n := range tc.nodes {
		if n.Overlay().IsRoot(id) {
			return n
		}
	}
	return nil
}

// pollers counts nodes currently polling the channel.
func (tc *testCloud) pollers(url string) int {
	count := 0
	for _, n := range tc.nodes {
		if _, polling, ok := n.ChannelLevel(url); ok && polling {
			count++
		}
	}
	return count
}

func TestSubscribeReachesOwner(t *testing.T) {
	tc := newTestCloud(t, 16, nil)
	url := "http://feeds.example.net/a.xml"
	tc.host(url, time.Hour)
	tc.nodes[3].Subscribe("alice", url)
	tc.nodes[5].Subscribe("bob", url)
	tc.sim.RunFor(5 * time.Second)

	owner := tc.ownerOf(url)
	if owner == nil {
		t.Fatal("no owner for channel")
	}
	stats := owner.Stats()
	if stats.ChannelsOwned != 1 || stats.SubscriptionsHeld != 2 {
		t.Fatalf("owner stats = %+v, want 1 channel / 2 subscriptions", stats)
	}
	// No other node owns it.
	for _, n := range tc.nodes {
		if n != owner && n.Stats().ChannelsOwned != 0 {
			t.Fatalf("node %v also claims ownership", n.Self())
		}
	}
}

func TestUnsubscribeReducesCount(t *testing.T) {
	tc := newTestCloud(t, 8, nil)
	url := "http://feeds.example.net/u.xml"
	tc.host(url, time.Hour)
	tc.nodes[0].Subscribe("alice", url)
	tc.nodes[1].Subscribe("bob", url)
	tc.sim.RunFor(time.Second)
	tc.nodes[2].Unsubscribe("alice", url)
	tc.sim.RunFor(time.Second)
	owner := tc.ownerOf(url)
	if got := owner.Stats().SubscriptionsHeld; got != 1 {
		t.Fatalf("subscriptions after unsubscribe = %d, want 1", got)
	}
	// Unsubscribing an unknown client is a no-op.
	tc.nodes[2].Unsubscribe("mallory", url)
	tc.sim.RunFor(time.Second)
	if got := owner.Stats().SubscriptionsHeld; got != 1 {
		t.Fatalf("unknown unsubscribe changed count to %d", got)
	}
}

func TestOwnerDetectsUpdatesAndNotifies(t *testing.T) {
	tc := newTestCloud(t, 16, nil)
	url := "http://feeds.example.net/hot.xml"
	tc.host(url, 30*time.Minute)
	tc.nodes[0].Subscribe("alice", url)
	tc.sim.RunFor(4 * time.Hour)

	// Updates occur at +1min, +31min, +61min, ... The owner polls every
	// 10 minutes, so every update must be detected within 10 minutes.
	proc, _ := tc.origin.Process(url)
	for v := uint64(2); v <= 6; v++ {
		at, ok := tc.sink.detectionOf(url, v)
		if !ok {
			t.Fatalf("version %d never detected", v)
		}
		latency := at.Sub(proc.UpdateTime(v))
		if latency < 0 || latency > 10*time.Minute+time.Minute {
			t.Fatalf("version %d detection latency %v outside one poll interval", v, latency)
		}
	}
	tc.notify.mu.Lock()
	aliceVersions := len(tc.notify.perUser["alice"])
	tc.notify.mu.Unlock()
	if aliceVersions < 4 {
		t.Fatalf("alice received %d notifications, want ≥4", aliceVersions)
	}
}

func TestPopularChannelGetsMorePollers(t *testing.T) {
	// A constrained budget: one popular channel among many niche ones.
	// The optimizer must give the popular channel at least as many
	// pollers as any niche channel and more than the typical one.
	tc := newTestCloud(t, 32, func(i int, cfg *core.Config) {
		cfg.CountSubscribersOnly = true
		cfg.OwnerReplicas = 0
	})
	popular := "http://feeds.example.net/popular.xml"
	tc.host(popular, 30*time.Minute)
	niches := make([]string, 30)
	for j := range niches {
		niches[j] = fmt.Sprintf("http://feeds.example.net/niche%02d.xml", j)
		tc.host(niches[j], 30*time.Minute)
		tc.nodes[j%len(tc.nodes)].Subscribe(fmt.Sprintf("loner%d", j), niches[j])
	}
	for i := 0; i < 100; i++ {
		tc.nodes[i%len(tc.nodes)].Subscribe(fmt.Sprintf("u%d", i), popular)
	}
	// Let several maintenance rounds run.
	tc.sim.RunFor(3 * time.Hour)

	pop := tc.pollers(popular)
	nichePollers := make([]int, len(niches))
	maxNiche, sumNiche := 0, 0
	for j, u := range niches {
		nichePollers[j] = tc.pollers(u)
		sumNiche += nichePollers[j]
		if nichePollers[j] > maxNiche {
			maxNiche = nichePollers[j]
		}
	}
	meanNiche := float64(sumNiche) / float64(len(niches))
	if pop < 2 {
		t.Fatalf("popular channel never expanded beyond the owner (pollers=%d)", pop)
	}
	if float64(pop) <= meanNiche {
		t.Fatalf("popular channel has %d pollers, niche mean %.1f; want more for popular", pop, meanNiche)
	}
}

func TestLiteLoadConvergesToBudget(t *testing.T) {
	// Corona-Lite's core promise (Figure 3): total polling load settles
	// near the legacy budget Σqᵢ per polling interval.
	tc := newTestCloud(t, 32, func(i int, cfg *core.Config) {
		cfg.CountSubscribersOnly = true
		cfg.OwnerReplicas = 0
	})
	const channels = 40
	totalSubs := 0
	for j := 0; j < channels; j++ {
		url := fmt.Sprintf("http://feeds.example.net/c%02d.xml", j)
		tc.host(url, time.Hour)
		subs := 1 + (channels-j)/4 // mildly skewed popularity
		for s := 0; s < subs; s++ {
			tc.nodes[(j+s)%len(tc.nodes)].Subscribe(fmt.Sprintf("s%d-%d", j, s), url)
		}
		totalSubs += subs
	}
	// Warm up through several maintenance rounds, then measure.
	tc.sim.RunFor(3 * time.Hour)
	tc.origin.ResetLoad()
	tc.sim.RunFor(2 * time.Hour)
	load := tc.origin.TotalLoad()
	pollInterval := 10 * time.Minute
	perInterval := float64(load.Polls) / (2 * time.Hour.Hours() * float64(time.Hour/pollInterval))
	// Allow overshoot headroom for level granularity (the optimizer is
	// integral) but require the budget actually be used.
	if perInterval > 1.6*float64(totalSubs) {
		t.Fatalf("load %.1f polls/interval far exceeds budget %d", perInterval, totalSubs)
	}
	if perInterval < 0.2*float64(totalSubs) {
		t.Fatalf("load %.1f polls/interval leaves budget %d unused", perInterval, totalSubs)
	}
}

func TestCooperativeDetectionFasterThanSolo(t *testing.T) {
	tc := newTestCloud(t, 32, func(i int, cfg *core.Config) {
		cfg.CountSubscribersOnly = true
		cfg.OwnerReplicas = 0
	})
	url := "http://feeds.example.net/fast.xml"
	tc.host(url, 15*time.Minute)
	for i := 0; i < 300; i++ {
		tc.nodes[i%len(tc.nodes)].Subscribe(fmt.Sprintf("c%d", i), url)
	}
	// Warm up: two maintenance rounds to expand the wedge.
	tc.sim.RunFor(90 * time.Minute)
	warmupEnd := tc.sim.Now()

	tc.sim.RunFor(4 * time.Hour)
	proc, _ := tc.origin.Process(url)
	var total time.Duration
	var count int
	for v := uint64(1); ; v++ {
		ut := proc.UpdateTime(v)
		if ut.After(tc.sim.Now().Add(-20 * time.Minute)) {
			break
		}
		if ut.Before(warmupEnd) {
			continue
		}
		at, ok := tc.sink.detectionOf(url, v)
		if !ok {
			continue
		}
		total += at.Sub(ut)
		count++
	}
	if count < 5 {
		t.Fatalf("too few measured updates: %d", count)
	}
	mean := total / time.Duration(count)
	// Solo polling at 10 min averages 5 min; cooperation must beat it
	// clearly.
	if mean > 4*time.Minute {
		t.Fatalf("cooperative mean detection %v, want well under solo 5m", mean)
	}
}

func TestWedgeMembershipRespected(t *testing.T) {
	tc := newTestCloud(t, 32, func(i int, cfg *core.Config) {
		cfg.CountSubscribersOnly = true
		cfg.OwnerReplicas = 0
	})
	url := "http://feeds.example.net/wedge.xml"
	tc.host(url, 20*time.Minute)
	for i := 0; i < 500; i++ {
		tc.nodes[i%len(tc.nodes)].Subscribe(fmt.Sprintf("w%d", i), url)
	}
	tc.sim.RunFor(3 * time.Hour)

	id := ids.HashString(url)
	base := tc.nodes[0].Overlay().Base()
	for _, n := range tc.nodes {
		level, polling, ok := n.ChannelLevel(url)
		if !ok || !polling {
			continue
		}
		isOwner := n.Overlay().IsRoot(id)
		if !isOwner && !base.InWedge(n.Self().ID, id, level) {
			t.Fatalf("node %v polls outside its wedge (level %d)", n.Self(), level)
		}
	}
}

func TestUpdateDisseminationReachesWedge(t *testing.T) {
	tc := newTestCloud(t, 32, func(i int, cfg *core.Config) {
		cfg.CountSubscribersOnly = true
		cfg.OwnerReplicas = 0
	})
	url := "http://feeds.example.net/diss.xml"
	tc.host(url, 25*time.Minute)
	for i := 0; i < 400; i++ {
		tc.nodes[i%len(tc.nodes)].Subscribe(fmt.Sprintf("d%d", i), url)
	}
	tc.sim.RunFor(3 * time.Hour)

	// Every polling node must have received/learned recent versions: the
	// sum of their "received" plus "detected" counters must cover all
	// pollers (no poller left permanently stale).
	var received, detected uint64
	for _, n := range tc.nodes {
		s := n.Stats()
		received += s.UpdatesReceived
		detected += s.UpdatesDetected
	}
	if detected == 0 {
		t.Fatal("no updates detected at all")
	}
	if received == 0 {
		t.Fatal("updates never disseminated to other wedge members")
	}
}

func TestOwnerFailoverPreservesSubscriptions(t *testing.T) {
	tc := newTestCloud(t, 16, nil)
	url := "http://feeds.example.net/failover.xml"
	tc.host(url, 30*time.Minute)
	tc.nodes[0].Subscribe("alice", url)
	tc.nodes[1].Subscribe("bob", url)
	tc.sim.RunFor(time.Minute)

	owner := tc.ownerOf(url)
	if owner == nil {
		t.Fatal("no owner")
	}
	tc.net.Crash(owner.Self().Endpoint)
	owner.Stop()
	// Let maintenance traffic hit the dead node and trigger repair plus
	// replica promotion.
	tc.sim.RunFor(2 * time.Hour)

	var newOwner *core.Node
	for _, n := range tc.nodes {
		if n == owner {
			continue
		}
		if s := n.Stats(); s.ChannelsOwned == 1 {
			newOwner = n
			break
		}
	}
	if newOwner == nil {
		t.Fatal("no replica promoted to owner after crash")
	}
	if got := newOwner.Stats().SubscriptionsHeld; got != 2 {
		t.Fatalf("promoted owner holds %d subscriptions, want 2", got)
	}
}

func TestStopHaltsPolling(t *testing.T) {
	tc := newTestCloud(t, 8, nil)
	url := "http://feeds.example.net/stop.xml"
	tc.host(url, time.Hour)
	tc.nodes[0].Subscribe("x", url)
	tc.sim.RunFor(time.Minute)
	owner := tc.ownerOf(url)
	owner.Stop()
	before, _ := tc.origin.Load(url)
	tc.sim.RunFor(2 * time.Hour)
	after, _ := tc.origin.Load(url)
	if after.Polls != before.Polls {
		t.Fatalf("stopped owner still polled (%d -> %d)", before.Polls, after.Polls)
	}
}

package core

import (
	"math"
	"time"

	"corona/internal/ids"
	"corona/internal/pastry"
)

// intervalEstimator tracks a channel's update interval from observed
// update times (paper §3.3: "The latter is estimated based on time between
// updates detected by Corona"). It keeps an exponentially weighted moving
// average of inter-update gaps, bootstrapped pessimistically so a channel
// that has never updated is treated as slow-changing rather than hot.
type intervalEstimator struct {
	// lastUpdate is the most recent observed update instant.
	lastUpdate time.Time
	// ewma is the smoothed gap estimate in seconds; zero means no gap
	// observed yet.
	ewma float64
	// observed counts update gaps folded in.
	observed int
}

// estimatorAlpha is the EWMA smoothing factor: new gaps move the estimate
// by 25%, balancing responsiveness against poll-phase noise.
const estimatorAlpha = 0.25

// defaultInterval is the prior for channels with no observed updates: the
// one-week cap the paper applies to channels that never changed (§5.1).
const defaultInterval = 7 * 24 * time.Hour

// observe folds in an update seen at t. Multiple versions arriving at the
// same poll count as one observation of the enclosing gap.
func (e *intervalEstimator) observe(t time.Time) {
	if e.lastUpdate.IsZero() {
		e.lastUpdate = t
		return
	}
	gap := t.Sub(e.lastUpdate).Seconds()
	if gap <= 0 {
		return
	}
	e.lastUpdate = t
	if e.ewma == 0 {
		e.ewma = gap
	} else {
		e.ewma = estimatorAlpha*gap + (1-estimatorAlpha)*e.ewma
	}
	e.observed++
}

// interval returns the current estimate.
func (e *intervalEstimator) interval() time.Duration {
	if e.ewma == 0 {
		return defaultInterval
	}
	return time.Duration(e.ewma * float64(time.Second))
}

// estimateNodeCount infers the overlay size from leaf-set density: if the
// k nearest neighbors span an arc of length d on a ring of circumference
// C, the population is about k·C/d. This is how a deployed node learns N
// without central coordination (§5.3).
func estimateNodeCount(self ids.ID, leaves []pastry.Addr) int {
	if len(leaves) == 0 {
		return 1
	}
	// Find the maximum ring distance from self to a leaf; the leaf set
	// holds the nearest members on both sides, so that arc (twice, for
	// both sides) contains len(leaves) nodes.
	var maxDist ids.ID
	for _, a := range leaves {
		if d := self.Distance(a.ID); d.Cmp(maxDist) > 0 {
			maxDist = d
		}
	}
	if maxDist.IsZero() {
		return 1
	}
	// Estimate using the leading 64 bits of distance vs the full ring.
	distHi := float64(beUint64(maxDist))
	if distHi == 0 {
		distHi = 1
	}
	ringHi := math.Pow(2, 64)
	density := float64(len(leaves)) / (2 * distHi) // nodes per unit arc (one side avg)
	n := int(density * 2 * ringHi)
	if n < len(leaves)+1 {
		n = len(leaves) + 1
	}
	return n
}

// beUint64 reads the top 8 bytes of an ID as a big-endian integer.
func beUint64(id ids.ID) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(id[i])
	}
	return v
}

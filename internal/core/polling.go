package core

import (
	"time"

	"corona/internal/diffengine"
	"corona/internal/pastry"
)

// rssExtractor is the shared difference-engine profile for micronews
// documents; extraction is stateless so one instance serves all channels.
var rssExtractor = diffengine.RSSProfile()

// startPollingLocked begins the periodic poll loop for a channel with a
// random initial phase, so polls by different wedge members spread evenly
// over the polling interval (paper §3.3: "it waits for a random interval
// of time between 0 and the polling interval").
func (n *Node) startPollingLocked(ch *channelState) {
	if ch.polling || n.stopped {
		return
	}
	ch.polling = true
	phase := time.Duration(n.rng.Int63n(int64(n.cfg.PollInterval)))
	ch.pollTimer = n.clk.AfterFunc(phase, func() { n.pollChannel(ch) })
}

// stopPollingLocked halts the poll loop.
func (n *Node) stopPollingLocked(ch *channelState) {
	if !ch.polling {
		return
	}
	ch.polling = false
	if ch.pollTimer != nil {
		ch.pollTimer.Stop()
		ch.pollTimer = nil
	}
}

// pollChannel performs one poll and reschedules the next.
func (n *Node) pollChannel(ch *channelState) {
	n.mu.Lock()
	if !ch.polling || n.stopped {
		n.mu.Unlock()
		return
	}
	// Reschedule first so a panic in handling cannot silently stop the
	// loop, and so poll cadence is independent of processing time.
	ch.pollTimer = n.clk.AfterFunc(n.cfg.PollInterval, func() { n.pollChannel(ch) })
	n.stats.PollsIssued++
	have := ch.lastVersion
	url := ch.url
	n.mu.Unlock()

	res, err := n.fetcher.Fetch(url, have)
	if err != nil {
		// Origin unreachable this round; keep polling.
		return
	}
	if !res.Modified || res.Version <= have {
		return
	}
	n.updateDetected(ch, fetchedUpdate{
		Version:      res.Version,
		Bytes:        res.Bytes,
		Body:         res.Body,
		HasTimestamp: true, // simulated origins expose modification versions
	})
}

// updateDetected runs when this node's own poll observed a fresh version.
func (n *Node) updateDetected(ch *channelState, res fetchedUpdate) {
	now := n.now()

	var diffText string
	var diffBytes int
	if n.cfg.ContentMode && res.Body != nil {
		// Run the difference engine over extracted core content; only
		// germane changes disseminate (§3.4).
		newContent := rssExtractor.Extract(string(res.Body))
		n.mu.Lock()
		old := ch.content
		oldVersion := ch.lastVersion
		ch.content = newContent
		n.mu.Unlock()
		d := diffengine.Compute(old, newContent, oldVersion, res.Version)
		if d.Empty() && oldVersion > 0 {
			// Superficial churn only: remember the version, no dissemination.
			n.mu.Lock()
			if res.Version > ch.lastVersion {
				ch.lastVersion = res.Version
			}
			n.mu.Unlock()
			return
		}
		diffText = diffengine.Encode(d)
		diffBytes = d.WireSize()
	} else {
		diffBytes = res.Bytes / 15 // delta ≈ 6.8% of content (survey [19])
	}

	n.mu.Lock()
	if res.Version <= ch.lastVersion {
		n.mu.Unlock()
		return // raced with dissemination
	}
	ch.lastVersion = res.Version
	ch.est.observe(now)
	level := ch.level
	if level < 0 {
		level = n.env().MaxLevel
	}
	isOwner := ch.isOwner
	var claimEpoch uint64
	if isOwner {
		// Owner-originated dissemination carries the fencing epoch, so a
		// stale co-owner learns of its demotion from the answer itself.
		claimEpoch = ch.ownerEpoch
	}
	n.stats.UpdatesDetected++
	n.emitVersionLocked(ch)
	n.mu.Unlock()

	if n.sink != nil {
		n.sink.UpdateDetected(ch.url, res.Version, now)
	}

	// Share the diff with the rest of the wedge along the DAG (§3.4).
	update := &updateMsg{
		URL:        ch.url,
		Version:    res.Version,
		Diff:       diffText,
		Bytes:      diffBytes,
		OwnerEpoch: claimEpoch,
	}
	if claimEpoch > 0 {
		update.Owner = n.Self()
	}
	n.sendToWedge(ch.id, ch.url, level, msgUpdate, nil, update)

	switch {
	case isOwner:
		n.notifySubscribers(ch, res.Version, diffText, now)
	case !res.HasTimestamp:
		// Channels without reliable server timestamps get their version
		// assigned by the primary owner; report the observation (§3.4).
		n.overlay.Route(ch.id, msgReport, &reportMsg{
			URL:             ch.url,
			ObservedVersion: res.Version,
			Diff:            diffText,
			Bytes:           diffBytes,
		})
	default:
		// The owner may lie across a digit boundary outside the wedge;
		// route it a copy so subscribers are notified. Owners
		// deduplicate by version, so the common case (owner already in
		// the wedge) costs one redundant message at most. Delivery is
		// best-effort either way: the owner's own poll is the backstop.
		n.overlay.Route(ch.id, msgUpdate, update)
	}
}

// fetchedUpdate narrows webserver.FetchResult plus timestamp provenance.
type fetchedUpdate struct {
	Version      uint64
	Bytes        int
	Body         []byte
	HasTimestamp bool
}

// handleUpdate processes a diff disseminated by another wedge member.
// An update carrying a non-zero OwnerEpoch is also an ownership claim:
// a node still flying a stale isOwner flag demotes on receipt of a
// winning claim — it stops answering polls immediately instead of
// waiting for its next IsRoot self-check — and a live owner answers a
// stale claim with a counter-push so the stale answerer demotes too.
func (n *Node) handleUpdate(msg pastry.Message) {
	p, ok := msg.Payload.(*updateMsg)
	if !ok {
		return
	}
	n.mu.Lock()
	ch := n.getChannel(p.URL)
	var counter *replicateMsg
	var handoff []replicatedSub
	// The claimant is named in the payload, NOT taken from the envelope:
	// wedge forwarding re-broadcasts updates with From rewritten to the
	// forwarding member, which must neither decide the tie-break nor
	// receive the counter-push.
	claimant := p.Owner
	if p.OwnerEpoch > 0 && !claimant.IsZero() && claimant.ID != n.Self().ID {
		if n.claimWinsLocked(ch, p.OwnerEpoch, claimant, true) {
			if ch.isOwner {
				// Updates carry no subscriber state; hand everything we
				// hold back through the subscribe path so the winner ends
				// up with the union (owners deduplicate by identity).
				handoff = handoffMissingLocked(ch, nil)
				n.demoteLocked(ch, false)
				// Journal the surrender like every other demotion path,
				// or a restart would resurrect Owner=true plus the stale
				// subscriber set and reopen the dual-owner window.
				n.emitMetaLocked(ch, true)
			}
			if p.OwnerEpoch > ch.ownerEpoch {
				ch.ownerEpoch = p.OwnerEpoch
				n.emitOwnerEpochLocked(ch)
			}
		} else if ch.isOwner {
			counter = n.buildReplicateLocked(ch)
		}
	}
	fresh := p.Version > ch.lastVersion
	if fresh {
		ch.lastVersion = p.Version
		ch.est.observe(n.now())
		n.stats.UpdatesReceived++
		n.emitVersionLocked(ch)
	}
	isOwner := ch.isOwner
	n.mu.Unlock()
	if counter != nil {
		n.overlay.SendDirect(claimant, msgReplicate, counter)
	}
	for _, s := range handoff {
		n.overlay.Route(ch.id, msgSubscribe, &subscribeMsg{URL: ch.url, Client: s.Client, Entry: s.Entry})
	}
	if !fresh {
		return
	}
	if n.cfg.ContentMode && p.Diff != "" {
		n.applyDiff(ch, p.Diff)
	}
	// Owners notify their subscribers when the update reaches them via
	// dissemination rather than their own poll. Updates carry no
	// detection timestamp, so the receipt time anchors the latency
	// stages — the dissemination hop before it is not counted.
	if isOwner && msg.From.ID != n.Self().ID {
		n.notifySubscribers(ch, p.Version, p.Diff, n.now())
	}
}

// applyDiff patches the locally cached core content so this node can
// generate future diffs against the newest version (§3.1: every polling
// node keeps a copy of the latest version).
func (n *Node) applyDiff(ch *channelState, encoded string) {
	d, err := diffengine.Decode(encoded)
	if err != nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	patched, err := d.Apply(ch.content)
	if err != nil {
		// Base mismatch: drop the cache; the next poll refetches whole
		// content.
		ch.content = nil
		return
	}
	ch.content = patched
}

// handleReport runs at the primary owner for channels whose versions it
// assigns: redundant simultaneous reports are discarded, fresh ones get a
// version and are re-disseminated (§3.4).
func (n *Node) handleReport(msg pastry.Message) {
	p, ok := msg.Payload.(*reportMsg)
	if !ok {
		return
	}
	n.mu.Lock()
	ch := n.getChannel(p.URL)
	if !ch.isOwner {
		n.mu.Unlock()
		return
	}
	if p.ObservedVersion <= ch.lastVersion {
		n.mu.Unlock()
		return // redundant report
	}
	ch.lastVersion = p.ObservedVersion
	ch.est.observe(n.now())
	level := ch.level
	claimEpoch := ch.ownerEpoch
	n.emitVersionLocked(ch)
	n.mu.Unlock()

	n.overlay.Broadcast(level, msgUpdate, &updateMsg{
		URL: p.URL, Version: p.ObservedVersion, Diff: p.Diff, Bytes: p.Bytes,
		OwnerEpoch: claimEpoch, Owner: n.Self(),
	})
	n.notifySubscribers(ch, p.ObservedVersion, p.Diff, n.now())
}

package core

import (
	"sort"
	"time"

	"corona/internal/ids"
	"corona/internal/pastry"
)

// ChannelRecords is a deep, read-only snapshot of the subscription-routing
// state one node holds for one channel: the owner-side entry records,
// lease marks, and delegate roster, and the delegate-side partition. The
// chaos invariant checker sweeps these across all live nodes to assert the
// ownership/lease/delegation guarantees as machine-checked postconditions;
// tests use them to observe state the counter-based ChannelInfo summary
// collapses.
type ChannelRecords struct {
	URL         string
	Owner       bool
	Replica     bool
	OwnerEpoch  uint64
	LastVersion uint64
	Polling     bool

	// Owner-side records. Subscribers maps client → entry record (nil in
	// counting mode, where only SubscriberCount is meaningful). OwnEntries
	// is the owner's slot of the sharded set when delegates carry the rest
	// (nil when unsharded).
	Subscribers     map[string]pastry.Addr
	SubscriberCount int
	Leases          map[string]time.Time
	Unsubbed        map[string]time.Time
	Delegates       []pastry.Addr
	DelegateSeq     uint64
	OwnEntries      map[string]pastry.Addr

	// Delegate-side records: the partition this node fans out on another
	// owner's behalf, with the (epoch, seq) fencing pair that installed it.
	DelegateFrom      pastry.Addr
	DelegateEpoch     uint64
	DelegateSeqSeen   uint64
	DelegatePartition map[string]pastry.Addr
}

// DelegateSlot exposes the fan-out partition function for invariant
// checkers: the slot (0 = the owner's own slice, 1..slots-1 = the
// delegates in roster order) a client's entry record belongs to when the
// channel is sharded over the given number of slots.
func DelegateSlot(client string, slots int) int {
	return delegateSlot(client, slots)
}

func copyAddrMap(m map[string]pastry.Addr) map[string]pastry.Addr {
	if m == nil {
		return nil
	}
	out := make(map[string]pastry.Addr, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyTimeMap(m map[string]time.Time) map[string]time.Time {
	if m == nil {
		return nil
	}
	out := make(map[string]time.Time, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (ch *channelState) recordsLocked() ChannelRecords {
	return ChannelRecords{
		URL:             ch.url,
		Owner:           ch.isOwner,
		Replica:         ch.isReplica,
		OwnerEpoch:      ch.ownerEpoch,
		LastVersion:     ch.lastVersion,
		Polling:         ch.polling,
		Subscribers:     copyAddrMap(ch.subs.ids),
		SubscriberCount: ch.subs.count,
		Leases:          copyTimeMap(ch.leases),
		Unsubbed:        copyTimeMap(ch.unsubbed),
		Delegates:       append([]pastry.Addr(nil), ch.delegates...),
		DelegateSeq:     ch.delegSeq,
		OwnEntries:      copyAddrMap(ch.ownEntries),

		DelegateFrom:      ch.delegFrom,
		DelegateEpoch:     ch.delegEpoch,
		DelegateSeqSeen:   ch.delegSeqSeen,
		DelegatePartition: copyAddrMap(ch.delegSubs),
	}
}

// Records returns the node's deep routing-state snapshot for one channel.
func (n *Node) Records(url string) (ChannelRecords, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ch, ok := n.channels[ids.HashString(url)]
	if !ok {
		return ChannelRecords{}, false
	}
	return ch.recordsLocked(), true
}

// EachChannel visits a routing-state snapshot of every channel this node
// tracks. Snapshots are deep-copied under the node lock first, then
// visited without it, so the visitor may call back into the node.
func (n *Node) EachChannel(visit func(ChannelRecords)) {
	n.mu.Lock()
	snaps := make([]ChannelRecords, 0, len(n.channels))
	for _, ch := range n.channels {
		snaps = append(snaps, ch.recordsLocked())
	}
	n.mu.Unlock()
	// Visit in URL order, not map order: the chaos harness folds visitor
	// output into seeded-run reports, which must be rerun-stable.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].URL < snaps[j].URL })
	for _, s := range snaps {
		visit(s)
	}
}

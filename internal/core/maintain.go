package core

import (
	"sort"
	"time"

	"corona/internal/honeycomb"
	"corona/internal/pastry"
)

// maintenanceTick runs the periodic protocol: an optimization phase over
// local fine-grained factors plus aggregated clusters, a maintenance phase
// conveying level changes to routing contacts, and an aggregation phase
// exchanging cluster summaries (paper §3.3: "In practice, the three phases
// occur concurrently at a node with aggregation data piggy-backed on
// maintenance messages").
func (n *Node) maintenanceTick() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.maintTimer = n.clk.AfterFunc(n.cfg.MaintenanceInterval, n.maintenanceTick)
	n.stats.MaintenanceRounds++
	draw := n.rng.Int()
	n.mu.Unlock()

	// Ring-level anti-entropy first: ownership placement below is judged
	// against the ring view this exchange keeps honest.
	n.overlay.Stabilize(draw)
	n.ownerAntiEntropy()
	n.leaseSweep()
	n.delegateMaintain()
	n.optimizePhase()
	n.aggregationPhase()
}

// ownedTradeoffLocked snapshots the tradeoff factors of an owned channel.
func (n *Node) ownedTradeoffLocked(ch *channelState, env TradeoffEnv, meanSize float64) ChannelTradeoff {
	s := 1.0
	if meanSize > 0 && ch.sizeBytes > 0 {
		s = float64(ch.sizeBytes) / meanSize
	}
	t := ChannelTradeoff{
		Q:        float64(ch.subs.count),
		SNorm:    s,
		U:        ch.est.interval(),
		MinLevel: 0,
		MaxLevel: env.MaxLevel,
	}
	if ch.orphan {
		t.MinLevel, t.MaxLevel = env.MaxLevel, env.MaxLevel
	}
	return t
}

// optimizePhase decides polling levels for the channels this node owns.
// The solver input is the node's fine-grained knowledge (its owned
// channels) plus the coarse-grained cluster summary of everyone else's
// (§3.2). Level changes move one step per round and are conveyed to the
// affected wedge via poll-control broadcasts (§3.3).
func (n *Node) optimizePhase() {
	env := n.env()

	n.mu.Lock()
	var owned []*channelState
	var meanSizeTotal float64
	var meanSizeCount int
	for _, ch := range n.channels {
		if ch.isOwner {
			owned = append(owned, ch)
			if ch.sizeBytes > 0 {
				meanSizeTotal += float64(ch.sizeBytes)
				meanSizeCount++
			}
		}
	}
	// Map iteration order is random; sort so solver tie-breaking — and
	// therefore the whole simulation — is deterministic for a seed.
	sort.Slice(owned, func(a, b int) bool {
		return owned[a].id.Cmp(owned[b].id) < 0
	})
	meanSize := 4096.0
	if meanSizeCount > 0 {
		meanSize = meanSizeTotal / float64(meanSizeCount)
	}

	// Remote knowledge: merge the cluster aggregates most recently
	// received from routing contacts. Combined, they summarize all
	// channels owned outside this node's subtree.
	remote := honeycomb.NewClusterSet(n.cfg.TradeoffBins, env.MaxLevel)
	for _, row := range n.clusterIn {
		for _, cs := range row {
			remote.MergeSet(cs)
		}
	}

	entries := make([]honeycomb.Entry, 0, len(owned)+32)
	for i, ch := range owned {
		tr := n.ownedTradeoffLocked(ch, env, meanSize)
		entries = append(entries, BuildEntry(n.cfg.Policy, env, tr, i))
	}
	totalQ := 0.0
	for _, ch := range owned {
		totalQ += float64(ch.subs.count)
	}
	totalQ += remote.TotalQ() + remote.Slack.SumQ
	slackLoad := remote.Slack.Count // orphans each pin one owner poll
	for _, ch := range owned {
		if ch.orphan {
			slackLoad++
		}
	}
	for _, c := range remote.NonEmpty() {
		// Cluster sizes were normalized by their producers; use them
		// directly. Orphans never reach regular clusters (they ride the
		// slack cluster), so remote entries are unconstrained.
		tr := ChannelTradeoff{
			Q:     c.MeanQ(),
			SNorm: c.MeanS(),
			U:     durationSeconds(c.MeanU()),
		}
		e := BuildEntry(n.cfg.Policy, env, tr, nil)
		e.Weight = c.Count
		entries = append(entries, e)
	}
	n.mu.Unlock()

	if len(entries) == 0 {
		return
	}
	budget := Budget(n.cfg.Policy, totalQ, slackLoad)
	sol := honeycomb.Solve(entries, budget)

	// Apply: move each owned channel one level toward its optimum and
	// broadcast the change to the affected wedge.
	type change struct {
		ch       *channelState
		newLevel int
		epoch    uint64
		floodAt  int
		q        int
		size     int
		interval float64
	}
	var changes []change
	n.mu.Lock()
	for i, ch := range owned {
		desired := sol.Levels[i]
		cur := ch.level
		if cur < 0 {
			cur = env.MaxLevel
		}
		if desired == cur || ch.orphan {
			continue
		}
		next := cur
		if desired < cur {
			next = cur - 1
		} else {
			next = cur + 1
		}
		ch.level = next
		ch.epoch++
		n.stats.LevelChanges++
		// Lowering the level expands the wedge: flood at the new, wider
		// level. Raising shrinks it: flood at the old, wider level so
		// the members being released hear the stop (§3.3).
		floodAt := next
		if next > cur {
			floodAt = cur
		}
		n.emitMetaLocked(ch, false)
		changes = append(changes, change{
			ch: ch, newLevel: next, epoch: ch.epoch, floodAt: floodAt,
			q: ch.subs.count, size: ch.sizeBytes,
			interval: ch.est.interval().Seconds(),
		})
	}
	n.mu.Unlock()

	for _, c := range changes {
		ctl := &pollCtlMsg{
			URL:         c.ch.url,
			Level:       c.newLevel,
			Epoch:       c.epoch,
			Q:           c.q,
			SizeBytes:   c.size,
			IntervalSec: c.interval,
		}
		n.sendToWedge(c.ch.id, c.ch.url, c.floodAt, msgPollCtl, ctl, nil)
	}
}

// handlePollCtl applies a poll-control broadcast: the receiver polls the
// channel iff it belongs to the announced wedge.
func (n *Node) handlePollCtl(msg pastry.Message) {
	p, ok := msg.Payload.(*pollCtlMsg)
	if !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ch := n.getChannel(p.URL)
	if p.Epoch < ch.epoch {
		return // stale control message
	}
	ch.epoch = p.Epoch
	ch.level = p.Level
	if p.Q > 0 {
		ch.subs.count = maxInt(ch.subs.count, 0)
		if !ch.isOwner && !ch.isReplica {
			ch.subs.count = p.Q
		}
	}
	if p.SizeBytes > 0 && ch.sizeBytes == 0 {
		ch.sizeBytes = p.SizeBytes
	}
	if p.IntervalSec > 0 && ch.est.ewma == 0 && !ch.isOwner {
		ch.est.ewma = p.IntervalSec
	}
	inWedge := n.overlay.Base().InWedge(n.Self().ID, ch.id, p.Level)
	switch {
	case inWedge && !ch.polling:
		n.startPollingLocked(ch)
	case !inWedge && ch.polling && !ch.isOwner:
		// Owners keep polling their channels even outside the wedge —
		// they are the level-K fallback.
		n.stopPollingLocked(ch)
	}
	// Level bookkeeping for channels this node answers for survives a
	// restart; plain wedge membership is rebuilt by the owner's next
	// poll-control broadcast and stays memory-only.
	if ch.isOwner || ch.isReplica {
		n.emitMetaLocked(ch, false)
	}
}

// aggregationPhase exchanges cluster summaries with routing-table
// contacts. To each row-i contact the node sends its subtree aggregate
// S_{i+1}: the summary of channels owned by nodes sharing at least i+1
// prefix digits with this node (itself plus deeper contacts' aggregates).
// Received aggregates refresh clusterIn and feed the next optimization
// (§3.2: overhead is TradeoffBins clusters per level per contact).
func (n *Node) aggregationPhase() {
	env := n.env()
	maxRows := n.overlay.Config().MaxTableRows

	n.mu.Lock()
	// own: summary of this node's owned channels.
	own := honeycomb.NewClusterSet(n.cfg.TradeoffBins, env.MaxLevel)
	meanSize := 4096.0
	var total float64
	var count int
	for _, ch := range n.channels {
		if ch.isOwner && ch.sizeBytes > 0 {
			total += float64(ch.sizeBytes)
			count++
		}
	}
	if count > 0 {
		meanSize = total / float64(count)
	}
	for _, ch := range n.channels {
		if !ch.isOwner {
			continue
		}
		level := ch.level
		if level < 0 {
			level = env.MaxLevel
		}
		own.Add(honeycomb.ChannelFactors{
			Q:      float64(ch.subs.count),
			S:      float64(ch.sizeBytes) / meanSize,
			U:      ch.est.interval().Seconds(),
			Level:  level,
			Orphan: ch.orphan,
		})
	}
	// subtree[i] = S_i = own + Σ_{r ≥ i} contacts' S_{r+1}.
	subtree := make([]*honeycomb.ClusterSet, maxRows+1)
	subtree[maxRows] = own
	for i := maxRows - 1; i >= 0; i-- {
		s := subtree[i+1].Clone()
		for _, cs := range n.clusterIn[i] {
			s.MergeSet(cs)
		}
		subtree[i] = s
	}
	n.mu.Unlock()

	// Send S_{i+1} to every row-i contact. Sends are fire-and-forget:
	// aggregation is periodic, so a lost message only delays one round,
	// and unreachable contacts are evicted via the transport fault path.
	for i := 0; i < maxRows; i++ {
		contacts := n.overlay.RowContacts(i)
		if len(contacts) == 0 {
			continue
		}
		msg := &maintainMsg{Row: i, Clusters: subtree[i+1]}
		for _, c := range contacts {
			n.overlay.SendDirect(c, msgMaintain, msg)
		}
	}
}

// handleMaintain stores a contact's subtree aggregate.
func (n *Node) handleMaintain(msg pastry.Message) {
	p, ok := msg.Payload.(*maintainMsg)
	if !ok || p.Clusters == nil {
		return
	}
	// The aggregate proves the contact is alive; fold it back in (it may
	// have been evicted across a partition the sender never noticed).
	n.overlay.Learn(msg.From)
	row := p.Row
	n.mu.Lock()
	defer n.mu.Unlock()
	if row < 0 || row >= len(n.clusterIn) {
		return
	}
	if n.clusterIn[row] == nil {
		n.clusterIn[row] = make(map[int]*honeycomb.ClusterSet)
	}
	// Key by the sender's digit at the row, which identifies the subtree
	// it speaks for.
	col := n.overlay.Base().Digit(msg.From.ID, row)
	n.clusterIn[row][col] = p.Clusters
}

// registerHandlers wires Corona's message types into the overlay.
func (n *Node) registerHandlers() {
	n.overlay.Handle(msgSubscribe, n.handleSubscribe)
	n.overlay.Handle(msgReplicate, n.handleReplicate)
	n.overlay.Handle(msgPollCtl, n.handlePollCtl)
	n.overlay.Handle(msgUpdate, n.handleUpdate)
	n.overlay.Handle(msgReport, n.handleReport)
	n.overlay.Handle(msgMaintain, n.handleMaintain)
	n.overlay.Handle(msgWedgeFwd, n.handleWedgeFwd)
	n.overlay.Handle(msgNotify, n.handleNotify)
	n.overlay.Handle(msgNotifyBatch, n.handleNotifyBatch)
	n.overlay.Handle(msgLease, n.handleLease)
	n.overlay.Handle(msgLeaseExpire, n.handleLeaseExpire)
	n.overlay.Handle(msgDelegate, n.handleDelegate)
	n.overlay.Handle(msgDelegateNotify, n.handleDelegateNotify)
}

// durationSeconds converts float seconds into a time.Duration.
func durationSeconds(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

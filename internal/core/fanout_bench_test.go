package core_test

import (
	"fmt"
	"testing"
	"time"

	"corona/internal/core"
)

// BenchmarkFanoutOwnerMessages drives a simulated cloud through update
// cycles on one hot channel and reports how many fan-out messages the
// owner emits per update (notify batches plus delegate disseminations).
// Without delegation the owner pays one batch per distinct entry node;
// with delegation it pays one message per delegate plus batches for its
// own slot only — the tentpole O(subscribers) → O(delegates) reduction,
// measured end to end rather than inferred from unit behavior.
func BenchmarkFanoutOwnerMessages(b *testing.B) {
	const nodes = 16
	for _, cfg := range []struct {
		name      string
		subs      int
		threshold int
	}{
		{"subs=2000/delegation=off", 2000, 0},
		{"subs=2000/delegation=on", 2000, 200},
		{"subs=10000/delegation=on", 10000, 1000},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			tc := newTestCloud(b, nodes, func(i int, c *core.Config) {
				c.OwnerReplicas = 0
				c.DelegateThreshold = cfg.threshold
			})
			url := "http://feeds.example.net/hot.xml"
			for i := 0; i < cfg.subs; i++ {
				tc.nodes[i%nodes].Subscribe(fmt.Sprintf("u%05d", i), url)
				if i%500 == 499 {
					tc.sim.RunFor(time.Second)
				}
			}
			// Past one maintenance round so delegates are recruited, then
			// one update per poll interval.
			tc.sim.RunFor(30 * time.Minute)
			owner := tc.ownerOf(url)
			if owner == nil {
				b.Fatal("no owner")
			}
			tc.host(url, 10*time.Minute)
			base := owner.Stats()
			baseVersions := tc.notify.total(url)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.sim.RunFor(10 * time.Minute)
			}
			b.StopTimer()
			st := owner.Stats()
			updates := (tc.notify.total(url) - baseVersions) / cfg.subs
			if updates == 0 {
				b.Skip("no update cycle completed in one iteration")
			}
			ownerMsgs := (st.NotifyBatchesSent - base.NotifyBatchesSent) +
				(st.DelegateUpdates - base.DelegateUpdates)
			b.ReportMetric(float64(ownerMsgs)/float64(updates), "ownermsgs/update")
			b.ReportMetric(float64(st.NotificationsSent-base.NotificationsSent)/float64(updates), "ownernotifies/update")
		})
	}
}

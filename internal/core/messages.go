package core

import (
	"corona/internal/honeycomb"
	"corona/internal/pastry"
)

// RegisterPayloadTypes hands Corona's message payload constructors to a
// wire codec (netwire) so typed payloads survive serialization in live
// deployments.
func RegisterPayloadTypes(register func(msgType string, factory func() any)) {
	register(msgSubscribe, func() any { return &subscribeMsg{} })
	register(msgUnsubscribe, func() any { return &subscribeMsg{} })
	register(msgReplicate, func() any { return &replicateMsg{} })
	register(msgPollCtl, func() any { return &pollCtlMsg{} })
	register(msgUpdate, func() any { return &updateMsg{} })
	register(msgReport, func() any { return &reportMsg{} })
	register(msgMaintain, func() any { return &maintainMsg{} })
	register(msgWedgeFwd, func() any { return &wedgeFwdMsg{} })
	register(msgNotify, func() any { return &notifyMsg{} })
	register(msgNotifyBatch, func() any { return &notifyBatchMsg{} })
	register(msgLease, func() any { return &leaseMsg{} })
	register(msgLeaseExpire, func() any { return &leaseExpireMsg{} })
	register(msgDelegate, func() any { return &delegateMsg{} })
	register(msgDelegateNotify, func() any { return &delegateNotifyMsg{} })
}

// Corona application message types carried over the overlay.
const (
	msgSubscribe   = "corona.subscribe"
	msgUnsubscribe = "corona.unsubscribe"
	msgReplicate   = "corona.replicate"
	msgPollCtl     = "corona.pollctl"
	msgUpdate      = "corona.update"
	msgReport      = "corona.report"
	msgMaintain    = "corona.maintain"
	msgWedgeFwd    = "corona.wedgefwd"
	msgNotify      = "corona.notify"
	msgLease       = "corona.lease"

	msgNotifyBatch    = "corona.notifybatch"
	msgDelegate       = "corona.delegate"
	msgDelegateNotify = "corona.delegatenotify"
	msgLeaseExpire    = "corona.leaseexpire"
)

// subscribeMsg is routed through the overlay to the channel's owner
// (paper §3.3: "owners receive subscriptions through the underlying
// overlay, which routes all subscription requests of a channel
// automatically to the node with the closest identifier").
type subscribeMsg struct {
	URL    string `json:"url"`
	Client string `json:"client"`
	// Entry is the node the client is attached to (its IM access
	// point); the owner sends this client's notifications back through
	// it, the role the paper's centralized IM intermediary plays (§4).
	Entry pastry.Addr `json:"entry"`
	// Remove distinguishes unsubscribe requests sharing the route path.
	Remove bool `json:"remove,omitempty"`
}

// replicatedSub is one subscriber record inside a replicateMsg.
type replicatedSub struct {
	Client string      `json:"client"`
	Entry  pastry.Addr `json:"entry"`
}

// notifyMsg carries one client's update notification from the channel
// owner to the client's entry node, whose IM gateway delivers it.
type notifyMsg struct {
	Client  string `json:"client"`
	URL     string `json:"url"`
	Version uint64 `json:"version"`
	Diff    string `json:"diff,omitempty"`
	// At is the detection timestamp (unix nanoseconds): when the polling
	// node first observed this version. It rides every hop of the
	// notification path unchanged, so each stage can report its latency
	// since detection. Zero from nodes predating the field.
	At int64 `json:"at,omitempty"`
}

// notifyBatchMsg carries one update for many clients from the channel
// owner (or one of its delegates) to a shared entry node: one diff, a
// list of client handles. It replaces the per-subscriber notifyMsg on the
// fan-out path, making the owner's per-update overlay cost proportional
// to distinct entry nodes rather than subscribers; the entry node's
// gateway re-fans it to the attached clients with a single shared frame
// encoding. notifyMsg survives for wire compatibility with older nodes.
type notifyBatchMsg struct {
	URL     string   `json:"url"`
	Version uint64   `json:"version"`
	Diff    string   `json:"diff,omitempty"`
	Clients []string `json:"clients"`
	// At is the detection timestamp (unix nanoseconds); see notifyMsg.At.
	At int64 `json:"at,omitempty"`
}

// replicateMsg carries owner state to the f closest neighbors so channel
// ownership survives failures (§3.3).
type replicateMsg struct {
	URL string `json:"url"`
	// Subscribers lists client identities with their entry nodes, or is
	// nil in counting mode.
	Subscribers []replicatedSub `json:"subscribers,omitempty"`
	// Count is the subscriber count (authoritative in counting mode).
	Count int `json:"count"`
	// SizeBytes and IntervalSec replicate the tradeoff factors.
	SizeBytes   int     `json:"size_bytes"`
	IntervalSec float64 `json:"interval_sec"`
	LastVersion uint64  `json:"last_version"`
	Level       int     `json:"level"`
	Epoch       uint64  `json:"epoch"`
	// OwnerEpoch is the sender's ownership fencing token. Every replicate
	// push is an ownership claim at this epoch: a receiver holding a
	// higher epoch rejects the push (and, if it is itself an owner,
	// counter-pushes its own state so the stale claimant demotes
	// immediately), while an owner receiving a higher epoch demotes on
	// receipt instead of waiting for its next IsRoot self-check.
	OwnerEpoch uint64 `json:"owner_epoch"`
	// FromOwner marks pushes from a node holding the owner role. Only
	// such claims may take the equal-epoch tie-break against a live
	// owner (the dual-owner merge after a healed partition); a replica's
	// anti-entropy claim at the same epoch must lose it, or a replica
	// whose identifier happens to sit closer to the channel would demote
	// a healthy owner every time its heartbeat went stale.
	FromOwner bool `json:"from_owner,omitempty"`
}

// pollCtlMsg adjusts a channel's polling level across its wedge. It is
// broadcast along the DAG; receivers poll iff they share Level prefix
// digits with the channel (§3.3).
type pollCtlMsg struct {
	URL   string `json:"url"`
	Level int    `json:"level"`
	// Epoch orders level changes; stale control messages are ignored.
	Epoch uint64 `json:"epoch"`
	// Factors piggy-backs the owner's current estimates so wedge members
	// and aggregation stay fresh (§3.3: estimates are carried on
	// maintenance messages through the DAG).
	Q           int     `json:"q"`
	SizeBytes   int     `json:"size_bytes"`
	IntervalSec float64 `json:"interval_sec"`
}

// updateMsg disseminates a detected update through the channel's wedge
// (§3.4). In content mode Diff carries the encoded delta; in version mode
// only version metadata travels.
type updateMsg struct {
	URL     string `json:"url"`
	Version uint64 `json:"version"`
	// Diff is the encoded delta (empty in version-only mode).
	Diff string `json:"diff,omitempty"`
	// Bytes is the transfer size for load accounting.
	Bytes int `json:"bytes"`
	// OwnerEpoch, when non-zero, marks an owner-originated dissemination
	// and carries the sender's ownership fencing token, so a node still
	// holding a stale isOwner flag learns of its demotion from ordinary
	// update traffic (the poll-answer path) rather than from the next
	// replication round. Zero on updates from plain wedge members.
	OwnerEpoch uint64 `json:"owner_epoch,omitempty"`
	// Owner is the claiming owner's address, set iff OwnerEpoch is
	// non-zero. The claim must identify its claimant explicitly: wedge
	// forwarding re-broadcasts updates with the envelope From rewritten
	// to the forwarding member, so From cannot serve as the tie-break
	// identity or the counter-push target.
	Owner pastry.Addr `json:"owner"`
}

// reportMsg is sent by a detecting node to the primary owner for channels
// without reliable server timestamps: the owner assigns the version number
// and initiates dissemination, discarding redundant simultaneous reports
// (§3.4).
type reportMsg struct {
	URL string `json:"url"`
	// ObservedVersion is the version the detector polled.
	ObservedVersion uint64 `json:"observed_version"`
	Diff            string `json:"diff,omitempty"`
	Bytes           int    `json:"bytes"`
}

// wedgeFwdMsg delegates a wedge broadcast to a node closer (in prefix
// digits) to the channel than the sender. The owner is the numerically
// closest node to the channel identifier, but near digit boundaries it may
// share fewer prefix digits than other nodes; wedge operations then hop
// along routing-table prefix contacts until a true wedge member performs
// the broadcast. A channel for which no such contact exists has an empty
// wedge — the paper's orphan (§4).
type wedgeFwdMsg struct {
	URL   string `json:"url"`
	Level int    `json:"level"`
	// InnerType and one of the payloads carry the wrapped operation.
	InnerType string      `json:"inner_type"`
	PollCtl   *pollCtlMsg `json:"poll_ctl,omitempty"`
	Update    *updateMsg  `json:"update,omitempty"`
}

// leaseMsg is an entry-node liveness heartbeat routed to a channel's
// owner: the entry node Entry vouches that Client is attached to it and
// still wants URL. The owner refreshes the subscriber's lease timestamp
// and — the failover half — re-points the client's entry record when the
// client reappears behind a different node, without a Subscribe replay.
// The refresh is an idempotent subscription assert: an owner that lost
// the subscriber (in-memory restart) re-creates it from the heartbeat.
type leaseMsg struct {
	URL    string      `json:"url"`
	Client string      `json:"client"`
	Entry  pastry.Addr `json:"entry"`
}

// leaseExpireMsg is the delegate-side half of notify-failure feedback: a
// delegate whose notifyBatch to an entry node failed reports the affected
// clients to the channel's owner, which force-expires their leases (the
// owner never sends to a delegated client's entry itself, so its own
// failed-send path cannot discover the death). Entry names the node the
// batch bounced off; the owner ignores clients whose entry record has
// already moved elsewhere, so a stale report cannot churn a repaired
// subscription.
type leaseExpireMsg struct {
	URL     string      `json:"url"`
	Entry   pastry.Addr `json:"entry"`
	Clients []string    `json:"clients"`
}

// delegateMsg installs (or revokes) a fan-out partition on a delegate: a
// hot channel's owner hands each recruited leaf-set node a disjoint slice
// of the subscriber entry records so updates can be disseminated with one
// message per delegate instead of one per entry node. OwnerEpoch fences
// the delegation exactly like replication claims: a delegate ignores
// pushes older than the epoch it last accepted, and a push at a newer
// epoch displaces the old partition wholesale. Replace pushes carry the
// full partition (the self-stabilizing refresh sent every maintenance
// round); incremental pushes upsert Subs and delete Removed, keeping the
// partition current between refreshes.
type delegateMsg struct {
	URL        string      `json:"url"`
	OwnerEpoch uint64      `json:"owner_epoch"`
	Owner      pastry.Addr `json:"owner"`
	// Seq is the owner's roster revision within OwnerEpoch. A delegate
	// ignores pushes whose (OwnerEpoch, Seq) is older than the last it
	// accepted, so a push from a superseded roster — delayed in flight,
	// or emitted by a periodic refresh that raced a fault-triggered
	// re-partition — cannot overwrite a newer partition.
	Seq uint64 `json:"seq,omitempty"`
	// Replace marks a wholesale partition replacement; otherwise Subs
	// upsert into and Removed delete from the existing partition.
	Replace bool `json:"replace,omitempty"`
	// Revoke dissolves the delegation (channel cooled below threshold or
	// the owner demoted); Subs and Removed are ignored.
	Revoke  bool            `json:"revoke,omitempty"`
	Subs    []replicatedSub `json:"subs,omitempty"`
	Removed []string        `json:"removed,omitempty"`
}

// delegateNotifyMsg is the owner's one-message-per-delegate update
// dissemination: the delegate fans the diff out to the entry nodes of its
// stored partition. OwnerEpoch must match (or exceed) the delegation
// epoch the delegate holds, so a revoked or superseded delegate never
// notifies from a stale partition.
type delegateNotifyMsg struct {
	URL        string `json:"url"`
	Version    uint64 `json:"version"`
	Diff       string `json:"diff,omitempty"`
	OwnerEpoch uint64 `json:"owner_epoch"`
	// At is the detection timestamp (unix nanoseconds); see notifyMsg.At.
	At int64 `json:"at,omitempty"`
}

// maintainMsg is the periodic exchange with routing-table contacts: the
// sender's aggregate of tradeoff clusters for its prefix subtree
// (§3.2-§3.3). Row tells the receiver which subtree depth the aggregate
// summarizes.
type maintainMsg struct {
	// Row is the routing-table row this message was sent along: the
	// aggregate summarizes channels owned by nodes sharing Row+1 prefix
	// digits with the sender.
	Row int `json:"row"`
	// Clusters is the subtree aggregate.
	Clusters *honeycomb.ClusterSet `json:"clusters"`
}

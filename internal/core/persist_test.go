package core_test

import (
	"fmt"
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/eventsim"
	"corona/internal/pastry"
	"corona/internal/simnet"
	"corona/internal/store"
	"corona/internal/webserver"
)

// TestLastUnsubscribeDemotesAndReplicates covers the far-less-tested
// subs.remove path end to end: removing the final subscriber must empty
// the replicas (no stale identities a later promotion could resurrect)
// and demote the channel's polling level bookkeeping — with q back at
// zero the optimizer walks the wedge back toward owner-only polling.
func TestLastUnsubscribeDemotesAndReplicates(t *testing.T) {
	tc := newTestCloud(t, 32, nil)
	popular := "http://feeds.example.net/popular.xml"
	tc.host(popular, 30*time.Minute)
	// Background channels keep the optimization budget contended, so the
	// popular channel's level genuinely reflects its subscribers.
	for j := 0; j < 20; j++ {
		url := fmt.Sprintf("http://feeds.example.net/bg%02d.xml", j)
		tc.host(url, time.Hour)
		tc.nodes[j%len(tc.nodes)].Subscribe(fmt.Sprintf("loner%d", j), url)
	}
	const subs = 100
	for i := 0; i < subs; i++ {
		tc.nodes[i%len(tc.nodes)].Subscribe(fmt.Sprintf("u%d", i), popular)
	}
	tc.sim.RunFor(3 * time.Hour)

	owner := tc.ownerOf(popular)
	busy, ok := owner.Channel(popular)
	if !ok || !busy.Owner {
		t.Fatalf("owner state missing: %+v", busy)
	}
	if busy.Subscribers != subs {
		t.Fatalf("owner holds %d subscribers, want %d", busy.Subscribers, subs)
	}
	busyPollers := tc.pollers(popular)
	if busyPollers < 2 {
		t.Fatalf("popular channel never expanded beyond the owner (pollers=%d)", busyPollers)
	}

	for i := 0; i < subs; i++ {
		tc.nodes[i%len(tc.nodes)].Unsubscribe(fmt.Sprintf("u%d", i), popular)
	}
	tc.sim.RunFor(4 * time.Hour)

	idle, _ := owner.Channel(popular)
	if idle.Subscribers != 0 {
		t.Fatalf("owner still holds %d subscribers after last unsubscribe", idle.Subscribers)
	}
	if idle.Level < busy.Level {
		t.Fatalf("level %d after emptying, was %d while busy; want demotion toward owner-only", idle.Level, busy.Level)
	}
	if after := tc.pollers(popular); after >= busyPollers {
		t.Fatalf("pollers %d after emptying, %d while busy; want the wedge to shrink", after, busyPollers)
	}
	// The emptied channel replicated: every replica dropped both the
	// count and the identity set.
	sawReplica := false
	for _, n := range tc.nodes {
		info, ok := n.Channel(popular)
		if !ok || !info.Replica {
			continue
		}
		sawReplica = true
		if info.Subscribers != 0 {
			t.Fatalf("replica still holds %d subscribers: %+v", info.Subscribers, info)
		}
	}
	if !sawReplica {
		t.Fatal("no replica held the channel (OwnerReplicas=2)")
	}
}

// TestStateSinkRecordsAndRecovers drives the whole durability loop in
// simulation: an owner journals its mutations through a real store, the
// store is hard-aborted (crash), and a fresh node incarnation restores
// the image, reconciles ownership, and delivers the next update to the
// recovered subscribers — no re-subscription anywhere.
func TestStateSinkRecordsAndRecovers(t *testing.T) {
	url := "http://feeds.example.net/durable.xml"
	tc := newTestCloud(t, 16, nil)
	owner := tc.ownerOf(url)
	if owner == nil {
		t.Fatal("no owner")
	}
	dir := t.TempDir()
	st, recovered, err := store.Open(store.Options{Dir: dir, CommitWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh store recovered %v", recovered)
	}
	owner.SetStateSink(st)

	// Subscribe through the owner itself so the clients' entry node is
	// the identity the restarted incarnation will reclaim.
	tc.host(url, 48*time.Hour) // effectively static during phase one
	owner.Subscribe("alice", url)
	owner.Subscribe("bob", url)
	tc.sim.RunFor(2 * time.Hour) // maintenance rounds journal meta too
	live, _ := owner.Channel(url)
	if !live.Owner || live.Subscribers != 2 {
		t.Fatalf("phase-one owner state: %+v", live)
	}
	st.Abort() // crash: no graceful flush (CommitWindow<0 already synced)

	// The store alone must reproduce the owner's durable state.
	st2, recovered, err := store.Open(store.Options{Dir: dir, CommitWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var image *store.Channel
	for i := range recovered {
		if recovered[i].URL == url {
			image = &recovered[i]
		}
	}
	if image == nil || !image.Owner || len(image.Subs) != 2 {
		t.Fatalf("recovered image = %+v", image)
	}

	// Phase two: a fresh single-node incarnation with the dead owner's
	// overlay identity, a fresh clock, and a now-changing origin.
	sim := eventsim.New(99)
	net := simnet.New(sim, simnet.FixedLatency(time.Millisecond))
	origin := webserver.NewOrigin()
	origin.Host(webserver.ChannelConfig{
		URL:       url,
		SizeBytes: 4096,
		Process:   webserver.PeriodicProcess{Origin: eventsim.Epoch.Add(time.Minute), Interval: 10 * time.Minute},
	})
	self := owner.Self()
	var overlay *pastry.Node
	endpoint := net.Attach(self.Endpoint, func(m pastry.Message) {
		if overlay != nil {
			overlay.Deliver(m)
		}
	})
	overlay = pastry.NewNode(pastry.DefaultConfig(), self, endpoint, sim)
	overlay.Bootstrap()
	cfg := core.DefaultConfig()
	cfg.NodeCount = 1
	cfg.PollInterval = 10 * time.Minute
	cfg.MaintenanceInterval = 20 * time.Minute
	cfg.CountSubscribersOnly = false
	notify := newRecordingNotifier()
	node := core.NewNode(cfg, overlay, sim, &core.OriginFetcher{Origin: origin, Clock: sim}, notify, nil)
	node.RestoreChannels(recovered)
	node.Start()
	node.ReconcileRecovered()

	info, ok := node.Channel(url)
	if !ok || !info.Owner || !info.Polling || info.Subscribers != 2 {
		t.Fatalf("reconciled state = %+v, want owning+polling with 2 subscribers", info)
	}
	if info.LastVersion != live.LastVersion {
		t.Fatalf("recovered version %d, want %d", info.LastVersion, live.LastVersion)
	}

	sim.RunFor(2 * time.Hour)
	notify.mu.Lock()
	alice, bob := len(notify.perUser["alice"]), len(notify.perUser["bob"])
	notify.mu.Unlock()
	if alice == 0 || bob == 0 {
		t.Fatalf("recovered subscribers missed updates: alice=%d bob=%d", alice, bob)
	}
}

// TestResubscribeRefreshesEntryDurably pins the entry-refresh path: a
// client re-subscribing through a different entry node changes where its
// notifications route, and that change must reach both the replicas and
// the durable store — otherwise a restarted owner would chase the
// client's previous, possibly dead, entry.
func TestResubscribeRefreshesEntryDurably(t *testing.T) {
	url := "http://feeds.example.net/refresh.xml"
	tc := newTestCloud(t, 8, nil)
	tc.host(url, 48*time.Hour)
	owner := tc.ownerOf(url)
	dir := t.TempDir()
	st, _, err := store.Open(store.Options{Dir: dir, CommitWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	owner.SetStateSink(st)

	var first, second *core.Node
	for _, n := range tc.nodes {
		if n == owner {
			continue
		}
		if first == nil {
			first = n
		} else if second == nil {
			second = n
			break
		}
	}
	first.Subscribe("alice", url)
	tc.sim.RunFor(time.Second)
	second.Subscribe("alice", url)
	tc.sim.RunFor(time.Second)

	var image *store.Channel
	for _, ch := range st.Channels() {
		if ch.URL == url {
			c := ch
			image = &c
		}
	}
	if image == nil || len(image.Subs) != 1 {
		t.Fatalf("durable image = %+v", image)
	}
	if got, want := image.Subs[0].EntryEndpoint, second.Self().Endpoint; got != want {
		t.Fatalf("durable entry = %s, want refreshed entry %s", got, want)
	}
	// The refresh also re-replicated: any replica holding identities
	// must agree on the new entry.
	for _, n := range tc.nodes {
		if info, ok := n.Channel(url); ok && info.Replica && info.Subscribers != 1 {
			t.Fatalf("replica out of sync after entry refresh: %+v", info)
		}
	}
}

// TestEmptiedChannelClearsReplicaStore pins the durable side of the
// emptied-channel replicate push: after the last unsubscribe, every
// node's durable image — replicas included — must hold zero subscribers,
// or a replica restart would resurrect the unsubscribed client.
func TestEmptiedChannelClearsReplicaStore(t *testing.T) {
	url := "http://feeds.example.net/emptied.xml"
	tc := newTestCloud(t, 8, nil)
	tc.host(url, 48*time.Hour)
	stores := make([]*store.Store, len(tc.nodes))
	for i, n := range tc.nodes {
		st, _, err := store.Open(store.Options{Dir: t.TempDir(), CommitWindow: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		stores[i] = st
		n.SetStateSink(st)
	}
	tc.nodes[1].Subscribe("alice", url)
	tc.sim.RunFor(time.Second)
	tc.nodes[1].Unsubscribe("alice", url)
	tc.sim.RunFor(time.Second)

	sawDurableChannel := false
	for i, st := range stores {
		for _, ch := range st.Channels() {
			if ch.URL != url {
				continue
			}
			sawDurableChannel = true
			if len(ch.Subs) != 0 || ch.Count != 0 {
				t.Fatalf("node %d durable image still holds subscribers: %+v", i, ch)
			}
		}
	}
	if !sawDurableChannel {
		t.Fatal("no node journaled the channel at all")
	}
}

// TestReconcileHandsOffMovedChannels covers the other restart outcome:
// the ring moved on and another node now roots the channel. The restarted
// node must not claim ownership; it re-injects its durable subscriptions
// so the new owner holds them.
func TestReconcileHandsOffMovedChannels(t *testing.T) {
	url := "http://feeds.example.net/moved.xml"
	tc := newTestCloud(t, 16, nil)
	tc.host(url, 48*time.Hour)
	owner := tc.ownerOf(url)

	// A durable image claiming ownership, restored into a node that is
	// NOT the root for the channel.
	var notRoot *core.Node
	for _, n := range tc.nodes {
		if n != owner {
			notRoot = n
			break
		}
	}
	entry := notRoot.Self()
	image := []store.Channel{{
		URL: url, Owner: true, Level: 1, Epoch: 3, SizeBytes: 4096,
		Subs: []store.Sub{{Client: "carol", EntryID: entry.ID, EntryEndpoint: entry.Endpoint}},
	}}
	notRoot.RestoreChannels(image)
	notRoot.ReconcileRecovered()
	tc.sim.RunFor(time.Minute)

	if info, ok := notRoot.Channel(url); ok && info.Owner {
		t.Fatalf("non-root claimed ownership after restore: %+v", info)
	}
	got, ok := owner.Channel(url)
	if !ok || !got.Owner || got.Subscribers != 1 {
		t.Fatalf("current owner did not receive the handed-off subscription: %+v", got)
	}
}

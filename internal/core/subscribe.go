package core

import (
	"sort"
	"time"

	"corona/internal/ids"
	"corona/internal/pastry"
)

// Subscribe registers a client's interest in a channel URL. The request is
// routed through the overlay to the channel's primary owner, which may be
// this node itself (paper §3.3, §3.5). A non-nil error means the request
// never left this node; under asynchronous transports (netwire) delivery
// failures surface later as overlay repair, and the subscription is
// retried by the client layer.
func (n *Node) Subscribe(client, url string) error {
	return n.overlay.Route(ids.HashString(url), msgSubscribe, &subscribeMsg{URL: url, Client: client, Entry: n.Self()})
}

// Unsubscribe removes a client's interest in a channel.
func (n *Node) Unsubscribe(client, url string) error {
	return n.overlay.Route(ids.HashString(url), msgSubscribe, &subscribeMsg{URL: url, Client: client, Entry: n.Self(), Remove: true})
}

// handleSubscribe runs at the channel's primary owner.
func (n *Node) handleSubscribe(msg pastry.Message) {
	p, ok := msg.Payload.(*subscribeMsg)
	if !ok {
		return
	}
	n.mu.Lock()
	ch := n.getChannel(p.URL)
	changed := false
	if p.Remove {
		changed = ch.subs.remove(p.Client, n.cfg.CountSubscribersOnly)
		delete(ch.leases, p.Client)
		// Tombstone even when the remove was a no-op: an owner that lost
		// its subscriber set (in-memory restart, stateless promotion)
		// still must not let an in-flight lease heartbeat resurrect the
		// client after this unsubscribe.
		if !n.cfg.CountSubscribersOnly {
			n.tombstoneLocked(ch, p.Client)
		}
	} else {
		changed = ch.subs.add(p.Client, p.Entry, n.cfg.CountSubscribersOnly)
		delete(ch.unsubbed, p.Client) // an explicit subscribe overrides the tombstone
	}
	n.becomeOwnerLocked(ch)
	var push *delegatePush
	if changed {
		n.emitSubLocked(ch, p.Client, p.Entry, p.Remove)
		push = n.shardEntryChangedLocked(ch, p.Client, p.Entry, p.Remove)
	}
	n.mu.Unlock()
	if push != nil {
		n.overlay.SendDirect(push.to, msgDelegate, push.msg)
	}
	if changed {
		n.replicateChannel(ch)
	}
}

// becomeOwnerLocked promotes this node to primary owner of the channel if
// it is the overlay root for the channel's identifier, starting owner-side
// polling at the base level K (§3.3: "Initially, only the owner nodes at
// level K = ceil(log N) poll for the channels").
func (n *Node) becomeOwnerLocked(ch *channelState) {
	if !n.overlay.IsRoot(ch.id) {
		return
	}
	if ch.isOwner {
		return
	}
	ch.isOwner = true
	// An owner fans out from its authoritative subscriber set; any
	// partition this node carried as someone else's delegate is
	// superseded by the promotion.
	ch.delegSubs = nil
	ch.delegFrom = pastry.Addr{}
	// Every ownership transition advances the fencing epoch, so a
	// promotion (peer fault), a recovery (ReconcileRecovered proposes
	// recoveredEpoch+1), and a reconquest (the root taking the channel
	// back from an interim owner) all outrank the claim they supersede.
	ch.ownerEpoch++
	n.emitOwnerEpochLocked(ch)
	env := n.env()
	if ch.level < 0 {
		ch.level = env.MaxLevel
	}
	if ch.sizeBytes == 0 {
		ch.sizeBytes = 4096
	}
	// Orphan classification (§4): a channel is an orphan when its
	// level-(K-1) wedge cannot be reached — no node carries enough
	// matching prefix digits. Orphans stay pinned at owner-only polling;
	// their tradeoff factors flow into the slack cluster that corrects
	// the optimization target before solving.
	base := n.overlay.Base()
	ch.ownerPrefix = base.CommonPrefix(n.Self().ID, ch.id)
	ch.orphan = !n.wedgeReachable(ch.id, env.MaxLevel-1)
	n.startPollingLocked(ch)
	n.emitMetaLocked(ch, false)
}

// buildReplicateLocked snapshots the channel's owner state as a
// replication push (an ownership claim at the current owner epoch).
// Callers hold n.mu.
func (n *Node) buildReplicateLocked(ch *channelState) *replicateMsg {
	rep := &replicateMsg{
		URL:         ch.url,
		Count:       ch.subs.count,
		SizeBytes:   ch.sizeBytes,
		IntervalSec: ch.est.interval().Seconds(),
		LastVersion: ch.lastVersion,
		Level:       ch.level,
		Epoch:       ch.epoch,
		OwnerEpoch:  ch.ownerEpoch,
		FromOwner:   ch.isOwner,
	}
	if !n.cfg.CountSubscribersOnly {
		for c, entry := range ch.subs.ids {
			rep.Subscribers = append(rep.Subscribers, replicatedSub{Client: c, Entry: entry})
		}
		// Replication payload bytes must be a pure function of the
		// subscriber set, not of map iteration order.
		sort.Slice(rep.Subscribers, func(i, j int) bool { return rep.Subscribers[i].Client < rep.Subscribers[j].Client })
	}
	return rep
}

// replicateChannel pushes owner state to the f closest ring neighbors.
func (n *Node) replicateChannel(ch *channelState) {
	if n.cfg.OwnerReplicas == 0 {
		return
	}
	n.mu.Lock()
	if !ch.isOwner {
		n.mu.Unlock()
		return
	}
	rep := n.buildReplicateLocked(ch)
	n.mu.Unlock()
	// Fire-and-forget: a replica that misses this push catches the next
	// one (replication re-runs on every subscription change), and a dead
	// neighbor surfaces through the transport's fault callback.
	for _, neighbor := range n.overlay.Neighbors(n.cfg.OwnerReplicas) {
		n.overlay.SendDirect(neighbor, msgReplicate, rep)
	}
}

// ownerReplicaStale is how many maintenance rounds of replication
// silence a replica tolerates before treating its owner as gone. Owners
// heartbeat every round, so three missed rounds is an owner that died,
// demoted without reaching us, or lost us from its neighbor set.
const ownerReplicaStale = 3

// ownerAntiEntropy re-asserts ownership claims whose ring placement looks
// wrong. The epoch-fencing handshake rides on replication pushes and
// update broadcasts, both of which fire only when something changes — so
// after a healed partition, two owners of a quiescent channel could keep
// answering polls forever without ever exchanging claims. Each maintenance
// round:
//
//   - An owner that is no longer the overlay root of a channel routes its
//     claim (a full replication push) toward the current root, where the
//     ordinary handleReplicate handshake runs: the losing epoch demotes
//     and hands off its subscribers, the root reconquers above the
//     winner. Dual ownership collapses within one round of the ring
//     views re-merging.
//
//   - An owner that IS the root heartbeat-replicates to its neighbors.
//     Replication otherwise fires only on subscription changes, which
//     leaves replicas of a quiescent channel unable to tell a healthy
//     silent owner from a dead one.
//
//   - A replica that has heard no owner push for ownerReplicaStale
//     rounds re-elects: it promotes itself if it is now the root, or
//     routes its state toward the root so the root adopts and
//     reconquers. This is the only path that revives a channel whose
//     owner died while the root-successor held no replica — the fault
//     callback promotes replicas only if they are root at the instant
//     the failure surfaces, and a root with no state never notices.
//
// At steady state the owner is the root and replicas hear it every
// round, so nothing beyond the f heartbeat sends leaves this node.
func (n *Node) ownerAntiEntropy() {
	type claim struct {
		id  ids.ID
		rep *replicateMsg
	}
	var claims []claim
	var pushes []*channelState
	staleAfter := ownerReplicaStale * n.cfg.MaintenanceInterval
	now := n.now()
	n.mu.Lock()
	// Iterate channels in a fixed order: claim and heartbeat sends mutate
	// peers' routing state and aggregation inputs, so map-order iteration
	// would make whole-run wire traffic nondeterministic under one seed.
	ordered := make([]*channelState, 0, len(n.channels))
	for _, ch := range n.channels {
		ordered = append(ordered, ch)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].url < ordered[j].url })
	for _, ch := range ordered {
		switch {
		case ch.isOwner && !n.overlay.IsRoot(ch.id):
			claims = append(claims, claim{ch.id, n.buildReplicateLocked(ch)})
		case ch.isOwner:
			pushes = append(pushes, ch)
		case ch.isReplica && now.Sub(ch.ownerSeen) > staleAfter:
			if n.overlay.IsRoot(ch.id) {
				n.becomeOwnerLocked(ch)
				pushes = append(pushes, ch)
			} else {
				// Claim every round while stale: early routes can die at
				// hops whose tables still point at the dead owner (each
				// failed forward evicts one stale hop, losing the message).
				// Whatever ends the staleness — the new owner's heartbeat,
				// a reconquest push, or a live owner's counter-push to a
				// rejected claim — refreshes ownerSeen and stops the claims.
				claims = append(claims, claim{ch.id, n.buildReplicateLocked(ch)})
			}
		}
	}
	if len(claims) > 0 {
		n.stats.OwnerClaimsRouted += uint64(len(claims))
	}
	n.mu.Unlock()
	for _, c := range claims {
		n.overlay.Route(c.id, msgReplicate, c.rep)
	}
	for _, ch := range pushes {
		n.replicateChannel(ch)
	}
}

// claimWinsLocked decides an ownership claim at claimEpoch from claimant
// against this node's view of the channel. Higher epoch wins outright;
// equal epochs between two live owners break toward the identifier
// numerically closer to the channel — the same metric rootship uses, and
// one both sides compute identically from the message alone, so the
// handshake converges even while their ring views still disagree. The
// tie-break is reserved for claimants that hold the owner role: a
// replica's anti-entropy push at the live owner's epoch always loses
// (the counter-push refreshes the replica instead), or any replica whose
// identifier sits closer to the channel than the owner's would demote it
// on every stale heartbeat. Callers hold n.mu.
func (n *Node) claimWinsLocked(ch *channelState, claimEpoch uint64, claimant pastry.Addr, claimantIsOwner bool) bool {
	if claimEpoch != ch.ownerEpoch {
		return claimEpoch > ch.ownerEpoch
	}
	if !ch.isOwner {
		return true // ordinary periodic push at the claim's epoch
	}
	if !claimantIsOwner {
		return false
	}
	return claimant.ID.Distance(ch.id).Cmp(n.Self().ID.Distance(ch.id)) < 0
}

// demoteLocked is the single ownership-surrender path: it clears the
// owner flag, the replica flag unless the caller is adopting a fresher
// replica image, the subscriber identity map when leaving the replica
// set (stale identities must not resurrect on a later promotion — the
// same rule the emptied-channel replicate push enforces), and the lease
// table (leases are owner-side state). Polling stops unless the node
// still belongs to the channel's wedge at its current level. Callers
// hold n.mu.
func (n *Node) demoteLocked(ch *channelState, toReplica bool) {
	ch.isOwner = false
	ch.isReplica = toReplica
	ch.leases = nil
	ch.unsubbed = nil
	// The delegate roster is owner-side state. The winning owner recruits
	// its own; this node's former delegates expire their partitions when
	// the refreshes stop (delegateExpiry).
	if len(ch.delegates) > 0 {
		ch.delegates = nil
		n.emitDelegatesLocked(ch)
	}
	ch.ownEntries = nil
	if !toReplica {
		ch.subs.ids = nil
		ch.subs.count = 0
	}
	if ch.polling && !n.overlay.Base().InWedge(n.Self().ID, ch.id, maxInt(ch.level, 0)) {
		n.stopPollingLocked(ch)
	}
}

// handoffMissingLocked lists this node's subscriber identities absent
// from a winning claim's pushed set. A demoting interim owner re-injects
// them through the ordinary subscribe path so a client that subscribed
// during the outage survives the merge. Callers hold n.mu.
func handoffMissingLocked(ch *channelState, pushed []replicatedSub) []replicatedSub {
	if len(ch.subs.ids) == 0 {
		return nil
	}
	known := make(map[string]struct{}, len(pushed))
	for _, s := range pushed {
		known[s.Client] = struct{}{}
	}
	var missing []replicatedSub
	for c, entry := range ch.subs.ids {
		if _, ok := known[c]; !ok {
			missing = append(missing, replicatedSub{Client: c, Entry: entry})
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].Client < missing[j].Client })
	return missing
}

// handleReplicate stores replica state at a backup owner. Every push is
// also an ownership claim fenced by the owner epoch: the loser of the
// comparison demotes on receipt — no waiting for an IsRoot self-check —
// and a stale claimant is answered with a counter-push carrying the
// winning state so it demotes symmetrically.
func (n *Node) handleReplicate(msg pastry.Message) {
	p, ok := msg.Payload.(*replicateMsg)
	if !ok {
		return
	}
	// The push proves the sender is alive; fold it into routing state so
	// IsRoot converges (the reconquest check below depends on it).
	if msg.From.ID != n.Self().ID {
		n.overlay.Learn(msg.From)
	}
	n.mu.Lock()
	ch := n.getChannel(p.URL)
	if !n.claimWinsLocked(ch, p.OwnerEpoch, msg.From, p.FromOwner) &&
		(ch.isOwner || ch.isReplica) {
		// Stale-epoch push: reject on receipt. If we are the live owner,
		// answer with our own state so the stale claimant demotes now
		// instead of answering polls until its next self-check. A REPLICA
		// holding a higher epoch answers too: a promoted owner whose
		// epoch fell behind (it missed the previous owner's last bumps)
		// would otherwise be rejected here forever and this replica's
		// copy would go permanently stale — the counter-push teaches the
		// claimant the higher epoch, and it reconquers above it.
		//
		// Only owners and replicas get to reject, because only they can
		// counter-push real state. A bystander's ownerEpoch is hearsay
		// from update broadcasts: if the owner group behind that epoch
		// died, a rejection here would silently strand the last surviving
		// replica — its claims bounce off the hearsay forever, nothing
		// teaches it the higher epoch, and the channel stays ownerless.
		// Accepting instead is safe: should the hearsay owner still be
		// alive, its next push or update claim outranks whatever this
		// adoption produced and the fencing handshake re-converges.
		counter := n.buildReplicateLocked(ch)
		n.mu.Unlock()
		if msg.From.ID != n.Self().ID {
			n.overlay.SendDirect(msg.From, msgReplicate, counter)
		}
		return
	}
	var handoff []replicatedSub
	if ch.isOwner {
		// Epoch loss: another owner with a winning claim is live. Demote
		// immediately, handing any subscribers it does not know about
		// back through the subscribe path before the identity map goes.
		handoff = handoffMissingLocked(ch, p.Subscribers)
		n.demoteLocked(ch, true)
	}
	ch.isReplica = true
	ch.ownerEpoch = p.OwnerEpoch
	if p.FromOwner && msg.From.ID != n.Self().ID {
		// Only a push from a node actually holding the owner role proves
		// the owner is alive. Peer replicas' anti-entropy claims carry
		// state but no such proof — counting them would let a ring of
		// ownerless replicas refresh each other's staleness clocks
		// forever, each claiming just often enough that no receiver ever
		// deems the owner dead, and no one re-elects.
		ch.ownerSeen = n.now()
	}
	ch.subs.count = p.Count
	if p.Subscribers != nil {
		ch.subs.ids = make(map[string]pastry.Addr, len(p.Subscribers))
		for _, sub := range p.Subscribers {
			ch.subs.ids[sub.Client] = sub.Entry
		}
	} else if p.Count == 0 {
		// An emptied channel replicates with no subscriber list; drop any
		// stale identities so a later promotion cannot resurrect clients
		// that unsubscribed.
		ch.subs.ids = nil
	}
	ch.sizeBytes = p.SizeBytes
	if p.IntervalSec > 0 && ch.est.ewma == 0 {
		ch.est.ewma = p.IntervalSec
	}
	if p.LastVersion > ch.lastVersion {
		ch.lastVersion = p.LastVersion
	}
	if p.Level >= 0 && p.Epoch >= ch.epoch {
		ch.level = p.Level
		ch.epoch = p.Epoch
	}
	// The root reconquers: if the ring still says this node is the
	// channel's root, adopting the claim is only anti-entropy — take
	// ownership back at claimEpoch+1 and re-replicate, so exactly the
	// root survives the merge.
	//
	// Self-delivered claims promote too. A stale replica routes its
	// claim toward the channel id; the routing layer retries through
	// every closer candidate, evicting the ones whose sends fail, and
	// delivers locally only when none survive — at which instant this
	// node IS the root among reachable nodes. Skipping self-deliveries
	// here livelocks: before the next anti-entropy round, stabilization
	// gossip re-learns the dead closer peers from neighbors' leaf sets,
	// IsRoot flips false again, and the replica re-routes the same doomed
	// claim forever while the channel stays ownerless.
	reclaimed := false
	if n.overlay.IsRoot(ch.id) {
		n.becomeOwnerLocked(ch)
		reclaimed = ch.isOwner
	}
	n.emitOwnerEpochLocked(ch)
	// Replica state is exactly what a restart must not lose: persist the
	// pushed subscriber set wholesale. An emptied channel (Count 0, no
	// list) must also replace durably, or the store would resurrect
	// unsubscribed clients on restart.
	n.emitMetaLocked(ch, p.Subscribers != nil || p.Count == 0)
	n.mu.Unlock()
	if reclaimed {
		n.replicateChannel(ch)
	}
	for _, s := range handoff {
		n.overlay.Route(ch.id, msgSubscribe, &subscribeMsg{URL: ch.url, Client: s.Client, Entry: s.Entry})
	}
}

// handlePeerFault runs when the overlay detects a dead peer: replicas
// whose primary owner failed promote themselves if they are now the root
// (§3.3: "In the event an owner fails, a new neighbor automatically
// replaces it ... a node that becomes a new owner receives the state from
// other owners of the channel").
func (n *Node) handlePeerFault(dead pastry.Addr) {
	n.mu.Lock()
	// Remember the fault: the leaf set is not a liveness oracle (peers
	// that never send to the dead node gossip it back), so delegate
	// recruitment consults this memory to avoid re-recruiting it.
	if n.recentFaults == nil {
		n.recentFaults = make(map[ids.ID]time.Time)
	}
	n.recentFaults[dead.ID] = n.now()
	var promoted []*channelState
	for _, ch := range n.channels {
		if !ch.isOwner && ch.isReplica && n.overlay.IsRoot(ch.id) {
			promoted = append(promoted, ch)
		}
	}
	// Promote in URL order: becomeOwnerLocked emits WAL records and
	// epoch bumps whose order must be rerun-stable under one seed.
	sort.Slice(promoted, func(i, j int) bool { return promoted[i].url < promoted[j].url })
	for _, ch := range promoted {
		n.becomeOwnerLocked(ch)
		n.stats.LevelChanges++ // ownership transfer shows up in churn stats
	}
	// Force-expire the lease of every subscriber whose entry node just
	// died (zero time = already past any TTL), whether or not it ever
	// heartbeat: the next maintain pass re-routes its notifications to a
	// surviving node instead of black-holing them at the dead one. This
	// runs AFTER the promotions so a replica promoted by this very fault
	// (the dead peer owned the channel AND was a subscriber's entry)
	// marks those entries too.
	var pushes []delegatePush
	if !n.cfg.CountSubscribersOnly {
		for _, ch := range n.channels {
			// A partition delegated by the dead peer is orphaned; drop it
			// now so a stale notify cannot race the successor's recruit.
			if ch.delegSubs != nil && ch.delegFrom.ID == dead.ID {
				ch.delegSubs = nil
				ch.delegFrom = pastry.Addr{}
			}
			if !ch.isOwner {
				continue
			}
			// A dead delegate leaves its slice of subscribers unserved;
			// re-partition over the survivors immediately — the window
			// where its slice misses updates is one fault detection, not
			// a maintenance round. Exclude the dead identifier in case
			// the overlay has not pruned its leaf set yet.
			if addrsContain(ch.delegates, dead) {
				pushes = n.refreshDelegatesLocked(ch, pushes, dead.ID)
			}
			for client, entry := range ch.subs.ids {
				if entry.ID == dead.ID {
					if ch.leases == nil {
						ch.leases = make(map[string]time.Time)
					}
					ch.leases[client] = time.Time{}
				}
			}
		}
	}
	n.mu.Unlock()
	n.sendDelegatePushes(pushes)
	for _, ch := range promoted {
		n.replicateChannel(ch)
	}
}

// notifySubscribers delivers an update to every subscriber of an owned
// channel through the IM gateway (§3.5). Counting mode reports the batch
// size to the sink without materializing per-client sends. Identity mode
// groups subscribers by entry node — one notifyBatch per remote gateway,
// the paper's centralized IM intermediary generalized to the overlay (§4)
// — so the owner's per-update cost scales with distinct entry nodes, and
// a sharded channel (delegate.go) sends one delegateNotify per delegate
// plus batches for the owner's own slot, scaling with delegates alone.
func (n *Node) notifySubscribers(ch *channelState, version uint64, diff string, at time.Time) {
	n.mu.Lock()
	notify := n.notify
	if notify == nil {
		n.mu.Unlock()
		return
	}
	obsOwnerSend := n.obsOwnerSend
	if n.cfg.CountSubscribersOnly {
		count := ch.subs.count
		n.stats.NotificationsSent += uint64(count)
		n.mu.Unlock()
		if count > 0 {
			notify.NotifyCount(ch.url, version, count, at)
		}
		return
	}
	src := ch.subs.ids
	var delegates []pastry.Addr
	if len(ch.delegates) > 0 {
		src = ch.ownEntries
		delegates = append(delegates, ch.delegates...)
	}
	epoch := ch.ownerEpoch
	targets := n.targetScratch(len(src))
	for c, entry := range src {
		//lint:allow maporder sendEntryBatches sorts targets by (entry, client) before anything is sent
		*targets = append(*targets, notifyTarget{client: c, entry: entry})
	}
	// Count only the targets this node fans out itself; delegates count
	// their partitions when the delegateNotify reaches them, so cloud-wide
	// sums stay exact.
	n.stats.NotificationsSent += uint64(len(*targets))
	n.stats.DelegateUpdates += uint64(len(delegates))
	n.mu.Unlock()
	if obsOwnerSend != nil && !at.IsZero() {
		obsOwnerSend(n.now().Sub(at))
	}
	for _, d := range delegates {
		n.overlay.SendDirect(d, msgDelegateNotify, &delegateNotifyMsg{
			URL: ch.url, Version: version, Diff: diff, OwnerEpoch: epoch, At: atNanos(at),
		})
	}
	batches, failed := n.sendEntryBatches(notify, ch.url, version, diff, at, *targets)
	n.putTargetScratch(targets)
	if batches > 0 {
		n.mu.Lock()
		n.stats.NotifyBatchesSent += uint64(batches)
		n.mu.Unlock()
	}
	n.expireFailedEntries(ch, failed)
}

// expireFailedEntries force-expires the leases of clients whose notify
// batch bounced off a dead entry node — the same zero-time mark
// handlePeerFault plants, but driven by the owner's own delivery
// failures. The overlay fault callback fires at most once per eviction,
// so entries inherited after it (a replica promoted later, a handed-off
// subscriber set) would otherwise black-hole forever; here the very
// update that failed to deliver schedules the repair, and the next lease
// sweep re-points the records at survivors.
func (n *Node) expireFailedEntries(ch *channelState, failed []notifyTarget) {
	if len(failed) == 0 || n.cfg.CountSubscribersOnly {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !ch.isOwner {
		return
	}
	for _, t := range failed {
		entry, ok := ch.subs.ids[t.client]
		if !ok || entry.ID != t.entry.ID {
			continue // already re-pointed elsewhere
		}
		if ch.leases == nil {
			ch.leases = make(map[string]time.Time)
		}
		ch.leases[t.client] = time.Time{}
	}
}

// handleNotify delivers a notification that was routed through this node
// because the subscriber entered the system here. It survives for wire
// compatibility with nodes that predate batching; the fan-out path now
// sends notifyBatch.
func (n *Node) handleNotify(msg pastry.Message) {
	p, ok := msg.Payload.(*notifyMsg)
	if !ok {
		return
	}
	n.mu.Lock()
	notify := n.notify
	obs := n.obsEntryRecv
	n.mu.Unlock()
	at := atTime(p.At)
	if obs != nil && !at.IsZero() {
		obs(n.now().Sub(at))
	}
	if notify != nil {
		notify.Notify(p.Client, p.URL, p.Version, p.Diff, at)
	}
}

// handleNotifyBatch delivers one update to every listed client attached
// to this node's gateway — the batched form of handleNotify, carrying the
// diff once per entry node instead of once per subscriber.
func (n *Node) handleNotifyBatch(msg pastry.Message) {
	p, ok := msg.Payload.(*notifyBatchMsg)
	if !ok || len(p.Clients) == 0 {
		return
	}
	n.mu.Lock()
	notify := n.notify
	obs := n.obsEntryRecv
	n.mu.Unlock()
	at := atTime(p.At)
	if obs != nil && !at.IsZero() {
		obs(n.now().Sub(at))
	}
	if notify != nil {
		notify.NotifyBatch(p.Clients, p.URL, p.Version, p.Diff, at)
	}
}

// now returns the node's clock time; extracted for brevity.
func (n *Node) now() time.Time { return n.clk.Now() }

// atNanos and atTime convert the detection timestamp between its wire
// form (unix nanoseconds, zero = absent) and time.Time.
func atNanos(at time.Time) int64 {
	if at.IsZero() {
		return 0
	}
	return at.UnixNano()
}

func atTime(nanos int64) time.Time {
	if nanos == 0 {
		return time.Time{}
	}
	return time.Unix(0, nanos)
}

package core

import (
	"time"

	"corona/internal/ids"
	"corona/internal/pastry"
)

// Subscribe registers a client's interest in a channel URL. The request is
// routed through the overlay to the channel's primary owner, which may be
// this node itself (paper §3.3, §3.5). A non-nil error means the request
// never left this node; under asynchronous transports (netwire) delivery
// failures surface later as overlay repair, and the subscription is
// retried by the client layer.
func (n *Node) Subscribe(client, url string) error {
	return n.overlay.Route(ids.HashString(url), msgSubscribe, &subscribeMsg{URL: url, Client: client, Entry: n.Self()})
}

// Unsubscribe removes a client's interest in a channel.
func (n *Node) Unsubscribe(client, url string) error {
	return n.overlay.Route(ids.HashString(url), msgSubscribe, &subscribeMsg{URL: url, Client: client, Entry: n.Self(), Remove: true})
}

// handleSubscribe runs at the channel's primary owner.
func (n *Node) handleSubscribe(msg pastry.Message) {
	p, ok := msg.Payload.(*subscribeMsg)
	if !ok {
		return
	}
	n.mu.Lock()
	ch := n.getChannel(p.URL)
	changed := false
	if p.Remove {
		changed = ch.subs.remove(p.Client, n.cfg.CountSubscribersOnly)
	} else {
		changed = ch.subs.add(p.Client, p.Entry, n.cfg.CountSubscribersOnly)
	}
	n.becomeOwnerLocked(ch)
	if changed {
		n.emitSubLocked(ch, p.Client, p.Entry, p.Remove)
	}
	n.mu.Unlock()
	if changed {
		n.replicateChannel(ch)
	}
}

// becomeOwnerLocked promotes this node to primary owner of the channel if
// it is the overlay root for the channel's identifier, starting owner-side
// polling at the base level K (§3.3: "Initially, only the owner nodes at
// level K = ceil(log N) poll for the channels").
func (n *Node) becomeOwnerLocked(ch *channelState) {
	if !n.overlay.IsRoot(ch.id) {
		return
	}
	if ch.isOwner {
		return
	}
	ch.isOwner = true
	env := n.env()
	if ch.level < 0 {
		ch.level = env.MaxLevel
	}
	if ch.sizeBytes == 0 {
		ch.sizeBytes = 4096
	}
	// Orphan classification (§4): a channel is an orphan when its
	// level-(K-1) wedge cannot be reached — no node carries enough
	// matching prefix digits. Orphans stay pinned at owner-only polling;
	// their tradeoff factors flow into the slack cluster that corrects
	// the optimization target before solving.
	base := n.overlay.Base()
	ch.ownerPrefix = base.CommonPrefix(n.Self().ID, ch.id)
	ch.orphan = !n.wedgeReachable(ch.id, env.MaxLevel-1)
	n.startPollingLocked(ch)
	n.emitMetaLocked(ch, false)
}

// replicateChannel pushes owner state to the f closest ring neighbors.
func (n *Node) replicateChannel(ch *channelState) {
	if n.cfg.OwnerReplicas == 0 {
		return
	}
	n.mu.Lock()
	if !ch.isOwner {
		n.mu.Unlock()
		return
	}
	rep := &replicateMsg{
		URL:         ch.url,
		Count:       ch.subs.count,
		SizeBytes:   ch.sizeBytes,
		IntervalSec: ch.est.interval().Seconds(),
		LastVersion: ch.lastVersion,
		Level:       ch.level,
		Epoch:       ch.epoch,
	}
	if !n.cfg.CountSubscribersOnly {
		for c, entry := range ch.subs.ids {
			rep.Subscribers = append(rep.Subscribers, replicatedSub{Client: c, Entry: entry})
		}
	}
	n.mu.Unlock()
	// Fire-and-forget: a replica that misses this push catches the next
	// one (replication re-runs on every subscription change), and a dead
	// neighbor surfaces through the transport's fault callback.
	for _, neighbor := range n.overlay.Neighbors(n.cfg.OwnerReplicas) {
		n.overlay.SendDirect(neighbor, msgReplicate, rep)
	}
}

// handleReplicate stores replica state at a backup owner.
func (n *Node) handleReplicate(msg pastry.Message) {
	p, ok := msg.Payload.(*replicateMsg)
	if !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ch := n.getChannel(p.URL)
	if ch.isOwner {
		// A replica push from a stale owner; ignore — we are primary.
		return
	}
	ch.isReplica = true
	ch.subs.count = p.Count
	if p.Subscribers != nil {
		ch.subs.ids = make(map[string]pastry.Addr, len(p.Subscribers))
		for _, sub := range p.Subscribers {
			ch.subs.ids[sub.Client] = sub.Entry
		}
	} else if p.Count == 0 {
		// An emptied channel replicates with no subscriber list; drop any
		// stale identities so a later promotion cannot resurrect clients
		// that unsubscribed.
		ch.subs.ids = nil
	}
	ch.sizeBytes = p.SizeBytes
	if p.IntervalSec > 0 && ch.est.ewma == 0 {
		ch.est.ewma = p.IntervalSec
	}
	if p.LastVersion > ch.lastVersion {
		ch.lastVersion = p.LastVersion
	}
	if p.Level >= 0 && p.Epoch >= ch.epoch {
		ch.level = p.Level
		ch.epoch = p.Epoch
	}
	// Replica state is exactly what a restart must not lose: persist the
	// pushed subscriber set wholesale. An emptied channel (Count 0, no
	// list) must also replace durably, or the store would resurrect
	// unsubscribed clients on restart.
	n.emitMetaLocked(ch, p.Subscribers != nil || p.Count == 0)
}

// handlePeerFault runs when the overlay detects a dead peer: replicas
// whose primary owner failed promote themselves if they are now the root
// (§3.3: "In the event an owner fails, a new neighbor automatically
// replaces it ... a node that becomes a new owner receives the state from
// other owners of the channel").
func (n *Node) handlePeerFault(dead pastry.Addr) {
	n.mu.Lock()
	var promoted []*channelState
	for _, ch := range n.channels {
		if !ch.isOwner && ch.isReplica && n.overlay.IsRoot(ch.id) {
			promoted = append(promoted, ch)
		}
	}
	for _, ch := range promoted {
		n.becomeOwnerLocked(ch)
		n.stats.LevelChanges++ // ownership transfer shows up in churn stats
	}
	n.mu.Unlock()
	for _, ch := range promoted {
		n.replicateChannel(ch)
	}
}

// notifySubscribers delivers an update to every subscriber of an owned
// channel through the IM gateway (§3.5). Counting mode reports the batch
// size to the sink without materializing per-client sends.
func (n *Node) notifySubscribers(ch *channelState, version uint64, diff string) {
	n.mu.Lock()
	notify := n.notify
	if notify == nil {
		n.mu.Unlock()
		return
	}
	count := ch.subs.count
	type target struct {
		client string
		entry  pastry.Addr
	}
	var targets []target
	if !n.cfg.CountSubscribersOnly {
		targets = make([]target, 0, len(ch.subs.ids))
		for c, entry := range ch.subs.ids {
			targets = append(targets, target{client: c, entry: entry})
		}
	}
	n.stats.NotificationsSent += uint64(count)
	n.mu.Unlock()
	if n.cfg.CountSubscribersOnly {
		if count > 0 {
			notify.NotifyCount(ch.url, version, count)
		}
		return
	}
	self := n.Self().ID
	for _, t := range targets {
		if t.entry.IsZero() || t.entry.ID == self {
			notify.Notify(t.client, ch.url, version, diff)
			continue
		}
		// The client entered through another node: hand the
		// notification to that node's gateway, the paper's centralized
		// IM intermediary generalized to the overlay (§4).
		n.overlay.SendDirect(t.entry, msgNotify, &notifyMsg{
			Client: t.client, URL: ch.url, Version: version, Diff: diff,
		})
	}
}

// handleNotify delivers a notification that was routed through this node
// because the subscriber entered the system here.
func (n *Node) handleNotify(msg pastry.Message) {
	p, ok := msg.Payload.(*notifyMsg)
	if !ok {
		return
	}
	n.mu.Lock()
	notify := n.notify
	n.mu.Unlock()
	if notify != nil {
		notify.Notify(p.Client, p.URL, p.Version, p.Diff)
	}
}

// now returns the node's clock time; extracted for brevity.
func (n *Node) now() time.Time { return n.clk.Now() }

package core

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"corona/internal/clock"
	"corona/internal/webserver"
)

// OriginFetcher adapts a simulated webserver.Origin to the Fetcher
// interface under a (virtual or real) clock.
type OriginFetcher struct {
	// Origin hosts the channels.
	Origin *webserver.Origin
	// Clock supplies poll timestamps.
	Clock clock.Clock
	// Conditional selects validator-based polling: unchanged content
	// costs only a probe. Legacy-RSS-era clients fetch unconditionally;
	// Corona also fetches full content by default since it needs the
	// document to diff, matching the paper's load accounting.
	Conditional bool
}

// Fetch implements Fetcher.
func (f *OriginFetcher) Fetch(url string, haveVersion uint64) (webserver.FetchResult, error) {
	if f.Conditional {
		return f.Origin.FetchConditional(url, f.Clock.Now(), haveVersion)
	}
	return f.Origin.Fetch(url, f.Clock.Now())
}

// HTTPFetcher polls real HTTP origins, using ETag validators when the
// server provides them. It is the live-deployment Fetcher.
type HTTPFetcher struct {
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
}

// Fetch implements Fetcher. The returned version is the server's ETag when
// numeric, else a content-hash-derived counter is unavailable and the
// caller must operate in content mode.
func (f *HTTPFetcher) Fetch(url string, haveVersion uint64) (webserver.FetchResult, error) {
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return webserver.FetchResult{}, fmt.Errorf("core: building request: %w", err)
	}
	if haveVersion != 0 {
		req.Header.Set("If-None-Match", strconv.FormatUint(haveVersion, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return webserver.FetchResult{}, fmt.Errorf("core: polling %s: %w", url, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return webserver.FetchResult{Version: haveVersion, Modified: false, Bytes: 300}, nil
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		if err != nil {
			return webserver.FetchResult{}, fmt.Errorf("core: reading %s: %w", url, err)
		}
		version := haveVersion + 1
		if etag := resp.Header.Get("ETag"); etag != "" {
			if v, err := strconv.ParseUint(etag, 10, 64); err == nil {
				version = v
			}
		}
		return webserver.FetchResult{Version: version, Modified: true, Bytes: len(body), Body: body}, nil
	default:
		return webserver.FetchResult{}, fmt.Errorf("core: polling %s: status %d", url, resp.StatusCode)
	}
}

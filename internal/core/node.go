package core

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"corona/internal/clock"
	"corona/internal/honeycomb"
	"corona/internal/ids"
	"corona/internal/pastry"
	"corona/internal/store"
	"corona/internal/webserver"
)

// Fetcher polls a channel's content server. Simulations back it with
// webserver.Origin under virtual time; live nodes use an HTTP client.
type Fetcher interface {
	// Fetch polls url. haveVersion is the validator: when the server's
	// content still matches, the result reports Modified=false and costs
	// only a probe. Version 0 forces a full fetch.
	Fetch(url string, haveVersion uint64) (webserver.FetchResult, error)
}

// Notifier delivers update notifications to subscribers; the IM gateway
// implements it (paper §3.5). In counting mode the node calls
// NotifyCount instead of per-client Notify.
type Notifier interface {
	// Notify sends one client the diff for a channel update. at is the
	// detection timestamp — when the polling node first observed the
	// version — carried end to end so delivery latency is measurable;
	// a zero at means the origin predates the timestamp.
	Notify(client, channelURL string, version uint64, diff string, at time.Time)
	// NotifyBatch sends every listed client the same diff for a channel
	// update — one call per entry node per update, so the gateway can
	// encode the notification once and share the bytes across clients.
	// The clients slice is only valid for the duration of the call; the
	// notifier must copy it if it retains the handles.
	NotifyBatch(clients []string, channelURL string, version uint64, diff string, at time.Time)
	// NotifyCount reports that count subscribers of a channel were
	// notified of version (counting mode, used at simulation scale).
	NotifyCount(channelURL string, version uint64, count int, at time.Time)
}

// DetectionSink receives update-detection events for measurement. The
// experiment harness implements it; a nil sink disables measurement.
type DetectionSink interface {
	// UpdateDetected fires when a node first learns (by its own poll)
	// that a channel moved to version. The sink deduplicates across
	// nodes: only the earliest report per (channel, version) counts.
	UpdateDetected(channelURL string, version uint64, at time.Time)
}

// subscriberSet tracks subscribers either by identity (with the entry
// node that delivers their notifications) or by count alone.
type subscriberSet struct {
	count int
	ids   map[string]pastry.Addr // client -> entry node; nil in counting mode
}

func (s *subscriberSet) add(client string, entry pastry.Addr, countOnly bool) bool {
	if countOnly {
		s.count++
		return true
	}
	if s.ids == nil {
		s.ids = make(map[string]pastry.Addr)
	}
	if prev, dup := s.ids[client]; dup {
		s.ids[client] = entry
		// A refreshed entry point is a real change: it must replicate and
		// persist, or notifications after a failover/restart chase the
		// client's previous, possibly dead, entry node.
		return prev != entry
	}
	s.ids[client] = entry
	s.count = len(s.ids)
	return true
}

func (s *subscriberSet) remove(client string, countOnly bool) bool {
	if countOnly {
		if s.count > 0 {
			s.count--
			return true
		}
		return false
	}
	if _, ok := s.ids[client]; !ok {
		return false
	}
	delete(s.ids, client)
	s.count = len(s.ids)
	return true
}

// channelState is everything one node knows about one channel. Owners
// populate the subscription and estimator fields; every polling wedge
// member tracks level and version.
type channelState struct {
	url     string
	id      ids.ID
	level   int    // current polling level of the channel (this node's belief)
	epoch   uint64 // owner's level-change counter, suppresses stale pollctl
	polling bool
	orphan  bool

	isOwner     bool // primary owner (root of the channel ID)
	isReplica   bool // one of the f additional owners
	ownerPrefix int  // prefix digits the owner shares with the channel

	// ownerEpoch fences ownership: it bumps on every ownership transition
	// (promotion, recovery, reconquest) and travels on replication and
	// owner-originated updates. Of two nodes claiming ownership, the one
	// with the higher epoch wins; ties break toward the identifier
	// numerically closer to the channel, the same total order rootship
	// uses, so both sides of a split agree on the winner without sharing
	// a ring view.
	ownerEpoch uint64

	// recoveredOwner marks state restored from the durable store whose
	// ownership claim awaits reconciliation against the live ring.
	recoveredOwner bool

	// ownerSeen is when a replica last accepted a replication push from a
	// remote owner. Owners heartbeat-replicate every maintenance round, so
	// prolonged silence means the owner is gone — the anti-entropy pass
	// then promotes this replica (if it is the root) or routes its state
	// toward the root, re-electing an owner no fault callback ever will:
	// the callback only fires on a failed send, and only promotes replicas
	// that are root at that instant, so a channel whose root-successor
	// holds no state goes quietly ownerless without this timestamp.
	ownerSeen time.Time

	subs subscriberSet

	// leases tracks, per subscriber, when the client's entry node last
	// proved liveness for it (zero time = force-expired by a peer fault).
	// Only clients that appear here are subject to lease expiry; IM and
	// simulation subscribers never heartbeat and never expire. Owner-only.
	leases map[string]time.Time

	// unsubbed tombstones recent unsubscribes: a lease heartbeat is an
	// idempotent subscription assert, and one in flight when the client
	// unsubscribes could arrive after the removal and resurrect the
	// subscriber forever (heartbeats for the channel stop, and the sweep
	// re-points entries but never deletes). Asserts for a tombstoned
	// client are ignored until the tombstone ages out. Owner-only.
	unsubbed map[string]time.Time

	// delegates is the owner-side fan-out shard set: leaf-set nodes this
	// owner recruited to disseminate updates for this hot channel, sorted
	// by identifier (the partition function depends on the order). nil
	// when the channel is below Config.DelegateThreshold. delegSeq counts
	// roster revisions within this owner's epoch: every push carries it,
	// so a push from a superseded roster (reordered in flight, or emitted
	// by a refresh that raced a fault-triggered re-partition) can never
	// overwrite a newer partition on a delegate. Owner-only.
	delegates []pastry.Addr
	delegSeq  uint64

	// ownEntries is the owner's slot of the sharded subscriber set — the
	// subset of subs.ids the owner itself fans out when delegates carry
	// the rest. nil when the channel is not sharded (the owner fans out
	// subs.ids directly).
	ownEntries map[string]pastry.Addr

	// Delegate-side state: the partition of entry records this node fans
	// out on behalf of a hot channel's owner. delegEpoch is the owner
	// epoch that installed the partition (fencing: older pushes and
	// notifies are ignored), delegAt the last refresh time — a partition
	// not refreshed within delegateExpiry maintenance rounds is dropped,
	// so a forgotten delegate cannot notify from stale records forever.
	delegSubs    map[string]pastry.Addr
	delegFrom    pastry.Addr
	delegEpoch   uint64
	delegSeqSeen uint64
	delegAt      time.Time

	sizeBytes   int
	est         intervalEstimator
	lastVersion uint64
	content     []string // extracted core content (content mode)

	pollTimer clock.Timer
}

// Stats counts a node's Corona-level activity.
type Stats struct {
	PollsIssued       uint64
	UpdatesDetected   uint64
	UpdatesReceived   uint64 // learned via dissemination
	NotificationsSent uint64
	NotifyBatchesSent uint64 // entry-node notify batches emitted (local + overlay)
	DelegateUpdates   uint64 // one-per-delegate update disseminations sent by owners
	MaintenanceRounds uint64
	LevelChanges      uint64
	LeaseRefreshes    uint64 // entry-node lease heartbeats applied at owned channels
	LeaseReroutes     uint64 // dead entry records re-pointed by the lease sweep
	OwnerClaimsRouted uint64 // anti-entropy claims routed by displaced owners
	SubscriptionsHeld int
	ChannelsOwned     int
	ChannelsPolled    int
	DelegatesHeld     int // fan-out partitions this node carries for other owners
	DelegatesActive   int // delegates recruited across this node's owned channels
}

// Node is one Corona overlay participant.
type Node struct {
	cfg     Config
	overlay *pastry.Node
	clk     clock.Clock
	fetcher Fetcher
	notify  Notifier
	sink    DetectionSink
	durable store.Sink // nil unless the node persists state (live mode)
	rng     *rand.Rand

	mu       sync.Mutex
	channels map[ids.ID]*channelState
	// clusterIn[row] holds the most recent aggregate received from each
	// row contact (keyed by column digit): that contact's summary of
	// channels owned by nodes sharing row+1 prefix digits with it.
	clusterIn []map[int]*honeycomb.ClusterSet

	maintTimer clock.Timer
	started    bool
	stopped    bool

	// notifyScratch pools the per-update fan-out target slice so hot
	// channels don't allocate O(subscribers) on every update while the
	// node lock is held (the same trick as pastry's fanOut scratch).
	notifyScratch sync.Pool

	// recentFaults remembers peers the overlay reported dead so delegate
	// recruitment stops picking them. The leaf set alone is not enough: a
	// dead node this node pruned can be gossiped right back by peers that
	// never send to it, and re-recruiting it black-holes its slice for a
	// round and races the fault-triggered re-partition. Entries age out
	// after delegateExpiry maintenance intervals — a node genuinely back
	// from the dead becomes eligible again, and one that is still dead
	// re-records itself on the next failed send.
	recentFaults map[ids.ID]time.Time

	// obsOwnerSend/obsEntryRecv are per-stage latency callbacks on the
	// notification path (SetNotifyLatencyObservers); nil disables them.
	obsOwnerSend func(time.Duration)
	obsEntryRecv func(time.Duration)

	stats Stats
}

// NewNode builds a Corona node over an existing overlay node. The overlay
// node must not have had Corona handlers registered before.
func NewNode(cfg Config, overlay *pastry.Node, clk clock.Clock, fetcher Fetcher, notify Notifier, sink DetectionSink) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:      cfg,
		overlay:  overlay,
		clk:      clk,
		fetcher:  fetcher,
		notify:   notify,
		sink:     sink,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ int64(beUint64(overlay.Self().ID)))),
		channels: make(map[ids.ID]*channelState),
	}
	maxRows := overlay.Config().MaxTableRows
	n.clusterIn = make([]map[int]*honeycomb.ClusterSet, maxRows)
	n.registerHandlers()
	overlay.OnFault(n.handlePeerFault)
	return n
}

// Overlay returns the underlying overlay node.
func (n *Node) Overlay() *pastry.Node { return n.overlay }

// SetNotifier replaces the node's notification sink. Live deployments use
// it to wire the IM gateway, which cannot exist before the node (the
// gateway needs the node as its subscription target).
func (n *Node) SetNotifier(notify Notifier) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.notify = notify
}

// SetNotifyLatencyObservers installs per-stage latency callbacks on the
// notification hot path, each invoked with the elapsed time since the
// update's detection timestamp: ownerSend as the owner hands the update
// to dissemination, entryRecv as an entry node receives a notify batch
// for its attached clients. Either may be nil. The admin plane wires
// these into latency histograms; a node without observers pays only a
// nil check.
func (n *Node) SetNotifyLatencyObservers(ownerSend, entryRecv func(time.Duration)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.obsOwnerSend = ownerSend
	n.obsEntryRecv = entryRecv
}

// Self returns the node's overlay address.
func (n *Node) Self() pastry.Addr { return n.overlay.Self() }

// Stats returns a snapshot of activity counters and state sizes.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	for _, ch := range n.channels {
		if ch.isOwner {
			s.ChannelsOwned++
			s.SubscriptionsHeld += ch.subs.count
			s.DelegatesActive += len(ch.delegates)
		}
		if ch.polling {
			s.ChannelsPolled++
		}
		if ch.delegSubs != nil {
			s.DelegatesHeld++
		}
	}
	return s
}

// ChannelLevel reports the node's current belief of a channel's polling
// level and whether this node polls it (for the evaluation harness).
func (n *Node) ChannelLevel(url string) (level int, polling bool, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ch, exists := n.channels[ids.HashString(url)]
	if !exists {
		return 0, false, false
	}
	return ch.level, ch.polling, true
}

// ChannelInfo is a snapshot of one channel's state at this node, for
// tests and operational introspection.
type ChannelInfo struct {
	URL         string
	Level       int
	Epoch       uint64
	OwnerEpoch  uint64
	Polling     bool
	Owner       bool
	Replica     bool
	Subscribers int
	// Delegates is the owner-side fan-out shard count (0 below the
	// delegation threshold); DelegateFor reports the partition size this
	// node fans out on another owner's behalf.
	Delegates   int
	DelegateFor int
	LastVersion uint64
}

// Channel reports this node's view of a channel, if it tracks one.
func (n *Node) Channel(url string) (ChannelInfo, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ch, ok := n.channels[ids.HashString(url)]
	if !ok {
		return ChannelInfo{}, false
	}
	return ChannelInfo{
		URL:         ch.url,
		Level:       ch.level,
		Epoch:       ch.epoch,
		OwnerEpoch:  ch.ownerEpoch,
		Polling:     ch.polling,
		Owner:       ch.isOwner,
		Replica:     ch.isReplica,
		Subscribers: ch.subs.count,
		Delegates:   len(ch.delegates),
		DelegateFor: len(ch.delegSubs),
		LastVersion: ch.lastVersion,
	}, true
}

// EachPolled visits every channel this node currently polls, passing the
// URL and the node's level belief. The evaluation harness uses it to count
// pollers per channel (Figure 5).
func (n *Node) EachPolled(visit func(url string, level int)) {
	n.mu.Lock()
	type entry struct {
		url   string
		level int
	}
	polled := make([]entry, 0, len(n.channels))
	for _, ch := range n.channels {
		if ch.polling {
			polled = append(polled, entry{ch.url, ch.level})
		}
	}
	n.mu.Unlock()
	sort.Slice(polled, func(i, j int) bool { return polled[i].url < polled[j].url })
	for _, e := range polled {
		visit(e.url, e.level)
	}
}

// Start begins the periodic maintenance protocol. Polling for a channel
// begins when the node becomes its owner (via subscription) or is
// instructed by a poll-control message.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	// Desynchronize maintenance across nodes with a random initial phase,
	// like the polling protocol (paper §3.3).
	phase := time.Duration(n.rng.Int63n(int64(n.cfg.MaintenanceInterval)))
	n.maintTimer = n.clk.AfterFunc(phase, n.maintenanceTick)
}

// Stop cancels timers and halts polling; the node stops participating.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
	if n.maintTimer != nil {
		n.maintTimer.Stop()
	}
	for _, ch := range n.channels {
		if ch.pollTimer != nil {
			ch.pollTimer.Stop()
		}
		ch.polling = false
	}
}

// env builds the tradeoff environment from configuration or runtime
// estimates.
func (n *Node) env() TradeoffEnv {
	nodes := n.cfg.NodeCount
	if nodes <= 0 {
		nodes = estimateNodeCount(n.overlay.Self().ID, n.overlay.Leaves())
	}
	base := n.overlay.Base()
	return TradeoffEnv{
		Nodes:        nodes,
		Radix:        base.Radix(),
		PollInterval: n.cfg.PollInterval,
		MaxLevel:     base.MaxLevel(nodes),
	}
}

// getChannel returns existing state or creates it.
func (n *Node) getChannel(url string) *channelState {
	id := ids.HashString(url)
	if ch, ok := n.channels[id]; ok {
		return ch
	}
	ch := &channelState{url: url, id: id, level: -1}
	n.channels[id] = ch
	return ch
}

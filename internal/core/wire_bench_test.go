package core

// Wire-path benchmarks for the zero-copy payload work: payload encode
// throughput (native binary vs the PR 1 JSON-payload fallback inside the
// same binary envelope) and broadcast fan-out cost per routing contact
// (encode-once shared prefix vs re-encoding the whole message per
// contact). `make bench` records these in BENCH_wire.json.

import (
	"fmt"
	"strings"
	"testing"

	"corona/internal/codec"
	"corona/internal/diffengine"
	"corona/internal/ids"
	"corona/internal/pastry"
)

// jsonUpdateMsg mirrors updateMsg field-for-field but opts out of the
// binary contract, reproducing PR 1's JSON-payload path for comparison.
type jsonUpdateMsg struct {
	URL     string `json:"url"`
	Version uint64 `json:"version"`
	Diff    string `json:"diff,omitempty"`
	Bytes   int    `json:"bytes"`
}

func init() {
	codec.RegisterPayload("bench.update.json", func() any { return &jsonUpdateMsg{} })
}

// representativeDiff builds a real encoded diff the way polling does: a
// 100-item micronews feed gaining `items` fresh items, run through the
// extractor and the difference engine.
func representativeDiff(items int) string {
	feedDoc := func(shift int) string {
		var sb strings.Builder
		sb.WriteString("<rss version=\"2.0\"><channel><title>bench</title>\n")
		for i := 0; i < 100; i++ {
			fmt.Fprintf(&sb, "<item><title>story %d</title><guid>g%d</guid><description>body of story %d with some words about markets and weather</description></item>\n", i+shift, i+shift, i+shift)
		}
		sb.WriteString("</channel></rss>\n")
		return sb.String()
	}
	e := diffengine.RSSProfile()
	old := e.Extract(feedDoc(0))
	new := e.Extract(feedDoc(items))
	return diffengine.Encode(diffengine.Compute(old, new, 1, 2))
}

func benchUpdateMessage(diff string, payload any) pastry.Message {
	return pastry.Message{
		Type:    msgUpdate,
		Key:     ids.HashString("bench-channel"),
		From:    pastry.Addr{ID: ids.HashString("bench-node"), Endpoint: "10.0.0.1:9001"},
		Hops:    2,
		Cover:   2,
		Payload: payload,
	}
}

// BenchmarkUpdateEncode compares encoding an update dissemination message
// with its native binary payload against the PR 1 baseline (same binary
// envelope, JSON payload blob). The acceptance bar is ≥ 2x encode
// throughput for the binary payload.
func BenchmarkUpdateEncode(b *testing.B) {
	diff := representativeDiff(3)
	cases := []struct {
		name    string
		msgType string
		payload any
	}{
		{"binary-payload", msgUpdate, &updateMsg{URL: "http://example.com/feed.rss", Version: 17, Diff: diff, Bytes: len(diff)}},
		{"json-payload", "bench.update.json", &jsonUpdateMsg{URL: "http://example.com/feed.rss", Version: 17, Diff: diff, Bytes: len(diff)}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			msg := benchUpdateMessage(diff, tc.payload)
			msg.Type = tc.msgType
			body, err := codec.Binary.Encode(msg)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(body)))
			b.ReportMetric(float64(len(body)), "bytes/msg")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := codec.Binary.Encode(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUpdateDecodeForward compares the per-hop cost of preparing a
// received update for re-forwarding: decode plus re-encode. The zero-copy
// path never materializes the payload; the baseline decodes the JSON blob
// and re-marshals it.
func BenchmarkUpdateDecodeForward(b *testing.B) {
	diff := representativeDiff(3)
	cases := []struct {
		name        string
		msgType     string
		payload     any
		materialize bool
	}{
		{"zero-copy", msgUpdate, &updateMsg{URL: "u", Version: 17, Diff: diff, Bytes: len(diff)}, false},
		{"materialize-remarshal", "bench.update.json", &jsonUpdateMsg{URL: "u", Version: 17, Diff: diff, Bytes: len(diff)}, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			msg := benchUpdateMessage(diff, tc.payload)
			msg.Type = tc.msgType
			body, err := codec.Binary.Encode(msg)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(body)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := codec.Binary.Decode(body)
				if err != nil {
					b.Fatal(err)
				}
				if tc.materialize {
					// PR 1 semantics: the forwarding node held a typed
					// struct, so re-encoding re-marshaled it.
					if err := got.MaterializePayload(); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := codec.Binary.Encode(got); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFanOutEncode measures encoding one broadcast toward N routing
// contacts, the per-hop hot loop of wedge dissemination (§3.4):
//
//   - reencode-json: PR 1 behavior — every contact re-marshals the JSON
//     payload and the whole envelope.
//   - reencode-binary: native payload, but still a full encode per contact.
//   - shared-prefix: the landed path — the hop-invariant prefix, envelope
//     plus payload, encodes once and each contact adds a 2-varint trailer.
//
// Diff sizes 256 B and 4 KiB show the shared path's per-contact cost is
// O(trailer): it barely moves with message size while the re-encode paths
// scale with it.
func BenchmarkFanOutEncode(b *testing.B) {
	const contacts = 16
	for _, size := range []int{256, 4096} {
		diff := strings.Repeat("d", size)
		cases := []struct {
			name    string
			msgType string
			payload any
			share   bool
		}{
			{"reencode-json", "bench.update.json", &jsonUpdateMsg{URL: "u", Version: 9, Diff: diff, Bytes: size}, false},
			{"reencode-binary", msgUpdate, &updateMsg{URL: "u", Version: 9, Diff: diff, Bytes: size}, false},
			{"shared-prefix", msgUpdate, &updateMsg{URL: "u", Version: 9, Diff: diff, Bytes: size}, true},
		}
		for _, tc := range cases {
			b.Run(fmt.Sprintf("diff=%dB/%s", size, tc.name), func(b *testing.B) {
				msg := benchUpdateMessage(diff, tc.payload)
				msg.Type = tc.msgType
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out := msg
					out.Hops++
					if tc.share {
						out.ShareEncoding()
					}
					for c := 0; c < contacts; c++ {
						send := out
						send.Cover = c + 2
						if _, err := codec.Binary.Encode(send); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/contacts, "ns/contact")
			})
		}
		// The marginal cost of one more contact on the size-only path
		// simnet's byte accounting takes: the prefix is already cached, so
		// each call costs two varint widths — no body is built, and the
		// number is flat across message sizes (pure O(trailer)).
		b.Run(fmt.Sprintf("diff=%dB/shared-prefix-marginal", size), func(b *testing.B) {
			msg := benchUpdateMessage(diff, &updateMsg{URL: "u", Version: 9, Diff: diff, Bytes: size})
			msg.Hops++
			msg.ShareEncoding()
			if codec.Measure(msg) == 0 { // warm the prefix cache
				b.Fatal("measure failed")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				send := msg
				send.Cover = i%contacts + 2
				if codec.Measure(send) == 0 {
					b.Fatal("measure failed")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/contact")
		})
	}
}

package core

import (
	"fmt"

	"corona/internal/honeycomb"
	"corona/internal/ids"
	"corona/internal/pastry"
	"corona/internal/wirebin"
)

// Native binary wire forms for Corona's hot message payloads — the
// AppendBinary/DecodeBinary contract the codec package probes for at
// registration. These are the messages multiplied by wedge fan-out
// (updates, poll control, their wedge-forward wrapper), the periodic
// aggregation exchange, and the per-subscription control paths; encoding
// them natively removes the JSON marshal/unmarshal from every hop.
// replicateMsg joined the native set when restart reconciliation made
// replication traffic hot (recovered owners re-push their whole state on
// rejoin); the JSON fallback path is exercised by a dedicated codec test
// instead (codec.TestRegisteredJSONFallbackRoundTrip).
//
// Conventions (package wirebin): uvarint for unsigned counters, zigzag
// svarint for int fields, length-prefixed strings, fixed 8-byte floats,
// one-byte bools. Addresses are a raw 20-byte identifier plus endpoint
// string. Every encoding is deterministic, so re-encoding a decoded
// payload reproduces the original bytes.

func appendAddr(dst []byte, a pastry.Addr) []byte {
	dst = append(dst, a.ID[:]...)
	return wirebin.AppendString(dst, a.Endpoint)
}

func readAddr(r *wirebin.Reader) pastry.Addr {
	var a pastry.Addr
	copy(a.ID[:], r.Take(ids.Bytes))
	a.Endpoint = r.String()
	return a
}

// wireErr wraps a reader's latched error with the payload type.
func wireErr(what string, r *wirebin.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: decoding %s payload: %w", what, err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("core: decoding %s payload: %d trailing bytes", what, r.Len())
	}
	return nil
}

// --- subscribeMsg (corona.subscribe, corona.unsubscribe) -----------------

// AppendBinary implements the codec binary payload contract.
func (m *subscribeMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendString(dst, m.Client)
	dst = appendAddr(dst, m.Entry)
	return wirebin.AppendBool(dst, m.Remove), nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *subscribeMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	m.Client = r.String()
	m.Entry = readAddr(r)
	m.Remove = r.Bool()
	return wireErr("subscribe", r)
}

// --- notifyMsg (corona.notify) -------------------------------------------

// AppendBinary implements the codec binary payload contract.
func (m *notifyMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.Client)
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendUvarint(dst, m.Version)
	dst = wirebin.AppendString(dst, m.Diff)
	return wirebin.AppendUvarint(dst, uint64(m.At)), nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *notifyMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.Client = r.String()
	m.URL = r.String()
	m.Version = r.Uvarint()
	m.Diff = r.String()
	m.At = int64(r.Uvarint())
	return wireErr("notify", r)
}

// --- notifyBatchMsg (corona.notifybatch) ---------------------------------

// AppendBinary implements the codec binary payload contract.
func (m *notifyBatchMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendUvarint(dst, m.Version)
	dst = wirebin.AppendString(dst, m.Diff)
	dst = wirebin.AppendUvarint(dst, uint64(len(m.Clients)))
	for _, c := range m.Clients {
		dst = wirebin.AppendString(dst, c)
	}
	return wirebin.AppendUvarint(dst, uint64(m.At)), nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *notifyBatchMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	m.Version = r.Uvarint()
	m.Diff = r.String()
	// Each client handle costs at least its one length byte.
	n := r.ListLen(1)
	m.Clients = nil
	if n > 0 {
		m.Clients = make([]string, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			m.Clients = append(m.Clients, r.String())
		}
	}
	m.At = int64(r.Uvarint())
	return wireErr("notifybatch", r)
}

// --- delegateMsg (corona.delegate) ---------------------------------------

// AppendBinary implements the codec binary payload contract.
func (m *delegateMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendUvarint(dst, m.OwnerEpoch)
	dst = appendAddr(dst, m.Owner)
	dst = wirebin.AppendUvarint(dst, m.Seq)
	dst = wirebin.AppendBool(dst, m.Replace)
	dst = wirebin.AppendBool(dst, m.Revoke)
	dst = wirebin.AppendUvarint(dst, uint64(len(m.Subs)))
	for _, s := range m.Subs {
		dst = wirebin.AppendString(dst, s.Client)
		dst = appendAddr(dst, s.Entry)
	}
	dst = wirebin.AppendUvarint(dst, uint64(len(m.Removed)))
	for _, c := range m.Removed {
		dst = wirebin.AppendString(dst, c)
	}
	return dst, nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *delegateMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	m.OwnerEpoch = r.Uvarint()
	m.Owner = readAddr(r)
	m.Seq = r.Uvarint()
	m.Replace = r.Bool()
	m.Revoke = r.Bool()
	// Each subscriber costs at least one length byte, the 20-byte entry
	// identifier, and one endpoint length byte.
	n := r.ListLen(ids.Bytes + 2)
	m.Subs = nil
	if n > 0 {
		m.Subs = make([]replicatedSub, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			m.Subs = append(m.Subs, replicatedSub{Client: r.String(), Entry: readAddr(r)})
		}
	}
	n = r.ListLen(1)
	m.Removed = nil
	if n > 0 {
		m.Removed = make([]string, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			m.Removed = append(m.Removed, r.String())
		}
	}
	return wireErr("delegate", r)
}

// --- delegateNotifyMsg (corona.delegatenotify) ---------------------------

// AppendBinary implements the codec binary payload contract.
func (m *delegateNotifyMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendUvarint(dst, m.Version)
	dst = wirebin.AppendString(dst, m.Diff)
	dst = wirebin.AppendUvarint(dst, m.OwnerEpoch)
	return wirebin.AppendUvarint(dst, uint64(m.At)), nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *delegateNotifyMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	m.Version = r.Uvarint()
	m.Diff = r.String()
	m.OwnerEpoch = r.Uvarint()
	m.At = int64(r.Uvarint())
	return wireErr("delegatenotify", r)
}

// --- replicateMsg (corona.replicate) -------------------------------------

// AppendBinary implements the codec binary payload contract.
func (m *replicateMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendUvarint(dst, uint64(len(m.Subscribers)))
	for _, s := range m.Subscribers {
		dst = wirebin.AppendString(dst, s.Client)
		dst = appendAddr(dst, s.Entry)
	}
	dst = wirebin.AppendSint(dst, m.Count)
	dst = wirebin.AppendSint(dst, m.SizeBytes)
	dst = wirebin.AppendFloat64(dst, m.IntervalSec)
	dst = wirebin.AppendUvarint(dst, m.LastVersion)
	dst = wirebin.AppendSint(dst, m.Level)
	dst = wirebin.AppendUvarint(dst, m.Epoch)
	dst = wirebin.AppendUvarint(dst, m.OwnerEpoch)
	return wirebin.AppendBool(dst, m.FromOwner), nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *replicateMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	// Each subscriber costs at least one length byte, the 20-byte entry
	// identifier, and one endpoint length byte.
	n := r.ListLen(ids.Bytes + 2)
	m.Subscribers = nil
	if n > 0 {
		m.Subscribers = make([]replicatedSub, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			m.Subscribers = append(m.Subscribers, replicatedSub{Client: r.String(), Entry: readAddr(r)})
		}
	}
	m.Count = r.Sint()
	m.SizeBytes = r.Sint()
	m.IntervalSec = r.Float64()
	m.LastVersion = r.Uvarint()
	m.Level = r.Sint()
	m.Epoch = r.Uvarint()
	m.OwnerEpoch = r.Uvarint()
	m.FromOwner = r.Bool()
	return wireErr("replicate", r)
}

// --- pollCtlMsg (corona.pollctl) -----------------------------------------

// AppendBinary implements the codec binary payload contract.
func (m *pollCtlMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendSint(dst, m.Level)
	dst = wirebin.AppendUvarint(dst, m.Epoch)
	dst = wirebin.AppendSint(dst, m.Q)
	dst = wirebin.AppendSint(dst, m.SizeBytes)
	return wirebin.AppendFloat64(dst, m.IntervalSec), nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *pollCtlMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	m.Level = r.Sint()
	m.Epoch = r.Uvarint()
	m.Q = r.Sint()
	m.SizeBytes = r.Sint()
	m.IntervalSec = r.Float64()
	return wireErr("pollctl", r)
}

// --- updateMsg (corona.update) -------------------------------------------

// AppendBinary implements the codec binary payload contract.
func (m *updateMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendUvarint(dst, m.Version)
	dst = wirebin.AppendString(dst, m.Diff)
	dst = wirebin.AppendSint(dst, m.Bytes)
	dst = wirebin.AppendUvarint(dst, m.OwnerEpoch)
	return appendAddr(dst, m.Owner), nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *updateMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	m.Version = r.Uvarint()
	m.Diff = r.String()
	m.Bytes = r.Sint()
	m.OwnerEpoch = r.Uvarint()
	m.Owner = readAddr(r)
	return wireErr("update", r)
}

// --- reportMsg (corona.report) -------------------------------------------

// AppendBinary implements the codec binary payload contract.
func (m *reportMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendUvarint(dst, m.ObservedVersion)
	dst = wirebin.AppendString(dst, m.Diff)
	return wirebin.AppendSint(dst, m.Bytes), nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *reportMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	m.ObservedVersion = r.Uvarint()
	m.Diff = r.String()
	m.Bytes = r.Sint()
	return wireErr("report", r)
}

// --- maintainMsg (corona.maintain) ---------------------------------------

// AppendBinary implements the codec binary payload contract. The cluster
// set travels in honeycomb's sparse binary form behind a presence byte.
func (m *maintainMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendSint(dst, m.Row)
	dst = wirebin.AppendBool(dst, m.Clusters != nil)
	if m.Clusters != nil {
		return m.Clusters.AppendBinary(dst)
	}
	return dst, nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *maintainMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.Row = r.Sint()
	present := r.Bool()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: decoding maintain payload: %w", err)
	}
	if !present {
		m.Clusters = nil
		if r.Len() != 0 {
			return fmt.Errorf("core: decoding maintain payload: %d trailing bytes", r.Len())
		}
		return nil
	}
	m.Clusters = new(honeycomb.ClusterSet)
	return m.Clusters.DecodeBinary(r.Take(r.Len()))
}

// --- leaseMsg (corona.lease) ---------------------------------------------

// AppendBinary implements the codec binary payload contract.
func (m *leaseMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendString(dst, m.Client)
	return appendAddr(dst, m.Entry), nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *leaseMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	m.Client = r.String()
	m.Entry = readAddr(r)
	return wireErr("lease", r)
}

// --- leaseExpireMsg (corona.leaseexpire) ---------------------------------

// AppendBinary implements the codec binary payload contract.
func (m *leaseExpireMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = appendAddr(dst, m.Entry)
	dst = wirebin.AppendUvarint(dst, uint64(len(m.Clients)))
	for _, c := range m.Clients {
		dst = wirebin.AppendString(dst, c)
	}
	return dst, nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *leaseExpireMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	m.Entry = readAddr(r)
	// Each client handle costs at least its one length byte.
	n := r.ListLen(1)
	m.Clients = nil
	if n > 0 {
		m.Clients = make([]string, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			m.Clients = append(m.Clients, r.String())
		}
	}
	return wireErr("leaseexpire", r)
}

// --- wedgeFwdMsg (corona.wedgefwd) ---------------------------------------

// Presence bits for wedgeFwdMsg's wrapped operation.
const (
	wedgeFwdHasPollCtl = 1 << 0
	wedgeFwdHasUpdate  = 1 << 1
)

// AppendBinary implements the codec binary payload contract; the wrapped
// operation nests the inner payload's own binary form, length-prefixed.
func (m *wedgeFwdMsg) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendString(dst, m.URL)
	dst = wirebin.AppendSint(dst, m.Level)
	dst = wirebin.AppendString(dst, m.InnerType)
	var flags byte
	if m.PollCtl != nil {
		flags |= wedgeFwdHasPollCtl
	}
	if m.Update != nil {
		flags |= wedgeFwdHasUpdate
	}
	dst = append(dst, flags)
	var err error
	if m.PollCtl != nil {
		if dst, err = appendNested(dst, m.PollCtl); err != nil {
			return nil, err
		}
	}
	if m.Update != nil {
		if dst, err = appendNested(dst, m.Update); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// appendNested writes a length-prefixed inner payload encoding.
func appendNested(dst []byte, inner interface {
	AppendBinary([]byte) ([]byte, error)
}) ([]byte, error) {
	b, err := inner.AppendBinary(nil)
	if err != nil {
		return nil, err
	}
	return wirebin.AppendBytes(dst, b), nil
}

// DecodeBinary implements the codec binary payload contract.
func (m *wedgeFwdMsg) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	m.URL = r.String()
	m.Level = r.Sint()
	m.InnerType = r.String()
	flags := r.Byte()
	m.PollCtl, m.Update = nil, nil
	if flags&wedgeFwdHasPollCtl != 0 {
		m.PollCtl = new(pollCtlMsg)
		if err := m.PollCtl.DecodeBinary(r.Bytes()); err != nil {
			return err
		}
	}
	if flags&wedgeFwdHasUpdate != 0 {
		m.Update = new(updateMsg)
		if err := m.Update.DecodeBinary(r.Bytes()); err != nil {
			return err
		}
	}
	return wireErr("wedgefwd", r)
}

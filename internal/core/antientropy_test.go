package core_test

import (
	"fmt"
	"testing"
	"time"

	"corona/internal/core"
	"corona/internal/ids"
)

// TestHealedPartitionMergesQuiescentOwners pins the chaos-checker finding
// that motivated owner anti-entropy: a partition splits the cloud, each
// side elects an owner for the same channel, the partition heals — and
// the channel then goes completely quiet. The epoch-fencing handshake
// rides on replication pushes and update broadcasts, both of which fire
// only when something changes, so before the maintenance-round
// anti-entropy pass the two owners coexisted forever on a quiescent
// channel (the chaos heal-partition scenario surfaced four of them after
// a two-hour convergence window). With the pass, the displaced owner
// routes its claim to the ring root every round and the merge must
// complete — one owner holding the union of both sides' subscribers.
func TestHealedPartitionMergesQuiescentOwners(t *testing.T) {
	url := "http://feeds.example.net/quiescent.xml"
	tc := newTestCloud(t, 16, nil)
	// Effectively never updates: nothing may ride on update dissemination.
	tc.host(url, 100000*time.Hour)

	owner := tc.ownerOf(url)
	if owner == nil {
		t.Fatal("no root for the channel")
	}
	// Alice subscribes through a node that will stay on the owner's side.
	var aliceEntry *core.Node
	for _, n := range tc.nodes {
		if n != owner {
			aliceEntry = n
			break
		}
	}
	aliceEntry.Subscribe("alice", url)
	tc.sim.RunFor(time.Hour)
	if info, ok := owner.Channel(url); !ok || !info.Owner || info.Subscribers != 1 {
		t.Fatalf("pre-partition owner state: %+v", info)
	}

	// Bisect: the owner, alice's entry, and the first half stay in group
	// 0; the rest — the minority side — move to group 1.
	var minority []*core.Node
	for i, n := range tc.nodes {
		if n == owner || n == aliceEntry || i < len(tc.nodes)/2 {
			continue
		}
		tc.net.Partition(n.Self().Endpoint, 1)
		minority = append(minority, n)
	}
	if len(minority) < 3 {
		t.Fatalf("minority side too small: %d nodes", len(minority))
	}

	// Bob subscribes from the minority side. The route toward the channel
	// root hits the cut, the failed sends evict the unreachable hops, and
	// the minority's closest node promotes itself owner. Retry past
	// synchronous routing errors while the eviction converges.
	deadline := tc.sim.Now().Add(2 * time.Hour)
	var interim *core.Node
	for interim == nil && tc.sim.Now().Before(deadline) {
		for _, n := range minority {
			_ = n.Subscribe("bob", url)
		}
		tc.sim.RunFor(10 * time.Minute)
		for _, n := range minority {
			if info, ok := n.Channel(url); ok && info.Owner {
				interim = n
			}
		}
	}
	if interim == nil {
		t.Fatal("minority side never elected an interim owner")
	}

	// Heal. From here the channel is quiescent: no subscribes, no
	// unsubscribes, no origin updates. Only the maintenance rounds run.
	tc.net.Heal()
	tc.sim.RunFor(4 * time.Hour) // 12 maintenance rounds at 20m

	var owners []*core.Node
	for _, n := range tc.nodes {
		if info, ok := n.Channel(url); ok && info.Owner {
			owners = append(owners, n)
		}
	}
	if len(owners) != 1 {
		for _, n := range owners {
			info, _ := n.Channel(url)
			t.Logf("owner claim: node %v epoch=%d subs=%d isRoot=%v claimsRouted=%d",
				n.Self(), info.OwnerEpoch, info.Subscribers,
				n.Overlay().IsRoot(ids.HashString(url)), n.Stats().OwnerClaimsRouted)
		}
		t.Fatalf("%d owners survive the heal on a quiescent channel, want exactly 1", len(owners))
	}
	info, _ := owners[0].Channel(url)
	if info.Subscribers != 2 {
		t.Fatalf("merged owner holds %d subscribers, want 2 (alice + bob)", info.Subscribers)
	}
}

// TestOwnerlessChannelReelectsOwner pins the second chaos-checker
// finding: channels with ZERO live owners. The fault callback promotes a
// replica only if it is the ring root at the instant a failed send
// surfaces the owner's death. With one replica, the callback misses
// whenever the dead owner's ring successor (the new root) is not that
// replica: the replica holds the state but is not root, the root holds
// nothing and never hears about the channel, and with no subscribe or
// update traffic the channel stays ownerless forever. The maintenance
// pass closes the gap: owners heartbeat-replicate every round, and a
// replica that has heard nothing for ownerReplicaStale rounds routes its
// state to the root, which adopts the claim and reconquers above it.
func TestOwnerlessChannelReelectsOwner(t *testing.T) {
	tc := newTestCloud(t, 16, func(i int, cfg *core.Config) {
		cfg.OwnerReplicas = 1
	})

	// Find a channel whose single replica (the owner's nearest ring
	// neighbor) differs from the owner's root-successor (next-closest
	// identifier to the channel): crashing that owner reproduces the
	// ownerless state. Both sets are pure overlay geometry, so the probe
	// touches no channel state.
	var (
		url              string
		owner, successor *core.Node
		replicaID        ids.ID
	)
	for k := 0; k < 256 && url == ""; k++ {
		candidate := fmt.Sprintf("http://feeds.example.net/orphan%d.xml", k)
		chid := ids.HashString(candidate)
		var o, s *core.Node
		for _, n := range tc.nodes {
			if n.Overlay().IsRoot(chid) {
				o = n
			}
		}
		if o == nil {
			continue
		}
		for _, n := range tc.nodes {
			if n == o {
				continue
			}
			if s == nil || n.Self().ID.Distance(chid).Cmp(s.Self().ID.Distance(chid)) < 0 {
				s = n
			}
		}
		neighbors := o.Overlay().Neighbors(1)
		if s == nil || len(neighbors) == 0 || neighbors[0].ID == s.Self().ID {
			continue
		}
		url, owner, successor, replicaID = candidate, o, s, neighbors[0].ID
	}
	if url == "" {
		t.Fatal("no channel with replica != root-successor among 256 candidates")
	}
	tc.host(url, 100000*time.Hour) // quiescent: re-election may ride on nothing else

	if err := successor.Subscribe("alice", url); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	tc.sim.RunFor(time.Hour)
	if rec, ok := owner.Records(url); !ok || !rec.Owner || len(rec.Subscribers) != 1 {
		t.Fatalf("pre-crash owner state: %+v ok=%v", rec, ok)
	}
	var replica *core.Node
	for _, n := range tc.nodes {
		if n.Self().ID == replicaID {
			replica = n
		}
	}
	if rec, ok := replica.Records(url); !ok || !rec.Replica {
		t.Fatalf("expected replica at the owner's nearest neighbor, records: %+v ok=%v", rec, ok)
	}

	tc.net.Crash(owner.Self().Endpoint)
	owner.Stop()
	tc.sim.RunFor(3 * time.Hour) // staleness window (3 rounds at 20m) + margin

	var owners []*core.Node
	for _, n := range tc.nodes {
		if n == owner {
			continue
		}
		if rec, ok := n.Records(url); ok && rec.Owner {
			owners = append(owners, n)
		}
	}
	if len(owners) != 1 {
		if rec, ok := replica.Records(url); ok {
			t.Logf("replica state: owner=%v replica=%v epoch=%d isRoot=%v claims=%d",
				rec.Owner, rec.Replica, rec.OwnerEpoch,
				replica.Overlay().IsRoot(ids.HashString(url)),
				replica.Stats().OwnerClaimsRouted)
		}
		for _, n := range tc.nodes {
			if n == owner {
				continue
			}
			rec, ok := n.Records(url)
			t.Logf("node %v: ok=%v owner=%v replica=%v epoch=%d isRoot=%v",
				n.Self().Endpoint, ok, rec.Owner, rec.Replica, rec.OwnerEpoch,
				n.Overlay().IsRoot(ids.HashString(url)))
		}
		t.Fatalf("%d live owners after the crash, want exactly 1 (re-elected)", len(owners))
	}
	rec, _ := owners[0].Records(url)
	if _, ok := rec.Subscribers["alice"]; !ok {
		t.Fatalf("re-elected owner lost the subscriber; records: %+v", rec)
	}
}

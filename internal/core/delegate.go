package core

import (
	"sort"
	"time"

	"corona/internal/ids"
	"corona/internal/pastry"
)

// Hot-channel fan-out sharding. One owner node holding every subscriber
// entry record of a flash-crowd channel concentrates the whole system's
// notification load on itself; with Config.DelegateThreshold set, the
// owner instead recruits leaf-set nodes as delegates once the channel's
// subscriber count crosses the threshold, partitions the entry records
// across them by a deterministic hash of the client handle, and
// disseminates one delegateNotify per delegate — O(delegates) owner
// messages per update instead of O(entry nodes) or O(subscribers). Each
// delegate fans its slice out to entry nodes exactly as an unsharded
// owner would.
//
// The structure is soft state kept convergent by periodic full refreshes
// (the self-stabilizing supervised pub/sub discipline): every maintenance
// round the owner re-pushes each delegate's complete partition, so a lost
// incremental push, a delegate restart, or a re-partition after churn
// heals within one round. Delegations are fenced by the PR-5 owner epoch
// — a delegate ignores pushes and notifies older than the epoch it last
// accepted — and expire if the owner stops refreshing, so a dissolved
// delegation cannot notify from stale records forever. Only the owner's
// delegate roster is durable (store.OpDelegates); partitions themselves
// are derivable from the subscriber set and rebuilt on recovery.

// notifyTarget is one fan-out destination: a client and the entry node
// whose gateway delivers to it.
type notifyTarget struct {
	client string
	entry  pastry.Addr
}

// delegateExpiry is how many maintenance intervals a delegate keeps a
// partition its owner has stopped refreshing.
const delegateExpiry = 3

// delegateSlot assigns a client to one of slots fan-out shards; slot 0 is
// the owner's own share, slot i maps to the owner's i-1th delegate in
// roster order. The assignment depends only on the client handle and the
// shard count, so it needs no coordination and no per-client state.
func delegateSlot(client string, slots int) int {
	h := ids.HashString(client)
	return int(uint(h[0])<<8|uint(h[1])) % slots
}

// targetScratch hands out the pooled fan-out target slice, grown to
// capacity. Pairing every use with putTargetScratch keeps hot-channel
// updates from allocating O(subscribers) under n.mu (pastry's fanOut
// scratch, applied to the notification path).
func (n *Node) targetScratch(capacity int) *[]notifyTarget {
	ts, _ := n.notifyScratch.Get().(*[]notifyTarget)
	if ts == nil {
		ts = new([]notifyTarget)
	}
	if cap(*ts) < capacity {
		*ts = make([]notifyTarget, 0, capacity)
	}
	return ts
}

func (n *Node) putTargetScratch(ts *[]notifyTarget) {
	*ts = (*ts)[:0]
	n.notifyScratch.Put(ts)
}

// sendEntryBatches groups fan-out targets by entry node and emits one
// batch per group: a NotifyBatch through this node's own gateway for
// clients attached here (or with no entry recorded), one notifyBatchMsg
// overlay send per remote entry node. Targets are sorted in place. It
// returns the number of batches emitted; callers must not hold n.mu.
// sendEntryBatches fans an update out as one notifyBatch per distinct
// entry node. It returns the batch count plus the targets of batches the
// transport rejected synchronously: a dead entry node black-holes exactly
// the traffic that discovers it, so callers feed the failures back into
// the lease machinery (owners mark the leases expired themselves;
// delegates report them to their owner) instead of dropping them. The
// failed slice is freshly allocated — targets may live in pooled scratch.
func (n *Node) sendEntryBatches(notify Notifier, url string, version uint64, diff string, at time.Time, targets []notifyTarget) (int, []notifyTarget) {
	if len(targets) == 0 {
		return 0, nil
	}
	self := n.Self().ID
	// Order by (entry, client), not entry alone: the collect loops feed
	// targets in map-iteration order, so without the client tiebreak the
	// Clients list inside each batch would differ between identically
	// seeded runs.
	sort.Slice(targets, func(i, j int) bool {
		if c := targets[i].entry.ID.Cmp(targets[j].entry.ID); c != 0 {
			return c < 0
		}
		return targets[i].client < targets[j].client
	})
	batches := 0
	var failed []notifyTarget
	for start := 0; start < len(targets); {
		end := start + 1
		for end < len(targets) && targets[end].entry.ID == targets[start].entry.ID {
			end++
		}
		clients := make([]string, 0, end-start)
		for _, t := range targets[start:end] {
			clients = append(clients, t.client)
		}
		if entry := targets[start].entry; entry.IsZero() || entry.ID == self {
			// The local branch IS this batch's entry-node receipt — the
			// overlay hop it skips is what handleNotifyBatch observes.
			n.mu.Lock()
			obs := n.obsEntryRecv
			n.mu.Unlock()
			if obs != nil && !at.IsZero() {
				obs(n.now().Sub(at))
			}
			notify.NotifyBatch(clients, url, version, diff, at)
		} else if n.overlay.SendDirect(entry, msgNotifyBatch, &notifyBatchMsg{
			URL: url, Version: version, Diff: diff, Clients: clients, At: atNanos(at),
		}) != nil {
			failed = append(failed, targets[start:end]...)
		}
		batches++
		start = end
	}
	return batches, failed
}

// delegatePush pairs an overlay target with a delegation payload, built
// under n.mu and sent after it is released.
type delegatePush struct {
	to  pastry.Addr
	msg *delegateMsg
}

// delegateMaintain is the per-maintenance-round sharding pass: the owner
// side reconciles every owned channel's delegate roster with its
// subscriber count and re-pushes full partitions; the delegate side drops
// partitions whose owner has gone quiet.
func (n *Node) delegateMaintain() {
	if n.cfg.CountSubscribersOnly {
		return
	}
	now := n.now()
	n.mu.Lock()
	for id, at := range n.recentFaults {
		if now.Sub(at) > delegateExpiry*n.cfg.MaintenanceInterval {
			delete(n.recentFaults, id)
		}
	}
	var pushes []delegatePush
	for _, ch := range n.channels {
		if ch.delegSubs != nil && now.Sub(ch.delegAt) > delegateExpiry*n.cfg.MaintenanceInterval {
			ch.delegSubs = nil
			ch.delegFrom = pastry.Addr{}
		}
		if ch.isOwner {
			pushes = n.refreshDelegatesLocked(ch, pushes, ids.ID{})
		}
	}
	n.mu.Unlock()
	n.sendDelegatePushes(pushes)
}

// sendDelegatePushes fires collected delegation pushes; callers must not
// hold n.mu.
func (n *Node) sendDelegatePushes(pushes []delegatePush) {
	for _, p := range pushes {
		n.overlay.SendDirect(p.to, msgDelegate, p.msg)
	}
}

// refreshDelegatesLocked reconciles one owned channel's delegate roster —
// recruiting one delegate per threshold's worth of subscribers from the
// leaf set (excluding the given identifier, used when reacting to a peer
// fault the overlay may not have pruned yet), revoking nodes that leave
// the roster — and appends full-partition Replace pushes for the members
// that remain. Re-pushing everything every round is the self-stabilizing
// backstop: any partition a delegate lost or never received is restored
// within one maintenance interval. Callers hold n.mu.
func (n *Node) refreshDelegatesLocked(ch *channelState, pushes []delegatePush, exclude ids.ID) []delegatePush {
	want := 0
	if t := n.cfg.DelegateThreshold; t > 0 && !n.cfg.CountSubscribersOnly {
		want = ch.subs.count / t
	}
	var next []pastry.Addr
	if want > 0 {
		now := n.now()
		for _, leaf := range n.overlay.Leaves() {
			if leaf.ID == exclude || leaf.ID == n.Self().ID {
				continue
			}
			// A recently-faulted peer can linger in (or be gossiped back
			// into) the leaf set; recruiting it would black-hole its slice
			// until the next fault detection.
			if at, dead := n.recentFaults[leaf.ID]; dead && now.Sub(at) <= delegateExpiry*n.cfg.MaintenanceInterval {
				continue
			}
			next = append(next, leaf)
		}
		sort.Slice(next, func(i, j int) bool { return next[i].ID.Cmp(next[j].ID) < 0 })
		if want < len(next) {
			next = next[:want]
		}
	}
	// Each refresh is one roster revision; everything it pushes carries
	// the revision number so a delegate can discard pushes from an older
	// revision that land late (sendDelegatePushes runs unlocked, and a
	// failed send can trigger handlePeerFault's re-partition mid-loop).
	ch.delegSeq++
	if !addrsEqual(ch.delegates, next) {
		for _, old := range ch.delegates {
			if !addrsContain(next, old) {
				pushes = append(pushes, delegatePush{to: old, msg: &delegateMsg{
					URL: ch.url, OwnerEpoch: ch.ownerEpoch, Seq: ch.delegSeq,
					Owner: n.Self(), Revoke: true,
				}})
			}
		}
		ch.delegates = next
		n.emitDelegatesLocked(ch)
	}
	if len(ch.delegates) == 0 {
		ch.ownEntries = nil
		return pushes
	}
	slots := len(ch.delegates) + 1
	parts := make([][]replicatedSub, slots)
	own := make(map[string]pastry.Addr, len(ch.subs.ids)/slots+1)
	for c, entry := range ch.subs.ids {
		if s := delegateSlot(c, slots); s == 0 {
			own[c] = entry
		} else {
			parts[s] = append(parts[s], replicatedSub{Client: c, Entry: entry})
		}
	}
	// Each partition crosses the wire in a delegatePush; sort so the
	// payload bytes are a pure function of the subscriber set.
	for i := range parts {
		sort.Slice(parts[i], func(a, b int) bool { return parts[i][a].Client < parts[i][b].Client })
	}
	ch.ownEntries = own
	for i, d := range ch.delegates {
		pushes = append(pushes, delegatePush{to: d, msg: &delegateMsg{
			URL: ch.url, OwnerEpoch: ch.ownerEpoch, Seq: ch.delegSeq, Owner: n.Self(),
			Replace: true, Subs: parts[i+1],
		}})
	}
	return pushes
}

// shardEntryChangedLocked keeps a sharded channel's partitions current
// when one subscriber record changes between refreshes: the owner's own
// slot is updated in place; a delegate's slot yields an incremental push
// for the caller to fire once n.mu is released. Returns nil for
// unsharded channels and owner-slot changes. Callers hold n.mu.
func (n *Node) shardEntryChangedLocked(ch *channelState, client string, entry pastry.Addr, removed bool) *delegatePush {
	if !ch.isOwner || len(ch.delegates) == 0 {
		return nil
	}
	slot := delegateSlot(client, len(ch.delegates)+1)
	if slot == 0 {
		if removed {
			delete(ch.ownEntries, client)
		} else {
			if ch.ownEntries == nil {
				ch.ownEntries = make(map[string]pastry.Addr)
			}
			ch.ownEntries[client] = entry
		}
		return nil
	}
	msg := &delegateMsg{URL: ch.url, OwnerEpoch: ch.ownerEpoch, Seq: ch.delegSeq, Owner: n.Self()}
	if removed {
		msg.Removed = []string{client}
	} else {
		msg.Subs = []replicatedSub{{Client: client, Entry: entry}}
	}
	return &delegatePush{to: ch.delegates[slot-1], msg: msg}
}

// handleDelegate installs, patches, or revokes a fan-out partition pushed
// by a hot channel's owner.
func (n *Node) handleDelegate(msg pastry.Message) {
	p, ok := msg.Payload.(*delegateMsg)
	if !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ch := n.getChannel(p.URL)
	// stale: the push's (epoch, roster revision) is older than the last
	// delegation this node accepted — a delayed or raced push from a
	// superseded roster, which must not overwrite the newer partition.
	stale := p.OwnerEpoch < ch.delegEpoch ||
		(p.OwnerEpoch == ch.delegEpoch && p.Seq < ch.delegSeqSeen)
	switch {
	case p.Revoke:
		if !stale {
			ch.delegSubs = nil
			ch.delegFrom = pastry.Addr{}
			ch.delegEpoch = p.OwnerEpoch
			ch.delegSeqSeen = p.Seq
		}
	case ch.isOwner:
		// A node that believes it owns the channel takes no delegation:
		// the replicate/update claim handshake decides which owner is
		// real, and the winner re-pushes partitions within a round.
	case stale:
	default:
		if p.Replace {
			ch.delegSubs = make(map[string]pastry.Addr, len(p.Subs))
		} else if ch.delegSubs == nil {
			// An incremental patch with no installed partition (this node
			// expired or restarted it): ignore rather than fan out a
			// fragment as if it were the whole slice; the owner's next
			// Replace refresh installs the full partition.
			return
		}
		for _, s := range p.Subs {
			ch.delegSubs[s.Client] = s.Entry
		}
		for _, c := range p.Removed {
			delete(ch.delegSubs, c)
		}
		ch.delegFrom = p.Owner
		ch.delegEpoch = p.OwnerEpoch
		ch.delegSeqSeen = p.Seq
		ch.delegAt = n.now()
	}
}

// handleDelegateNotify fans one update out to the entry nodes of the
// partition this node carries for the channel's owner.
func (n *Node) handleDelegateNotify(msg pastry.Message) {
	p, ok := msg.Payload.(*delegateNotifyMsg)
	if !ok {
		return
	}
	n.mu.Lock()
	notify := n.notify
	ch := n.getChannel(p.URL)
	if notify == nil || ch.delegSubs == nil || p.OwnerEpoch < ch.delegEpoch {
		n.mu.Unlock()
		return
	}
	if p.Version > ch.lastVersion {
		ch.lastVersion = p.Version
	}
	targets := n.targetScratch(len(ch.delegSubs))
	for c, entry := range ch.delegSubs {
		//lint:allow maporder sendEntryBatches sorts targets by (entry, client) before anything is sent
		*targets = append(*targets, notifyTarget{client: c, entry: entry})
	}
	owner := ch.delegFrom
	n.stats.NotificationsSent += uint64(len(*targets))
	n.mu.Unlock()
	batches, failed := n.sendEntryBatches(notify, p.URL, p.Version, p.Diff, atTime(p.At), *targets)
	n.putTargetScratch(targets)
	if batches > 0 {
		n.mu.Lock()
		n.stats.NotifyBatchesSent += uint64(batches)
		n.mu.Unlock()
	}
	// Only the owner's lease sweep can re-point a dead entry, and the
	// owner never sends to a delegated client's entry itself — report the
	// bounce so its records heal. Failures come back grouped by entry
	// (sendEntryBatches sorts), one report per dead node.
	for start := 0; start < len(failed); {
		end := start + 1
		for end < len(failed) && failed[end].entry.ID == failed[start].entry.ID {
			end++
		}
		report := &leaseExpireMsg{URL: p.URL, Entry: failed[start].entry}
		for _, t := range failed[start:end] {
			report.Clients = append(report.Clients, t.client)
		}
		n.overlay.SendDirect(owner, msgLeaseExpire, report)
		start = end
	}
}

func addrsEqual(a, b []pastry.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func addrsContain(addrs []pastry.Addr, a pastry.Addr) bool {
	for _, x := range addrs {
		if x.ID == a.ID {
			return true
		}
	}
	return false
}

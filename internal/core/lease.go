package core

import (
	"sort"
	"time"

	"corona/internal/ids"
	"corona/internal/pastry"
)

// Entry-node leases (ROADMAP "Entry-node leases at the owner" and
// "Rewrite recovered entry addresses"). A subscriber's entry record at
// the channel owner names the node that delivers its notifications; when
// that node dies, the record black-holes every notification until the
// client replays its subscriptions. Leases make the repair server-side:
// entry nodes heartbeat liveness for their attached sessions (the client
// protocol's lease-refresh frame, driven by the SDK's ping loop, fans out
// into leaseMsg routes here), owners timestamp each subscriber's entry
// record, and the owner's maintain pass expires dead entries and
// re-routes their notifications to a surviving leaf-set node proactively
// — the proactive repair posture of Scribe's multicast-tree maintenance.

// RefreshLeases asserts, on behalf of an attached client, that this node
// is the client's live entry point for each listed channel. Each
// assertion routes to the channel's owner, which refreshes the
// subscriber's lease and re-points its entry record here — the
// server-side half of client failover, needing no Subscribe replay.
func (n *Node) RefreshLeases(client string, urls []string) error {
	var firstErr error
	for _, url := range urls {
		if url == "" {
			continue
		}
		err := n.overlay.Route(ids.HashString(url), msgLease, &leaseMsg{
			URL:    url,
			Client: client,
			Entry:  n.Self(),
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// leaseAssertTombstone is how long after an unsubscribe a lease assert
// for the departed client is ignored. It only needs to outlive overlay
// message reordering (an in-flight heartbeat racing the unsubscribe);
// after the client's SDK drops the URL from its desired set no further
// heartbeats mention it.
const leaseAssertTombstone = 30 * time.Second

// tombstoneLocked records an unsubscribe so racing lease asserts cannot
// resurrect the client, pruning aged-out entries while it is here so the
// map stays bounded by the last window's unsubscribes. Callers hold n.mu.
func (n *Node) tombstoneLocked(ch *channelState, client string) {
	now := n.now()
	if ch.unsubbed == nil {
		ch.unsubbed = make(map[string]time.Time)
	}
	for c, at := range ch.unsubbed {
		if now.Sub(at) > leaseAssertTombstone {
			delete(ch.unsubbed, c)
		}
	}
	ch.unsubbed[client] = now
}

// handleLease runs at the channel's root: an entry node vouches for one
// attached subscriber. The refresh is an idempotent subscription assert —
// it re-points a moved client's entry record (failover) and re-creates a
// subscription an in-memory owner lost across a restart — plus a lease
// timestamp the maintain sweep checks. Asserts for a freshly
// unsubscribed client are dropped: a heartbeat already in flight when
// the unsubscribe routed must not resurrect the subscriber.
func (n *Node) handleLease(msg pastry.Message) {
	p, ok := msg.Payload.(*leaseMsg)
	if !ok || n.cfg.CountSubscribersOnly {
		return
	}
	n.mu.Lock()
	ch := n.getChannel(p.URL)
	if ts, dead := ch.unsubbed[p.Client]; dead {
		if n.now().Sub(ts) <= leaseAssertTombstone {
			n.mu.Unlock()
			return
		}
		delete(ch.unsubbed, p.Client)
	}
	changed := ch.subs.add(p.Client, p.Entry, false)
	n.becomeOwnerLocked(ch)
	now := n.now()
	var hadLease bool
	if ch.isOwner {
		if ch.leases == nil {
			ch.leases = make(map[string]time.Time)
		}
		_, hadLease = ch.leases[p.Client]
		ch.leases[p.Client] = now
		n.stats.LeaseRefreshes++
	}
	var push *delegatePush
	if changed {
		n.emitSubLocked(ch, p.Client, p.Entry, false)
		push = n.shardEntryChangedLocked(ch, p.Client, p.Entry, false)
	}
	if ch.isOwner && (changed || !hadLease) {
		// Journal the lease only when it starts or its entry moves;
		// steady-state heartbeats stay out of the WAL. The record marks
		// which subscribers are under lease discipline — recovery stamps
		// them with a fresh grace window rather than trusting a timestamp
		// from before the crash.
		n.emitLeaseLocked(ch, p.Client, now)
	}
	n.mu.Unlock()
	if push != nil {
		n.overlay.SendDirect(push.to, msgDelegate, push.msg)
	}
	if changed {
		n.replicateChannel(ch)
	}
}

// handleLeaseExpire runs at a channel owner: a delegate reports clients
// whose notify batches bounced off a dead entry node. The owner plants
// the same zero-time lease mark handlePeerFault does, and the next sweep
// re-points the entries at survivors. Clients whose entry record has
// already moved off the reported node are skipped, so a delayed report
// cannot churn a repaired subscription.
func (n *Node) handleLeaseExpire(msg pastry.Message) {
	p, ok := msg.Payload.(*leaseExpireMsg)
	if !ok || n.cfg.CountSubscribersOnly || p.Entry.IsZero() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ch := n.getChannel(p.URL)
	if !ch.isOwner {
		return
	}
	for _, client := range p.Clients {
		entry, subscribed := ch.subs.ids[client]
		if !subscribed || entry.ID != p.Entry.ID {
			continue
		}
		if ch.leases == nil {
			ch.leases = make(map[string]time.Time)
		}
		ch.leases[client] = time.Time{}
	}
}

// leaseSweep is the owner's maintain-pass half of the lease protocol:
// subscribers whose entry node stopped proving liveness for longer than
// LeaseTTL (or was force-expired by a peer fault) have their entry
// records re-pointed at a surviving node, so notifications stop flowing
// into a dead gateway. The re-pointed entry is a proactive guess — the
// client's own next lease refresh, arriving through whichever node it
// failed over to, corrects it authoritatively.
func (n *Node) leaseSweep() {
	ttl := n.cfg.LeaseTTL
	if ttl <= 0 || n.cfg.CountSubscribersOnly {
		return
	}
	now := n.now()
	n.mu.Lock()
	var rerouted []*channelState
	var pushes []delegatePush
	// Sweep channels and leases in sorted order: fallback picks, WAL
	// records, and replication pushes all flow from this loop, and map
	// iteration order would make them differ between identically seeded
	// runs.
	swept := make([]*channelState, 0, len(n.channels))
	for _, ch := range n.channels {
		if ch.isOwner && len(ch.leases) > 0 {
			swept = append(swept, ch)
		}
	}
	sort.Slice(swept, func(i, j int) bool { return swept[i].url < swept[j].url })
	for _, ch := range swept {
		moved := false
		clients := make([]string, 0, len(ch.leases))
		for client := range ch.leases {
			clients = append(clients, client)
		}
		sort.Strings(clients)
		for _, client := range clients {
			last := ch.leases[client]
			entry, subscribed := ch.subs.ids[client]
			if !subscribed {
				delete(ch.leases, client)
				continue
			}
			if !last.IsZero() && now.Sub(last) <= ttl {
				continue
			}
			fallback := n.fallbackEntryLocked(client, entry)
			if fallback.IsZero() || fallback.ID == entry.ID {
				// No live alternative; re-arm the lease so the probe
				// repeats next pass instead of spinning every tick.
				ch.leases[client] = now
				continue
			}
			ch.subs.ids[client] = fallback
			// The re-route is one-shot: drop the lease mark rather than
			// re-arming it. A live client's next heartbeat re-creates the
			// lease (and re-points the entry authoritatively); a
			// subscriber that never heartbeats — IM, simulation, or a
			// permanently departed client — keeps the guessed entry
			// instead of being shuffled to a new node (with a WAL record
			// and a replication push) every TTL forever. If the guessed
			// node later dies too, the peer fault re-arms the mark.
			delete(ch.leases, client)
			n.stats.LeaseReroutes++
			n.emitSubLocked(ch, client, fallback, false)
			if p := n.shardEntryChangedLocked(ch, client, fallback, false); p != nil {
				pushes = append(pushes, *p)
			}
			// Journal the lease CLEAR too (an OpLease with a zero time),
			// or the original durable lease mark would resurrect lease
			// discipline — and this re-route — on every owner restart for
			// a client that may never heartbeat again.
			n.emitLeaseLocked(ch, client, time.Time{})
			moved = true
		}
		if moved {
			rerouted = append(rerouted, ch)
		}
	}
	n.mu.Unlock()
	n.sendDelegatePushes(pushes)
	for _, ch := range rerouted {
		n.replicateChannel(ch)
	}
}

// fallbackEntryLocked picks a replacement entry node for a client whose
// lease expired: this node or one of its surviving leaf-set siblings,
// chosen by the client's identifier so repeated sweeps agree, excluding
// the entry believed dead. The leaf set is not a liveness oracle —
// peers that never sent to a dead node gossip it back through state
// exchanges — so candidates recently reported dead are excluded too:
// without that memory the sweep can re-point a dead entry at another
// dead leaf, the failed-notify feedback re-arms the mark, and the pair
// livelocks (each pass excludes only the current entry, so the hash can
// bounce the client between two corpses forever). Callers hold n.mu.
func (n *Node) fallbackEntryLocked(client string, dead pastry.Addr) pastry.Addr {
	now := n.now()
	faulted := func(id ids.ID) bool {
		at, bad := n.recentFaults[id]
		return bad && now.Sub(at) <= delegateExpiry*n.cfg.MaintenanceInterval
	}
	candidates := make([]pastry.Addr, 0, 8)
	if n.Self().ID != dead.ID {
		candidates = append(candidates, n.Self())
	}
	for _, leaf := range n.overlay.Leaves() {
		if leaf.ID != dead.ID && !faulted(leaf.ID) {
			candidates = append(candidates, leaf)
		}
	}
	if len(candidates) == 0 {
		return pastry.Addr{}
	}
	h := ids.HashString(client)
	return candidates[int(h[0])%len(candidates)]
}

package honeycomb

import (
	"math"
	"math/rand"
	"testing"
)

func TestClusterMergeAccumulates(t *testing.T) {
	a := Cluster{Count: 2, SumQ: 10, SumS: 2, SumLogU: math.Log(100) * 2, Level: 1}
	b := Cluster{Count: 3, SumQ: 30, SumS: 3, SumLogU: math.Log(1000) * 3, Level: 1}
	a.Merge(b)
	if a.Count != 5 || a.SumQ != 40 || a.SumS != 5 {
		t.Fatalf("merge totals wrong: %+v", a)
	}
	if got := a.MeanQ(); got != 8 {
		t.Fatalf("MeanQ = %v, want 8", got)
	}
	// Geometric mean of {100,100,1000,1000,1000} = 10^( (2*2+3*3)/5 ) = 10^2.6
	want := math.Pow(10, 2.6)
	if got := a.MeanU(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("MeanU = %v, want %v", got, want)
	}
}

func TestClusterSetAddAndTotals(t *testing.T) {
	cs := NewClusterSet(16, 3)
	for i := 0; i < 100; i++ {
		cs.Add(ChannelFactors{Q: 5, S: 1, U: 3600, Level: i % 3})
	}
	if got := cs.TotalCount(); got != 100 {
		t.Fatalf("TotalCount = %v, want 100", got)
	}
	if got := cs.TotalQ(); got != 500 {
		t.Fatalf("TotalQ = %v, want 500", got)
	}
	if cs.Slack.Count != 0 {
		t.Fatalf("non-orphan channels landed in slack: %+v", cs.Slack)
	}
}

func TestClusterSetOrphansGoToSlack(t *testing.T) {
	cs := NewClusterSet(16, 3)
	cs.Add(ChannelFactors{Q: 7, S: 1, U: 60, Level: 3, Orphan: true})
	if cs.TotalCount() != 0 {
		t.Fatal("orphan counted in regular clusters")
	}
	if cs.Slack.Count != 1 || cs.Slack.SumQ != 7 {
		t.Fatalf("slack = %+v", cs.Slack)
	}
}

func TestClusterSetBinsSeparateRatios(t *testing.T) {
	cs := NewClusterSet(16, 1)
	// Very different q/(u·s) ratios must land in different bins.
	cs.Add(ChannelFactors{Q: 10000, S: 1, U: 60, Level: 0}) // hot, popular
	cs.Add(ChannelFactors{Q: 1, S: 1, U: 604800, Level: 0}) // cold, unpopular
	nonEmpty := cs.NonEmpty()
	if len(nonEmpty) != 2 {
		t.Fatalf("expected 2 distinct clusters, got %d", len(nonEmpty))
	}
}

func TestClusterSetSimilarRatiosCombine(t *testing.T) {
	cs := NewClusterSet(16, 1)
	cs.Add(ChannelFactors{Q: 100, S: 1, U: 3600, Level: 0})
	cs.Add(ChannelFactors{Q: 110, S: 1, U: 3700, Level: 0})
	if got := len(cs.NonEmpty()); got != 1 {
		t.Fatalf("similar channels split into %d clusters", got)
	}
}

func TestMergeSetAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func() *ClusterSet {
		cs := NewClusterSet(16, 3)
		for i := 0; i < 50; i++ {
			cs.Add(ChannelFactors{
				Q:      math.Exp(rng.Float64() * 8),
				S:      0.5 + rng.Float64(),
				U:      math.Exp(rng.Float64() * 12),
				Level:  rng.Intn(4),
				Orphan: rng.Intn(10) == 0,
			})
		}
		return cs
	}
	a, b, c := mk(), mk(), mk()

	// (a+b)+c == a+(b+c), compared by totals per bin.
	ab := a.Clone()
	ab.MergeSet(b)
	abc1 := ab.Clone()
	abc1.MergeSet(c)

	bc := b.Clone()
	bc.MergeSet(c)
	abc2 := a.Clone()
	abc2.MergeSet(bc)

	ba := b.Clone()
	ba.MergeSet(a)
	bac := ba.Clone()
	bac.MergeSet(c)

	for _, pair := range [][2]*ClusterSet{{abc1, abc2}, {abc1, bac}} {
		x, y := pair[0], pair[1]
		if math.Abs(x.TotalCount()-y.TotalCount()) > 1e-9 ||
			math.Abs(x.TotalQ()-y.TotalQ()) > 1e-6 ||
			math.Abs(x.Slack.Count-y.Slack.Count) > 1e-9 {
			t.Fatal("MergeSet is not associative/commutative on totals")
		}
		for l := range x.Clusters {
			for bin := range x.Clusters[l] {
				cx, cy := x.Clusters[l][bin], y.Clusters[l][bin]
				if math.Abs(cx.Count-cy.Count) > 1e-9 || math.Abs(cx.SumQ-cy.SumQ) > 1e-6 {
					t.Fatalf("bin (%d,%d) differs: %+v vs %+v", l, bin, cx, cy)
				}
			}
		}
	}
}

func TestMergeSetNil(t *testing.T) {
	cs := NewClusterSet(16, 3)
	cs.MergeSet(nil) // must not panic
	if cs.TotalCount() != 0 {
		t.Fatal("merge of nil changed totals")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := NewClusterSet(16, 2)
	a.Add(ChannelFactors{Q: 5, S: 1, U: 60, Level: 1})
	b := a.Clone()
	b.Add(ChannelFactors{Q: 50, S: 1, U: 60, Level: 1})
	if a.TotalQ() == b.TotalQ() {
		t.Fatal("Clone shares state with original")
	}
}

func TestBinForEdgeCases(t *testing.T) {
	cs := NewClusterSet(16, 1)
	for _, r := range []float64{0, -1, math.NaN()} {
		if got := cs.binFor(r); got != 0 {
			t.Errorf("binFor(%v) = %d, want 0", r, got)
		}
	}
	if got := cs.binFor(math.Inf(1)); got != cs.Bins-1 {
		t.Errorf("binFor(+Inf) = %d, want last bin", got)
	}
	// Bins are monotone in ratio.
	prev := -1
	for _, r := range []float64{1e-9, 1e-6, 1e-3, 1, 1e3, 1e6, 1e9} {
		b := cs.binFor(r)
		if b < prev {
			t.Fatalf("binFor not monotone at %v", r)
		}
		prev = b
	}
}

package honeycomb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// coronaEntry builds an Entry shaped like Corona-Lite's tradeoff for a
// channel with q subscribers and size s in an n-node, base-b overlay:
// F(l) = q·b^l/n (detection time, increasing), G(l) = s·n/b^l (load,
// decreasing).
func coronaEntry(key any, q, s float64, n, b, maxLevel int) Entry {
	f := make([]float64, maxLevel+1)
	g := make([]float64, maxLevel+1)
	pow := 1.0
	for l := 0; l <= maxLevel; l++ {
		f[l] = q * pow / float64(n)
		g[l] = s * float64(n) / pow
		pow *= float64(b)
	}
	return Entry{Key: key, Weight: 1, F: f, G: g, MaxLevel: maxLevel}
}

func TestSolveEmpty(t *testing.T) {
	sol := Solve(nil, 10)
	if !sol.Feasible || sol.TotalF != 0 || sol.TotalG != 0 {
		t.Fatalf("empty solve = %+v", sol)
	}
}

func TestSolveSingleChannel(t *testing.T) {
	e := coronaEntry("a", 100, 1, 1024, 16, 3)
	// Budget allows level 1 (g = 64) but not level 0 (g = 1024).
	sol := Solve([]Entry{e}, 100)
	if !sol.Feasible {
		t.Fatal("expected feasible")
	}
	if sol.Levels[0] != 1 {
		t.Fatalf("level = %d, want 1", sol.Levels[0])
	}
	// Unlimited budget: unconstrained optimum is level 0.
	sol = Solve([]Entry{e}, 1e12)
	if sol.Levels[0] != 0 {
		t.Fatalf("unconstrained level = %d, want 0", sol.Levels[0])
	}
	// Budget below even the cheapest allocation: infeasible, cheapest kept.
	sol = Solve([]Entry{e}, 0.1)
	if sol.Feasible {
		t.Fatal("expected infeasible")
	}
	if sol.Levels[0] != 3 {
		t.Fatalf("infeasible level = %d, want max 3", sol.Levels[0])
	}
}

func TestSolveFavorsPopularChannels(t *testing.T) {
	// Two channels, one 100x more popular; budget fits one at level 1.
	popular := coronaEntry("popular", 1000, 1, 1024, 16, 3)
	niche := coronaEntry("niche", 10, 1, 1024, 16, 3)
	sol := Solve([]Entry{popular, niche}, 70)
	if !sol.Feasible {
		t.Fatal("expected feasible")
	}
	if !(sol.Levels[0] < sol.Levels[1]) {
		t.Fatalf("popular channel should get the lower level: got %v", sol.Levels)
	}
}

func TestSolveRespectsBudgetAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(20)
		entries := make([]Entry, m)
		for i := range entries {
			q := math.Exp(rng.Float64() * 8)
			s := 0.25 + rng.Float64()*4
			entries[i] = coronaEntry(i, q, s, 1024, 16, 3)
		}
		budget := float64(m) * math.Exp(rng.Float64()*8)
		sol := Solve(entries, budget)
		if sol.Feasible && sol.TotalG > budget*(1+1e-9) {
			t.Fatalf("trial %d: feasible solution exceeds budget: G=%v budget=%v", trial, sol.TotalG, budget)
		}
		// Recompute totals independently.
		f, g := 0.0, 0.0
		for i, l := range sol.Levels {
			f += entries[i].F[l]
			g += entries[i].G[l]
		}
		if math.Abs(f-sol.TotalF) > 1e-6*(1+math.Abs(f)) || math.Abs(g-sol.TotalG) > 1e-6*(1+math.Abs(g)) {
			t.Fatalf("trial %d: totals inconsistent: %v/%v vs %v/%v", trial, sol.TotalF, sol.TotalG, f, g)
		}
	}
}

func TestSolveMatchesBruteForceWithinOneChannel(t *testing.T) {
	// The paper's accuracy guarantee: the solution deviates from the
	// integer optimum by at most one channel's worth of objective.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(6) // brute force is exponential
		entries := make([]Entry, m)
		maxGap := 0.0
		for i := range entries {
			q := math.Exp(rng.Float64() * 6)
			s := 0.5 + rng.Float64()*2
			entries[i] = coronaEntry(i, q, s, 256, 16, 2)
			gap := entries[i].F[entries[i].MaxLevel] - entries[i].F[0]
			if gap < 0 {
				gap = -gap
			}
			if gap > maxGap {
				maxGap = gap
			}
		}
		budget := 300 + rng.Float64()*3000
		got := Solve(entries, budget)
		want := BruteForce(entries, budget)
		if got.Feasible != want.Feasible {
			t.Fatalf("trial %d: feasibility mismatch: solver=%v brute=%v", trial, got.Feasible, want.Feasible)
		}
		if !got.Feasible {
			continue
		}
		if got.TotalF < want.TotalF-1e-9 {
			t.Fatalf("trial %d: solver beat brute force?! %v < %v", trial, got.TotalF, want.TotalF)
		}
		if got.TotalF > want.TotalF+maxGap+1e-9 {
			t.Fatalf("trial %d: solver off by more than one channel: got %v, opt %v, maxGap %v",
				trial, got.TotalF, want.TotalF, maxGap)
		}
	}
}

func TestSolveExactOnSeparablePoints(t *testing.T) {
	// When the budget exactly equals a breakpoint allocation, the solver
	// should match brute force exactly.
	entries := []Entry{
		coronaEntry("a", 512, 1, 256, 16, 2),
		coronaEntry("b", 64, 1, 256, 16, 2),
		coronaEntry("c", 8, 1, 256, 16, 2),
	}
	want := BruteForce(entries, 300)
	got := Solve(entries, 300)
	if got.TotalF != want.TotalF {
		t.Fatalf("TotalF = %v, want %v (levels %v vs %v)", got.TotalF, want.TotalF, got.Levels, want.Levels)
	}
}

func TestSolveRespectsLevelClamps(t *testing.T) {
	e := coronaEntry("orphan", 100, 1, 1024, 16, 3)
	e.MinLevel = 3 // orphan: pinned at base level
	sol := Solve([]Entry{e}, 1e12)
	if sol.Levels[0] != 3 {
		t.Fatalf("clamped level = %d, want 3", sol.Levels[0])
	}
}

func TestSolveWeights(t *testing.T) {
	// A cluster with weight 10 must consume 10x the budget of a single
	// channel at the same level.
	single := coronaEntry("one", 100, 1, 1024, 16, 3)
	cluster := coronaEntry("ten", 100, 1, 1024, 16, 3)
	cluster.Weight = 10
	sol := Solve([]Entry{cluster}, 640)
	if sol.Levels[0] != 1 {
		t.Fatalf("weighted level = %d, want 1 (10 channels x 64 = 640)", sol.Levels[0])
	}
	sol = Solve([]Entry{cluster}, 639)
	if sol.Levels[0] != 2 {
		t.Fatalf("weighted level = %d, want 2 when budget just misses", sol.Levels[0])
	}
	_ = single
}

func TestSolveMonotoneInBudget(t *testing.T) {
	// Property: more budget never worsens the objective.
	rng := rand.New(rand.NewSource(13))
	entries := make([]Entry, 12)
	for i := range entries {
		entries[i] = coronaEntry(i, math.Exp(rng.Float64()*7), 1, 1024, 16, 3)
	}
	prevF := math.Inf(1)
	for _, budget := range []float64{50, 100, 500, 1000, 5000, 20000, 1e6, 1e9} {
		sol := Solve(entries, budget)
		if sol.Feasible && sol.TotalF > prevF+1e-9 {
			t.Fatalf("objective worsened with more budget: %v -> %v at %v", prevF, sol.TotalF, budget)
		}
		if sol.Feasible {
			prevF = sol.TotalF
		}
	}
}

func TestBreakpointsMonotoneLevels(t *testing.T) {
	// Property: as λ grows the envelope level's G never increases.
	f := func(q, s float64) bool {
		q = 1 + math.Abs(q)
		s = 0.1 + math.Abs(s)
		e := coronaEntry("x", q, s, 1024, 16, 3)
		bps := breakpoints(&e)
		for i := 1; i < len(bps); i++ {
			if bps[i].lambda < bps[i-1].lambda {
				return false
			}
			if e.G[bps[i].level] >= e.G[bps[i-1].level] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIterationsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := 4096
	entries := make([]Entry, m)
	for i := range entries {
		entries[i] = coronaEntry(i, math.Exp(rng.Float64()*8), 1, 1024, 16, 3)
	}
	sol := Solve(entries, float64(m)*30)
	// Breakpoint list has ≤ 3m entries; binary search is ≤ log2(3m)+1.
	if sol.Iterations > 16 {
		t.Fatalf("iterations = %d, want ≤ log2(3·4096) ≈ 14", sol.Iterations)
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []Entry{
		{Key: "w", Weight: 0, F: []float64{1}, G: []float64{1}},
		{Key: "lvl", Weight: 1, F: []float64{1}, G: []float64{1}, MinLevel: 1, MaxLevel: 0},
		{Key: "len", Weight: 1, F: []float64{1}, G: []float64{1, 2}, MaxLevel: 1},
	}
	for _, e := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("entry %v did not panic", e.Key)
				}
			}()
			Solve([]Entry{e}, 1)
		}()
	}
}

// Package honeycomb is the optimization toolkit Corona uses to resolve
// performance-overhead tradeoffs (paper §3.2).
//
// It solves problems of the form
//
//	minimize   Σᵢ fᵢ(lᵢ)    subject to    Σᵢ gᵢ(lᵢ) ≤ T
//
// where lᵢ is the integer polling level of channel i and fᵢ, gᵢ are
// monotonic in l. The integer program is NP-hard; Honeycomb instead uses a
// Lagrange-multiplier relaxation. For a multiplier λ ≥ 0 each channel
// independently minimizes fᵢ(l) + λ·gᵢ(l); as λ sweeps from ∞ to 0 the
// per-channel minimizer moves monotonically from the cheapest-g level to
// the cheapest-f level, crossing at most K precomputable breakpoint values
// of λ. Sorting the global breakpoint list and binary-searching it yields
// the bracketing solutions L*d (feasible) and L*u (infeasible) in
// O(M log M log N) time; the result is exact to within the granularity of
// one channel (paper §3.2). A final greedy sweep over the channels tied at
// the critical λ tightens the gap.
package honeycomb

import (
	"fmt"
	"math"
	"sort"
)

// Entry describes the tradeoff of one channel (or of a cluster of channels
// with similar tradeoffs; see Cluster). F[l] and G[l] give the performance
// cost and the resource cost of operating the channel at level l, for
// l in [MinLevel, MaxLevel]. Both slices are indexed by absolute level and
// must have length MaxLevel+1.
type Entry struct {
	// Key identifies the channel to the caller; the solver treats it as
	// opaque.
	Key any
	// Weight is the multiplicity of this entry. A fine-grained channel
	// has weight 1; a cluster summarizing c channels has weight c. Both
	// F and G are per-unit values and are scaled by Weight internally.
	Weight float64
	// F is the objective contribution by level (monotone in l).
	F []float64
	// G is the constrained resource consumption by level (monotone in l,
	// opposite direction from F).
	G []float64
	// MinLevel and MaxLevel clamp the feasible levels. Orphan channels,
	// whose deeper wedges are empty, set MinLevel = MaxLevel = base level
	// (paper §4).
	MinLevel, MaxLevel int
}

func (e *Entry) validate() error {
	if e.Weight <= 0 {
		return fmt.Errorf("honeycomb: entry %v has non-positive weight %v", e.Key, e.Weight)
	}
	if e.MinLevel < 0 || e.MaxLevel < e.MinLevel {
		return fmt.Errorf("honeycomb: entry %v has invalid level range [%d,%d]", e.Key, e.MinLevel, e.MaxLevel)
	}
	if len(e.F) != e.MaxLevel+1 || len(e.G) != e.MaxLevel+1 {
		return fmt.Errorf("honeycomb: entry %v has %d/%d level values, want %d", e.Key, len(e.F), len(e.G), e.MaxLevel+1)
	}
	return nil
}

// Solution is the result of a Solve call.
type Solution struct {
	// Levels[i] is the chosen level for entries[i].
	Levels []int
	// TotalF and TotalG are the weighted objective and resource totals.
	TotalF, TotalG float64
	// Lambda is the critical multiplier at which the solution was found.
	Lambda float64
	// Feasible reports whether TotalG ≤ budget. It is false only when
	// even the cheapest allocation exceeds the budget, in which case the
	// solution is that cheapest allocation.
	Feasible bool
	// Iterations counts multiplier evaluations (for the complexity
	// benchmarks).
	Iterations int
}

// Solve minimizes Σ weightᵢ·Fᵢ(lᵢ) subject to Σ weightᵢ·Gᵢ(lᵢ) ≤ budget.
// It panics only on malformed entries (programming errors); numerical
// degeneracies are handled.
func Solve(entries []Entry, budget float64) Solution {
	for i := range entries {
		if err := entries[i].validate(); err != nil {
			panic(err)
		}
	}
	sol := Solution{Levels: make([]int, len(entries))}
	if len(entries) == 0 {
		sol.Feasible = 0 <= budget
		return sol
	}

	// Per-entry breakpoint analysis. levelAt(i, λ) is the level minimizing
	// F + λ·G for entry i; ties break toward the cheaper-G level so that
	// large λ always yields the most budget-friendly allocation.
	bps := make([][]breakpoint, len(entries))
	var all []float64
	for i := range entries {
		bps[i] = breakpoints(&entries[i])
		for _, bp := range bps[i] {
			all = append(all, bp.lambda)
		}
	}
	sort.Float64s(all)
	all = dedupFloats(all)

	evalG := func(lambda float64) float64 {
		total := 0.0
		for i := range entries {
			l := levelAt(bps[i], &entries[i], lambda)
			total += entries[i].Weight * entries[i].G[l]
		}
		return total
	}

	// G is nonincreasing in λ. λ = +∞ gives the cheapest allocation.
	cheapest := evalG(math.Inf(1))
	if cheapest > budget {
		// Infeasible even at minimum: return the cheapest allocation.
		sol.Lambda = math.Inf(1)
		sol.Feasible = false
		finish(&sol, entries, bps, math.Inf(1))
		return sol
	}
	sol.Feasible = true
	if evalG(0) <= budget {
		// The unconstrained optimum fits: take λ = 0.
		finish(&sol, entries, bps, 0)
		return sol
	}

	// Binary search the sorted breakpoint list for the smallest λ whose
	// allocation is feasible. Between breakpoints the allocation is
	// constant, so searching breakpoints is exact.
	lo, hi := 0, len(all)-1
	iters := 0
	for lo < hi {
		mid := (lo + hi) / 2
		iters++
		if evalG(all[mid]) <= budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	lambda := all[lo]
	sol.Iterations = iters
	finish(&sol, entries, bps, lambda)

	// Greedy tightening: entries whose breakpoint equals the critical λ
	// may individually move to their lower (better-F) level while the
	// budget allows. Order by marginal benefit ΔF/ΔG, best first. This is
	// the "differ in at most one channel" refinement (paper §3.2): after
	// the sweep at most one channel is left at a suboptimal level.
	type move struct {
		idx      int
		from, to int
		df, dg   float64
	}
	var moves []move
	for i := range entries {
		e := &entries[i]
		cur := sol.Levels[i]
		next := levelBelow(bps[i], e, lambda, cur)
		if next == cur {
			continue
		}
		df := e.Weight * (e.F[next] - e.F[cur]) // ≤ 0: improvement
		dg := e.Weight * (e.G[next] - e.G[cur]) // ≥ 0: extra cost
		if df < 0 {
			moves = append(moves, move{idx: i, from: cur, to: next, df: df, dg: dg})
		}
	}
	sort.Slice(moves, func(a, b int) bool {
		// Benefit per unit cost, descending; free moves first.
		ra := ratio(-moves[a].df, moves[a].dg)
		rb := ratio(-moves[b].df, moves[b].dg)
		if ra != rb {
			return ra > rb
		}
		return moves[a].idx < moves[b].idx
	})
	for _, m := range moves {
		if sol.TotalG+m.dg <= budget {
			sol.Levels[m.idx] = m.to
			sol.TotalG += m.dg
			sol.TotalF += m.df
		}
	}
	return sol
}

// ratio returns a/b with +Inf for b == 0 and a > 0.
func ratio(a, b float64) float64 {
	if b == 0 {
		if a > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return a / b
}

// finish fills the solution's levels and totals for a given λ.
func finish(sol *Solution, entries []Entry, bps [][]breakpoint, lambda float64) {
	sol.Lambda = lambda
	sol.TotalF, sol.TotalG = 0, 0
	for i := range entries {
		l := levelAt(bps[i], &entries[i], lambda)
		sol.Levels[i] = l
		sol.TotalF += entries[i].Weight * entries[i].F[l]
		sol.TotalG += entries[i].Weight * entries[i].G[l]
	}
}

// breakpoint records that for λ ≥ lambda the entry's minimizer is level
// `level` (until the next-larger breakpoint takes over).
type breakpoint struct {
	lambda float64
	level  int
}

// breakpoints computes the lower envelope of the lines y(λ) = F[l] + λ·G[l]
// for the feasible levels of e. It returns segments ordered by increasing
// λ threshold; levelAt walks them. At most MaxLevel-MinLevel breakpoints
// exist (paper: "for each channel there are only log N values of λ that
// change the argmin").
func breakpoints(e *Entry) []breakpoint {
	// Evaluate argmin by direct scan at λ=0, then repeatedly find the
	// smallest λ at which another level overtakes the current one. Since
	// K = MaxLevel-MinLevel is at most ~log_b N (≤ 40), the O(K²) scan is
	// cheap and robust against non-convex F/G.
	var out []breakpoint
	cur := argminAt(e, 0)
	out = append(out, breakpoint{lambda: 0, level: cur})
	lambda := 0.0
	for {
		// Find the smallest λ' > λ where some level l beats cur:
		// F[l] + λ'·G[l] < F[cur] + λ'·G[cur]
		// requires G[l] < G[cur] (cheaper slope wins as λ grows):
		// λ' > (F[l]-F[cur]) / (G[cur]-G[l]).
		best := math.Inf(1)
		bestLevel := cur
		for l := e.MinLevel; l <= e.MaxLevel; l++ {
			if e.G[l] >= e.G[cur] {
				continue
			}
			cross := (e.F[l] - e.F[cur]) / (e.G[cur] - e.G[l])
			if cross < lambda {
				cross = lambda
			}
			if cross < best || (cross == best && e.G[l] < e.G[bestLevel]) {
				best = cross
				bestLevel = l
			}
		}
		if math.IsInf(best, 1) || bestLevel == cur {
			return out
		}
		lambda = best
		cur = bestLevel
		out = append(out, breakpoint{lambda: lambda, level: cur})
	}
}

// argminAt scans all levels for the minimizer of F + λ·G, breaking ties
// toward cheaper G.
func argminAt(e *Entry, lambda float64) int {
	best := e.MinLevel
	bestVal := e.F[best] + lambda*e.G[best]
	for l := e.MinLevel + 1; l <= e.MaxLevel; l++ {
		v := e.F[l] + lambda*e.G[l]
		if v < bestVal || (v == bestVal && e.G[l] < e.G[best]) {
			best, bestVal = l, v
		}
	}
	return best
}

// levelAt returns the envelope level for multiplier lambda.
func levelAt(bps []breakpoint, e *Entry, lambda float64) int {
	if math.IsInf(lambda, 1) {
		// Cheapest-G level.
		best := e.MinLevel
		for l := e.MinLevel + 1; l <= e.MaxLevel; l++ {
			if e.G[l] < e.G[best] {
				best = l
			}
		}
		return best
	}
	level := bps[0].level
	for _, bp := range bps[1:] {
		if bp.lambda <= lambda {
			level = bp.level
		} else {
			break
		}
	}
	return level
}

// levelBelow returns the envelope level active just below lambda for the
// entry, starting from the current level; used by the tightening sweep.
func levelBelow(bps []breakpoint, e *Entry, lambda float64, cur int) int {
	level := bps[0].level
	for _, bp := range bps[1:] {
		if bp.lambda < lambda {
			level = bp.level
		} else {
			break
		}
	}
	if level == cur {
		return cur
	}
	return level
}

func dedupFloats(s []float64) []float64 {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// BruteForce exhaustively finds the exact optimum of the same problem. It
// is exponential in the number of entries and exists only as the test and
// ablation oracle.
func BruteForce(entries []Entry, budget float64) Solution {
	best := Solution{Levels: make([]int, len(entries)), TotalF: math.Inf(1), Feasible: false}
	levels := make([]int, len(entries))
	var rec func(i int, f, g float64)
	rec = func(i int, f, g float64) {
		if g > budget {
			return
		}
		if i == len(entries) {
			if f < best.TotalF {
				best.TotalF = f
				best.TotalG = g
				best.Feasible = true
				copy(best.Levels, levels)
			}
			return
		}
		e := &entries[i]
		for l := e.MinLevel; l <= e.MaxLevel; l++ {
			levels[i] = l
			rec(i+1, f+e.Weight*e.F[l], g+e.Weight*e.G[l])
		}
	}
	rec(0, 0, 0)
	return best
}

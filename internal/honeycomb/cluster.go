package honeycomb

import (
	"fmt"
	"math"
)

// Cluster summarizes the tradeoff factors of a group of channels with
// comparable f/g ratios at the same polling level (paper §3.2). Nodes
// exchange cluster sets instead of per-channel data, bounding aggregation
// overhead by TradeoffBins clusters per level regardless of how many
// channels exist.
type Cluster struct {
	// Count is the number of channels summarized.
	Count float64 `json:"count"`
	// SumQ is the total subscriber count of the summarized channels.
	SumQ float64 `json:"sum_q"`
	// SumS is the total (normalized) content size.
	SumS float64 `json:"sum_s"`
	// SumLogU accumulates ln(update interval seconds) so the cluster
	// reports the geometric mean interval, which is the right average
	// for quantities spread over orders of magnitude (paper §2: update
	// rates vary by several orders of magnitude).
	SumLogU float64 `json:"sum_log_u"`
	// Level is the polling level the channels currently operate at.
	Level int `json:"level"`
}

// Merge folds other into c. Merging is commutative and associative, so
// aggregation along the overlay DAG is order-independent.
func (c *Cluster) Merge(other Cluster) {
	c.Count += other.Count
	c.SumQ += other.SumQ
	c.SumS += other.SumS
	c.SumLogU += other.SumLogU
}

// MeanQ returns the average subscriber count per channel.
func (c Cluster) MeanQ() float64 {
	if c.Count == 0 {
		return 0
	}
	return c.SumQ / c.Count
}

// MeanS returns the average normalized content size per channel.
func (c Cluster) MeanS() float64 {
	if c.Count == 0 {
		return 0
	}
	return c.SumS / c.Count
}

// MeanU returns the geometric-mean update interval in seconds.
func (c Cluster) MeanU() float64 {
	if c.Count == 0 {
		return 0
	}
	return math.Exp(c.SumLogU / c.Count)
}

// ChannelFactors are the per-channel tradeoff inputs gathered by owners
// (paper §3.3): subscriber count, content size, and estimated update
// interval.
type ChannelFactors struct {
	// Q is the number of subscribers.
	Q float64
	// S is the content size normalized so the mean channel has S ≈ 1.
	S float64
	// U is the estimated update interval in seconds.
	U float64
	// Level is the channel's current polling level.
	Level int
	// Orphan marks channels whose sub-base-level wedge is empty, so their
	// polling level cannot be lowered (paper §4).
	Orphan bool
}

// ClusterSet holds TradeoffBins clusters per polling level, binned by the
// log of the ratio metric q/(u·s) — the Corona-Fair combination metric the
// paper gives as its example (§3.2). The zero value is not usable; call
// NewClusterSet.
type ClusterSet struct {
	// Bins is the number of ratio bins per level (TradeoffBins, 16 in the
	// prototype, §4).
	Bins int `json:"bins"`
	// MaxLevel bounds the level index.
	MaxLevel int `json:"max_level"`
	// Clusters maps [level][bin] to the cluster; empty clusters have
	// Count == 0.
	Clusters [][]Cluster `json:"clusters"`
	// Slack accumulates orphan channels whose levels are pinned at the
	// base level; the optimizer uses it to correct the budget before
	// solving (paper §4).
	Slack Cluster `json:"slack"`
}

// NewClusterSet creates an empty set with the given number of bins per
// level and levels 0..maxLevel.
func NewClusterSet(bins, maxLevel int) *ClusterSet {
	cs := &ClusterSet{Bins: bins, MaxLevel: maxLevel}
	cs.Clusters = make([][]Cluster, maxLevel+1)
	for l := range cs.Clusters {
		cs.Clusters[l] = make([]Cluster, bins)
	}
	return cs
}

// binFor maps a ratio metric to a bin index. Ratios spread over many
// orders of magnitude, so bins are logarithmic: each bin spans a factor
// of 4, centered so that ratios near 1 land mid-range.
func (cs *ClusterSet) binFor(ratio float64) int {
	if ratio <= 0 || math.IsNaN(ratio) {
		return 0
	}
	if math.IsInf(ratio, 1) {
		return cs.Bins - 1
	}
	idx := cs.Bins/2 + int(math.Floor(math.Log2(ratio)/2))
	if idx < 0 {
		return 0
	}
	if idx >= cs.Bins {
		return cs.Bins - 1
	}
	return idx
}

// Add folds one channel's factors into the set.
func (cs *ClusterSet) Add(f ChannelFactors) {
	u := f.U
	if u <= 0 {
		u = 1
	}
	s := f.S
	if s <= 0 {
		s = 1
	}
	c := Cluster{Count: 1, SumQ: f.Q, SumS: s, SumLogU: math.Log(u), Level: f.Level}
	if f.Orphan {
		cs.Slack.Merge(c)
		return
	}
	level := f.Level
	if level < 0 {
		level = 0
	}
	if level > cs.MaxLevel {
		level = cs.MaxLevel
	}
	bin := cs.binFor(f.Q / (u * s))
	target := &cs.Clusters[level][bin]
	target.Merge(c)
	target.Level = level
}

// MergeSet folds another cluster set into this one. Sets must agree on
// geometry; mismatched sets are rebinned conservatively.
func (cs *ClusterSet) MergeSet(other *ClusterSet) {
	if other == nil {
		return
	}
	cs.Slack.Merge(other.Slack)
	for l := range other.Clusters {
		for b := range other.Clusters[l] {
			c := other.Clusters[l][b]
			if c.Count == 0 {
				continue
			}
			level := l
			if level > cs.MaxLevel {
				level = cs.MaxLevel
			}
			bin := b
			if bin >= cs.Bins {
				bin = cs.Bins - 1
			}
			target := &cs.Clusters[level][bin]
			target.Merge(c)
			target.Level = level
		}
	}
}

// Clone deep-copies the set.
func (cs *ClusterSet) Clone() *ClusterSet {
	out := NewClusterSet(cs.Bins, cs.MaxLevel)
	out.Slack = cs.Slack
	for l := range cs.Clusters {
		copy(out.Clusters[l], cs.Clusters[l])
	}
	return out
}

// TotalCount returns the number of channels summarized, excluding slack.
func (cs *ClusterSet) TotalCount() float64 {
	total := 0.0
	for l := range cs.Clusters {
		for _, c := range cs.Clusters[l] {
			total += c.Count
		}
	}
	return total
}

// TotalQ returns the total subscriber count summarized, excluding slack.
func (cs *ClusterSet) TotalQ() float64 {
	total := 0.0
	for l := range cs.Clusters {
		for _, c := range cs.Clusters[l] {
			total += c.SumQ
		}
	}
	return total
}

// NonEmpty returns the clusters with nonzero count, for building solver
// entries.
func (cs *ClusterSet) NonEmpty() []Cluster {
	var out []Cluster
	for l := range cs.Clusters {
		for _, c := range cs.Clusters[l] {
			if c.Count > 0 {
				out = append(out, c)
			}
		}
	}
	return out
}

// String summarizes the set for logs.
func (cs *ClusterSet) String() string {
	return fmt.Sprintf("clusters{n=%.0f q=%.0f slack=%.0f}", cs.TotalCount(), cs.TotalQ(), cs.Slack.Count)
}

package honeycomb

import (
	"fmt"

	"corona/internal/wirebin"
)

// Native binary wire form for cluster sets, carried inside maintenance
// messages. A set is sparse by construction — TradeoffBins clusters per
// level but most empty — so only non-empty clusters travel, each tagged
// with its (level, bin) coordinates:
//
//	bins      svarint
//	maxLevel  svarint
//	slack     cluster
//	n         uvarint             count of non-empty clusters
//	n ×       level svarint, bin svarint, cluster
//
//	cluster = count, sumQ, sumS, sumLogU  (4 × 8-byte LE float64)
//	          level svarint
//
// Floats are fixed bit patterns, so the encoding is byte-stable and
// bit-exact — aggregation sums survive any number of hops unchanged.

// geometry bounds reject hostile encodings before allocating: real sets
// are TradeoffBins (16) × MaxLevel+1 (a handful), so the caps leave an
// order of magnitude of headroom while keeping the eager allocation in
// NewClusterSet small — maxWireCells bounds it to ~640 KiB, so a tiny
// hostile payload cannot demand an out-of-proportion allocation.
const (
	maxWireBins   = 256
	maxWireLevels = 256
	maxWireCells  = 16384
)

func appendCluster(dst []byte, c Cluster) []byte {
	dst = wirebin.AppendFloat64(dst, c.Count)
	dst = wirebin.AppendFloat64(dst, c.SumQ)
	dst = wirebin.AppendFloat64(dst, c.SumS)
	dst = wirebin.AppendFloat64(dst, c.SumLogU)
	return wirebin.AppendSint(dst, c.Level)
}

func readCluster(r *wirebin.Reader) Cluster {
	var c Cluster
	c.Count = r.Float64()
	c.SumQ = r.Float64()
	c.SumS = r.Float64()
	c.SumLogU = r.Float64()
	c.Level = r.Sint()
	return c
}

// AppendBinary appends the set's native binary encoding to dst,
// implementing the codec package's BinaryMarshaler contract.
func (cs *ClusterSet) AppendBinary(dst []byte) ([]byte, error) {
	dst = wirebin.AppendSint(dst, cs.Bins)
	dst = wirebin.AppendSint(dst, cs.MaxLevel)
	dst = appendCluster(dst, cs.Slack)
	n := 0
	for l := range cs.Clusters {
		for b := range cs.Clusters[l] {
			if cs.Clusters[l][b].Count != 0 {
				n++
			}
		}
	}
	dst = wirebin.AppendUvarint(dst, uint64(n))
	for l := range cs.Clusters {
		for b := range cs.Clusters[l] {
			if cs.Clusters[l][b].Count == 0 {
				continue
			}
			dst = wirebin.AppendSint(dst, l)
			dst = wirebin.AppendSint(dst, b)
			dst = appendCluster(dst, cs.Clusters[l][b])
		}
	}
	return dst, nil
}

// DecodeBinary parses an AppendBinary encoding into the receiver,
// implementing the codec package's BinaryUnmarshaler contract.
func (cs *ClusterSet) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	bins := r.Sint()
	maxLevel := r.Sint()
	if r.Err() == nil && (bins < 0 || bins > maxWireBins || maxLevel < 0 || maxLevel > maxWireLevels ||
		bins*(maxLevel+1) > maxWireCells) {
		return fmt.Errorf("honeycomb: cluster set geometry %d×%d out of range", bins, maxLevel)
	}
	slack := readCluster(r)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("honeycomb: truncated cluster set: %w", err)
	}
	if n > uint64(bins)*uint64(maxLevel+1) {
		return fmt.Errorf("honeycomb: cluster count %d exceeds geometry %d×%d", n, bins, maxLevel+1)
	}
	decoded := NewClusterSet(bins, maxLevel)
	decoded.Slack = slack
	for i := uint64(0); i < n; i++ {
		l := r.Sint()
		b := r.Sint()
		c := readCluster(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("honeycomb: truncated cluster set: %w", err)
		}
		if l < 0 || l > maxLevel || b < 0 || b >= bins {
			return fmt.Errorf("honeycomb: cluster coordinates (%d,%d) out of range", l, b)
		}
		decoded.Clusters[l][b] = c
	}
	if r.Len() != 0 {
		return fmt.Errorf("honeycomb: cluster set has %d trailing bytes", r.Len())
	}
	*cs = *decoded
	return nil
}

package honeycomb

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// randomClusterSet builds a populated set the way owners do: through Add.
func randomClusterSet(rng *rand.Rand) *ClusterSet {
	cs := NewClusterSet(16, 3)
	n := rng.Intn(40)
	for i := 0; i < n; i++ {
		cs.Add(ChannelFactors{
			Q:      rng.Float64() * 1000,
			S:      rng.Float64()*2 + 0.01,
			U:      rng.Float64() * 1e6,
			Level:  rng.Intn(4),
			Orphan: rng.Intn(8) == 0,
		})
	}
	return cs
}

func TestClusterSetBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		cs := randomClusterSet(rng)
		b, err := cs.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		var got ClusterSet
		if err := got.DecodeBinary(b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&got, cs) {
			t.Fatalf("round trip changed the set:\n got %+v\nwant %+v", &got, cs)
		}
		// Byte-stable: re-encoding the decoded set reproduces the bytes.
		b2, err := got.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatal("re-encode not byte-identical")
		}
	}
}

func TestClusterSetBinaryMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		cs := randomClusterSet(rng)
		jb, err := json.Marshal(cs)
		if err != nil {
			t.Fatal(err)
		}
		var viaJSON ClusterSet
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatal(err)
		}
		bb, err := cs.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		var viaBinary ClusterSet
		if err := viaBinary.DecodeBinary(bb); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaBinary, viaJSON) {
			t.Fatalf("binary path diverges from JSON path:\n bin  %+v\n json %+v", viaBinary, viaJSON)
		}
	}
}

func TestClusterSetDecodeTruncated(t *testing.T) {
	cs := randomClusterSet(rand.New(rand.NewSource(9)))
	b, err := cs.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		var got ClusterSet
		if err := got.DecodeBinary(b[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(b))
		}
	}
}

func TestClusterSetDecodeRejectsHostileGeometry(t *testing.T) {
	huge := NewClusterSet(1, 0)
	b, _ := huge.AppendBinary(nil)
	// Patch the bins varint to a huge value by re-encoding by hand:
	// bins and maxLevel are the first two svarints.
	hostile := append([]byte{0xfe, 0xff, 0xff, 0x0f}, b[2:]...) // bins ≈ 16M
	var got ClusterSet
	if err := got.DecodeBinary(hostile); err == nil {
		t.Fatal("oversized geometry accepted")
	}
}

func FuzzClusterSetDecode(f *testing.F) {
	cs := randomClusterSet(rand.New(rand.NewSource(10)))
	seed, _ := cs.AppendBinary(nil)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var got ClusterSet
		if err := got.DecodeBinary(data); err != nil {
			return
		}
		// Anything that decodes must re-encode byte-stably.
		b1, err := got.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		var again ClusterSet
		if err := again.DecodeBinary(b1); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		b2, err := again.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("encoding not byte-stable")
		}
	})
}

package stats

import (
	"fmt"
	"sort"
)

// QueueSample is one observation of a bounded send queue: its
// instantaneous depth against capacity and the cumulative drop counter at
// sampling time. Names identify the queue across samples (for netwire,
// "node→peer-endpoint").
type QueueSample struct {
	Name     string
	Depth    int
	Capacity int
	Drops    uint64
}

// queueTrack is the accumulated history of one queue.
type queueTrack struct {
	name      string
	peakDepth int
	capacity  int
	drops     uint64 // latest cumulative counter
	samples   int
}

// BackpressureMonitor folds periodic queue snapshots into per-queue peak
// depths and drop totals, making transport backpressure observable at
// experiment scale: a queue whose peak approaches capacity, or whose drop
// counter moves, marks a peer the sender cannot keep up with.
type BackpressureMonitor struct {
	queues map[string]*queueTrack
}

// NewBackpressureMonitor creates an empty monitor.
func NewBackpressureMonitor() *BackpressureMonitor {
	return &BackpressureMonitor{queues: make(map[string]*queueTrack)}
}

// Observe folds one snapshot of a queue into the monitor. Drops is a
// cumulative counter; the monitor keeps the latest value.
func (m *BackpressureMonitor) Observe(s QueueSample) {
	q := m.queues[s.Name]
	if q == nil {
		q = &queueTrack{name: s.Name}
		m.queues[s.Name] = q
	}
	if s.Depth > q.peakDepth {
		q.peakDepth = s.Depth
	}
	if s.Capacity > q.capacity {
		q.capacity = s.Capacity
	}
	if s.Drops > q.drops {
		q.drops = s.Drops
	}
	q.samples++
}

// QueueReport is the accumulated state of one queue.
type QueueReport struct {
	Name      string
	PeakDepth int
	Capacity  int
	Drops     uint64
	Samples   int
}

// PeakFill returns the peak observed occupancy as a fraction of capacity
// (0 when capacity is unknown).
func (r QueueReport) PeakFill() float64 {
	if r.Capacity == 0 {
		return 0
	}
	return float64(r.PeakDepth) / float64(r.Capacity)
}

// Queues returns per-queue reports, worst first (by drops, then peak
// fill).
func (m *BackpressureMonitor) Queues() []QueueReport {
	out := make([]QueueReport, 0, len(m.queues))
	for _, q := range m.queues {
		out = append(out, QueueReport{
			Name:      q.name,
			PeakDepth: q.peakDepth,
			Capacity:  q.capacity,
			Drops:     q.drops,
			Samples:   q.samples,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Drops != out[j].Drops {
			return out[i].Drops > out[j].Drops
		}
		if out[i].PeakFill() != out[j].PeakFill() {
			return out[i].PeakFill() > out[j].PeakFill()
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalDrops sums the latest drop counters across all queues.
func (m *BackpressureMonitor) TotalDrops() uint64 {
	var total uint64
	for _, q := range m.queues {
		total += q.drops
	}
	return total
}

// Render returns the worst `limit` queues as an aligned table (all queues
// when limit <= 0).
func (m *BackpressureMonitor) Render(limit int) string {
	reports := m.Queues()
	if limit > 0 && len(reports) > limit {
		reports = reports[:limit]
	}
	t := NewTable("queue", "peak", "cap", "fill%", "drops", "samples")
	for _, r := range reports {
		t.AddRow(r.Name, r.PeakDepth, r.Capacity, fmt.Sprintf("%.1f", 100*r.PeakFill()), r.Drops, r.Samples)
	}
	return t.Render()
}

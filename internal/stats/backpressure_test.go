package stats

import (
	"strings"
	"testing"
)

func TestBackpressureMonitor(t *testing.T) {
	m := NewBackpressureMonitor()
	m.Observe(QueueSample{Name: "a→b", Depth: 3, Capacity: 16, Drops: 0})
	m.Observe(QueueSample{Name: "a→b", Depth: 9, Capacity: 16, Drops: 2})
	m.Observe(QueueSample{Name: "a→b", Depth: 1, Capacity: 16, Drops: 2})
	m.Observe(QueueSample{Name: "a→c", Depth: 16, Capacity: 16, Drops: 0})

	reports := m.Queues()
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	// a→b has drops, so it sorts first despite a→c's full queue.
	if reports[0].Name != "a→b" || reports[0].PeakDepth != 9 || reports[0].Drops != 2 || reports[0].Samples != 3 {
		t.Fatalf("worst queue = %+v", reports[0])
	}
	if reports[1].Name != "a→c" || reports[1].PeakFill() != 1 {
		t.Fatalf("second queue = %+v", reports[1])
	}
	if m.TotalDrops() != 2 {
		t.Fatalf("total drops = %d", m.TotalDrops())
	}
	rendered := m.Render(1)
	if !strings.Contains(rendered, "a→b") || strings.Contains(rendered, "a→c") {
		t.Fatalf("Render(1) should keep only the worst queue:\n%s", rendered)
	}
}

// Package stats provides the measurement and reporting primitives the
// evaluation harness uses: bucketed time series (the x-axis of Figures 3,
// 4, 9, 10), weighted means (the paper's subscription-weighted update
// detection time), histograms with quantiles, and fixed-width table
// rendering for paper-shaped output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// TimeSeries accumulates samples into fixed-width time buckets. Each
// bucket records sum and count, so a series can report either per-bucket
// means (detection times) or rates (polls per minute).
type TimeSeries struct {
	start  time.Time
	bucket time.Duration
	sums   []float64
	counts []float64
}

// NewTimeSeries creates a series starting at start with the given bucket
// width.
func NewTimeSeries(start time.Time, bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		panic("stats: bucket width must be positive")
	}
	return &TimeSeries{start: start, bucket: bucket}
}

// Add records a sample value at time t. Samples before start are dropped.
func (ts *TimeSeries) Add(t time.Time, value float64) {
	ts.AddWeighted(t, value, 1)
}

// AddWeighted records a sample carrying the given weight — for example a
// detection latency experienced by q subscribers at once, which the
// paper's averages weigh per subscription (§3.1).
func (ts *TimeSeries) AddWeighted(t time.Time, value, weight float64) {
	offset := t.Sub(ts.start)
	if offset < 0 || weight <= 0 {
		return
	}
	idx := int(offset / ts.bucket)
	for idx >= len(ts.sums) {
		ts.sums = append(ts.sums, 0)
		ts.counts = append(ts.counts, 0)
	}
	ts.sums[idx] += value * weight
	ts.counts[idx] += weight
}

// Point is one rendered bucket.
type Point struct {
	// T is the bucket start offset from the series start.
	T time.Duration
	// Value is the bucket's mean or rate, depending on the accessor.
	Value float64
	// N is the total sample weight in the bucket.
	N float64
}

// Means returns per-bucket sample means; empty buckets yield NaN.
func (ts *TimeSeries) Means() []Point {
	out := make([]Point, len(ts.sums))
	for i := range ts.sums {
		v := math.NaN()
		if ts.counts[i] > 0 {
			v = ts.sums[i] / float64(ts.counts[i])
		}
		out[i] = Point{T: time.Duration(i) * ts.bucket, Value: v, N: ts.counts[i]}
	}
	return out
}

// Rates returns per-bucket sum divided by the bucket width in `per` units
// (for example per=time.Minute gives polls/minute when samples are poll
// counts).
func (ts *TimeSeries) Rates(per time.Duration) []Point {
	out := make([]Point, len(ts.sums))
	scale := float64(per) / float64(ts.bucket)
	for i := range ts.sums {
		out[i] = Point{T: time.Duration(i) * ts.bucket, Value: ts.sums[i] * scale, N: ts.counts[i]}
	}
	return out
}

// Buckets returns the number of buckets materialized.
func (ts *TimeSeries) Buckets() int { return len(ts.sums) }

// WeightedMean accumulates a weighted average incrementally.
type WeightedMean struct {
	sum    float64
	weight float64
}

// Add folds in a value with the given weight.
func (m *WeightedMean) Add(value, weight float64) {
	m.sum += value * weight
	m.weight += weight
}

// Mean returns the weighted average, or NaN when nothing was added.
func (m *WeightedMean) Mean() float64 {
	if m.weight == 0 {
		return math.NaN()
	}
	return m.sum / m.weight
}

// Weight returns the total weight accumulated.
func (m *WeightedMean) Weight() float64 { return m.weight }

// Histogram collects samples for quantile queries. It stores raw values;
// experiment sample counts (≤ millions) make that the simple, exact
// choice.
type Histogram struct {
	values []float64
	sorted bool
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.values = append(h.values, v)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.values) }

// Mean returns the sample mean, or NaN when empty.
func (h *Histogram) Mean() float64 {
	if len(h.values) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, v := range h.values {
		total += v
	}
	return total / float64(len(h.values))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by nearest-rank, or NaN
// when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.values) == 0 {
		return math.NaN()
	}
	if !h.sorted {
		sort.Float64s(h.values)
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.values)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.values) {
		idx = len(h.values) - 1
	}
	return h.values[idx]
}

// Table renders fixed-width rows for the benchmark output, mirroring how
// the paper presents Table 2.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// FormatDuration renders a duration the way the paper's axes do: seconds
// under two minutes, minutes under two hours, hours otherwise.
func FormatDuration(d time.Duration) string {
	switch {
	case d < 2*time.Minute:
		return fmt.Sprintf("%.0fs", d.Seconds())
	case d < 2*time.Hour:
		return fmt.Sprintf("%.1fm", d.Minutes())
	default:
		return fmt.Sprintf("%.1fh", d.Hours())
	}
}

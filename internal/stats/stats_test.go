package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2006, 5, 1, 0, 0, 0, 0, time.UTC)

func TestTimeSeriesMeans(t *testing.T) {
	ts := NewTimeSeries(t0, time.Minute)
	ts.Add(t0.Add(10*time.Second), 2)
	ts.Add(t0.Add(50*time.Second), 4)
	ts.Add(t0.Add(90*time.Second), 10)
	means := ts.Means()
	if len(means) != 2 {
		t.Fatalf("buckets = %d, want 2", len(means))
	}
	if means[0].Value != 3 || means[0].N != 2 {
		t.Fatalf("bucket 0 = %+v", means[0])
	}
	if means[1].Value != 10 {
		t.Fatalf("bucket 1 = %+v", means[1])
	}
}

func TestTimeSeriesRates(t *testing.T) {
	ts := NewTimeSeries(t0, 10*time.Minute)
	// 30 polls in the first 10-minute bucket = 3 polls/min.
	for i := 0; i < 30; i++ {
		ts.Add(t0.Add(time.Duration(i)*time.Second), 1)
	}
	rates := ts.Rates(time.Minute)
	if rates[0].Value != 3 {
		t.Fatalf("rate = %v polls/min, want 3", rates[0].Value)
	}
}

func TestTimeSeriesDropsPreStart(t *testing.T) {
	ts := NewTimeSeries(t0, time.Minute)
	ts.Add(t0.Add(-time.Second), 1)
	if ts.Buckets() != 0 {
		t.Fatal("pre-start sample created a bucket")
	}
}

func TestTimeSeriesEmptyBucketsNaN(t *testing.T) {
	ts := NewTimeSeries(t0, time.Minute)
	ts.Add(t0.Add(3*time.Minute), 5)
	means := ts.Means()
	if !math.IsNaN(means[0].Value) {
		t.Fatal("empty bucket mean not NaN")
	}
	if means[3].Value != 5 {
		t.Fatal("sample landed in wrong bucket")
	}
}

func TestNewTimeSeriesPanicsOnBadBucket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bucket width did not panic")
		}
	}()
	NewTimeSeries(t0, 0)
}

func TestWeightedMean(t *testing.T) {
	var m WeightedMean
	if !math.IsNaN(m.Mean()) {
		t.Fatal("empty mean not NaN")
	}
	m.Add(10, 1)
	m.Add(20, 3)
	if got := m.Mean(); got != 17.5 {
		t.Fatalf("Mean = %v, want 17.5", got)
	}
	if m.Weight() != 4 {
		t.Fatalf("Weight = %v", m.Weight())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram should be NaN")
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("median = %v, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
	// Adding after a quantile query must re-sort.
	h.Add(0.5)
	if got := h.Quantile(0); got != 0.5 {
		t.Fatalf("p0 after re-add = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Scheme", "Detection (s)", "Load")
	tbl.AddRow("Legacy-RSS", 900.0, 50.0)
	tbl.AddRow("Corona-Lite", 54.0, 49.22)
	out := tbl.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Scheme") || !strings.Contains(lines[3], "Corona-Lite") {
		t.Fatalf("table content wrong:\n%s", out)
	}
	// Columns aligned: header and row share the separator offset.
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("no separator:\n%s", out)
	}
}

func TestTableFormatsFloats(t *testing.T) {
	tbl := NewTable("v")
	tbl.AddRow(math.NaN())
	tbl.AddRow(0.0001)
	tbl.AddRow(12345.6)
	out := tbl.Render()
	if !strings.Contains(out, "-") {
		t.Fatal("NaN not rendered as dash")
	}
	if !strings.Contains(out, "e-") {
		t.Fatal("tiny value not in scientific notation")
	}
	if !strings.Contains(out, "12346") {
		t.Fatal("large value not rounded")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{30 * time.Second, "30s"},
		{90 * time.Second, "90s"},
		{15 * time.Minute, "15.0m"},
		{3 * time.Hour, "3.0h"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

package ids

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHashStringDeterministic(t *testing.T) {
	a := HashString("http://example.com/feed.xml")
	b := HashString("http://example.com/feed.xml")
	if a != b {
		t.Fatalf("HashString not deterministic: %v vs %v", a, b)
	}
	c := HashString("http://example.com/other.xml")
	if a == c {
		t.Fatalf("distinct URLs hashed to the same ID %v", a)
	}
}

func TestFromHexRoundTrip(t *testing.T) {
	id := HashString("roundtrip")
	got, err := FromHex(id.String())
	if err != nil {
		t.Fatalf("FromHex(%q): %v", id.String(), err)
	}
	if got != id {
		t.Fatalf("round trip mismatch: %v vs %v", got, id)
	}
}

func TestFromHexErrors(t *testing.T) {
	cases := []string{"", "abc", "zz" + HashString("x").String()[2:]}
	for _, c := range cases {
		if _, err := FromHex(c); err == nil {
			t.Errorf("FromHex(%q) succeeded, want error", c)
		}
	}
}

func TestCmp(t *testing.T) {
	var a, b ID
	a[Bytes-1] = 1
	if Zero.Cmp(a) != -1 || a.Cmp(Zero) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp ordering wrong for small values")
	}
	b[0] = 1
	if a.Cmp(b) != -1 {
		t.Fatal("Cmp must be big-endian: high byte dominates")
	}
}

func TestAddSubIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := Random(rng), Random(rng)
		if got := a.Add(b).Sub(b); got != a {
			t.Fatalf("(a+b)-b != a: a=%v b=%v got=%v", a, b, got)
		}
	}
}

func TestAddCarryPropagation(t *testing.T) {
	var ones ID
	for i := range ones {
		ones[i] = 0xff
	}
	var one ID
	one[Bytes-1] = 1
	if got := ones.Add(one); got != Zero {
		t.Fatalf("max+1 should wrap to zero, got %v", got)
	}
	if got := Zero.Sub(one); got != ones {
		t.Fatalf("0-1 should wrap to max, got %v", got)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b ID) bool {
		return a.Distance(b) == b.Distance(a)
	}
	cfg := &quick.Config{Values: randomIDPair}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceZeroIffEqual(t *testing.T) {
	f := func(a, b ID) bool {
		d := a.Distance(b)
		return (d == Zero) == (a == b)
	}
	if err := quick.Check(f, &quick.Config{Values: randomIDPair}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceIsShorterArc(t *testing.T) {
	// Distance must never exceed half the ring.
	var half ID
	half[0] = 0x80
	f := func(a, b ID) bool {
		return a.Distance(b).Cmp(half) <= 0
	}
	if err := quick.Check(f, &quick.Config{Values: randomIDPair}); err != nil {
		t.Fatal(err)
	}
}

func TestBetween(t *testing.T) {
	a := MustFromHex("1000000000000000000000000000000000000000")
	b := MustFromHex("2000000000000000000000000000000000000000")
	c := MustFromHex("3000000000000000000000000000000000000000")
	if !b.Between(a, c) {
		t.Error("b should be in (a, c]")
	}
	if a.Between(a, c) {
		t.Error("arc is open at the start")
	}
	if !c.Between(a, c) {
		t.Error("arc is closed at the end")
	}
	// Wrapping arc (c, a]: everything outside (a, c].
	if !Zero.Between(c, a) {
		t.Error("zero should be in the wrapping arc (c, a]")
	}
	if b.Between(c, a) {
		t.Error("b should not be in the wrapping arc")
	}
	// Degenerate arc covers the ring.
	if !b.Between(a, a) {
		t.Error("(x, x] must cover the whole ring")
	}
}

func TestBaseValidation(t *testing.T) {
	for _, b := range []int{2, 4, 16} {
		if _, err := NewBase(b); err != nil {
			t.Errorf("NewBase(%d): %v", b, err)
		}
	}
	for _, b := range []int{0, 1, 3, 8, 32, 256} {
		if _, err := NewBase(b); err == nil {
			t.Errorf("NewBase(%d) succeeded, want error", b)
		}
	}
}

func TestDigitExtraction(t *testing.T) {
	id := MustFromHex("0123456789abcdef0123456789abcdef01234567")
	b16 := MustBase(16)
	want := []int{0x0, 0x1, 0x2, 0x3, 0x4, 0x5, 0x6, 0x7, 0x8, 0x9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xf}
	for i, w := range want {
		if got := b16.Digit(id, i); got != w {
			t.Errorf("base16 digit %d = %#x, want %#x", i, got, w)
		}
	}
	b2 := MustBase(2)
	// First hex digit 0x0 -> bits 0,0,0,0; second 0x1 -> 0,0,0,1.
	wantBits := []int{0, 0, 0, 0, 0, 0, 0, 1}
	for i, w := range wantBits {
		if got := b2.Digit(id, i); got != w {
			t.Errorf("base2 digit %d = %d, want %d", i, got, w)
		}
	}
	if b16.NumDigits() != 40 || b2.NumDigits() != 160 || MustBase(4).NumDigits() != 80 {
		t.Error("NumDigits wrong")
	}
}

func TestWithDigit(t *testing.T) {
	b := MustBase(16)
	id := HashString("withdigit")
	for i := 0; i < b.NumDigits(); i += 7 {
		for d := 0; d < 16; d += 5 {
			got := b.WithDigit(id, i, d)
			if b.Digit(got, i) != d {
				t.Fatalf("WithDigit(%d,%d): digit = %d", i, d, b.Digit(got, i))
			}
			// Other digits unchanged.
			for j := 0; j < b.NumDigits(); j++ {
				if j != i && b.Digit(got, j) != b.Digit(id, j) {
					t.Fatalf("WithDigit(%d,%d) perturbed digit %d", i, d, j)
				}
			}
		}
	}
}

func TestCommonPrefix(t *testing.T) {
	b := MustBase(16)
	id := HashString("prefix")
	if got := b.CommonPrefix(id, id); got != b.NumDigits() {
		t.Fatalf("CommonPrefix(id,id) = %d, want %d", got, b.NumDigits())
	}
	for i := 0; i < b.NumDigits(); i += 3 {
		other := b.WithDigit(id, i, (b.Digit(id, i)+1)%16)
		if got := b.CommonPrefix(id, other); got != i {
			t.Errorf("CommonPrefix with digit %d flipped = %d, want %d", i, got, i)
		}
	}
}

func TestInWedge(t *testing.T) {
	b := MustBase(16)
	channel := HashString("channel")
	node := b.WithDigit(channel, 2, (b.Digit(channel, 2)+1)%16) // shares exactly 2 digits
	for level := 0; level <= 4; level++ {
		want := level <= 2
		if got := b.InWedge(node, channel, level); got != want {
			t.Errorf("InWedge level %d = %v, want %v", level, got, want)
		}
	}
}

func TestMaxLevel(t *testing.T) {
	b := MustBase(16)
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {16, 1}, {17, 2}, {256, 2}, {1024, 3}, {4096, 3}, {4097, 4},
	}
	for _, c := range cases {
		if got := b.MaxLevel(c.n); got != c.want {
			t.Errorf("MaxLevel(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestWedgeSize(t *testing.T) {
	b := MustBase(16)
	if got := b.WedgeSize(1024, 0); got != 1024 {
		t.Errorf("WedgeSize(1024,0) = %v", got)
	}
	if got := b.WedgeSize(1024, 1); got != 64 {
		t.Errorf("WedgeSize(1024,1) = %v", got)
	}
	if got := b.WedgeSize(1024, 3); got != 1 {
		t.Errorf("WedgeSize(1024,3) = %v, want floor of 1", got)
	}
}

func TestPrefixMonotonicity(t *testing.T) {
	// Property: if a node is in a wedge at level l, it is in every wedge
	// at level < l (wedges are nested).
	b := MustBase(16)
	f := func(node, channel ID) bool {
		p := b.CommonPrefix(node, channel)
		for l := 0; l <= p; l++ {
			if !b.InWedge(node, channel, l) {
				return false
			}
		}
		return !b.InWedge(node, channel, p+1) || p == b.NumDigits()
	}
	if err := quick.Check(f, &quick.Config{Values: randomIDPair}); err != nil {
		t.Fatal(err)
	}
}

// randomIDPair fills two reflect.Values with random IDs for testing/quick.
func randomIDPair(args []reflect.Value, rng *rand.Rand) {
	for i := range args {
		args[i] = reflect.ValueOf(Random(rng))
	}
}

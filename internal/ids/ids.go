// Package ids implements the 160-bit circular identifier space shared by
// Corona nodes and channels.
//
// Identifiers are SHA-1 hashes (of a node's address or a channel's URL)
// interpreted as unsigned 160-bit integers on a ring. The overlay treats an
// identifier as a sequence of base-b digits, where b is a power of two; the
// prefix digits shared between a node ID and a channel ID determine wedge
// membership for cooperative polling (paper §3.1).
package ids

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
)

// Bits is the width of an identifier in bits.
const Bits = 160

// Bytes is the width of an identifier in bytes.
const Bytes = Bits / 8

// ID is a 160-bit identifier on the circular numeric space. IDs order as
// big-endian unsigned integers; the ring wraps at 2^160.
type ID [Bytes]byte

// Zero is the all-zero identifier.
var Zero ID

// HashString derives an identifier from an arbitrary string, such as a
// channel URL or a node's network address, using SHA-1 as in the prototype
// (paper §4).
func HashString(s string) ID {
	return ID(sha1.Sum([]byte(s)))
}

// HashBytes derives an identifier from a byte slice.
func HashBytes(b []byte) ID {
	return ID(sha1.Sum(b))
}

// FromHex parses a 40-character hexadecimal string into an ID.
func FromHex(s string) (ID, error) {
	var id ID
	if len(s) != Bytes*2 {
		return id, fmt.Errorf("ids: hex string has length %d, want %d", len(s), Bytes*2)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("ids: invalid hex: %w", err)
	}
	copy(id[:], b)
	return id, nil
}

// MustFromHex is FromHex for tests and literals; it panics on error.
func MustFromHex(s string) ID {
	id, err := FromHex(s)
	if err != nil {
		panic(err)
	}
	return id
}

// Random returns a uniformly random identifier drawn from rng.
func Random(rng *rand.Rand) ID {
	var id ID
	for i := 0; i < Bytes; {
		v := rng.Uint64()
		for j := 0; j < 8 && i < Bytes; j++ {
			id[i] = byte(v >> (56 - 8*j))
			i++
		}
	}
	return id
}

// String renders the identifier as lowercase hex.
func (id ID) String() string {
	return hex.EncodeToString(id[:])
}

// Short renders the first 8 hex digits, for logs.
func (id ID) Short() string {
	return hex.EncodeToString(id[:4])
}

// Cmp compares two identifiers as big-endian unsigned integers, returning
// -1, 0, or +1.
func (id ID) Cmp(other ID) int {
	for i := 0; i < Bytes; i++ {
		switch {
		case id[i] < other[i]:
			return -1
		case id[i] > other[i]:
			return 1
		}
	}
	return 0
}

// IsZero reports whether the identifier is all zeros.
func (id ID) IsZero() bool {
	return id == Zero
}

// Add returns id + other mod 2^160.
func (id ID) Add(other ID) ID {
	var out ID
	var carry uint16
	for i := Bytes - 1; i >= 0; i-- {
		sum := uint16(id[i]) + uint16(other[i]) + carry
		out[i] = byte(sum)
		carry = sum >> 8
	}
	return out
}

// Sub returns id - other mod 2^160 (the clockwise distance from other to id).
func (id ID) Sub(other ID) ID {
	var out ID
	var borrow int16
	for i := Bytes - 1; i >= 0; i-- {
		d := int16(id[i]) - int16(other[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// Distance returns the shorter arc length between two identifiers on the
// ring, i.e. min(a-b, b-a) mod 2^160.
func (id ID) Distance(other ID) ID {
	d1 := id.Sub(other)
	d2 := other.Sub(id)
	if d1.Cmp(d2) <= 0 {
		return d1
	}
	return d2
}

// Between reports whether id lies in the half-open clockwise arc (from, to].
// If from == to the arc covers the whole ring.
func (id ID) Between(from, to ID) bool {
	if from == to {
		return true
	}
	if from.Cmp(to) < 0 {
		return id.Cmp(from) > 0 && id.Cmp(to) <= 0
	}
	// The arc wraps around zero.
	return id.Cmp(from) > 0 || id.Cmp(to) <= 0
}

// Base describes the digit radix used by the overlay. The paper's prototype
// uses base 16 (§4); bases must be powers of two so digits align to bits.
type Base struct {
	bits int // bits per digit: 1, 2, or 4
}

// NewBase constructs a Base for radix b, which must be 2, 4, or 16.
func NewBase(b int) (Base, error) {
	switch b {
	case 2:
		return Base{bits: 1}, nil
	case 4:
		return Base{bits: 2}, nil
	case 16:
		return Base{bits: 4}, nil
	}
	return Base{}, errors.New("ids: base must be 2, 4, or 16")
}

// MustBase is NewBase for configuration literals; it panics on error.
func MustBase(b int) Base {
	base, err := NewBase(b)
	if err != nil {
		panic(err)
	}
	return base
}

// Radix returns the numeric radix (2, 4, or 16).
func (b Base) Radix() int {
	return 1 << b.bits
}

// NumDigits returns how many base-b digits an identifier has.
func (b Base) NumDigits() int {
	return Bits / b.bits
}

// Digit returns the i-th most significant base-b digit of id, in [0,Radix).
func (b Base) Digit(id ID, i int) int {
	bitOff := i * b.bits
	byteOff := bitOff / 8
	shift := 8 - b.bits - (bitOff % 8)
	return int(id[byteOff]>>shift) & (b.Radix() - 1)
}

// CommonPrefix returns the number of leading base-b digits shared by a and b.
func (b Base) CommonPrefix(x, y ID) int {
	n := 0
	for i := 0; i < b.NumDigits(); i++ {
		if b.Digit(x, i) != b.Digit(y, i) {
			break
		}
		n++
	}
	return n
}

// InWedge reports whether node belongs to the level-l wedge of channel:
// the set of nodes sharing at least l prefix digits with the channel ID.
// Level 0 is the whole ring (paper §3.1).
func (b Base) InWedge(node, channel ID, level int) bool {
	if level <= 0 {
		return true
	}
	return b.CommonPrefix(node, channel) >= level
}

// WithDigit returns a copy of id whose i-th digit is set to d. It is used
// when constructing routing-table probe targets.
func (b Base) WithDigit(id ID, i, d int) ID {
	bitOff := i * b.bits
	byteOff := bitOff / 8
	shift := 8 - b.bits - (bitOff % 8)
	mask := byte((b.Radix() - 1) << shift)
	id[byteOff] = (id[byteOff] &^ mask) | byte(d<<shift)&mask
	return id
}

// MaxLevel returns ceil(log_b n), the base polling level K at which, in
// expectation, a single node (the owner) shares K prefix digits with a
// channel (paper §3.3: "initially, only the owner nodes at level
// K = ceil(log N) poll for the channels").
func (b Base) MaxLevel(n int) int {
	if n <= 1 {
		return 0
	}
	level := 0
	total := 1
	for total < n {
		total *= b.Radix()
		level++
	}
	return level
}

// WedgeSize returns the expected number of nodes in a level-l wedge of an
// n-node overlay: n / b^l, with a floor of 1 (the owner always polls).
func (b Base) WedgeSize(n, level int) float64 {
	size := float64(n)
	for i := 0; i < level; i++ {
		size /= float64(b.Radix())
	}
	if size < 1 {
		return 1
	}
	return size
}

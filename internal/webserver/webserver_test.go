package webserver

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"corona/internal/feed"
)

var t0 = time.Date(2006, 5, 1, 0, 0, 0, 0, time.UTC)

func TestPeriodicProcessVersions(t *testing.T) {
	p := PeriodicProcess{Origin: t0, Interval: 10 * time.Minute}
	cases := []struct {
		at   time.Duration
		want uint64
	}{
		{-time.Minute, 0},
		{0, 1},
		{time.Minute, 1},
		{10 * time.Minute, 2},
		{25 * time.Minute, 3},
	}
	for _, c := range cases {
		if got := p.VersionAt(t0.Add(c.at)); got != c.want {
			t.Errorf("VersionAt(+%v) = %d, want %d", c.at, got, c.want)
		}
	}
	if got := p.UpdateTime(3); !got.Equal(t0.Add(20 * time.Minute)) {
		t.Errorf("UpdateTime(3) = %v", got)
	}
	if got := p.UpdateTime(0); !got.IsZero() {
		t.Errorf("UpdateTime(0) = %v, want zero", got)
	}
}

func TestPeriodicProcessConsistency(t *testing.T) {
	// Property: VersionAt(UpdateTime(v)) == v for all v.
	p := PeriodicProcess{Origin: t0.Add(7 * time.Minute), Interval: 13 * time.Minute}
	for v := uint64(1); v < 100; v++ {
		if got := p.VersionAt(p.UpdateTime(v)); got != v {
			t.Fatalf("VersionAt(UpdateTime(%d)) = %d", v, got)
		}
	}
}

func TestPoissonProcessConsistency(t *testing.T) {
	p := NewPoissonProcess(t0, time.Hour, 42)
	for v := uint64(1); v < 200; v++ {
		at := p.UpdateTime(v)
		if got := p.VersionAt(at); got != v {
			t.Fatalf("VersionAt(UpdateTime(%d)) = %d", v, got)
		}
		if v > 1 && !at.After(p.UpdateTime(v-1)) {
			t.Fatalf("update times not strictly increasing at %d", v)
		}
	}
}

func TestPoissonProcessMeanGap(t *testing.T) {
	p := NewPoissonProcess(t0, time.Hour, 7)
	const n = 2000
	total := p.UpdateTime(n).Sub(p.UpdateTime(1))
	mean := total / (n - 1)
	if mean < 45*time.Minute || mean > 75*time.Minute {
		t.Fatalf("empirical mean gap %v too far from 1h", mean)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := NewPoissonProcess(t0, time.Hour, 3)
	b := NewPoissonProcess(t0, time.Hour, 3)
	for v := uint64(1); v < 50; v++ {
		if !a.UpdateTime(v).Equal(b.UpdateTime(v)) {
			t.Fatal("same seed produced different event times")
		}
	}
}

func TestStaticProcess(t *testing.T) {
	s := StaticProcess{Origin: t0}
	if s.VersionAt(t0.Add(100*24*time.Hour)) != 1 {
		t.Fatal("static process updated")
	}
	if s.VersionAt(t0.Add(-time.Second)) != 0 {
		t.Fatal("static process visible before origin")
	}
}

func TestOriginFetchAccounting(t *testing.T) {
	o := NewOrigin()
	o.Host(ChannelConfig{
		URL:       "http://example.com/f",
		SizeBytes: 4096,
		Process:   PeriodicProcess{Origin: t0, Interval: time.Hour},
	})
	res, err := o.Fetch("http://example.com/f", t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || !res.Modified || res.Bytes != 4096 {
		t.Fatalf("first fetch = %+v", res)
	}
	// Unconditional fetch always pays full size.
	res, _ = o.Fetch("http://example.com/f", t0.Add(2*time.Minute))
	if res.Bytes != 4096 {
		t.Fatalf("second unconditional fetch bytes = %d", res.Bytes)
	}
	load, _ := o.Load("http://example.com/f")
	if load.Polls != 2 || load.BytesServed != 8192 {
		t.Fatalf("load = %+v", load)
	}
}

func TestOriginConditionalFetch(t *testing.T) {
	o := NewOrigin()
	o.Host(ChannelConfig{
		URL:       "u",
		SizeBytes: 4096,
		Process:   PeriodicProcess{Origin: t0, Interval: time.Hour},
	})
	res, _ := o.FetchConditional("u", t0.Add(time.Minute), 0)
	if !res.Modified {
		t.Fatal("initial conditional fetch should return content")
	}
	res, _ = o.FetchConditional("u", t0.Add(2*time.Minute), res.Version)
	if res.Modified || res.Bytes >= 4096 {
		t.Fatalf("unchanged conditional fetch = %+v, want cheap 304", res)
	}
	res, _ = o.FetchConditional("u", t0.Add(61*time.Minute), res.Version)
	if !res.Modified || res.Version != 2 {
		t.Fatalf("post-update conditional fetch = %+v", res)
	}
}

func TestOriginUnknownChannel(t *testing.T) {
	o := NewOrigin()
	if _, err := o.Fetch("nope", t0); err == nil {
		t.Fatal("fetch of unknown channel succeeded")
	}
}

func TestOriginGeneratorContent(t *testing.T) {
	o := NewOrigin()
	gen := feed.NewGenerator("http://example.com/f", 1)
	o.Host(ChannelConfig{
		URL:       "http://example.com/f",
		Process:   PeriodicProcess{Origin: t0, Interval: 30 * time.Minute},
		Generator: gen,
	})
	r1, err := o.Fetch("http://example.com/f", t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Body == nil || !strings.Contains(string(r1.Body), "<rss") {
		t.Fatalf("generator mode returned no RSS body")
	}
	// After two update intervals the body must contain new items.
	r2, _ := o.Fetch("http://example.com/f", t0.Add(65*time.Minute))
	if r2.Version != 3 {
		t.Fatalf("version = %d, want 3", r2.Version)
	}
	f1, _ := feed.ParseRSS(r1.Body)
	f2, _ := feed.ParseRSS(r2.Body)
	if len(feed.NewItems(f1, f2)) == 0 {
		t.Fatal("no new items after two update intervals")
	}
}

func TestOriginResetLoad(t *testing.T) {
	o := NewOrigin()
	o.Host(ChannelConfig{URL: "u", Process: StaticProcess{Origin: t0}})
	o.Fetch("u", t0.Add(time.Second))
	o.ResetLoad()
	if load := o.TotalLoad(); load.Polls != 0 || load.BytesServed != 0 {
		t.Fatalf("load after reset = %+v", load)
	}
}

func TestHTTPOriginServesAndValidates(t *testing.T) {
	o := NewOrigin()
	gen := feed.NewGenerator("/feed.xml", 1)
	o.Host(ChannelConfig{
		URL:       "/feed.xml",
		Process:   PeriodicProcess{Origin: t0, Interval: 30 * time.Minute},
		Generator: gen,
	})
	now := t0.Add(time.Minute)
	h := NewHTTPOrigin(o, func() time.Time { return now })
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/feed.xml")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag")
	}
	// Conditional re-fetch: 304.
	req, err := http.NewRequest("GET", srv.URL+"/feed.xml", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp2, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 304 {
		t.Fatalf("conditional status = %d, want 304", resp2.StatusCode)
	}
	// Unknown channel: 404.
	resp3, _ := srv.Client().Get(srv.URL + "/nope.xml")
	resp3.Body.Close()
	if resp3.StatusCode != 404 {
		t.Fatalf("unknown channel status = %d", resp3.StatusCode)
	}
}

func TestHTTPOriginRateLimit(t *testing.T) {
	o := NewOrigin()
	o.Host(ChannelConfig{URL: "/f", Process: StaticProcess{Origin: t0}, Generator: feed.NewGenerator("/f", 2)})
	now := t0.Add(time.Minute)
	h := NewHTTPOrigin(o, func() time.Time { return now })
	h.SetRateLimit(3)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var last int
	for i := 0; i < 5; i++ {
		resp, err := srv.Client().Get(srv.URL + "/f")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		last = resp.StatusCode
	}
	if last != 429 {
		t.Fatalf("5th request status = %d, want 429", last)
	}
	served, rejected := h.Requests()
	if rejected < 1 || served > 4 {
		t.Fatalf("served=%d rejected=%d", served, rejected)
	}
}

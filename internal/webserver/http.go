package webserver

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// HTTPOrigin exposes an Origin's generator-backed channels over real HTTP,
// for the live deployment path (cmd/corona-feedserver). It supports the
// validators legacy clients use — ETag (the content version) and
// Last-Modified — plus the per-IP rate limiting the paper describes content
// providers imposing as a stop-gap (§1).
type HTTPOrigin struct {
	origin *Origin
	now    func() time.Time

	mu        sync.Mutex
	rateLimit int // max requests per client per minute; 0 = unlimited
	window    time.Time
	counts    map[string]int

	requests uint64
	rejected uint64
}

// NewHTTPOrigin wraps an Origin. The now function supplies time (wall
// clock in production, injectable in tests).
func NewHTTPOrigin(origin *Origin, now func() time.Time) *HTTPOrigin {
	if now == nil {
		now = time.Now
	}
	return &HTTPOrigin{origin: origin, now: now, counts: make(map[string]int)}
}

// SetRateLimit bounds requests per client IP per minute; 0 disables.
func (h *HTTPOrigin) SetRateLimit(perMinute int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rateLimit = perMinute
}

// Requests returns (served, rejected) counters.
func (h *HTTPOrigin) Requests() (uint64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.requests, h.rejected
}

// ServeHTTP implements http.Handler. The channel URL is the request path.
func (h *HTTPOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	now := h.now()
	if !h.admit(r.RemoteAddr, now) {
		http.Error(w, "429 too many requests (per-IP rate limit)", http.StatusTooManyRequests)
		return
	}
	url := r.URL.Path
	var have uint64
	if etag := r.Header.Get("If-None-Match"); etag != "" {
		if v, err := strconv.ParseUint(etag, 10, 64); err == nil {
			have = v
		}
	}
	res, err := h.origin.FetchConditional(url, now, have)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("ETag", fmt.Sprintf("%d", res.Version))
	w.Header().Set("Content-Type", "application/rss+xml; charset=utf-8")
	if !res.Modified {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if res.Body == nil {
		// Version-only channels have no materialized body over HTTP.
		http.Error(w, "channel has no content generator", http.StatusUnprocessableEntity)
		return
	}
	w.Write(res.Body)
}

// admit applies the sliding per-minute rate limit, keyed by client IP
// (ignoring the ephemeral port) — exactly the blunt per-IP limiting the
// paper criticizes for breaking users behind shared addresses (§1).
func (h *HTTPOrigin) admit(remote string, now time.Time) bool {
	if host, _, err := net.SplitHostPort(remote); err == nil {
		remote = host
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.requests++
	if h.rateLimit <= 0 {
		return true
	}
	if now.Sub(h.window) >= time.Minute {
		h.window = now
		h.counts = make(map[string]int)
	}
	h.counts[remote]++
	if h.counts[remote] > h.rateLimit {
		h.rejected++
		h.requests--
		return false
	}
	return true
}

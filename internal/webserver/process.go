// Package webserver simulates the legacy content servers Corona polls, and
// provides a real net/http origin for live deployments.
//
// The simulated origin is version-oriented: each channel has an update
// process mapping virtual time to a content version, so a poll is O(1)
// regardless of how many updates elapsed — the property that lets the
// paper-scale simulation (20,000 channels, millions of polls) run on a
// laptop. The update times themselves remain exact, so update-detection
// latency is measured precisely. A content-backed mode swaps in real RSS
// documents from feed.Generator for the deployment path, where actual
// diffs flow.
package webserver

import (
	"math/rand"
	"sort"
	"time"
)

// UpdateProcess defines when a channel's content changes. Versions start
// at 1 (the initial content) and increase by one per update.
type UpdateProcess interface {
	// VersionAt returns the content version visible at time t.
	VersionAt(t time.Time) uint64
	// UpdateTime returns the instant at which the given version was
	// published. UpdateTime(1) is the channel's creation.
	UpdateTime(version uint64) time.Time
	// MeanInterval returns the expected time between updates, the uᵢ in
	// the paper's tradeoff formulas.
	MeanInterval() time.Duration
}

// PeriodicProcess publishes a new version every Interval, starting at
// Origin (version 1 at Origin, version 2 at Origin+Interval, ...).
// A random per-channel Origin phase prevents synchronized updates.
type PeriodicProcess struct {
	Origin   time.Time
	Interval time.Duration
}

// VersionAt implements UpdateProcess.
func (p PeriodicProcess) VersionAt(t time.Time) uint64 {
	if t.Before(p.Origin) {
		return 0
	}
	if p.Interval <= 0 {
		return 1
	}
	return uint64(t.Sub(p.Origin)/p.Interval) + 1
}

// UpdateTime implements UpdateProcess.
func (p PeriodicProcess) UpdateTime(version uint64) time.Time {
	if version == 0 {
		return time.Time{}
	}
	return p.Origin.Add(time.Duration(version-1) * p.Interval)
}

// MeanInterval implements UpdateProcess.
func (p PeriodicProcess) MeanInterval() time.Duration { return p.Interval }

// PoissonProcess publishes updates with exponentially distributed gaps of
// the given mean, the classic model for independent news arrivals. Event
// times are generated lazily from a deterministic seed and memoized, so
// the process is reproducible and cheap.
type PoissonProcess struct {
	origin time.Time
	mean   time.Duration
	rng    *rand.Rand
	times  []time.Time // times[k] = publication of version k+1
}

// NewPoissonProcess creates a process whose first version appears at
// origin and whose gaps average mean.
func NewPoissonProcess(origin time.Time, mean time.Duration, seed int64) *PoissonProcess {
	return &PoissonProcess{
		origin: origin,
		mean:   mean,
		rng:    rand.New(rand.NewSource(seed)),
		times:  []time.Time{origin},
	}
}

// extendTo materializes event times through t.
func (p *PoissonProcess) extendTo(t time.Time) {
	last := p.times[len(p.times)-1]
	for !last.After(t) {
		gap := time.Duration(p.rng.ExpFloat64() * float64(p.mean))
		if gap < time.Second {
			gap = time.Second // guard against pathological zero gaps
		}
		last = last.Add(gap)
		p.times = append(p.times, last)
	}
}

// VersionAt implements UpdateProcess.
func (p *PoissonProcess) VersionAt(t time.Time) uint64 {
	if t.Before(p.origin) {
		return 0
	}
	p.extendTo(t)
	// Count events ≤ t.
	n := sort.Search(len(p.times), func(i int) bool { return p.times[i].After(t) })
	return uint64(n)
}

// UpdateTime implements UpdateProcess.
func (p *PoissonProcess) UpdateTime(version uint64) time.Time {
	if version == 0 {
		return time.Time{}
	}
	for uint64(len(p.times)) < version {
		p.extendTo(p.times[len(p.times)-1].Add(p.mean * 4))
	}
	return p.times[version-1]
}

// MeanInterval implements UpdateProcess.
func (p *PoissonProcess) MeanInterval() time.Duration { return p.mean }

// StaticProcess never updates after the initial content: the "50% of
// channels did not change at all during 5 days of polling" tail of the
// survey. The paper's simulations cap these at a one-week interval; use
// PeriodicProcess for that. StaticProcess exists for truly frozen pages.
type StaticProcess struct {
	Origin time.Time
}

// VersionAt implements UpdateProcess.
func (s StaticProcess) VersionAt(t time.Time) uint64 {
	if t.Before(s.Origin) {
		return 0
	}
	return 1
}

// UpdateTime implements UpdateProcess.
func (s StaticProcess) UpdateTime(version uint64) time.Time {
	if version != 1 {
		return time.Time{}
	}
	return s.Origin
}

// MeanInterval implements UpdateProcess. It reports a week, matching the
// survey's convention for unchanged channels.
func (s StaticProcess) MeanInterval() time.Duration { return 7 * 24 * time.Hour }

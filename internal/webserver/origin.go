package webserver

import (
	"fmt"
	"sync"
	"time"

	"corona/internal/feed"
)

// FetchResult is the outcome of one poll against an origin.
type FetchResult struct {
	// Version is the content version served.
	Version uint64
	// Modified reports whether the content changed relative to the
	// client's validator (false means a 304-style response).
	Modified bool
	// Bytes is the number of payload bytes transferred, the unit of the
	// paper's network-load accounting.
	Bytes int
	// Body is the document itself; nil in version-only mode.
	Body []byte
}

// probeCost is the transfer cost of a not-modified response (request +
// response headers), charged when a conditional poll finds no change.
const probeCost = 300

// ChannelConfig describes one hosted channel.
type ChannelConfig struct {
	// URL identifies the channel.
	URL string
	// SizeBytes is the full content transfer size (the sᵢ tradeoff
	// factor). The workload generator draws it from the survey's size
	// distribution.
	SizeBytes int
	// Process drives the channel's updates.
	Process UpdateProcess
	// Generator, when non-nil, backs the channel with real RSS content:
	// each version renders an actual document (deployment mode).
	Generator *feed.Generator
}

// channelState is the origin-side record for a channel.
type channelState struct {
	cfg ChannelConfig

	// renderedVersion tracks content materialization in generator mode.
	renderedVersion uint64
	renderedBody    []byte

	polls       uint64
	bytesServed uint64
	notModified uint64
}

// Origin simulates the set of legacy web servers that host channels. One
// Origin instance can host all channels of an experiment; accounting is
// per channel, which is what the figures report.
//
// Methods are safe for concurrent use (live mode); simulations call them
// single-threaded.
type Origin struct {
	mu       sync.Mutex
	channels map[string]*channelState
}

// NewOrigin creates an empty origin.
func NewOrigin() *Origin {
	return &Origin{channels: make(map[string]*channelState)}
}

// Host registers a channel. Registering an existing URL replaces it.
func (o *Origin) Host(cfg ChannelConfig) {
	if cfg.SizeBytes <= 0 {
		cfg.SizeBytes = 5 * 1024
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.channels[cfg.URL] = &channelState{cfg: cfg}
}

// Channels returns the hosted URLs.
func (o *Origin) Channels() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.channels))
	for url := range o.channels {
		out = append(out, url)
	}
	return out
}

// Fetch polls a channel unconditionally: the full content is transferred,
// as legacy RSS readers of the era did on every poll.
func (o *Origin) Fetch(url string, now time.Time) (FetchResult, error) {
	return o.fetch(url, now, 0)
}

// FetchConditional polls with a version validator (the moral equivalent of
// If-Modified-Since/ETag): unchanged content costs only the probe bytes.
func (o *Origin) FetchConditional(url string, now time.Time, haveVersion uint64) (FetchResult, error) {
	return o.fetch(url, now, haveVersion)
}

func (o *Origin) fetch(url string, now time.Time, haveVersion uint64) (FetchResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ch, ok := o.channels[url]
	if !ok {
		return FetchResult{}, fmt.Errorf("webserver: no such channel %q", url)
	}
	version := ch.cfg.Process.VersionAt(now)
	ch.polls++
	if haveVersion != 0 && version == haveVersion {
		ch.notModified++
		ch.bytesServed += probeCost
		return FetchResult{Version: version, Modified: false, Bytes: probeCost}, nil
	}
	res := FetchResult{Version: version, Modified: true, Bytes: ch.cfg.SizeBytes}
	if g := ch.cfg.Generator; g != nil {
		// Materialize real content through the requested version.
		for ch.renderedVersion < version {
			ch.renderedVersion++
			g.Update(ch.cfg.Process.UpdateTime(ch.renderedVersion))
		}
		body, err := g.Snapshot(now)
		if err != nil {
			return FetchResult{}, fmt.Errorf("webserver: rendering %q: %w", url, err)
		}
		ch.renderedBody = body
		res.Body = body
		res.Bytes = len(body)
	}
	ch.bytesServed += uint64(res.Bytes)
	return res, nil
}

// ChannelLoad reports a channel's cumulative accounting.
type ChannelLoad struct {
	URL         string
	Polls       uint64
	BytesServed uint64
	NotModified uint64
}

// Load returns the accounting for one channel.
func (o *Origin) Load(url string) (ChannelLoad, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ch, ok := o.channels[url]
	if !ok {
		return ChannelLoad{}, false
	}
	return ChannelLoad{URL: url, Polls: ch.polls, BytesServed: ch.bytesServed, NotModified: ch.notModified}, true
}

// TotalLoad sums accounting across all channels.
func (o *Origin) TotalLoad() ChannelLoad {
	o.mu.Lock()
	defer o.mu.Unlock()
	var total ChannelLoad
	for _, ch := range o.channels {
		total.Polls += ch.polls
		total.BytesServed += ch.bytesServed
		total.NotModified += ch.notModified
	}
	return total
}

// ResetLoad zeroes the accounting counters (used between experiment
// warm-up and measurement phases).
func (o *Origin) ResetLoad() {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, ch := range o.channels {
		ch.polls, ch.bytesServed, ch.notModified = 0, 0, 0
	}
}

// Process returns a channel's update process, used by the measurement
// harness to compute exact detection latencies.
func (o *Origin) Process(url string) (UpdateProcess, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ch, ok := o.channels[url]
	if !ok {
		return nil, false
	}
	return ch.cfg.Process, true
}

// Size returns a channel's configured content size.
func (o *Origin) Size(url string) (int, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ch, ok := o.channels[url]
	if !ok {
		return 0, false
	}
	return ch.cfg.SizeBytes, true
}

// Package diffengine implements Corona's feed-specific difference engine
// (paper §3.4).
//
// The engine determines whether a freshly polled copy of a channel carries
// germane new information: it extracts the core content (filtering out
// superficial, frequently changing elements such as timestamps, hit
// counters, and advertisements), compares it with the previous version
// line by line, and emits a compact delta. Deltas resemble POSIX diff
// output: each hunk carries the line numbers where the change occurs, the
// changed content, whether it is an addition, omission, or replacement,
// and the version number of the old content to apply against.
package diffengine

import (
	"fmt"
	"strings"
)

// OpKind classifies a diff hunk.
type OpKind byte

const (
	// OpAdd inserts NewLines after line Old of the old document.
	OpAdd OpKind = 'a'
	// OpDelete removes OldCount lines starting at line Old (1-based).
	OpDelete OpKind = 'd'
	// OpReplace substitutes OldCount lines starting at line Old with
	// NewLines.
	OpReplace OpKind = 'c'
)

// Op is one contiguous change hunk.
type Op struct {
	// Kind is the hunk type: addition, omission, or replacement.
	Kind OpKind `json:"kind"`
	// Old is the 1-based line number in the old document where the hunk
	// applies. For OpAdd it is the line after which text is inserted
	// (0 inserts at the beginning).
	Old int `json:"old"`
	// OldCount is the number of old lines removed (OpDelete, OpReplace).
	OldCount int `json:"old_count,omitempty"`
	// NewLines is the inserted text (OpAdd, OpReplace).
	NewLines []string `json:"new_lines,omitempty"`
}

// Diff is a complete delta between two versions of a channel's content.
type Diff struct {
	// OldVersion identifies the version this delta applies against
	// (paper §3.4: monotonically increasing version numbers).
	OldVersion uint64 `json:"old_version"`
	// NewVersion identifies the version that results from applying the
	// delta.
	NewVersion uint64 `json:"new_version"`
	// Ops are the hunks in ascending line order.
	Ops []Op `json:"ops"`
}

// Empty reports whether the diff carries no changes.
func (d *Diff) Empty() bool { return len(d.Ops) == 0 }

// LineCount returns the total number of changed lines (added plus
// removed), the measure the Cornell survey reports (≈17 lines per update).
func (d *Diff) LineCount() int {
	n := 0
	for _, op := range d.Ops {
		n += op.OldCount + len(op.NewLines)
	}
	return n
}

// WireSize estimates the bytes needed to transmit the diff, used by the
// bandwidth accounting in the evaluation (delta encoding saves ≈93% of
// content size per the survey's 6.8% average change).
func (d *Diff) WireSize() int {
	size := 16 // version pair
	for _, op := range d.Ops {
		size += 12 // op header
		for _, l := range op.NewLines {
			size += len(l) + 1
		}
	}
	return size
}

// Compute produces the delta from old to new using Myers' O(ND) algorithm
// on lines. Version numbers are the caller's concern.
func Compute(old, new []string, oldVersion, newVersion uint64) *Diff {
	d := &Diff{OldVersion: oldVersion, NewVersion: newVersion}
	d.Ops = myersOps(old, new)
	return d
}

// ComputeStrings is Compute on newline-joined documents.
func ComputeStrings(old, new string, oldVersion, newVersion uint64) *Diff {
	return Compute(SplitLines(old), SplitLines(new), oldVersion, newVersion)
}

// SplitLines splits a document into lines without the trailing newline
// artifacts that would make diffs unstable.
func SplitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// Apply reconstructs the new document from the old one. It returns an
// error if the diff does not fit the document (wrong base version).
func (d *Diff) Apply(old []string) ([]string, error) {
	out := make([]string, 0, len(old)+d.LineCount())
	cursor := 0 // index into old of the next unconsumed line
	for i, op := range d.Ops {
		// Copy unchanged prefix. Op line numbers are 1-based.
		var upTo int
		switch op.Kind {
		case OpAdd:
			upTo = op.Old
		case OpDelete, OpReplace:
			upTo = op.Old - 1
		default:
			return nil, fmt.Errorf("diffengine: op %d has unknown kind %q", i, op.Kind)
		}
		if upTo < cursor || upTo > len(old) {
			return nil, fmt.Errorf("diffengine: op %d at line %d out of range (cursor %d, len %d)", i, op.Old, cursor, len(old))
		}
		out = append(out, old[cursor:upTo]...)
		cursor = upTo
		switch op.Kind {
		case OpAdd:
			out = append(out, op.NewLines...)
		case OpDelete:
			if cursor+op.OldCount > len(old) {
				return nil, fmt.Errorf("diffengine: op %d deletes past end", i)
			}
			cursor += op.OldCount
		case OpReplace:
			if cursor+op.OldCount > len(old) {
				return nil, fmt.Errorf("diffengine: op %d replaces past end", i)
			}
			cursor += op.OldCount
			out = append(out, op.NewLines...)
		}
	}
	out = append(out, old[cursor:]...)
	return out, nil
}

// myersOps computes the ops via Myers' greedy O(ND) shortest-edit-script
// algorithm, then coalesces adjacent delete+insert runs into replace ops.
func myersOps(a, b []string) []Op {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return nil
	}
	// Trim common prefix and suffix; the edit region shrinks and line
	// numbers offset accordingly.
	prefix := 0
	for prefix < n && prefix < m && a[prefix] == b[prefix] {
		prefix++
	}
	suffix := 0
	for suffix < n-prefix && suffix < m-prefix && a[n-1-suffix] == b[m-1-suffix] {
		suffix++
	}
	a = a[prefix : n-suffix]
	b = b[prefix : m-suffix]
	n, m = len(a), len(b)

	var script []edits
	switch {
	case n == 0 && m == 0:
		// identical after trimming
	case n == 0:
		for j := 0; j < m; j++ {
			script = append(script, edits{del: false, ai: 0, bi: j})
		}
	case m == 0:
		for i := 0; i < n; i++ {
			script = append(script, edits{del: true, ai: i})
		}
	default:
		script = myersScript(a, b)
	}
	if len(script) == 0 {
		return nil
	}

	// Group consecutive edits into hunks. Edits belong to the same hunk
	// while they touch a contiguous region of the old document: deletes
	// consume old lines (advancing pos), inserts attach at pos.
	var ops []Op
	i := 0
	for i < len(script) {
		hunkStart := script[i].ai
		pos := hunkStart
		firstDel := -1
		delCount := 0
		var inserted []string
		for i < len(script) && script[i].ai == pos {
			e := script[i]
			if e.del {
				if firstDel == -1 {
					firstDel = e.ai
				}
				delCount++
				pos++
			} else {
				inserted = append(inserted, b[e.bi])
			}
			i++
		}
		// Emit the hunk with 1-based line numbers in the untrimmed old doc.
		switch {
		case delCount > 0 && len(inserted) > 0:
			ops = append(ops, Op{Kind: OpReplace, Old: prefix + firstDel + 1, OldCount: delCount, NewLines: inserted})
		case delCount > 0:
			ops = append(ops, Op{Kind: OpDelete, Old: prefix + firstDel + 1, OldCount: delCount})
		case len(inserted) > 0:
			ops = append(ops, Op{Kind: OpAdd, Old: prefix + hunkStart, NewLines: inserted})
		}
	}
	return ops
}

// myersScript runs the classic greedy forward O(ND) algorithm and
// backtracks the edit script.
func myersScript(a, b []string) []edits {
	n, m := len(a), len(b)
	max := n + m
	// v[k+max] = furthest x on diagonal k.
	v := make([]int, 2*max+1)
	// trace saves v per step for backtracking.
	var trace [][]int
	var dFound = -1
outer:
	for d := 0; d <= max; d++ {
		cp := make([]int, len(v))
		copy(cp, v)
		trace = append(trace, cp)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[k-1+max] < v[k+1+max]) {
				x = v[k+1+max] // down: insert
			} else {
				x = v[k-1+max] + 1 // right: delete
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[k+max] = x
			if x >= n && y >= m {
				dFound = d
				break outer
			}
		}
	}
	// Backtrack.
	var script []edits
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vPrev := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vPrev[k-1+len(v)/2] < vPrev[k+1+len(v)/2]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vPrev[prevK+len(v)/2]
		prevY := prevX - prevK
		// Walk back through the snake.
		for x > prevX && y > prevY {
			x--
			y--
		}
		if x == prevX {
			// Down move: insert b[prevY].
			script = append(script, edits{del: false, ai: x, bi: prevY})
		} else {
			// Right move: delete a[prevX].
			script = append(script, edits{del: true, ai: prevX})
		}
		x, y = prevX, prevY
	}
	// Reverse to forward order.
	for i, j := 0, len(script)-1; i < j; i, j = i+1, j-1 {
		script[i], script[j] = script[j], script[i]
	}
	return script
}

// edits mirrors the edit type used by myersOps; declared at package scope
// so both functions share it.
type edits struct {
	del bool
	ai  int
	bi  int
}

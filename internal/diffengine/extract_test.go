package diffengine

import (
	"regexp"
	"strings"
	"testing"
)

func TestExtractStripsComments(t *testing.T) {
	e := NewExtractor()
	doc := "<html>\n<!-- cache key 8231 -->\n<p>news</p>\n</html>"
	got := e.Extract(doc)
	for _, l := range got {
		if strings.Contains(l, "cache key") {
			t.Fatalf("comment survived extraction: %q", got)
		}
	}
}

func TestExtractStripsScriptAndStyle(t *testing.T) {
	e := NewExtractor()
	doc := "<p>before</p>\n<script>var t = Date.now();</script>\n<style>.x{color:red}</style>\n<p>after</p>"
	got := strings.Join(e.Extract(doc), "\n")
	if strings.Contains(got, "Date.now") || strings.Contains(got, "color:red") {
		t.Fatalf("script/style survived: %q", got)
	}
	if !strings.Contains(got, "before") || !strings.Contains(got, "after") {
		t.Fatalf("real content lost: %q", got)
	}
}

func TestExtractStripsAdElements(t *testing.T) {
	e := NewExtractor()
	doc := `<div class="story">headline</div>` + "\n" +
		`<div class="ad banner">BUY NOW $9.99 offer 1234</div>` + "\n" +
		`<div id="sponsor-box">sponsored</div>`
	got := strings.Join(e.Extract(doc), "\n")
	if strings.Contains(got, "BUY NOW") || strings.Contains(got, "sponsored") {
		t.Fatalf("advertisement survived: %q", got)
	}
	if !strings.Contains(got, "headline") {
		t.Fatalf("story content lost: %q", got)
	}
}

func TestExtractBlanksTimestamps(t *testing.T) {
	e := NewExtractor()
	v1 := "<p>Served at Tue, 02 May 2006 15:04:05 GMT</p>\n<p>story</p>"
	v2 := "<p>Served at Tue, 02 May 2006 16:11:32 GMT</p>\n<p>story</p>"
	if e.Changed(v1, v2) {
		t.Fatal("timestamp-only difference reported as update")
	}
	v3 := "<p>Served at 2006-05-02T15:04:05Z</p>\n<p>story</p>"
	v4 := "<p>Served at 2006-05-02T16:11:32Z</p>\n<p>story</p>"
	if e.Changed(v3, v4) {
		t.Fatal("ISO timestamp-only difference reported as update")
	}
}

func TestExtractBlanksCounters(t *testing.T) {
	e := NewExtractor()
	v1 := "<p>8241 visitors so far</p>\n<p>page generated in 12 ms</p>\n<p>story</p>"
	v2 := "<p>8250 visitors so far</p>\n<p>page generated in 48 ms</p>\n<p>story</p>"
	if e.Changed(v1, v2) {
		t.Fatal("counter-only difference reported as update")
	}
}

func TestExtractDetectsRealChanges(t *testing.T) {
	e := NewExtractor()
	v1 := "<p>old headline</p>\n<p>posted Tue, 02 May 2006 15:04:05 GMT</p>"
	v2 := "<p>new headline</p>\n<p>posted Tue, 02 May 2006 16:00:00 GMT</p>"
	if !e.Changed(v1, v2) {
		t.Fatal("germane change not detected")
	}
}

func TestRSSProfileIgnoresBookkeeping(t *testing.T) {
	e := RSSProfile()
	v1 := `<rss><channel><title>t</title>
<lastBuildDate>Tue, 02 May 2006 15:00:00 GMT</lastBuildDate>
<ttl>30</ttl>
<item><title>story</title></item>
</channel></rss>`
	v2 := strings.ReplaceAll(v1, "15:00:00", "15:30:00")
	v2 = strings.ReplaceAll(v2, "<ttl>30</ttl>", "<ttl>60</ttl>")
	if e.Changed(v1, v2) {
		t.Fatal("RSS bookkeeping churn reported as update")
	}
	v3 := strings.ReplaceAll(v1, "<item><title>story</title></item>",
		"<item><title>breaking</title></item><item><title>story</title></item>")
	if !e.Changed(v1, v3) {
		t.Fatal("new item not detected")
	}
}

func TestRSSProfileDiffIsNewItemSized(t *testing.T) {
	// The survey finds updates average ~17 XML lines; the diff of adding
	// one item to a 100-item feed must be item-sized, not feed-sized.
	e := RSSProfile()
	var items []string
	for i := 0; i < 100; i++ {
		items = append(items, "<item>", "<title>story about topic</title>", "<link>http://example.com/"+string(rune('a'+i%26))+"</link>", "</item>")
	}
	old := "<rss><channel>\n" + strings.Join(items, "\n") + "\n</channel></rss>"
	new := "<rss><channel>\n<item>\n<title>breaking news</title>\n<link>http://example.com/fresh</link>\n</item>\n" + strings.Join(items, "\n") + "\n</channel></rss>"
	d := e.DiffDocuments(old, new, 1, 2)
	if d.Empty() {
		t.Fatal("new item produced empty diff")
	}
	if got := d.LineCount(); got > 10 {
		t.Fatalf("diff of one new item touches %d lines", got)
	}
}

func TestStripTagSelfClosing(t *testing.T) {
	e := NewExtractor(WithVolatileTag("cloud"))
	doc := `<channel><cloud domain="x" port="80"/><title>keep</title></channel>`
	got := strings.Join(e.Extract(doc), "\n")
	if strings.Contains(got, "cloud") {
		t.Fatalf("self-closing tag survived: %q", got)
	}
	if !strings.Contains(got, "keep") {
		t.Fatalf("content lost: %q", got)
	}
}

func TestStripTagDoesNotOvermatchPrefix(t *testing.T) {
	e := NewExtractor(WithVolatileTag("a"))
	doc := "<article>long form</article>\n<a href=\"x\">link</a>"
	got := strings.Join(e.Extract(doc), "\n")
	if !strings.Contains(got, "long form") {
		t.Fatalf("<article> wrongly stripped as <a>: %q", got)
	}
	if strings.Contains(got, "link") {
		t.Fatalf("<a> not stripped: %q", got)
	}
}

func TestExtractUnterminatedBlocks(t *testing.T) {
	e := NewExtractor()
	// Must not panic or hang on malformed input.
	for _, doc := range []string{
		"<p>x</p><!-- unterminated",
		"<script>while(true){}",
		"<p>ok</p><style>",
	} {
		_ = e.Extract(doc)
	}
}

func TestWithVolatileLinePattern(t *testing.T) {
	e := NewExtractor(WithVolatileLinePattern(regexp.MustCompile(`^noise:`)))
	got := e.Extract("noise: 123\nsignal")
	if len(got) != 1 || got[0] != "signal" {
		t.Fatalf("custom line pattern not applied: %q", got)
	}
}

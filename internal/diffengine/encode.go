package diffengine

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Encode renders the diff in a compact, line-oriented text format modeled
// on POSIX diff output, prefixed with the version pair. It is the wire
// representation disseminated between Corona nodes and relayed to IM
// clients (paper §3.4).
//
// Format:
//
//	CORONA-DIFF v<old> <new>
//	<old>a                      (addition after line <old>)
//	> inserted line
//	<old>,<count>d              (omission of <count> lines at <old>)
//	<old>,<count>c              (replacement)
//	> replacement line
//	.
//
// Each hunk's inserted lines are terminated by a lone "." line; lines that
// begin with "." are dot-stuffed, as in SMTP.
func Encode(d *Diff) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CORONA-DIFF v%d %d\n", d.OldVersion, d.NewVersion)
	for _, op := range d.Ops {
		switch op.Kind {
		case OpAdd:
			fmt.Fprintf(&sb, "%da\n", op.Old)
			writeLines(&sb, op.NewLines)
		case OpDelete:
			fmt.Fprintf(&sb, "%d,%dd\n", op.Old, op.OldCount)
		case OpReplace:
			fmt.Fprintf(&sb, "%d,%dc\n", op.Old, op.OldCount)
			writeLines(&sb, op.NewLines)
		}
	}
	return sb.String()
}

func writeLines(sb *strings.Builder, lines []string) {
	for _, l := range lines {
		if strings.HasPrefix(l, ".") {
			sb.WriteString(".")
		}
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	sb.WriteString(".\n")
}

// Decode parses the textual representation produced by Encode.
func Decode(s string) (*Diff, error) {
	sc := bufio.NewScanner(strings.NewReader(s))
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("diffengine: empty diff")
	}
	header := sc.Text()
	var oldV, newV uint64
	if _, err := fmt.Sscanf(header, "CORONA-DIFF v%d %d", &oldV, &newV); err != nil {
		return nil, fmt.Errorf("diffengine: bad header %q: %w", header, err)
	}
	d := &Diff{OldVersion: oldV, NewVersion: newV}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		op, needsBody, err := parseOpHeader(line)
		if err != nil {
			return nil, err
		}
		if needsBody {
			body, err := readBody(sc)
			if err != nil {
				return nil, err
			}
			op.NewLines = body
		}
		d.Ops = append(d.Ops, op)
	}
	return d, sc.Err()
}

func parseOpHeader(line string) (Op, bool, error) {
	kind := line[len(line)-1]
	spec := line[:len(line)-1]
	switch OpKind(kind) {
	case OpAdd:
		n, err := strconv.Atoi(spec)
		if err != nil {
			return Op{}, false, fmt.Errorf("diffengine: bad add hunk %q", line)
		}
		return Op{Kind: OpAdd, Old: n}, true, nil
	case OpDelete, OpReplace:
		parts := strings.SplitN(spec, ",", 2)
		if len(parts) != 2 {
			return Op{}, false, fmt.Errorf("diffengine: bad hunk %q", line)
		}
		old, err1 := strconv.Atoi(parts[0])
		count, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || count < 1 {
			return Op{}, false, fmt.Errorf("diffengine: bad hunk %q", line)
		}
		return Op{Kind: OpKind(kind), Old: old, OldCount: count}, OpKind(kind) == OpReplace, nil
	}
	return Op{}, false, fmt.Errorf("diffengine: unknown hunk kind in %q", line)
}

func readBody(sc *bufio.Scanner) ([]string, error) {
	var lines []string
	for sc.Scan() {
		l := sc.Text()
		if l == "." {
			return lines, nil
		}
		if strings.HasPrefix(l, ".") {
			l = l[1:]
		}
		lines = append(lines, l)
	}
	return nil, fmt.Errorf("diffengine: unterminated hunk body")
}

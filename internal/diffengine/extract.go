package diffengine

import (
	"regexp"
	"strings"
)

// Extractor isolates the core content of a polled document before
// comparison, so that superficial differences — timestamps, hit counters,
// advertisements, generator banners — do not register as updates
// (paper §3.4).
//
// The zero value is not usable; construct with NewExtractor.
type Extractor struct {
	volatileTags  []string
	volatileAttrs []*regexp.Regexp
	volatileLine  []*regexp.Regexp
	inlinePatches []*regexp.Regexp
}

// Option customizes an Extractor.
type Option func(*Extractor)

// WithVolatileTag adds an element name whose entire content is dropped
// (beyond the built-in script/style/comment handling). Feed-specific
// profiles add, for example, RSS's lastBuildDate.
func WithVolatileTag(tag string) Option {
	return func(e *Extractor) { e.volatileTags = append(e.volatileTags, strings.ToLower(tag)) }
}

// WithVolatileLinePattern drops whole lines matching the pattern.
func WithVolatileLinePattern(re *regexp.Regexp) Option {
	return func(e *Extractor) { e.volatileLine = append(e.volatileLine, re) }
}

// NewExtractor builds an extractor with the built-in heuristics:
//
//   - HTML/XML comments, <script> and <style> blocks are removed;
//   - elements whose class or id mentions advertising are removed;
//   - elements that only carry clock readings or hit counters are removed;
//   - inline timestamps (RFC1123-ish dates, HH:MM:SS clocks) and
//     "generated in N ms"-style counters are blanked in place, so a line
//     differing only in those is not an update.
func NewExtractor(opts ...Option) *Extractor {
	e := &Extractor{
		volatileTags: []string{"script", "style"},
		volatileAttrs: []*regexp.Regexp{
			regexp.MustCompile(`(?i)(class|id)\s*=\s*"[^"]*\b(ad|ads|advert|banner|sponsor|promo)\b`),
		},
		volatileLine: []*regexp.Regexp{
			regexp.MustCompile(`(?i)^\s*<!--.*-->\s*$`),
		},
		inlinePatches: []*regexp.Regexp{
			// RFC 1123 / RFC 822 style dates: Mon, 02 Jan 2006 15:04:05 GMT
			regexp.MustCompile(`(?i)\b(mon|tue|wed|thu|fri|sat|sun)[a-z]*,?\s+\d{1,2}\s+(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\s+\d{2,4}(\s+\d{1,2}:\d{2}(:\d{2})?)?(\s+[a-z]{2,4}|\s+[+-]\d{4})?`),
			// ISO 8601 timestamps.
			regexp.MustCompile(`\d{4}-\d{2}-\d{2}[T ]\d{2}:\d{2}(:\d{2})?(\.\d+)?(Z|[+-]\d{2}:?\d{2})?`),
			// Bare clocks.
			regexp.MustCompile(`\b\d{1,2}:\d{2}:\d{2}\b`),
			// Hit counters and render-time banners.
			regexp.MustCompile(`(?i)\b(page )?(generated|rendered|served) in \d+(\.\d+)?\s*(ms|s|seconds|milliseconds)\b`),
			regexp.MustCompile(`(?i)\b\d+\s+(visitors?|hits|views)( so far| today)?\b`),
		},
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// RSSProfile returns an extractor tuned for RSS/Atom micronews documents:
// in addition to the built-in heuristics it drops the per-poll bookkeeping
// elements the standards define (lastBuildDate, ttl, skipHours, skipDays,
// cloud) which change or reorder without the feed carrying news.
func RSSProfile() *Extractor {
	return NewExtractor(
		WithVolatileTag("lastBuildDate"),
		WithVolatileTag("ttl"),
		WithVolatileTag("skipHours"),
		WithVolatileTag("skipDays"),
		WithVolatileTag("cloud"),
		WithVolatileTag("generator"),
	)
}

// Extract returns the core-content lines of a document. The output is the
// canonical form handed to Compute; two documents with equal extractions
// carry no germane update.
func (e *Extractor) Extract(doc string) []string {
	doc = stripBlocks(doc, "<!--", "-->")
	for _, tag := range e.volatileTags {
		doc = stripTag(doc, tag)
	}
	lines := SplitLines(doc)
	out := make([]string, 0, len(lines))
	for _, line := range lines {
		skip := false
		for _, re := range e.volatileLine {
			if re.MatchString(line) {
				skip = true
				break
			}
		}
		if !skip {
			for _, re := range e.volatileAttrs {
				if re.MatchString(line) {
					skip = true
					break
				}
			}
		}
		if skip {
			continue
		}
		for _, re := range e.inlinePatches {
			line = re.ReplaceAllString(line, "")
		}
		line = strings.TrimRight(line, " \t")
		if line == "" {
			continue
		}
		out = append(out, line)
	}
	return out
}

// Changed reports whether two documents differ in core content.
func (e *Extractor) Changed(old, new string) bool {
	a, b := e.Extract(old), e.Extract(new)
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

// DiffDocuments extracts both documents and computes the delta between
// their core contents.
func (e *Extractor) DiffDocuments(old, new string, oldVersion, newVersion uint64) *Diff {
	return Compute(e.Extract(old), e.Extract(new), oldVersion, newVersion)
}

// stripBlocks removes every region delimited by open/close markers,
// tolerating unterminated blocks (dropped to end of input).
func stripBlocks(doc, open, close string) string {
	if !strings.Contains(doc, open) {
		return doc
	}
	var sb strings.Builder
	for {
		i := strings.Index(doc, open)
		if i < 0 {
			sb.WriteString(doc)
			return sb.String()
		}
		sb.WriteString(doc[:i])
		rest := doc[i+len(open):]
		j := strings.Index(rest, close)
		if j < 0 {
			return sb.String()
		}
		doc = rest[j+len(close):]
	}
}

// stripTag removes <tag ...>...</tag> regions (case-insensitive), as well
// as self-closing <tag ... /> forms.
func stripTag(doc, tag string) string {
	lower := strings.ToLower(doc)
	openTag := "<" + tag
	closeTag := "</" + tag + ">"
	var sb strings.Builder
	for {
		i := indexTagStart(lower, openTag)
		if i < 0 {
			sb.WriteString(doc)
			return sb.String()
		}
		sb.WriteString(doc[:i])
		// Find the end of the opening tag.
		gt := strings.Index(lower[i:], ">")
		if gt < 0 {
			return sb.String()
		}
		if gt >= 1 && lower[i+gt-1] == '/' {
			// Self-closing.
			doc = doc[i+gt+1:]
			lower = lower[i+gt+1:]
			continue
		}
		j := strings.Index(lower[i:], closeTag)
		if j < 0 {
			return sb.String()
		}
		doc = doc[i+j+len(closeTag):]
		lower = lower[i+j+len(closeTag):]
	}
}

// indexTagStart finds an occurrence of openTag that is a real tag start
// (followed by whitespace, '>', or '/'), so "<a" does not match "<article".
func indexTagStart(lower, openTag string) int {
	from := 0
	for {
		i := strings.Index(lower[from:], openTag)
		if i < 0 {
			return -1
		}
		i += from
		end := i + len(openTag)
		if end >= len(lower) {
			return -1
		}
		switch lower[end] {
		case ' ', '\t', '\n', '\r', '>', '/':
			return i
		}
		from = i + 1
	}
}

package diffengine

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestComputeIdentical(t *testing.T) {
	doc := []string{"a", "b", "c"}
	d := Compute(doc, doc, 1, 2)
	if !d.Empty() {
		t.Fatalf("diff of identical docs not empty: %+v", d.Ops)
	}
}

func TestComputeAddition(t *testing.T) {
	old := []string{"item one", "item two"}
	new := []string{"item zero", "item one", "item two"}
	d := Compute(old, new, 1, 2)
	if len(d.Ops) != 1 || d.Ops[0].Kind != OpAdd {
		t.Fatalf("ops = %+v, want single add", d.Ops)
	}
	if d.Ops[0].Old != 0 {
		t.Fatalf("add after line %d, want 0 (prepend)", d.Ops[0].Old)
	}
	checkApply(t, old, new, d)
}

func TestComputeDeletion(t *testing.T) {
	old := []string{"a", "b", "c", "d"}
	new := []string{"a", "d"}
	d := Compute(old, new, 1, 2)
	if len(d.Ops) != 1 || d.Ops[0].Kind != OpDelete {
		t.Fatalf("ops = %+v, want single delete", d.Ops)
	}
	if d.Ops[0].Old != 2 || d.Ops[0].OldCount != 2 {
		t.Fatalf("delete at %d count %d, want line 2 count 2", d.Ops[0].Old, d.Ops[0].OldCount)
	}
	checkApply(t, old, new, d)
}

func TestComputeReplacement(t *testing.T) {
	old := []string{"head", "old body", "tail"}
	new := []string{"head", "new body", "tail"}
	d := Compute(old, new, 1, 2)
	if len(d.Ops) != 1 || d.Ops[0].Kind != OpReplace {
		t.Fatalf("ops = %+v, want single replace", d.Ops)
	}
	checkApply(t, old, new, d)
}

func TestComputeEdgeDocs(t *testing.T) {
	cases := []struct{ old, new []string }{
		{nil, nil},
		{nil, []string{"x"}},
		{[]string{"x"}, nil},
		{[]string{"x"}, []string{"y"}},
		{[]string{"a", "b"}, []string{"b", "a"}},
		{strings.Split("a b c d e f", " "), strings.Split("f e d c b a", " ")},
	}
	for i, c := range cases {
		d := Compute(c.old, c.new, 0, 1)
		checkApply(t, c.old, c.new, d)
		_ = i
	}
}

func TestLineCountMatchesEditDistance(t *testing.T) {
	old := []string{"a", "b", "c"}
	new := []string{"a", "x", "c", "y"}
	d := Compute(old, new, 1, 2)
	// One replace (b->x: 2 lines) + one add (y: 1 line) = 3 changed lines.
	if got := d.LineCount(); got != 3 {
		t.Fatalf("LineCount = %d, want 3", got)
	}
}

func TestApplyRejectsWrongBase(t *testing.T) {
	old := []string{"a", "b", "c"}
	d := Compute(old, []string{"a"}, 1, 2)
	if _, err := d.Apply([]string{"a"}); err == nil {
		t.Fatal("applying against a too-short base should error")
	}
}

func TestApplyRejectsUnknownKind(t *testing.T) {
	d := &Diff{Ops: []Op{{Kind: 'z', Old: 1}}}
	if _, err := d.Apply([]string{"a"}); err == nil {
		t.Fatal("unknown op kind should error")
	}
}

// checkApply asserts diff(old→new) applied to old reproduces new.
func checkApply(t *testing.T, old, new []string, d *Diff) {
	t.Helper()
	got, err := d.Apply(old)
	if err != nil {
		t.Fatalf("Apply: %v (ops %+v)", err, d.Ops)
	}
	if len(got) == 0 && len(new) == 0 {
		return
	}
	if !reflect.DeepEqual(got, new) {
		t.Fatalf("Apply mismatch:\n got %q\nwant %q\nops %+v", got, new, d.Ops)
	}
}

// randomDoc generates a document whose lines come from a small alphabet so
// diffs contain real matches.
func randomDoc(rng *rand.Rand, n int) []string {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	doc := make([]string, n)
	for i := range doc {
		doc[i] = words[rng.Intn(len(words))]
	}
	return doc
}

// mutate applies k random line edits to a copy of doc.
func mutate(rng *rand.Rand, doc []string, k int) []string {
	out := append([]string(nil), doc...)
	for i := 0; i < k; i++ {
		switch op := rng.Intn(3); {
		case op == 0 && len(out) > 0: // delete
			p := rng.Intn(len(out))
			out = append(out[:p], out[p+1:]...)
		case op == 1: // insert
			p := rng.Intn(len(out) + 1)
			out = append(out[:p], append([]string{"inserted-" + string(rune('a'+rng.Intn(26)))}, out[p:]...)...)
		default: // replace
			if len(out) > 0 {
				out[rng.Intn(len(out))] = "changed-" + string(rune('a'+rng.Intn(26)))
			}
		}
	}
	return out
}

func TestPropertyDiffApplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		old := randomDoc(rng, rng.Intn(40))
		new := mutate(rng, old, rng.Intn(10))
		d := Compute(old, new, 7, 8)
		got, err := d.Apply(old)
		if err != nil {
			t.Fatalf("trial %d: Apply: %v", trial, err)
		}
		if !equalDocs(got, new) {
			t.Fatalf("trial %d: round trip failed\nold %q\nnew %q\ngot %q\nops %+v", trial, old, new, got, d.Ops)
		}
	}
}

func TestPropertyDiffMinimalOnNoChange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, rng.Intn(30))
		return Compute(doc, doc, 1, 2).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		old := randomDoc(rng, rng.Intn(30))
		new := mutate(rng, old, 1+rng.Intn(8))
		d := Compute(old, new, uint64(trial), uint64(trial+1))
		enc := Encode(d)
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("trial %d: Decode: %v\n%s", trial, err, enc)
		}
		if back.OldVersion != d.OldVersion || back.NewVersion != d.NewVersion {
			t.Fatalf("trial %d: version mismatch", trial)
		}
		got, err := back.Apply(old)
		if err != nil {
			t.Fatalf("trial %d: Apply decoded: %v", trial, err)
		}
		if !equalDocs(got, new) {
			t.Fatalf("trial %d: decoded diff does not reproduce new doc", trial)
		}
	}
}

func TestEncodeDotStuffing(t *testing.T) {
	old := []string{"a"}
	new := []string{"a", ".hidden", "..double"}
	d := Compute(old, new, 1, 2)
	back, err := Decode(Encode(d))
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDocs(got, new) {
		t.Fatalf("dot-stuffed round trip failed: %q", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"BOGUS HEADER\n",
		"CORONA-DIFF v1 2\nxyz\n",
		"CORONA-DIFF v1 2\n3a\nline without terminator\n",
		"CORONA-DIFF v1 2\n1,0d\n",
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", c)
		}
	}
}

func TestWireSizeSmallerThanContent(t *testing.T) {
	// A small edit to a large document must encode much smaller than the
	// document itself — the point of delta encoding (paper §3.4).
	rng := rand.New(rand.NewSource(5))
	old := randomDoc(rng, 400)
	new := mutate(rng, old, 3)
	d := Compute(old, new, 1, 2)
	contentSize := 0
	for _, l := range new {
		contentSize += len(l) + 1
	}
	if d.WireSize() > contentSize/5 {
		t.Fatalf("WireSize %d not ≪ content %d", d.WireSize(), contentSize)
	}
}

func equalDocs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

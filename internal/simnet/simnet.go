// Package simnet is the in-memory message transport used by simulations.
//
// Messages between endpoints are delivered through the discrete-event
// engine after a latency drawn from a configurable model, so the same
// protocol code that runs over TCP in deployments runs under virtual time
// in experiments. The network supports failure injection — crashed hosts,
// message loss, partitions — used by the integration tests.
package simnet

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"corona/internal/codec"
	"corona/internal/eventsim"
	"corona/internal/pastry"
)

// LatencyModel draws a one-way delivery latency for a message between two
// endpoints.
type LatencyModel interface {
	Latency(from, to string, rng *rand.Rand) time.Duration
}

// FixedLatency delivers every message after a constant delay.
type FixedLatency time.Duration

// Latency implements LatencyModel.
func (f FixedLatency) Latency(_, _ string, _ *rand.Rand) time.Duration {
	return time.Duration(f)
}

// UniformLatency draws latencies uniformly from [Min, Max).
type UniformLatency struct {
	Min, Max time.Duration
}

// Latency implements LatencyModel.
func (u UniformLatency) Latency(_, _ string, rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// WANLatency models wide-area latencies with a lognormal distribution,
// approximating the PlanetLab deployment substrate (DESIGN.md §3). The
// default parameters give a median around 60 ms with a tail to ~300 ms.
type WANLatency struct {
	// Mu and Sigma parameterize the lognormal in ln-milliseconds.
	Mu, Sigma float64
	// Floor is the minimum latency.
	Floor time.Duration
}

// DefaultWAN returns the wide-area model used by the deployment
// experiments (Figures 9 and 10).
func DefaultWAN() WANLatency {
	return WANLatency{Mu: 4.1, Sigma: 0.55, Floor: 5 * time.Millisecond}
}

// Latency implements LatencyModel.
func (w WANLatency) Latency(_, _ string, rng *rand.Rand) time.Duration {
	ms := math.Exp(w.Mu + w.Sigma*rng.NormFloat64())
	d := time.Duration(ms * float64(time.Millisecond))
	if d < w.Floor {
		d = w.Floor
	}
	return d
}

// LinkFault overrides delivery behavior on one directed link, layered on
// top of the network-wide LatencyModel and drop rate. It models slow-link
// stragglers: ExtraLatency is added to every modeled delay on the link and
// DropRate loses that fraction of the link's messages (in addition to any
// global loss).
type LinkFault struct {
	ExtraLatency time.Duration
	DropRate     float64
}

type linkKey struct{ from, to string }

// Network is an in-memory message fabric bound to a simulator.
type Network struct {
	sim     *eventsim.Sim
	latency LatencyModel
	rng     *rand.Rand

	mu        sync.Mutex
	endpoints map[string]*Endpoint
	down      map[string]bool
	dropRate  float64
	partition map[string]int // endpoint -> partition group; 0 = default
	links     map[linkKey]LinkFault
	// measure enables codec-measured byte accounting (on by default);
	// huge batch simulations can switch it off to skip the encode cost.
	measure bool

	delivered uint64
	dropped   uint64
	bytes     uint64
}

// New creates a network on the given simulator with the given latency
// model.
func New(sim *eventsim.Sim, latency LatencyModel) *Network {
	return &Network{
		sim:       sim,
		latency:   latency,
		rng:       sim.RNG("simnet"),
		endpoints: make(map[string]*Endpoint),
		down:      make(map[string]bool),
		partition: make(map[string]int),
		links:     make(map[linkKey]LinkFault),
		measure:   true,
	}
}

// SetByteAccounting toggles codec-measured byte accounting. It is on by
// default; the largest batch simulations can disable it to avoid encoding
// every message just for its size.
func (n *Network) SetByteAccounting(enabled bool) {
	n.mu.Lock()
	n.measure = enabled
	n.mu.Unlock()
}

// Endpoint is one attachment point on the network. It implements
// pastry.Transport for the node that owns it, and pastry.ByteCounter so
// per-node wire volume shows up in overlay stats with the same
// codec-measured sizes a live deployment would put on the wire.
type Endpoint struct {
	net     *Network
	name    string
	deliver func(pastry.Message)

	bytesSent atomic.Uint64
	bytesRecv atomic.Uint64
}

// WireBytes implements pastry.ByteCounter with codec-measured sizes.
func (ep *Endpoint) WireBytes() (sent, received uint64) {
	return ep.bytesSent.Load(), ep.bytesRecv.Load()
}

// Attach registers an endpoint under the given name (the Addr.Endpoint
// string) delivering inbound messages to the given function.
func (n *Network) Attach(name string, deliver func(pastry.Message)) *Endpoint {
	ep := &Endpoint{net: n, name: name, deliver: deliver}
	n.mu.Lock()
	n.endpoints[name] = ep
	n.mu.Unlock()
	return ep
}

// Send implements pastry.Transport. The message is delivered through the
// event queue after a modeled latency, or an error is returned if the
// destination is crashed or partitioned away.
func (ep *Endpoint) Send(to pastry.Addr, msg pastry.Message) error {
	n := ep.net
	n.mu.Lock()
	dst, ok := n.endpoints[to.Endpoint]
	crashed := n.down[to.Endpoint] || n.down[ep.name]
	partitioned := n.partition[ep.name] != n.partition[to.Endpoint]
	drop := n.dropRate > 0 && n.rng.Float64() < n.dropRate
	fault, faulty := n.links[linkKey{ep.name, to.Endpoint}]
	if faulty && fault.DropRate > 0 && n.rng.Float64() < fault.DropRate {
		drop = true
	}
	measure := n.measure
	if ok && !crashed && !partitioned && !drop {
		n.delivered++
	} else {
		n.dropped++
	}
	n.mu.Unlock()

	if !ok || crashed || partitioned {
		return pastry.ErrUnreachable
	}
	// A message that left the sender costs wire bytes whether or not the
	// network then loses it.
	var size uint64
	if measure {
		size = uint64(codec.Measure(msg))
		ep.bytesSent.Add(size)
		n.mu.Lock()
		n.bytes += size
		n.mu.Unlock()
	}
	if drop {
		return nil // silently lost, like UDP loss; sender sees success
	}
	delay := n.latency.Latency(ep.name, to.Endpoint, n.rng)
	if faulty {
		delay += fault.ExtraLatency
	}
	n.sim.AfterFunc(delay, func() {
		n.mu.Lock()
		stillUp := !n.down[to.Endpoint]
		n.mu.Unlock()
		if stillUp {
			dst.bytesRecv.Add(size)
			dst.deliver(msg)
		}
	})
	return nil
}

// Crash marks a host as failed: sends to and from it error out and queued
// deliveries are suppressed.
func (n *Network) Crash(name string) {
	n.mu.Lock()
	n.down[name] = true
	n.mu.Unlock()
}

// Restart clears the crashed state of a host.
func (n *Network) Restart(name string) {
	n.mu.Lock()
	delete(n.down, name)
	n.mu.Unlock()
}

// SetDropRate makes the network silently lose the given fraction of
// messages (0 disables loss).
func (n *Network) SetDropRate(rate float64) {
	n.mu.Lock()
	n.dropRate = rate
	n.mu.Unlock()
}

// Partition assigns a host to a partition group; hosts in different groups
// cannot exchange messages. Group 0 is the default connected component.
func (n *Network) Partition(name string, group int) {
	n.mu.Lock()
	if group == 0 {
		delete(n.partition, name)
	} else {
		n.partition[name] = group
	}
	n.mu.Unlock()
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	n.partition = make(map[string]int)
	n.mu.Unlock()
}

// SetLinkFault installs a per-link override on the directed link from →
// to: fault.ExtraLatency is added to the modeled latency of every message
// on the link, and fault.DropRate loses that fraction of the link's
// messages on top of the global drop rate. A zero-value fault clears the
// override.
func (n *Network) SetLinkFault(from, to string, fault LinkFault) {
	n.mu.Lock()
	if fault == (LinkFault{}) {
		delete(n.links, linkKey{from, to})
	} else {
		n.links[linkKey{from, to}] = fault
	}
	n.mu.Unlock()
}

// SetLinkFaultBoth installs the same per-link override in both directions
// between two endpoints, modeling a symmetric slow or lossy path.
func (n *Network) SetLinkFaultBoth(a, b string, fault LinkFault) {
	n.SetLinkFault(a, b, fault)
	n.SetLinkFault(b, a, fault)
}

// ClearLinkFaults removes every per-link override.
func (n *Network) ClearLinkFaults() {
	n.mu.Lock()
	n.links = make(map[linkKey]LinkFault)
	n.mu.Unlock()
}

// Delivered returns the number of messages successfully enqueued for
// delivery.
func (n *Network) Delivered() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered
}

// Dropped returns the number of messages lost to crashes, partitions, or
// random loss.
func (n *Network) Dropped() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropped
}

// Bytes returns the codec-measured volume of all traffic that left a
// sender — what the same message flow would have cost on a real wire
// under the default codec (zero when byte accounting is disabled).
func (n *Network) Bytes() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bytes
}

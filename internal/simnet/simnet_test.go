package simnet

import (
	"math"
	"testing"
	"time"

	"corona/internal/eventsim"
	"corona/internal/ids"
	"corona/internal/pastry"
)

func twoEndpoints(t *testing.T, model LatencyModel) (*eventsim.Sim, *Network, *Endpoint, *[]pastry.Message) {
	t.Helper()
	sim := eventsim.New(9)
	net := New(sim, model)
	var got []pastry.Message
	net.Attach("sim://dst", func(m pastry.Message) { got = append(got, m) })
	src := net.Attach("sim://src", nil)
	return sim, net, src, &got
}

var dst = pastry.Addr{ID: ids.HashString("dst"), Endpoint: "sim://dst"}

func TestDeliveryAfterLatency(t *testing.T) {
	sim, _, src, got := twoEndpoints(t, FixedLatency(50*time.Millisecond))
	if err := src.Send(dst, pastry.Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(49 * time.Millisecond)
	if len(*got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	sim.RunFor(2 * time.Millisecond)
	if len(*got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(*got))
	}
}

func TestSendToUnknownEndpointFails(t *testing.T) {
	_, _, src, _ := twoEndpoints(t, FixedLatency(0))
	err := src.Send(pastry.Addr{Endpoint: "sim://nowhere"}, pastry.Message{Type: "x"})
	if err == nil {
		t.Fatal("send to unknown endpoint succeeded")
	}
}

func TestCrashAndRestart(t *testing.T) {
	sim, net, src, got := twoEndpoints(t, FixedLatency(time.Millisecond))
	net.Crash("sim://dst")
	if err := src.Send(dst, pastry.Message{Type: "x"}); err == nil {
		t.Fatal("send to crashed host succeeded")
	}
	net.Restart("sim://dst")
	if err := src.Send(dst, pastry.Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatalf("delivered %d after restart, want 1", len(*got))
	}
}

func TestCrashSuppressesInFlight(t *testing.T) {
	sim, net, src, got := twoEndpoints(t, FixedLatency(100*time.Millisecond))
	src.Send(dst, pastry.Message{Type: "x"})
	net.Crash("sim://dst") // message still in flight
	sim.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatal("in-flight message delivered to crashed host")
	}
}

func TestPartition(t *testing.T) {
	sim, net, src, got := twoEndpoints(t, FixedLatency(time.Millisecond))
	net.Partition("sim://dst", 2)
	if err := src.Send(dst, pastry.Message{Type: "x"}); err == nil {
		t.Fatal("send across partition succeeded")
	}
	net.Heal()
	if err := src.Send(dst, pastry.Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatalf("delivered %d after heal, want 1", len(*got))
	}
}

func TestDropRateSilentLoss(t *testing.T) {
	sim, net, src, got := twoEndpoints(t, FixedLatency(0))
	net.SetDropRate(1.0)
	// Loss is silent: the send succeeds, nothing arrives.
	if err := src.Send(dst, pastry.Message{Type: "x"}); err != nil {
		t.Fatalf("lossy send errored: %v", err)
	}
	sim.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatal("message delivered despite 100% drop rate")
	}
	if net.Dropped() == 0 {
		t.Fatal("drop not counted")
	}
	net.SetDropRate(0)
	src.Send(dst, pastry.Message{Type: "x"})
	sim.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatal("delivery failed after loss disabled")
	}
}

func TestCountersAccumulate(t *testing.T) {
	sim, net, src, _ := twoEndpoints(t, FixedLatency(0))
	for i := 0; i < 10; i++ {
		src.Send(dst, pastry.Message{Type: "x"})
	}
	sim.RunFor(time.Second)
	if net.Delivered() != 10 {
		t.Fatalf("Delivered = %d, want 10", net.Delivered())
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	sim := eventsim.New(3)
	rng := sim.RNG("lat")
	u := UniformLatency{Min: 10 * time.Millisecond, Max: 50 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := u.Latency("a", "b", rng)
		if d < u.Min || d >= u.Max {
			t.Fatalf("latency %v outside [%v,%v)", d, u.Min, u.Max)
		}
	}
	// Degenerate range returns Min.
	bad := UniformLatency{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	if d := bad.Latency("a", "b", rng); d != 5*time.Millisecond {
		t.Fatalf("degenerate uniform = %v", d)
	}
}

func TestWANLatencyDistribution(t *testing.T) {
	sim := eventsim.New(4)
	rng := sim.RNG("wan")
	w := DefaultWAN()
	var total time.Duration
	var over300 int
	const n = 5000
	for i := 0; i < n; i++ {
		d := w.Latency("a", "b", rng)
		if d < w.Floor {
			t.Fatalf("latency %v below floor", d)
		}
		if d > 300*time.Millisecond {
			over300++
		}
		total += d
	}
	mean := total / n
	if mean < 30*time.Millisecond || mean > 150*time.Millisecond {
		t.Fatalf("WAN mean latency %v outside wide-area range", mean)
	}
	frac := float64(over300) / n
	if frac > 0.10 {
		t.Fatalf("%.1f%% of latencies exceed 300ms; tail too heavy", frac*100)
	}
	if math.IsNaN(float64(mean)) {
		t.Fatal("NaN latency")
	}
}

func TestLinkFaultExtraLatency(t *testing.T) {
	sim, net, src, got := twoEndpoints(t, FixedLatency(50*time.Millisecond))
	net.SetLinkFault("sim://src", "sim://dst", LinkFault{ExtraLatency: 200 * time.Millisecond})
	if err := src.Send(dst, pastry.Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(249 * time.Millisecond)
	if len(*got) != 0 {
		t.Fatal("delivered before link ExtraLatency elapsed")
	}
	sim.RunFor(2 * time.Millisecond)
	if len(*got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(*got))
	}

	// Clearing the fault restores the base latency.
	net.SetLinkFault("sim://src", "sim://dst", LinkFault{})
	if err := src.Send(dst, pastry.Message{Type: "y"}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(51 * time.Millisecond)
	if len(*got) != 2 {
		t.Fatalf("delivered %d messages after clear, want 2", len(*got))
	}
}

func TestLinkFaultDropRate(t *testing.T) {
	sim, net, src, got := twoEndpoints(t, FixedLatency(time.Millisecond))
	net.SetLinkFault("sim://src", "sim://dst", LinkFault{DropRate: 1.0})
	for i := 0; i < 20; i++ {
		if err := src.Send(dst, pastry.Message{Type: "x"}); err != nil {
			t.Fatal(err) // like UDP loss: sender still sees success
		}
	}
	sim.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatalf("lossy link delivered %d messages, want 0", len(*got))
	}
	if net.Dropped() != 20 {
		t.Fatalf("Dropped() = %d, want 20", net.Dropped())
	}

	// The fault is directional: other links are clean.
	clean := net.Attach("sim://clean", nil)
	var cleanGot []pastry.Message
	net.Attach("sim://cleandst", func(m pastry.Message) { cleanGot = append(cleanGot, m) })
	for i := 0; i < 5; i++ {
		if err := clean.Send(pastry.Addr{ID: ids.HashString("cleandst"), Endpoint: "sim://cleandst"}, pastry.Message{Type: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunFor(time.Second)
	if len(cleanGot) != 5 {
		t.Fatalf("clean link delivered %d messages, want 5", len(cleanGot))
	}
}

func TestLinkFaultBothAndClearAll(t *testing.T) {
	sim, net, src, got := twoEndpoints(t, FixedLatency(time.Millisecond))
	back := net.Attach("sim://back", nil)
	var backGot []pastry.Message
	net.Attach("sim://src", func(m pastry.Message) { backGot = append(backGot, m) })
	net.SetLinkFaultBoth("sim://src", "sim://dst", LinkFault{DropRate: 1.0})

	if err := src.Send(dst, pastry.Message{Type: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := back.Send(pastry.Addr{ID: ids.HashString("src"), Endpoint: "sim://src"}, pastry.Message{Type: "b"}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(time.Second)
	if len(*got) != 0 {
		t.Fatalf("faulted forward link delivered %d, want 0", len(*got))
	}

	net.ClearLinkFaults()
	if err := src.Send(dst, pastry.Message{Type: "c"}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(time.Second)
	if len(*got) != 1 {
		t.Fatalf("cleared link delivered %d, want 1", len(*got))
	}
}

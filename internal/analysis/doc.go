// Package analysis is Corona's house static-analysis suite: four
// analyzers that encode invariants this repository has already paid to
// learn at runtime, run over every package by cmd/corona-lint (wired
// into `make lint`, `make check`, and CI). The framework is
// self-contained on go/ast + go/types — the Analyzer/Pass shape mirrors
// golang.org/x/tools/go/analysis, so the checks read idiomatically and
// could migrate upstream if the dependency ever lands.
//
// # The analyzers and the bugs behind them
//
// maporder (deterministic iteration). The simulation stack must be a
// pure function of the seed: eventsim orders events, simnet orders
// deliveries, and the chaos harness replays fault timelines by seed
// alone. PR 7's invariant sweep caught identically-seeded runs
// desynchronizing because pastry.KnownNodes and core's ownerAntiEntropy
// iterated Go maps — whose order is deliberately randomized — straight
// into seeded-draw indexing and wire traffic. maporder flags a `range`
// over a map in the deterministic packages (core, pastry, chaos,
// eventsim, honeycomb) when the loop body sends messages, appends to a
// slice that outlives the loop, or draws from a seeded *rand.Rand. The
// PR-7 fix shape — collect, then sort.*/slices.* — is recognized and
// not flagged.
//
// lockblock (no blocking under lock). PR 2 found pastry's fanOut
// allocating and sending while holding the node's RLock: one slow peer
// stalled every reader of the routing state, and PR 6's fan-out
// scale-out had to restructure the same path again
// (collect-under-lock, send-after-unlock, with failed sends feeding
// handlePeerFault outside the critical section). lockblock flags
// channel sends, Send/SendBatch-shaped transport calls, blocking
// net.Conn/TLS I/O, and WAL/fsync calls (store Append/Sync/Compact/
// Close, (*os.File).Sync — PR 3's group-commit window means Append can
// park for milliseconds) made while a sync.Mutex/RWMutex acquired in
// the same function is held.
//
// wiresym (wire symmetry). The codec's binary payload contract
// (PR 2) lets a registered type ship a native AppendBinary/DecodeBinary
// pair; anything else silently rides the JSON fallback. That asymmetry
// bit twice: replicateMsg stayed JSON until PR 3 made replication hot,
// and the PR 5/6/8 message additions each had to remember the
// truncation-at-every-byte/fuzz suite by convention. wiresym checks
// every type handed to a codec registration (codec.RegisterPayload or
// the register-callback shape core/pastry use) for both halves of the
// contract and for a referencing truncation/fuzz test in the package,
// so a half-implemented or untested wire form fails the build instead
// of surfacing as a cross-version decode error.
//
// wallclock (virtual clock discipline). chaos, eventsim, and simnet
// run on a virtual clock, and PR 8's per-stage latency histograms only
// make sense in simulation because delivery timestamps ride the
// eventsim clock (r.Log.Now = sim.Now). A stray time.Now in those
// packages — or in any package that injects internal/clock — silently
// mixes wall time into seeded runs. wallclock flags time.Now/Since/
// Until/After/Tick/Sleep/NewTimer/NewTicker/AfterFunc there; the
// composition root (package corona), which wires clock.Real, is
// exempt.
//
// # Deliberate exceptions
//
// A finding that is wrong-in-general but right-here is annotated in
// source on the flagged line or the line directly above:
//
//	//lint:allow <analyzer> <reason>
//
// The directive is checked, not free-form: the analyzer name must
// belong to the suite, the reason is mandatory, and an allow that no
// longer suppresses anything is itself a finding — stale exceptions
// cannot rot in place after the code they excused is rewritten.
//
// # Fixture layout
//
// Each analyzer has an analysistest-style fixture suite under
// testdata/src/<importpath>, where the import path is the directory
// path — so fixtures claim real Corona paths (testdata/src/corona/
// internal/pastry contains the exact pre-PR-7 KnownNodes shape) to
// exercise the package gating. Expected findings are `// want "regex"`
// comments on the flagged line; the same shapes appear un-flagged in
// non-gated packages and in fixed form. TestRepoIsLintClean runs the
// whole suite over the repository itself, pinning it lint-clean.
package analysis

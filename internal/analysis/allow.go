package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Deliberate exceptions are annotated in source as
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or on its own line immediately above. The directive
// is checked, not free-form: the analyzer name must belong to the suite,
// the reason is mandatory, and an allow that suppresses nothing is itself
// a finding — so stale exceptions cannot rot in place after the code they
// excused is rewritten.

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos       token.Pos // position of the comment
	line      int       // line the comment sits on
	file      string    // filename
	analyzer  string
	reason    string
	malformed string // non-empty: why the directive is invalid
	used      bool   // suppressed at least one diagnostic
}

const allowPrefix = "//lint:allow"

// parseAllows extracts every //lint:allow directive from the files,
// validating shape and analyzer name against known.
func parseAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &allowDirective{pos: c.Pos(), line: pos.Line, file: pos.Filename}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// Something like //lint:allowed — not ours.
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.malformed = "missing analyzer name and reason"
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.malformed = "missing reason (write //lint:allow " + fields[0] + " <why this is safe>)"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				if d.malformed == "" && !known[d.analyzer] {
					d.malformed = "unknown analyzer " + d.analyzer
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// matches reports whether the directive suppresses a diagnostic from
// analyzer at the given position: same analyzer, same file, and the
// directive sits on the diagnostic's line or the line directly above.
func (d *allowDirective) matches(analyzer string, pos token.Position) bool {
	if d.malformed != "" || d.analyzer != analyzer || d.file != pos.Filename {
		return false
	}
	return d.line == pos.Line || d.line == pos.Line-1
}

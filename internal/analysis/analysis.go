package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check. The shape mirrors
// golang.org/x/tools/go/analysis so the analyzers read idiomatically and
// could migrate to the upstream framework if the dependency ever lands;
// the driver here is self-contained on the standard library.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //lint:allow directives. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description shown by corona-lint -list.
	Doc string
	// Run reports this analyzer's findings for one package.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Fset positions every file below.
	Fset *token.FileSet
	// Files are the package's compiled files, type-checked.
	Files []*ast.File
	// TestFiles are the package's *_test.go files, parsed but not
	// type-checked (syntax-only facts).
	TestFiles []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds expression types, identifier uses/defs, and selections.
	Info *types.Info
	// Report records one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full Corona analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, LockBlock, WireSym, WallClock}
}

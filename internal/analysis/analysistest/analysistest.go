// Package analysistest runs one analyzer against fixture packages under
// a testdata tree and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest on the
// self-contained loader.
//
// A fixture line expecting a diagnostic carries a comment of the form
//
//	code() // want "regexp"
//	code() // want "first" "second"
//
// Every reported diagnostic must match a want on its line, and every
// want must be matched by a diagnostic; mismatches fail the test with
// the full delta.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"corona/internal/analysis"
	"corona/internal/analysis/load"
)

// lineKey addresses one fixture source line.
type lineKey struct {
	file string
	line int
}

// Run loads the fixture packages at <testdata>/src/<path> and applies
// the analyzer, comparing findings with // want comments. The driver's
// //lint:allow machinery is active, so fixtures can exercise
// suppressions too.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := load.Fixtures(testdata, paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := map[lineKey][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		for _, f := range files {
			collectWants(t, pkg.Fset, f, wants)
		}
	}

	matched := map[*regexp.Regexp]bool{}
	for _, f := range findings {
		k := lineKey{f.Pos.Filename, f.Pos.Line}
		ok := false
		for _, re := range wants[k] {
			if !matched[re] && re.MatchString(f.Message) {
				matched[re] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("missing finding at %s:%d: want match for %q", k.file, k.line, re)
			}
		}
	}
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// collectWants parses // want comments into per-line expectations.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[lineKey][]*regexp.Regexp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, q := range splitQuoted(m[1]) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				k := lineKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], re)
			}
		}
	}
}

// splitQuoted splits `"a" "b c"` into quoted chunks.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			break
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			break
		}
		out = append(out, s[:end+1])
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder (deterministic-iteration) flags `range` over a map in the
// packages that must behave identically under one seed, when the loop
// body lets the iteration order escape: it sends overlay/network traffic,
// appends to a slice declared outside the loop, or draws from a seeded
// *math/rand.Rand. Order-dependent effects from map ranges are exactly
// the class of bug the PR-7 chaos harness caught at runtime in
// ownerAntiEntropy and pastry.KnownNodes: identically-seeded runs
// desynchronized because Go randomizes map iteration.
//
// The sanctioned fix is also recognized: an append whose slice is later
// passed to sort.* or slices.Sort* in the same function (the
// collect-keys-then-sort idiom) is deterministic and not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration in deterministic packages (core, pastry, chaos, eventsim, honeycomb) " +
		"whose loop body sends messages, appends to an escaping slice without a subsequent sort, " +
		"or feeds a seeded RNG — map order would desynchronize identically-seeded runs",
	Run: runMapOrder,
}

// deterministicPkgs are the packages whose whole-run behavior must be a
// pure function of the seed.
var deterministicPkgs = map[string]bool{
	"corona/internal/core":      true,
	"corona/internal/pastry":    true,
	"corona/internal/chaos":     true,
	"corona/internal/eventsim":  true,
	"corona/internal/honeycomb": true,
}

// sendLikeNames are method names that transmit messages; calling one per
// map-ordered iteration makes wire traffic order nondeterministic.
var sendLikeNames = map[string]bool{
	"Send": true, "send": true, "SendTo": true, "SendBatch": true,
	"Route": true, "route": true, "Deliver": true, "deliver": true,
	"Broadcast": true, "broadcast": true, "Publish": true, "publish": true,
	"Gossip": true, "gossip": true,
}

func runMapOrder(pass *Pass) error {
	if !deterministicPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.Info.Types[rs.X].Type; t == nil || !isMap(t) {
				return true
			}
			checkMapRangeBody(pass, file, rs)
			return true
		})
	}
	return nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody reports order-escaping effects inside one map range.
func checkMapRangeBody(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map %s: send order follows map iteration order; iterate a sorted snapshot instead", exprString(rs.X))
		case *ast.CallExpr:
			checkMapRangeCall(pass, file, rs, n)
		}
		return true
	})
}

func checkMapRangeCall(pass *Pass, file *ast.File, rs *ast.RangeStmt, call *ast.CallExpr) {
	// Seeded RNG: any method call on a *math/rand.Rand (or rand/v2).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if recv := pass.Info.Types[sel.X].Type; recv != nil && isSeededRand(recv) {
			pass.Reportf(call.Pos(), "seeded RNG draw inside range over map %s: the draw sequence follows map iteration order; iterate a sorted snapshot instead", exprString(rs.X))
			return
		}
		if sendLikeNames[sel.Sel.Name] {
			if _, isMethod := pass.Info.Selections[sel]; isMethod || isPkgFunc(pass, sel) {
				pass.Reportf(call.Pos(), "%s call inside range over map %s: message order follows map iteration order; collect targets, sort, then send", sel.Sel.Name, exprString(rs.X))
				return
			}
		}
	} else if id, ok := call.Fun.(*ast.Ident); ok && sendLikeNames[id.Name] {
		if obj, ok := pass.Info.Uses[id].(*types.Func); ok && obj.Pkg() == pass.Pkg {
			pass.Reportf(call.Pos(), "%s call inside range over map %s: message order follows map iteration order; collect targets, sort, then send", id.Name, exprString(rs.X))
			return
		}
	}

	// append to a slice declared outside the loop, not sorted afterwards.
	if isBuiltinAppend(pass, call) && len(call.Args) > 0 {
		target := rootIdent(call.Args[0])
		if target == nil {
			return
		}
		obj := pass.Info.Uses[target]
		if obj == nil {
			obj = pass.Info.Defs[target]
		}
		if obj == nil {
			return
		}
		// Declared inside the loop body: the slice dies with the
		// iteration, order cannot escape.
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
			return
		}
		// The base variable of a composite target (h in h.subs) declared
		// inside the loop body: each iteration appends to its own value,
		// so THIS map's order cannot shape the element order — only inner
		// ranges can, and those are checked in their own right.
		if base := baseIdent(call.Args[0]); base != nil && base != target {
			bobj := pass.Info.Uses[base]
			if bobj == nil {
				bobj = pass.Info.Defs[base]
			}
			if bobj != nil && bobj.Pos() >= rs.Body.Pos() && bobj.Pos() <= rs.Body.End() {
				return
			}
		}
		if sortedAfter(pass, file, rs, obj) {
			return
		}
		pass.Reportf(call.Pos(), "append to %s inside range over map %s: element order follows map iteration order; sort %s afterwards or iterate a sorted snapshot", target.Name, exprString(rs.X), target.Name)
	}
}

// isBuiltinAppend reports whether call is the built-in append.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isSeededRand reports whether t is *math/rand.Rand or *math/rand/v2.Rand.
func isSeededRand(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		if named, ok := t.(*types.Named); ok {
			return isRandNamed(named)
		}
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && isRandNamed(named)
}

func isRandNamed(named *types.Named) bool {
	obj := named.Obj()
	if obj.Name() != "Rand" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "math/rand" || p == "math/rand/v2"
}

// isPkgFunc reports whether sel is a package-level function selection
// (pkg.Func) rather than a field access.
func isPkgFunc(pass *Pass, sel *ast.SelectorExpr) bool {
	_, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok
}

// sortedAfter reports whether obj (the appended-to slice) is passed to a
// sort.*/slices.Sort* call positioned after the range statement in the
// same file — the collect-then-sort idiom.
func sortedAfter(pass *Pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && pass.Info.Uses[id] == obj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// rootIdent returns the base identifier of expressions like x, x[i],
// x.f, *x — the object whose storage the expression reaches.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.Sel
		default:
			return nil
		}
	}
}

// baseIdent returns the leftmost identifier of expressions like x.f[i]
// — the variable the whole chain hangs off — unlike rootIdent, which
// resolves x.f to the field f.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// exprString renders a short source form of e for messages.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + exprString(v.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	default:
		return "expr"
	}
}

// Fixture: blocking work under a mutex held in the same function — the
// pre-PR-6 fanOut-under-RLock shape and its relatives.
package lockblock

import (
	"net"
	"os"
	"sync"
	"time"

	"corona/internal/store"
)

type transport struct{}

func (transport) Send(to string, b []byte) error { return nil }

type row struct{ addr string }

type node struct {
	mu   sync.RWMutex
	rows []row
	t    transport
	ch   chan row
	conn net.Conn
	wal  *store.Store
	f    *os.File
}

// fanOutUnderLock is the exact pre-PR-6 shape: transport sends while the
// read lock is held, so one slow peer stalls every reader.
func (n *node) fanOutUnderLock(b []byte) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, r := range n.rows {
		n.t.Send(r.addr, b) // want "Send while n.mu is held"
	}
}

// fanOutAfterUnlock is the PR-6 fix: collect under the lock, send after.
func (n *node) fanOutAfterUnlock(b []byte) {
	n.mu.RLock()
	targets := make([]row, len(n.rows))
	copy(targets, n.rows)
	n.mu.RUnlock()
	for _, r := range targets {
		n.t.Send(r.addr, b)
	}
}

// sendOnChannel blocks on a possibly-full channel with the lock held.
func (n *node) sendOnChannel(r row) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ch <- r // want "channel send while n.mu is held"
}

// nonBlockingSend uses select-with-default: never blocks, not flagged.
func (n *node) nonBlockingSend(r row) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- r:
	default:
	}
}

// blockingSelect has no default case: it can park the lock holder.
func (n *node) blockingSelect(r row) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // want "blocking select while n.mu is held"
	case n.ch <- r:
	}
}

// connWriteUnderLock performs network I/O with the lock held.
func (n *node) connWriteUnderLock(b []byte) {
	n.mu.Lock()
	n.conn.Write(b) // want "n.conn.Write while n.mu is held"
	n.mu.Unlock()
}

// connBookkeepingUnderLock: deadline setters and Close do not wait on
// the network — fencing a conn under a lock is fine, not flagged.
func (n *node) connBookkeepingUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.conn.SetWriteDeadline(time.Time{})
	n.conn.Close()
	_ = n.conn.RemoteAddr()
}

// connWriteAfterUnlock releases first: not flagged.
func (n *node) connWriteAfterUnlock(b []byte) {
	n.mu.Lock()
	n.mu.Unlock()
	n.conn.Write(b)
}

// walAppendUnderLock waits on group-commit fsync with the lock held.
func (n *node) walAppendUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.wal.Append(1) // want "store Append while n.mu is held"
}

// fsyncUnderLock fsyncs with the lock held.
func (n *node) fsyncUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.f.Sync() // want "Sync while n.mu is held"
}

// statsUnderLock reads a cheap counter: not flagged.
func (n *node) statsUnderLock() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.wal.Stats()
}

// goroutineSend hands the send to another goroutine: the lock holder
// does not block, not flagged.
func (n *node) goroutineSend(b []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	go n.t.Send("x", b)
}

// literalOwnLock: a function literal acquires and misuses its own lock —
// analyzed as a separate function with fresh state.
func (n *node) literalOwnLock(r row) func() {
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.ch <- r // want "channel send while n.mu is held"
	}
}

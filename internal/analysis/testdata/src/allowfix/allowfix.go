// Fixture for the //lint:allow suppression path itself: correct allows
// suppress, wrong-analyzer allows do not, malformed allows are findings,
// and allows with nothing to suppress are findings.
package allowfix

import "sync"

type q struct {
	mu sync.Mutex
	ch chan int
}

// allowedSend: correctly formed allow on the line above — suppressed.
func (x *q) allowedSend() {
	x.mu.Lock()
	defer x.mu.Unlock()
	//lint:allow lockblock the channel is buffered to len(q) and drained by a dedicated goroutine
	x.ch <- 1
}

// sameLineAllow: the directive may ride the flagged line itself.
func (x *q) sameLineAllow() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ch <- 1 //lint:allow lockblock buffered and drained, cannot block
}

// wrongAnalyzer: the allow names maporder, so the lockblock finding
// survives and the maporder allow is unused.
func (x *q) wrongAnalyzer() {
	x.mu.Lock()
	defer x.mu.Unlock()
	//lint:allow maporder this names the wrong analyzer
	x.ch <- 2
}

// missingReason: rejected as malformed; the finding survives.
func (x *q) missingReason() {
	x.mu.Lock()
	defer x.mu.Unlock()
	//lint:allow lockblock
	x.ch <- 3
}

// unknownAnalyzer: rejected as malformed; the finding survives.
func (x *q) unknownAnalyzer() {
	x.mu.Lock()
	defer x.mu.Unlock()
	//lint:allow nosuchcheck because reasons
	x.ch <- 4
}

// unusedAllow: nothing on the next line triggers lockblock.
func (x *q) unusedAllow() {
	//lint:allow lockblock nothing here needs this
	_ = x
}

// Fixture stub of corona/internal/store: just enough surface for the
// lockblock fixture to exercise the WAL-under-lock check.
package store

type Store struct{}

// Append blocks on group-commit fsync in the real store.
func (s *Store) Append(op byte) error { return nil }

// Sync forces an fsync in the real store.
func (s *Store) Sync() error { return nil }

// Stats is a cheap read: never flagged.
func (s *Store) Stats() int { return 0 }

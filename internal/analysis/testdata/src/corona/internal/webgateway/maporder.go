// Fixture: webgateway is NOT a deterministic package — the identical
// unsorted shape that maporder flags in pastry must pass clean here.
package webgateway

type session struct{ id string }

type hub struct {
	sessions map[string]session
}

func (h *hub) all() []session {
	out := make([]session, 0, len(h.sessions))
	for _, s := range h.sessions {
		out = append(out, s)
	}
	return out
}

func (h *hub) push(ch chan session) {
	for _, s := range h.sessions {
		ch <- s
	}
}

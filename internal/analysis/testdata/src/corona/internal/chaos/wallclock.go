// Fixture: chaos always runs on the virtual clock; wall-clock reads are
// flagged, pure time construction and arithmetic are not.
package chaos

import "time"

type result struct {
	at time.Time
}

func run() result {
	start := time.Now()           // want "time.Now in a virtual-clock package"
	_ = time.Since(start)         // want "time.Since in a virtual-clock package"
	<-time.After(time.Second)     // want "time.After in a virtual-clock package"
	time.Sleep(time.Millisecond)  // want "time.Sleep in a virtual-clock package"
	t := time.NewTimer(time.Hour) // want "time.NewTimer in a virtual-clock package"
	t.Stop()
	return result{at: time.Unix(0, 0)} // pure construction: clean
}

// allowedWallTime shows the checked exception path: the directive names
// the analyzer and carries a reason, so the finding is suppressed.
func allowedWallTime() time.Time {
	//lint:allow wallclock reporting-only wall time, never feeds simulation state
	return time.Now()
}

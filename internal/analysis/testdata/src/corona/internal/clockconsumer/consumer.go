// Fixture: a package that takes an injected clock.Clock is a
// virtual-clock consumer — a direct time.Now beside it is exactly the
// bug the injection exists to prevent.
package clockconsumer

import (
	"time"

	"corona/internal/clock"
)

type sched struct{ c clock.Clock }

func (s *sched) due() time.Time {
	return time.Now() // want "time.Now in a virtual-clock package"
}

func (s *sched) dueInjected() time.Time {
	return s.c.Now() // the injected clock: clean
}

// Fixture stub of corona/internal/clock: importing it marks a package
// as a virtual-clock consumer for the wallclock analyzer.
package clock

import "time"

type Clock interface {
	Now() time.Time
}

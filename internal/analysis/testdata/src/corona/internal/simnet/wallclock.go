// Fixture: simnet is in the always-virtual set even though it does not
// import internal/clock.
package simnet

import "time"

func stamp() time.Time {
	return time.Now() // want "time.Now in a virtual-clock package"
}

// Fixture: the pre-PR-7 determinism bugs. pastry is a deterministic
// package, so map ranges whose order escapes must be flagged.
package pastry

import (
	"math/rand"
	"sort"
)

type ID string

type Addr struct{ ID ID }

type Node struct {
	peers map[ID]Addr
}

// KnownNodesUnsorted is the exact pre-PR-7 KnownNodes shape: map keys
// flow out in iteration order and feed seeded-draw indexing upstream.
func (n *Node) KnownNodesUnsorted() []Addr {
	out := make([]Addr, 0, len(n.peers))
	for _, a := range n.peers {
		out = append(out, a) // want "append to out inside range over map n.peers"
	}
	return out
}

// KnownNodesSorted is the PR-7 fix: collect, then sort. The append is
// sanctioned by the sort.Slice downstream.
func (n *Node) KnownNodesSorted() []Addr {
	out := make([]Addr, 0, len(n.peers))
	for _, a := range n.peers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

type transport struct{}

func (transport) Send(to Addr) error { return nil }

// gossipAll sends in map order: flagged.
func (n *Node) gossipAll(t transport) {
	for _, a := range n.peers {
		t.Send(a) // want "Send call inside range over map n.peers"
	}
}

func send(a Addr) {}

// flood calls a package-level send helper in map order: flagged.
func (n *Node) flood() {
	for _, a := range n.peers {
		send(a) // want "send call inside range over map n.peers"
	}
}

// publish pushes map elements onto a channel in map order: flagged.
func (n *Node) publish(ch chan Addr) {
	for _, a := range n.peers {
		ch <- a // want "channel send inside range over map n.peers"
	}
}

// jitter draws from a seeded RNG once per map element: the draw sequence
// depends on iteration order even though no element escapes.
func (n *Node) jitter(rng *rand.Rand) int {
	s := 0
	for range n.peers {
		s += rng.Intn(3) // want "seeded RNG draw inside range over map n.peers"
	}
	return s
}

type group struct {
	key  ID
	addr []Addr
}

// perIterationComposite: the outer map range appends through a struct
// declared inside its body — the outer order cannot shape any one
// group's elements. The inner range over a map is judged on its own
// (and is sanctioned here by the sort).
func (n *Node) perIterationComposite(shards map[ID]map[ID]Addr) []group {
	var groups []group
	for key, shard := range shards {
		g := group{key: key}
		for _, a := range shard {
			g.addr = append(g.addr, a)
		}
		sort.Slice(g.addr, func(i, j int) bool { return g.addr[i].ID < g.addr[j].ID })
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	return groups
}

// count is order-independent accumulation: not flagged.
func (n *Node) count() int {
	c := 0
	for range n.peers {
		c++
	}
	return c
}

// index builds a map from a map: order-independent, not flagged.
func (n *Node) index() map[ID]bool {
	m := map[ID]bool{}
	for id := range n.peers {
		m[id] = true
	}
	return m
}

// localScratch appends to a slice that lives and dies inside one
// iteration: order cannot escape, not flagged.
func (n *Node) localScratch() int {
	total := 0
	for _, a := range n.peers {
		var parts []ID
		parts = append(parts, a.ID)
		total += len(parts)
	}
	return total
}

// Fixture: the root corona package is the composition root that wires
// clock.Real into live deployments — exempt from wallclock even though
// it imports internal/clock.
package corona

import (
	"time"

	"corona/internal/clock"
)

type live struct{ c clock.Clock }

func bootWall() time.Time { return time.Now() }

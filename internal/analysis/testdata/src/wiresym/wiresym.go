// Fixture: codec-registration symmetry. register has the registry shape
// (msgType string, factory func() any), matching codec.RegisterPayload
// and the register-callback in core.RegisterPayloadTypes.
package wiresym

func register(msgType string, factory func() any) {}

// okMsg has both halves and fuzz coverage: clean.
type okMsg struct{ A int }

func (m *okMsg) AppendBinary(dst []byte) ([]byte, error) { return dst, nil }
func (m *okMsg) DecodeBinary(src []byte) error           { return nil }

// encOnlyMsg encodes but cannot decode what it sent.
type encOnlyMsg struct{}

func (m *encOnlyMsg) AppendBinary(dst []byte) ([]byte, error) { return dst, nil }

// decOnlyMsg decodes but falls back to JSON on encode.
type decOnlyMsg struct{}

func (m *decOnlyMsg) DecodeBinary(src []byte) error { return nil }

// nakedMsg has no binary form at all.
type nakedMsg struct{}

// untestedMsg has both halves but no robustness test references it.
type untestedMsg struct{}

func (m *untestedMsg) AppendBinary(dst []byte) ([]byte, error) { return dst, nil }
func (m *untestedMsg) DecodeBinary(src []byte) error           { return nil }

func registerAll() {
	register("w.ok", func() any { return &okMsg{} })
	register("w.enc", func() any { return &encOnlyMsg{} })       // want "encOnlyMsg registered with an AppendBinary encoder but no DecodeBinary"
	register("w.dec", func() any { return &decOnlyMsg{} })       // want "decOnlyMsg registered with a DecodeBinary decoder but no AppendBinary"
	register("w.naked", func() any { return &nakedMsg{} })       // want "nakedMsg registered without a native binary wire form"
	register("w.untested", func() any { return &untestedMsg{} }) // want "untestedMsg has no truncation/fuzz coverage"
}

// notARegistration: two args but the wrong signature — ignored.
func notARegistration(name string, n int) {}

func otherCalls() {
	notARegistration("x", 1)
}

package wiresym

import "testing"

// FuzzDecodeTruncations gives okMsg its robustness coverage; the file
// defines a Fuzz* function and references the type.
func FuzzDecodeTruncations(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		m := &okMsg{}
		if err := m.DecodeBinary(data); err != nil {
			return
		}
		if _, err := m.AppendBinary(nil); err != nil {
			t.Fatal(err)
		}
	})
}

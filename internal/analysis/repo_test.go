package analysis_test

import (
	"testing"

	"corona/internal/analysis"
	"corona/internal/analysis/load"
)

// TestRepoIsLintClean runs the full analyzer suite over the whole
// repository — the same sweep `make check` and CI run via corona-lint.
// Any regression of a house invariant (an unsorted map range feeding
// the wire in a deterministic package, a transport send under a lock, a
// half-implemented wire type, a wall-clock read in the simulation
// stack) fails this test with the finding's position.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole repo")
	}
	pkgs, err := load.Packages("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
)

// WireSym (wire-symmetry) enforces the discipline the wire-format PRs
// maintain by hand: every payload type registered with internal/codec's
// binary registry must define BOTH halves of the native binary contract —
// an AppendBinary encoder and a DecodeBinary decoder — and must be
// exercised by a robustness test (a Fuzz* function or a truncation test)
// in the package's _test.go files. A type with only one half decodes to
// garbage or silently falls back to JSON on one side of a version-skewed
// cluster; a type without a truncation/fuzz test is one hostile frame
// away from a panic in the decode path.
//
// Registration sites are recognized structurally: any call of the
// registry shape f(msgType string, factory func() any) whose factory
// literal returns a composite literal &T{} — this covers direct
// codec.RegisterPayload calls and the register-callback indirection in
// core.RegisterPayloadTypes. Only types declared in the package under
// analysis are checked (a cross-package registration is checked where
// the type lives).
var WireSym = &Analyzer{
	Name: "wiresym",
	Doc: "verifies every codec-registered payload type defines both AppendBinary and DecodeBinary " +
		"and is referenced by a truncation/fuzz test in the package's _test.go files",
	Run: runWireSym,
}

func runWireSym(pass *Pass) error {
	regs := map[*types.TypeName]ast.Node{} // registered type -> first registration site
	var order []*types.TypeName
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			tn := registeredType(pass, call)
			if tn == nil || tn.Pkg() != pass.Pkg {
				return true
			}
			if _, seen := regs[tn]; !seen {
				regs[tn] = call
				order = append(order, tn)
			}
			return true
		})
	}
	if len(regs) == 0 {
		return nil
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Name() < order[j].Name() })

	robust := robustTestRefs(pass)
	for _, tn := range order {
		site := regs[tn]
		hasEnc := hasMethod(tn, "AppendBinary")
		hasDec := hasMethod(tn, "DecodeBinary")
		switch {
		case hasEnc && !hasDec:
			pass.Reportf(site.Pos(), "%s registered with an AppendBinary encoder but no DecodeBinary decoder: peers cannot parse what this node sends", tn.Name())
		case !hasEnc && hasDec:
			pass.Reportf(site.Pos(), "%s registered with a DecodeBinary decoder but no AppendBinary encoder: this node falls back to JSON while peers expect binary", tn.Name())
		case !hasEnc && !hasDec:
			pass.Reportf(site.Pos(), "%s registered without a native binary wire form: define AppendBinary/DecodeBinary (or register a type that has them)", tn.Name())
		}
		if hasEnc && hasDec && !robust[tn.Name()] {
			pass.Reportf(site.Pos(), "%s has no truncation/fuzz coverage: reference it from a Fuzz* or *Truncat* test in this package's _test.go files", tn.Name())
		}
	}
	return nil
}

// registeredType returns the type name T when call has the registry
// shape f("msg.type", func() any { return &T{} }), else nil.
func registeredType(pass *Pass, call *ast.CallExpr) *types.TypeName {
	if len(call.Args) != 2 {
		return nil
	}
	sig, ok := pass.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return nil
	}
	if b, ok := sig.Params().At(0).Type().(*types.Basic); !ok || b.Kind() != types.String && b.Kind() != types.UntypedString {
		return nil
	}
	fsig, ok := sig.Params().At(1).Type().Underlying().(*types.Signature)
	if !ok || fsig.Params().Len() != 0 || fsig.Results().Len() != 1 {
		return nil
	}
	if _, ok := fsig.Results().At(0).Type().Underlying().(*types.Interface); !ok {
		return nil
	}
	lit, ok := call.Args[1].(*ast.FuncLit)
	if !ok {
		return nil
	}
	// The factory body must be a single `return &T{}` (or `return T{}`).
	if len(lit.Body.List) != 1 {
		return nil
	}
	ret, ok := lit.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	expr := ret.Results[0]
	if u, ok := expr.(*ast.UnaryExpr); ok {
		expr = u.X
	}
	comp, ok := expr.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	t := pass.Info.Types[comp].Type
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// hasMethod reports whether tn's type (or its pointer) declares a method
// with the given name.
func hasMethod(tn *types.TypeName, name string) bool {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}

var robustFuncName = regexp.MustCompile(`^Fuzz|Truncat`)

// robustTestRefs scans the package's parse-only test files: every
// identifier appearing in a test file that defines at least one Fuzz* or
// *Truncat* function counts as robustness-covered. File granularity is
// deliberate — table-driven fuzz corpora reference types from package
// variables the Fuzz function consumes, so per-function attribution
// would miss them.
func robustTestRefs(pass *Pass) map[string]bool {
	refs := map[string]bool{}
	for _, f := range pass.TestFiles {
		hasRobust := false
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && robustFuncName.MatchString(fd.Name.Name) {
				hasRobust = true
				break
			}
		}
		if !hasRobust {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				refs[id.Name] = true
			}
			return true
		})
	}
	return refs
}

package analysis

import (
	"go/ast"
	"go/types"
)

// LockBlock (no-blocking-under-lock) flags blocking work performed while
// a sync.Mutex or sync.RWMutex acquired in the same function is still
// held: channel sends (outside a select with a default case), calls into
// the wire layer (method names like Send/SendBatch, blocking net.Conn or
// crypto/tls I/O methods), and durable-store calls that wait on fsync
// (store Append/Sync/Compact/Close, (*os.File).Sync). Holding a node's
// mutex across a transport send is the pre-PR-6 fanOut shape: one slow
// peer stalls every reader of the lock.
//
// The analysis is intra-procedural and tracks lock state in source
// order: a Lock/RLock opens a region that a non-deferred Unlock/RUnlock
// of the same expression closes; a deferred unlock holds to the end of
// the function. Function literals are analyzed as separate functions
// (they usually run on other goroutines).
var LockBlock = &Analyzer{
	Name: "lockblock",
	Doc: "flags channel sends, transport/net.Conn calls, and WAL/fsync calls made while a " +
		"sync mutex acquired in the same function is still held (the pre-PR-6 fanOut-under-RLock shape)",
	Run: runLockBlock,
}

// blockingStoreMethods are methods on corona/internal/store types that
// block on group-commit fsync or compaction.
var blockingStoreMethods = map[string]bool{
	"Append": true, "Sync": true, "Compact": true, "Close": true,
}

// blockingSendMethods are method names that transmit on a transport.
var blockingSendMethods = map[string]bool{
	"Send": true, "send": true, "SendTo": true, "SendBatch": true,
}

// blockingNetMethods are the net/tls methods that actually wait on the
// network. Deadline setters, Addr getters, and Close are bookkeeping:
// Close in particular is routinely (and correctly) called under a lock
// to fence connection state.
var blockingNetMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true, "Handshake": true,
	"ReadFrom": true, "WriteTo": true, "ReadFromUDP": true, "WriteToUDP": true,
}

func runLockBlock(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockRegions(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkLockRegions(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// lockState tracks which mutex expressions are held at the current point
// of the source-order walk.
type lockState struct {
	pass *Pass
	// held maps a normalized mutex expression ("n.mu") to the count of
	// open acquisitions.
	held map[string]int
	// lockLine remembers where each held mutex was last acquired, for
	// the message.
	lockLine map[string]int
}

func checkLockRegions(pass *Pass, body *ast.BlockStmt) {
	st := &lockState{pass: pass, held: map[string]int{}, lockLine: map[string]int{}}
	st.walk(body)
}

// anyHeld returns the lexically-smallest held mutex expression, or ""
// (smallest, not first-found: this linter holds itself to the map-order
// determinism it enforces).
func (st *lockState) anyHeld() string {
	best := ""
	for k, n := range st.held {
		if n > 0 && (best == "" || k < best) {
			best = k
		}
	}
	return best
}

// walk visits stmts in source order, updating lock state and reporting
// blocking operations in held regions. Nested function literals are
// skipped (analyzed separately with fresh state).
func (st *lockState) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the region open; any other deferred
			// call runs after the function body, outside the region.
			return false
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			st.checkSelect(n)
			return false
		case *ast.SendStmt:
			if mu := st.anyHeld(); mu != "" {
				st.pass.Reportf(n.Pos(), "channel send while %s is held (locked at line %d): a full channel blocks every waiter on the lock; move the send after unlock or use a select with default", mu, st.lockLine[mu])
			}
		case *ast.CallExpr:
			st.checkCall(n)
		}
		return true
	})
}

// checkSelect walks a select statement: sends and receives inside a
// select with a default case never block, so only selects without a
// default are checked (their comm clauses can block the lock holder).
func (st *lockState) checkSelect(sel *ast.SelectStmt) {
	hasDefault := false
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		if mu := st.anyHeld(); mu != "" {
			st.pass.Reportf(sel.Pos(), "blocking select while %s is held (locked at line %d): add a default case or move it after unlock", mu, st.lockLine[mu])
		}
	}
	// Clause bodies run after the (possibly non-blocking) communication;
	// walk them normally.
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok {
			for _, s := range cc.Body {
				st.walk(s)
			}
		}
	}
}

func (st *lockState) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name

	// Mutex transitions first.
	if st.isSyncLockCall(sel) {
		key := exprString(sel.X)
		switch name {
		case "Lock", "RLock":
			st.held[key]++
			st.lockLine[key] = st.pass.Fset.Position(call.Pos()).Line
		case "Unlock", "RUnlock":
			if st.held[key] > 0 {
				st.held[key]--
			}
		}
		return
	}

	mu := st.anyHeld()
	if mu == "" {
		return
	}
	recv := st.pass.Info.Types[sel.X].Type
	switch {
	case blockingSendMethods[name] && st.isMethodCall(sel):
		st.pass.Reportf(call.Pos(), "%s while %s is held (locked at line %d): a slow peer stalls every waiter on the lock; collect targets under the lock, send after unlock", name, mu, st.lockLine[mu])
	case recv != nil && blockingNetMethods[name] && receiverInPackage(recv, "net", "crypto/tls"):
		st.pass.Reportf(call.Pos(), "%s.%s while %s is held (locked at line %d): network I/O under a lock; move it after unlock", exprString(sel.X), name, mu, st.lockLine[mu])
	case blockingStoreMethods[name] && recv != nil && receiverInPackage(recv, "corona/internal/store"):
		st.pass.Reportf(call.Pos(), "store %s while %s is held (locked at line %d): group-commit fsync under a lock; stage the record and append after unlock", name, mu, st.lockLine[mu])
	case name == "Sync" && recv != nil && receiverNamed(recv, "os", "File"):
		st.pass.Reportf(call.Pos(), "(*os.File).Sync while %s is held (locked at line %d): fsync under a lock; move it after unlock", mu, st.lockLine[mu])
	}
}

// isSyncLockCall reports whether sel selects a sync.Mutex/RWMutex
// Lock/RLock/Unlock/RUnlock method (directly or through an embedded
// field).
func (st *lockState) isSyncLockCall(sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return false
	}
	s, ok := st.pass.Info.Selections[sel]
	if !ok {
		return false
	}
	f, ok := s.Obj().(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return false
	}
	return true
}

// isMethodCall reports whether sel resolves to a method (not a field of
// function type or a package-level function — those transmit too, but
// matching bare names across all packages would be noise).
func (st *lockState) isMethodCall(sel *ast.SelectorExpr) bool {
	s, ok := st.pass.Info.Selections[sel]
	if !ok {
		return false
	}
	_, ok = s.Obj().(*types.Func)
	return ok
}

// receiverInPackage reports whether t (or its pointee) is a named type
// declared in one of the given packages, or an interface whose methods
// come from one of them (net.Conn).
func receiverInPackage(t types.Type, pkgs ...string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	for _, p := range pkgs {
		if obj.Pkg().Path() == p {
			return true
		}
	}
	return false
}

// receiverNamed reports whether t (or its pointee) is the named type
// pkg.Name.
func receiverNamed(t types.Type, pkg, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}

package analysis_test

import (
	"testing"

	"corona/internal/analysis"
	"corona/internal/analysis/analysistest"
)

// TestMapOrder pins the deterministic-iteration analyzer against the
// pre-PR-7 KnownNodes shape (red) and the collect-then-sort fix (green),
// and checks the package gating: the same shapes pass clean in a
// non-deterministic package.
func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapOrder,
		"corona/internal/pastry",
		"corona/internal/webgateway",
	)
}

// TestLockBlock pins the no-blocking-under-lock analyzer against the
// pre-PR-6 fanOut-under-RLock shape (red) and the collect-then-send fix
// (green), plus channel sends, net.Conn I/O, and WAL/fsync under lock.
func TestLockBlock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockBlock, "lockblock")
}

// TestWireSym pins the wire-symmetry analyzer: asymmetric encoder/
// decoder pairs, registration without a binary form, and missing
// truncation/fuzz coverage.
func TestWireSym(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WireSym, "wiresym")
}

// TestWallClock pins the no-wall-clock analyzer across the always-
// virtual packages, an internal/clock consumer, and the exempt
// composition root.
func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WallClock,
		"corona/internal/chaos",
		"corona/internal/simnet",
		"corona/internal/clockconsumer",
		"corona",
	)
}

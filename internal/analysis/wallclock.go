package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock (no-wall-clock) flags direct wall-clock reads — time.Now,
// time.Since, bare time.After/Tick/Sleep, timer constructors — in
// packages that must run on the virtual clock: the simulation stack
// (internal/chaos, internal/eventsim, internal/simnet) plus every
// consumer of corona/internal/clock (those packages took an injected
// Clock precisely so the discrete-event simulator can drive them; a
// stray time.Now() silently reintroduces wall time and desynchronizes
// seeded runs in ways no fixed-seed test can reproduce).
//
// The root corona package is exempt: it is the composition root that
// wires clock.Real into live deployments, so it legitimately touches
// both clocks. Package internal/clock itself defines the wall-clock
// boundary and is not a consumer.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/time.Since/time.After and friends in virtual-clock packages " +
		"(chaos, eventsim, simnet, and internal/clock consumers) — wall-clock reads break seeded reproducibility",
	Run: runWallClock,
}

// virtualClockPkgs always run under the simulator's clock.
var virtualClockPkgs = map[string]bool{
	"corona/internal/chaos":    true,
	"corona/internal/eventsim": true,
	"corona/internal/simnet":   true,
}

// wallClockExempt packages may read the wall clock even though they
// import internal/clock.
var wallClockExempt = map[string]bool{
	// The composition root: constructs clock.Real for live deployments.
	"corona": true,
}

// wallClockFuncs are the time-package functions that read or schedule
// against the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "Sleep": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runWallClock(pass *Pass) error {
	path := pass.Pkg.Path()
	if wallClockExempt[path] {
		return nil
	}
	if !virtualClockPkgs[path] && !importsClock(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s in a virtual-clock package: use the injected clock.Clock (sim time) so seeded runs stay reproducible", sel.Sel.Name)
			return true
		})
	}
	return nil
}

// importsClock reports whether pkg directly imports corona/internal/clock.
func importsClock(pkg *types.Package) bool {
	for _, imp := range pkg.Imports() {
		if imp.Path() == "corona/internal/clock" {
			return true
		}
	}
	return false
}

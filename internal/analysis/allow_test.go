package analysis_test

import (
	"strings"
	"testing"

	"corona/internal/analysis"
	"corona/internal/analysis/load"
)

// TestAllowDirectives drives the suppression path end to end on the
// allowfix fixture with the full analyzer suite: a well-formed allow
// silences its finding, a wrong-analyzer allow silences nothing (and is
// itself flagged unused), a missing reason or unknown analyzer is
// malformed, and an allow with no finding in range is unused.
func TestAllowDirectives(t *testing.T) {
	pkgs, err := load.Fixtures("testdata", "allowfix")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Logf("finding: %s", f)
	}

	type expect struct {
		analyzer string
		fragment string
	}
	expects := []expect{
		// wrongAnalyzer: the lockblock finding survives...
		{"lockblock", "channel send while x.mu is held"},
		// ...and its maporder directive is unused.
		{"allow", "unused //lint:allow maporder"},
		// missingReason: malformed + surviving finding.
		{"allow", "missing reason"},
		{"lockblock", "channel send while x.mu is held"},
		// unknownAnalyzer: malformed + surviving finding.
		{"allow", "unknown analyzer nosuchcheck"},
		{"lockblock", "channel send while x.mu is held"},
		// unusedAllow: flagged as unused.
		{"allow", "unused //lint:allow lockblock"},
	}
	if len(findings) != len(expects) {
		t.Fatalf("got %d findings, want %d", len(findings), len(expects))
	}
	remaining := append([]analysis.Finding{}, findings...)
	for _, e := range expects {
		found := -1
		for i, f := range remaining {
			if f.Analyzer == e.analyzer && strings.Contains(f.Message, e.fragment) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("no finding for %s %q", e.analyzer, e.fragment)
			continue
		}
		remaining = append(remaining[:found], remaining[found+1:]...)
	}
	for _, f := range remaining {
		t.Errorf("unexpected finding: %s", f)
	}

	// The two correctly-allowed sends must not appear at all.
	for _, f := range findings {
		if strings.Contains(f.Message, "buffered") {
			t.Errorf("suppressed finding leaked: %s", f)
		}
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"corona/internal/analysis/load"
)

// Finding is one reported violation, positioned and attributed.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies the analyzers to every package and returns the surviving
// findings: diagnostics not excused by a matching //lint:allow directive,
// plus driver findings for malformed or unused directives. Findings come
// back sorted by position.
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		allows := parseAllows(pkg.Fset, append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...), known)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				TestFiles: pkg.TestFiles,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				for _, al := range allows {
					if al.matches(name, pos) {
						al.used = true
						return
					}
				}
				findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
		for _, al := range allows {
			pos := pkg.Fset.Position(al.pos)
			switch {
			case al.malformed != "":
				findings = append(findings, Finding{Analyzer: "allow", Pos: pos, Message: "malformed //lint:allow: " + al.malformed})
			case !al.used && running[al.analyzer]:
				// Only judge directives whose analyzer actually ran this
				// invocation; a single-analyzer run must not condemn the
				// others' exceptions.
				findings = append(findings, Finding{Analyzer: "allow", Pos: pos, Message: fmt.Sprintf("unused //lint:allow %s: no %s finding on this or the next line; delete the directive or re-check the code", al.analyzer, al.analyzer)})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}

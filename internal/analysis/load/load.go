// Package load turns Go packages into the syntax+types form the analysis
// driver consumes, without depending on golang.org/x/tools.
//
// Two loading modes share one Package shape:
//
//   - Packages loads real module packages: `go list -export -deps -json`
//     supplies file lists plus gc export data for every dependency, the
//     main-module packages are parsed and type-checked from source, and
//     imports resolve through the export data (fast: no transitive source
//     type-checking). CGO_ENABLED=0 keeps every dependency pure Go.
//
//   - Fixtures loads analysistest trees: a fixture package lives at
//     <root>/src/<importpath>, imports of other fixture packages resolve
//     recursively from the tree (type-checked from source), and any
//     remaining imports are treated as standard-library paths whose
//     export data one `go list -export` call resolves. Fixture packages
//     may use real import paths like "corona/internal/pastry", which is
//     how analyzers gated on Corona package paths are exercised.
//
// Test files (*_test.go) are parsed but never type-checked: analyzers that
// look at tests (wiresym's robustness-test check) work on syntax alone,
// which keeps the loader to a single type-checking pass per package.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded package: parsed syntax, type information, and the
// parse-only test files.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the directory holding the source files.
	Dir string
	// Files are the compiled (non-test) files, type-checked.
	Files []*ast.File
	// TestFiles are the package's *_test.go files (in-package and
	// external), parsed with comments but not type-checked.
	TestFiles []*ast.File
	// Fset positions every file in Files and TestFiles.
	Fset *token.FileSet
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	ImportMap    map[string]string
	Standard     bool
	Module       *struct {
		Path string
		Main bool
	}
}

// goList runs `go list -export -deps -json` for patterns in dir and
// decodes the stream. CGO_ENABLED=0 so no dependency carries cgo-only
// declarations the type-checker cannot see.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,Imports,ImportMap,Standard,Module",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths through gc export data files.
type exportImporter struct {
	exports map[string]string // import path -> export data file
	gc      types.Importer
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return ei
}

// Packages loads the main-module packages matched by patterns (e.g.
// "./...") relative to dir, type-checked from source with dependencies
// resolved from gc export data.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	ei := newExportImporter(fset, exports)

	var out []*Package
	for _, lp := range listed {
		if lp.Standard || lp.Module == nil || !lp.Module.Main {
			continue
		}
		pkg, err := checkSource(fset, lp, func(path string) (*types.Package, error) {
			if m, ok := lp.ImportMap[path]; ok {
				path = m
			}
			return ei.gc.Import(path)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// checkSource parses and type-checks one listed package from source.
func checkSource(fset *token.FileSet, lp *listedPackage, imp func(string) (*types.Package, error)) (*Package, error) {
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			af, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, af)
		}
		return files, nil
	}
	files, err := parse(lp.GoFiles)
	if err != nil {
		return nil, err
	}
	testFiles, err := parse(append(append([]string{}, lp.TestGoFiles...), lp.XTestGoFiles...))
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importerFunc(imp),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:      lp.ImportPath,
		Dir:       lp.Dir,
		Files:     files,
		TestFiles: testFiles,
		Fset:      fset,
		Types:     tpkg,
		Info:      info,
	}, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Fixtures loads the fixture packages at <root>/src/<path> for each path.
// Imports resolve first against the fixture tree, then as standard-library
// packages via export data.
func Fixtures(root string, paths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		root:   root,
		fset:   fset,
		loaded: map[string]*Package{},
	}
	// One `go list -export` call resolves every stdlib import reachable
	// from the requested fixtures.
	std, err := ld.stdlibClosure(paths)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(std) > 0 {
		listed, err := goList(root, append([]string{"-e"}, std...))
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	ld.imp = newExportImporter(fset, exports)

	var out []*Package
	for _, path := range paths {
		pkg, err := ld.load(path, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type fixtureLoader struct {
	root   string
	fset   *token.FileSet
	imp    *exportImporter
	loaded map[string]*Package
}

// fixtureDir returns the source directory for a fixture import path, or
// "" when the tree holds no such package.
func (ld *fixtureLoader) fixtureDir(path string) string {
	dir := filepath.Join(ld.root, "src", filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return dir
		}
	}
	return ""
}

// goFiles lists a fixture directory's sources split into compiled and
// test files.
func goFiles(dir string) (files, testFiles []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, name)
		} else {
			files = append(files, name)
		}
	}
	sort.Strings(files)
	sort.Strings(testFiles)
	return files, testFiles, nil
}

// stdlibClosure walks the fixture import graph from the given roots and
// returns every import path not present in the fixture tree — the set to
// resolve as standard library.
func (ld *fixtureLoader) stdlibClosure(roots []string) ([]string, error) {
	seen := map[string]bool{}
	stdSet := map[string]bool{}
	var walk func(path string) error
	walk = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		dir := ld.fixtureDir(path)
		if dir == "" {
			return fmt.Errorf("fixture package %q not found under %s/src", path, ld.root)
		}
		files, _, err := goFiles(dir)
		if err != nil {
			return err
		}
		for _, name := range files {
			af, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, spec := range af.Imports {
				imp, _ := strconv.Unquote(spec.Path.Value)
				if ld.fixtureDir(imp) != "" {
					if err := walk(imp); err != nil {
						return err
					}
				} else {
					stdSet[imp] = true
				}
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r); err != nil {
			return nil, err
		}
	}
	var std []string
	for p := range stdSet {
		std = append(std, p)
	}
	sort.Strings(std)
	return std, nil
}

// load type-checks one fixture package, recursively loading fixture
// dependencies. chain guards against import cycles.
func (ld *fixtureLoader) load(path string, chain []string) (*Package, error) {
	if pkg, ok := ld.loaded[path]; ok {
		return pkg, nil
	}
	for _, c := range chain {
		if c == path {
			return nil, fmt.Errorf("fixture import cycle: %s", strings.Join(append(chain, path), " -> "))
		}
	}
	dir := ld.fixtureDir(path)
	if dir == "" {
		return nil, fmt.Errorf("fixture package %q not found under %s/src", path, ld.root)
	}
	files, testFiles, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	lp := &listedPackage{ImportPath: path, Dir: dir, GoFiles: files, TestGoFiles: testFiles}
	pkg, err := checkSource(ld.fset, lp, func(imp string) (*types.Package, error) {
		if ld.fixtureDir(imp) != "" {
			dep, err := ld.load(imp, append(chain, path))
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}
		return ld.imp.gc.Import(imp)
	})
	if err != nil {
		return nil, err
	}
	ld.loaded[path] = pkg
	return pkg, nil
}

//go:build !unix

package store

import (
	"os"
	"path/filepath"
)

// lockDir on platforms without flock degrades to holding the lock file
// open without mutual exclusion; concurrent stores on one directory are
// then the operator's responsibility.
func lockDir(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
}

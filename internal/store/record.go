package store

import (
	"fmt"
	"sort"

	"corona/internal/ids"
	"corona/internal/wirebin"
)

// Op identifies a record kind in the WAL.
type Op uint8

const (
	// OpSubscribe adds or refreshes one subscriber of a channel.
	OpSubscribe Op = 1
	// OpUnsubscribe removes one subscriber of a channel.
	OpUnsubscribe Op = 2
	// OpMeta upserts channel metadata (ownership, level, epoch, version,
	// tradeoff factors) and, when ReplaceSubs is set, replaces the durable
	// subscriber set wholesale.
	OpMeta Op = 3
	// OpVersion advances a channel's last observed content version.
	OpVersion Op = 4
	// OpSubsChunk upserts a batch of subscribers without touching the
	// rest of the set. Append splits oversized OpMeta subscriber
	// replacements into one capped OpMeta followed by OpSubsChunk
	// records, so no WAL frame outgrows MaxRecordBytes.
	OpSubsChunk Op = 5
	// OpOwnerEpoch advances a channel's ownership fencing epoch (the
	// monotonic counter the owner-epoch handshake compares; see
	// internal/core). Applied as a max, like OpVersion.
	OpOwnerEpoch Op = 6
	// OpLease marks one subscriber as living under entry-node lease
	// discipline, with the time its entry last proved liveness for it.
	// A zero UnixNano is a lease clear: the mark is removed (the owner
	// gave up on the entry and re-routed it; lease discipline must not
	// resurrect on restart for a client that may never heartbeat again).
	OpLease Op = 7
	// OpDelegates replaces a hot channel's fan-out delegate roster
	// wholesale (an empty list clears it). Only the roster is durable:
	// the per-delegate partitions are a pure function of the subscriber
	// set and the roster, so recovery rebuilds them instead of logging
	// every partition push.
	OpDelegates Op = 8
)

// Sub is one durable subscriber: the client identity plus the overlay
// address of its entry node, which delivers its notifications.
type Sub struct {
	Client        string
	EntryID       ids.ID
	EntryEndpoint string
}

// Lease is one durable entry-node lease mark: the subscriber it covers
// and when its entry node last proved liveness for it (Unix nanoseconds).
// Recovery treats the timestamp as advisory — a restarted owner grants a
// fresh grace window — so the mark's real payload is which subscribers
// are under lease discipline at all.
type Lease struct {
	Client   string
	UnixNano int64
}

// Delegate is one durable fan-out delegate: the overlay address of a
// node the channel's owner recruited to disseminate updates for a share
// of the subscriber set.
type Delegate struct {
	ID       ids.ID
	Endpoint string
}

// Record is one logged state mutation. Which fields are meaningful
// depends on Op; the rest are ignored by apply and omitted from the
// encoding.
type Record struct {
	Op  Op
	URL string

	// OpSubscribe / OpUnsubscribe.
	Sub Sub

	// OpMeta; Subs is shared with OpSubsChunk.
	Owner       bool
	Replica     bool
	Level       int
	Epoch       uint64
	Count       int
	SizeBytes   int
	IntervalSec float64
	ReplaceSubs bool
	Subs        []Sub

	// OpMeta and OpVersion.
	Version uint64

	// OpOwnerEpoch.
	OwnerEpoch uint64

	// OpLease.
	Lease Lease

	// OpDelegates.
	Delegates []Delegate
}

// Sink receives state-change records; core.Node holds one (nil when the
// node runs without durability, so simulations pay nothing).
type Sink interface {
	StateChanged(rec Record)
}

// Channel is the materialized durable image of one channel — the unit of
// snapshots and of recovery.
type Channel struct {
	URL         string
	Owner       bool
	Replica     bool
	Level       int
	Epoch       uint64
	OwnerEpoch  uint64
	Version     uint64
	Count       int
	SizeBytes   int
	IntervalSec float64
	Subs        []Sub
	Leases      []Lease
	Delegates   []Delegate

	// index maps client to Subs position, built lazily once the set is
	// large enough that linear scans hurt. Never serialized.
	index map[string]int
}

// indexThreshold is the subscriber-set size past which a channel keeps a
// client index instead of scanning.
const indexThreshold = 64

// upsertSub adds or refreshes one subscriber.
func (ch *Channel) upsertSub(s Sub) {
	if ch.index == nil && len(ch.Subs) >= indexThreshold {
		ch.index = make(map[string]int, len(ch.Subs))
		for i := range ch.Subs {
			ch.index[ch.Subs[i].Client] = i
		}
	}
	if ch.index != nil {
		if i, ok := ch.index[s.Client]; ok {
			ch.Subs[i] = s
			return
		}
		ch.index[s.Client] = len(ch.Subs)
		ch.Subs = append(ch.Subs, s)
		return
	}
	for i := range ch.Subs {
		if ch.Subs[i].Client == s.Client {
			ch.Subs[i] = s
			return
		}
	}
	ch.Subs = append(ch.Subs, s)
}

// removeSub deletes one subscriber by client identity.
func (ch *Channel) removeSub(client string) {
	i := -1
	if ch.index != nil {
		pos, ok := ch.index[client]
		if !ok {
			return
		}
		i = pos
	} else {
		for j := range ch.Subs {
			if ch.Subs[j].Client == client {
				i = j
				break
			}
		}
		if i < 0 {
			return
		}
	}
	ch.Subs = append(ch.Subs[:i], ch.Subs[i+1:]...)
	if ch.index != nil {
		delete(ch.index, client)
		for j := i; j < len(ch.Subs); j++ {
			ch.index[ch.Subs[j].Client] = j
		}
	}
}

// replaceSubs installs a whole new subscriber set and prunes lease marks
// for clients no longer in it.
func (ch *Channel) replaceSubs(subs []Sub) {
	ch.Subs = append([]Sub(nil), subs...)
	ch.index = nil
	ch.pruneLeases()
}

// upsertLease adds or refreshes one lease mark.
func (ch *Channel) upsertLease(l Lease) {
	for i := range ch.Leases {
		if ch.Leases[i].Client == l.Client {
			ch.Leases[i] = l
			return
		}
	}
	ch.Leases = append(ch.Leases, l)
}

// removeLease drops one client's lease mark.
func (ch *Channel) removeLease(client string) {
	for i := range ch.Leases {
		if ch.Leases[i].Client == client {
			ch.Leases = append(ch.Leases[:i], ch.Leases[i+1:]...)
			return
		}
	}
}

// pruneLeases drops lease marks for clients not in the subscriber set.
func (ch *Channel) pruneLeases() {
	if len(ch.Leases) == 0 {
		return
	}
	keep := ch.Leases[:0]
	for _, l := range ch.Leases {
		for i := range ch.Subs {
			if ch.Subs[i].Client == l.Client {
				keep = append(keep, l)
				break
			}
		}
	}
	ch.Leases = keep
}

// OpMeta flag bits.
const (
	metaOwner   = 1 << 0
	metaReplica = 1 << 1
	metaSubs    = 1 << 2
)

func appendSub(dst []byte, s Sub) []byte {
	dst = wirebin.AppendString(dst, s.Client)
	dst = append(dst, s.EntryID[:]...)
	return wirebin.AppendString(dst, s.EntryEndpoint)
}

func readSub(r *wirebin.Reader) Sub {
	var s Sub
	s.Client = r.String()
	copy(s.EntryID[:], r.Take(ids.Bytes))
	s.EntryEndpoint = r.String()
	return s
}

func appendDelegates(dst []byte, ds []Delegate) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(len(ds)))
	for _, d := range ds {
		dst = append(dst, d.ID[:]...)
		dst = wirebin.AppendString(dst, d.Endpoint)
	}
	return dst
}

// readDelegates reads a count-prefixed delegate list; each delegate costs
// at least the 20-byte identifier and one endpoint length byte.
func readDelegates(r *wirebin.Reader) []Delegate {
	n := r.ListLen(ids.Bytes + 1)
	if r.Err() != nil || n == 0 {
		return nil
	}
	ds := make([]Delegate, 0, n)
	for i := 0; i < n; i++ {
		var d Delegate
		copy(d.ID[:], r.Take(ids.Bytes))
		d.Endpoint = r.String()
		if r.Err() != nil {
			return nil
		}
		ds = append(ds, d)
	}
	return ds
}

// readSubs reads a count-prefixed subscriber list. ListLen validates the
// count against the bytes actually available (each sub costs at least
// 1+20+1 bytes) before anything is allocated; there is no absolute cap,
// so whatever the encoder wrote, the decoder accepts — a channel can
// never make its own durable state undecodable.
func readSubs(r *wirebin.Reader) []Sub {
	n := r.ListLen(ids.Bytes + 2)
	if r.Err() != nil || n == 0 {
		return nil
	}
	subs := make([]Sub, 0, n)
	for i := 0; i < n; i++ {
		subs = append(subs, readSub(r))
		if r.Err() != nil {
			return nil
		}
	}
	return subs
}

// appendRecord encodes rec's payload (the bytes a WAL frame carries).
func appendRecord(dst []byte, rec Record) []byte {
	dst = append(dst, byte(rec.Op))
	dst = wirebin.AppendString(dst, rec.URL)
	switch rec.Op {
	case OpSubscribe:
		dst = appendSub(dst, rec.Sub)
	case OpUnsubscribe:
		dst = wirebin.AppendString(dst, rec.Sub.Client)
	case OpMeta:
		var flags byte
		if rec.Owner {
			flags |= metaOwner
		}
		if rec.Replica {
			flags |= metaReplica
		}
		if rec.ReplaceSubs {
			flags |= metaSubs
		}
		dst = append(dst, flags)
		dst = wirebin.AppendSint(dst, rec.Level)
		dst = wirebin.AppendUvarint(dst, rec.Epoch)
		dst = wirebin.AppendUvarint(dst, rec.Version)
		dst = wirebin.AppendSint(dst, rec.Count)
		dst = wirebin.AppendSint(dst, rec.SizeBytes)
		dst = wirebin.AppendFloat64(dst, rec.IntervalSec)
		if rec.ReplaceSubs {
			dst = wirebin.AppendUvarint(dst, uint64(len(rec.Subs)))
			for _, s := range rec.Subs {
				dst = appendSub(dst, s)
			}
		}
	case OpVersion:
		dst = wirebin.AppendUvarint(dst, rec.Version)
	case OpSubsChunk:
		dst = wirebin.AppendUvarint(dst, uint64(len(rec.Subs)))
		for _, s := range rec.Subs {
			dst = appendSub(dst, s)
		}
	case OpOwnerEpoch:
		dst = wirebin.AppendUvarint(dst, rec.OwnerEpoch)
	case OpLease:
		dst = wirebin.AppendString(dst, rec.Lease.Client)
		dst = wirebin.AppendUvarint(dst, uint64(rec.Lease.UnixNano))
	case OpDelegates:
		dst = appendDelegates(dst, rec.Delegates)
	}
	return dst
}

// decodeRecord parses one WAL frame payload.
func decodeRecord(payload []byte) (Record, error) {
	r := wirebin.NewReader(payload)
	var rec Record
	rec.Op = Op(r.Byte())
	rec.URL = r.String()
	switch rec.Op {
	case OpSubscribe:
		rec.Sub = readSub(r)
	case OpUnsubscribe:
		rec.Sub.Client = r.String()
	case OpMeta:
		flags := r.Byte()
		rec.Owner = flags&metaOwner != 0
		rec.Replica = flags&metaReplica != 0
		rec.ReplaceSubs = flags&metaSubs != 0
		rec.Level = r.Sint()
		rec.Epoch = r.Uvarint()
		rec.Version = r.Uvarint()
		rec.Count = r.Sint()
		rec.SizeBytes = r.Sint()
		rec.IntervalSec = r.Float64()
		if rec.ReplaceSubs {
			rec.Subs = readSubs(r)
		}
	case OpVersion:
		rec.Version = r.Uvarint()
	case OpSubsChunk:
		rec.Subs = readSubs(r)
	case OpOwnerEpoch:
		rec.OwnerEpoch = r.Uvarint()
	case OpLease:
		rec.Lease.Client = r.String()
		rec.Lease.UnixNano = int64(r.Uvarint())
	case OpDelegates:
		rec.Delegates = readDelegates(r)
	default:
		return Record{}, fmt.Errorf("store: unknown record op %d", rec.Op)
	}
	if err := r.Err(); err != nil {
		return Record{}, fmt.Errorf("store: decoding %v record: %w", rec.Op, err)
	}
	if r.Len() != 0 {
		return Record{}, fmt.Errorf("store: %v record has %d trailing bytes", rec.Op, r.Len())
	}
	return rec, nil
}

// apply folds one record into the materialized image. All operations are
// idempotent upserts (see doc.go), so replaying overlapping history is
// harmless.
func (rec Record) apply(state map[string]*Channel) {
	if rec.URL == "" {
		return
	}
	ch := state[rec.URL]
	if ch == nil {
		ch = &Channel{URL: rec.URL, Level: -1}
		state[rec.URL] = ch
	}
	switch rec.Op {
	case OpSubscribe:
		ch.upsertSub(rec.Sub)
		ch.Count = len(ch.Subs)
	case OpUnsubscribe:
		ch.removeSub(rec.Sub.Client)
		ch.removeLease(rec.Sub.Client)
		ch.Count = len(ch.Subs)
	case OpMeta:
		ch.Owner = rec.Owner
		ch.Replica = rec.Replica
		ch.Level = rec.Level
		ch.Epoch = rec.Epoch
		if rec.Version > ch.Version {
			ch.Version = rec.Version
		}
		ch.SizeBytes = rec.SizeBytes
		ch.IntervalSec = rec.IntervalSec
		if rec.ReplaceSubs {
			ch.replaceSubs(rec.Subs)
			ch.Count = len(ch.Subs)
		} else if len(ch.Subs) == 0 {
			// Counting-mode totals carry no identities; the meta record is
			// authoritative. With identities present, the set itself is.
			ch.Count = rec.Count
		}
	case OpVersion:
		if rec.Version > ch.Version {
			ch.Version = rec.Version
		}
	case OpSubsChunk:
		for _, s := range rec.Subs {
			ch.upsertSub(s)
		}
		ch.Count = len(ch.Subs)
	case OpOwnerEpoch:
		if rec.OwnerEpoch > ch.OwnerEpoch {
			ch.OwnerEpoch = rec.OwnerEpoch
		}
	case OpLease:
		if rec.Lease.UnixNano == 0 {
			ch.removeLease(rec.Lease.Client)
		} else {
			ch.upsertLease(rec.Lease)
		}
	case OpDelegates:
		// Wholesale replace, like the roster it journals; an empty list
		// clears (the channel cooled or its owner demoted).
		ch.Delegates = append([]Delegate(nil), rec.Delegates...)
	}
}

// imageSlice snapshots the materialized map as a deterministic, sorted
// slice of deep copies.
func imageSlice(state map[string]*Channel) []Channel {
	out := make([]Channel, 0, len(state))
	for _, ch := range state {
		c := *ch
		c.Subs = append([]Sub(nil), ch.Subs...)
		c.Leases = append([]Lease(nil), ch.Leases...)
		c.Delegates = append([]Delegate(nil), ch.Delegates...)
		c.index = nil
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].URL < out[b].URL })
	return out
}

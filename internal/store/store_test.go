package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"corona/internal/ids"
)

// openT opens a store in dir with a huge commit window (tests flush
// explicitly) unless overridden.
func openT(t *testing.T, dir string, opts Options) (*Store, []Channel) {
	t.Helper()
	opts.Dir = dir
	if opts.CommitWindow == 0 {
		opts.CommitWindow = time.Hour
	}
	s, recovered, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, recovered
}

func sub(i int) Sub {
	return Sub{
		Client:        fmt.Sprintf("client-%d", i),
		EntryID:       ids.HashString(fmt.Sprintf("entry-%d", i)),
		EntryEndpoint: fmt.Sprintf("10.0.0.%d:9001", i%250+1),
	}
}

func subscribeRec(url string, i int) Record {
	return Record{Op: OpSubscribe, URL: url, Sub: sub(i)}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		subscribeRec("http://a/feed.xml", 1),
		{Op: OpUnsubscribe, URL: "http://a/feed.xml", Sub: Sub{Client: "client-1"}},
		{
			Op: OpMeta, URL: "http://b", Owner: true, Replica: false, Level: -1,
			Epoch: 9, Version: 1 << 40, Count: 3, SizeBytes: 4096, IntervalSec: 812.25,
		},
		{
			Op: OpMeta, URL: "http://c", Replica: true, Level: 4, ReplaceSubs: true,
			Subs: []Sub{sub(1), sub(2), sub(3)},
		},
		{Op: OpMeta, URL: "http://d", ReplaceSubs: true}, // empty replacement
		{Op: OpVersion, URL: "http://b", Version: 77},
	}
	for i, rec := range recs {
		b := appendRecord(nil, rec)
		got, err := decodeRecord(b)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d round trip:\n got  %+v\n want %+v", i, got, rec)
		}
		// Byte-stable re-encode.
		if b2 := appendRecord(nil, got); string(b2) != string(b) {
			t.Fatalf("record %d encoding not byte-stable", i)
		}
	}
}

func TestRecoverAfterClose(t *testing.T) {
	dir := t.TempDir()
	s, recovered := openT(t, dir, Options{})
	if len(recovered) != 0 {
		t.Fatalf("fresh dir recovered %d channels", len(recovered))
	}
	s.Append(subscribeRec("http://a", 1))
	s.Append(subscribeRec("http://a", 2))
	s.Append(Record{Op: OpMeta, URL: "http://a", Owner: true, Level: 2, Epoch: 5, SizeBytes: 4096, IntervalSec: 60})
	s.Append(Record{Op: OpVersion, URL: "http://a", Version: 12})
	s.Append(subscribeRec("http://b", 3))
	s.Append(Record{Op: OpUnsubscribe, URL: "http://b", Sub: Sub{Client: "client-3"}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, recovered := openT(t, dir, Options{})
	defer s2.Close()
	if len(recovered) != 2 {
		t.Fatalf("recovered %d channels, want 2", len(recovered))
	}
	a := recovered[0]
	if a.URL != "http://a" || !a.Owner || a.Level != 2 || a.Epoch != 5 || a.Version != 12 || a.Count != 2 || len(a.Subs) != 2 {
		t.Fatalf("channel a = %+v", a)
	}
	if a.Subs[0] != sub(1) || a.Subs[1] != sub(2) {
		t.Fatalf("subs = %+v", a.Subs)
	}
	b := recovered[1]
	if b.URL != "http://b" || b.Count != 0 || len(b.Subs) != 0 {
		t.Fatalf("channel b = %+v (unsubscribe not applied)", b)
	}
}

func TestGroupCommitWindowFlushes(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{CommitWindow: 2 * time.Millisecond})
	s.Append(subscribeRec("http://a", 1))
	// No Sync, no Close: the window flusher alone must make it durable.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		flushed := len(s.pending) == 0
		s.mu.Unlock()
		if flushed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group commit window never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	s.Abort() // crash after the window: the record must survive
	_, recovered := openT(t, dir, Options{})
	if len(recovered) != 1 || recovered[0].Count != 1 {
		t.Fatalf("recovered = %+v", recovered)
	}
}

func TestAbortLosesOnlyUnflushedWindow(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{}) // 1h window: nothing flushes on its own
	s.Append(subscribeRec("http://a", 1))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Append(subscribeRec("http://a", 2)) // inside the window at crash time
	s.Abort()

	_, recovered := openT(t, dir, Options{})
	if len(recovered) != 1 {
		t.Fatalf("recovered %d channels", len(recovered))
	}
	if got := recovered[0]; got.Count != 1 || len(got.Subs) != 1 || got.Subs[0].Client != "client-1" {
		t.Fatalf("recovered channel = %+v, want only the synced subscriber", got)
	}
}

func TestCompactionRotatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{CompactEvery: 10})
	for i := 0; i < 35; i++ { // crosses the threshold multiple times
		s.Append(subscribeRec(fmt.Sprintf("http://c/%d", i%7), i))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Exactly one generation remains on disk.
	snaps, wals, _ := scanDir(dir)
	if len(snaps) != 1 || len(wals) != 1 {
		t.Fatalf("files after compaction: snaps=%v wals=%v", snaps, wals)
	}

	_, recovered := openT(t, dir, Options{})
	if len(recovered) != 7 {
		t.Fatalf("recovered %d channels, want 7", len(recovered))
	}
	for _, ch := range recovered {
		if ch.Count != 5 || len(ch.Subs) != 5 {
			t.Fatalf("channel %s has %d subs, want 5", ch.URL, len(ch.Subs))
		}
	}
}

func TestRecoverySurvivesCompactionCrashWindow(t *testing.T) {
	// Simulate a crash between snapshot rename and old-WAL deletion: both
	// snap-(G+1) and wal-G on disk. Idempotent replay must not corrupt.
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	s.Append(subscribeRec("http://a", 1))
	s.Append(Record{Op: OpMeta, URL: "http://a", Owner: true, Level: 3, Epoch: 2, SizeBytes: 1024, IntervalSec: 30})
	s.Append(Record{Op: OpUnsubscribe, URL: "http://a", Sub: Sub{Client: "client-1"}})
	s.Append(subscribeRec("http://a", 2))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Open gen is 1; hand-craft snap-2 containing the full image while
	// leaving wal-1 in place, as a compaction crash would.
	if err := writeSnapshot(dir, 2, s.Channels()); err != nil {
		t.Fatal(err)
	}

	_, recovered := openT(t, dir, Options{})
	if len(recovered) != 1 {
		t.Fatalf("recovered %d channels", len(recovered))
	}
	got := recovered[0]
	if got.Count != 1 || len(got.Subs) != 1 || got.Subs[0].Client != "client-2" || !got.Owner || got.Level != 3 {
		t.Fatalf("overlap replay corrupted state: %+v", got)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	s.Append(subscribeRec("http://a", 1))
	if err := s.Compact(); err != nil { // snapshot now holds the channel
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _, _ := scanDir(dir)
	if len(snaps) != 1 {
		t.Fatalf("want one snapshot, have %v", snaps)
	}
	path := snapPath(dir, snaps[0])
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff // body corruption the CRC must catch
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	// The snapshot is rejected wholesale; with no other snapshot and an
	// empty post-compaction WAL, recovery is empty — but must not fail.
	_, recovered := openT(t, dir, Options{})
	if len(recovered) != 0 {
		t.Fatalf("corrupt snapshot yielded channels: %+v", recovered)
	}
}

func TestOpenRefusesLockedDir(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	defer s.Close()
	if _, _, err := Open(Options{Dir: dir, CommitWindow: time.Hour}); err == nil {
		t.Fatal("second store on a live data dir must be refused")
	}
	// Releasing the first store releases the lock.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := openT(t, dir, Options{})
	s2.Close()
}

func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000009.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, recovered := openT(t, dir, Options{})
	defer s.Close()
	if len(recovered) != 0 {
		t.Fatalf("recovered from garbage: %+v", recovered)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000009.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale temp file not swept")
	}
}

// TestHugeSubscriberSetRoundTrips pins the fix for the encode/decode
// asymmetry: a channel far beyond any per-record cap (here 100k
// subscribers, well past the 8192-per-record split and the old 64k
// decoder cap) must survive WAL replay and snapshot compaction intact.
func TestHugeSubscriberSetRoundTrips(t *testing.T) {
	const n = 100_000
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{CompactEvery: 1 << 30})
	subs := make([]Sub, n)
	for i := range subs {
		subs[i] = sub(i)
	}
	s.Append(Record{
		Op: OpMeta, URL: "http://big", Owner: true, Level: 1,
		ReplaceSubs: true, Subs: subs,
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// WAL replay path.
	s2, recovered := openT(t, dir, Options{})
	if len(recovered) != 1 || len(recovered[0].Subs) != n || recovered[0].Count != n {
		t.Fatalf("WAL replay: %d channels, %d subs", len(recovered), len(recovered[0].Subs))
	}
	// Snapshot path: compact, reopen.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recovered = openT(t, dir, Options{})
	if len(recovered) != 1 || len(recovered[0].Subs) != n {
		t.Fatalf("snapshot replay: %d channels, %d subs", len(recovered), len(recovered[0].Subs))
	}
	for i, got := range recovered[0].Subs {
		if got != subs[i] {
			t.Fatalf("sub %d differs after recovery", i)
		}
	}
}

// TestAppendsDuringCompactionSurvive overlaps appends with a compaction
// (whose file IO now runs outside the lock): records appended while the
// rotation is in flight must land in the new generation, not the doomed
// old WAL.
func TestAppendsDuringCompactionSurvive(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{CompactEvery: 1 << 30})
	for i := 0; i < 2000; i++ {
		s.Append(subscribeRec(fmt.Sprintf("http://c/%d", i%50), i))
	}
	done := make(chan error, 1)
	go func() { done <- s.Compact() }()
	for i := 2000; i < 2400; i++ {
		s.Append(subscribeRec(fmt.Sprintf("http://c/%d", i%50), i))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, recovered := openT(t, dir, Options{})
	total := 0
	for _, ch := range recovered {
		total += len(ch.Subs)
	}
	if total != 2400 {
		t.Fatalf("recovered %d subscribers, want 2400", total)
	}
}

func TestAppendAfterCloseIsNoop(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Append(subscribeRec("http://a", 1)) // must not panic or write
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	_, recovered := openT(t, dir, Options{})
	if len(recovered) != 0 {
		t.Fatalf("append after close leaked: %+v", recovered)
	}
}

func TestStatsTrackWALGrowthAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Options{Dir: dir, CommitWindow: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st := s.Stats()
	if st.RecordsSinceSnapshot != 0 || st.Err != nil {
		t.Fatalf("fresh store stats = %+v", st)
	}
	base := st.WALBytes
	if base <= 0 {
		t.Fatalf("fresh WAL reports %d bytes, want the header", base)
	}

	for i := 0; i < 10; i++ {
		s.Append(Record{Op: OpSubscribe, URL: "http://x/f.xml", Sub: Sub{Client: "alice", EntryEndpoint: "n1:1"}})
	}
	st = s.Stats()
	if st.RecordsSinceSnapshot != 10 {
		t.Fatalf("RecordsSinceSnapshot = %d, want 10", st.RecordsSinceSnapshot)
	}
	if st.WALBytes <= base {
		t.Fatalf("WALBytes = %d after 10 records, want > %d", st.WALBytes, base)
	}
	if st.Channels != 1 {
		t.Fatalf("Channels = %d, want 1", st.Channels)
	}

	// Compaction rotates to a fresh generation and resets the counters.
	gen := st.Generation
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Generation != gen+1 {
		t.Fatalf("Generation = %d after compaction, want %d", st.Generation, gen+1)
	}
	if st.RecordsSinceSnapshot != 0 {
		t.Fatalf("RecordsSinceSnapshot = %d after compaction, want 0", st.RecordsSinceSnapshot)
	}
}

func TestStatsCommitLatencyHistogram(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{CommitWindow: -1}) // synchronous: one commit per append
	defer s.Close()

	if n := len(s.Stats().CommitLatency); n != len(CommitLatencyBounds)+1 {
		t.Fatalf("histogram has %d buckets, want %d", n, len(CommitLatencyBounds)+1)
	}
	const appends = 25
	for i := 0; i < appends; i++ {
		s.Append(Record{Op: OpSubscribe, URL: "http://x/f.xml",
			Sub: Sub{Client: "alice", EntryEndpoint: "n1:1"}})
	}
	var total uint64
	for _, c := range s.Stats().CommitLatency {
		total += c
	}
	if total != appends {
		t.Fatalf("histogram counts %d commits, want %d", total, appends)
	}
}

package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"testing"
	"time"

	"corona/internal/wirebin"
)

// buildWAL writes a generation-1 WAL containing recs and returns the file
// bytes plus the byte offset at which each record's frame ends.
func buildWAL(recs []Record) (buf []byte, frameEnds []int) {
	buf = appendWALHeader(nil, 1)
	for _, rec := range recs {
		buf = appendFrame(buf, appendRecord(nil, rec))
		frameEnds = append(frameEnds, len(buf))
	}
	return buf, frameEnds
}

// testRecords is a mixed mutation history over a few channels, covering
// every record op (the owner-epoch and lease records included, so the
// truncation and fuzz properties exercise their decode paths).
func testRecords() []Record {
	var recs []Record
	for i := 0; i < 20; i++ {
		url := fmt.Sprintf("http://r/%d", i%3)
		switch i % 4 {
		case 0, 1:
			recs = append(recs, subscribeRec(url, i))
		case 2:
			recs = append(recs, Record{
				Op: OpMeta, URL: url, Owner: i%8 == 2, Replica: i%8 == 6,
				Level: i % 5, Epoch: uint64(i), Version: uint64(i * 3),
				Count: i % 4, SizeBytes: 512 * i, IntervalSec: float64(i) * 1.5,
			})
		case 3:
			recs = append(recs, Record{Op: OpVersion, URL: url, Version: uint64(i * 7)})
		}
		if i%5 == 0 {
			recs = append(recs, Record{Op: OpOwnerEpoch, URL: url, OwnerEpoch: uint64(i + 2)})
		}
		if i%6 == 1 {
			recs = append(recs, Record{
				Op: OpLease, URL: url,
				Lease: Lease{Client: fmt.Sprintf("client-%d", i), UnixNano: int64(1700000000e9) + int64(i)},
			})
		}
		if i == 13 {
			// A lease clear (zero time) removes the earlier mark.
			recs = append(recs, Record{Op: OpLease, URL: url, Lease: Lease{Client: "client-13"}})
		}
		if i == 10 {
			recs = append(recs, Record{Op: OpSubsChunk, URL: url, Subs: []Sub{sub(100 + i), sub(200 + i)}})
		}
		if i == 6 || i == 7 {
			recs = append(recs, Record{Op: OpDelegates, URL: url, Delegates: []Delegate{
				{ID: sub(i).EntryID, Endpoint: fmt.Sprintf("sim://%d", i)},
				{ID: sub(i + 1).EntryID, Endpoint: fmt.Sprintf("sim://%d", i+1)},
			}})
		}
		if i == 15 {
			// An empty roster clears the i==6 delegation (same url, i%3==0);
			// the i==7 one survives to the image.
			recs = append(recs, Record{Op: OpDelegates, URL: url})
		}
	}
	return recs
}

// applyAll materializes a record prefix the way replay should.
func applyAll(recs []Record) map[string]*Channel {
	state := make(map[string]*Channel)
	for _, rec := range recs {
		rec.apply(state)
	}
	return state
}

func channelsEqual(t *testing.T, got map[string]*Channel, want map[string]*Channel, context string) {
	t.Helper()
	gs, ws := imageSlice(got), imageSlice(want)
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d channels, want %d", context, len(gs), len(ws))
	}
	for i := range gs {
		g, w := gs[i], ws[i]
		if g.URL != w.URL || g.Owner != w.Owner || g.Replica != w.Replica ||
			g.Level != w.Level || g.Epoch != w.Epoch || g.OwnerEpoch != w.OwnerEpoch ||
			g.Version != w.Version ||
			g.Count != w.Count || g.SizeBytes != w.SizeBytes || g.IntervalSec != w.IntervalSec ||
			len(g.Subs) != len(w.Subs) || len(g.Leases) != len(w.Leases) ||
			len(g.Delegates) != len(w.Delegates) {
			t.Fatalf("%s: channel %d:\n got  %+v\n want %+v", context, i, g, w)
		}
		for j := range g.Subs {
			if g.Subs[j] != w.Subs[j] {
				t.Fatalf("%s: channel %s sub %d differs", context, g.URL, j)
			}
		}
		for j := range g.Leases {
			if g.Leases[j] != w.Leases[j] {
				t.Fatalf("%s: channel %s lease %d differs", context, g.URL, j)
			}
		}
		for j := range g.Delegates {
			if g.Delegates[j] != w.Delegates[j] {
				t.Fatalf("%s: channel %s delegate %d differs", context, g.URL, j)
			}
		}
	}
}

// TestReplayTruncationAtEveryByte is the core robustness property: a WAL
// cut at any byte replays exactly the records whose frames fit before
// the cut — everything before the damage, nothing after, no panic.
func TestReplayTruncationAtEveryByte(t *testing.T) {
	recs := testRecords()
	buf, frameEnds := buildWAL(recs)
	dir := t.TempDir()
	path := walPath(dir, 1)
	for cut := 0; cut <= len(buf); cut++ {
		if err := os.WriteFile(path, buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		state := make(map[string]*Channel)
		n := replayWAL(path, state)
		wantRecords := 0
		for _, end := range frameEnds {
			if end <= cut {
				wantRecords++
			}
		}
		if n != wantRecords {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, n, wantRecords)
		}
		channelsEqual(t, state, applyAll(recs[:wantRecords]), fmt.Sprintf("cut at %d", cut))
	}
}

// TestReplayCRCCorruptionStopsAtDamage flips each byte of one frame in
// turn: replay must keep every frame before the damaged one and discard
// the rest.
func TestReplayCRCCorruptionStopsAtDamage(t *testing.T) {
	recs := testRecords()
	buf, frameEnds := buildWAL(recs)
	dir := t.TempDir()
	path := walPath(dir, 1)
	damagedFrame := len(recs) / 2
	frameStart := frameEnds[damagedFrame-1]
	for off := frameStart; off < frameEnds[damagedFrame]; off++ {
		corrupted := append([]byte(nil), buf...)
		corrupted[off] ^= 0x5a
		if err := os.WriteFile(path, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		state := make(map[string]*Channel)
		n := replayWAL(path, state)
		// Flipping a length byte may make the frame claim a longer (still
		// in-bounds) payload whose CRC then fails, or run past the end;
		// either way nothing at or after the damaged frame may apply.
		if n > damagedFrame {
			t.Fatalf("corrupt byte %d: replayed %d records past damage at frame %d", off, n, damagedFrame)
		}
		if n == damagedFrame {
			channelsEqual(t, state, applyAll(recs[:damagedFrame]), fmt.Sprintf("corrupt byte %d", off))
		}
	}
}

// TestReplayTornFinalRecord pins the common crash artifact by name: a
// final frame whose payload was cut mid-write recovers every earlier
// record.
func TestReplayTornFinalRecord(t *testing.T) {
	recs := testRecords()
	buf, frameEnds := buildWAL(recs)
	dir := t.TempDir()
	path := walPath(dir, 1)
	// Keep all but the last frame intact, then half of the last frame.
	lastStart := frameEnds[len(frameEnds)-2]
	torn := buf[:lastStart+(len(buf)-lastStart)/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	state := make(map[string]*Channel)
	if n := replayWAL(path, state); n != len(recs)-1 {
		t.Fatalf("torn final record: replayed %d, want %d", n, len(recs)-1)
	}
	channelsEqual(t, state, applyAll(recs[:len(recs)-1]), "torn final record")
}

// TestReplayHostileLength rejects a frame whose length prefix claims
// more than MaxRecordBytes or more than the file holds.
func TestReplayHostileLength(t *testing.T) {
	dir := t.TempDir()
	path := walPath(dir, 1)
	valid := appendFrame(appendWALHeader(nil, 1), appendRecord(nil, subscribeRec("http://a", 1)))
	for _, hostile := range []uint32{MaxRecordBytes + 1, 1 << 31, 0xffffffff} {
		buf := append([]byte(nil), valid...)
		buf = binary.LittleEndian.AppendUint32(buf, hostile)
		buf = binary.LittleEndian.AppendUint32(buf, 0xdeadbeef)
		buf = append(buf, make([]byte, 64)...) // some payload bytes, far short of the claim
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		state := make(map[string]*Channel)
		if n := replayWAL(path, state); n != 1 {
			t.Fatalf("hostile length %d: replayed %d records, want 1", hostile, n)
		}
	}
}

// TestReplayBadHeader ignores files that are not WALs.
func TestReplayBadHeader(t *testing.T) {
	dir := t.TempDir()
	path := walPath(dir, 1)
	for _, junk := range [][]byte{nil, []byte("x"), []byte("CORSNP1\n"), []byte("CORWAL1"), make([]byte, 200)} {
		if err := os.WriteFile(path, junk, 0o644); err != nil {
			t.Fatal(err)
		}
		state := make(map[string]*Channel)
		if n := replayWAL(path, state); n != 0 || len(state) != 0 {
			t.Fatalf("junk header %q replayed %d records", junk, n)
		}
	}
}

// TestOpenNeverFailsOnDamage drives the full recovery path over a
// damaged directory: any WAL damage yields a working store with the
// intact prefix.
func TestOpenNeverFailsOnDamage(t *testing.T) {
	recs := testRecords()
	buf, _ := buildWAL(recs)
	for _, cut := range []int{0, 1, len(buf) / 3, len(buf) - 3, len(buf)} {
		dir := t.TempDir()
		if err := os.WriteFile(walPath(dir, 1), buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, _, err := Open(Options{Dir: dir, CommitWindow: time.Hour})
		if err != nil {
			t.Fatalf("cut %d: Open failed: %v", cut, err)
		}
		s.Close()
	}
}

// FuzzReplayWAL feeds arbitrary bytes to the replay path: it must never
// panic and never report more records than the buffer could hold.
func FuzzReplayWAL(f *testing.F) {
	full, _ := buildWAL(testRecords())
	f.Add(full)
	f.Add(full[:len(full)-5])
	f.Add(appendWALHeader(nil, 0))
	f.Add([]byte("CORWAL1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := walPath(dir, 1)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		state := make(map[string]*Channel)
		n := replayWAL(path, state)
		if n < 0 || n > len(data) {
			t.Fatalf("replayed %d records from %d bytes", n, len(data))
		}
	})
}

// FuzzDecodeRecord throws arbitrary bytes at the record decoder: no
// panics, and anything accepted must re-encode byte-stably (the same
// contract the wire payloads honor).
func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range testRecords() {
		f.Add(appendRecord(nil, rec))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(OpMeta)})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecord(data)
		if err != nil {
			return
		}
		b1 := appendRecord(nil, rec)
		rec2, err := decodeRecord(b1)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		b2 := appendRecord(nil, rec2)
		if string(b1) != string(b2) {
			t.Fatal("record encoding not byte-stable")
		}
	})
}

// encodeSnapshotV1 renders a snapshot in the pre-owner-epoch v1 format,
// for the backward-compatibility decode test.
func encodeSnapshotV1(gen uint64, channels []Channel) []byte {
	body := binary.AppendUvarint(nil, gen)
	body = binary.AppendUvarint(body, uint64(len(channels)))
	for _, ch := range channels {
		body = wirebin.AppendString(body, ch.URL)
		var flags byte
		if ch.Owner {
			flags |= metaOwner
		}
		if ch.Replica {
			flags |= metaReplica
		}
		body = append(body, flags)
		body = wirebin.AppendSint(body, ch.Level)
		body = wirebin.AppendUvarint(body, ch.Epoch)
		body = wirebin.AppendUvarint(body, ch.Version)
		body = wirebin.AppendSint(body, ch.Count)
		body = wirebin.AppendSint(body, ch.SizeBytes)
		body = wirebin.AppendFloat64(body, ch.IntervalSec)
		body = binary.AppendUvarint(body, uint64(len(ch.Subs)))
		for _, s := range ch.Subs {
			body = appendSub(body, s)
		}
	}
	out := append([]byte(nil), snapMagicV1...)
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, castagnoli))
}

// encodeSnapshotV2 renders a snapshot in the pre-delegate v2 format (the
// v1 fields plus owner epoch and lease marks), for the second
// backward-compatibility decode test.
func encodeSnapshotV2(gen uint64, channels []Channel) []byte {
	body := binary.AppendUvarint(nil, gen)
	body = binary.AppendUvarint(body, uint64(len(channels)))
	for _, ch := range channels {
		body = wirebin.AppendString(body, ch.URL)
		var flags byte
		if ch.Owner {
			flags |= metaOwner
		}
		if ch.Replica {
			flags |= metaReplica
		}
		body = append(body, flags)
		body = wirebin.AppendSint(body, ch.Level)
		body = wirebin.AppendUvarint(body, ch.Epoch)
		body = wirebin.AppendUvarint(body, ch.Version)
		body = wirebin.AppendSint(body, ch.Count)
		body = wirebin.AppendSint(body, ch.SizeBytes)
		body = wirebin.AppendFloat64(body, ch.IntervalSec)
		body = binary.AppendUvarint(body, uint64(len(ch.Subs)))
		for _, s := range ch.Subs {
			body = appendSub(body, s)
		}
		body = wirebin.AppendUvarint(body, ch.OwnerEpoch)
		body = wirebin.AppendUvarint(body, uint64(len(ch.Leases)))
		for _, l := range ch.Leases {
			body = wirebin.AppendString(body, l.Client)
			body = wirebin.AppendUvarint(body, uint64(l.UnixNano))
		}
	}
	out := append([]byte(nil), snapMagicV2...)
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, castagnoli))
}

// TestDecodeSnapshotV2Fallback pins the second format migration: a
// snapshot written before the delegate roster (magic CORSNP2) still
// decodes losslessly, with the roster empty.
func TestDecodeSnapshotV2Fallback(t *testing.T) {
	state := applyAll(testRecords())
	want := imageSlice(state)
	for i := range want {
		want[i].Delegates = nil
	}
	gen, got, err := decodeSnapshot(encodeSnapshotV2(9, want))
	if err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
	if gen != 9 || len(got) != len(want) {
		t.Fatalf("v2 snapshot decoded gen=%d channels=%d, want 9/%d", gen, len(got), len(want))
	}
	gm, wm := make(map[string]*Channel), make(map[string]*Channel)
	for i := range got {
		gm[got[i].URL] = &got[i]
	}
	for i := range want {
		wm[want[i].URL] = &want[i]
	}
	channelsEqual(t, gm, wm, "v2 fallback")
}

// TestDecodeSnapshotV1Fallback pins the format migration: a snapshot
// written before the owner-epoch and lease fields (magic CORSNP1) still
// decodes losslessly, with the new fields zero-valued.
func TestDecodeSnapshotV1Fallback(t *testing.T) {
	state := applyAll(testRecords())
	want := imageSlice(state)
	for i := range want {
		want[i].OwnerEpoch = 0
		want[i].Leases = nil
		want[i].Delegates = nil
	}
	gen, got, err := decodeSnapshot(encodeSnapshotV1(7, want))
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if gen != 7 || len(got) != len(want) {
		t.Fatalf("v1 snapshot decoded gen=%d channels=%d, want 7/%d", gen, len(got), len(want))
	}
	gm, wm := make(map[string]*Channel), make(map[string]*Channel)
	for i := range got {
		gm[got[i].URL] = &got[i]
	}
	for i := range want {
		wm[want[i].URL] = &want[i]
	}
	channelsEqual(t, gm, wm, "v1 fallback")
}

// FuzzDecodeSnapshot exercises snapshot validation with arbitrary bytes.
func FuzzDecodeSnapshot(f *testing.F) {
	state := applyAll(testRecords())
	f.Add(encodeSnapshot(3, imageSlice(state)))
	f.Add(encodeSnapshotV2(3, imageSlice(state)))
	f.Add(encodeSnapshotV1(3, imageSlice(state)))
	f.Add([]byte("CORSNP1\n"))
	f.Add([]byte("CORSNP2\n"))
	f.Add([]byte("CORSNP3\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		gen, channels, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		// Accepted snapshots must re-encode to an equally valid file.
		re := encodeSnapshot(gen, channels)
		if _, _, err := decodeSnapshot(re); err != nil {
			t.Fatalf("re-encode of accepted snapshot rejected: %v", err)
		}
	})
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Options configures a Store.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// CommitWindow is the group-commit window: appended records become
	// durable within this much time, amortizing one fsync across every
	// record that arrives inside the window. Zero means the 2ms default;
	// negative commits synchronously on every append (tests, paranoia).
	CommitWindow time.Duration
	// CompactEvery triggers snapshot compaction after this many WAL
	// records. Zero means the 8192 default.
	CompactEvery int
}

const (
	defaultCommitWindow = 2 * time.Millisecond
	defaultCompactEvery = 8192
)

func (o Options) withDefaults() Options {
	if o.CommitWindow == 0 {
		o.CommitWindow = defaultCommitWindow
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = defaultCompactEvery
	}
	return o
}

// Store is a durable channel-state store: a group-committed WAL in front
// of snapshot compaction, with the materialized image kept in memory.
// All methods are safe for concurrent use.
type Store struct {
	opts Options

	lock *os.File // flock on Dir/LOCK, held for the store's lifetime

	mu         sync.Mutex
	rotated    sync.Cond // broadcast when a compaction's rotation finishes
	state      map[string]*Channel
	wal        *walFile
	gen        uint64
	pending    []byte // encoded frames awaiting the next group commit
	walRecords int    // records in the current WAL (compaction trigger)
	flushTimer *time.Timer
	compacting bool
	rotating   bool // compaction file IO in flight; commits pause
	closed     bool
	err        error // first IO error, latched

	commitLat    [len(CommitLatencyBounds) + 1]uint64
	commitLatSum time.Duration
}

// CommitLatencyBounds are the fixed bucket upper bounds of the commit
// latency histogram in Stats.CommitLatency: bucket i counts commits that
// took at most CommitLatencyBounds[i]; the final extra bucket counts the
// overflow. A commit here is one group-commit flush — the write+fsync a
// batch of appended records waits on before it is durable — so the
// histogram is the store's answer to "what does durability cost on this
// disk", with tail buckets exposing fsync stalls that averages hide.
var CommitLatencyBounds = [...]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
}

// Open recovers the directory's durable state (newest valid snapshot
// plus every intact WAL record), compacts it into a fresh generation,
// and returns the store plus the recovered channel images.
func Open(opts Options) (*Store, []Channel, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("store: Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	// Exclusive directory lock: a second store on the same directory
	// would compact over this one's live WAL and silently discard its
	// commits. Fail fast instead.
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{opts: opts, lock: lock, state: make(map[string]*Channel)}
	s.rotated.L = &s.mu

	snaps, wals, maxGen := scanDir(opts.Dir)
	// Newest valid snapshot wins; damaged ones fall back a generation.
	for i := len(snaps) - 1; i >= 0; i-- {
		buf, err := os.ReadFile(snapPath(opts.Dir, snaps[i]))
		if err != nil {
			continue
		}
		_, channels, err := decodeSnapshot(buf)
		if err != nil {
			continue
		}
		for _, ch := range channels {
			c := ch
			s.state[c.URL] = &c
		}
		break
	}
	// Replay every log ascending; records are idempotent so overlap with
	// the snapshot (crash during compaction) is harmless.
	for _, gen := range wals {
		replayWAL(walPath(opts.Dir, gen), s.state)
	}
	recovered := imageSlice(s.state)

	// Compact immediately: recovery lands in a single fresh generation
	// and any crash leftovers are swept.
	s.gen = maxGen + 1
	if err := writeSnapshot(opts.Dir, s.gen, recovered); err != nil {
		lock.Close()
		return nil, nil, err
	}
	wal, err := createWAL(walPath(opts.Dir, s.gen), s.gen)
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	s.wal = wal
	if err := syncDir(opts.Dir); err != nil {
		wal.close()
		lock.Close()
		return nil, nil, err
	}
	sweepExcept(opts.Dir, s.gen)
	return s, recovered, nil
}

// scanDir lists the directory's snapshot and WAL generations (each
// ascending) and the highest generation seen, removing stale temp files.
func scanDir(dir string) (snaps, wals []uint64, maxGen uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // stale snapshot temp
			continue
		}
		if gen, ok := genOf(name, "snap-"); ok {
			snaps = append(snaps, gen)
			if gen > maxGen {
				maxGen = gen
			}
		}
		if gen, ok := genOf(name, "wal-"); ok {
			wals = append(wals, gen)
			if gen > maxGen {
				maxGen = gen
			}
		}
	}
	return snaps, wals, maxGen
}

// genOf parses "<prefix><16-digit-gen>" names.
func genOf(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimPrefix(name, prefix), 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// sweepExcept deletes every snapshot and WAL not of generation keep.
func sweepExcept(dir string, keep uint64) {
	snaps, wals, _ := scanDir(dir)
	for _, gen := range snaps {
		if gen != keep {
			os.Remove(snapPath(dir, gen))
		}
	}
	for _, gen := range wals {
		if gen != keep {
			os.Remove(walPath(dir, gen))
		}
	}
}

// StateChanged implements Sink by appending the record.
func (s *Store) StateChanged(rec Record) { s.Append(rec) }

// maxSubsPerRecord caps the subscriber list one WAL record carries;
// bigger replacements are split so no frame approaches MaxRecordBytes.
const maxSubsPerRecord = 8192

// Append logs one record. The call is asynchronous: it materializes the
// change in memory, queues the frame, and returns; durability follows
// within the commit window (or immediately when the window is negative).
func (s *Store) Append(rec Record) {
	if rec.Op == OpMeta && rec.ReplaceSubs && len(rec.Subs) > maxSubsPerRecord {
		// Split a huge subscriber replacement: the capped OpMeta replaces
		// the set, OpSubsChunk records top it up. Each piece stays far
		// below the replay-side frame limit.
		head := rec
		head.Subs = rec.Subs[:maxSubsPerRecord]
		s.Append(head)
		for rest := rec.Subs[maxSubsPerRecord:]; len(rest) > 0; {
			n := min(maxSubsPerRecord, len(rest))
			s.Append(Record{Op: OpSubsChunk, URL: rec.URL, Subs: rest[:n]})
			rest = rest[n:]
		}
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	rec.apply(s.state)
	s.pending = appendFrame(s.pending, appendRecord(nil, rec))
	s.walRecords++
	syncNow := s.opts.CommitWindow < 0
	if !syncNow && s.flushTimer == nil {
		s.flushTimer = time.AfterFunc(s.opts.CommitWindow, s.flushWindow)
	}
	compactNow := s.walRecords >= s.opts.CompactEvery && !s.compacting
	if compactNow {
		s.compacting = true
	}
	if syncNow {
		s.commitLocked()
	}
	s.mu.Unlock()
	if compactNow {
		go s.compact()
	}
}

// flushWindow is the group-commit timer callback.
func (s *Store) flushWindow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushTimer = nil
	if s.closed {
		return
	}
	s.commitLocked()
}

// commitLocked writes and fsyncs all pending frames. Callers hold mu.
// While a compaction's file IO is in flight the commit is deferred —
// frames written to the outgoing WAL after the snapshot image was taken
// would be deleted with it — and the rotation's completion flushes the
// accumulated buffer into the new log.
func (s *Store) commitLocked() {
	if len(s.pending) == 0 || s.wal == nil || s.rotating {
		return
	}
	frames := s.pending
	s.pending = nil
	t0 := time.Now()
	err := s.wal.commit(frames)
	elapsed := time.Since(t0)
	bucket := len(CommitLatencyBounds)
	for i, bound := range CommitLatencyBounds {
		if elapsed <= bound {
			bucket = i
			break
		}
	}
	s.commitLat[bucket]++
	s.commitLatSum += elapsed
	if err != nil && s.err == nil {
		s.err = err
	}
}

// Sync forces an immediate group commit (waiting out any in-flight
// compaction rotation) and reports the store's latched IO error state.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.rotating && !s.closed {
		s.rotated.Wait()
	}
	if s.closed {
		return s.err
	}
	s.commitLocked()
	return s.err
}

// compact flushes the current WAL, writes the materialized image as the
// next generation's snapshot, rotates to a fresh WAL, and deletes the old
// generation's files. All file IO runs outside the store lock — appends
// keep materializing and buffering throughout — with commits paused so
// nothing lands in the doomed old log.
func (s *Store) compact() {
	s.mu.Lock()
	if s.closed || s.rotating {
		s.compacting = false
		s.mu.Unlock()
		return
	}
	s.commitLocked() // the old WAL now holds everything in the image
	image := imageSlice(s.state)
	oldGen, newGen := s.gen, s.gen+1
	oldWAL := s.wal
	s.rotating = true
	s.mu.Unlock()

	wal := (*walFile)(nil)
	err := writeSnapshot(s.opts.Dir, newGen, image)
	if err == nil {
		if wal, err = createWAL(walPath(s.opts.Dir, newGen), newGen); err != nil {
			os.Remove(snapPath(s.opts.Dir, newGen))
		}
	}
	if err == nil {
		if derr := syncDir(s.opts.Dir); derr != nil {
			err = derr
			wal.close()
			wal = nil
			os.Remove(walPath(s.opts.Dir, newGen))
			os.Remove(snapPath(s.opts.Dir, newGen))
		}
	}

	s.mu.Lock()
	s.rotating = false
	s.compacting = false
	if s.closed {
		// Abort raced the rotation; leftover new-generation files are
		// harmless (recovery replays idempotently and re-sweeps).
		if wal != nil {
			wal.close()
		}
		s.rotated.Broadcast()
		s.mu.Unlock()
		return
	}
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		// Back off: the records stay replayable in the old WAL; retry
		// only after another CompactEvery records, not on every append.
		s.walRecords = 0
		s.commitLocked()
		s.rotated.Broadcast()
		s.mu.Unlock()
		return
	}
	oldWAL.close()
	s.wal = wal
	s.gen = newGen
	s.walRecords = 0
	s.commitLocked() // records buffered during rotation land in the new log
	s.rotated.Broadcast()
	s.mu.Unlock()
	os.Remove(walPath(s.opts.Dir, oldGen))
	os.Remove(snapPath(s.opts.Dir, oldGen))
}

// Compact runs one compaction synchronously (exposed for tests and for
// operators wanting a bounded-replay shutdown).
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.compacting || s.closed {
		err := s.err
		s.mu.Unlock()
		return err
	}
	s.compacting = true
	s.mu.Unlock()
	s.compact()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Err returns the first IO error the store hit, if any. The in-memory
// image stays correct past an IO error; durability is what degraded.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// InjectIOError latches err as if a commit had failed, if no error is
// latched yet. It exists for tests and operational drills that need to
// see the degraded-durability path — /readyz flipping to 503 — without
// arranging a real disk fault.
func (s *Store) InjectIOError(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// Stats is an operator-facing snapshot of the store's durability state.
type Stats struct {
	// Generation is the current snapshot/WAL generation.
	Generation uint64
	// WALBytes is the current write-ahead log's size on disk, header
	// included (pending uncommitted frames are not yet counted).
	WALBytes int64
	// RecordsSinceSnapshot counts records appended since the last
	// compaction — what a restart right now would have to replay.
	RecordsSinceSnapshot int
	// Channels is the materialized image's channel count.
	Channels int
	// CommitLatency is the fixed-bucket histogram of group-commit
	// (write+fsync) latencies: CommitLatency[i] counts commits within
	// CommitLatencyBounds[i], the last element the overflow.
	CommitLatency [len(CommitLatencyBounds) + 1]uint64
	// CommitLatencySum is the total time spent in group commits — with
	// the bucket counts it gives the histogram an honest _sum in
	// Prometheus exposition instead of a bucket-midpoint estimate.
	CommitLatencySum time.Duration
	// Err is the latched first IO error, nil while durability is intact.
	Err error
}

// Stats snapshots the store's durability state for observability:
// WAL growth, replay debt since the last snapshot, and the latched IO
// error an operator must see before trusting a restart.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Generation:           s.gen,
		RecordsSinceSnapshot: s.walRecords,
		Channels:             len(s.state),
		CommitLatency:        s.commitLat,
		CommitLatencySum:     s.commitLatSum,
		Err:                  s.err,
	}
	if s.wal != nil {
		st.WALBytes = s.wal.bytes
	}
	return st
}

// Channels returns a copy of the current materialized image (tests,
// introspection).
func (s *Store) Channels() []Channel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return imageSlice(s.state)
}

// Close flushes pending records and closes the log. An in-flight
// compaction rotation is waited out first so the final flush lands in a
// log that survives.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.rotating && !s.closed {
		s.rotated.Wait()
	}
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.flushTimer != nil {
		s.flushTimer.Stop()
		s.flushTimer = nil
	}
	s.commitLocked()
	if s.wal != nil {
		if err := s.wal.close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	if s.lock != nil {
		s.lock.Close()
	}
	return s.err
}

// Abort closes the store without flushing the pending buffer, simulating
// a crash that loses everything inside the current commit window. Tests
// of the recovery path use it; production shutdown uses Close.
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.flushTimer != nil {
		s.flushTimer.Stop()
		s.flushTimer = nil
	}
	s.pending = nil
	if s.wal != nil {
		s.wal.close()
	}
	if s.lock != nil {
		s.lock.Close()
	}
}

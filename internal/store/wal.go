package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// walMagic and snapMagic open every WAL and snapshot file; a file whose
// first eight bytes differ is ignored by recovery. Older snapshots are
// still readable by their magic (see decodeSnapshot): v1 predates the
// owner-epoch/lease fields, v2 the delegate roster. New snapshots always
// use the v3 form.
const (
	walMagic    = "CORWAL1\n"
	snapMagic   = "CORSNP3\n"
	snapMagicV2 = "CORSNP2\n"
	snapMagicV1 = "CORSNP1\n"
)

// MaxRecordBytes bounds one WAL frame payload. A length prefix beyond it
// is treated as corruption and ends replay; legitimate records (a channel
// meta with a full subscriber set) stay far below it.
const MaxRecordBytes = 16 << 20

// castagnoli is the CRC-32C table shared by WAL frames and snapshots.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderLen is the fixed per-frame prefix: u32 length + u32 CRC.
const frameHeaderLen = 8

// appendFrame wraps one encoded record payload in the WAL frame format.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// appendWALHeader writes the file header of a generation-gen WAL.
func appendWALHeader(dst []byte, gen uint64) []byte {
	dst = append(dst, walMagic...)
	return binary.AppendUvarint(dst, gen)
}

// walFile is an open, append-only log.
type walFile struct {
	f     *os.File
	path  string
	gen   uint64
	bytes int64 // file size, header included (observability)
}

// createWAL creates (truncating any leftover) the generation-gen log and
// durably writes its header.
func createWAL(path string, gen uint64) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	header := appendWALHeader(nil, gen)
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &walFile{f: f, path: path, gen: gen, bytes: int64(len(header))}, nil
}

// commit appends buffered frames and fsyncs — one group commit.
func (w *walFile) commit(frames []byte) error {
	if len(frames) == 0 {
		return nil
	}
	n, err := w.f.Write(frames)
	w.bytes += int64(n)
	if err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	return nil
}

func (w *walFile) close() error { return w.f.Close() }

// replayWAL reads a log file and applies every intact record to state.
// Damage — a bad header, a torn or corrupt frame — ends replay at the
// last intact record without error: recovering the prefix is the contract
// (doc.go). It returns how many records were applied.
func replayWAL(path string, state map[string]*Channel) (records int) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	if len(buf) < len(walMagic) || string(buf[:len(walMagic)]) != walMagic {
		return 0
	}
	buf = buf[len(walMagic):]
	_, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0
	}
	buf = buf[n:]
	for len(buf) >= frameHeaderLen {
		length := binary.LittleEndian.Uint32(buf[0:4])
		sum := binary.LittleEndian.Uint32(buf[4:8])
		if length > MaxRecordBytes || uint64(length) > uint64(len(buf)-frameHeaderLen) {
			return records // torn or hostile final frame
		}
		payload := buf[frameHeaderLen : frameHeaderLen+int(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return records // corruption; everything after is suspect
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return records // framed but malformed: same treatment
		}
		rec.apply(state)
		records++
		buf = buf[frameHeaderLen+int(length):]
	}
	return records
}

// Package store persists a Corona node's authoritative channel state —
// subscriber sets, ownership and level assignments, version progress and
// tradeoff bookkeeping — so a restarted node recovers the subscriptions
// it owes its clients instead of silently dropping them. The paper's §3.5
// replication masks *other* nodes' failures; this package masks a node's
// own restart.
//
// The design is a classic write-ahead log with snapshot compaction. Every
// state mutation in internal/core emits a Record through the Sink
// interface; the store applies it to an in-memory materialized image and
// appends it to the log. Appends are asynchronous: frames accumulate in a
// buffer that a group-commit flusher writes and fsyncs at most once per
// CommitWindow, so durability costs one fsync per window rather than one
// per mutation. After CompactEvery records the store writes the
// materialized image as a snapshot and starts a fresh log.
//
// # On-disk layout
//
// A data directory holds at most one active log and one snapshot, named
// by generation, plus a lock file:
//
//	wal-<gen>     append-only record log
//	snap-<gen>    materialized channel image at the moment wal-<gen> began
//	LOCK          exclusive flock held for the store's lifetime; a second
//	              Open on a live directory fails instead of compacting
//	              over the first store's log
//
// Compaction from generation G: flush wal-G, write snap-(G+1) via
// temp-file + rename, create wal-(G+1), fsync the directory, then delete
// wal-G and snap-G. A crash between any two steps leaves a recoverable
// directory because records are idempotent upserts (see below).
//
// # WAL format
//
// A WAL file is a header followed by frames:
//
//	header := magic "CORWAL1\n" | gen uvarint
//	frame  := length uint32le | crc uint32le | payload
//
// crc is CRC-32C (Castagnoli) over the payload. Replay stops — without
// error — at the first frame whose length overruns the file, exceeds
// MaxRecordBytes, or whose CRC mismatches: everything before the damage
// is recovered, the damaged tail is discarded. A torn final frame (the
// common crash artifact) therefore costs at most the records inside the
// last unflushed commit window.
//
// # Record payload format
//
// All integers are wirebin varints (uvarint, or zigzag sint where
// negative values are legal), strings are length-prefixed, floats are
// fixed 8-byte little-endian IEEE 754:
//
//	record   := op byte | url string | body
//	OpSubscribe   body := client string | entryID [20]byte | entryEndpoint string
//	OpUnsubscribe body := client string
//	OpMeta        body := flags byte | level sint | epoch uvarint |
//	                      version uvarint | count sint | sizeBytes sint |
//	                      intervalSec float64 |
//	                      [ nsubs uvarint | (client,entryID,entryEndpoint)... ]
//	OpVersion     body := version uvarint
//	OpSubsChunk   body := nsubs uvarint | (client,entryID,entryEndpoint)...
//	OpOwnerEpoch  body := ownerEpoch uvarint
//	OpLease       body := client string | unixNano uvarint
//	OpDelegates   body := ndelegates uvarint | (id [20]byte, endpoint string)...
//
// OpMeta flags: bit0 owner, bit1 replica, bit2 subs-present (the
// subscriber list follows and replaces the durable set wholesale — the
// shape replication pushes arrive in). A replacement of more than 8192
// subscribers is split at append time into one capped OpMeta followed by
// OpSubsChunk upserts, so a channel of any size stays far below
// MaxRecordBytes and can always decode its own durable state.
//
// Records are idempotent upserts: OpSubscribe/OpUnsubscribe/OpSubsChunk
// set or delete keys in the subscriber set, OpMeta is last-writer-wins,
// OpVersion and OpOwnerEpoch are monotonic (max), OpLease upserts one
// lease mark (an OpUnsubscribe or a subscriber replacement drops the
// marks of departed clients), OpDelegates replaces the delegate roster
// wholesale. Re-applying any suffix of history that ends at a snapshot
// point reproduces the snapshot exactly, which is what makes the crash
// windows around compaction safe to replay.
//
// OpOwnerEpoch journals the ownership fencing epoch the owner-epoch
// handshake compares (internal/core: exactly one owner survives a
// restart merge). OpLease journals which subscribers live under
// entry-node lease discipline; the timestamp is advisory — recovery
// grants every restored lease a fresh grace window rather than trusting
// a pre-crash clock, so the mark's payload is membership, not time. An
// OpLease whose unixNano is zero is a lease clear and removes the mark
// (the owner re-routed a dead entry and gave up on its heartbeats).
//
// OpDelegates journals a hot channel's fan-out delegate roster — the
// overlay addresses of the nodes the owner recruited to shard
// notification dissemination once the subscriber count crossed the
// delegation threshold (internal/core). Only the roster is durable: the
// per-delegate partitions are a pure function of the subscriber set and
// the roster, so a restarted owner re-derives and re-pushes them instead
// of replaying every partition push from the log. An empty list clears
// the roster (the channel cooled below the threshold or lost ownership).
//
// # Snapshot format
//
//	snapshot := magic "CORSNP3\n" | body | crc uint32le
//	body     := gen uvarint | nchannels uvarint | channel...
//	channel  := url string | flags byte (bit0 owner, bit1 replica) |
//	            level sint | epoch uvarint | version uvarint |
//	            count sint | sizeBytes sint | intervalSec float64 |
//	            nsubs uvarint | (client,entryID,entryEndpoint)... |
//	            ownerEpoch uvarint |
//	            nleases uvarint | (client string, unixNano uvarint)... |
//	            ndelegates uvarint | (id [20]byte, endpoint string)...
//
// crc is CRC-32C over body. A snapshot that fails its magic, CRC, or
// decode is ignored and recovery falls back to the previous generation
// (if its files survive) or to an empty image plus whatever WALs exist.
// The previous formats are still decoded — "CORSNP2\n" predates the
// delegate roster, "CORSNP1\n" additionally predates ownerEpoch and
// leases; fields a version predates recover zero-valued — and the
// post-recovery compaction rewrites the directory in the v3 form.
//
// # Recovery
//
// Open loads the newest valid snapshot, replays every WAL file in
// ascending generation order on top of it (idempotence makes overlap
// harmless), then immediately compacts into a fresh generation, deleting
// all older files. Recovery is therefore also self-healing: any garbage a
// crash left behind is gone after the first successful Open.
package store

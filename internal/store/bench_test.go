package store

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// populate writes count channels (one meta record and two subscribers
// each) through the store, leaving the history split across snapshot and
// WAL exactly as a long-lived node would.
func populate(b *testing.B, s *Store, count int) {
	b.Helper()
	for i := 0; i < count; i++ {
		url := fmt.Sprintf("http://bench.example.net/feed/%d.xml", i)
		s.Append(Record{
			Op: OpMeta, URL: url, Owner: true, Level: 3, Epoch: 2,
			Version: uint64(i), Count: 0, SizeBytes: 4096, IntervalSec: 1800,
		})
		s.Append(subscribeRec(url, 2*i))
		s.Append(subscribeRec(url, 2*i+1))
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreAppend measures group-committed append throughput: the
// hot write path a busy owner drives on every subscription change and
// version advance.
func BenchmarkStoreAppend(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(Options{Dir: dir, CommitWindow: defaultCommitWindow})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Spread across many channels so the materialized image matches a
	// real owner (many channels, small subscriber sets each).
	rec := subscribeRec("http://bench.example.net/feed/0.xml", 0)
	frameLen := len(appendFrame(nil, appendRecord(nil, rec)))
	b.SetBytes(int64(frameLen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := subscribeRec(fmt.Sprintf("http://bench.example.net/feed/%d.xml", i%4096), i%64)
		s.Append(rec)
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreReplayWAL measures pure log replay: applying every
// intact record of an n-channel WAL to an empty image. This is the
// dominant term of a restart that crashed before its first compaction.
func BenchmarkStoreReplayWAL(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("channels=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			s, _, err := Open(Options{Dir: dir, CommitWindow: time.Hour, CompactEvery: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			populate(b, s, n)
			path := walPath(dir, s.gen)
			s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				state := make(map[string]*Channel)
				if got := replayWAL(path, state); got != 3*n {
					b.Fatalf("replayed %d records, want %d", got, 3*n)
				}
			}
		})
	}
}

// BenchmarkStoreReplaySnapshot measures loading a compacted n-channel
// image: the dominant term of a clean restart.
func BenchmarkStoreReplaySnapshot(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("channels=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			s, _, err := Open(Options{Dir: dir, CommitWindow: time.Hour, CompactEvery: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			populate(b, s, n)
			if err := s.Compact(); err != nil {
				b.Fatal(err)
			}
			path := snapPath(dir, s.gen)
			s.Close()
			buf, err := os.ReadFile(path)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, channels, err := decodeSnapshot(buf); err != nil || len(channels) != n {
					b.Fatalf("decode: %d channels, err=%v", len(channels), err)
				}
			}
		})
	}
}

// BenchmarkStoreOpen measures the full restart path — scan, snapshot
// load, WAL replay, compaction into a fresh generation — over a
// 10k-channel directory whose history is split between a snapshot and a
// live WAL tail, the acceptance shape for restart-rejoin.
func BenchmarkStoreOpen(b *testing.B) {
	const n = 10000
	dir := b.TempDir()
	s, _, err := Open(Options{Dir: dir, CommitWindow: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	// Default CompactEvery (8192) puts ~8k records in the snapshot and
	// the rest in the WAL tail.
	populate(b, s, n)
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, recovered, err := Open(Options{Dir: dir, CommitWindow: time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		if len(recovered) != n {
			b.Fatalf("recovered %d channels, want %d", len(recovered), n)
		}
		s.Close()
	}
}

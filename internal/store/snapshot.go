package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"corona/internal/wirebin"
)

// appendChannel encodes one materialized channel image (v3 shape: the v1
// fields, then the ownership fencing epoch and the lease marks added by
// v2, then the delegate roster added by v3).
func appendChannel(dst []byte, ch Channel) []byte {
	dst = wirebin.AppendString(dst, ch.URL)
	var flags byte
	if ch.Owner {
		flags |= metaOwner
	}
	if ch.Replica {
		flags |= metaReplica
	}
	dst = append(dst, flags)
	dst = wirebin.AppendSint(dst, ch.Level)
	dst = wirebin.AppendUvarint(dst, ch.Epoch)
	dst = wirebin.AppendUvarint(dst, ch.Version)
	dst = wirebin.AppendSint(dst, ch.Count)
	dst = wirebin.AppendSint(dst, ch.SizeBytes)
	dst = wirebin.AppendFloat64(dst, ch.IntervalSec)
	dst = wirebin.AppendUvarint(dst, uint64(len(ch.Subs)))
	for _, s := range ch.Subs {
		dst = appendSub(dst, s)
	}
	dst = wirebin.AppendUvarint(dst, ch.OwnerEpoch)
	dst = wirebin.AppendUvarint(dst, uint64(len(ch.Leases)))
	for _, l := range ch.Leases {
		dst = wirebin.AppendString(dst, l.Client)
		dst = wirebin.AppendUvarint(dst, uint64(l.UnixNano))
	}
	return appendDelegates(dst, ch.Delegates)
}

// readChannel decodes one channel image at the given snapshot format
// version. v1 snapshots predate the owner epoch and lease marks, v2 the
// delegate roster; fields a version predates decode zero-valued.
func readChannel(r *wirebin.Reader, version int) Channel {
	var ch Channel
	ch.URL = r.String()
	flags := r.Byte()
	ch.Owner = flags&metaOwner != 0
	ch.Replica = flags&metaReplica != 0
	ch.Level = r.Sint()
	ch.Epoch = r.Uvarint()
	ch.Version = r.Uvarint()
	ch.Count = r.Sint()
	ch.SizeBytes = r.Sint()
	ch.IntervalSec = r.Float64()
	ch.Subs = readSubs(r)
	if version < 2 {
		return ch
	}
	ch.OwnerEpoch = r.Uvarint()
	// Each lease costs at least one client length byte and one time byte.
	n := r.ListLen(2)
	if n > 0 {
		ch.Leases = make([]Lease, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			ch.Leases = append(ch.Leases, Lease{Client: r.String(), UnixNano: int64(r.Uvarint())})
		}
	}
	if version < 3 {
		return ch
	}
	ch.Delegates = readDelegates(r)
	return ch
}

// encodeSnapshot renders the full snapshot file contents for gen.
func encodeSnapshot(gen uint64, channels []Channel) []byte {
	body := binary.AppendUvarint(nil, gen)
	body = binary.AppendUvarint(body, uint64(len(channels)))
	for _, ch := range channels {
		body = appendChannel(body, ch)
	}
	out := make([]byte, 0, len(snapMagic)+len(body)+4)
	out = append(out, snapMagic...)
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, castagnoli))
}

// decodeSnapshot parses and validates a snapshot file. Any damage —
// magic, CRC, or structure — rejects the whole file: unlike the WAL,
// a snapshot is atomic (it was written by rename) so partial recovery
// from one is never attempted. The current v3 magic and the two older
// magics are all accepted, so a directory written before the delegate
// roster (v2) or before the owner-epoch and lease records (v1) recovers
// losslessly and is rewritten as v3 by the post-recovery compaction.
// All magics are eight bytes, so the body slice below holds regardless
// of which one matched.
func decodeSnapshot(buf []byte) (gen uint64, channels []Channel, err error) {
	version := 3
	switch {
	case len(buf) >= len(snapMagic)+4 && string(buf[:len(snapMagic)]) == snapMagic:
	case len(buf) >= len(snapMagicV2)+4 && string(buf[:len(snapMagicV2)]) == snapMagicV2:
		version = 2
	case len(buf) >= len(snapMagicV1)+4 && string(buf[:len(snapMagicV1)]) == snapMagicV1:
		version = 1
	default:
		return 0, nil, fmt.Errorf("store: snapshot magic mismatch")
	}
	body := buf[len(snapMagic) : len(buf)-4]
	sum := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return 0, nil, fmt.Errorf("store: snapshot CRC mismatch")
	}
	r := wirebin.NewReader(body)
	gen = r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(len(body)) {
		return 0, nil, fmt.Errorf("store: snapshot header malformed")
	}
	channels = make([]Channel, 0, n)
	for i := uint64(0); i < n; i++ {
		channels = append(channels, readChannel(r, version))
		if r.Err() != nil {
			return 0, nil, fmt.Errorf("store: snapshot channel %d malformed: %w", i, r.Err())
		}
	}
	if r.Len() != 0 {
		return 0, nil, fmt.Errorf("store: snapshot has %d trailing bytes", r.Len())
	}
	return gen, channels, nil
}

// writeSnapshot durably writes snap-<gen> via temp file + rename + dir
// sync, so a crash leaves either the old directory state or the new one.
func writeSnapshot(dir string, gen uint64, channels []Channel) error {
	path := snapPath(dir, gen)
	tmp := path + ".tmp"
	buf := encodeSnapshot(gen, channels)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Failures are reported but non-fatal to callers on platforms
// where directories cannot be synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d", gen))
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d", gen))
}

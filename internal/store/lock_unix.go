//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive, non-blocking flock on Dir/LOCK. The lock
// lives as long as the returned file stays open (and dies with the
// process, so a crash never leaves a stale lock).
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: data dir %s is locked by another process", dir)
	}
	return f, nil
}

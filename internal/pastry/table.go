package pastry

import "corona/internal/ids"

// routingTable is the prefix routing table: entry (row i, column j) points
// to a node whose identifier shares exactly i prefix digits with this
// node's identifier and has j as its (i+1)-th digit (paper §3.1).
type routingTable struct {
	base    ids.Base
	self    ids.ID
	maxRows int
	rows    [][]Addr // lazily allocated; rows[i][j]
}

func newRoutingTable(base ids.Base, self ids.ID, maxRows int) *routingTable {
	return &routingTable{
		base:    base,
		self:    self,
		maxRows: maxRows,
		rows:    make([][]Addr, maxRows),
	}
}

func (t *routingTable) get(row, col int) Addr {
	if row < 0 || row >= t.maxRows || t.rows[row] == nil {
		return Addr{}
	}
	if col < 0 || col >= t.base.Radix() {
		return Addr{}
	}
	return t.rows[row][col]
}

// slot returns the (row, col) at which addr belongs in this table, or
// ok=false when addr cannot be placed (it is the node itself, or the
// shared prefix exceeds the table depth).
func (t *routingTable) slot(id ids.ID) (row, col int, ok bool) {
	if id == t.self {
		return 0, 0, false
	}
	row = t.base.CommonPrefix(t.self, id)
	if row >= t.maxRows {
		return 0, 0, false
	}
	col = t.base.Digit(id, row)
	return row, col, true
}

// add installs addr if its slot is empty. It reports whether the table
// changed. An occupied slot is kept: any node with the right prefix is
// equally valid (paper §3.3), and keeping the incumbent avoids churn.
func (t *routingTable) add(addr Addr) bool {
	row, col, ok := t.slot(addr.ID)
	if !ok {
		return false
	}
	if t.rows[row] == nil {
		t.rows[row] = make([]Addr, t.base.Radix())
	}
	if !t.rows[row][col].IsZero() {
		return false
	}
	t.rows[row][col] = addr
	return true
}

// replace installs addr in its slot even if occupied, returning the
// previous occupant.
func (t *routingTable) replace(addr Addr) Addr {
	row, col, ok := t.slot(addr.ID)
	if !ok {
		return Addr{}
	}
	if t.rows[row] == nil {
		t.rows[row] = make([]Addr, t.base.Radix())
	}
	prev := t.rows[row][col]
	t.rows[row][col] = addr
	return prev
}

// remove clears any slot holding the given identifier. It reports whether
// an entry was removed.
func (t *routingTable) remove(id ids.ID) bool {
	row, col, ok := t.slot(id)
	if !ok || t.rows[row] == nil {
		return false
	}
	if t.rows[row][col].ID != id {
		return false
	}
	t.rows[row][col] = Addr{}
	return true
}

// row returns the non-empty entries of row r.
func (t *routingTable) row(r int) []Addr {
	if r < 0 || r >= t.maxRows || t.rows[r] == nil {
		return nil
	}
	var out []Addr
	for _, a := range t.rows[r] {
		if !a.IsZero() {
			out = append(out, a)
		}
	}
	return out
}

// eachInRow visits every non-empty entry of row r without allocating.
func (t *routingTable) eachInRow(r int, f func(Addr)) {
	if r < 0 || r >= t.maxRows || t.rows[r] == nil {
		return
	}
	for _, a := range t.rows[r] {
		if !a.IsZero() {
			f(a)
		}
	}
}

// contactCount returns the number of non-empty entries in rows >= fromRow,
// so fan-out can size its destination buffer in one allocation.
func (t *routingTable) contactCount(fromRow int) int {
	n := 0
	for r := fromRow; r >= 0 && r < t.maxRows; r++ {
		for _, a := range t.rows[r] {
			if !a.IsZero() {
				n++
			}
		}
	}
	return n
}

// each visits every non-empty entry.
func (t *routingTable) each(f func(Addr)) {
	for _, row := range t.rows {
		for _, a := range row {
			if !a.IsZero() {
				f(a)
			}
		}
	}
}

// bestForKey returns the routing entry for key: the entry at
// (commonPrefix(self,key), nextDigit(key)).
func (t *routingTable) bestForKey(key ids.ID) Addr {
	row := t.base.CommonPrefix(t.self, key)
	if row >= t.maxRows {
		return Addr{}
	}
	return t.get(row, t.base.Digit(key, row))
}

// closerThanSelf scans for any known node that shares at least prefixLen
// digits with key and is numerically closer to key than self. This is
// Pastry's rare-case fallback when the exact routing entry is missing.
func (t *routingTable) closerThanSelf(key ids.ID, prefixLen int) Addr {
	selfDist := t.self.Distance(key)
	var best Addr
	bestDist := selfDist
	for r := prefixLen; r < t.maxRows; r++ {
		for _, a := range t.row(r) {
			if t.base.CommonPrefix(a.ID, key) < prefixLen {
				continue
			}
			if d := a.ID.Distance(key); d.Cmp(bestDist) < 0 {
				best, bestDist = a, d
			}
		}
	}
	return best
}

package pastry

import (
	"fmt"
	"sort"

	"corona/internal/ids"
)

// Protocol message types used internally by the overlay.
const (
	msgJoin         = "pastry.join"
	msgJoinReply    = "pastry.join_reply"
	msgStateRequest = "pastry.state_request"
	msgStateReply   = "pastry.state_reply"
	msgProbe        = "pastry.probe"
	msgProbeReply   = "pastry.probe_reply"
)

// joinPayload travels with a join request as it is routed toward the
// joining node's own identifier; nodes along the path contribute the
// routing rows relevant to the joiner.
type joinPayload struct {
	Joiner Addr   `json:"joiner"`
	Rows   []Addr `json:"rows"` // accumulated contacts from path nodes
}

// statePayload carries a snapshot of a node's routing state.
type statePayload struct {
	Leaves []Addr `json:"leaves"`
	Table  []Addr `json:"table"`
}

func (n *Node) registerProtocolHandlers() {
	// Protocol messages are dispatched from Deliver directly.
}

// RegisterPayloadTypes hands the overlay's protocol payload constructors
// to a wire codec (netwire) so typed payloads survive serialization.
func RegisterPayloadTypes(register func(msgType string, factory func() any)) {
	register(msgJoin, func() any { return &joinPayload{} })
	register(msgJoinReply, func() any { return &statePayload{} })
	register(msgStateRequest, func() any { return &statePayload{} })
	register(msgStateReply, func() any { return &statePayload{} })
}

// Bootstrap initializes this node as the first member of a new ring.
func (n *Node) Bootstrap() {
	n.mu.Lock()
	n.joined = true
	n.mu.Unlock()
}

// Join enters the ring through the given seed node: the join request is
// routed to the node closest to our identifier, path nodes contribute
// routing rows, and the root replies with its leaf set (paper [25] §5).
func (n *Node) Join(seed Addr) error {
	if seed.IsZero() {
		return fmt.Errorf("pastry: empty seed address")
	}
	n.Learn(seed)
	msg := Message{
		Type: msgJoin,
		Key:  n.self.ID,
		From: n.self,
		Payload: &joinPayload{
			Joiner: n.self,
		},
	}
	return n.send(seed, msg)
}

// Joined reports whether the node has completed a Join or Bootstrap.
func (n *Node) Joined() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.joined
}

func (n *Node) handleProtocol(msg Message) {
	if err := msg.MaterializePayload(); err != nil {
		return
	}
	switch msg.Type {
	case msgJoin:
		n.handleJoin(msg)
	case msgJoinReply:
		n.handleJoinReply(msg)
	case msgStateRequest:
		n.handleStateRequest(msg)
	case msgStateReply:
		n.handleStateReply(msg)
	case msgProbe:
		n.SendDirect(msg.From, msgProbeReply, nil)
	case msgProbeReply:
		// Liveness confirmed; eviction is driven by send errors, so
		// nothing to do here.
	}
}

func (n *Node) handleJoin(msg Message) {
	p, ok := msg.Payload.(*joinPayload)
	if !ok {
		return
	}
	// Contribute the routing row the joiner will index at our shared
	// prefix depth, plus ourselves.
	row := n.cfg.Base.CommonPrefix(n.self.ID, p.Joiner.ID)
	contribution := append([]Addr{n.self}, n.RowContacts(row)...)
	if row > 0 {
		// Shallower rows help too when the joiner's table is empty.
		contribution = append(contribution, n.RowContacts(0)...)
	}
	p.Rows = append(p.Rows, contribution...)

	// Compute the next hop before learning the joiner: the join root is
	// the closest *existing* member, never the joiner itself.
	next, more := n.nextHop(p.Joiner.ID)
	n.Learn(p.Joiner)
	if more && next.ID != p.Joiner.ID {
		msg.Hops++
		n.send(next, msg)
		return
	}
	// We are the root for the joiner's identifier: send back our state
	// and the accumulated rows.
	n.mu.RLock()
	reply := &statePayload{Leaves: append(n.leaves.all(), n.self)}
	n.table.each(func(a Addr) { reply.Table = append(reply.Table, a) })
	reply.Table = append(reply.Table, p.Rows...)
	n.mu.RUnlock()
	n.SendDirect(p.Joiner, msgJoinReply, reply)
}

func (n *Node) handleJoinReply(msg Message) {
	p, ok := msg.Payload.(*statePayload)
	if !ok {
		return
	}
	n.Learn(msg.From)
	for _, a := range p.Leaves {
		n.Learn(a)
	}
	for _, a := range p.Table {
		n.Learn(a)
	}
	n.mu.Lock()
	wasJoined := n.joined
	n.joined = true
	n.mu.Unlock()
	if !wasJoined {
		// Announce ourselves to everyone we just learned about so they
		// can fold us into their own state (Pastry's join broadcast to
		// the new node's leaf set and row contacts).
		for _, a := range n.KnownNodes() {
			n.SendDirect(a, msgStateRequest, nil)
		}
	}
}

func (n *Node) handleStateRequest(msg Message) {
	n.Learn(msg.From)
	n.mu.RLock()
	reply := &statePayload{Leaves: append(n.leaves.all(), n.self)}
	n.mu.RUnlock()
	n.SendDirect(msg.From, msgStateReply, reply)
}

func (n *Node) handleStateReply(msg Message) {
	p, ok := msg.Payload.(*statePayload)
	if !ok {
		return
	}
	n.Learn(msg.From)
	for _, a := range p.Leaves {
		n.Learn(a)
	}
}

// Stabilize runs one round of leaf-set anti-entropy: ask one known
// contact, chosen by the caller-supplied draw, for its leaf set (the
// reply is folded in by handleStateReply, and handleStateRequest learns
// the asker symmetrically). Failure-triggered repair alone cannot re-merge
// a healed partition: the two components each evicted every contact they
// tried to reach across the cut, so no send fails anymore and no repair
// ever fires — while each side's ring view stays self-consistently wrong.
// Periodic exchange diffuses the surviving cross-component edges (a
// handshake counter-push, an asymmetric eviction) back around the ring.
func (n *Node) Stabilize(draw int) {
	contacts := n.KnownNodes()
	if len(contacts) == 0 {
		return
	}
	if draw < 0 {
		draw = -draw
	}
	n.SendDirect(contacts[draw%len(contacts)], msgStateRequest, nil)
}

// repairAfterFailure asks surviving contacts for replacement state after a
// peer was evicted (paper §3.3: the overlay self-heals by replacing failed
// contacts with other nodes satisfying the same prefix constraint).
func (n *Node) repairAfterFailure(dead Addr) {
	// Ask a few nearby survivors for their leaf sets; their members will
	// refill both the leaf set and the routing table opportunistically.
	for _, a := range n.Neighbors(2) {
		if a.ID != dead.ID {
			n.SendDirect(a, msgStateRequest, nil)
		}
	}
}

// BuildStaticOverlay wires a set of nodes into a fully converged overlay by
// direct state construction, without running the join protocol. Large-scale
// simulations use it so experiments start from the converged topology the
// paper's simulations assume; the message-driven Join path is exercised by
// integration tests and live deployments.
func BuildStaticOverlay(nodes []*Node) {
	if len(nodes) == 0 {
		return
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].self.ID.Cmp(sorted[j].self.ID) < 0
	})
	// Leaf sets: k nearest on each side in ring order.
	m := len(sorted)
	for i, node := range sorted {
		k := node.cfg.LeafSetSize
		for d := 1; d <= k && d < m; d++ {
			node.leaves.add(sorted[(i+d)%m].self)
			node.leaves.add(sorted[(i-d+m)%m].self)
		}
		node.joined = true
	}
	// Routing tables: group nodes by digit prefix. For each node and each
	// row r, the entry at column j is any node whose first r digits match
	// the node's and whose digit r equals j. We index nodes by prefix
	// string to fill tables in O(N * rows * radix) expected time.
	base := sorted[0].cfg.Base
	type prefixKey struct {
		depth int
		hash  ids.ID // ID with digits beyond depth zeroed
	}
	maxRows := sorted[0].cfg.MaxTableRows
	index := make(map[prefixKey][]*Node)
	zeroBeyond := func(id ids.ID, depth int) ids.ID {
		for d := depth; d < base.NumDigits(); d++ {
			id = base.WithDigit(id, d, 0)
		}
		return id
	}
	for _, node := range sorted {
		for depth := 1; depth <= maxRows; depth++ {
			k := prefixKey{depth: depth, hash: zeroBeyond(node.self.ID, depth)}
			index[k] = append(index[k], node)
		}
	}
	for _, node := range sorted {
		for row := 0; row < maxRows; row++ {
			for col := 0; col < base.Radix(); col++ {
				if base.Digit(node.self.ID, row) == col {
					continue // that prefix is this node's own
				}
				want := base.WithDigit(node.self.ID, row, col)
				k := prefixKey{depth: row + 1, hash: zeroBeyond(want, row+1)}
				candidates := index[k]
				if len(candidates) == 0 {
					continue
				}
				// Deterministic pick: spread choices by hashing the
				// chooser so entries differ between nodes.
				pick := candidates[int(node.self.ID[0])%len(candidates)]
				node.table.add(pick.self)
			}
		}
	}
}

// Package pastry implements the prefix-routing structured overlay that
// Corona is layered on (paper §3, [25]).
//
// Each node has a 160-bit identifier. The overlay maintains two pieces of
// state per node: a leaf set of the numerically closest neighbors on the
// ring, and a routing table whose entry (row i, column j) points to a node
// sharing exactly i prefix digits with this node and having j as its
// (i+1)-th digit. The routing table induces a directed acyclic graph
// rooted at every node; Corona's wedges are subsets of this DAG and are
// reached by prefix-constrained broadcast (paper §3.1, §3.4).
//
// The package is transport-agnostic: messages flow through the Transport
// interface, implemented in-memory by simnet (for simulation) and over TCP
// by netwire (for live deployment).
package pastry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"corona/internal/clock"
	"corona/internal/ids"
)

// Addr identifies a reachable overlay node: its ring identifier plus a
// transport-specific endpoint string (for example "sim://17" or
// "128.84.223.105:9001").
type Addr struct {
	ID       ids.ID `json:"id"`
	Endpoint string `json:"endpoint"`
}

// IsZero reports whether the address is unset.
func (a Addr) IsZero() bool { return a.ID.IsZero() && a.Endpoint == "" }

// String renders the address for logs.
func (a Addr) String() string {
	return fmt.Sprintf("%s@%s", a.ID.Short(), a.Endpoint)
}

// Message is the overlay message envelope. Payloads are application-defined;
// under simnet they are passed by reference (and must be treated as
// immutable), under netwire they are serialized by the codec package —
// natively binary for registered hot types, JSON otherwise.
type Message struct {
	// Type selects the application handler at the destination.
	Type string `json:"type"`
	// Key is the routing key for routed messages; zero for direct sends.
	Key ids.ID `json:"key"`
	// From is the originating node.
	From Addr `json:"from"`
	// Hops counts forwarding steps taken so far.
	Hops int `json:"hops"`
	// Cover is the prefix-broadcast coverage depth (see Node.Broadcast).
	Cover int `json:"cover,omitempty"`
	// Payload is the application body. On messages decoded from the wire
	// it stays nil until MaterializePayload runs (the overlay materializes
	// before invoking a local handler), so a node that only forwards a
	// message never pays for payload decoding.
	Payload any `json:"payload"`

	// raw retains the encoded payload body exactly as it arrived off the
	// wire, so forwarding (routed next-hop or broadcast fan-out) re-sends
	// the bytes verbatim instead of decode-struct→re-marshal. rawBinary
	// records which encoding the blob is in: the native binary payload
	// format or the JSON fallback. The slice aliases the receive buffer
	// and must be treated as immutable. Materializing the typed payload
	// clears raw, because a handler may mutate the struct and re-send it.
	raw       []byte
	rawBinary bool
	hasRaw    bool

	// shared, when non-nil, is an encode-once cell attached by fanOut to
	// every copy of a broadcast: codecs cache the hop-invariant encoded
	// prefix (everything but the varint Hops/Cover trailer) here, so the
	// payload region is encoded once per hop and shared across all
	// routing contacts.
	shared *sharedEncoding
}

// sharedEncoding caches, per codec ID, the encoded hop-invariant prefix of
// a message fanned out to many contacts. Writer goroutines of different
// peers encode concurrently, hence the mutex. Copies sharing a cell must
// differ only in Hops and Cover — fanOut, the only producer, guarantees it.
type sharedEncoding struct {
	mu      sync.Mutex
	byCodec map[byte][]byte
}

// payloadDecoder resolves a retained raw payload blob into its registered
// typed struct. The codec package installs it from init, before any
// message can be decoded; transports that never serialize (simnet) never
// set raw, so a nil decoder is only reachable when no codec is linked in.
var payloadDecoder func(msgType string, raw []byte, binary bool) (any, error)

// SetPayloadDecoder installs the raw-payload resolver. It is called once,
// at init time, by the codec package.
func SetPayloadDecoder(f func(msgType string, raw []byte, binary bool) (any, error)) {
	payloadDecoder = f
}

// SetRawPayload attaches the wire-encoded payload body to the message,
// deferring typed decoding until MaterializePayload. binary reports
// whether raw is in the native binary payload format (as opposed to the
// JSON fallback). Codecs call this from Decode.
func (m *Message) SetRawPayload(raw []byte, binary bool) {
	m.raw = raw
	m.rawBinary = binary
	m.hasRaw = true
	m.Payload = nil
}

// RawPayload returns the retained encoded payload body and its encoding.
// ok is false when the message has no retained blob (locally constructed,
// or already materialized). Codecs use it to re-send forwarded payloads
// verbatim.
func (m Message) RawPayload() (raw []byte, binary bool, ok bool) {
	return m.raw, m.rawBinary, m.hasRaw
}

// MaterializePayload decodes the retained raw payload into its registered
// typed struct, storing it in Payload. It is idempotent and a no-op for
// messages without a retained blob. The blob is cleared on the first call:
// once a handler can see (and mutate) the typed struct, re-encoding must
// go through the struct, not the stale bytes.
func (m *Message) MaterializePayload() error {
	if !m.hasRaw {
		return nil
	}
	raw, binary := m.raw, m.rawBinary
	m.raw, m.hasRaw = nil, false
	if m.Payload != nil || payloadDecoder == nil {
		return nil
	}
	p, err := payloadDecoder(m.Type, raw, binary)
	if err != nil {
		return err
	}
	m.Payload = p
	return nil
}

// ShareEncoding attaches a fresh encode-once cell to the message. Every
// value copy made afterwards shares the cell; the caller asserts that all
// such copies differ only in Hops and Cover.
func (m *Message) ShareEncoding() {
	m.shared = &sharedEncoding{}
}

// SharesEncoding reports whether the message carries an encode-once cell,
// so codecs can skip the separate prefix buffer for unicast messages
// (where caching would be a dead store).
func (m Message) SharesEncoding() bool {
	return m.shared != nil
}

// CachedEncodePrefix returns the encoded hop-invariant prefix previously
// stored for the given codec ID, or ok=false when the message has no
// sharing cell or nothing is cached yet.
func (m Message) CachedEncodePrefix(codecID byte) (prefix []byte, ok bool) {
	if m.shared == nil {
		return nil, false
	}
	m.shared.mu.Lock()
	defer m.shared.mu.Unlock()
	prefix, ok = m.shared.byCodec[codecID]
	return prefix, ok
}

// StoreEncodePrefix caches the encoded hop-invariant prefix for the given
// codec ID. It is a no-op when the message has no sharing cell. The stored
// slice must not be mutated afterwards.
func (m Message) StoreEncodePrefix(codecID byte, prefix []byte) {
	if m.shared == nil {
		return
	}
	m.shared.mu.Lock()
	defer m.shared.mu.Unlock()
	if m.shared.byCodec == nil {
		m.shared.byCodec = make(map[byte][]byte, 1)
	}
	m.shared.byCodec[codecID] = prefix
}

// Transport delivers messages between overlay nodes.
type Transport interface {
	// Send hands msg to the transport for delivery to the node at to.
	// Synchronous transports (simnet) deliver or fail inline: a non-nil
	// error indicates the destination is unreachable (crashed,
	// partitioned) and the overlay treats it as a failure hint and
	// repairs its state. Asynchronous transports (netwire) return nil on
	// local enqueue and report delivery failures later through the
	// AsyncTransport fault callback; both paths converge on the same
	// eviction-and-repair reaction.
	Send(to Addr, msg Message) error
}

// AsyncTransport is implemented by transports whose Send enqueues rather
// than delivers. The overlay registers a fault callback at construction so
// asynchronous delivery failures feed the same peer-eviction path that
// synchronous Send errors do.
type AsyncTransport interface {
	Transport
	// OnSendFault registers the callback invoked when delivery to a peer
	// fails after the transport's retry budget. The callback may be
	// invoked from transport-internal goroutines.
	OnSendFault(func(to Addr, err error))
}

// ByteCounter is implemented by transports that meter traffic; the
// overlay surfaces the counters in Stats.
type ByteCounter interface {
	// WireBytes returns total bytes sent to and received from the wire
	// (or, under simulation, their codec-measured equivalents).
	WireBytes() (sent, received uint64)
}

// PeerQueueStat describes one peer's outbound send queue at a transport:
// its instantaneous depth against capacity, plus how many messages to that
// peer were dropped locally (backpressure, encode failure, retry budget
// exhausted).
type PeerQueueStat struct {
	Endpoint string
	Depth    int
	Capacity int
	Drops    uint64
}

// QueueReporter is implemented by transports with bounded per-peer send
// queues (netwire). The overlay and the experiment harness surface the
// reports so backpressure is observable instead of silent loss.
type QueueReporter interface {
	// PeerQueues snapshots every live peer's queue state.
	PeerQueues() []PeerQueueStat
}

// DropCounter is implemented by transports that count messages discarded
// locally before reaching the wire.
type DropCounter interface {
	// Dropped returns the total local drop count.
	Dropped() uint64
}

// ErrUnreachable is returned by transports when the destination is down.
var ErrUnreachable = errors.New("pastry: destination unreachable")

// HandlerFunc processes an application message delivered to this node.
type HandlerFunc func(msg Message)

// Config parameterizes an overlay node.
type Config struct {
	// Base is the digit radix; the prototype uses 16 (paper §4).
	Base ids.Base
	// LeafSetSize is the number of neighbors kept on each side of the
	// ring (the paper's f: channel state is replicated on the f closest
	// neighbors of the primary owner, §3.3).
	LeafSetSize int
	// MaxTableRows bounds the routing table depth. With n random nodes
	// prefixes longer than log_b(n)+3 digits are vanishingly rare, so
	// deeper rows stay empty; bounding them keeps memory proportional
	// to useful state. Zero means ids.NumDigits rows.
	MaxTableRows int
}

// DefaultConfig returns the configuration used by the prototype: base 16
// and a leaf set of 8 (4 per side).
func DefaultConfig() Config {
	return Config{Base: ids.MustBase(16), LeafSetSize: 4, MaxTableRows: 10}
}

func (c Config) withDefaults() Config {
	if c.Base == (ids.Base{}) {
		c.Base = ids.MustBase(16)
	}
	if c.LeafSetSize <= 0 {
		c.LeafSetSize = 4
	}
	if c.MaxTableRows <= 0 || c.MaxTableRows > c.Base.NumDigits() {
		c.MaxTableRows = c.Base.NumDigits()
	}
	return c
}

// Node is one overlay participant. Its methods are safe for concurrent use:
// live deployments invoke them from multiple connection goroutines, while
// simulations run single-threaded through the event loop.
type Node struct {
	cfg       Config
	self      Addr
	transport Transport
	clk       clock.Clock

	mu       sync.RWMutex
	table    *routingTable
	leaves   *leafSet
	handlers map[string]HandlerFunc
	// deliverSelf is invoked when a routed message terminates here.
	joined bool

	// onFault, if set, is called when a peer is detected dead. Corona
	// uses it to trigger subscription-state handoff checks.
	onFault func(Addr)

	// fanScratch pools fan-out destination buffers (see fanOut); pooled
	// rather than a single per-node buffer because concurrent transports
	// may broadcast from several goroutines at once.
	fanScratch sync.Pool

	stats Stats
}

// Stats counts overlay activity for the evaluation harness.
type Stats struct {
	MessagesSent      uint64
	MessagesRouted    uint64 // routed messages forwarded through this node
	MessagesDelivered uint64
	BroadcastsSent    uint64
	RouteHopsTotal    uint64 // accumulated hop counts of delivered messages
	Repairs           uint64
	// WireBytesSent and WireBytesReceived mirror the transport's byte
	// counters when it implements ByteCounter (zero otherwise).
	WireBytesSent     uint64
	WireBytesReceived uint64
	// WireDropped mirrors the transport's local drop counter when it
	// implements DropCounter (zero otherwise).
	WireDropped uint64
}

// NewNode creates an overlay node. The node does not join a ring until
// Bootstrap or Join is called.
func NewNode(cfg Config, self Addr, transport Transport, clk clock.Clock) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:       cfg,
		self:      self,
		transport: transport,
		clk:       clk,
		table:     newRoutingTable(cfg.Base, self.ID, cfg.MaxTableRows),
		leaves:    newLeafSet(self.ID, cfg.LeafSetSize),
		handlers:  make(map[string]HandlerFunc),
	}
	n.registerProtocolHandlers()
	if at, ok := transport.(AsyncTransport); ok {
		// Route asynchronous delivery failures into the same eviction
		// path synchronous Send errors take.
		at.OnSendFault(func(to Addr, _ error) { n.peerFailed(to) })
	}
	return n
}

// Self returns this node's address.
func (n *Node) Self() Addr { return n.self }

// Base returns the digit radix in use.
func (n *Node) Base() ids.Base { return n.cfg.Base }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// Stats returns a snapshot of the node's activity counters, including the
// transport's wire-byte counters when it meters them.
func (n *Node) Stats() Stats {
	n.mu.RLock()
	s := n.stats
	n.mu.RUnlock()
	if bc, ok := n.transport.(ByteCounter); ok {
		s.WireBytesSent, s.WireBytesReceived = bc.WireBytes()
	}
	if dc, ok := n.transport.(DropCounter); ok {
		s.WireDropped = dc.Dropped()
	}
	return s
}

// PeerQueues snapshots the transport's per-peer send queues, or nil when
// the transport has none (simnet delivers synchronously).
func (n *Node) PeerQueues() []PeerQueueStat {
	if qr, ok := n.transport.(QueueReporter); ok {
		return qr.PeerQueues()
	}
	return nil
}

// OnFault registers a callback invoked when the node detects that a peer
// has failed. At most one callback is kept.
func (n *Node) OnFault(f func(Addr)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onFault = f
}

// Handle registers the handler for an application message type. It panics
// if the type is already registered, which catches wiring mistakes early.
func (n *Node) Handle(msgType string, h HandlerFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.handlers[msgType]; dup {
		panic("pastry: duplicate handler for " + msgType)
	}
	n.handlers[msgType] = h
}

// Leaves returns the current leaf set, closest first on each side.
func (n *Node) Leaves() []Addr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.leaves.all()
}

// Neighbors returns the k numerically closest known neighbors of this node
// (from the leaf set), used by Corona to pick the f additional owners of a
// channel (paper §3.3).
func (n *Node) Neighbors(k int) []Addr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.leaves.closest(k)
}

// RoutingEntry returns the routing table entry at (row, col), or a zero
// Addr when empty.
func (n *Node) RoutingEntry(row, col int) Addr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.table.get(row, col)
}

// RowContacts returns the non-empty entries of routing table row r,
// excluding this node itself. These are the "contacts in the routing table
// at row r" that Corona's maintenance protocol instructs (paper §3.3).
func (n *Node) RowContacts(r int) []Addr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.table.row(r)
}

// KnownNodes returns every distinct peer in the routing state (leaf set
// and routing table).
func (n *Node) KnownNodes() []Addr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	seen := map[ids.ID]Addr{}
	for _, a := range n.leaves.all() {
		seen[a.ID] = a
	}
	n.table.each(func(a Addr) {
		seen[a.ID] = a
	})
	out := make([]Addr, 0, len(seen))
	for _, a := range seen {
		out = append(out, a)
	}
	// Fixed order: callers index into this with seeded draws (Stabilize),
	// so map-iteration order would desynchronize identically-seeded runs.
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Cmp(out[j].ID) < 0 })
	return out
}

// send transmits msg and handles synchronous transport failure by
// evicting the dead peer and scheduling repair. Asynchronous transports
// report failures through the fault callback wired in NewNode instead;
// for them a non-nil error only means the message never left this node
// (transport closed).
func (n *Node) send(to Addr, msg Message) error {
	err := n.transport.Send(to, msg)
	n.mu.Lock()
	n.stats.MessagesSent++
	n.mu.Unlock()
	if err != nil {
		n.peerFailed(to)
	}
	return err
}

// Deliver is the transport's entry point for inbound messages.
func (n *Node) Deliver(msg Message) {
	switch msg.Type {
	case msgJoin, msgJoinReply, msgStateRequest, msgStateReply, msgProbe, msgProbeReply:
		n.handleProtocol(msg)
		return
	}
	if !msg.Key.IsZero() && msg.Cover == 0 {
		// Routed application message: forward if we are not the root. A
		// synchronous send failure already evicted the dead hop (inside
		// send), so retry against the post-eviction tables instead of
		// dropping the message — each failure strictly shrinks the
		// candidate set, and when no hop remains this node has become the
		// root and the message belongs here. Without the retry, every
		// routed message racing a node death is silently lost at whichever
		// hop still lists the corpse.
		for {
			next, ok := n.nextHop(msg.Key)
			if !ok {
				break
			}
			msg.Hops++
			n.mu.Lock()
			n.stats.MessagesRouted++
			n.mu.Unlock()
			if n.send(next, msg) == nil {
				return
			}
		}
	}
	if msg.Cover > 0 {
		// Prefix broadcast: deliver locally and re-forward deeper.
		n.forwardBroadcast(msg)
	}
	n.deliverLocal(msg)
}

func (n *Node) deliverLocal(msg Message) {
	n.mu.RLock()
	h := n.handlers[msg.Type]
	n.mu.RUnlock()
	n.mu.Lock()
	n.stats.MessagesDelivered++
	n.stats.RouteHopsTotal += uint64(msg.Hops)
	n.mu.Unlock()
	if h != nil {
		// Payload decoding is deferred until a local handler actually
		// needs the typed struct; a message that was only forwarded never
		// gets here. An undecodable payload drops the message, matching
		// the transport's treatment of undecodable envelopes.
		if err := msg.MaterializePayload(); err != nil {
			return
		}
		h(msg)
	}
}

// SendDirect sends an application message straight to a known peer without
// overlay routing.
func (n *Node) SendDirect(to Addr, msgType string, payload any) error {
	if to.ID == n.self.ID {
		n.Deliver(Message{Type: msgType, From: n.self, Payload: payload})
		return nil
	}
	return n.send(to, Message{Type: msgType, From: n.self, Payload: payload})
}

// Route sends an application message toward the node whose identifier is
// numerically closest to key. The message is delivered to the handler for
// msgType at the root node (possibly this node itself). A dead first hop
// is evicted (inside send) and the next candidate tried — mirroring the
// forwarding retry in Deliver — so Route only gives up by running out of
// candidates, at which point this node is the root and delivers locally.
func (n *Node) Route(key ids.ID, msgType string, payload any) error {
	msg := Message{Type: msgType, Key: key, From: n.self, Payload: payload}
	for {
		next, ok := n.nextHop(key)
		if !ok {
			n.deliverLocal(msg)
			return nil
		}
		msg.Hops = 1
		if n.send(next, msg) == nil {
			return nil
		}
	}
}

package pastry

// Broadcast disseminates an application message to every node sharing at
// least `level` prefix digits with key — the level-l wedge of the channel
// (paper §3.1, §3.4: "the node simply disseminates the diff along the DAG
// rooted at it up to a depth equal to the polling level of the channel").
//
// The initiating node must itself belong to the wedge. The flood follows
// the routing-table DAG: the initiator sends to its row-r contacts for
// every r ≥ level; a recipient that received the message via a row-r edge
// forwards only along rows ≥ r+1, which partitions the wedge and delivers
// each member exactly once when routing tables are converged.
//
// The message is also delivered to the local handler, since the initiator
// is a wedge member.
func (n *Node) Broadcast(level int, msgType string, payload any) {
	if level < 0 {
		level = 0
	}
	msg := Message{
		Type:    msgType,
		From:    n.self,
		Cover:   level + 1, // stored as depth+1 so zero means "not a broadcast"
		Payload: payload,
	}
	n.mu.Lock()
	n.stats.BroadcastsSent++
	n.mu.Unlock()
	n.fanOut(msg, level)
	n.deliverLocal(msg)
}

// forwardBroadcast re-forwards a received broadcast deeper into the DAG.
// msg.Cover-1 is the first routing row this node is responsible for.
func (n *Node) forwardBroadcast(msg Message) {
	n.fanOut(msg, msg.Cover-1)
}

// fanOut sends copies of msg to all routing contacts in rows >= fromRow,
// tagging each copy with the recipient's own coverage depth.
func (n *Node) fanOut(msg Message, fromRow int) {
	n.mu.RLock()
	maxRows := n.cfg.MaxTableRows
	type hop struct {
		to    Addr
		cover int
	}
	var hops []hop
	for r := fromRow; r < maxRows; r++ {
		for _, a := range n.table.row(r) {
			hops = append(hops, hop{to: a, cover: r + 2}) // depth r+1, stored +1
		}
	}
	n.mu.RUnlock()
	for _, h := range hops {
		out := msg
		out.Hops = msg.Hops + 1
		out.Cover = h.cover
		n.send(h.to, out)
	}
}

package pastry

// Broadcast disseminates an application message to every node sharing at
// least `level` prefix digits with key — the level-l wedge of the channel
// (paper §3.1, §3.4: "the node simply disseminates the diff along the DAG
// rooted at it up to a depth equal to the polling level of the channel").
//
// The initiating node must itself belong to the wedge. The flood follows
// the routing-table DAG: the initiator sends to its row-r contacts for
// every r ≥ level; a recipient that received the message via a row-r edge
// forwards only along rows ≥ r+1, which partitions the wedge and delivers
// each member exactly once when routing tables are converged.
//
// The message is also delivered to the local handler, since the initiator
// is a wedge member.
func (n *Node) Broadcast(level int, msgType string, payload any) {
	if level < 0 {
		level = 0
	}
	msg := Message{
		Type:    msgType,
		From:    n.self,
		Cover:   level + 1, // stored as depth+1 so zero means "not a broadcast"
		Payload: payload,
	}
	n.mu.Lock()
	n.stats.BroadcastsSent++
	n.mu.Unlock()
	n.fanOut(msg, level)
	n.deliverLocal(msg)
}

// forwardBroadcast re-forwards a received broadcast deeper into the DAG.
// msg.Cover-1 is the first routing row this node is responsible for. The
// payload is never decoded here: the retained wire blob (and, across
// contacts, the whole encoded prefix) is re-sent verbatim.
func (n *Node) forwardBroadcast(msg Message) {
	n.fanOut(msg, msg.Cover-1)
}

// hop is one fan-out destination with its coverage tag.
type hop struct {
	to    Addr
	cover int
}

// fanOut sends copies of msg to all routing contacts in rows >= fromRow,
// tagging each copy with the recipient's own coverage depth.
//
// The destination list is gathered under RLock into a pooled scratch
// buffer sized from the table's row occupancy, so a broadcast storm does
// not allocate a fresh slice (or grow it) per message while holding the
// lock. All copies share one encode-once cell: a codec encodes the
// envelope-plus-payload prefix a single time and only the varint
// Hops/Cover trailer is written per contact.
func (n *Node) fanOut(msg Message, fromRow int) {
	hops, _ := n.fanScratch.Get().(*[]hop)
	if hops == nil {
		hops = new([]hop)
	}
	n.mu.RLock()
	maxRows := n.cfg.MaxTableRows
	if fromRow < 0 {
		fromRow = 0
	}
	if need := n.table.contactCount(fromRow); cap(*hops) < need {
		*hops = make([]hop, 0, need)
	} else {
		*hops = (*hops)[:0]
	}
	for r := fromRow; r < maxRows; r++ {
		n.table.eachInRow(r, func(a Addr) {
			*hops = append(*hops, hop{to: a, cover: r + 2}) // depth r+1, stored +1
		})
	}
	n.mu.RUnlock()
	if len(*hops) > 0 {
		msg.Hops++ // same for every contact; only Cover varies below
		msg.ShareEncoding()
		for _, h := range *hops {
			out := msg
			out.Cover = h.cover
			n.send(h.to, out)
		}
	}
	*hops = (*hops)[:0]
	n.fanScratch.Put(hops)
}

package pastry

import (
	"fmt"

	"corona/internal/ids"
	"corona/internal/wirebin"
)

// Native binary wire forms for the overlay's own protocol payloads,
// matching the codec contract the Corona message set follows (package
// core, messages_wire.go): join requests and state snapshots previously
// rode the codec's JSON fallback, which made them the only registered
// payloads without a deterministic byte encoding. Conventions are the
// wirebin house rules: uvarint counts, length-prefixed strings, and a
// raw 20-byte identifier plus endpoint string per address.

func appendAddr(dst []byte, a Addr) []byte {
	dst = append(dst, a.ID[:]...)
	return wirebin.AppendString(dst, a.Endpoint)
}

func readAddr(r *wirebin.Reader) Addr {
	var a Addr
	copy(a.ID[:], r.Take(ids.Bytes))
	a.Endpoint = r.String()
	return a
}

func appendAddrs(dst []byte, as []Addr) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(len(as)))
	for _, a := range as {
		dst = appendAddr(dst, a)
	}
	return dst
}

func readAddrs(r *wirebin.Reader) []Addr {
	n := r.ListLen(ids.Bytes + 1)
	if n == 0 {
		return nil
	}
	out := make([]Addr, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, readAddr(r))
	}
	return out
}

// wireErr wraps a reader's latched error with the payload type.
func wireErr(what string, r *wirebin.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("pastry: decoding %s payload: %w", what, err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("pastry: decoding %s payload: %d trailing bytes", what, r.Len())
	}
	return nil
}

// AppendBinary implements the codec binary payload contract.
func (p *joinPayload) AppendBinary(dst []byte) ([]byte, error) {
	dst = appendAddr(dst, p.Joiner)
	return appendAddrs(dst, p.Rows), nil
}

// DecodeBinary implements the codec binary payload contract.
func (p *joinPayload) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	p.Joiner = readAddr(r)
	p.Rows = readAddrs(r)
	return wireErr("join", r)
}

// AppendBinary implements the codec binary payload contract.
func (p *statePayload) AppendBinary(dst []byte) ([]byte, error) {
	dst = appendAddrs(dst, p.Leaves)
	return appendAddrs(dst, p.Table), nil
}

// DecodeBinary implements the codec binary payload contract.
func (p *statePayload) DecodeBinary(src []byte) error {
	r := wirebin.NewReader(src)
	p.Leaves = readAddrs(r)
	p.Table = readAddrs(r)
	return wireErr("state", r)
}

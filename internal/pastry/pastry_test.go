package pastry_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"corona/internal/eventsim"
	"corona/internal/ids"
	"corona/internal/pastry"
	"corona/internal/simnet"
)

// testRing builds n nodes on a simnet with converged static state.
func testRing(t testing.TB, n int, seed int64) (*eventsim.Sim, *simnet.Network, []*pastry.Node) {
	t.Helper()
	sim := eventsim.New(seed)
	net := simnet.New(sim, simnet.FixedLatency(5*time.Millisecond))
	rng := sim.RNG("ring-ids")
	nodes := make([]*pastry.Node, n)
	for i := range nodes {
		ep := fmt.Sprintf("sim://%d", i)
		holder := &nodeHolder{}
		endpoint := net.Attach(ep, holder.deliver)
		node := pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.Random(rng), Endpoint: ep}, endpoint, sim)
		holder.node = node
		nodes[i] = node
	}
	pastry.BuildStaticOverlay(nodes)
	return sim, net, nodes
}

// nodeHolder breaks the construction cycle between an endpoint (which needs
// a delivery function) and a node (which needs the endpoint as transport).
type nodeHolder struct{ node *pastry.Node }

func (h *nodeHolder) deliver(m pastry.Message) {
	if h.node != nil {
		h.node.Deliver(m)
	}
}

func TestRoutingReachesNumericallyClosestNode(t *testing.T) {
	sim, _, nodes := testRing(t, 64, 7)
	rng := rand.New(rand.NewSource(99))

	for trial := 0; trial < 50; trial++ {
		key := ids.Random(rng)
		// Ground truth: numerically closest node.
		want := nodes[0]
		for _, n := range nodes[1:] {
			if n.Self().ID.Distance(key).Cmp(want.Self().ID.Distance(key)) < 0 {
				want = n
			}
		}
		var deliveredAt *pastry.Node
		typ := fmt.Sprintf("test.route.%d", trial)
		for _, n := range nodes {
			n := n
			n.Handle(typ, func(m pastry.Message) { deliveredAt = n })
		}
		src := nodes[rng.Intn(len(nodes))]
		if err := src.Route(key, typ, nil); err != nil {
			t.Fatalf("route: %v", err)
		}
		sim.RunFor(5 * time.Second)
		if deliveredAt == nil {
			t.Fatalf("trial %d: message never delivered", trial)
		}
		if deliveredAt.Self().ID != want.Self().ID {
			t.Fatalf("trial %d: delivered at %v, want %v (key %v)",
				trial, deliveredAt.Self(), want.Self(), key)
		}
	}
}

func TestRoutingHopCountLogarithmic(t *testing.T) {
	sim, _, nodes := testRing(t, 128, 3)
	rng := rand.New(rand.NewSource(5))
	var totalHops, delivered int
	typ := "test.hops"
	for _, n := range nodes {
		n.Handle(typ, func(m pastry.Message) {
			totalHops += m.Hops
			delivered++
		})
	}
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		src.Route(ids.Random(rng), typ, nil)
	}
	sim.RunFor(time.Minute)
	if delivered != trials {
		t.Fatalf("delivered %d of %d", delivered, trials)
	}
	mean := float64(totalHops) / float64(delivered)
	// ceil(log16 128) = 2; allow slack for leaf-set hops.
	if mean > 4.0 {
		t.Fatalf("mean hops %.2f exceeds logarithmic bound", mean)
	}
}

func TestRouteToOwnKeyDeliversLocally(t *testing.T) {
	sim, _, nodes := testRing(t, 16, 11)
	n := nodes[3]
	delivered := false
	n.Handle("test.self", func(m pastry.Message) { delivered = true })
	n.Route(n.Self().ID, "test.self", nil)
	sim.RunFor(time.Second)
	if !delivered {
		t.Fatal("message to own ID not delivered locally")
	}
}

func TestConsistentRootAcrossSources(t *testing.T) {
	sim, _, nodes := testRing(t, 64, 13)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		key := ids.Random(rng)
		typ := fmt.Sprintf("test.root.%d", trial)
		roots := map[string]bool{}
		for _, n := range nodes {
			n := n
			n.Handle(typ, func(m pastry.Message) { roots[n.Self().ID.String()] = true })
		}
		for i := 0; i < 8; i++ {
			nodes[rng.Intn(len(nodes))].Route(key, typ, nil)
		}
		sim.RunFor(10 * time.Second)
		if len(roots) != 1 {
			t.Fatalf("trial %d: key %v delivered at %d distinct roots", trial, key, len(roots))
		}
	}
}

func TestBroadcastCoversWedgeExactly(t *testing.T) {
	sim, _, nodes := testRing(t, 128, 23)
	base := nodes[0].Base()
	rng := rand.New(rand.NewSource(31))

	for _, level := range []int{0, 1, 2} {
		channel := ids.Random(rng)
		// Find a node in the wedge to initiate (the owner-side member).
		var initiator *pastry.Node
		for _, n := range nodes {
			if base.InWedge(n.Self().ID, channel, level) {
				if initiator == nil || base.CommonPrefix(n.Self().ID, channel) > base.CommonPrefix(initiator.Self().ID, channel) {
					initiator = n
				}
			}
		}
		if initiator == nil {
			continue // no wedge members at this level for this channel
		}
		typ := fmt.Sprintf("test.bcast.%d", level)
		got := map[string]int{}
		for _, n := range nodes {
			n := n
			n.Handle(typ, func(m pastry.Message) { got[n.Self().Endpoint]++ })
		}
		initiator.Broadcast(level, typ, nil)
		sim.RunFor(time.Minute)

		want := map[string]bool{}
		for _, n := range nodes {
			if base.InWedge(n.Self().ID, channel, level) {
				want[n.Self().Endpoint] = true
			}
		}
		// Initiator must receive its own broadcast.
		if got[initiator.Self().Endpoint] == 0 {
			t.Errorf("level %d: initiator did not deliver locally", level)
		}
		for ep := range want {
			if got[ep] == 0 {
				t.Errorf("level %d: wedge member %s missed broadcast", level, ep)
			}
		}
		for ep, count := range got {
			if !want[ep] {
				t.Errorf("level %d: non-wedge node %s received broadcast", level, ep)
			}
			if count > 1 {
				t.Errorf("level %d: node %s received %d duplicates", level, ep, count)
			}
		}
	}
}

func TestJoinProtocolConverges(t *testing.T) {
	sim := eventsim.New(41)
	net := simnet.New(sim, simnet.FixedLatency(2*time.Millisecond))
	rng := sim.RNG("join-ids")

	mk := func(i int) *pastry.Node {
		ep := fmt.Sprintf("sim://%d", i)
		holder := &nodeHolder{}
		endpoint := net.Attach(ep, holder.deliver)
		n := pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.Random(rng), Endpoint: ep}, endpoint, sim)
		holder.node = n
		return n
	}
	first := mk(0)
	first.Bootstrap()
	nodes := []*pastry.Node{first}
	for i := 1; i < 24; i++ {
		n := mk(i)
		if err := n.Join(nodes[rng.Intn(len(nodes))].Self()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		sim.RunFor(3 * time.Second)
		if !n.Joined() {
			t.Fatalf("node %d did not complete join", i)
		}
		nodes = append(nodes, n)
	}
	// After all joins, routing from every node must reach the true root.
	key := ids.Random(rng)
	want := nodes[0]
	for _, n := range nodes[1:] {
		if n.Self().ID.Distance(key).Cmp(want.Self().ID.Distance(key)) < 0 {
			want = n
		}
	}
	for i, src := range nodes {
		var root *pastry.Node
		typ := fmt.Sprintf("test.join.%d", i)
		for _, n := range nodes {
			n := n
			n.Handle(typ, func(m pastry.Message) { root = n })
		}
		src.Route(key, typ, nil)
		sim.RunFor(5 * time.Second)
		if root == nil || root.Self().ID != want.Self().ID {
			t.Fatalf("from node %d: routed to %v, want %v", i, root, want.Self())
		}
	}
}

func TestFailureRepair(t *testing.T) {
	sim, net, nodes := testRing(t, 32, 53)
	victim := nodes[7]
	net.Crash(victim.Self().Endpoint)

	var faults []pastry.Addr
	nodes[8].OnFault(func(a pastry.Addr) { faults = append(faults, a) })

	// Sending to the dead node must fail and trigger eviction.
	err := nodes[8].SendDirect(victim.Self(), "test.fail", nil)
	if err == nil {
		t.Fatal("send to crashed node succeeded")
	}
	sim.RunFor(10 * time.Second)
	if len(faults) != 1 || faults[0].ID != victim.Self().ID {
		t.Fatalf("fault callback not invoked for victim: %v", faults)
	}
	for _, a := range nodes[8].KnownNodes() {
		if a.ID == victim.Self().ID {
			t.Fatal("victim still present in routing state after failure")
		}
	}
	// Routing still works from the healthy node for arbitrary keys.
	rng := rand.New(rand.NewSource(3))
	delivered := 0
	typ := "test.after-fail"
	for _, n := range nodes {
		if n == victim {
			continue
		}
		n.Handle(typ, func(m pastry.Message) { delivered++ })
	}
	for i := 0; i < 20; i++ {
		nodes[8].Route(ids.Random(rng), typ, nil)
	}
	sim.RunFor(time.Minute)
	if delivered < 19 { // a route may terminate at the dead root's key space
		t.Fatalf("only %d of 20 messages delivered after failure", delivered)
	}
}

func TestLearnIgnoresSelfAndZero(t *testing.T) {
	sim := eventsim.New(1)
	net := simnet.New(sim, simnet.FixedLatency(0))
	holder := &nodeHolder{}
	ep := net.Attach("sim://0", holder.deliver)
	n := pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.HashString("self"), Endpoint: "sim://0"}, ep, sim)
	holder.node = n
	n.Learn(pastry.Addr{})
	n.Learn(n.Self())
	if got := len(n.KnownNodes()); got != 0 {
		t.Fatalf("KnownNodes = %d after learning self/zero, want 0", got)
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	sim := eventsim.New(1)
	net := simnet.New(sim, simnet.FixedLatency(0))
	holder := &nodeHolder{}
	ep := net.Attach("sim://0", holder.deliver)
	n := pastry.NewNode(pastry.DefaultConfig(), pastry.Addr{ID: ids.HashString("x"), Endpoint: "sim://0"}, ep, sim)
	holder.node = n
	n.Handle("dup", func(pastry.Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	n.Handle("dup", func(pastry.Message) {})
}

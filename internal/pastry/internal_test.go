package pastry

import (
	"fmt"
	"math/rand"
	"testing"

	"corona/internal/ids"
)

// addrN builds a deterministic test address.
func addrN(i int) Addr {
	return Addr{ID: ids.HashString(fmt.Sprintf("node-%d", i)), Endpoint: fmt.Sprintf("sim://%d", i)}
}

func TestRoutingTableSlotPlacement(t *testing.T) {
	base := ids.MustBase(16)
	self := ids.HashString("table-self")
	tbl := newRoutingTable(base, self, 10)

	// A peer differing at digit 0 lands in row 0 at its digit-0 column.
	other := base.WithDigit(self, 0, (base.Digit(self, 0)+1)%16)
	a := Addr{ID: other, Endpoint: "x"}
	if !tbl.add(a) {
		t.Fatal("add failed")
	}
	got := tbl.get(0, base.Digit(other, 0))
	if got.ID != other {
		t.Fatalf("entry not at expected slot")
	}
	// The same slot does not get replaced by add.
	b := Addr{ID: base.WithDigit(other, 5, (base.Digit(other, 5)+1)%16), Endpoint: "y"}
	if base.CommonPrefix(self, b.ID) != 0 || base.Digit(b.ID, 0) != base.Digit(other, 0) {
		t.Skip("hash landed elsewhere; placement covered by other cases")
	}
	if tbl.add(b) {
		t.Fatal("add replaced an occupied slot")
	}
	// replace does.
	prev := tbl.replace(b)
	if prev.ID != other {
		t.Fatalf("replace returned %v", prev)
	}
}

func TestRoutingTableSelfRejected(t *testing.T) {
	base := ids.MustBase(16)
	self := ids.HashString("self-reject")
	tbl := newRoutingTable(base, self, 10)
	if tbl.add(Addr{ID: self, Endpoint: "me"}) {
		t.Fatal("table accepted its own node")
	}
}

func TestRoutingTableRemove(t *testing.T) {
	base := ids.MustBase(16)
	self := ids.HashString("remove-self")
	tbl := newRoutingTable(base, self, 10)
	peer := Addr{ID: ids.HashString("remove-peer"), Endpoint: "p"}
	tbl.add(peer)
	if !tbl.remove(peer.ID) {
		t.Fatal("remove failed")
	}
	if tbl.remove(peer.ID) {
		t.Fatal("double remove reported success")
	}
	found := 0
	tbl.each(func(Addr) { found++ })
	if found != 0 {
		t.Fatalf("%d entries left after remove", found)
	}
}

func TestLeafSetOrderingAndEviction(t *testing.T) {
	self := ids.HashString("leaf-self")
	ls := newLeafSet(self, 3)
	rng := rand.New(rand.NewSource(8))
	var members []Addr
	for i := 0; i < 50; i++ {
		a := Addr{ID: ids.Random(rng), Endpoint: fmt.Sprintf("m%d", i)}
		members = append(members, a)
		ls.add(a)
	}
	// The k closest clockwise members must be exactly the cw side.
	if len(ls.cw) != 3 || len(ls.ccw) != 3 {
		t.Fatalf("leaf set sides = %d/%d, want 3/3", len(ls.cw), len(ls.ccw))
	}
	for i := 1; i < len(ls.cw); i++ {
		if ls.cwDist(ls.cw[i].ID).Cmp(ls.cwDist(ls.cw[i-1].ID)) < 0 {
			t.Fatal("cw side not sorted by clockwise distance")
		}
	}
	// Every non-member must be farther clockwise than the last cw member
	// (or closer counter-clockwise than covered by ccw side).
	limit := ls.cwDist(ls.cw[len(ls.cw)-1].ID)
	inCW := map[ids.ID]bool{}
	for _, a := range ls.cw {
		inCW[a.ID] = true
	}
	for _, m := range members {
		if inCW[m.ID] {
			continue
		}
		if ls.cwDist(m.ID).Cmp(limit) < 0 {
			t.Fatalf("member %v closer clockwise than kept leaf", m)
		}
	}
}

func TestLeafSetClosestToKeyTieBreak(t *testing.T) {
	self := ids.HashString("tie-self")
	ls := newLeafSet(self, 4)
	a := Addr{ID: ids.HashString("tie-a"), Endpoint: "a"}
	ls.add(a)
	// A key exactly at a member's ID resolves to that member.
	got, isSelf := ls.closestToKey(a.ID)
	if isSelf || got.ID != a.ID {
		t.Fatalf("closestToKey at member = %v (self=%v)", got, isSelf)
	}
	// A key at self resolves to self.
	_, isSelf = ls.closestToKey(self)
	if !isSelf {
		t.Fatal("closestToKey(self) should be self")
	}
}

func TestLeafSetRemoveAndContains(t *testing.T) {
	self := ids.HashString("lsr-self")
	ls := newLeafSet(self, 2)
	a := Addr{ID: ids.HashString("lsr-a"), Endpoint: "a"}
	ls.add(a)
	if !ls.contains(a.ID) {
		t.Fatal("contains failed")
	}
	if !ls.remove(a.ID) {
		t.Fatal("remove failed")
	}
	if ls.contains(a.ID) {
		t.Fatal("member present after remove")
	}
	if ls.remove(a.ID) {
		t.Fatal("double remove succeeded")
	}
}

func TestLeafSetIgnoresSelfAndDuplicates(t *testing.T) {
	self := ids.HashString("dup-self")
	ls := newLeafSet(self, 4)
	if ls.add(Addr{ID: self, Endpoint: "me"}) {
		t.Fatal("leaf set accepted self")
	}
	a := Addr{ID: ids.HashString("dup-a"), Endpoint: "a"}
	if !ls.add(a) {
		t.Fatal("first add failed")
	}
	if ls.add(a) {
		t.Fatal("duplicate add reported change")
	}
	if got := len(ls.all()); got != 1 {
		t.Fatalf("all() = %d members, want 1", got)
	}
}

package pastry

// Wire-symmetry tests for the overlay protocol payloads: binary
// encodings must round-trip to identical structs and identical bytes,
// and no truncation of a valid encoding may decode successfully.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"corona/internal/ids"
)

func randWireAddr(rng *rand.Rand) Addr {
	b := make([]byte, rng.Intn(20))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return Addr{ID: ids.Random(rng), Endpoint: string(b)}
}

func randWireAddrs(rng *rand.Rand) []Addr {
	n := rng.Intn(8)
	if n == 0 {
		return nil
	}
	out := make([]Addr, n)
	for i := range out {
		out[i] = randWireAddr(rng)
	}
	return out
}

type wirePayload interface {
	AppendBinary(dst []byte) ([]byte, error)
	DecodeBinary(src []byte) error
}

func checkWireRoundTrip(t *testing.T, orig, fresh wirePayload) []byte {
	t.Helper()
	enc, err := orig.AppendBinary(nil)
	if err != nil {
		t.Fatalf("encode %T: %v", orig, err)
	}
	if err := fresh.DecodeBinary(enc); err != nil {
		t.Fatalf("decode %T: %v", fresh, err)
	}
	if !reflect.DeepEqual(orig, fresh) {
		t.Fatalf("round trip mutated %T:\n  in:  %+v\n  out: %+v", orig, orig, fresh)
	}
	re, err := fresh.AppendBinary(nil)
	if err != nil {
		t.Fatalf("re-encode %T: %v", fresh, err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encoding %T is not byte-stable", fresh)
	}
	return enc
}

func TestJoinWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		jp := &joinPayload{Joiner: randWireAddr(rng), Rows: randWireAddrs(rng)}
		checkWireRoundTrip(t, jp, &joinPayload{})
		sp := &statePayload{Leaves: randWireAddrs(rng), Table: randWireAddrs(rng)}
		checkWireRoundTrip(t, sp, &statePayload{})
	}
}

func TestJoinWireTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	jp := &joinPayload{Joiner: randWireAddr(rng), Rows: randWireAddrs(rng)}
	sp := &statePayload{Leaves: randWireAddrs(rng), Table: randWireAddrs(rng)}
	for _, p := range []wirePayload{jp, sp} {
		enc, err := p.AppendBinary(nil)
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		for n := 0; n < len(enc); n++ {
			var fresh wirePayload
			if _, ok := p.(*joinPayload); ok {
				fresh = &joinPayload{}
			} else {
				fresh = &statePayload{}
			}
			if err := fresh.DecodeBinary(enc[:n]); err == nil {
				t.Fatalf("%T decoded a %d/%d-byte truncation without error", p, n, len(enc))
			}
		}
	}
}

func FuzzJoinWireDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		jp := &joinPayload{Joiner: randWireAddr(rng), Rows: randWireAddrs(rng)}
		enc, _ := jp.AppendBinary(nil)
		f.Add(enc)
		sp := &statePayload{Leaves: randWireAddrs(rng), Table: randWireAddrs(rng)}
		enc, _ = sp.AppendBinary(nil)
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		jp := &joinPayload{}
		if jp.DecodeBinary(data) == nil {
			checkWireRoundTrip(t, jp, &joinPayload{})
		}
		sp := &statePayload{}
		if sp.DecodeBinary(data) == nil {
			checkWireRoundTrip(t, sp, &statePayload{})
		}
	})
}

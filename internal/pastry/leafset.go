package pastry

import (
	"sort"

	"corona/internal/ids"
)

// leafSet tracks the k numerically closest neighbors on each side of this
// node on the ring. It provides the final routing step and supplies the
// f-closest neighbors that replicate channel ownership (paper §3.3).
type leafSet struct {
	self ids.ID
	k    int
	// cw holds neighbors clockwise from self (increasing ID, wrapping),
	// nearest first; ccw likewise counter-clockwise.
	cw  []Addr
	ccw []Addr
}

func newLeafSet(self ids.ID, k int) *leafSet {
	return &leafSet{self: self, k: k}
}

// cwDist is the clockwise arc length from self to id.
func (l *leafSet) cwDist(id ids.ID) ids.ID { return id.Sub(l.self) }

// ccwDist is the counter-clockwise arc length from self to id.
func (l *leafSet) ccwDist(id ids.ID) ids.ID { return l.self.Sub(id) }

// add considers addr for membership on both sides. It reports whether the
// leaf set changed.
func (l *leafSet) add(addr Addr) bool {
	if addr.ID == l.self || addr.IsZero() {
		return false
	}
	changed := insertSorted(&l.cw, addr, l.k, l.cwDist)
	changed = insertSorted(&l.ccw, addr, l.k, l.ccwDist) || changed
	return changed
}

// insertSorted places addr in the side slice ordered by dist, keeping at
// most k entries, and reports whether the slice changed.
func insertSorted(side *[]Addr, addr Addr, k int, dist func(ids.ID) ids.ID) bool {
	s := *side
	for _, a := range s {
		if a.ID == addr.ID {
			return false
		}
	}
	d := dist(addr.ID)
	pos := sort.Search(len(s), func(i int) bool {
		return dist(s[i].ID).Cmp(d) > 0
	})
	if pos >= k {
		return false
	}
	s = append(s, Addr{})
	copy(s[pos+1:], s[pos:])
	s[pos] = addr
	if len(s) > k {
		s = s[:k]
	}
	*side = s
	return true
}

// remove drops the identifier from both sides, reporting whether anything
// was removed.
func (l *leafSet) remove(id ids.ID) bool {
	removed := false
	for _, side := range []*[]Addr{&l.cw, &l.ccw} {
		s := *side
		for i, a := range s {
			if a.ID == id {
				*side = append(s[:i], s[i+1:]...)
				removed = true
				break
			}
		}
	}
	return removed
}

// contains reports whether the identifier is in the leaf set.
func (l *leafSet) contains(id ids.ID) bool {
	for _, a := range l.cw {
		if a.ID == id {
			return true
		}
	}
	for _, a := range l.ccw {
		if a.ID == id {
			return true
		}
	}
	return false
}

// all returns the distinct members of the leaf set.
func (l *leafSet) all() []Addr {
	seen := make(map[ids.ID]bool, len(l.cw)+len(l.ccw))
	out := make([]Addr, 0, len(l.cw)+len(l.ccw))
	for _, a := range l.cw {
		if !seen[a.ID] {
			seen[a.ID] = true
			out = append(out, a)
		}
	}
	for _, a := range l.ccw {
		if !seen[a.ID] {
			seen[a.ID] = true
			out = append(out, a)
		}
	}
	return out
}

// closest returns up to k distinct members ordered by ring distance from
// self, nearest first.
func (l *leafSet) closest(k int) []Addr {
	members := l.all()
	sort.Slice(members, func(i, j int) bool {
		di := l.self.Distance(members[i].ID)
		dj := l.self.Distance(members[j].ID)
		if c := di.Cmp(dj); c != 0 {
			return c < 0
		}
		return members[i].ID.Cmp(members[j].ID) < 0
	})
	if len(members) > k {
		members = members[:k]
	}
	return members
}

// closestToKey returns the leaf set member (or self) numerically closest
// to key, together with whether that member is self.
func (l *leafSet) closestToKey(key ids.ID) (Addr, bool) {
	best := Addr{ID: l.self}
	bestDist := l.self.Distance(key)
	for _, a := range l.all() {
		d := a.ID.Distance(key)
		switch c := d.Cmp(bestDist); {
		case c < 0:
			best, bestDist = a, d
		case c == 0 && a.ID.Cmp(best.ID) < 0:
			// Break exact ties toward the smaller identifier so every
			// node resolves the same root for a key.
			best = a
		}
	}
	return best, best.ID == l.self
}

// coversKey reports whether key falls inside the span of the leaf set,
// meaning the closest-node decision is authoritative (standard Pastry
// final-hop rule).
func (l *leafSet) coversKey(key ids.ID) bool {
	if len(l.cw) == 0 || len(l.ccw) == 0 {
		return len(l.cw) == 0 && len(l.ccw) == 0 // alone in the ring
	}
	lo := l.ccw[len(l.ccw)-1].ID // farthest counter-clockwise member
	hi := l.cw[len(l.cw)-1].ID   // farthest clockwise member
	return key.Between(lo, hi) || key == l.self
}

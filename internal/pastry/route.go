package pastry

import "corona/internal/ids"

// nextHop computes the next hop toward key, returning ok=false when this
// node is the root (numerically closest known node) for the key.
//
// The procedure is standard Pastry (paper [25]): if the key is covered by
// the leaf set, deliver to the numerically closest leaf (or self);
// otherwise forward to the routing table entry sharing one more prefix
// digit with the key; if that entry is missing, fall back to any known node
// that is numerically closer and shares at least as long a prefix.
func (n *Node) nextHop(key ids.ID) (Addr, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()

	if key == n.self.ID {
		return Addr{}, false
	}
	if n.leaves.coversKey(key) {
		addr, isSelf := n.leaves.closestToKey(key)
		if isSelf {
			return Addr{}, false
		}
		return addr, true
	}
	prefixLen := n.cfg.Base.CommonPrefix(n.self.ID, key)
	if e := n.table.bestForKey(key); !e.IsZero() {
		return e, true
	}
	// Rare case: the exact entry is missing. Use any strictly closer node
	// with at least the same shared prefix, searching the routing table
	// and the leaf set.
	if e := n.table.closerThanSelf(key, prefixLen); !e.IsZero() {
		return e, true
	}
	selfDist := n.self.ID.Distance(key)
	var best Addr
	bestDist := selfDist
	for _, a := range n.leaves.all() {
		if n.cfg.Base.CommonPrefix(a.ID, key) < prefixLen {
			continue
		}
		if d := a.ID.Distance(key); d.Cmp(bestDist) < 0 {
			best, bestDist = a, d
		}
	}
	if !best.IsZero() {
		return best, true
	}
	return Addr{}, false
}

// IsRoot reports whether this node is currently the root for key: the
// numerically closest node it knows of. Channel ownership in Corona is
// exactly rootship of the channel identifier (paper §3.3).
func (n *Node) IsRoot(key ids.ID) bool {
	_, more := n.nextHop(key)
	return !more
}

// Learn incorporates a peer into the routing state opportunistically.
// Pastry learns from every message it sees; Corona additionally feeds in
// contacts carried on maintenance messages.
func (n *Node) Learn(addr Addr) {
	if addr.IsZero() || addr.ID == n.self.ID {
		return
	}
	n.mu.Lock()
	n.table.add(addr)
	n.leaves.add(addr)
	n.mu.Unlock()
}

// peerFailed evicts a dead peer from all routing state and triggers repair
// and the application fault callback.
func (n *Node) peerFailed(dead Addr) {
	n.mu.Lock()
	removedTable := n.table.remove(dead.ID)
	removedLeaf := n.leaves.remove(dead.ID)
	if removedTable || removedLeaf {
		n.stats.Repairs++
	}
	cb := n.onFault
	n.mu.Unlock()
	if removedTable || removedLeaf {
		n.repairAfterFailure(dead)
	}
	if cb != nil && (removedTable || removedLeaf) {
		cb(dead)
	}
}

package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// Result is the outcome of one scenario execution.
type Result struct {
	Scenario       string        `json:"scenario"`
	Seed           int64         `json:"seed"`
	Nodes          int           `json:"nodes"`
	LiveNodes      int           `json:"live_nodes"`
	Channels       int           `json:"channels"`
	Subscriptions  int           `json:"subscriptions"`
	Converged      bool          `json:"converged"`
	ConvergeTime   time.Duration `json:"converge_time_ns"`
	MsgsToConverge uint64        `json:"msgs_to_converge"`
	Violations     []Violation   `json:"violations,omitempty"`
	Deliveries     uint64        `json:"deliveries"`
	Duplicates     uint64        `json:"duplicates"`
	// DeliveryLatencyP50/P99 are detection-to-delivery percentiles in
	// virtual time, estimated from the delivery log's histogram; zero
	// when no delivery carried a detection timestamp.
	DeliveryLatencyP50 time.Duration `json:"delivery_latency_p50_ns,omitempty"`
	DeliveryLatencyP99 time.Duration `json:"delivery_latency_p99_ns,omitempty"`
	LostChannels       int           `json:"lost_channels"`
	PeakOwnerNotifies  uint64        `json:"peak_owner_notifies"`
	PeakOwnerMsgs      uint64        `json:"peak_owner_msgs"`
	WallTime           time.Duration `json:"wall_time_ns"`
}

// Failed reports whether the scenario violated any invariant.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// benchEntry mirrors the bench2json schema so BENCH_scale.json sits in
// the trajectory next to BENCH_wire/store/client/fanout.json and
// robustness regressions diff like perf regressions do.
type benchEntry struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchReport struct {
	Goos       string       `json:"goos"`
	Goarch     string       `json:"goarch"`
	Scale      string       `json:"scale"`
	Seed       int64        `json:"seed"`
	Benchmarks []benchEntry `json:"benchmarks"`
	Results    []Result     `json:"results"`
}

// WriteReport emits the suite's BENCH_scale.json: one bench2json-shaped
// entry per scenario (plus the full per-scenario results for debugging).
func WriteReport(w io.Writer, scaleName string, seed int64, results []Result) error {
	rep := benchReport{
		Goos:    runtime.GOOS,
		Goarch:  runtime.GOARCH,
		Scale:   scaleName,
		Seed:    seed,
		Results: results,
	}
	for _, res := range results {
		rep.Benchmarks = append(rep.Benchmarks, benchEntry{
			Name:       fmt.Sprintf("ChaosScenario/%s/nodes=%d", res.Scenario, res.Nodes),
			Package:    "corona/internal/chaos",
			Iterations: 1,
			Metrics: map[string]float64{
				"converge_s":           res.ConvergeTime.Seconds(),
				"msgs_to_converge":     float64(res.MsgsToConverge),
				"invariant_violations": float64(len(res.Violations)),
				"deliveries":           float64(res.Deliveries),
				"dup_deliveries":       float64(res.Duplicates),
				"delivery_p50_s":       res.DeliveryLatencyP50.Seconds(),
				"delivery_p99_s":       res.DeliveryLatencyP99.Seconds(),
				"lost_channels":        float64(res.LostChannels),
				"peak_owner_notifies":  float64(res.PeakOwnerNotifies),
				"peak_owner_msgs":      float64(res.PeakOwnerMsgs),
				"subscriptions":        float64(res.Subscriptions),
				"live_nodes":           float64(res.LiveNodes),
				"wall_s":               res.WallTime.Seconds(),
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

package chaos

import (
	"fmt"
	"sort"
	"strings"

	"corona/internal/core"
	"corona/internal/experiments"
	"corona/internal/ids"
)

// Violation is one machine-checked invariant failure, with enough detail
// to debug from the JSON report alone.
type Violation struct {
	Invariant string `json:"invariant"`
	Channel   string `json:"channel,omitempty"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	if v.Channel == "" {
		return fmt.Sprintf("[%s] %s", v.Invariant, v.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s", v.Invariant, v.Channel, v.Detail)
}

// ownerView is one live node's ownership claim over a channel.
type ownerView struct {
	idx int
	rec core.ChannelRecords
}

// checkStructural sweeps all live nodes and asserts the structural
// PR-5/6 invariants:
//
//   - single-owner: exactly one live node owns each surviving channel
//     (split-brain resolves toward the highest OwnerEpoch, so after
//     convergence a second claimant is a fencing failure);
//   - black-hole: every expected durable subscription appears in its
//     owner's entry records, and the recorded entry node is live;
//   - delegate-roster: every delegate in an owner's roster is live,
//     carries a partition installed by this owner's (epoch, seq), and
//     the owner-slot/delegate partitions tile the subscriber set exactly
//     as the shared partition function dictates.
//
// Channels whose entire owner group fail-stopped (r.lost) are excluded:
// in-memory state has no durable copy to recover from, and CrashMany
// accounted them at crash time.
func (r *Run) checkStructural() []Violation {
	var out []Violation

	liveEndpoint := make(map[string]int) // endpoint name -> live node index
	for _, i := range r.H.LiveNodes() {
		liveEndpoint[r.H.Endpoints[i]] = i
	}

	// Expected subscription set per channel (flash-crowd injectors append
	// to H.Subs, so bursts are audited like the seed workload).
	expected := make(map[string][]experiments.IssuedSub)
	for _, sub := range r.H.Subs {
		if !r.lost[sub.URL] {
			expected[sub.URL] = append(expected[sub.URL], sub)
		}
	}

	// One sweep over all live nodes collects every ownership claim, plus
	// the replica holders (an ownerless channel's diagnosis starts with
	// who still has state to re-elect from).
	owners := make(map[string][]ownerView)
	replicas := make(map[string][]ownerView)
	for _, i := range r.H.LiveNodes() {
		idx := i
		r.H.Nodes[i].EachChannel(func(cr core.ChannelRecords) {
			if cr.Owner {
				owners[cr.URL] = append(owners[cr.URL], ownerView{idx, cr})
			} else if cr.Replica {
				replicas[cr.URL] = append(replicas[cr.URL], ownerView{idx, cr})
			}
		})
	}

	urls := make([]string, 0, len(expected))
	for url := range expected {
		urls = append(urls, url)
	}
	sort.Strings(urls)

	for _, url := range urls {
		claims := owners[url]
		if len(claims) != 1 {
			detail := fmt.Sprintf("%d live owners", len(claims))
			if len(claims) > 1 {
				var who []string
				for _, c := range claims {
					who = append(who, fmt.Sprintf("node %d (epoch %d)", c.idx, c.rec.OwnerEpoch))
				}
				detail += ": " + strings.Join(who, ", ")
			} else {
				var who []string
				for _, c := range replicas[url] {
					who = append(who, fmt.Sprintf("node %d (epoch %d, %d subs, isRoot=%v, claims=%d)",
						c.idx, c.rec.OwnerEpoch, len(c.rec.Subscribers),
						r.H.Nodes[c.idx].Overlay().IsRoot(ids.HashString(url)),
						r.H.Nodes[c.idx].Stats().OwnerClaimsRouted))
				}
				if len(who) == 0 {
					detail += "; no live replicas hold state"
				} else {
					detail += "; replicas: " + strings.Join(who, ", ")
				}
			}
			out = append(out, Violation{Invariant: "single-owner", Channel: url, Detail: detail})
			continue
		}
		own := claims[0]
		out = append(out, r.checkBlackHole(url, own, expected[url], liveEndpoint)...)
		out = append(out, r.checkDelegates(url, own, liveEndpoint)...)
	}
	return out
}

func (r *Run) checkBlackHole(url string, own ownerView, subs []experiments.IssuedSub, liveEndpoint map[string]int) []Violation {
	var out []Violation
	for _, sub := range subs {
		entry, ok := own.rec.Subscribers[sub.Client]
		if !ok {
			out = append(out, Violation{
				Invariant: "black-hole",
				Channel:   url,
				Detail:    fmt.Sprintf("client %s missing from owner node %d's entry records", sub.Client, own.idx),
			})
			continue
		}
		if _, live := liveEndpoint[entry.Endpoint]; !live {
			out = append(out, Violation{
				Invariant: "black-hole",
				Channel:   url,
				Detail:    fmt.Sprintf("client %s's entry record points at dead node %s", sub.Client, entry.Endpoint),
			})
		}
	}
	return out
}

func (r *Run) checkDelegates(url string, own ownerView, liveEndpoint map[string]int) []Violation {
	rec := own.rec
	if len(rec.Delegates) == 0 {
		return nil
	}
	var out []Violation
	slots := len(rec.Delegates) + 1
	// Fetch each delegate's view of this channel.
	parts := make([]core.ChannelRecords, len(rec.Delegates))
	for d, addr := range rec.Delegates {
		di, live := liveEndpoint[addr.Endpoint]
		if !live {
			out = append(out, Violation{
				Invariant: "delegate-roster",
				Channel:   url,
				Detail:    fmt.Sprintf("owner node %d's roster names dead delegate %s", own.idx, addr.Endpoint),
			})
			continue
		}
		dr, ok := r.H.Nodes[di].Records(url)
		if !ok || dr.DelegatePartition == nil {
			out = append(out, Violation{
				Invariant: "delegate-roster",
				Channel:   url,
				Detail:    fmt.Sprintf("delegate node %d holds no partition for the channel", di),
			})
			continue
		}
		if dr.DelegateFrom.Endpoint != r.H.Endpoints[own.idx] {
			out = append(out, Violation{
				Invariant: "delegate-roster",
				Channel:   url,
				Detail:    fmt.Sprintf("delegate node %d serves owner %s, not node %d", di, dr.DelegateFrom.Endpoint, own.idx),
			})
			continue
		}
		if dr.DelegateEpoch != rec.OwnerEpoch || dr.DelegateSeqSeen != rec.DelegateSeq {
			out = append(out, Violation{
				Invariant: "delegate-roster",
				Channel:   url,
				Detail: fmt.Sprintf("delegate node %d fenced at (epoch %d, seq %d), owner is at (epoch %d, seq %d)",
					di, dr.DelegateEpoch, dr.DelegateSeqSeen, rec.OwnerEpoch, rec.DelegateSeq),
			})
			continue
		}
		parts[d] = dr
	}
	if len(out) > 0 {
		return out
	}
	// The owner slot plus the delegate partitions must tile the subscriber
	// set exactly as the shared partition function dictates. Clients are
	// visited in sorted order so the violation list — part of the JSON
	// report — is identical across reruns of the same seed.
	clients := make([]string, 0, len(rec.Subscribers))
	for c := range rec.Subscribers {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	covered := 0
	for _, client := range clients {
		slot := core.DelegateSlot(client, slots)
		if slot == 0 {
			if _, ok := rec.OwnEntries[client]; !ok {
				out = append(out, Violation{
					Invariant: "delegate-roster",
					Channel:   url,
					Detail:    fmt.Sprintf("client %s maps to the owner slot but is missing from ownEntries", client),
				})
				continue
			}
		} else if _, ok := parts[slot-1].DelegatePartition[client]; !ok {
			out = append(out, Violation{
				Invariant: "delegate-roster",
				Channel:   url,
				Detail:    fmt.Sprintf("client %s maps to delegate slot %d but is missing from its partition", client, slot),
			})
			continue
		}
		covered++
	}
	// No phantom entries: the shards must not exceed the subscriber set.
	shardTotal := len(rec.OwnEntries)
	for _, p := range parts {
		shardTotal += len(p.DelegatePartition)
	}
	if covered == len(rec.Subscribers) && shardTotal != len(rec.Subscribers) {
		out = append(out, Violation{
			Invariant: "delegate-roster",
			Channel:   url,
			Detail: fmt.Sprintf("shards hold %d entries for %d subscribers (stale phantom entries)",
				shardTotal, len(rec.Subscribers)),
		})
	}
	return out
}

// checkVersions asserts per-channel version monotonicity: no live node's
// LastVersion for a channel ever decreases between sweeps, and none runs
// ahead of the origin. Called at mid-run checkpoints and every convergence
// round; state accumulates in r.verLog.
func (r *Run) checkVersions() []Violation {
	var out []Violation
	now := r.H.Sim.Now()
	for _, i := range r.H.LiveNodes() {
		idx := i
		log := r.verLog[idx]
		if log == nil {
			log = make(map[string]uint64)
			r.verLog[idx] = log
		}
		r.H.Nodes[i].EachChannel(func(cr core.ChannelRecords) {
			if prev, ok := log[cr.URL]; ok && cr.LastVersion < prev {
				out = append(out, Violation{
					Invariant: "monotonic-version",
					Channel:   cr.URL,
					Detail:    fmt.Sprintf("node %d's version regressed %d -> %d", idx, prev, cr.LastVersion),
				})
			}
			log[cr.URL] = cr.LastVersion
			if proc, ok := r.H.Origin.Process(cr.URL); ok {
				if originVer := proc.VersionAt(now); cr.LastVersion > originVer {
					out = append(out, Violation{
						Invariant: "monotonic-version",
						Channel:   cr.URL,
						Detail:    fmt.Sprintf("node %d reports version %d ahead of origin %d", idx, cr.LastVersion, originVer),
					})
				}
			}
		})
	}
	return out
}

// checkDeliveries asserts exactly-once delivery over the post-convergence
// probe window: no (client, channel, version) triple delivered twice. The
// fault phase is excluded by design — during a partition both sides
// re-point entries and notify the same origin version, which is the
// documented at-least-once contract under faults; run-wide duplicates are
// still reported as a metric (Result.Duplicates).
func (r *Run) checkDeliveries() []Violation {
	if d := r.Log.WindowDuplicates(); d > 0 {
		return []Violation{{
			Invariant: "exactly-once",
			Detail:    fmt.Sprintf("%d duplicate deliveries after convergence (first: %s)", d, r.Log.WindowFirstDuplicate()),
		}}
	}
	return nil
}

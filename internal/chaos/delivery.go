package chaos

import (
	"fmt"
	"sync"
	"time"

	"corona/internal/metrics"
)

type deliveryKey struct {
	client  string
	url     string
	version uint64
}

type clientChannel struct {
	client string
	url    string
}

// DeliveryLog is the notifier the chaos harness plugs into every node: it
// records each (client, channel, version) delivery so the checker can
// assert exactly-once delivery over the whole run and per-client liveness
// over the probe window.
type DeliveryLog struct {
	mu       sync.Mutex
	seen     map[deliveryKey]int
	total    uint64
	dups     uint64
	firstDup string

	// window counts per-(client, channel) deliveries since MarkWindow,
	// the probe phase's liveness evidence. windowSeen/windowDups scope the
	// exactly-once check to the same window: during a partition the fault
	// machinery on both sides legitimately re-points entries and notifies
	// the same origin version (at-least-once under faults is the
	// documented contract), so duplicates are an invariant violation only
	// once the cloud has converged.
	window         map[clientChannel]int
	windowSeen     map[deliveryKey]int
	windowDups     uint64
	windowFirstDup string

	// Now, when set, is the harness's (virtual) clock; each delivery
	// carrying a detection timestamp then records Now()-at into latency,
	// so chaos runs report end-to-end delivery percentiles.
	Now     func() time.Time
	latency *metrics.Histogram
}

// NewDeliveryLog creates an empty log.
func NewDeliveryLog() *DeliveryLog {
	return &DeliveryLog{
		seen:    make(map[deliveryKey]int),
		latency: metrics.NewRegistry().Histogram("chaos_delivery_latency_seconds", "detection to delivery", metrics.DurationBuckets),
	}
}

func (d *DeliveryLog) observe(at time.Time) {
	if d.Now == nil || at.IsZero() {
		return
	}
	d.latency.Observe(d.Now().Sub(at).Seconds())
}

// LatencyQuantile estimates the q-quantile of detection-to-delivery
// latency across the run; (0, false) with no timestamped deliveries.
func (d *DeliveryLog) LatencyQuantile(q float64) (float64, bool) {
	if d.latency.Count() == 0 {
		return 0, false
	}
	return d.latency.Quantile(q), true
}

func (d *DeliveryLog) record(client, url string, version uint64) {
	k := deliveryKey{client, url, version}
	d.total++
	d.seen[k]++
	if d.seen[k] > 1 {
		d.dups++
		if d.firstDup == "" {
			d.firstDup = fmt.Sprintf("client %s, channel %s, version %d", client, url, version)
		}
	}
	if d.window != nil {
		d.window[clientChannel{client, url}]++
		d.windowSeen[k]++
		if d.windowSeen[k] > 1 {
			d.windowDups++
			if d.windowFirstDup == "" {
				d.windowFirstDup = fmt.Sprintf("client %s, channel %s, version %d", client, url, version)
			}
		}
	}
}

// Notify implements core.Notifier.
func (d *DeliveryLog) Notify(client, url string, version uint64, diff string, at time.Time) {
	d.mu.Lock()
	d.record(client, url, version)
	d.observe(at)
	d.mu.Unlock()
}

// NotifyBatch implements core.Notifier.
func (d *DeliveryLog) NotifyBatch(clients []string, url string, version uint64, diff string, at time.Time) {
	d.mu.Lock()
	for _, c := range clients {
		d.record(c, url, version)
		d.observe(at)
	}
	d.mu.Unlock()
}

// NotifyCount implements core.Notifier. Chaos runs use identity mode, so
// counting-mode notifications only bump the total.
func (d *DeliveryLog) NotifyCount(url string, version uint64, n int, at time.Time) {
	d.mu.Lock()
	d.total += uint64(n)
	d.mu.Unlock()
}

// MarkWindow starts (or restarts) the probe window.
func (d *DeliveryLog) MarkWindow() {
	d.mu.Lock()
	d.window = make(map[clientChannel]int)
	d.windowSeen = make(map[deliveryKey]int)
	d.windowDups = 0
	d.windowFirstDup = ""
	d.mu.Unlock()
}

// WindowCount reports how many notifications the client received for the
// channel since MarkWindow.
func (d *DeliveryLog) WindowCount(client, url string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.window[clientChannel{client, url}]
}

// Total returns the number of notifications delivered.
func (d *DeliveryLog) Total() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// Duplicates returns how many deliveries repeated an already-delivered
// (client, channel, version) triple.
func (d *DeliveryLog) Duplicates() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dups
}

// FirstDuplicate describes the first duplicate delivery, for diagnostics.
func (d *DeliveryLog) FirstDuplicate() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.firstDup
}

// WindowDuplicates returns how many deliveries since MarkWindow repeated a
// (client, channel, version) triple already delivered inside the window.
func (d *DeliveryLog) WindowDuplicates() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.windowDups
}

// WindowFirstDuplicate describes the first in-window duplicate.
func (d *DeliveryLog) WindowFirstDuplicate() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.windowFirstDup
}

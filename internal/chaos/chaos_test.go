package chaos

import (
	"os"
	"testing"
)

// TestScenarios runs the full suite at CI scale with the fixed seed and
// asserts zero invariant violations — the chaos-smoke CI step runs this
// under the race detector. Set CORONA_CHAOS=off to skip locally.
func TestScenarios(t *testing.T) {
	if os.Getenv("CORONA_CHAOS") == "off" {
		t.Skip("CORONA_CHAOS=off")
	}
	cfg := CIScale()
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := Execute(sc, cfg)
			t.Logf("%s: converged=%v in %v, %d msgs, %d deliveries (%d dup), %d lost channels, peak owner %d notifies",
				sc.Name, res.Converged, res.ConvergeTime, res.MsgsToConverge,
				res.Deliveries, res.Duplicates, res.LostChannels, res.PeakOwnerNotifies)
			if !res.Converged {
				t.Errorf("did not converge within %v", cfg.ConvergeDeadline)
			}
			for i, v := range res.Violations {
				if i >= 10 {
					t.Errorf("... and %d more violations", len(res.Violations)-i)
					break
				}
				t.Errorf("violation: %s", v)
			}
		})
	}
}

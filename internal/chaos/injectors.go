package chaos

import (
	"fmt"
	"sort"
	"time"

	"corona/internal/experiments"
	"corona/internal/simnet"
)

// Scenarios returns the shipped fault compositions, in suite order.
func Scenarios() []Scenario {
	return []Scenario{
		HealPartition(),
		RackFailure(),
		Churn(),
		FlashCrowd(),
		SlowLinks(),
		KitchenSink(),
	}
}

// ScenarioByName finds a shipped scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// HealPartition bisects the cloud for a quarter of the run, then heals
// it. Both sides keep operating — owners are claimed on each side for
// channels rooted across the cut — so the heal forces the owner-epoch
// fencing handshake to collapse every dual-ownership back to one owner
// with the union of the subscriber sets.
func HealPartition() Scenario {
	return Scenario{
		Name:        "heal-partition",
		Description: "network bisection for Duration/4, then heal; dual owners must merge by epoch fencing",
		Inject: func(r *Run) {
			at := r.Cfg.Duration / 4
			until := r.Cfg.Duration / 2
			r.H.InjectAt(at, func() {
				for _, i := range r.H.LiveNodes() {
					if r.rng.Intn(2) == 1 {
						r.H.Net.Partition(r.H.Endpoints[i], 1)
					}
				}
			})
			r.H.InjectAt(until, func() { r.H.Net.Heal() })
		},
	}
}

// RackFailure crashes a leaf-set-adjacent group of nodes at once — the
// worst case for the replica machinery, since owner replicas live exactly
// in the leaf set. Channels whose entire owner group is inside the rack
// are accounted as lost (no durable copy survives in the sim); everything
// else must re-converge: replica promotion, lease force-expiry of dead
// entry nodes, delegate re-partition.
func RackFailure() Scenario {
	return Scenario{
		Name:        "rack-failure",
		Description: "crash a ring-contiguous rack at Duration/3; survivors must promote, re-point, re-partition",
		Inject: func(r *Run) {
			r.H.InjectAt(r.Cfg.Duration/3, func() {
				live := r.H.LiveNodes()
				rack := 4 + len(live)/512
				if rack > len(live)/4 {
					rack = len(live) / 4
				}
				if rack < 2 {
					rack = 2
				}
				// Ring order: adjacency in identifier space, which is what
				// leaf sets are made of.
				sort.Slice(live, func(a, b int) bool {
					ia := r.H.Nodes[live[a]].Self().ID
					ib := r.H.Nodes[live[b]].Self().ID
					return string(ia[:]) < string(ib[:])
				})
				start := r.rng.Intn(len(live))
				idxs := make([]int, 0, rack)
				for k := 0; k < rack; k++ {
					idxs = append(idxs, live[(start+k)%len(live)])
				}
				r.CrashMany(idxs)
			})
		},
	}
}

// Churn runs a sustained Poisson join/leave process over the middle half
// of the run: leaves fail-stop random live nodes, joins grow the cloud
// through the message-driven join protocol. The population floor keeps
// leaves from hollowing out the cloud; joins are capped so the overlay
// stays comparable to the configured scale.
func Churn() Scenario {
	return Scenario{
		Name:        "churn",
		Description: "Poisson join/leave over the middle half of the run",
		Inject: func(r *Run) {
			start := r.Cfg.Duration / 4
			window := r.Cfg.Duration / 2
			mean := r.Cfg.Duration / 16 // ~8 events over the window
			floor := r.Cfg.Nodes * 3 / 4
			ceil := r.Cfg.Nodes + r.Cfg.Nodes/4
			joined := 0
			r.H.InjectAt(start, func() {
				deadline := r.H.Sim.Now().Add(window)
				var next func()
				next = func() {
					if !r.H.Sim.Now().Before(deadline) {
						return
					}
					live := r.H.LiveNodes()
					join := r.rng.Intn(2) == 0
					if len(live) <= floor {
						join = true
					}
					if len(r.H.Nodes) >= ceil {
						join = false
					}
					if join {
						joined++
						name := fmt.Sprintf("churn%d", joined)
						_ = r.H.JoinNode(name, r.pickLive(), nil)
					} else if len(live) > floor {
						r.CrashMany([]int{r.pickLive()})
					}
					delay := time.Duration(r.rng.ExpFloat64() * float64(mean))
					if delay < time.Second {
						delay = time.Second
					}
					r.H.InjectAt(delay, next)
				}
				next()
			})
		},
	}
}

// FlashCrowd bursts a crowd of new subscribers onto the hottest channel —
// several times the delegation threshold, spread over five minutes — so
// the owner must recruit delegates and re-partition under load. The new
// subscriptions are recorded in the audit set: every crowd member is
// checked for black-holing and delivery like the seed workload. Each
// crowd member re-asserts its subscription a few times, the way a real
// SDK re-subscribes until notifications confirm it took: routed messages
// are fire-and-forget, so a subscribe issued into an active fault (the
// kitchen-sink composition lands the crowd mid-partition) can be dropped
// at a cut forwarding hop, and a one-shot subscribe would then be
// audited as black-holed even though no component ever held it.
func FlashCrowd() Scenario {
	return Scenario{
		Name:        "flash-crowd",
		Description: "subscription burst of 4x DelegateThreshold on the hottest channel",
		Inject: func(r *Run) {
			r.H.InjectAt(r.Cfg.Duration/4, func() {
				url := r.H.Work.Channels[0].URL
				burst := 4 * r.Cfg.DelegateThreshold
				over := 5 * time.Minute
				for k := 0; k < burst; k++ {
					client := fmt.Sprintf("fc%d", k)
					at := time.Duration(float64(over) * float64(k) / float64(burst))
					r.H.InjectAt(at, func() {
						entry := r.pickLive()
						r.H.Subs = append(r.H.Subs, experiments.IssuedSub{Client: client, URL: url, Entry: entry})
						r.H.Nodes[entry].Subscribe(client, url)
						for retry := 1; retry <= 3; retry++ {
							r.H.InjectAt(time.Duration(retry)*r.Cfg.PollInterval, func() {
								r.H.Nodes[r.pickLive()].Subscribe(client, url)
							})
						}
					})
				}
			})
		},
	}
}

// SlowLinks degrades a straggler set: each straggler's links to a handful
// of random peers gain seconds of extra latency and heavy loss for a
// quarter of the run. Lost maintenance traffic must be repaired by later
// rounds once the links clear.
func SlowLinks() Scenario {
	return Scenario{
		Name:        "slow-links",
		Description: "10% stragglers with 2-8s extra latency and 30% loss on links to random peers",
		Inject: func(r *Run) {
			at := r.Cfg.Duration / 4
			until := r.Cfg.Duration / 2
			r.H.InjectAt(at, func() {
				live := r.H.LiveNodes()
				stragglers := len(live) / 10
				if stragglers < 2 {
					stragglers = 2
				}
				for s := 0; s < stragglers; s++ {
					from := live[r.rng.Intn(len(live))]
					for p := 0; p < 4; p++ {
						to := live[r.rng.Intn(len(live))]
						if to == from {
							continue
						}
						r.H.Net.SetLinkFaultBoth(r.H.Endpoints[from], r.H.Endpoints[to], simnet.LinkFault{
							ExtraLatency: 2*time.Second + time.Duration(r.rng.Int63n(int64(6*time.Second))),
							DropRate:     0.3,
						})
					}
				}
			})
			r.H.InjectAt(until, func() { r.H.Net.ClearLinkFaults() })
		},
	}
}

// KitchenSink composes everything at once: a partition that heals, churn
// throughout, a flash crowd landing mid-partition, and slow links over
// the heal — the "any reachable bad state" stress the self-stabilization
// anchor asks for.
func KitchenSink() Scenario {
	return Scenario{
		Name:        "kitchen-sink",
		Description: "partition + churn + flash crowd + slow links, overlapping",
		Inject: func(r *Run) {
			HealPartition().Inject(r)
			Churn().Inject(r)
			FlashCrowd().Inject(r)
			SlowLinks().Inject(r)
		},
	}
}
